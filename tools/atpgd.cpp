// atpgd — the persistent ATPG service over stdin/stdout.
//
// Requests arrive as u32-LE length-prefixed text frames on stdin; events
// stream as JSON lines on stdout (see src/service/daemon.h for the command
// set and DESIGN.md §4i for the protocol).  A socket front-end can wrap
// this binary 1:1 (e.g. socat UNIX-LISTEN:... EXEC:atpgd).
//
// Usage: atpgd [--checkpoint-dir=DIR] [--interval=SECONDS]
//   --checkpoint-dir  default snapshot location for jobs that don't pass
//                     checkpoint=; each job writes <dir>/<job>.snap.shardK
//   --interval        default auto-checkpoint interval for submitted jobs
#include <cstdio>
#include <cstdlib>
#include <string>

#include "service/daemon.h"

int main(int argc, char** argv) {
  gatpg::service::DaemonConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--checkpoint-dir=", 0) == 0) {
      config.checkpoint_dir = arg.substr(17);
    } else if (arg.rfind("--interval=", 0) == 0) {
      config.default_interval_s = std::atof(arg.c_str() + 11);
    } else {
      std::fprintf(stderr, "atpgd: unknown option %s\n", arg.c_str());
      return 2;
    }
  }
  gatpg::service::Daemon daemon(config, stdin, stdout);
  return daemon.serve();
}
