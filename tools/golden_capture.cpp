// Temporary tool: captures golden pre-refactor results for the session-layer
// equivalence tests (tests/test_session.cpp).  Built by hand against the
// library; not part of the CMake tree.
#include <cstdio>
#include <cstdint>

#include "gen/registry.h"
#include "hybrid/hybrid_atpg.h"
#include "tpg/alternating.h"
#include "tpg/randgen.h"
#include "tpg/simgen.h"

using namespace gatpg;

static std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 0x100000001b3ULL;
}

static std::uint64_t hash_sequence(const sim::Sequence& seq) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& vec : seq) {
    h = fnv1a(h, 0x5eedULL);
    for (sim::V3 v : vec) h = fnv1a(h, static_cast<std::uint64_t>(v));
  }
  return h;
}

static std::uint64_t hash_segments(const std::vector<sim::Sequence>& segs) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& s : segs) {
    h = fnv1a(h, s.size());
    h = fnv1a(h, hash_sequence(s));
  }
  return h;
}

static void hybrid_case(const char* name, const char* circuit,
                        hybrid::HybridConfig cfg, unsigned threads) {
  cfg.parallel.threads = threads;
  const auto c = gen::make_circuit(circuit);
  const auto r = hybrid::HybridAtpg(c, cfg).run();
  std::uint64_t state_hash = 0xcbf29ce484222325ULL;
  for (auto s : r.fault_state)
    state_hash = fnv1a(state_hash, static_cast<std::uint64_t>(s));
  std::printf(
      "%s t=%u: test=0x%016llx segs=0x%016llx state=0x%016llx det=%zu unt=%zu "
      "vec=%zu segs_n=%zu\n",
      name, threads, (unsigned long long)hash_sequence(r.test_set),
      (unsigned long long)hash_segments(r.segments),
      (unsigned long long)state_hash, r.detected(), r.untestable(),
      r.test_set.size(), r.segments.size());
  std::printf(
      "  counters: tgt=%ld fwd=%ld gai=%ld gas=%ld djc=%ld djs=%ld vf=%ld "
      "nj=%ld ab=%ld passes=%zu\n",
      r.counters.targeted, r.counters.forward_solutions,
      r.counters.ga_invocations, r.counters.ga_successes,
      r.counters.det_justify_calls, r.counters.det_justify_successes,
      r.counters.verify_failures, r.counters.no_justification_needed,
      r.counters.aborted_faults, r.passes.size());
  if (cfg.state_store.enabled) {
    const auto& st = r.counters.store;
    std::printf(
        "  store: seq=%ld/%ld (vf=%ld ins=%ld) unjust=%ld/%ld (ins=%ld) "
        "fwd=%ld seeds=%ld reach=%ld near=%ld\n",
        st.seq_hits, st.seq_hits + st.seq_misses, st.seq_verify_failures,
        st.seq_inserts, st.unjust_hits, st.unjust_hits + st.unjust_misses,
        st.unjust_inserts, st.forward_cache_hits, st.ga_seeds_served,
        st.reachable_inserts, st.near_miss_inserts);
  }
  for (const auto& p : r.passes)
    std::printf("  pass: det=%zu vec=%zu unt=%zu\n", p.detected, p.vectors,
                p.untestable);
}

int main() {
  for (unsigned threads : {1u, 4u}) {
    {
      hybrid::HybridConfig cfg;
      cfg.schedule = hybrid::PassSchedule::ga_hitec(1.0);
      cfg.seed = 7;
      hybrid_case("hybrid_ga_s27", "s27", cfg, threads);
    }
    {
      hybrid::HybridConfig cfg;
      cfg.schedule = hybrid::PassSchedule::hitec(1.0);
      cfg.seed = 7;
      hybrid_case("hybrid_hitec_s27", "s27", cfg, threads);
    }
    {
      // Deterministic bounded-search schedule on a mid-size circuit: big
      // wall-clock limits (never bind), modest backtrack budgets (bind
      // deterministically).
      hybrid::HybridConfig cfg;
      cfg.schedule = hybrid::PassSchedule::ga_hitec(1.0);
      for (auto& p : cfg.schedule.passes) {
        p.time_limit_s = 1000.0;
        p.max_backtracks = 300;
      }
      cfg.schedule.passes[0].ga_population = 64;
      cfg.schedule.passes[0].ga_generations = 2;
      cfg.schedule.passes[1].ga_population = 64;
      cfg.schedule.passes[1].ga_generations = 2;
      cfg.max_solutions_per_fault = 4;
      cfg.seed = 3;
      hybrid_case("hybrid_ga_g298", "g298", cfg, threads);
    }
    {
      // State-knowledge layer enabled: a distinct golden family (the store
      // legitimately changes search trajectories) that must itself be
      // deterministic and thread-count-independent.
      hybrid::HybridConfig cfg;
      cfg.schedule = hybrid::PassSchedule::ga_hitec(1.0);
      cfg.seed = 7;
      cfg.state_store.enabled = true;
      hybrid_case("hybrid_ga_s27_store", "s27", cfg, threads);
    }
    {
      hybrid::HybridConfig cfg;
      cfg.schedule = hybrid::PassSchedule::hitec(1.0);
      cfg.seed = 7;
      cfg.state_store.enabled = true;
      hybrid_case("hybrid_hitec_s27_store", "s27", cfg, threads);
    }
    {
      hybrid::HybridConfig cfg;
      cfg.schedule = hybrid::PassSchedule::ga_hitec(1.0);
      for (auto& p : cfg.schedule.passes) {
        p.time_limit_s = 1000.0;
        p.max_backtracks = 300;
      }
      cfg.schedule.passes[0].ga_population = 64;
      cfg.schedule.passes[0].ga_generations = 2;
      cfg.schedule.passes[1].ga_population = 64;
      cfg.schedule.passes[1].ga_generations = 2;
      cfg.max_solutions_per_fault = 4;
      cfg.seed = 3;
      cfg.state_store.enabled = true;
      hybrid_case("hybrid_ga_g298_store", "g298", cfg, threads);
    }
    {
      tpg::SimGenConfig cfg;
      cfg.population = 16;
      cfg.generations = 3;
      cfg.sequence_length = 8;
      cfg.fault_sample = 8;
      cfg.stagnation_rounds = 2;
      cfg.time_limit_s = 1000.0;
      cfg.seed = 7;
      cfg.faultsim.parallel.threads = threads;
      const auto c = gen::make_circuit("s27");
      const auto r = tpg::SimulationTestGenerator(c, cfg).run();
      std::printf(
          "simgen_s27 t=%u: test=0x%016llx det=%zu vec=%zu rounds=%ld "
          "evals=%ld\n",
          threads, (unsigned long long)hash_sequence(r.test_set), r.detected(),
          r.test_set.size(), r.rounds, r.evaluations);
    }
    {
      tpg::SimGenConfig cfg;
      cfg.population = 16;
      cfg.generations = 2;
      cfg.sequence_length = 12;
      cfg.fault_sample = 32;
      cfg.stagnation_rounds = 2;
      cfg.time_limit_s = 1000.0;
      cfg.seed = 11;
      cfg.faultsim.parallel.threads = threads;
      const auto c = gen::make_circuit("g386");
      const auto r = tpg::SimulationTestGenerator(c, cfg).run();
      std::printf(
          "simgen_g386 t=%u: test=0x%016llx det=%zu vec=%zu rounds=%ld "
          "evals=%ld\n",
          threads, (unsigned long long)hash_sequence(r.test_set), r.detected(),
          r.test_set.size(), r.rounds, r.evaluations);
    }
    {
      tpg::AlternatingConfig cfg;
      cfg.population = 16;
      cfg.generations = 2;
      cfg.sequence_length = 8;
      cfg.fault_sample = 8;
      cfg.switch_after = 1;
      cfg.time_limit_s = 1000.0;
      cfg.det_limits.time_limit_s = 1000.0;
      cfg.det_limits.max_backtracks = 500;
      cfg.seed = 5;
      const auto c = gen::make_circuit("s27");
      const auto r = tpg::alternating_hybrid_generate(c, cfg);
      std::printf(
          "alt_s27 t=%u: test=0x%016llx det=%zu unt=%zu vec=%zu ga_rounds=%ld "
          "det_targets=%ld det_successes=%ld\n",
          threads, (unsigned long long)hash_sequence(r.test_set), r.detected(),
          r.untestable(), r.test_set.size(), r.rounds, r.counters.targeted,
          r.counters.committed_tests);
    }
    {
      tpg::AlternatingConfig cfg;
      cfg.population = 16;
      cfg.generations = 2;
      cfg.sequence_length = 12;
      cfg.fault_sample = 16;
      cfg.switch_after = 1;
      cfg.time_limit_s = 1000.0;
      cfg.det_limits.time_limit_s = 1000.0;
      cfg.det_limits.max_backtracks = 300;
      cfg.det_failures_to_stop = 4;
      cfg.seed = 9;
      const auto c = gen::make_circuit("g386");
      const auto r = tpg::alternating_hybrid_generate(c, cfg);
      std::printf(
          "alt_g386 t=%u: test=0x%016llx det=%zu unt=%zu vec=%zu "
          "ga_rounds=%ld det_targets=%ld det_successes=%ld\n",
          threads, (unsigned long long)hash_sequence(r.test_set), r.detected(),
          r.untestable(), r.test_set.size(), r.rounds, r.counters.targeted,
          r.counters.committed_tests);
    }
  }
  {
    tpg::RandomGenConfig cfg;
    cfg.seed = 3;
    const auto c = gen::make_circuit("s27");
    const auto r = tpg::random_pattern_generate(c, cfg);
    std::printf("rand_s27: test=0x%016llx det=%zu vec=%zu\n",
                (unsigned long long)hash_sequence(r.test_set), r.detected(),
                r.test_set.size());
  }
  {
    tpg::RandomGenConfig cfg;
    cfg.seed = 5;
    cfg.weighted = true;
    cfg.max_vectors = 512;
    const auto c = gen::make_circuit("g526");
    const auto r = tpg::random_pattern_generate(c, cfg);
    std::uint64_t wh = 0xcbf29ce484222325ULL;
    for (double w : r.weights)
      wh = fnv1a(wh, static_cast<std::uint64_t>(w * 100));
    std::printf("rand_g526w: test=0x%016llx det=%zu vec=%zu weights=0x%016llx\n",
                (unsigned long long)hash_sequence(r.test_set), r.detected(),
                r.test_set.size(), (unsigned long long)wh);
  }
  return 0;
}
