#!/usr/bin/env python3
"""Threshold check for bench_detengine runs against a committed snapshot.

Fails (exit 1) when a fresh BENCH_detengine.json shows:
  * a cross-mode identity failure or a layout counter divergence
    (identical_across_modes / counters_unchanged false);
  * any deterministic search counter (decisions, backtracks, gate_evals,
    events, solved, untestable) differing from the snapshot for the same
    circuit+engine — the search itself must be bit-stable across commits;
  * more FrameModel constructions in the pooled mode than the snapshot
    records (pool-reuse regression: builds must stay at a handful while
    acquires scale with the fault count);
  * an overall flat-vs-legacy wall-clock speedup below --min-speedup
    (the floor is deliberately below the locally-measured ratio to absorb
    CI runner noise; a real regression drops the ratio toward 1.0).

Usage:
  check_bench_detengine.py --fresh build/BENCH_detengine.json \
      --snapshot BENCH_detengine.json [--min-speedup 1.15]

The snapshot must be produced by the same bench arguments as the fresh run
(the script cross-checks them).
"""

import argparse
import json
import sys

DET_COUNTERS = ("decisions", "backtracks", "gate_evals", "events", "solved",
                "untestable")
BENCH_ARGS = ("max_faults", "backtracks", "solutions", "repeat")


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--fresh", required=True,
                    help="BENCH_detengine.json from this run")
    ap.add_argument("--snapshot", required=True,
                    help="committed reference BENCH_detengine.json")
    ap.add_argument("--min-speedup", type=float, default=1.15,
                    help="overall_flat_speedup floor (default 1.15)")
    args = ap.parse_args()

    fresh = load(args.fresh)
    snap = load(args.snapshot)
    errors = []

    for key in BENCH_ARGS:
        if fresh.get(key) != snap.get(key):
            errors.append(
                f"bench arg mismatch: {key} fresh={fresh.get(key)} "
                f"snapshot={snap.get(key)} (rerun with the snapshot's args)")

    if not fresh.get("identical_across_modes", False):
        errors.append("identical_across_modes is false: a mode/layout "
                      "changed the search result")
    if not fresh.get("counters_unchanged", False):
        errors.append("counters_unchanged is false: the flat layout's "
                      "gate_evals/events diverged from the legacy layout")

    snap_circuits = {c["name"]: c for c in snap.get("circuits", [])}
    fresh_circuits = {c["name"]: c for c in fresh.get("circuits", [])}
    for name, sc in snap_circuits.items():
        fc = fresh_circuits.get(name)
        if fc is None:
            errors.append(f"{name}: missing from fresh run")
            continue
        snap_engines = {r["engine"]: r for r in sc["results"]}
        fresh_engines = {r["engine"]: r for r in fc["results"]}
        for engine, sr in snap_engines.items():
            fr = fresh_engines.get(engine)
            if fr is None:
                errors.append(f"{name}/{engine}: missing from fresh run")
                continue
            for counter in DET_COUNTERS:
                if fr.get(counter) != sr.get(counter):
                    errors.append(
                        f"{name}/{engine}: {counter} changed "
                        f"{sr.get(counter)} -> {fr.get(counter)}")
            if engine == "incremental-flat-pooled":
                if fr.get("model_builds", 0) > sr.get("model_builds", 0):
                    errors.append(
                        f"{name}: pool constructions regressed "
                        f"{sr.get('model_builds')} -> "
                        f"{fr.get('model_builds')} (reset-and-reuse broken?)")

    speedup = fresh.get("overall_flat_speedup", 0.0)
    if speedup < args.min_speedup:
        errors.append(
            f"overall_flat_speedup {speedup:.3f} below floor "
            f"{args.min_speedup:.2f} (snapshot recorded "
            f"{snap.get('overall_flat_speedup', 0.0):.3f})")

    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    print(f"OK: counters stable, pool reuse intact, "
          f"flat speedup x{speedup:.2f} >= {args.min_speedup:.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
