#!/usr/bin/env python3
"""Threshold check for bench JSON reports against committed snapshots.

One checker, per-bench threshold specs.  Every bench shares the same
contract:

  * the fresh run's bench arguments must match the snapshot's (comparing
    counters across different workloads is meaningless);
  * the bench's self-check invariants must hold (cross-mode/config
    identity booleans emitted by the bench itself);
  * deterministic counters must equal the snapshot exactly, per circuit
    and per result row — the simulated/searched work is bit-stable across
    commits, so any drift is a behavior change, not noise;
  * a wall-clock-derived overall ratio must stay above a floor that sits
    deliberately below the locally-measured value to absorb CI runner
    noise (a real regression drops the ratio toward 1.0).

Supported benches:

  detengine   BENCH_detengine.json — deterministic-engine search counters,
              FrameModel pool-reuse regression guard, flat-layout speedup
              floor (ratio key overall_flat_speedup, default floor 1.15).
  faultsim    BENCH_faultsim.json — fault-simulator gate-eval/grouping
              counters per (engine, threads) row, differential-mode
              gate-eval reduction floor (ratio key
              overall_gate_eval_reduction, default floor 1.5).

Usage:
  check_bench.py --bench detengine --fresh build/BENCH_detengine.json \
      --snapshot BENCH_detengine.json [--min-ratio 1.15]
  check_bench.py --bench faultsim --fresh build/BENCH_faultsim.json \
      --snapshot BENCH_faultsim.json [--min-ratio 1.5]
"""

import argparse
import json
import sys


def detengine_pool_guard(name, fresh_row, snap_row, errors):
    """Pool-reuse regression: constructions must not grow (acquires scale
    with the fault count, builds stay at a handful)."""
    if fresh_row.get("model_builds", 0) > snap_row.get("model_builds", 0):
        errors.append(
            f"{name}: pool constructions regressed "
            f"{snap_row.get('model_builds')} -> "
            f"{fresh_row.get('model_builds')} (reset-and-reuse broken?)")


BENCH_SPECS = {
    "detengine": {
        "args": ("max_faults", "backtracks", "solutions", "repeat"),
        "invariants": {
            "identical_across_modes":
                "a mode/layout changed the search result",
            "counters_unchanged":
                "the flat layout's gate_evals/events diverged from the "
                "legacy layout",
        },
        # One result row per engine mode within a circuit.
        "row_key": lambda r: r["engine"],
        "counters": ("decisions", "backtracks", "gate_evals", "events",
                     "solved", "untestable"),
        "row_guards": {"incremental-flat-pooled": detengine_pool_guard},
        "ratio_key": "overall_flat_speedup",
        "default_floor": 1.15,
    },
    "faultsim": {
        "args": ("vectors", "repeat"),
        "invariants": {
            "consistent_across_configs":
                "an engine/thread configuration diverged from the "
                "full-sweep reference",
        },
        # One result row per (engine, thread-count) configuration.
        "row_key": lambda r: f"{r['engine']}@t{r['threads']}",
        "counters": ("gate_evals", "good_gate_evals", "group_vectors",
                     "group_vectors_skipped", "groups_repacked", "detected"),
        "row_guards": {},
        "ratio_key": "overall_gate_eval_reduction",
        "default_floor": 1.5,
    },
}


def load(path):
    with open(path) as f:
        return json.load(f)


def check(spec, fresh, snap, floor):
    errors = []

    for key in spec["args"]:
        if fresh.get(key) != snap.get(key):
            errors.append(
                f"bench arg mismatch: {key} fresh={fresh.get(key)} "
                f"snapshot={snap.get(key)} (rerun with the snapshot's args)")

    for key, message in spec["invariants"].items():
        if not fresh.get(key, False):
            errors.append(f"{key} is false: {message}")

    snap_circuits = {c["name"]: c for c in snap.get("circuits", [])}
    fresh_circuits = {c["name"]: c for c in fresh.get("circuits", [])}
    row_key = spec["row_key"]
    for name, sc in snap_circuits.items():
        fc = fresh_circuits.get(name)
        if fc is None:
            errors.append(f"{name}: missing from fresh run")
            continue
        snap_rows = {row_key(r): r for r in sc["results"]}
        fresh_rows = {row_key(r): r for r in fc["results"]}
        for key, sr in snap_rows.items():
            fr = fresh_rows.get(key)
            if fr is None:
                errors.append(f"{name}/{key}: missing from fresh run")
                continue
            for counter in spec["counters"]:
                if fr.get(counter) != sr.get(counter):
                    errors.append(
                        f"{name}/{key}: {counter} changed "
                        f"{sr.get(counter)} -> {fr.get(counter)}")
            guard = spec["row_guards"].get(fr.get("engine"))
            if guard:
                guard(name, fr, sr, errors)

    ratio = fresh.get(spec["ratio_key"], 0.0)
    if ratio < floor:
        errors.append(
            f"{spec['ratio_key']} {ratio:.3f} below floor {floor:.2f} "
            f"(snapshot recorded {snap.get(spec['ratio_key'], 0.0):.3f})")
    return errors, ratio


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench", required=True, choices=sorted(BENCH_SPECS),
                    help="which bench's thresholds to apply")
    ap.add_argument("--fresh", required=True,
                    help="bench JSON from this run")
    ap.add_argument("--snapshot", required=True,
                    help="committed reference bench JSON")
    ap.add_argument("--min-ratio", type=float, default=None,
                    help="floor for the bench's overall wall-clock ratio "
                         "(default: per-bench)")
    args = ap.parse_args()

    spec = BENCH_SPECS[args.bench]
    floor = args.min_ratio if args.min_ratio is not None \
        else spec["default_floor"]
    errors, ratio = check(spec, load(args.fresh), load(args.snapshot), floor)

    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    print(f"OK [{args.bench}]: counters stable, "
          f"{spec['ratio_key']} x{ratio:.2f} >= {floor:.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
