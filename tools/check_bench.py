#!/usr/bin/env python3
"""Threshold check for bench JSON reports against committed snapshots.

One checker, per-bench threshold specs.  Every bench shares the same
contract:

  * the fresh run's bench arguments must match the snapshot's (comparing
    counters across different workloads is meaningless);
  * the bench's self-check invariants must hold (cross-mode/config
    identity booleans emitted by the bench itself);
  * deterministic counters must equal the snapshot exactly, per circuit
    and per result row — the simulated/searched work is bit-stable across
    commits, so any drift is a behavior change, not noise;
  * wall-clock-derived overall ratios must stay above floors that sit
    deliberately below the locally-measured values to absorb CI runner
    noise (a real regression drops the ratio toward 1.0).

Thread-scaling ratios (marked needs_threads in the spec) are only
meaningful when the machine that produced the fresh report actually has
that many cores: a report recorded with hardware_concurrency below the
thread count can't show a speedup no matter how good the code is, so
those gates downgrade to warnings instead of failing the run.  Identity
gates never downgrade — determinism must hold at any core count.

Supported benches:

  detengine   BENCH_detengine.json — deterministic-engine search counters,
              FrameModel pool-reuse regression guard, flat-layout speedup
              floor (overall_flat_speedup >= 1.15), speculative-targeting
              serial-vs-lanes identity gate plus speedup floor
              (target_speedup >= 1.5 at --threads lanes, thread-scaling).
  faultsim    BENCH_faultsim.json — fault-simulator gate-eval/grouping
              counters per (engine, threads) row, differential-mode
              gate-eval reduction floor (overall_gate_eval_reduction
              >= 1.5).
  faults      BENCH_faults.json — hybrid ATPG per fault model: exact-match
              coverage/test-set counters and digests per (circuit, model)
              row (the schedule is wall-clock-free, so rows are
              machine-independent), execution-shape identity invariants,
              and per-model coverage floors (min_coverage_stuck_at >= 0.5,
              min_coverage_transition >= 0.25).

Usage:
  check_bench.py --bench detengine --fresh build/BENCH_detengine.json \
      --snapshot BENCH_detengine.json [--min-ratio 1.15]
  check_bench.py --bench faultsim --fresh build/BENCH_faultsim.json \
      --snapshot BENCH_faultsim.json [--min-ratio 1.5]

--min-ratio overrides the floor of the bench's first (primary) ratio.
"""

import argparse
import json
import sys


def detengine_pool_guard(name, fresh_row, snap_row, errors):
    """Pool-reuse regression: constructions must not grow (acquires scale
    with the fault count, builds stay at a handful)."""
    if fresh_row.get("model_builds", 0) > snap_row.get("model_builds", 0):
        errors.append(
            f"{name}: pool constructions regressed "
            f"{snap_row.get('model_builds')} -> "
            f"{fresh_row.get('model_builds')} (reset-and-reuse broken?)")


def detengine_targeting(fresh, snap, errors, warnings):
    """Speculative-targeting section: the lane run must be bit-identical to
    the serial run (checked by the bench itself, re-asserted here), and the
    deterministic parts of the speculation ledger must match the snapshot.
    wasted_gate_evals is timing-dependent (how far a discarded lane ran
    before noticing its cancel flag) and is never gated."""
    snap_rows = {t["name"]: t for t in snap.get("targeting", [])}
    fresh_rows = {t["name"]: t for t in fresh.get("targeting", [])}
    for name, st in snap_rows.items():
        ft = fresh_rows.get(name)
        if ft is None:
            errors.append(f"targeting/{name}: missing from fresh run")
            continue
        if not ft.get("identical", False):
            errors.append(
                f"targeting/{name}: lane run diverged from serial "
                f"(in-order-commit determinism broken)")
        for srow in st.get("rows", []):
            frow = next((r for r in ft.get("rows", [])
                         if r.get("lanes") == srow.get("lanes")), None)
            if frow is None:
                errors.append(
                    f"targeting/{name}: no row for lanes="
                    f"{srow.get('lanes')} in fresh run")
                continue
            for counter in ("detected", "vectors", "speculated",
                            "committed", "discarded"):
                if frow.get(counter) != srow.get(counter):
                    errors.append(
                        f"targeting/{name}/lanes={srow.get('lanes')}: "
                        f"{counter} changed {srow.get(counter)} -> "
                        f"{frow.get(counter)}")


def max_row_threads(report):
    """Highest thread count any result row of the report was recorded at
    (plus the top-level lane count, for benches that record one)."""
    threads = [report.get("threads", 0)]
    for circuit in report.get("circuits", []):
        for row in circuit.get("results", []):
            threads.append(row.get("threads", 0))
    return max(threads)


BENCH_SPECS = {
    "detengine": {
        "args": ("max_faults", "backtracks", "solutions", "repeat",
                 "threads"),
        "invariants": {
            "identical_across_modes":
                "a mode/layout changed the search result",
            "counters_unchanged":
                "the flat layout's gate_evals/events diverged from the "
                "legacy layout",
            "targeting_identical":
                "the speculative lane run diverged from the serial run",
        },
        # One result row per engine mode within a circuit.
        "row_key": lambda r: r["engine"],
        "counters": ("decisions", "backtracks", "gate_evals", "events",
                     "solved", "untestable"),
        "row_guards": {"incremental-flat-pooled": detengine_pool_guard},
        "ratios": (
            {"key": "overall_flat_speedup", "floor": 1.15},
            {"key": "target_speedup", "floor": 1.5, "needs_threads": True},
        ),
        "extra": detengine_targeting,
    },
    "faultsim": {
        "args": ("vectors", "repeat"),
        "invariants": {
            "consistent_across_configs":
                "an engine/thread configuration diverged from the "
                "full-sweep reference",
        },
        # One result row per (engine, thread-count) configuration.
        "row_key": lambda r: f"{r['engine']}@t{r['threads']}",
        "counters": ("gate_evals", "good_gate_evals", "group_vectors",
                     "group_vectors_skipped", "groups_repacked", "detected"),
        "row_guards": {},
        "ratios": (
            {"key": "overall_gate_eval_reduction", "floor": 1.5},
        ),
        "extra": None,
    },
    "faults": {
        "args": ("seed", "backtracks", "cap"),
        "invariants": {
            "consistent_across_configs":
                "a fault-sim thread-count or SIMD-width variant diverged "
                "from the base run",
            "stuck_at_matches_default":
                "the fault-model axis is no longer invisible to default "
                "(stuck-at) configurations",
        },
        # One result row per fault model within a circuit.
        "row_key": lambda r: r["model"],
        # The schedule is backtrack-bounded (never wall-clock), so every
        # counter — including the test-set digest — is machine-independent
        # and exact-matched against the committed snapshot.
        "counters": ("faults", "detected", "untestable", "vectors",
                     "targeted", "committed_tests", "digest_tests"),
        "row_guards": {},
        "ratios": (
            {"key": "min_coverage_stuck_at", "floor": 0.5},
            {"key": "min_coverage_transition", "floor": 0.25},
        ),
        "extra": None,
    },
}


def load(path):
    with open(path) as f:
        return json.load(f)


def check(spec, fresh, snap, primary_floor):
    errors = []
    warnings = []

    for key in spec["args"]:
        if fresh.get(key) != snap.get(key):
            errors.append(
                f"bench arg mismatch: {key} fresh={fresh.get(key)} "
                f"snapshot={snap.get(key)} (rerun with the snapshot's args)")

    for key, message in spec["invariants"].items():
        if not fresh.get(key, False):
            errors.append(f"{key} is false: {message}")

    snap_circuits = {c["name"]: c for c in snap.get("circuits", [])}
    fresh_circuits = {c["name"]: c for c in fresh.get("circuits", [])}
    row_key = spec["row_key"]
    for name, sc in snap_circuits.items():
        fc = fresh_circuits.get(name)
        if fc is None:
            errors.append(f"{name}: missing from fresh run")
            continue
        snap_rows = {row_key(r): r for r in sc["results"]}
        fresh_rows = {row_key(r): r for r in fc["results"]}
        for key, sr in snap_rows.items():
            fr = fresh_rows.get(key)
            if fr is None:
                errors.append(f"{name}/{key}: missing from fresh run")
                continue
            for counter in spec["counters"]:
                if fr.get(counter) != sr.get(counter):
                    errors.append(
                        f"{name}/{key}: {counter} changed "
                        f"{sr.get(counter)} -> {fr.get(counter)}")
            guard = spec["row_guards"].get(fr.get("engine"))
            if guard:
                guard(name, fr, sr, errors)

    if spec["extra"]:
        spec["extra"](fresh, snap, errors, warnings)

    # Thread-scaling blind spot: a report recorded on a machine with fewer
    # cores than its highest thread-count row can't show real scaling, so
    # scaling-dependent gates become warnings instead of failures.
    hardware = fresh.get("hardware_concurrency", 0)
    recorded = max_row_threads(fresh)
    underprovisioned = hardware and recorded and hardware < recorded
    if underprovisioned:
        warnings.append(
            f"hardware_concurrency={hardware} is below the report's "
            f"highest thread count ({recorded}); thread-scaling figures "
            f"are not meaningful on this machine")

    ratios = []
    for i, gate in enumerate(spec["ratios"]):
        floor = primary_floor if i == 0 and primary_floor is not None \
            else gate["floor"]
        ratio = fresh.get(gate["key"], 0.0)
        ratios.append((gate["key"], ratio, floor))
        if ratio >= floor:
            continue
        message = (
            f"{gate['key']} {ratio:.3f} below floor {floor:.2f} "
            f"(snapshot recorded {snap.get(gate['key'], 0.0):.3f})")
        if gate.get("needs_threads") and underprovisioned:
            warnings.append(
                message + " — downgraded to a warning: measured with "
                f"hardware_concurrency={hardware}")
        else:
            errors.append(message)
    return errors, warnings, ratios


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench", required=True, choices=sorted(BENCH_SPECS),
                    help="which bench's thresholds to apply")
    ap.add_argument("--fresh", required=True,
                    help="bench JSON from this run")
    ap.add_argument("--snapshot", required=True,
                    help="committed reference bench JSON")
    ap.add_argument("--min-ratio", type=float, default=None,
                    help="floor for the bench's primary wall-clock ratio "
                         "(default: per-bench)")
    args = ap.parse_args()

    spec = BENCH_SPECS[args.bench]
    errors, warnings, ratios = check(
        spec, load(args.fresh), load(args.snapshot), args.min_ratio)

    for w in warnings:
        print(f"WARN: {w}", file=sys.stderr)
    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    summary = ", ".join(f"{key} x{ratio:.2f} (floor {floor:.2f})"
                        for key, ratio, floor in ratios)
    print(f"OK [{args.bench}]: counters stable, {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
