#!/usr/bin/env python3
"""End-to-end kill/resume smoke for the atpgd service.

Drives the daemon binary through its length-prefixed stdin protocol:

  1. reference run: submit a deterministic job (no wall-clock limits:
     pass_budget=0 and time_limit=-1 clear them, backtracks are the
     budget; deadline-free passes also let the per-shard speculative
     targeting lanes engage — lanes=2 with an explicit pool_budget so
     the shards*lanes clamp does not force them back to 1 on small CI
     machines) and record the merged result digests from the "done"
     event;
  2. kill mid-run: submit the same job with per-tick checkpointing, then
     SIGKILL the daemon as soon as the first "pass" event arrives (the
     schedule has more passes to go, so shard snapshots exist and real
     work remains);
  3. resume: start a fresh daemon, resubmit with resume=1, and require
     the digests of the resumed run's "done" event to equal the
     reference's bit for bit.

Exit 0 when the resumed digests match; nonzero (with a diagnostic) on any
protocol error, timeout, or digest mismatch.

Usage: atpgd_smoke.py path/to/atpgd [--circuit g298] [--workdir DIR]
"""

import argparse
import json
import os
import signal
import struct
import subprocess
import sys
import tempfile

JOB_ARGS = ("circuit={circuit} job=smoke shards=2 workers=2 engine=ga-hitec "
            "time_scale=1.0 pass_budget=0 time_limit=-1 backtracks=150 "
            "seed=5 threads=1 store=1 lanes=2 pool_budget=8")
DIGEST_KEYS = ("digest_faults", "digest_tests", "digest_store")


def start(binary):
    return subprocess.Popen([binary], stdin=subprocess.PIPE,
                            stdout=subprocess.PIPE)


def send(proc, command):
    payload = command.encode()
    proc.stdin.write(struct.pack("<I", len(payload)) + payload)
    proc.stdin.flush()


def events(proc):
    """Yields decoded JSON events as the daemon emits them.  readline, not
    file iteration: the iterator's read-ahead would sit on buffered lines
    while the kill timing depends on seeing each event as it lands."""
    for line in iter(proc.stdout.readline, b""):
        yield json.loads(line)


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_to_done(binary, command):
    """Submits one job on a fresh daemon and returns its 'done' event."""
    proc = start(binary)
    try:
        send(proc, command)
        send(proc, "quit")
        proc.stdin.close()
        for event in events(proc):
            if event.get("event") == "error":
                fail(f"daemon error: {event.get('message')}")
            if event.get("event") == "done":
                return event
        fail(f"daemon exited without a done event for: {command}")
    finally:
        proc.kill()
        proc.wait()


def kill_mid_run(binary, command):
    """Submits the job and SIGKILLs the daemon at the first pass event."""
    proc = start(binary)
    send(proc, command)
    saw_pass = False
    for event in events(proc):
        if event.get("event") == "error":
            proc.kill()
            proc.wait()
            fail(f"daemon error before kill: {event.get('message')}")
        if event.get("event") == "pass":
            saw_pass = True
            break
        if event.get("event") == "done":
            # The job finished before we could kill it; the resume leg
            # below still works (it resumes from the final snapshots).
            saw_pass = True
            break
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait()
    if not saw_pass:
        fail("daemon produced no pass event to kill at")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("binary", help="path to the atpgd executable")
    ap.add_argument("--circuit", default="g298")
    ap.add_argument("--workdir", default=None,
                    help="snapshot directory (default: a fresh temp dir)")
    args = ap.parse_args()

    workdir = args.workdir or tempfile.mkdtemp(prefix="atpgd_smoke_")
    os.makedirs(workdir, exist_ok=True)
    snap = os.path.join(workdir, "smoke.snap")
    job = JOB_ARGS.format(circuit=args.circuit)

    reference = run_to_done(args.binary, f"submit {job}")
    print(f"reference: detected={reference['detected']} "
          f"vectors={reference['vectors']}")

    checkpointed = f"submit {job} checkpoint={snap} every_ticks=1"
    kill_mid_run(args.binary, checkpointed)
    shards = [f"{snap}.shard{s}" for s in range(2)]
    if not any(os.path.exists(p) for p in shards):
        fail("kill left no shard snapshot behind")
    print(f"killed mid-run; snapshots: "
          f"{[os.path.basename(p) for p in shards if os.path.exists(p)]}")

    resumed = run_to_done(args.binary, f"{checkpointed} resume=1")
    print(f"resumed:   detected={resumed['detected']} "
          f"vectors={resumed['vectors']}")

    for key in DIGEST_KEYS:
        if resumed.get(key) != reference.get(key):
            fail(f"{key} diverged after resume: "
                 f"{reference.get(key)} != {resumed.get(key)}")
    print("OK: resumed run is bit-identical to the uninterrupted run "
          f"({', '.join(k + '=' + reference[k] for k in DIGEST_KEYS)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
