// Small shared helpers for the microbenchmarks (kept separate from
// tests/helpers so bench binaries do not depend on test code).
#pragma once

#include "netlist/circuit.h"
#include "sim/seqsim.h"
#include "util/rng.h"

namespace gatpg::bench {

inline sim::Sequence random_sequence(const netlist::Circuit& c,
                                     util::Rng& rng, std::size_t length) {
  sim::Sequence seq(length,
                    sim::Vector3(c.primary_inputs().size(), sim::V3::k0));
  for (auto& v : seq) {
    for (auto& bit : v) bit = rng.bit() ? sim::V3::k1 : sim::V3::k0;
  }
  return seq;
}

}  // namespace gatpg::bench
