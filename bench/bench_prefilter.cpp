// Reproduces the conclusion-section speedup claim: "GA-HITEC wastes time
// targeting untestable faults in the first two passes ... If these
// untestable faults can be filtered out in advance, significant speedups can
// be obtained" (the paper singles out s386).
//
// Runs GA-HITEC with and without the combinational-untestability prefilter
// on redundancy-heavy control circuits and compares wall-clock and outcomes.
//
// Usage: bench_prefilter [--time-scale=X] [--seed=N] [names...]
#include <cstdio>

#include "common.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace gatpg;
  std::vector<std::string> names;
  const bench::BenchOptions options =
      bench::parse_options(argc, argv, &names);
  if (names.empty()) names = {"g386", "g820", "g1488"};

  std::printf("Conclusion-section ablation: untestable-fault prefiltering "
              "(time scale %g)\n",
              options.time_scale);
  util::TablePrinter table({"Circuit", "Prefilter", "Det", "Unt", "GA calls",
                            "Time", "Speedup"});
  for (const auto& name : names) {
    const auto c = gen::make_circuit(name);
    double base_time = 0.0;
    for (const bool prefilter : {false, true}) {
      hybrid::HybridConfig cfg;
      cfg.schedule = hybrid::PassSchedule::ga_hitec(options.time_scale);
      for (auto& pass : cfg.schedule.passes) {
        pass.pass_budget_s = options.pass_budget_s;
      }
      cfg.seed = options.seed;
      cfg.prefilter_untestable = prefilter;
      util::Stopwatch timer;
      const auto result = hybrid::HybridAtpg(c, cfg).run();
      const double elapsed = timer.seconds();
      if (!prefilter) base_time = elapsed;
      table.add_row({c.name(), prefilter ? "yes" : "no",
                     std::to_string(result.detected()),
                     std::to_string(result.untestable()),
                     std::to_string(result.counters.ga_invocations),
                     util::format_duration(elapsed),
                     prefilter ? util::format_sig(base_time / elapsed, 3) + "x"
                               : "1x"});
    }
    table.add_rule();
  }
  table.print();
  std::printf("\nShape check (paper): prefiltering cuts GA invocations and "
              "total time without losing detections.\n");
  return 0;
}
