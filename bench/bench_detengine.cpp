// Oblivious vs incremental implication in the deterministic engine (the
// tentpole metric of the FrameModel rework): for each circuit a sample of
// collapsed faults is driven through ForwardEngine::next_solution (plus the
// required_state minimization of every solved fault) under both implication
// engines with identical limits and an unlimited deadline, so the two modes
// perform exactly the same search.
//
// Emits BENCH_detengine.json with wall-clock, decisions/sec, gate-eval and
// event counts per mode, plus the gate-evals-per-decision reduction of the
// incremental engine.  Verifies on the way that per-fault status, decision
// and backtrack counts, vectors, and minimized required states are
// bit-identical across the modes; exit status is nonzero on any mismatch.
//
// Usage: bench_detengine [--seed=N] [--full] [--max-faults=N]
//                        [--backtracks=N] [--solutions=N] [--repeat=N]
//                        [names...]
//   --full adds the largest analog (g5378).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "atpg/detengine.h"
#include "common.h"
#include "fault/faultlist.h"
#include "gen/registry.h"
#include "util/stopwatch.h"

namespace {

using namespace gatpg;

struct FaultResult {
  atpg::ForwardStatus status = atpg::ForwardStatus::kAborted;
  unsigned solutions = 0;
  long decisions = 0;
  long backtracks = 0;
  std::vector<sim::Sequence> vectors;
  std::vector<sim::State3> states;

  bool operator==(const FaultResult&) const = default;
};

struct Sample {
  bool incremental = false;
  double wall_s = 0.0;
  long decisions = 0;
  long backtracks = 0;
  long gate_evals = 0;
  long events = 0;
  std::size_t solved = 0;
  std::size_t untestable = 0;

  double evals_per_decision() const {
    return decisions > 0
               ? static_cast<double>(gate_evals) /
                     static_cast<double>(decisions)
               : 0.0;
  }
  double decisions_per_s() const {
    return wall_s > 0 ? static_cast<double>(decisions) / wall_s : 0.0;
  }
};

struct CircuitResult {
  std::string name;
  std::size_t faults = 0;
  std::size_t sampled = 0;
  Sample oblivious;
  Sample incremental;
  bool identical = true;

  double eval_reduction() const {
    return incremental.gate_evals > 0
               ? static_cast<double>(oblivious.gate_evals) /
                     static_cast<double>(incremental.gate_evals)
               : 0.0;
  }
  double speedup() const {
    return incremental.wall_s > 0 ? oblivious.wall_s / incremental.wall_s
                                  : 0.0;
  }
};

/// Runs one fault to completion (bounded by the backtrack budget and the
/// per-fault solution cap) and records everything the identity check
/// compares.  The unlimited deadline keeps the search deterministic: both
/// modes clip on exactly the same backtrack count, never on wall clock.
FaultResult run_fault(const netlist::Circuit& c, const fault::Fault& f,
                      const atpg::SearchLimits& limits,
                      const atpg::ObsDistances& obs, unsigned max_solutions,
                      Sample& sample) {
  FaultResult r;
  atpg::ForwardEngine engine(c, f, limits, obs);
  const auto deadline = util::Deadline::unlimited();
  for (unsigned s = 0; s < max_solutions; ++s) {
    r.status = engine.next_solution(deadline);
    if (r.status != atpg::ForwardStatus::kSolved) break;
    ++r.solutions;
    r.vectors.push_back(engine.vectors());
    r.states.push_back(engine.required_state());
  }
  const atpg::SearchStats& st = engine.stats();
  r.decisions = st.decisions;
  r.backtracks = st.backtracks;
  sample.decisions += st.decisions;
  sample.backtracks += st.backtracks;
  sample.gate_evals += st.gate_evals;
  sample.events += st.events;
  if (r.solutions > 0) ++sample.solved;
  if (r.status == atpg::ForwardStatus::kUntestable) ++sample.untestable;
  return r;
}

const char* status_name(atpg::ForwardStatus s) {
  switch (s) {
    case atpg::ForwardStatus::kSolved:
      return "solved";
    case atpg::ForwardStatus::kUntestable:
      return "untestable";
    case atpg::ForwardStatus::kExhausted:
      return "exhausted";
    case atpg::ForwardStatus::kAborted:
      return "aborted";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  const bench::BenchOptions options =
      bench::parse_options(argc, argv, &positional);
  std::size_t max_faults = 160;
  long backtracks = 300;
  unsigned max_solutions = 3;
  int repeat = 2;
  std::vector<std::string> names;
  for (const std::string& arg : positional) {
    if (arg.rfind("--max-faults=", 0) == 0) {
      max_faults = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--backtracks=", 0) == 0) {
      backtracks = std::atol(arg.c_str() + 13);
    } else if (arg.rfind("--solutions=", 0) == 0) {
      max_solutions = static_cast<unsigned>(std::atoi(arg.c_str() + 12));
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::atoi(arg.c_str() + 9);
    } else {
      names.push_back(arg);
    }
  }
  if (names.empty()) {
    names = {"g298", "g526", "g820", "g1423"};
    if (options.full) names.push_back("g5378");
  }

  std::printf(
      "Oblivious vs incremental deterministic-engine implication "
      "(max_faults=%zu, backtracks=%ld, solutions=%u, repeat=%d)\n\n",
      max_faults, backtracks, max_solutions, repeat);

  bool consistent = true;
  long obl_evals_total = 0;
  long inc_evals_total = 0;
  long obl_decisions_total = 0;
  long inc_decisions_total = 0;
  std::vector<CircuitResult> results;
  for (const std::string& name : names) {
    const auto c = gen::make_circuit(name);
    const auto faults = fault::collapse(c).faults;
    CircuitResult cr;
    cr.name = name;
    cr.faults = faults.size();

    // Deterministic even sample over the collapsed list.
    const std::size_t stride =
        faults.size() > max_faults ? (faults.size() + max_faults - 1) /
                                         max_faults
                                   : 1;
    std::vector<std::size_t> picks;
    for (std::size_t i = 0; i < faults.size(); i += stride) picks.push_back(i);
    cr.sampled = picks.size();

    const auto obs = atpg::share_observation_distances(c);
    atpg::SearchLimits limits;
    limits.max_backtracks = backtracks;

    std::vector<FaultResult> reference;
    for (const bool incremental : {false, true}) {
      limits.incremental_model = incremental;
      Sample& sample = incremental ? cr.incremental : cr.oblivious;
      sample.incremental = incremental;
      double wall = 0.0;
      for (int rep = 0; rep < repeat; ++rep) {
        Sample scratch;  // only the last repeat's counters are kept
        std::vector<FaultResult> run;
        run.reserve(picks.size());
        const util::Stopwatch sw;
        for (const std::size_t i : picks) {
          run.push_back(run_fault(c, faults[i], limits, obs, max_solutions,
                                  scratch));
        }
        wall += sw.seconds();
        scratch.incremental = incremental;
        scratch.wall_s = sample.wall_s;
        sample = scratch;
        if (rep == 0) {
          if (!incremental) {
            reference = std::move(run);
          } else if (run != reference) {
            cr.identical = false;
            for (std::size_t k = 0; k < run.size(); ++k) {
              if (!(run[k] == reference[k])) {
                std::printf(
                    "ERROR: %s fault #%zu diverges: oblivious %s "
                    "dec=%ld bt=%ld sol=%u vs incremental %s dec=%ld "
                    "bt=%ld sol=%u\n",
                    name.c_str(), picks[k], status_name(reference[k].status),
                    reference[k].decisions, reference[k].backtracks,
                    reference[k].solutions, status_name(run[k].status),
                    run[k].decisions, run[k].backtracks, run[k].solutions);
                break;
              }
            }
          }
        }
      }
      sample.wall_s = wall / repeat;
    }
    consistent = consistent && cr.identical;

    obl_evals_total += cr.oblivious.gate_evals;
    inc_evals_total += cr.incremental.gate_evals;
    obl_decisions_total += cr.oblivious.decisions;
    inc_decisions_total += cr.incremental.decisions;
    for (const Sample* s : {&cr.oblivious, &cr.incremental}) {
      std::printf(
          "%-8s %-11s  wall=%8.2fms  dec=%8ld  bt=%8ld  "
          "gate_evals=%11ld  evals/dec=%8.1f  events=%10ld  "
          "solved=%zu  unt=%zu\n",
          cr.name.c_str(), s->incremental ? "incremental" : "oblivious",
          s->wall_s * 1e3, s->decisions, s->backtracks, s->gate_evals,
          s->evals_per_decision(), s->events, s->solved, s->untestable);
    }
    std::printf("%-8s   gate-eval reduction x%.2f, wall-clock x%.2f, "
                "identity %s\n\n",
                cr.name.c_str(), cr.eval_reduction(), cr.speedup(),
                cr.identical ? "OK" : "FAILED");
    results.push_back(std::move(cr));
  }

  FILE* json = std::fopen("BENCH_detengine.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot write BENCH_detengine.json\n");
    return 1;
  }
  const double overall_reduction =
      inc_evals_total > 0 ? static_cast<double>(obl_evals_total) /
                                static_cast<double>(inc_evals_total)
                          : 0.0;
  std::fprintf(json, "{\n  \"bench\": \"detengine\",\n");
  std::fprintf(json,
               "  \"max_faults\": %zu,\n  \"backtracks\": %ld,\n"
               "  \"solutions\": %u,\n  \"repeat\": %d,\n",
               max_faults, backtracks, max_solutions, repeat);
  std::fprintf(json, "  \"identical_across_modes\": %s,\n",
               consistent ? "true" : "false");
  std::fprintf(json, "  \"overall_gate_eval_reduction\": %.3f,\n",
               overall_reduction);
  std::fprintf(json, "  \"circuits\": [\n");
  for (std::size_t ci = 0; ci < results.size(); ++ci) {
    const CircuitResult& cr = results[ci];
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"faults\": %zu, \"sampled\": %zu, "
                 "\"identical\": %s, \"gate_eval_reduction\": %.3f, "
                 "\"wall_clock_speedup\": %.3f, \"results\": [\n",
                 cr.name.c_str(), cr.faults, cr.sampled,
                 cr.identical ? "true" : "false", cr.eval_reduction(),
                 cr.speedup());
    for (const Sample* s : {&cr.oblivious, &cr.incremental}) {
      std::fprintf(
          json,
          "      {\"engine\": \"%s\", \"wall_s\": %.6f, "
          "\"decisions\": %ld, \"backtracks\": %ld, \"gate_evals\": %ld, "
          "\"events\": %ld, \"evals_per_decision\": %.2f, "
          "\"decisions_per_s\": %.1f, \"solved\": %zu, "
          "\"untestable\": %zu}%s\n",
          s->incremental ? "incremental" : "oblivious", s->wall_s,
          s->decisions, s->backtracks, s->gate_evals, s->events,
          s->evals_per_decision(), s->decisions_per_s(), s->solved,
          s->untestable, s == &cr.oblivious ? "," : "");
    }
    std::fprintf(json, "    ]}%s\n", ci + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf(
      "overall gate-eval reduction (incremental vs oblivious): x%.2f\n",
      overall_reduction);
  std::printf("wrote BENCH_detengine.json%s\n",
              consistent ? "" : " (INCONSISTENT RESULTS)");
  return consistent ? 0 : 1;
}
