// Deterministic per-fault engine storage/implication bench (the tentpole
// metric of the FrameModel rework): for each circuit a sample of collapsed
// faults is driven through ForwardEngine::next_solution (plus the
// required_state minimization of every solved fault) under three
// configurations with identical limits and an unlimited deadline, so all
// modes perform exactly the same search:
//
//   oblivious  — full re-simulation reference, legacy nested-vector layout
//   legacy     — incremental implication, legacy nested-vector layout,
//                one FrameModel construction per fault (the pre-rework
//                production configuration)
//   flat       — incremental implication, flat composite-byte layout, with
//                a shared FrameModelPool so per-fault models are
//                reset-and-reused (the current production configuration)
//
// Emits BENCH_detengine.json with wall-clock, decisions/sec, gate-eval and
// event counts per mode, the gate-evals-per-decision reduction of the
// incremental engine, the flat-vs-legacy wall-clock speedup, and the pool's
// construction/acquire tallies (constructions ≪ acquires proves reuse).
// Verifies on the way that per-fault status, decision and backtrack counts,
// vectors, and minimized required states are bit-identical across all three
// modes and that the deterministic counters (gate_evals, events) of the
// flat layout exactly match the legacy layout; exit status is nonzero on
// any mismatch.
//
// A second phase benches speculative parallel fault targeting (DESIGN.md
// §4j): each circuit runs a backtrack-bounded hybrid session serially and
// at --threads=N lanes, verifies the two results are bit-identical (the
// in-order-commit determinism contract), and records the lane path's
// speculation ledger — speculated / committed / discarded tasks and the
// wasted gate evaluations of discarded work — plus the serial/parallel
// wall-clock ratio and the host's hardware_concurrency (so the checker
// knows when the speedup figure was measured without enough cores to
// mean anything).
//
// Usage: bench_detengine [--seed=N] [--full] [--threads=N] [--max-faults=N]
//                        [--backtracks=N] [--solutions=N] [--repeat=N]
//                        [names...]
//   --full adds the largest analog (g5378); --threads sets the speculative
//   lane count of the targeting phase (default 4).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "atpg/detengine.h"
#include "common.h"
#include "fault/faultlist.h"
#include "gen/registry.h"
#include "hybrid/hybrid_atpg.h"
#include "netlist/depth.h"
#include "session/session.h"
#include "util/json_writer.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace gatpg;

struct ModeSpec {
  const char* key;  // JSON/report identifier
  bool incremental;
  bool flat;
  bool pooled;
};

constexpr ModeSpec kModes[] = {
    {"oblivious", false, false, false},
    {"incremental-legacy", true, false, false},
    {"incremental-flat-pooled", true, true, true},
};
constexpr std::size_t kModeCount = sizeof(kModes) / sizeof(kModes[0]);

struct FaultResult {
  atpg::ForwardStatus status = atpg::ForwardStatus::kAborted;
  unsigned solutions = 0;
  long decisions = 0;
  long backtracks = 0;
  std::vector<sim::Sequence> vectors;
  std::vector<sim::State3> states;

  bool operator==(const FaultResult&) const = default;
};

struct Sample {
  const ModeSpec* mode = nullptr;
  double wall_s = 0.0;
  long decisions = 0;
  long backtracks = 0;
  long gate_evals = 0;
  long events = 0;
  std::size_t solved = 0;
  std::size_t untestable = 0;
  // Pool tallies (pooled mode only; zero otherwise).
  std::size_t model_builds = 0;
  std::size_t model_acquires = 0;

  double evals_per_decision() const {
    return decisions > 0
               ? static_cast<double>(gate_evals) /
                     static_cast<double>(decisions)
               : 0.0;
  }
  double decisions_per_s() const {
    return wall_s > 0 ? static_cast<double>(decisions) / wall_s : 0.0;
  }
};

struct CircuitResult {
  std::string name;
  std::size_t faults = 0;
  std::size_t sampled = 0;
  Sample samples[kModeCount];
  bool identical = true;

  const Sample& oblivious() const { return samples[0]; }
  const Sample& legacy() const { return samples[1]; }
  const Sample& flat() const { return samples[2]; }

  double eval_reduction() const {
    return legacy().gate_evals > 0
               ? static_cast<double>(oblivious().gate_evals) /
                     static_cast<double>(legacy().gate_evals)
               : 0.0;
  }
  /// Wall-clock speedup of the reworked layout+pool over the pre-rework
  /// incremental configuration (same implication engine, same search).
  double flat_speedup() const {
    return flat().wall_s > 0 ? legacy().wall_s / flat().wall_s : 0.0;
  }
  /// The flat layout must not change what the engine computes: its
  /// deterministic effort counters match the legacy layout exactly.
  bool counters_unchanged() const {
    return legacy().gate_evals == flat().gate_evals &&
           legacy().events == flat().events &&
           legacy().decisions == flat().decisions &&
           legacy().backtracks == flat().backtracks;
  }
};

/// Runs one fault to completion (bounded by the backtrack budget and the
/// per-fault solution cap) and records everything the identity check
/// compares.  The unlimited deadline keeps the search deterministic: all
/// modes clip on exactly the same backtrack count, never on wall clock.
FaultResult run_fault(const netlist::Circuit& c, const fault::Fault& f,
                      const atpg::SearchLimits& limits,
                      const atpg::ObsDistances& obs, unsigned max_solutions,
                      atpg::FrameModelPool* pool, Sample& sample) {
  FaultResult r;
  atpg::ForwardEngine engine(c, f, limits, obs, pool);
  const auto deadline = util::Deadline::unlimited();
  for (unsigned s = 0; s < max_solutions; ++s) {
    r.status = engine.next_solution(deadline);
    if (r.status != atpg::ForwardStatus::kSolved) break;
    ++r.solutions;
    r.vectors.push_back(engine.vectors());
    r.states.push_back(engine.required_state());
  }
  const atpg::SearchStats& st = engine.stats();
  r.decisions = st.decisions;
  r.backtracks = st.backtracks;
  sample.decisions += st.decisions;
  sample.backtracks += st.backtracks;
  sample.gate_evals += st.gate_evals;
  sample.events += st.events;
  if (r.solutions > 0) ++sample.solved;
  if (r.status == atpg::ForwardStatus::kUntestable) ++sample.untestable;
  return r;
}

// ---------------------------------------------------------------------------
// Phase 2: speculative parallel fault targeting (serial vs N lanes).

/// Backtrack-bounded GA+deterministic schedule — no wall-clock limits, the
/// shape the speculative lane path accepts, so serial and lane runs are a
/// pure function of (circuit, fault list, seed) and comparable bit for bit.
hybrid::HybridConfig targeting_config(unsigned lanes, std::uint64_t seed,
                                      long backtracks) {
  hybrid::HybridConfig cfg;
  session::PassConfig ga;
  ga.mode = session::JustifyMode::kGenetic;
  ga.time_limit_s = 0.0;
  ga.max_backtracks = backtracks;
  ga.ga_population = 64;
  ga.ga_generations = 2;
  ga.seq_len_multiplier = 2.0;
  session::PassConfig det;
  det.mode = session::JustifyMode::kDeterministic;
  det.time_limit_s = 0.0;
  det.max_backtracks = backtracks;
  cfg.schedule.passes = {ga, det};
  cfg.max_solutions_per_fault = 4;
  cfg.seed = seed;
  cfg.parallel.threads = 1;
  cfg.state_store.enabled = true;
  cfg.target_parallel.lanes = lanes;
  return cfg;
}

struct TargetSample {
  unsigned lanes = 1;
  double wall_s = 0.0;
  hybrid::SpecStats spec;
  session::SessionResult result;
};

TargetSample run_targeting(const netlist::Circuit& c,
                           const fault::FaultList& faults, unsigned lanes,
                           std::uint64_t seed, long backtracks, int repeat) {
  const hybrid::HybridConfig cfg = targeting_config(lanes, seed, backtracks);
  session::SessionConfig scfg;
  scfg.faultsim = cfg.faultsim;
  scfg.faultsim.parallel = cfg.parallel;
  scfg.state_store = cfg.state_store;
  scfg.target_parallel = cfg.target_parallel;
  TargetSample out;
  out.lanes = lanes;
  for (int rep = 0; rep < repeat; ++rep) {
    session::Session s(c, faults, scfg);
    util::Rng rng(cfg.seed);
    hybrid::HybridEngine engine(c, cfg, netlist::sequential_depth(c), rng);
    const util::Stopwatch sw;
    session::SessionResult result = s.run(engine, cfg.schedule);
    const double elapsed = sw.seconds();
    // Min across repeats (noise only adds time); the counters and the
    // speculation ledger are kept from the last repeat — the task counts
    // are deterministic, only wasted_gate_evals varies with how far a
    // discarded lane got before noticing the cancel flag.
    out.wall_s = rep == 0 ? elapsed : std::min(out.wall_s, elapsed);
    out.spec = engine.spec_stats();
    out.result = std::move(result);
  }
  return out;
}

/// The determinism contract of DESIGN.md §4j, checked on the bench's own
/// runs: every output bit of the lane run equals the serial run.
bool targeting_identical(const session::SessionResult& a,
                         const session::SessionResult& b) {
  return a.digests.faults == b.digests.faults &&
         a.digests.tests == b.digests.tests &&
         a.digests.store == b.digests.store &&
         a.fault_state == b.fault_state && a.test_set == b.test_set &&
         a.segments == b.segments &&
         a.counters.committed_tests == b.counters.committed_tests &&
         a.counters.det_gate_evals == b.counters.det_gate_evals;
}

const char* status_name(atpg::ForwardStatus s) {
  switch (s) {
    case atpg::ForwardStatus::kSolved:
      return "solved";
    case atpg::ForwardStatus::kUntestable:
      return "untestable";
    case atpg::ForwardStatus::kExhausted:
      return "exhausted";
    case atpg::ForwardStatus::kAborted:
      return "aborted";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  const bench::BenchOptions options =
      bench::parse_options(argc, argv, &positional);
  std::size_t max_faults = 160;
  long backtracks = 300;
  unsigned max_solutions = 3;
  int repeat = 2;
  std::vector<std::string> names;
  for (const std::string& arg : positional) {
    if (arg.rfind("--max-faults=", 0) == 0) {
      max_faults = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--backtracks=", 0) == 0) {
      backtracks = std::atol(arg.c_str() + 13);
    } else if (arg.rfind("--solutions=", 0) == 0) {
      max_solutions = static_cast<unsigned>(std::atoi(arg.c_str() + 12));
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::atoi(arg.c_str() + 9);
    } else {
      names.push_back(arg);
    }
  }
  if (names.empty()) {
    names = {"g298", "g526", "g820", "g1423"};
    if (options.full) names.push_back("g5378");
  }

  std::printf(
      "Deterministic-engine implication/storage bench "
      "(max_faults=%zu, backtracks=%ld, solutions=%u, repeat=%d)\n\n",
      max_faults, backtracks, max_solutions, repeat);

  bool consistent = true;
  bool counters_ok = true;
  long obl_evals_total = 0;
  long inc_evals_total = 0;
  double legacy_wall_total = 0.0;
  double flat_wall_total = 0.0;
  std::vector<CircuitResult> results;
  for (const std::string& name : names) {
    const auto c = gen::make_circuit(name);
    const auto faults = fault::collapse(c).faults;
    CircuitResult cr;
    cr.name = name;
    cr.faults = faults.size();

    // Deterministic even sample over the collapsed list.
    const std::size_t stride =
        faults.size() > max_faults ? (faults.size() + max_faults - 1) /
                                         max_faults
                                   : 1;
    std::vector<std::size_t> picks;
    for (std::size_t i = 0; i < faults.size(); i += stride) picks.push_back(i);
    cr.sampled = picks.size();

    const auto obs = atpg::share_observation_distances(c);
    atpg::SearchLimits limits;
    limits.max_backtracks = backtracks;

    std::vector<FaultResult> reference;
    for (std::size_t m = 0; m < kModeCount; ++m) {
      const ModeSpec& mode = kModes[m];
      limits.incremental_model = mode.incremental;
      limits.flat_model = mode.flat;
      Sample& sample = cr.samples[m];
      sample.mode = &mode;
      // Min across repeats: the noise-robust estimator (scheduler
      // interference only ever adds time).
      double wall = 0.0;
      for (int rep = 0; rep < repeat; ++rep) {
        Sample scratch;  // only the last repeat's counters are kept
        std::vector<FaultResult> run;
        run.reserve(picks.size());
        // A fresh pool per repeat keeps the tallies comparable run-to-run.
        atpg::FrameModelPool pool(c);
        atpg::FrameModelPool* pool_ptr = mode.pooled ? &pool : nullptr;
        const util::Stopwatch sw;
        for (const std::size_t i : picks) {
          run.push_back(run_fault(c, faults[i], limits, obs, max_solutions,
                                  pool_ptr, scratch));
        }
        const double elapsed = sw.seconds();
        wall = rep == 0 ? elapsed : std::min(wall, elapsed);
        scratch.mode = &mode;
        scratch.model_builds = mode.pooled ? pool.constructions() : 0;
        scratch.model_acquires = mode.pooled ? pool.acquires() : 0;
        sample = scratch;
        if (rep == 0) {
          if (m == 0) {
            reference = std::move(run);
          } else if (run != reference) {
            cr.identical = false;
            for (std::size_t k = 0; k < run.size(); ++k) {
              if (!(run[k] == reference[k])) {
                std::printf(
                    "ERROR: %s fault #%zu diverges: oblivious %s "
                    "dec=%ld bt=%ld sol=%u vs %s %s dec=%ld "
                    "bt=%ld sol=%u\n",
                    name.c_str(), picks[k], status_name(reference[k].status),
                    reference[k].decisions, reference[k].backtracks,
                    reference[k].solutions, mode.key,
                    status_name(run[k].status), run[k].decisions,
                    run[k].backtracks, run[k].solutions);
                break;
              }
            }
          }
        }
      }
      sample.wall_s = wall;
    }
    consistent = consistent && cr.identical;
    if (!cr.counters_unchanged()) {
      counters_ok = false;
      std::printf(
          "ERROR: %s deterministic counters differ between layouts: "
          "legacy gate_evals=%ld events=%ld vs flat gate_evals=%ld "
          "events=%ld\n",
          name.c_str(), cr.legacy().gate_evals, cr.legacy().events,
          cr.flat().gate_evals, cr.flat().events);
    }

    obl_evals_total += cr.oblivious().gate_evals;
    inc_evals_total += cr.legacy().gate_evals;
    legacy_wall_total += cr.legacy().wall_s;
    flat_wall_total += cr.flat().wall_s;
    for (const Sample& s : cr.samples) {
      std::printf(
          "%-8s %-23s  wall=%8.2fms  dec=%8ld  bt=%8ld  "
          "gate_evals=%11ld  evals/dec=%8.1f  events=%10ld  "
          "solved=%zu  unt=%zu",
          cr.name.c_str(), s.mode->key, s.wall_s * 1e3, s.decisions,
          s.backtracks, s.gate_evals, s.evals_per_decision(), s.events,
          s.solved, s.untestable);
      if (s.mode->pooled) {
        std::printf("  builds=%zu acquires=%zu", s.model_builds,
                    s.model_acquires);
      }
      std::printf("\n");
    }
    std::printf(
        "%-8s   gate-eval reduction x%.2f, flat wall-clock x%.2f, "
        "identity %s, counters %s\n\n",
        cr.name.c_str(), cr.eval_reduction(), cr.flat_speedup(),
        cr.identical ? "OK" : "FAILED",
        cr.counters_unchanged() ? "unchanged" : "CHANGED");
    results.push_back(std::move(cr));
  }

  const double overall_reduction =
      inc_evals_total > 0 ? static_cast<double>(obl_evals_total) /
                                static_cast<double>(inc_evals_total)
                          : 0.0;
  const double overall_flat_speedup =
      flat_wall_total > 0 ? legacy_wall_total / flat_wall_total : 0.0;

  // Phase 2: speculative parallel targeting, serial vs `lanes` lanes.
  const unsigned lanes = options.threads ? options.threads : 4;
  const unsigned hardware = util::ParallelConfig{}.resolved();
  std::printf(
      "Speculative targeting phase (lanes=%u, hardware_concurrency=%u)\n\n",
      lanes, hardware);
  struct TargetingRow {
    std::string name;
    std::size_t faults = 0;
    TargetSample serial;
    TargetSample parallel;
    bool identical = false;
  };
  std::vector<TargetingRow> targeting;
  bool targeting_ok = true;
  double serial_wall_total = 0.0;
  double lanes_wall_total = 0.0;
  for (const std::string& name : names) {
    const auto c = gen::make_circuit(name);
    fault::FaultList tf = fault::collapse(c);
    if (tf.size() > max_faults) {
      tf.faults.resize(max_faults);
      tf.class_sizes.resize(max_faults);
    }
    TargetingRow row;
    row.name = name;
    row.faults = tf.size();
    row.serial =
        run_targeting(c, tf, 1, options.seed, backtracks, repeat);
    row.parallel =
        run_targeting(c, tf, lanes, options.seed, backtracks, repeat);
    row.identical = targeting_identical(row.serial.result,
                                        row.parallel.result);
    if (!row.identical) {
      targeting_ok = false;
      std::printf(
          "ERROR: %s lane targeting diverges from serial "
          "(tests %zu vs %zu, digest %016llx vs %016llx)\n",
          name.c_str(), row.serial.result.test_set.size(),
          row.parallel.result.test_set.size(),
          static_cast<unsigned long long>(row.serial.result.digests.tests),
          static_cast<unsigned long long>(
              row.parallel.result.digests.tests));
    }
    serial_wall_total += row.serial.wall_s;
    lanes_wall_total += row.parallel.wall_s;
    std::printf(
        "%-8s serial=%8.2fms  lanes(%u)=%8.2fms  x%.2f  spec=%ld "
        "committed=%ld discarded=%ld wasted_evals=%ld  identity %s\n",
        name.c_str(), row.serial.wall_s * 1e3, lanes,
        row.parallel.wall_s * 1e3,
        row.parallel.wall_s > 0 ? row.serial.wall_s / row.parallel.wall_s
                                : 0.0,
        row.parallel.spec.speculated, row.parallel.spec.committed,
        row.parallel.spec.discarded, row.parallel.spec.wasted_gate_evals,
        row.identical ? "OK" : "FAILED");
    targeting.push_back(std::move(row));
  }
  const double target_speedup =
      lanes_wall_total > 0 ? serial_wall_total / lanes_wall_total : 0.0;
  std::printf("\n");
  util::JsonWriter json(util::JsonWriter::Style::kPretty);
  json.begin_object();
  json.field("bench", "detengine");
  json.field("max_faults", max_faults);
  json.field("backtracks", backtracks);
  json.field("solutions", max_solutions);
  json.field("repeat", repeat);
  json.field("threads", lanes);
  json.field("hardware_concurrency", hardware);
  json.field("identical_across_modes", consistent);
  json.field("counters_unchanged", counters_ok);
  json.field("targeting_identical", targeting_ok);
  json.field("overall_gate_eval_reduction", overall_reduction);
  json.field("overall_flat_speedup", overall_flat_speedup);
  json.field("target_speedup", target_speedup);
  json.key("circuits").begin_array();
  for (const CircuitResult& cr : results) {
    json.begin_object();
    json.field("name", cr.name);
    json.field("faults", cr.faults);
    json.field("sampled", cr.sampled);
    json.field("identical", cr.identical);
    json.field("counters_unchanged", cr.counters_unchanged());
    json.field("gate_eval_reduction", cr.eval_reduction());
    json.field("flat_speedup", cr.flat_speedup());
    json.key("results").begin_array();
    for (std::size_t m = 0; m < kModeCount; ++m) {
      const Sample& s = cr.samples[m];
      json.begin_object();
      json.field("engine", s.mode->key);
      json.field("wall_s", s.wall_s);
      json.field("decisions", s.decisions);
      json.field("backtracks", s.backtracks);
      json.field("gate_evals", s.gate_evals);
      json.field("events", s.events);
      json.field("evals_per_decision", s.evals_per_decision());
      json.field("decisions_per_s", s.decisions_per_s());
      json.field("solved", s.solved);
      json.field("untestable", s.untestable);
      json.field("model_builds", s.model_builds);
      json.field("model_acquires", s.model_acquires);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.key("targeting").begin_array();
  for (const TargetingRow& row : targeting) {
    json.begin_object();
    json.field("name", row.name);
    json.field("faults", row.faults);
    json.field("identical", row.identical);
    json.field("speedup", row.parallel.wall_s > 0
                              ? row.serial.wall_s / row.parallel.wall_s
                              : 0.0);
    json.key("rows").begin_array();
    for (const TargetSample* s : {&row.serial, &row.parallel}) {
      json.begin_object();
      json.field("lanes", s->lanes);
      json.field("wall_s", s->wall_s);
      json.field("detected", s->result.detected());
      json.field("vectors", s->result.test_set.size());
      json.field("speculated", s->spec.speculated);
      json.field("committed", s->spec.committed);
      json.field("discarded", s->spec.discarded);
      // Timing-dependent (how far a discarded lane ran before noticing the
      // cancel flag): report-only, never gated.
      json.field("wasted_gate_evals", s->spec.wasted_gate_evals);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  if (!json.write_file("BENCH_detengine.json")) {
    std::fprintf(stderr, "cannot write BENCH_detengine.json\n");
    return 1;
  }
  std::printf(
      "overall gate-eval reduction (incremental vs oblivious): x%.2f\n",
      overall_reduction);
  std::printf(
      "overall flat-layout wall-clock speedup (vs legacy incremental): "
      "x%.2f\n",
      overall_flat_speedup);
  std::printf(
      "speculative targeting speedup (serial vs %u lanes): x%.2f%s\n", lanes,
      target_speedup,
      hardware < lanes ? " [hardware_concurrency below lane count]" : "");
  std::printf("wrote BENCH_detengine.json%s\n",
              consistent && counters_ok && targeting_ok
                  ? ""
                  : " (INCONSISTENT RESULTS)");
  return consistent && counters_ok && targeting_ok ? 0 : 1;
}
