// Reproduces Table II: GA-HITEC vs HITEC on the ISCAS89 suite.
//
// Real s*.bench files in the data directory are used when present; otherwise
// the generated analog circuits stand in (g298 tracks s298, etc. —
// DESIGN.md, "Substitutions").  For each circuit, three result lines show
// cumulative Det/Vec/Time/Unt after passes 1..3 for both engines, exactly
// like the paper's table layout.
//
// Usage: bench_table2_iscas [--time-scale=X] [--full] [--seed=N] [names...]
//   --full adds the largest analog (g5378), which dominates runtime.
#include <cstdio>

#include "common.h"

int main(int argc, char** argv) {
  using namespace gatpg;
  std::vector<std::string> names;
  const bench::BenchOptions options =
      bench::parse_options(argc, argv, &names);

  if (names.empty()) {
    names = {"s27",  "g298",  "g344", "g349",  "g382",  "g386",
             "g400", "g444",  "g526", "g641",  "g713",  "g820",
             "g832", "g1196", "g1238", "g1423", "g1488", "g1494"};
    if (options.full) names.push_back("g5378");
  }

  std::printf("Table II: GA-HITEC vs HITEC (time scale %g; analogs unless "
              "real .bench present)\n",
              options.time_scale);
  bench::print_comparison_banner();
  bench::JsonReport json;
  bench::JsonReport* json_ptr = options.json_path.empty() ? nullptr : &json;
  auto table = bench::make_comparison_table();
  for (const std::string& name : names) {
    const auto circuit = gen::make_circuit(name);
    // The paper used sequence lengths of 1/4 and 1/2 of the sequential depth
    // for the two deepest circuits, 4x/8x otherwise; our analogs are all in
    // the "4x/8x" regime.
    const auto row =
        bench::run_comparison(circuit, options, std::nullopt, json_ptr);
    bench::add_comparison_rows(table, row);
  }
  table.print();
  std::printf(
      "\nShape checks (paper): GA-HITEC Det >= HITEC Det after pass 3 on "
      "most circuits;\nHITEC identifies more untestables in early passes; "
      "counts converge after pass 3.\n");
  bench::finish_json(options, json);
  return 0;
}
