// Thread-scaling bench for the worker-pool layer: the Table-II fault
// simulation workload (session-style FaultSimulator::run sweeps plus the
// what_if fitness kernel over the full fault list) on ISCAS-analog circuits
// at 1/2/4/8 threads.
//
// Emits BENCH_parallel.json with per-circuit wall-clock numbers and speedup
// curves relative to threads=1, and verifies on the way that detection
// counts and what_if results are bit-identical across thread counts (the
// layer's core invariant).  Exit status is nonzero on any mismatch.
//
// Usage: bench_parallel [--seed=N] [--full] [--vectors=N] [--repeat=N]
//                       [names...]
//   --full adds the largest analog (g5378).
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "common.h"
#include "fault/faultlist.h"
#include "fault/faultsim.h"
#include "helpers_bench.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace {

struct Sample {
  unsigned threads = 0;
  double run_s = 0.0;      // session sweep (FaultSimulator::run)
  double what_if_s = 0.0;  // fitness kernel (FaultSimulator::what_if)
  std::size_t detected = 0;
  unsigned what_if_detected = 0;
  unsigned what_if_effects = 0;
};

struct CircuitResult {
  std::string name;
  std::size_t faults = 0;
  std::vector<Sample> samples;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gatpg;

  std::vector<std::string> positional;
  const bench::BenchOptions options =
      bench::parse_options(argc, argv, &positional);
  std::size_t vectors = 96;
  int repeat = 3;
  std::vector<std::string> names;
  for (const std::string& arg : positional) {
    if (arg.rfind("--vectors=", 0) == 0) {
      vectors = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::atoi(arg.c_str() + 9);
    } else {
      names.push_back(arg);
    }
  }
  if (names.empty()) {
    names = {"g298", "g526", "g820", "g1423"};
    if (options.full) names.push_back("g5378");
  }
  const std::vector<unsigned> thread_counts = {1, 2, 4, 8};

  std::printf("Parallel fault-simulation scaling (vectors=%zu, repeat=%d, "
              "hardware_concurrency=%u)\n\n",
              vectors, repeat, util::ParallelConfig{}.resolved());

  bool consistent = true;
  std::vector<CircuitResult> results;
  for (const std::string& name : names) {
    const auto c = gen::make_circuit(name);
    const auto faults = fault::collapse(c).faults;
    CircuitResult cr;
    cr.name = name;
    cr.faults = faults.size();

    std::vector<std::size_t> all_indices(faults.size());
    std::iota(all_indices.begin(), all_indices.end(), 0);

    for (const unsigned threads : thread_counts) {
      Sample sample;
      sample.threads = threads;
      fault::FaultSimulator fs(c, faults, {threads});

      // Session sweep: fresh session per repeat, several run() extensions
      // so persistent faulty state and fault dropping are exercised.
      double run_s = 0.0;
      for (int rep = 0; rep < repeat; ++rep) {
        fs.reset_all();
        util::Rng rng(options.seed);
        const util::Stopwatch sw;
        for (int chunk = 0; chunk < 4; ++chunk) {
          fs.run(bench::random_sequence(c, rng, vectors / 4));
        }
        run_s += sw.seconds();
        sample.detected = fs.detected_count();
      }
      sample.run_s = run_s / repeat;

      // Fitness kernel: what_if over the full fault list (the GA's
      // per-candidate grading workload), from the power-up session state.
      fs.reset_all();
      util::Rng rng(options.seed + 7);
      const auto probe = bench::random_sequence(c, rng, vectors / 4);
      double what_if_s = 0.0;
      for (int rep = 0; rep < repeat; ++rep) {
        const util::Stopwatch sw;
        const auto w = fs.what_if(all_indices, probe);
        what_if_s += sw.seconds();
        sample.what_if_detected = w.detected;
        sample.what_if_effects = w.state_effects;
      }
      sample.what_if_s = what_if_s / repeat;
      cr.samples.push_back(sample);
    }

    const Sample& base = cr.samples.front();
    for (const Sample& s : cr.samples) {
      if (s.detected != base.detected ||
          s.what_if_detected != base.what_if_detected ||
          s.what_if_effects != base.what_if_effects) {
        std::printf("ERROR: %s threads=%u diverges from threads=1 "
                    "(det %zu vs %zu, what_if %u/%u vs %u/%u)\n",
                    cr.name.c_str(), s.threads, s.detected, base.detected,
                    s.what_if_detected, s.what_if_effects,
                    base.what_if_detected, base.what_if_effects);
        consistent = false;
      }
      std::printf("%-8s threads=%u  run=%8.2fms (x%.2f)  "
                  "what_if=%8.2fms (x%.2f)  det=%zu\n",
                  cr.name.c_str(), s.threads, s.run_s * 1e3,
                  s.run_s > 0 ? base.run_s / s.run_s : 0.0,
                  s.what_if_s * 1e3,
                  s.what_if_s > 0 ? base.what_if_s / s.what_if_s : 0.0,
                  s.detected);
    }
    std::printf("\n");
    results.push_back(std::move(cr));
  }

  FILE* json = std::fopen("BENCH_parallel.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot write BENCH_parallel.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"parallel\",\n");
  std::fprintf(json, "  \"hardware_concurrency\": %u,\n",
               util::ParallelConfig{}.resolved());
  std::fprintf(json, "  \"vectors\": %zu,\n  \"repeat\": %d,\n", vectors,
               repeat);
  std::fprintf(json, "  \"consistent_across_threads\": %s,\n",
               consistent ? "true" : "false");
  std::fprintf(json, "  \"circuits\": [\n");
  for (std::size_t ci = 0; ci < results.size(); ++ci) {
    const CircuitResult& cr = results[ci];
    const Sample& base = cr.samples.front();
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"faults\": %zu, \"results\": [\n",
                 cr.name.c_str(), cr.faults);
    for (std::size_t si = 0; si < cr.samples.size(); ++si) {
      const Sample& s = cr.samples[si];
      std::fprintf(
          json,
          "      {\"threads\": %u, \"run_s\": %.6f, \"what_if_s\": %.6f, "
          "\"speedup_run\": %.3f, \"speedup_what_if\": %.3f, "
          "\"detected\": %zu, \"what_if_detected\": %u, "
          "\"what_if_state_effects\": %u}%s\n",
          s.threads, s.run_s, s.what_if_s,
          s.run_s > 0 ? base.run_s / s.run_s : 0.0,
          s.what_if_s > 0 ? base.what_if_s / s.what_if_s : 0.0, s.detected,
          s.what_if_detected, s.what_if_effects,
          si + 1 < cr.samples.size() ? "," : "");
    }
    std::fprintf(json, "    ]}%s\n", ci + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_parallel.json%s\n",
              consistent ? "" : " (INCONSISTENT RESULTS)");
  return consistent ? 0 : 1;
}
