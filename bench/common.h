// Shared harness pieces for the table-reproduction benches.
//
// Each bench binary reproduces one table/figure of the paper.  The central
// routine runs both test generators (GA-HITEC and the HITEC baseline) on a
// circuit with the paper's pass schedules (wall-clock limits scaled by
// --time-scale) and prints rows in the paper's format: one line per pass
// with cumulative Det / Vec / Time / Unt.
//
// Absolute numbers differ from the 1995 paper by construction (different
// hardware, generated analog circuits); the *shape* — who detects more per
// pass, roughly equal untestable counts after the deterministic pass,
// where the hybrid wins — is the reproduction target (see EXPERIMENTS.md).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fault/grading.h"
#include "gen/registry.h"
#include "hybrid/hybrid_atpg.h"
#include "netlist/depth.h"
#include "session/observer.h"
#include "util/tableprint.h"

namespace gatpg::bench {

struct BenchOptions {
  double time_scale = 0.01;
  /// Wall-clock cap per pass per engine (keeps default bench sweeps
  /// bounded; the paper ran uncapped for up to 39 hours).  0 = uncapped.
  double pass_budget_s = 2.0;
  bool full = false;  // include the slowest circuits
  std::uint64_t seed = 1;
  /// Worker threads for fault simulation / GA evaluation (0 =
  /// hardware_concurrency, 1 = serial); results are thread-count-invariant.
  unsigned threads = 0;
  /// When non-empty, the bench writes machine-readable results here.
  std::string json_path;
};

/// Parses --time-scale=X, --pass-budget=X, --full, --seed=N, --threads=N,
/// --json=FILE; everything else is returned as a positional arg (circuit
/// names for the table benches).
BenchOptions parse_options(int argc, char** argv,
                           std::vector<std::string>* positional = nullptr);

/// Machine-readable bench output, collected through the session-layer
/// ProgressObserver hook: one record per generator run with its per-pass
/// cumulative rows, written as a JSON array.
class JsonReport {
 public:
  /// Observer for one generator run.  Attach via the generator's observer
  /// parameter; the record is appended to the report on session end.  Must
  /// stay alive (and at a stable address) for the whole run.
  class Run : public session::ProgressObserver {
   public:
    Run(JsonReport* report, std::string circuit, std::string engine);

    void on_pass_end(const session::Session& session, std::size_t pass_index,
                     const session::PassOutcome& outcome) override;
    void on_session_end(const session::Session& session,
                        const session::SessionResult& result) override;

   private:
    JsonReport* report_;
    std::string circuit_;
    std::string engine_;
    std::vector<session::PassOutcome> passes_;
  };

  /// Makes an observer feeding this report; `report` may be null (the
  /// returned Run is then inert), so call sites need no branching on
  /// whether --json was given.
  static Run observe(JsonReport* report, std::string circuit,
                     std::string engine);

  bool empty() const { return records_.empty(); }
  /// Writes the collected records as a JSON array; returns false on I/O
  /// failure.
  bool write_file(const std::string& path) const;

 private:
  friend class Run;
  struct Record {
    std::string circuit;
    std::string engine;
    std::size_t total_faults = 0;
    std::size_t detected = 0;
    std::size_t untestable = 0;
    std::size_t vectors = 0;
    std::vector<session::PassOutcome> passes;
  };
  std::vector<Record> records_;
};

struct ComparisonRow {
  std::string circuit;
  unsigned depth = 0;
  std::size_t total_faults = 0;
  hybrid::AtpgResult ga_hitec;
  hybrid::AtpgResult hitec;
};

/// Runs both engines on one circuit.  `seq_len_override` (pair for passes
/// 1/2) reproduces the paper's fixed sequence lengths for the synthesized
/// circuits; nullopt uses the 4x/8x sequential-depth rule.  When `json` is
/// given, both runs are recorded through JsonReport observers.
ComparisonRow run_comparison(
    const netlist::Circuit& c, const BenchOptions& options,
    std::optional<std::pair<unsigned, unsigned>> seq_len_override =
        std::nullopt,
    JsonReport* json = nullptr);

/// Appends the paper-style three-line block for one circuit to a printer
/// with columns: Circuit Depth Faults | Det Vec Time Unt | Det Vec Time Unt.
void add_comparison_rows(util::TablePrinter& table, const ComparisonRow& row);

/// The standard header for Table II/III style output: the `title` line, the
/// GA-HITEC / HITEC column banner, and the table printer itself.
util::TablePrinter make_comparison_table();
void print_comparison_banner();

/// One-line-per-engine summary table (bench_alternatives style): columns
/// Circuit Engine Det Unt Vec Time Cov%.
util::TablePrinter make_engine_table();
void add_engine_row(util::TablePrinter& table, const std::string& circuit,
                    const std::string& engine, std::size_t total_faults,
                    const session::SessionResult& result, double time_s);

/// Writes `report` to options.json_path when set; prints a confirmation or
/// error line.  No-op when --json was not given.
void finish_json(const BenchOptions& options, const JsonReport& report);

}  // namespace gatpg::bench
