// Shared harness pieces for the table-reproduction benches.
//
// Each bench binary reproduces one table/figure of the paper.  The central
// routine runs both test generators (GA-HITEC and the HITEC baseline) on a
// circuit with the paper's pass schedules (wall-clock limits scaled by
// --time-scale) and prints rows in the paper's format: one line per pass
// with cumulative Det / Vec / Time / Unt.
//
// Absolute numbers differ from the 1995 paper by construction (different
// hardware, generated analog circuits); the *shape* — who detects more per
// pass, roughly equal untestable counts after the deterministic pass,
// where the hybrid wins — is the reproduction target (see EXPERIMENTS.md).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fault/grading.h"
#include "gen/registry.h"
#include "hybrid/hybrid_atpg.h"
#include "netlist/depth.h"
#include "util/tableprint.h"

namespace gatpg::bench {

struct BenchOptions {
  double time_scale = 0.01;
  /// Wall-clock cap per pass per engine (keeps default bench sweeps
  /// bounded; the paper ran uncapped for up to 39 hours).  0 = uncapped.
  double pass_budget_s = 2.0;
  bool full = false;  // include the slowest circuits
  std::uint64_t seed = 1;
  /// Worker threads for fault simulation / GA evaluation (0 =
  /// hardware_concurrency, 1 = serial); results are thread-count-invariant.
  unsigned threads = 0;
};

/// Parses --time-scale=X, --pass-budget=X, --full, --seed=N, --threads=N;
/// everything else is returned as a positional arg (circuit names for the
/// table benches).
BenchOptions parse_options(int argc, char** argv,
                           std::vector<std::string>* positional = nullptr);

struct ComparisonRow {
  std::string circuit;
  unsigned depth = 0;
  std::size_t total_faults = 0;
  hybrid::AtpgResult ga_hitec;
  hybrid::AtpgResult hitec;
};

/// Runs both engines on one circuit.  `seq_len_override` (pair for passes
/// 1/2) reproduces the paper's fixed sequence lengths for the synthesized
/// circuits; nullopt uses the 4x/8x sequential-depth rule.
ComparisonRow run_comparison(
    const netlist::Circuit& c, const BenchOptions& options,
    std::optional<std::pair<unsigned, unsigned>> seq_len_override =
        std::nullopt);

/// Appends the paper-style three-line block for one circuit to a printer
/// with columns: Circuit Depth Faults | Det Vec Time Unt | Det Vec Time Unt.
void add_comparison_rows(util::TablePrinter& table, const ComparisonRow& row);

/// The standard header for Table II/III style output.
util::TablePrinter make_comparison_table();

}  // namespace gatpg::bench
