// The cross-fault state-knowledge layer (state::StateStore) on the hybrid
// engine: GA-HITEC and HITEC schedules run store-off and store-on per
// circuit, reporting justified-cache hit rates, unjustifiable-proof hits,
// forward-solution reuse, justification calls avoided, and the wall-clock
// delta.
//
// Doubles as the store-off identity gate: before the sweep, the three
// golden hybrid configurations (tests/test_session.cpp) are re-run with the
// store disabled and checked hash-for-hash against the pre-store goldens;
// any divergence prints ERROR and makes the exit status nonzero, so CI can
// run this binary as a smoke test.
//
// Emits BENCH_statestore.json.
//
// Usage: bench_statestore [--seed=N] [--full] [--backtracks=N]
//                         [--solutions=N] [names...]
//   --full adds the largest analog (g1423).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.h"
#include "gen/registry.h"
#include "hybrid/hybrid_atpg.h"
#include "util/stopwatch.h"

namespace {

using namespace gatpg;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 0x100000001b3ULL;
}

std::uint64_t hash_sequence(const sim::Sequence& seq) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& vec : seq) {
    h = fnv1a(h, 0x5eedULL);
    for (sim::V3 v : vec) h = fnv1a(h, static_cast<std::uint64_t>(v));
  }
  return h;
}

std::uint64_t hash_segments(const std::vector<sim::Sequence>& segs) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& s : segs) {
    h = fnv1a(h, s.size());
    h = fnv1a(h, hash_sequence(s));
  }
  return h;
}

std::uint64_t hash_state(const std::vector<session::FaultStatus>& state) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (auto s : state) h = fnv1a(h, static_cast<std::uint64_t>(s));
  return h;
}

/// The deterministic-budget configuration of the golden runs: wall-clock
/// limits never bind, so results are machine-independent.
hybrid::HybridConfig bounded_config(bool ga, std::uint64_t seed,
                                    long backtracks, unsigned solutions) {
  hybrid::HybridConfig cfg;
  cfg.schedule = ga ? hybrid::PassSchedule::ga_hitec(1.0)
                    : hybrid::PassSchedule::hitec(1.0);
  for (auto& p : cfg.schedule.passes) {
    p.time_limit_s = 1000.0;
    p.max_backtracks = backtracks;
    p.ga_population = 64;
    p.ga_generations = 2;
  }
  cfg.max_solutions_per_fault = solutions;
  cfg.seed = seed;
  return cfg;
}

struct GoldenCase {
  const char* name;
  const char* circuit;
  bool ga;
  bool bounded;  // false = the plain ga_hitec/hitec(1.0) s27 configs
  std::uint64_t seed;
  std::uint64_t test_hash;
  std::uint64_t segs_hash;
  std::uint64_t state_hash;
};

// Captured by tools/golden_capture before the state-knowledge layer landed
// (identical constants to tests/test_session.cpp).
constexpr GoldenCase kGolden[] = {
    {"ga_hitec_s27", "s27", true, false, 7, 0x323e06016efe6373ULL,
     0x492c98a2e68d32e2ULL, 0x38df9853f4efb1c5ULL},
    {"hitec_s27", "s27", false, false, 7, 0x8b3b113654070191ULL,
     0x4fee217ca767fae0ULL, 0x38df9853f4efb1c5ULL},
    {"ga_hitec_g298", "g298", true, true, 3, 0xb9a5941295a3f26aULL,
     0xfa926ee8bf40e530ULL, 0x70b1ab61ce78e845ULL},
};

struct RunSample {
  bool store_on = false;
  double wall_s = 0.0;
  std::size_t detected = 0;
  std::size_t untestable = 0;
  std::size_t vectors = 0;
  state::StateStoreStats store;

  long calls_avoided() const {
    return store.seq_hits + store.unjust_hits + store.forward_cache_hits;
  }
  double seq_hit_rate() const {
    const long lookups = store.seq_hits + store.seq_misses;
    return lookups > 0 ? static_cast<double>(store.seq_hits) /
                             static_cast<double>(lookups)
                       : 0.0;
  }
};

struct SweepRow {
  std::string circuit;
  std::string schedule;
  RunSample off;
  RunSample on;

  double wall_delta() const {
    return off.wall_s > 0 ? (off.wall_s - on.wall_s) / off.wall_s : 0.0;
  }
};

RunSample run_once(const netlist::Circuit& c, hybrid::HybridConfig cfg,
                   bool store_on, unsigned threads) {
  cfg.state_store.enabled = store_on;
  cfg.parallel.threads = threads;
  RunSample s;
  s.store_on = store_on;
  const util::Stopwatch sw;
  const auto r = hybrid::HybridAtpg(c, cfg).run();
  s.wall_s = sw.seconds();
  s.detected = r.detected();
  s.untestable = r.untestable();
  s.vectors = r.test_set.size();
  s.store = r.counters.store;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  const bench::BenchOptions options =
      bench::parse_options(argc, argv, &positional);
  long backtracks = 300;
  unsigned solutions = 4;
  std::vector<std::string> names;
  for (const std::string& arg : positional) {
    if (arg.rfind("--backtracks=", 0) == 0) {
      backtracks = std::atol(arg.c_str() + 13);
    } else if (arg.rfind("--solutions=", 0) == 0) {
      solutions = static_cast<unsigned>(std::atoi(arg.c_str() + 12));
    } else {
      names.push_back(arg);
    }
  }
  if (names.empty()) {
    names = {"s27", "g298", "g526"};
    if (options.full) names.push_back("g1423");
  }

  // -- Store-off identity gate ----------------------------------------------
  std::printf("Store-off identity vs pre-store goldens:\n");
  bool identical = true;
  std::vector<std::string> golden_rows;
  for (const GoldenCase& g : kGolden) {
    const auto c = gen::make_circuit(g.circuit);
    hybrid::HybridConfig cfg =
        g.bounded ? bounded_config(g.ga, g.seed, 300, 4)
                  : hybrid::HybridConfig{};
    if (!g.bounded) {
      cfg.schedule = g.ga ? hybrid::PassSchedule::ga_hitec(1.0)
                          : hybrid::PassSchedule::hitec(1.0);
      cfg.seed = g.seed;
    }
    cfg.state_store.enabled = false;
    cfg.parallel.threads = options.threads;
    const auto r = hybrid::HybridAtpg(c, cfg).run();
    const bool ok = hash_sequence(r.test_set) == g.test_hash &&
                    hash_segments(r.segments) == g.segs_hash &&
                    hash_state(r.fault_state) == g.state_hash;
    if (!ok) {
      identical = false;
      std::printf(
          "  ERROR: %s diverges from golden (test=%016llx segs=%016llx "
          "state=%016llx)\n",
          g.name,
          static_cast<unsigned long long>(hash_sequence(r.test_set)),
          static_cast<unsigned long long>(hash_segments(r.segments)),
          static_cast<unsigned long long>(hash_state(r.fault_state)));
    } else {
      std::printf("  %-14s OK\n", g.name);
    }
    golden_rows.push_back(std::string("    {\"case\": \"") + g.name +
                          "\", \"identical\": " + (ok ? "true" : "false") +
                          "}");
  }
  std::printf("\n");

  // -- Store on/off sweep ---------------------------------------------------
  std::printf(
      "StateStore on/off (Table I schedules, backtracks=%ld, "
      "solutions=%u)\n\n",
      backtracks, solutions);
  std::vector<SweepRow> rows;
  for (const std::string& name : names) {
    const auto c = gen::make_circuit(name);
    for (const bool ga : {true, false}) {
      SweepRow row;
      row.circuit = name;
      row.schedule = ga ? "ga_hitec" : "hitec";
      const hybrid::HybridConfig cfg = bounded_config(
          ga, options.seed != 1 ? options.seed : 3, backtracks, solutions);
      row.off = run_once(c, cfg, false, options.threads);
      row.on = run_once(c, cfg, true, options.threads);
      std::printf(
          "%-8s %-8s  off: wall=%8.1fms det=%4zu unt=%4zu vec=%5zu | "
          "on: wall=%8.1fms det=%4zu unt=%4zu vec=%5zu\n",
          row.circuit.c_str(), row.schedule.c_str(), row.off.wall_s * 1e3,
          row.off.detected, row.off.untestable, row.off.vectors,
          row.on.wall_s * 1e3, row.on.detected, row.on.untestable,
          row.on.vectors);
      std::printf(
          "                   seq hit rate %.0f%% (%ld/%ld), unjust hits "
          "%ld, fwd reuse %ld, calls avoided %ld, GA seeds %ld, wall "
          "%+.1f%%\n",
          row.on.seq_hit_rate() * 100.0, row.on.store.seq_hits,
          row.on.store.seq_hits + row.on.store.seq_misses,
          row.on.store.unjust_hits, row.on.store.forward_cache_hits,
          row.on.calls_avoided(), row.on.store.ga_seeds_served,
          -row.wall_delta() * 100.0);
      rows.push_back(std::move(row));
    }
  }

  FILE* json = std::fopen("BENCH_statestore.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot write BENCH_statestore.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"statestore\",\n");
  std::fprintf(json, "  \"backtracks\": %ld,\n  \"solutions\": %u,\n",
               backtracks, solutions);
  std::fprintf(json, "  \"store_off_identical_to_goldens\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(json, "  \"golden_cases\": [\n");
  for (std::size_t i = 0; i < golden_rows.size(); ++i) {
    std::fprintf(json, "%s%s\n", golden_rows[i].c_str(),
                 i + 1 < golden_rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"runs\": [\n");
  for (std::size_t ri = 0; ri < rows.size(); ++ri) {
    const SweepRow& row = rows[ri];
    std::fprintf(json,
                 "    {\"circuit\": \"%s\", \"schedule\": \"%s\", "
                 "\"wall_delta\": %.4f, \"results\": [\n",
                 row.circuit.c_str(), row.schedule.c_str(), row.wall_delta());
    for (const RunSample* s : {&row.off, &row.on}) {
      std::fprintf(
          json,
          "      {\"store\": %s, \"wall_s\": %.6f, \"detected\": %zu, "
          "\"untestable\": %zu, \"vectors\": %zu, \"seq_hits\": %ld, "
          "\"seq_misses\": %ld, \"seq_hit_rate\": %.4f, "
          "\"seq_verify_failures\": %ld, \"unjust_hits\": %ld, "
          "\"forward_cache_hits\": %ld, \"calls_avoided\": %ld, "
          "\"ga_seeds_served\": %ld}%s\n",
          s->store_on ? "true" : "false", s->wall_s, s->detected,
          s->untestable, s->vectors, s->store.seq_hits, s->store.seq_misses,
          s->seq_hit_rate(), s->store.seq_verify_failures,
          s->store.unjust_hits, s->store.forward_cache_hits,
          s->calls_avoided(), s->store.ga_seeds_served,
          s == &row.off ? "," : "");
    }
    std::fprintf(json, "    ]}%s\n", ri + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_statestore.json%s\n",
              identical ? "" : " (STORE-OFF DIVERGES FROM GOLDENS)");
  return identical ? 0 : 1;
}
