// Prints Table I — the pass schedule — as actually configured in the
// implementation, then demonstrates its effect: the per-pass detection yield
// of each schedule entry on a sample circuit (new detections per pass, not
// cumulative), for both GA-HITEC and the HITEC baseline.
//
// Usage: bench_table1_schedule [--time-scale=X] [circuit]
#include <cstdio>

#include "common.h"

int main(int argc, char** argv) {
  using namespace gatpg;
  std::vector<std::string> names;
  const bench::BenchOptions options =
      bench::parse_options(argc, argv, &names);
  const std::string name = names.empty() ? "g382" : names.front();

  std::printf("Table I: test generation approach (time scale %g)\n\n",
              options.time_scale);
  util::TablePrinter schedule({"Pass", "Approach", "Time/fault", "Backtracks",
                               "Population", "Generations", "SeqLen"});
  const auto ga = hybrid::PassSchedule::ga_hitec(options.time_scale);
  for (std::size_t p = 0; p < ga.passes.size(); ++p) {
    const auto& pass = ga.passes[p];
    const bool genetic = pass.mode == hybrid::JustifyMode::kGenetic;
    schedule.add_row(
        {std::to_string(p + 1), genetic ? "GA" : "deterministic",
         util::format_duration(pass.time_limit_s),
         std::to_string(pass.max_backtracks),
         genetic ? std::to_string(pass.ga_population) : "-",
         genetic ? std::to_string(pass.ga_generations) : "-",
         genetic ? util::format_sig(pass.seq_len_multiplier, 2) + " x depth"
                 : "-"});
  }
  schedule.print();

  const auto c = gen::make_circuit(name);
  const auto row = bench::run_comparison(c, options);
  std::printf("\nPer-pass yield on %s (%zu collapsed faults):\n",
              c.name().c_str(), row.total_faults);
  util::TablePrinter yield({"Pass", "GA-HITEC new det", "GA-HITEC new unt",
                            "HITEC new det", "HITEC new unt"});
  std::size_t pg = 0, pu = 0, hg = 0, hu = 0;
  for (std::size_t p = 0; p < row.ga_hitec.passes.size(); ++p) {
    const auto& a = row.ga_hitec.passes[p];
    const auto& h = row.hitec.passes[p];
    yield.add_row({std::to_string(p + 1), std::to_string(a.detected - pg),
                   std::to_string(a.untestable - pu),
                   std::to_string(h.detected - hg),
                   std::to_string(h.untestable - hu)});
    pg = a.detected;
    pu = a.untestable;
    hg = h.detected;
    hu = h.untestable;
  }
  yield.print();
  std::printf("\nShape check (paper): the GA passes harvest most testable "
              "faults cheaply; the deterministic pass adds untestability "
              "proofs and hard faults.\n");
  return 0;
}
