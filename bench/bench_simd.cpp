// SIMD-wide fault-simulation bench (the tentpole metric of the wide-kernel
// rework): the differential session workload at group widths 1/2/4/8 words
// and 1/4 threads, measuring aggregate gate-evaluation throughput in
// slot-evals/sec (faulty-machine gate evaluations x 64 slots x width, over
// the sweep wall-clock).  Width 1 is the retained SequenceSimulator golden
// reference; every wider configuration must reproduce its detection lists
// (sets and order), good state, and persisted faulty states exactly — the
// identity check is embedded and the exit status is nonzero on any
// divergence, so CI can smoke-run this binary.
//
// Emits BENCH_simd.json with per-configuration wall-clock, gate evals,
// slot-eval throughput, and the throughput ratio vs width 1 at equal thread
// count, plus the acceptance summary: the best width>=4 throughput ratio on
// the largest circuit benched (target >= 2x).
//
// Usage: bench_simd [--seed=N] [--full] [--vectors=N] [--repeat=N]
//                   [names...]
//   default circuits: g298 g1423 g5378 (g5378 is the largest analog and the
//   acceptance-gate circuit).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.h"
#include "fault/faultlist.h"
#include "fault/faultsim.h"
#include "helpers_bench.h"
#include "sim/wide.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace {

using namespace gatpg;

struct SessionFingerprint {
  std::vector<std::vector<std::size_t>> newly;  // per chunk, in order
  std::size_t detected = 0;
  sim::State3 good_state;
  std::vector<sim::State3> fault_states;

  friend bool operator==(const SessionFingerprint&,
                         const SessionFingerprint&) = default;
};

struct Sample {
  unsigned width = 1;
  unsigned threads = 1;
  double run_s = 0.0;
  fault::SimStats stats;
  SessionFingerprint fp;
  bool identical = true;  // vs the width-1 sample at the same thread count

  /// Faulty-machine work actually performed: every wide gate evaluation
  /// computes 64 x width fault slots.
  double slot_evals() const {
    return static_cast<double>(stats.gate_evals) * 64.0 *
           static_cast<double>(width);
  }
  double throughput() const { return run_s > 0 ? slot_evals() / run_s : 0.0; }
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  const bench::BenchOptions options =
      bench::parse_options(argc, argv, &positional);
  std::size_t vectors = 96;
  int repeat = 3;
  std::vector<std::string> names;
  for (const std::string& arg : positional) {
    if (arg.rfind("--vectors=", 0) == 0) {
      vectors = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::atoi(arg.c_str() + 9);
    } else {
      names.push_back(arg);
    }
  }
  if (names.empty()) names = {"g298", "g1423", "g5378"};
  const std::vector<unsigned> widths = {1, 2, 4, 8};
  const std::vector<unsigned> thread_counts = {1, 4};

  std::printf("SIMD-wide differential fault simulation (kernel backend: %s, "
              "vectors=%zu, repeat=%d, hardware_concurrency=%u)\n\n",
              sim::wide_kernels().name, vectors, repeat,
              util::ParallelConfig{}.resolved());

  bool identical = true;
  // Acceptance: best width>=4 throughput ratio on the last (largest)
  // circuit benched.
  double accept_ratio = 0.0;
  struct CircuitResult {
    std::string name;
    std::size_t faults = 0;
    std::vector<Sample> samples;
  };
  std::vector<CircuitResult> results;

  for (const std::string& name : names) {
    const auto c = gen::make_circuit(name);
    const auto faults = fault::collapse(c).faults;
    CircuitResult cr;
    cr.name = name;
    cr.faults = faults.size();

    for (const unsigned threads : thread_counts) {
      for (const unsigned width : widths) {
        Sample sample;
        sample.width = width;
        sample.threads = threads;
        fault::FaultSimConfig config;
        config.parallel.threads = threads;
        config.width = width;
        fault::FaultSimulator fs(c, faults, config);

        double run_s = 0.0;
        for (int rep = 0; rep < repeat; ++rep) {
          fs.reset_all();
          fs.reset_stats();
          sample.fp = SessionFingerprint{};
          util::Rng rng(options.seed);
          const util::Stopwatch sw;
          for (int chunk = 0; chunk < 4; ++chunk) {
            sample.fp.newly.push_back(
                fs.run(bench::random_sequence(c, rng, vectors / 4)));
          }
          run_s += sw.seconds();
        }
        sample.run_s = run_s / repeat;
        sample.stats = fs.stats();
        sample.fp.detected = fs.detected_count();
        sample.fp.good_state = fs.good_state();
        for (std::size_t i = 0; i < faults.size(); ++i) {
          sample.fp.fault_states.push_back(fs.fault_state(i));
        }
        cr.samples.push_back(std::move(sample));
      }
    }

    for (Sample& s : cr.samples) {
      const Sample* base = nullptr;
      for (const Sample& b : cr.samples) {
        if (b.width == 1 && b.threads == s.threads) base = &b;
      }
      if (base && base != &s) {
        s.identical = s.fp == base->fp;
        if (!s.identical) {
          std::printf("ERROR: %s width=%u threads=%u diverges from the "
                      "width-1 reference\n",
                      cr.name.c_str(), s.width, s.threads);
          identical = false;
        }
      }
      const double ratio =
          base && base->throughput() > 0 ? s.throughput() / base->throughput()
                                         : 1.0;
      std::printf("%-8s width=%u threads=%u  run=%9.2fms  "
                  "gate_evals=%11llu  slot_evals/s=%10.3e (x%.2f)  "
                  "det=%zu%s\n",
                  cr.name.c_str(), s.width, s.threads, s.run_s * 1e3,
                  static_cast<unsigned long long>(s.stats.gate_evals),
                  s.throughput(), ratio, s.fp.detected,
                  s.identical ? "" : "  [MISMATCH]");
    }
    std::printf("\n");
    results.push_back(std::move(cr));
  }

  // Acceptance ratio: widest-vs-1 throughput on the last circuit benched
  // (the largest by convention of the default list).
  if (!results.empty()) {
    const CircuitResult& last = results.back();
    for (const Sample& s : last.samples) {
      if (s.width < 4) continue;
      for (const Sample& b : last.samples) {
        if (b.width == 1 && b.threads == s.threads && b.throughput() > 0) {
          const double r = s.throughput() / b.throughput();
          if (r > accept_ratio) accept_ratio = r;
        }
      }
    }
  }

  FILE* json = std::fopen("BENCH_simd.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot write BENCH_simd.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"simd\",\n");
  std::fprintf(json, "  \"kernel_backend\": \"%s\",\n",
               sim::wide_kernels().name);
  std::fprintf(json, "  \"hardware_concurrency\": %u,\n",
               util::ParallelConfig{}.resolved());
  std::fprintf(json, "  \"vectors\": %zu,\n  \"repeat\": %d,\n", vectors,
               repeat);
  std::fprintf(json, "  \"identical_across_widths\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(json, "  \"acceptance_circuit\": \"%s\",\n",
               results.empty() ? "" : results.back().name.c_str());
  std::fprintf(json,
               "  \"acceptance_throughput_ratio_width4plus\": %.3f,\n",
               accept_ratio);
  std::fprintf(json, "  \"circuits\": [\n");
  for (std::size_t ci = 0; ci < results.size(); ++ci) {
    const CircuitResult& cr = results[ci];
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"faults\": %zu, \"results\": [\n",
                 cr.name.c_str(), cr.faults);
    for (std::size_t si = 0; si < cr.samples.size(); ++si) {
      const Sample& s = cr.samples[si];
      const Sample* base = nullptr;
      for (const Sample& b : cr.samples) {
        if (b.width == 1 && b.threads == s.threads) base = &b;
      }
      std::fprintf(
          json,
          "      {\"width\": %u, \"threads\": %u, \"run_s\": %.6f, "
          "\"gate_evals\": %llu, \"good_gate_evals\": %llu, "
          "\"slot_evals_per_s\": %.1f, \"throughput_ratio_vs_width1\": %.3f, "
          "\"speedup_vs_width1\": %.3f, \"detected\": %zu, "
          "\"identical\": %s}%s\n",
          s.width, s.threads, s.run_s,
          static_cast<unsigned long long>(s.stats.gate_evals),
          static_cast<unsigned long long>(s.stats.good_gate_evals),
          s.throughput(),
          base && base->throughput() > 0 ? s.throughput() / base->throughput()
                                         : 1.0,
          base && s.run_s > 0 ? base->run_s / s.run_s : 1.0, s.fp.detected,
          s.identical ? "true" : "false",
          si + 1 < cr.samples.size() ? "," : "");
    }
    std::fprintf(json, "    ]}%s\n", ci + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("acceptance: width>=4 vs width-1 slot-eval throughput on %s: "
              "x%.2f (target >= 2)\n",
              results.empty() ? "?" : results.back().name.c_str(),
              accept_ratio);
  std::printf("wrote BENCH_simd.json%s\n",
              identical ? "" : " (INCONSISTENT RESULTS)");
  return identical ? 0 : 1;
}
