// Compares the full landscape of §I under equal wall-clock budgets: random
// patterns [9], weighted-random [10-12], simulation-based GA test generation
// (GATEST/CRIS, [15-18]), Saab's alternating simulation/deterministic hybrid
// [19], the deterministic HITEC baseline [6], and GA-HITEC (this paper).
//
// The paper's positioning to reproduce: simulation-based approaches shine on
// data-dominant circuits, deterministic on control-dominant ones, and the
// per-fault hybrid dominates both on the synthesized datapaths while staying
// competitive everywhere and uniquely able to prove untestability
// (random/GA baselines report none).
//
// Usage: bench_alternatives [--time-scale=X] [--pass-budget=X] [--json=FILE]
//        [names...]
#include <cstdio>

#include "common.h"
#include "tpg/alternating.h"
#include "tpg/randgen.h"
#include "tpg/simgen.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace gatpg;
  std::vector<std::string> names;
  const bench::BenchOptions options =
      bench::parse_options(argc, argv, &names);
  if (names.empty()) names = {"g298", "g526", "g1488", "div4", "mult4"};
  const double budget = options.pass_budget_s * 3;  // whole-run budget

  std::printf("Test-generator landscape (whole-run budget %.3gs/engine)\n",
              budget);
  bench::JsonReport json;
  bench::JsonReport* json_ptr = options.json_path.empty() ? nullptr : &json;
  auto table = bench::make_engine_table();
  for (const auto& name : names) {
    const auto c = gen::make_circuit(name);
    const std::size_t total = fault::collapse(c).size();
    auto emit = [&](const std::string& engine,
                    const session::SessionResult& r, double time_s) {
      bench::add_engine_row(table, c.name(), engine, total, r, time_s);
    };

    for (const bool weighted : {false, true}) {
      tpg::RandomGenConfig cfg;
      cfg.seed = options.seed;
      cfg.weighted = weighted;
      cfg.max_vectors = 100000;
      cfg.stagnation_blocks = 30;
      const char* engine = weighted ? "weighted" : "random";
      auto observer = bench::JsonReport::observe(json_ptr, c.name(), engine);
      util::Stopwatch timer;
      const auto r = tpg::random_pattern_generate(c, cfg, &observer);
      emit(engine, r, timer.seconds());
    }
    {
      tpg::SimGenConfig cfg;
      cfg.seed = options.seed;
      cfg.time_limit_s = budget;
      auto observer = bench::JsonReport::observe(json_ptr, c.name(), "sim-GA");
      util::Stopwatch timer;
      const auto r = tpg::SimulationTestGenerator(c, cfg).run(&observer);
      emit("sim-GA", r, timer.seconds());
    }
    {
      tpg::AlternatingConfig cfg;
      cfg.seed = options.seed;
      cfg.time_limit_s = budget;
      cfg.det_limits.time_limit_s = 10 * options.time_scale;
      auto observer =
          bench::JsonReport::observe(json_ptr, c.name(), "alt-hybrid");
      util::Stopwatch timer;
      const auto r = tpg::alternating_hybrid_generate(c, cfg, &observer);
      emit("alt-hybrid", r, timer.seconds());
    }
    for (const bool use_ga : {false, true}) {
      hybrid::HybridConfig cfg;
      cfg.schedule = use_ga ? hybrid::PassSchedule::ga_hitec(options.time_scale)
                            : hybrid::PassSchedule::hitec(options.time_scale);
      for (auto& pass : cfg.schedule.passes) {
        pass.pass_budget_s = options.pass_budget_s;
      }
      cfg.seed = options.seed;
      const char* engine = use_ga ? "GA-HITEC" : "HITEC";
      auto observer = bench::JsonReport::observe(json_ptr, c.name(), engine);
      util::Stopwatch timer;
      const auto r = hybrid::HybridAtpg(c, cfg).run(&observer);
      emit(engine, r, timer.seconds());
    }
    table.add_rule();
  }
  table.print();
  std::printf("\nShape checks: only the deterministic-capable engines report "
              "Unt > 0; GA-HITEC leads or ties on the datapath rows.\n");
  bench::finish_json(options, json);
  return 0;
}
