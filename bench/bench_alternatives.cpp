// Compares the full landscape of §I under equal wall-clock budgets: random
// patterns [9], weighted-random [10-12], simulation-based GA test generation
// (GATEST/CRIS, [15-18]), Saab's alternating simulation/deterministic hybrid
// [19], the deterministic HITEC baseline [6], and GA-HITEC (this paper).
//
// The paper's positioning to reproduce: simulation-based approaches shine on
// data-dominant circuits, deterministic on control-dominant ones, and the
// per-fault hybrid dominates both on the synthesized datapaths while staying
// competitive everywhere and uniquely able to prove untestability
// (random/GA baselines report none).
//
// Usage: bench_alternatives [--time-scale=X] [--pass-budget=X] [names...]
#include <cstdio>

#include "common.h"
#include "tpg/alternating.h"
#include "tpg/randgen.h"
#include "tpg/simgen.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace gatpg;
  std::vector<std::string> names;
  const bench::BenchOptions options =
      bench::parse_options(argc, argv, &names);
  if (names.empty()) names = {"g298", "g526", "g1488", "div4", "mult4"};
  const double budget = options.pass_budget_s * 3;  // whole-run budget

  std::printf("Test-generator landscape (whole-run budget %.3gs/engine)\n",
              budget);
  util::TablePrinter table({"Circuit", "Engine", "Det", "Unt", "Vec",
                            "Time", "Cov%"});
  for (const auto& name : names) {
    const auto c = gen::make_circuit(name);
    const std::size_t total = fault::collapse(c).size();
    auto emit = [&](const char* engine, std::size_t det, std::size_t unt,
                    std::size_t vec, double time_s) {
      table.add_row({c.name(), engine, std::to_string(det),
                     std::to_string(unt), std::to_string(vec),
                     util::format_duration(time_s),
                     util::format_sig(100.0 * static_cast<double>(det) /
                                          static_cast<double>(total),
                                      3)});
    };

    {
      tpg::RandomGenConfig cfg;
      cfg.seed = options.seed;
      cfg.max_vectors = 100000;
      cfg.stagnation_blocks = 30;
      util::Stopwatch timer;
      const auto r = tpg::random_pattern_generate(c, cfg);
      emit("random", r.detected, 0, r.test_set.size(), timer.seconds());
    }
    {
      tpg::RandomGenConfig cfg;
      cfg.seed = options.seed;
      cfg.weighted = true;
      cfg.max_vectors = 100000;
      cfg.stagnation_blocks = 30;
      util::Stopwatch timer;
      const auto r = tpg::random_pattern_generate(c, cfg);
      emit("weighted", r.detected, 0, r.test_set.size(), timer.seconds());
    }
    {
      tpg::SimGenConfig cfg;
      cfg.seed = options.seed;
      cfg.time_limit_s = budget;
      util::Stopwatch timer;
      const auto r = tpg::SimulationTestGenerator(c, cfg).run();
      emit("sim-GA", r.detected, 0, r.test_set.size(), timer.seconds());
    }
    {
      tpg::AlternatingConfig cfg;
      cfg.seed = options.seed;
      cfg.time_limit_s = budget;
      cfg.det_limits.time_limit_s = 10 * options.time_scale;
      util::Stopwatch timer;
      const auto r = tpg::alternating_hybrid_generate(c, cfg);
      emit("alt-hybrid", r.detected, r.untestable, r.test_set.size(),
           timer.seconds());
    }
    for (const bool use_ga : {false, true}) {
      hybrid::HybridConfig cfg;
      cfg.schedule = use_ga ? hybrid::PassSchedule::ga_hitec(options.time_scale)
                            : hybrid::PassSchedule::hitec(options.time_scale);
      for (auto& pass : cfg.schedule.passes) {
        pass.pass_budget_s = options.pass_budget_s;
      }
      cfg.seed = options.seed;
      util::Stopwatch timer;
      const auto r = hybrid::HybridAtpg(c, cfg).run();
      emit(use_ga ? "GA-HITEC" : "HITEC", r.detected(), r.untestable(),
           r.test_set.size(), timer.seconds());
    }
    table.add_rule();
  }
  table.print();
  std::printf("\nShape checks: only the deterministic-capable engines report "
              "Unt > 0; GA-HITEC leads or ties on the datapath rows.\n");
  return 0;
}
