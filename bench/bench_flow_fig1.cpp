// Instruments Figure 1: the hybrid flow "excite -> propagate -> GA state
// justification -> (on failure) backtrack into propagation and retry".
//
// For each circuit the counters show how often each edge of the flowchart
// was taken during a GA-HITEC run: faults targeted, forward solutions
// produced, GA invocations vs successes, solutions needing no justification
// (state already matched / no state requirement), candidate tests rejected
// by the verifying fault simulator, and deterministic justifications in
// pass 3.
//
// Usage: bench_flow_fig1 [--time-scale=X] [--seed=N] [names...]
#include <cstdio>

#include "common.h"

int main(int argc, char** argv) {
  using namespace gatpg;
  std::vector<std::string> names;
  const bench::BenchOptions options =
      bench::parse_options(argc, argv, &names);
  if (names.empty()) names = {"s27", "g298", "g386", "g526"};

  std::printf("Figure 1 flow instrumentation (GA-HITEC, time scale %g)\n",
              options.time_scale);
  util::TablePrinter table({"Circuit", "Targeted", "FwdSol", "NoJust",
                            "GAcall", "GAwin", "DetJust", "DetWin",
                            "VerifyRej", "Det", "Unt"});
  for (const auto& name : names) {
    const auto c = gen::make_circuit(name);
    hybrid::HybridConfig cfg;
    cfg.schedule = hybrid::PassSchedule::ga_hitec(options.time_scale);
    for (auto& pass : cfg.schedule.passes) {
      pass.pass_budget_s = options.pass_budget_s;
    }
    cfg.seed = options.seed;
    const auto result = hybrid::HybridAtpg(c, cfg).run();
    const auto& k = result.counters;
    table.add_row({c.name(), std::to_string(k.targeted),
                   std::to_string(k.forward_solutions),
                   std::to_string(k.no_justification_needed),
                   std::to_string(k.ga_invocations),
                   std::to_string(k.ga_successes),
                   std::to_string(k.det_justify_calls),
                   std::to_string(k.det_justify_successes),
                   std::to_string(k.verify_failures),
                   std::to_string(result.detected()),
                   std::to_string(result.untestable())});
  }
  table.print();
  std::printf("\nReading: FwdSol > Det+GAwin shows the Fig. 1 backtrack loop "
              "retrying alternative propagation choices after justification "
              "failures.\n");
  return 0;
}
