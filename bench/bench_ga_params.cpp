// Reproduces the §IV-B / Table I parameter rationale: how population size,
// generation count and sequence length trade detection against time in a
// single GA pass.  The paper grows all three between pass 1 (64/4/x/2) and
// pass 2 (128/8/x): this sweep shows the same monotone coverage-vs-cost
// trend on the analog suite.
//
// Usage: bench_ga_params [--time-scale=X] [--seed=N] [circuit]
#include <cstdio>

#include "common.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace gatpg;
  std::vector<std::string> names;
  const bench::BenchOptions options =
      bench::parse_options(argc, argv, &names);
  const std::string name = names.empty() ? "g526" : names.front();
  const auto c = gen::make_circuit(name);

  std::printf("Table I rationale: single GA pass on %s, parameter sweep\n",
              c.name().c_str());
  util::TablePrinter table({"Pop", "Gens", "SeqLen x depth", "Det", "Vec",
                            "GA calls", "GA wins", "Time"});
  for (const std::size_t population : {64u, 128u}) {
    for (const unsigned generations : {4u, 8u}) {
      for (const double multiplier : {2.0, 4.0, 8.0}) {
        hybrid::HybridConfig cfg;
        cfg.seed = options.seed;
        hybrid::PassConfig pass;
        pass.mode = hybrid::JustifyMode::kGenetic;
        pass.pass_budget_s = options.pass_budget_s;
        pass.time_limit_s = 1.0 * options.time_scale;
        pass.max_backtracks = 10000;
        pass.ga_population = population;
        pass.ga_generations = generations;
        pass.seq_len_multiplier = multiplier;
        cfg.schedule.passes = {pass};
        util::Stopwatch timer;
        const auto result = hybrid::HybridAtpg(c, cfg).run();
        table.add_row({std::to_string(population),
                       std::to_string(generations), util::format_sig(multiplier, 2),
                       std::to_string(result.detected()),
                       std::to_string(result.passes.back().vectors),
                       std::to_string(result.counters.ga_invocations),
                       std::to_string(result.counters.ga_successes),
                       util::format_duration(timer.seconds())});
      }
    }
  }
  table.print();
  std::printf("\nShape check (paper): larger populations/generations/lengths "
              "detect more faults at higher cost;\npass 1's small settings "
              "already catch most easy faults.\n");
  return 0;
}
