#include "common.h"

#include <cstdlib>
#include <cstring>

namespace gatpg::bench {

BenchOptions parse_options(int argc, char** argv,
                           std::vector<std::string>* positional) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--time-scale=", 0) == 0) {
      options.time_scale = std::atof(arg.c_str() + 13);
    } else if (arg.rfind("--pass-budget=", 0) == 0) {
      options.pass_budget_s = std::atof(arg.c_str() + 14);
    } else if (arg == "--full") {
      options.full = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads =
          static_cast<unsigned>(std::strtoul(arg.c_str() + 10, nullptr, 10));
    } else if (positional) {
      positional->push_back(arg);
    }
  }
  return options;
}

ComparisonRow run_comparison(
    const netlist::Circuit& c, const BenchOptions& options,
    std::optional<std::pair<unsigned, unsigned>> seq_len_override) {
  ComparisonRow row;
  row.circuit = c.name();
  row.depth = netlist::sequential_depth(c);

  hybrid::HybridConfig ga_config;
  ga_config.schedule = hybrid::PassSchedule::ga_hitec(options.time_scale);
  if (seq_len_override) {
    ga_config.schedule.passes[0].seq_len_override = seq_len_override->first;
    ga_config.schedule.passes[1].seq_len_override = seq_len_override->second;
  }
  for (auto& pass : ga_config.schedule.passes) {
    pass.pass_budget_s = options.pass_budget_s;
  }
  ga_config.seed = options.seed;
  ga_config.parallel.threads = options.threads;
  hybrid::HybridAtpg ga_engine(c, ga_config);
  row.total_faults = ga_engine.fault_list().size();
  row.ga_hitec = ga_engine.run();

  hybrid::HybridConfig hitec_config;
  hitec_config.schedule = hybrid::PassSchedule::hitec(options.time_scale);
  for (auto& pass : hitec_config.schedule.passes) {
    pass.pass_budget_s = options.pass_budget_s;
  }
  hitec_config.seed = options.seed;
  hitec_config.parallel.threads = options.threads;
  row.hitec = hybrid::HybridAtpg(c, hitec_config).run();
  return row;
}

util::TablePrinter make_comparison_table() {
  return util::TablePrinter({"Circuit", "Depth", "Faults", "|", "Det", "Vec",
                             "Time", "Unt", "|", "Det", "Vec", "Time",
                             "Unt"});
}

void add_comparison_rows(util::TablePrinter& table, const ComparisonRow& row) {
  const std::size_t passes =
      std::min(row.ga_hitec.passes.size(), row.hitec.passes.size());
  for (std::size_t p = 0; p < passes; ++p) {
    const auto& ga = row.ga_hitec.passes[p];
    const auto& hi = row.hitec.passes[p];
    table.add_row({
        p == 0 ? row.circuit : "",
        p == 0 ? std::to_string(row.depth) : "",
        p == 0 ? std::to_string(row.total_faults) : "",
        "|",
        std::to_string(ga.detected),
        std::to_string(ga.vectors),
        util::format_duration(ga.time_s),
        std::to_string(ga.untestable),
        "|",
        std::to_string(hi.detected),
        std::to_string(hi.vectors),
        util::format_duration(hi.time_s),
        std::to_string(hi.untestable),
    });
  }
  table.add_rule();
}

}  // namespace gatpg::bench
