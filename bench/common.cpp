#include "common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "util/json_writer.h"

namespace gatpg::bench {

BenchOptions parse_options(int argc, char** argv,
                           std::vector<std::string>* positional) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--time-scale=", 0) == 0) {
      options.time_scale = std::atof(arg.c_str() + 13);
    } else if (arg.rfind("--pass-budget=", 0) == 0) {
      options.pass_budget_s = std::atof(arg.c_str() + 14);
    } else if (arg == "--full") {
      options.full = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads =
          static_cast<unsigned>(std::strtoul(arg.c_str() + 10, nullptr, 10));
    } else if (arg.rfind("--json=", 0) == 0) {
      options.json_path = arg.substr(7);
    } else if (positional) {
      positional->push_back(arg);
    }
  }
  return options;
}

JsonReport::Run::Run(JsonReport* report, std::string circuit,
                     std::string engine)
    : report_(report),
      circuit_(std::move(circuit)),
      engine_(std::move(engine)) {}

void JsonReport::Run::on_pass_end(const session::Session&, std::size_t,
                                  const session::PassOutcome& outcome) {
  if (report_) passes_.push_back(outcome);
}

void JsonReport::Run::on_session_end(const session::Session&,
                                     const session::SessionResult& result) {
  if (!report_) return;
  Record record;
  record.circuit = circuit_;
  record.engine = engine_;
  record.total_faults = result.total_faults;
  record.detected = result.detected();
  record.untestable = result.untestable();
  record.vectors = result.test_set.size();
  record.passes = passes_;
  report_->records_.push_back(std::move(record));
  passes_.clear();  // a Run may observe several sessions
}

JsonReport::Run JsonReport::observe(JsonReport* report, std::string circuit,
                                    std::string engine) {
  return Run(report, std::move(circuit), std::move(engine));
}

bool JsonReport::write_file(const std::string& path) const {
  util::JsonWriter w(util::JsonWriter::Style::kPretty);
  w.begin_array();
  for (const Record& record : records_) {
    w.begin_object();
    w.field("circuit", record.circuit);
    w.field("engine", record.engine);
    w.field("total_faults", record.total_faults);
    w.field("detected", record.detected);
    w.field("untestable", record.untestable);
    w.field("vectors", record.vectors);
    w.key("passes").begin_array();
    for (const session::PassOutcome& pass : record.passes) {
      w.begin_object();
      w.field("detected", pass.detected);
      w.field("vectors", pass.vectors);
      w.field("untestable", pass.untestable);
      w.field("time_s", pass.time_s);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  return w.write_file(path);
}

void finish_json(const BenchOptions& options, const JsonReport& report) {
  if (options.json_path.empty()) return;
  if (report.write_file(options.json_path)) {
    std::printf("\nResults written to %s\n", options.json_path.c_str());
  } else {
    std::printf("\nFailed to write %s\n", options.json_path.c_str());
  }
}

ComparisonRow run_comparison(
    const netlist::Circuit& c, const BenchOptions& options,
    std::optional<std::pair<unsigned, unsigned>> seq_len_override,
    JsonReport* json) {
  ComparisonRow row;
  row.circuit = c.name();
  row.depth = netlist::sequential_depth(c);

  hybrid::HybridConfig ga_config;
  ga_config.schedule = hybrid::PassSchedule::ga_hitec(options.time_scale);
  if (seq_len_override) {
    ga_config.schedule.passes[0].seq_len_override = seq_len_override->first;
    ga_config.schedule.passes[1].seq_len_override = seq_len_override->second;
  }
  for (auto& pass : ga_config.schedule.passes) {
    pass.pass_budget_s = options.pass_budget_s;
  }
  ga_config.seed = options.seed;
  ga_config.parallel.threads = options.threads;
  hybrid::HybridAtpg ga_engine(c, ga_config);
  row.total_faults = ga_engine.fault_list().size();
  JsonReport::Run ga_observer =
      JsonReport::observe(json, row.circuit, "ga-hitec");
  row.ga_hitec = ga_engine.run(&ga_observer);

  hybrid::HybridConfig hitec_config;
  hitec_config.schedule = hybrid::PassSchedule::hitec(options.time_scale);
  for (auto& pass : hitec_config.schedule.passes) {
    pass.pass_budget_s = options.pass_budget_s;
  }
  hitec_config.seed = options.seed;
  hitec_config.parallel.threads = options.threads;
  JsonReport::Run hitec_observer =
      JsonReport::observe(json, row.circuit, "hitec");
  row.hitec = hybrid::HybridAtpg(c, hitec_config).run(&hitec_observer);
  return row;
}

util::TablePrinter make_comparison_table() {
  return util::TablePrinter({"Circuit", "Depth", "Faults", "|", "Det", "Vec",
                             "Time", "Unt", "|", "Det", "Vec", "Time",
                             "Unt"});
}

void print_comparison_banner() {
  std::printf("%46s %-28s %s\n", "", "GA-HITEC", "HITEC");
}

util::TablePrinter make_engine_table() {
  return util::TablePrinter(
      {"Circuit", "Engine", "Det", "Unt", "Vec", "Time", "Cov%"});
}

void add_engine_row(util::TablePrinter& table, const std::string& circuit,
                    const std::string& engine, std::size_t total_faults,
                    const session::SessionResult& result, double time_s) {
  table.add_row({circuit, engine, std::to_string(result.detected()),
                 std::to_string(result.untestable()),
                 std::to_string(result.test_set.size()),
                 util::format_duration(time_s),
                 util::format_sig(
                     100.0 * static_cast<double>(result.detected()) /
                         static_cast<double>(total_faults),
                     3)});
}

void add_comparison_rows(util::TablePrinter& table, const ComparisonRow& row) {
  const std::size_t passes =
      std::min(row.ga_hitec.passes.size(), row.hitec.passes.size());
  for (std::size_t p = 0; p < passes; ++p) {
    const auto& ga = row.ga_hitec.passes[p];
    const auto& hi = row.hitec.passes[p];
    table.add_row({
        p == 0 ? row.circuit : "",
        p == 0 ? std::to_string(row.depth) : "",
        p == 0 ? std::to_string(row.total_faults) : "",
        "|",
        std::to_string(ga.detected),
        std::to_string(ga.vectors),
        util::format_duration(ga.time_s),
        std::to_string(ga.untestable),
        "|",
        std::to_string(hi.detected),
        std::to_string(hi.vectors),
        util::format_duration(hi.time_s),
        std::to_string(hi.untestable),
    });
  }
  table.add_rule();
}

}  // namespace gatpg::bench
