// Differential-vs-full-sweep fault-simulation bench (the tentpole metric of
// the PROOFS rework): the Table-II session workload (several run()
// extensions with fault dropping) plus the what_if fitness kernel, for both
// engines at 1 and 4 threads.
//
// Emits BENCH_faultsim.json with wall-clock, gate-evaluation counts, skip
// rates, and repack counts per configuration, plus the gate-eval reduction
// and wall-clock speedup of the differential engine over the full-sweep
// baseline at equal thread count.  Verifies on the way that every
// configuration produces identical detection counts and what_if results
// (the engines' bit-identity contract); exit status is nonzero on any
// mismatch.
//
// Usage: bench_faultsim [--seed=N] [--full] [--vectors=N] [--repeat=N]
//                       [names...]
//   --full adds the largest analog (g5378).
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "common.h"
#include "fault/faultlist.h"
#include "fault/faultsim.h"
#include "helpers_bench.h"
#include "util/json_writer.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace {

using namespace gatpg;

struct Sample {
  bool differential = false;
  unsigned threads = 0;
  double run_s = 0.0;      // session sweep (FaultSimulator::run)
  double what_if_s = 0.0;  // fitness kernel (FaultSimulator::what_if)
  fault::SimStats run_stats;
  std::size_t detected = 0;
  unsigned what_if_detected = 0;
  unsigned what_if_effects = 0;

  std::uint64_t total_evals() const {
    return run_stats.gate_evals + run_stats.good_gate_evals;
  }
};

struct CircuitResult {
  std::string name;
  std::size_t faults = 0;
  std::vector<Sample> samples;

  /// The full-sweep sample at the same thread count (the baseline each
  /// differential sample is judged against).
  const Sample* baseline_for(const Sample& s) const {
    for (const Sample& b : samples) {
      if (!b.differential && b.threads == s.threads) return &b;
    }
    return nullptr;
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  const bench::BenchOptions options =
      bench::parse_options(argc, argv, &positional);
  std::size_t vectors = 96;
  int repeat = 3;
  unsigned window = fault::FaultSimConfig{}.window;
  std::vector<std::string> names;
  for (const std::string& arg : positional) {
    if (arg.rfind("--vectors=", 0) == 0) {
      vectors = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--window=", 0) == 0) {
      window = static_cast<unsigned>(std::atoi(arg.c_str() + 9));
    } else {
      names.push_back(arg);
    }
  }
  if (names.empty()) {
    names = {"g298", "g526", "g820", "g1423"};
    if (options.full) names.push_back("g5378");
  }
  const std::vector<unsigned> thread_counts = {1, 4};

  std::printf("Differential vs full-sweep fault simulation (vectors=%zu, "
              "repeat=%d, hardware_concurrency=%u)\n\n",
              vectors, repeat, util::ParallelConfig{}.resolved());

  bool consistent = true;
  double worst_eval_reduction = 1e9;
  std::uint64_t full_evals_total = 0;
  std::uint64_t diff_evals_total = 0;
  std::vector<CircuitResult> results;
  for (const std::string& name : names) {
    const auto c = gen::make_circuit(name);
    const auto faults = fault::collapse(c).faults;
    CircuitResult cr;
    cr.name = name;
    cr.faults = faults.size();

    std::vector<std::size_t> all_indices(faults.size());
    std::iota(all_indices.begin(), all_indices.end(), 0);

    for (const bool differential : {false, true}) {
      for (const unsigned threads : thread_counts) {
        Sample sample;
        sample.differential = differential;
        sample.threads = threads;
        fault::FaultSimConfig config;
        config.parallel.threads = threads;
        config.differential = differential;
        config.window = window;
        fault::FaultSimulator fs(c, faults, config);

        // Session sweep: fresh session per repeat, several run() extensions
        // so persistent faulty state, fault dropping, and (differentially)
        // screening and repacking are exercised.
        double run_s = 0.0;
        for (int rep = 0; rep < repeat; ++rep) {
          fs.reset_all();
          fs.reset_stats();
          util::Rng rng(options.seed);
          const util::Stopwatch sw;
          for (int chunk = 0; chunk < 4; ++chunk) {
            fs.run(bench::random_sequence(c, rng, vectors / 4));
          }
          run_s += sw.seconds();
          sample.detected = fs.detected_count();
          sample.run_stats = fs.stats();
        }
        sample.run_s = run_s / repeat;

        // Fitness kernel: what_if over the full fault list from the
        // power-up session state (the GA's per-candidate grading workload).
        fs.reset_all();
        util::Rng rng(options.seed + 7);
        const auto probe = bench::random_sequence(c, rng, vectors / 4);
        double what_if_s = 0.0;
        for (int rep = 0; rep < repeat; ++rep) {
          const util::Stopwatch sw;
          const auto w = fs.what_if(all_indices, probe);
          what_if_s += sw.seconds();
          sample.what_if_detected = w.detected;
          sample.what_if_effects = w.state_effects;
        }
        sample.what_if_s = what_if_s / repeat;
        cr.samples.push_back(sample);
      }
    }

    const Sample& base = cr.samples.front();
    for (const Sample& s : cr.samples) {
      if (s.detected != base.detected ||
          s.what_if_detected != base.what_if_detected ||
          s.what_if_effects != base.what_if_effects) {
        std::printf("ERROR: %s %s threads=%u diverges from baseline "
                    "(det %zu vs %zu, what_if %u/%u vs %u/%u)\n",
                    cr.name.c_str(), s.differential ? "diff" : "full",
                    s.threads, s.detected, base.detected, s.what_if_detected,
                    s.what_if_effects, base.what_if_detected,
                    base.what_if_effects);
        consistent = false;
      }
      const Sample* b = cr.baseline_for(s);
      const double speedup = b && s.run_s > 0 ? b->run_s / s.run_s : 0.0;
      const double eval_ratio =
          b && s.total_evals() > 0
              ? static_cast<double>(b->total_evals()) /
                    static_cast<double>(s.total_evals())
              : 0.0;
      if (s.differential && eval_ratio < worst_eval_reduction) {
        worst_eval_reduction = eval_ratio;
      }
      if (s.threads == 1) {
        (s.differential ? diff_evals_total : full_evals_total) +=
            s.total_evals();
      }
      std::printf("%-8s %-4s threads=%u  run=%8.2fms (x%.2f)  "
                  "what_if=%8.2fms  gate_evals=%11llu (x%.2f)  "
                  "skip=%5.1f%%  repacks=%llu  det=%zu\n",
                  cr.name.c_str(), s.differential ? "diff" : "full",
                  s.threads, s.run_s * 1e3, speedup, s.what_if_s * 1e3,
                  static_cast<unsigned long long>(s.total_evals()),
                  eval_ratio, s.run_stats.skip_rate() * 100.0,
                  static_cast<unsigned long long>(s.run_stats.groups_repacked),
                  s.detected);
    }
    std::printf("\n");
    results.push_back(std::move(cr));
  }

  const double overall_reduction =
      diff_evals_total > 0 ? static_cast<double>(full_evals_total) /
                                 static_cast<double>(diff_evals_total)
                           : 0.0;
  util::JsonWriter json(util::JsonWriter::Style::kPretty);
  json.begin_object();
  json.field("bench", "faultsim");
  json.field("hardware_concurrency", util::ParallelConfig{}.resolved());
  json.field("vectors", vectors);
  json.field("repeat", repeat);
  json.field("consistent_across_configs", consistent);
  json.field("min_gate_eval_reduction", worst_eval_reduction);
  json.field("overall_gate_eval_reduction", overall_reduction);
  json.key("circuits").begin_array();
  for (const CircuitResult& cr : results) {
    json.begin_object();
    json.field("name", cr.name);
    json.field("faults", cr.faults);
    json.key("results").begin_array();
    for (const Sample& s : cr.samples) {
      const Sample* b = cr.baseline_for(s);
      json.begin_object();
      json.field("engine", s.differential ? "differential" : "full_sweep");
      json.field("threads", s.threads);
      json.field("run_s", s.run_s);
      json.field("what_if_s", s.what_if_s);
      json.field("gate_evals", s.run_stats.gate_evals);
      json.field("good_gate_evals", s.run_stats.good_gate_evals);
      json.field("group_vectors", s.run_stats.group_vectors);
      json.field("group_vectors_skipped", s.run_stats.group_vectors_skipped);
      json.field("skip_rate", s.run_stats.skip_rate());
      json.field("groups_repacked", s.run_stats.groups_repacked);
      json.field("detected", s.detected);
      json.field("speedup_vs_full_sweep",
                 b && s.run_s > 0 ? b->run_s / s.run_s : 0.0);
      json.field("gate_eval_reduction",
                 b && s.total_evals() > 0
                     ? static_cast<double>(b->total_evals()) /
                           static_cast<double>(s.total_evals())
                     : 0.0);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  if (!json.write_file("BENCH_faultsim.json")) {
    std::fprintf(stderr, "cannot write BENCH_faultsim.json\n");
    return 1;
  }
  std::printf("overall gate-eval reduction (differential vs full sweep): "
              "x%.2f\n",
              overall_reduction);
  std::printf("wrote BENCH_faultsim.json%s\n",
              consistent ? "" : " (INCONSISTENT RESULTS)");
  return consistent ? 0 : 1;
}
