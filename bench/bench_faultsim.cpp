// Substrate microbenchmark: PROOFS-style 64-way parallel-fault simulation vs
// serial single-fault simulation (the speedup that makes simulation-based
// test generation practical — §I of the paper).
#include <benchmark/benchmark.h>

#include "fault/faultlist.h"
#include "fault/faultsim.h"
#include "gen/registry.h"
#include "helpers_bench.h"

namespace {

using namespace gatpg;

void BM_ParallelFaultSim(benchmark::State& state, const char* name) {
  const auto c = gen::make_circuit(name);
  const auto faults = fault::collapse(c).faults;
  util::Rng rng(1);
  const auto seq = bench::random_sequence(c, rng, 32);
  for (auto _ : state) {
    fault::FaultSimulator fs(c, faults);
    benchmark::DoNotOptimize(fs.run(seq));
  }
  state.counters["faults"] = static_cast<double>(faults.size());
  state.counters["fault_vectors_per_s"] = benchmark::Counter(
      static_cast<double>(faults.size() * seq.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_SerialFaultSim(benchmark::State& state, const char* name) {
  const auto c = gen::make_circuit(name);
  const auto faults = fault::collapse(c).faults;
  util::Rng rng(1);
  const auto seq = bench::random_sequence(c, rng, 32);
  for (auto _ : state) {
    std::size_t detected = 0;
    for (const auto& f : faults) {
      fault::FaultSimulator fs(c, std::vector<fault::Fault>{f});
      detected += fs.run(seq).size();
    }
    benchmark::DoNotOptimize(detected);
  }
  state.counters["faults"] = static_cast<double>(faults.size());
  state.counters["fault_vectors_per_s"] = benchmark::Counter(
      static_cast<double>(faults.size() * seq.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}

BENCHMARK_CAPTURE(BM_ParallelFaultSim, s27, "s27")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SerialFaultSim, s27, "s27")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ParallelFaultSim, g298, "g298")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SerialFaultSim, g298, "g298")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK_CAPTURE(BM_ParallelFaultSim, g1423, "g1423")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK_CAPTURE(BM_SerialFaultSim, g1423, "g1423")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
