// Reproduces Table III: GA-HITEC vs HITEC on the synthesized circuits
// (Am2910 microprogram sequencer, 16-bit divider, 16-bit two's-complement
// multiplier, 8-bit parallel controller).
//
// The paper fixed the GA sequence lengths at 24 and 48 for passes 1 and 2 on
// these circuits; this harness does the same.  The headline result to
// reproduce: GA-HITEC beats HITEC on fault coverage for all four circuits
// (these are data-dominant designs where deterministic reverse-time
// justification struggles).
//
// Usage: bench_table3_synth [--time-scale=X] [--full] [names...]
//   Default uses scaled-down widths (mult8/div8) to keep the default bench
//   sweep fast; --full runs the paper's 16-bit widths.
#include <cstdio>

#include "common.h"
#include "gen/divider.h"
#include "gen/multiplier.h"

int main(int argc, char** argv) {
  using namespace gatpg;
  std::vector<std::string> names;
  const bench::BenchOptions options =
      bench::parse_options(argc, argv, &names);

  std::printf("Table III: synthesized circuits (time scale %g, GA sequence "
              "lengths 24/48)\n",
              options.time_scale);
  bench::print_comparison_banner();
  bench::JsonReport json;
  bench::JsonReport* json_ptr = options.json_path.empty() ? nullptr : &json;
  auto table = bench::make_comparison_table();

  auto run_named = [&](const netlist::Circuit& c) {
    const auto row =
        bench::run_comparison(c, options, {{24u, 48u}}, json_ptr);
    bench::add_comparison_rows(table, row);
  };

  if (!names.empty()) {
    for (const auto& name : names) run_named(gen::make_circuit(name));
  } else {
    run_named(gen::make_circuit("am2910"));
    if (options.full) {
      run_named(gen::make_circuit("div16"));
      run_named(gen::make_circuit("mult16"));
    } else {
      run_named(gen::make_divider(8, "div8"));
      run_named(gen::make_multiplier(8, "mult8"));
    }
    run_named(gen::make_circuit("pcont2"));
  }
  table.print();
  std::printf(
      "\nShape check (paper): GA-HITEC detects more faults than HITEC on "
      "all rows,\nusually in less time.\n");
  bench::finish_json(options, json);
  return 0;
}
