// Reproduces the §IV-A fitness-weight claim: weighting the good-machine goal
// 9/10 and the faulty-machine goal 1/10 justifies more states than equal
// 1/2 : 1/2 weights ("if equal weights are used, the GA jumps back and forth
// among the goals, and none of the problems gets solved quickly").
//
// Justification problems are harvested from the deterministic front end: for
// every collapsed fault the ForwardEngine produces a (required state, fault)
// pair; each pair is then attempted by the GA justifier once per weight
// configuration with identical seeds and budgets.
//
// Usage: bench_fitness_weights [--time-scale=X] [--seed=N] [names...]
#include <cstdio>

#include "atpg/detengine.h"
#include "common.h"
#include "hybrid/ga_justify.h"

namespace {

struct Problem {
  gatpg::fault::Fault fault;
  gatpg::sim::State3 state;
};

std::vector<Problem> harvest_problems(const gatpg::netlist::Circuit& c,
                                      std::size_t cap) {
  using namespace gatpg;
  std::vector<Problem> problems;
  atpg::SearchLimits limits;
  limits.time_limit_s = 0.02;
  limits.max_backtracks = 2000;
  for (const auto& f : fault::collapse(c).faults) {
    if (problems.size() >= cap) break;
    atpg::ForwardEngine engine(c, f, limits);
    if (engine.next_solution(util::Deadline::after_seconds(0.02)) !=
        atpg::ForwardStatus::kSolved) {
      continue;
    }
    const auto state = engine.required_state();
    bool needs = false;
    for (auto v : state) needs |= v != sim::V3::kX;
    if (needs) problems.push_back({f, state});
  }
  return problems;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gatpg;
  std::vector<std::string> names;
  const bench::BenchOptions options =
      bench::parse_options(argc, argv, &names);
  if (names.empty()) names = {"g298", "g382", "g526", "g1423"};

  std::printf("SS IV-A ablation: GA justification success by fitness weights\n");
  util::TablePrinter table({"Circuit", "Problems", "9:1 solved", "5:5 solved",
                            "9:1 len", "5:5 len"});
  for (const auto& name : names) {
    const auto c = gen::make_circuit(name);
    const auto problems = harvest_problems(c, 60);
    const hybrid::GaStateJustifier justifier(c);
    const sim::State3 all_x(c.flip_flops().size(), sim::V3::kX);

    struct Score {
      int solved = 0;
      std::size_t total_len = 0;
    };
    Score paper, equal;
    for (std::size_t i = 0; i < problems.size(); ++i) {
      for (bool use_paper_weights : {true, false}) {
        hybrid::GaJustifyConfig cfg;
        cfg.population = 64;
        cfg.generations = 8;
        cfg.sequence_length = 16;
        cfg.good_weight = use_paper_weights ? 0.9 : 0.5;
        cfg.faulty_weight = use_paper_weights ? 0.1 : 0.5;
        cfg.seed = options.seed + i;
        const auto r = justifier.justify(
            problems[i].fault, problems[i].state, problems[i].state, all_x,
            cfg, util::Deadline::after_seconds(0.25));
        Score& score = use_paper_weights ? paper : equal;
        if (r.success) {
          ++score.solved;
          score.total_len += r.sequence.size();
        }
      }
    }
    auto avg = [](const Score& s) {
      return s.solved ? util::format_sig(
                            static_cast<double>(s.total_len) / s.solved, 3)
                      : std::string("-");
    };
    table.add_row({c.name(), std::to_string(problems.size()),
                   std::to_string(paper.solved), std::to_string(equal.solved),
                   avg(paper), avg(equal)});
  }
  table.print();
  std::printf("\nShape check (paper): the 9:1 column should solve at least "
              "as many problems as 5:5.\n");
  return 0;
}
