// Reproduces the §IV-A selection-scheme remark: squaring the fitness
// function changes proportionate selection (it amplifies differences) but is
// a no-op under tournament selection — only relative order matters there.
//
// Four configurations run on identical harvested justification problems with
// identical seeds: {tournament, proportionate} x {raw, squared}.  The
// tournament pair must produce *identical* outcomes; the proportionate pair
// generally differs.
//
// Usage: bench_selection [--seed=N] [names...]
#include <cstdio>

#include "atpg/detengine.h"
#include "common.h"
#include "hybrid/ga_justify.h"

int main(int argc, char** argv) {
  using namespace gatpg;
  std::vector<std::string> names;
  const bench::BenchOptions options =
      bench::parse_options(argc, argv, &names);
  if (names.empty()) names = {"g298", "g526"};

  std::printf("SS IV-A selection ablation (identical seeds per cell)\n");
  util::TablePrinter table({"Circuit", "Problems", "tourn", "tourn^2",
                            "prop", "prop^2", "tourn==tourn^2"});

  for (const auto& name : names) {
    const auto c = gen::make_circuit(name);
    // Harvest justification problems from the deterministic front end.
    struct Problem {
      fault::Fault fault;
      sim::State3 state;
    };
    std::vector<Problem> problems;
    atpg::SearchLimits limits;
    limits.time_limit_s = 0.02;
    limits.max_backtracks = 2000;
    for (const auto& f : fault::collapse(c).faults) {
      if (problems.size() >= 40) break;
      atpg::ForwardEngine engine(c, f, limits);
      if (engine.next_solution(util::Deadline::after_seconds(0.02)) !=
          atpg::ForwardStatus::kSolved) {
        continue;
      }
      const auto state = engine.required_state();
      bool needs = false;
      for (auto v : state) needs |= v != sim::V3::kX;
      if (needs) problems.push_back({f, state});
    }

    const hybrid::GaStateJustifier justifier(c);
    const sim::State3 all_x(c.flip_flops().size(), sim::V3::kX);
    int solved[4] = {0, 0, 0, 0};
    bool identical = true;
    for (std::size_t i = 0; i < problems.size(); ++i) {
      hybrid::GaJustifyResult results[4];
      int cell = 0;
      for (auto scheme : {ga::SelectionScheme::kTournamentWithoutReplacement,
                          ga::SelectionScheme::kProportionate}) {
        for (bool square : {false, true}) {
          hybrid::GaJustifyConfig cfg;
          cfg.population = 64;
          cfg.generations = 6;
          cfg.sequence_length = 12;
          cfg.selection = scheme;
          cfg.square_fitness = square;
          cfg.seed = options.seed + i * 4 + 1;
          results[cell] = justifier.justify(
              problems[i].fault, problems[i].state, problems[i].state, all_x,
              cfg, util::Deadline::after_seconds(0.25));
          if (results[cell].success) ++solved[cell];
          ++cell;
        }
      }
      // Tournament cells (0 raw, 1 squared) must match exactly.
      if (results[0].success != results[1].success ||
          results[0].sequence != results[1].sequence ||
          results[0].best_fitness * results[0].best_fitness !=
              results[1].best_fitness) {
        // best_fitness is squared in cell 1, so compare squared raw.
        if (results[0].success != results[1].success ||
            results[0].sequence != results[1].sequence) {
          identical = false;
        }
      }
    }
    table.add_row({c.name(), std::to_string(problems.size()),
                   std::to_string(solved[0]), std::to_string(solved[1]),
                   std::to_string(solved[2]), std::to_string(solved[3]),
                   identical ? "yes" : "NO"});
  }
  table.print();
  std::printf("\nShape check (paper): the tournament columns are identical "
              "(squaring is a no-op under rank-based selection).\n");
  return 0;
}
