// Fault-model bench: the hybrid generator over both fault universes on a
// fixed circuit set, with a backtrack-bounded (wall-clock-free) schedule so
// every row is a pure function of (circuit, universe, seed) and the
// committed snapshot can be exact-match gated by tools/check_bench.py.
//
// Emits BENCH_faults.json with per-(circuit, model) coverage, test-set
// size, engine counters, and the test-set digest, plus two self-check
// invariants: `consistent_across_configs` (the base run is bit-identical
// at 4 fault-sim threads and at SIMD group width 4) and
// `stuck_at_matches_default` (a config that never mentions the fault-model
// axis produces the stuck-at run bit for bit).  Coverage floors per model
// are exported as min_coverage_* for the threshold gate.
//
// Usage: bench_faults [--seed=N] [--full] [--backtracks=N] [--cap=N]
//                     [names...]
//   --full adds g1423; --cap bounds the collapsed fault list per row.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.h"
#include "fault/faultlist.h"
#include "gen/registry.h"
#include "hybrid/hybrid_atpg.h"
#include "netlist/depth.h"
#include "session/session.h"
#include "util/json_writer.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace gatpg;

std::string to_hex(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return s;
}

/// Backtrack/generation-bounded two-pass schedule: no wall-clock limit ever
/// binds, so results are machine-independent (the exact-match gate relies
/// on this).
hybrid::HybridConfig base_config(fault::FaultUniverse universe,
                                 std::uint64_t seed, long backtracks) {
  hybrid::HybridConfig cfg;
  cfg.fault_model = universe;
  session::PassConfig ga;
  ga.mode = session::JustifyMode::kGenetic;
  ga.time_limit_s = 0.0;
  ga.max_backtracks = backtracks;
  ga.ga_population = 64;
  ga.ga_generations = 2;
  ga.seq_len_multiplier = 2.0;
  session::PassConfig det;
  det.mode = session::JustifyMode::kDeterministic;
  det.time_limit_s = 0.0;
  det.max_backtracks = backtracks;
  cfg.schedule.passes = {ga, det};
  cfg.max_solutions_per_fault = 4;
  cfg.seed = seed;
  cfg.parallel.threads = 1;
  cfg.state_store.enabled = true;
  return cfg;
}

session::SessionResult run_hybrid(const netlist::Circuit& c,
                                  const fault::FaultList& faults,
                                  const hybrid::HybridConfig& cfg) {
  session::SessionConfig scfg;
  scfg.fault_model = cfg.fault_model;
  scfg.faultsim = cfg.faultsim;
  scfg.faultsim.parallel = cfg.parallel;
  scfg.state_store = cfg.state_store;
  scfg.target_parallel = cfg.target_parallel;
  session::Session s(c, faults, scfg);
  util::Rng rng(cfg.seed);
  hybrid::HybridEngine engine(c, cfg, netlist::sequential_depth(c), rng);
  return s.run(engine, cfg.schedule);
}

bool same_bits(const session::SessionResult& a,
               const session::SessionResult& b) {
  return a.digests.faults == b.digests.faults &&
         a.digests.tests == b.digests.tests &&
         a.digests.store == b.digests.store &&
         a.fault_state == b.fault_state && a.test_set == b.test_set &&
         a.detected() == b.detected() && a.untestable() == b.untestable();
}

struct Row {
  fault::FaultUniverse universe = fault::FaultUniverse::kStuckAt;
  std::size_t faults = 0;
  std::size_t detected = 0;
  std::size_t untestable = 0;
  std::size_t vectors = 0;
  long targeted = 0;
  long committed_tests = 0;
  std::uint64_t digest_tests = 0;
  double time_s = 0.0;

  double coverage() const {
    return faults == 0 ? 0.0
                       : static_cast<double>(detected) /
                             static_cast<double>(faults);
  }
};

struct CircuitResult {
  std::string name;
  std::vector<Row> rows;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  const bench::BenchOptions options =
      bench::parse_options(argc, argv, &positional);
  long backtracks = 200;
  std::size_t cap = 160;
  std::vector<std::string> names;
  for (const std::string& arg : positional) {
    if (arg.rfind("--backtracks=", 0) == 0) {
      backtracks = std::atol(arg.c_str() + 13);
    } else if (arg.rfind("--cap=", 0) == 0) {
      cap = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else {
      names.push_back(arg);
    }
  }
  if (names.empty()) {
    names = {"s27", "g344", "g382", "g526"};
    if (options.full) names.push_back("g1423");
  }

  std::printf("Hybrid ATPG per fault model (backtracks=%ld, cap=%zu, "
              "seed=%llu, hardware_concurrency=%u)\n\n",
              backtracks, cap,
              static_cast<unsigned long long>(options.seed),
              util::ParallelConfig{}.resolved());

  bool consistent = true;
  bool stuck_at_matches_default = true;
  double min_coverage_stuck_at = 1.0;
  double min_coverage_transition = 1.0;
  std::vector<CircuitResult> results;
  for (const std::string& name : names) {
    const netlist::Circuit c = gen::make_circuit(name);
    CircuitResult cr;
    cr.name = name;

    for (const auto universe :
         {fault::FaultUniverse::kStuckAt, fault::FaultUniverse::kTransition}) {
      fault::FaultList faults = fault::collapse(c, universe);
      if (faults.size() > cap) {
        faults.faults.resize(cap);
        faults.class_sizes.resize(cap);
      }
      const hybrid::HybridConfig cfg =
          base_config(universe, options.seed, backtracks);

      const util::Stopwatch sw;
      const session::SessionResult base = run_hybrid(c, faults, cfg);
      const double time_s = sw.seconds();

      // Identity across execution shapes: fault-sim threads and SIMD width
      // are pure execution parallelism and must never move a bit.
      {
        hybrid::HybridConfig v = cfg;
        v.parallel.threads = 4;
        if (!same_bits(base, run_hybrid(c, faults, v))) {
          std::printf("ERROR: %s %s diverges at 4 fault-sim threads\n",
                      name.c_str(), fault::universe_name(universe));
          consistent = false;
        }
      }
      {
        hybrid::HybridConfig v = cfg;
        v.faultsim.width = 4;
        if (!same_bits(base, run_hybrid(c, faults, v))) {
          std::printf("ERROR: %s %s diverges at SIMD width 4\n",
                      name.c_str(), fault::universe_name(universe));
          consistent = false;
        }
      }
      // The model axis must be invisible to stuck-at callers: a config that
      // never mentions it reproduces the explicit stuck-at run exactly.
      if (universe == fault::FaultUniverse::kStuckAt) {
        hybrid::HybridConfig legacy =
            base_config(universe, options.seed, backtracks);
        legacy.fault_model = fault::FaultUniverse::kStuckAt;
        fault::FaultList legacy_faults = fault::collapse(c);
        if (legacy_faults.size() > cap) {
          legacy_faults.faults.resize(cap);
          legacy_faults.class_sizes.resize(cap);
        }
        if (!same_bits(base, run_hybrid(c, legacy_faults, legacy))) {
          std::printf("ERROR: %s stuck-at diverges from default-config run\n",
                      name.c_str());
          stuck_at_matches_default = false;
        }
      }

      Row row;
      row.universe = universe;
      row.faults = faults.size();
      row.detected = base.detected();
      row.untestable = base.untestable();
      row.vectors = base.test_set.size();
      row.targeted = base.counters.targeted;
      row.committed_tests = base.counters.committed_tests;
      row.digest_tests = base.digests.tests;
      row.time_s = time_s;
      cr.rows.push_back(row);

      (universe == fault::FaultUniverse::kStuckAt ? min_coverage_stuck_at
                                                  : min_coverage_transition) =
          std::min(universe == fault::FaultUniverse::kStuckAt
                       ? min_coverage_stuck_at
                       : min_coverage_transition,
                   row.coverage());
      std::printf("%-8s %-10s %4zu faults  det=%4zu (%5.1f%%)  unt=%3zu  "
                  "vectors=%4zu  tests=%4ld  %7.2fms\n",
                  name.c_str(), fault::universe_name(universe), row.faults,
                  row.detected, row.coverage() * 100.0, row.untestable,
                  row.vectors, row.committed_tests, time_s * 1e3);
    }
    std::printf("\n");
    results.push_back(std::move(cr));
  }

  util::JsonWriter json(util::JsonWriter::Style::kPretty);
  json.begin_object();
  json.field("bench", "faults");
  json.field("hardware_concurrency", util::ParallelConfig{}.resolved());
  json.field("seed", options.seed);
  json.field("backtracks", backtracks);
  json.field("cap", cap);
  json.field("consistent_across_configs", consistent);
  json.field("stuck_at_matches_default", stuck_at_matches_default);
  json.field("min_coverage_stuck_at", min_coverage_stuck_at);
  json.field("min_coverage_transition", min_coverage_transition);
  json.key("circuits").begin_array();
  for (const CircuitResult& cr : results) {
    json.begin_object();
    json.field("name", cr.name);
    json.key("results").begin_array();
    for (const Row& r : cr.rows) {
      json.begin_object();
      json.field("model", fault::universe_name(r.universe));
      json.field("faults", r.faults);
      json.field("detected", r.detected);
      json.field("untestable", r.untestable);
      json.field("vectors", r.vectors);
      json.field("coverage", r.coverage());
      json.field("targeted", r.targeted);
      json.field("committed_tests", r.committed_tests);
      json.field("digest_tests", to_hex(r.digest_tests));
      json.field("time_s", r.time_s);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  if (!json.write_file("BENCH_faults.json")) {
    std::fprintf(stderr, "cannot write BENCH_faults.json\n");
    return 1;
  }
  std::printf("min coverage: stuck_at %.1f%%, transition %.1f%%\n",
              min_coverage_stuck_at * 100.0, min_coverage_transition * 100.0);
  const bool ok = consistent && stuck_at_matches_default;
  std::printf("wrote BENCH_faults.json%s\n",
              ok ? "" : " (INCONSISTENT RESULTS)");
  return ok ? 0 : 1;
}
