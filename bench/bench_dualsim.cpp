// Substrate microbenchmark: the 64-way bit-parallel GA fitness kernel
// ("the bitwise parallelism of the computer word is used, which allows 32
// sequences to be simulated in parallel" — §IV-A; we use 64-bit words).
// Compares one packed batch against 64 scalar broadcast runs.
#include <benchmark/benchmark.h>

#include "gen/registry.h"
#include "helpers_bench.h"
#include "sim/seqsim.h"

namespace {

using namespace gatpg;

void BM_PackedBatch64(benchmark::State& state, const char* name) {
  const auto c = gen::make_circuit(name);
  util::Rng rng(7);
  const std::size_t npi = c.primary_inputs().size();
  const unsigned len = 32;
  // Pre-generate 64 packed vectors per time step.
  std::vector<std::vector<sim::PackedV3>> packed(len);
  for (auto& words : packed) {
    words.resize(npi);
    for (auto& w : words) w = {rng.word(), 0};
  }
  for (auto& words : packed) {
    for (auto& w : words) w.v0 = ~w.v1;
  }
  for (auto _ : state) {
    sim::SequenceSimulator s(c);
    for (unsigned t = 0; t < len; ++t) {
      s.apply_packed(packed[t]);
      s.clock();
    }
    benchmark::DoNotOptimize(s.state(0));
  }
  state.counters["candidate_vectors_per_s"] = benchmark::Counter(
      64.0 * len, benchmark::Counter::kIsIterationInvariantRate);
}

void BM_ScalarRuns64(benchmark::State& state, const char* name) {
  const auto c = gen::make_circuit(name);
  util::Rng rng(7);
  const unsigned len = 32;
  std::vector<sim::Sequence> seqs(64);
  for (auto& seq : seqs) seq = bench::random_sequence(c, rng, len);
  for (auto _ : state) {
    for (const auto& seq : seqs) {
      sim::SequenceSimulator s(c);
      s.run_sequence(seq);
      benchmark::DoNotOptimize(s.state(0));
    }
  }
  state.counters["candidate_vectors_per_s"] = benchmark::Counter(
      64.0 * len, benchmark::Counter::kIsIterationInvariantRate);
}

BENCHMARK_CAPTURE(BM_PackedBatch64, g298, "g298")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ScalarRuns64, g298, "g298")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PackedBatch64, g1423, "g1423")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ScalarRuns64, g1423, "g1423")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
