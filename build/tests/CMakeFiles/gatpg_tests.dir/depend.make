# Empty dependencies file for gatpg_tests.
# This may be replaced when dependencies are built.
