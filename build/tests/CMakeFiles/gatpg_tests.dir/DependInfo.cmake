
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_compaction.cpp" "tests/CMakeFiles/gatpg_tests.dir/test_compaction.cpp.o" "gcc" "tests/CMakeFiles/gatpg_tests.dir/test_compaction.cpp.o.d"
  "/root/repo/tests/test_detengine.cpp" "tests/CMakeFiles/gatpg_tests.dir/test_detengine.cpp.o" "gcc" "tests/CMakeFiles/gatpg_tests.dir/test_detengine.cpp.o.d"
  "/root/repo/tests/test_faultlist.cpp" "tests/CMakeFiles/gatpg_tests.dir/test_faultlist.cpp.o" "gcc" "tests/CMakeFiles/gatpg_tests.dir/test_faultlist.cpp.o.d"
  "/root/repo/tests/test_faultsim.cpp" "tests/CMakeFiles/gatpg_tests.dir/test_faultsim.cpp.o" "gcc" "tests/CMakeFiles/gatpg_tests.dir/test_faultsim.cpp.o.d"
  "/root/repo/tests/test_frame_model.cpp" "tests/CMakeFiles/gatpg_tests.dir/test_frame_model.cpp.o" "gcc" "tests/CMakeFiles/gatpg_tests.dir/test_frame_model.cpp.o.d"
  "/root/repo/tests/test_ga.cpp" "tests/CMakeFiles/gatpg_tests.dir/test_ga.cpp.o" "gcc" "tests/CMakeFiles/gatpg_tests.dir/test_ga.cpp.o.d"
  "/root/repo/tests/test_ga_justify.cpp" "tests/CMakeFiles/gatpg_tests.dir/test_ga_justify.cpp.o" "gcc" "tests/CMakeFiles/gatpg_tests.dir/test_ga_justify.cpp.o.d"
  "/root/repo/tests/test_gen.cpp" "tests/CMakeFiles/gatpg_tests.dir/test_gen.cpp.o" "gcc" "tests/CMakeFiles/gatpg_tests.dir/test_gen.cpp.o.d"
  "/root/repo/tests/test_hybrid.cpp" "tests/CMakeFiles/gatpg_tests.dir/test_hybrid.cpp.o" "gcc" "tests/CMakeFiles/gatpg_tests.dir/test_hybrid.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/gatpg_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/gatpg_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_justify.cpp" "tests/CMakeFiles/gatpg_tests.dir/test_justify.cpp.o" "gcc" "tests/CMakeFiles/gatpg_tests.dir/test_justify.cpp.o.d"
  "/root/repo/tests/test_logic3.cpp" "tests/CMakeFiles/gatpg_tests.dir/test_logic3.cpp.o" "gcc" "tests/CMakeFiles/gatpg_tests.dir/test_logic3.cpp.o.d"
  "/root/repo/tests/test_more_props.cpp" "tests/CMakeFiles/gatpg_tests.dir/test_more_props.cpp.o" "gcc" "tests/CMakeFiles/gatpg_tests.dir/test_more_props.cpp.o.d"
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/gatpg_tests.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/gatpg_tests.dir/test_netlist.cpp.o.d"
  "/root/repo/tests/test_output_justify.cpp" "tests/CMakeFiles/gatpg_tests.dir/test_output_justify.cpp.o" "gcc" "tests/CMakeFiles/gatpg_tests.dir/test_output_justify.cpp.o.d"
  "/root/repo/tests/test_podem.cpp" "tests/CMakeFiles/gatpg_tests.dir/test_podem.cpp.o" "gcc" "tests/CMakeFiles/gatpg_tests.dir/test_podem.cpp.o.d"
  "/root/repo/tests/test_seqsim.cpp" "tests/CMakeFiles/gatpg_tests.dir/test_seqsim.cpp.o" "gcc" "tests/CMakeFiles/gatpg_tests.dir/test_seqsim.cpp.o.d"
  "/root/repo/tests/test_small_units.cpp" "tests/CMakeFiles/gatpg_tests.dir/test_small_units.cpp.o" "gcc" "tests/CMakeFiles/gatpg_tests.dir/test_small_units.cpp.o.d"
  "/root/repo/tests/test_tpg.cpp" "tests/CMakeFiles/gatpg_tests.dir/test_tpg.cpp.o" "gcc" "tests/CMakeFiles/gatpg_tests.dir/test_tpg.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/gatpg_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/gatpg_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gatpg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
