# Empty dependencies file for bench_faultsim.
# This may be replaced when dependencies are built.
