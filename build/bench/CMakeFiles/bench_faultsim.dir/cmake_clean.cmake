file(REMOVE_RECURSE
  "CMakeFiles/bench_faultsim.dir/bench_faultsim.cpp.o"
  "CMakeFiles/bench_faultsim.dir/bench_faultsim.cpp.o.d"
  "bench_faultsim"
  "bench_faultsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_faultsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
