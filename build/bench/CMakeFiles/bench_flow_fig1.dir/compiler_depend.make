# Empty compiler generated dependencies file for bench_flow_fig1.
# This may be replaced when dependencies are built.
