file(REMOVE_RECURSE
  "CMakeFiles/bench_fitness_weights.dir/bench_fitness_weights.cpp.o"
  "CMakeFiles/bench_fitness_weights.dir/bench_fitness_weights.cpp.o.d"
  "bench_fitness_weights"
  "bench_fitness_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fitness_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
