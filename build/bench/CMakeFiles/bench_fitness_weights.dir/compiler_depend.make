# Empty compiler generated dependencies file for bench_fitness_weights.
# This may be replaced when dependencies are built.
