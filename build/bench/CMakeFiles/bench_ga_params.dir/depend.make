# Empty dependencies file for bench_ga_params.
# This may be replaced when dependencies are built.
