file(REMOVE_RECURSE
  "CMakeFiles/bench_ga_params.dir/bench_ga_params.cpp.o"
  "CMakeFiles/bench_ga_params.dir/bench_ga_params.cpp.o.d"
  "bench_ga_params"
  "bench_ga_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ga_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
