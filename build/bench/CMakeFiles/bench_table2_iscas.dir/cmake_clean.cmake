file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_iscas.dir/bench_table2_iscas.cpp.o"
  "CMakeFiles/bench_table2_iscas.dir/bench_table2_iscas.cpp.o.d"
  "bench_table2_iscas"
  "bench_table2_iscas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_iscas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
