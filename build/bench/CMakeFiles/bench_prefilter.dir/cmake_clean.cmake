file(REMOVE_RECURSE
  "CMakeFiles/bench_prefilter.dir/bench_prefilter.cpp.o"
  "CMakeFiles/bench_prefilter.dir/bench_prefilter.cpp.o.d"
  "bench_prefilter"
  "bench_prefilter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prefilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
