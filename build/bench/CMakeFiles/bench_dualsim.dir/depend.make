# Empty dependencies file for bench_dualsim.
# This may be replaced when dependencies are built.
