file(REMOVE_RECURSE
  "CMakeFiles/bench_dualsim.dir/bench_dualsim.cpp.o"
  "CMakeFiles/bench_dualsim.dir/bench_dualsim.cpp.o.d"
  "bench_dualsim"
  "bench_dualsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dualsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
