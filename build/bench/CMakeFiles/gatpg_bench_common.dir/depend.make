# Empty dependencies file for gatpg_bench_common.
# This may be replaced when dependencies are built.
