file(REMOVE_RECURSE
  "CMakeFiles/gatpg_bench_common.dir/common.cpp.o"
  "CMakeFiles/gatpg_bench_common.dir/common.cpp.o.d"
  "libgatpg_bench_common.a"
  "libgatpg_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gatpg_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
