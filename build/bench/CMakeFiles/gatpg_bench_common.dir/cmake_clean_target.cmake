file(REMOVE_RECURSE
  "libgatpg_bench_common.a"
)
