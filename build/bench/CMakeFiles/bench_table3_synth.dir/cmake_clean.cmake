file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_synth.dir/bench_table3_synth.cpp.o"
  "CMakeFiles/bench_table3_synth.dir/bench_table3_synth.cpp.o.d"
  "bench_table3_synth"
  "bench_table3_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
