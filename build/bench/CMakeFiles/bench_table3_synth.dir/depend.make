# Empty dependencies file for bench_table3_synth.
# This may be replaced when dependencies are built.
