file(REMOVE_RECURSE
  "libgatpg.a"
)
