
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atpg/detengine.cpp" "src/CMakeFiles/gatpg.dir/atpg/detengine.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/atpg/detengine.cpp.o.d"
  "/root/repo/src/atpg/frame_model.cpp" "src/CMakeFiles/gatpg.dir/atpg/frame_model.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/atpg/frame_model.cpp.o.d"
  "/root/repo/src/atpg/justify.cpp" "src/CMakeFiles/gatpg.dir/atpg/justify.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/atpg/justify.cpp.o.d"
  "/root/repo/src/atpg/podem.cpp" "src/CMakeFiles/gatpg.dir/atpg/podem.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/atpg/podem.cpp.o.d"
  "/root/repo/src/fault/compaction.cpp" "src/CMakeFiles/gatpg.dir/fault/compaction.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/fault/compaction.cpp.o.d"
  "/root/repo/src/fault/faultlist.cpp" "src/CMakeFiles/gatpg.dir/fault/faultlist.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/fault/faultlist.cpp.o.d"
  "/root/repo/src/fault/faultsim.cpp" "src/CMakeFiles/gatpg.dir/fault/faultsim.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/fault/faultsim.cpp.o.d"
  "/root/repo/src/fault/grading.cpp" "src/CMakeFiles/gatpg.dir/fault/grading.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/fault/grading.cpp.o.d"
  "/root/repo/src/ga/genetic.cpp" "src/CMakeFiles/gatpg.dir/ga/genetic.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/ga/genetic.cpp.o.d"
  "/root/repo/src/gen/am2910.cpp" "src/CMakeFiles/gatpg.dir/gen/am2910.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/gen/am2910.cpp.o.d"
  "/root/repo/src/gen/analogs.cpp" "src/CMakeFiles/gatpg.dir/gen/analogs.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/gen/analogs.cpp.o.d"
  "/root/repo/src/gen/datapath.cpp" "src/CMakeFiles/gatpg.dir/gen/datapath.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/gen/datapath.cpp.o.d"
  "/root/repo/src/gen/divider.cpp" "src/CMakeFiles/gatpg.dir/gen/divider.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/gen/divider.cpp.o.d"
  "/root/repo/src/gen/fsmgen.cpp" "src/CMakeFiles/gatpg.dir/gen/fsmgen.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/gen/fsmgen.cpp.o.d"
  "/root/repo/src/gen/multiplier.cpp" "src/CMakeFiles/gatpg.dir/gen/multiplier.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/gen/multiplier.cpp.o.d"
  "/root/repo/src/gen/pcont.cpp" "src/CMakeFiles/gatpg.dir/gen/pcont.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/gen/pcont.cpp.o.d"
  "/root/repo/src/gen/registry.cpp" "src/CMakeFiles/gatpg.dir/gen/registry.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/gen/registry.cpp.o.d"
  "/root/repo/src/gen/s27.cpp" "src/CMakeFiles/gatpg.dir/gen/s27.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/gen/s27.cpp.o.d"
  "/root/repo/src/hybrid/ga_justify.cpp" "src/CMakeFiles/gatpg.dir/hybrid/ga_justify.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/hybrid/ga_justify.cpp.o.d"
  "/root/repo/src/hybrid/hybrid_atpg.cpp" "src/CMakeFiles/gatpg.dir/hybrid/hybrid_atpg.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/hybrid/hybrid_atpg.cpp.o.d"
  "/root/repo/src/hybrid/output_justify.cpp" "src/CMakeFiles/gatpg.dir/hybrid/output_justify.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/hybrid/output_justify.cpp.o.d"
  "/root/repo/src/hybrid/pass.cpp" "src/CMakeFiles/gatpg.dir/hybrid/pass.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/hybrid/pass.cpp.o.d"
  "/root/repo/src/netlist/bench_io.cpp" "src/CMakeFiles/gatpg.dir/netlist/bench_io.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/netlist/bench_io.cpp.o.d"
  "/root/repo/src/netlist/builder.cpp" "src/CMakeFiles/gatpg.dir/netlist/builder.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/netlist/builder.cpp.o.d"
  "/root/repo/src/netlist/circuit.cpp" "src/CMakeFiles/gatpg.dir/netlist/circuit.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/netlist/circuit.cpp.o.d"
  "/root/repo/src/netlist/depth.cpp" "src/CMakeFiles/gatpg.dir/netlist/depth.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/netlist/depth.cpp.o.d"
  "/root/repo/src/netlist/levelize.cpp" "src/CMakeFiles/gatpg.dir/netlist/levelize.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/netlist/levelize.cpp.o.d"
  "/root/repo/src/sim/seqsim.cpp" "src/CMakeFiles/gatpg.dir/sim/seqsim.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/sim/seqsim.cpp.o.d"
  "/root/repo/src/tpg/alternating.cpp" "src/CMakeFiles/gatpg.dir/tpg/alternating.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/tpg/alternating.cpp.o.d"
  "/root/repo/src/tpg/randgen.cpp" "src/CMakeFiles/gatpg.dir/tpg/randgen.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/tpg/randgen.cpp.o.d"
  "/root/repo/src/tpg/simgen.cpp" "src/CMakeFiles/gatpg.dir/tpg/simgen.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/tpg/simgen.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/gatpg.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/tableprint.cpp" "src/CMakeFiles/gatpg.dir/util/tableprint.cpp.o" "gcc" "src/CMakeFiles/gatpg.dir/util/tableprint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
