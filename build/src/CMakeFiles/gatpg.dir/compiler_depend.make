# Empty compiler generated dependencies file for gatpg.
# This may be replaced when dependencies are built.
