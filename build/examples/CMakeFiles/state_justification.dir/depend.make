# Empty dependencies file for state_justification.
# This may be replaced when dependencies are built.
