file(REMOVE_RECURSE
  "CMakeFiles/state_justification.dir/state_justification.cpp.o"
  "CMakeFiles/state_justification.dir/state_justification.cpp.o.d"
  "state_justification"
  "state_justification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_justification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
