file(REMOVE_RECURSE
  "CMakeFiles/custom_circuit_atpg.dir/custom_circuit_atpg.cpp.o"
  "CMakeFiles/custom_circuit_atpg.dir/custom_circuit_atpg.cpp.o.d"
  "custom_circuit_atpg"
  "custom_circuit_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_circuit_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
