# Empty dependencies file for custom_circuit_atpg.
# This may be replaced when dependencies are built.
