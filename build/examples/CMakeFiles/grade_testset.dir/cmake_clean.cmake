file(REMOVE_RECURSE
  "CMakeFiles/grade_testset.dir/grade_testset.cpp.o"
  "CMakeFiles/grade_testset.dir/grade_testset.cpp.o.d"
  "grade_testset"
  "grade_testset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grade_testset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
