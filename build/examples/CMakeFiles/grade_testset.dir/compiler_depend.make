# Empty compiler generated dependencies file for grade_testset.
# This may be replaced when dependencies are built.
