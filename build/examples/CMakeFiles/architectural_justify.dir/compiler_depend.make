# Empty compiler generated dependencies file for architectural_justify.
# This may be replaced when dependencies are built.
