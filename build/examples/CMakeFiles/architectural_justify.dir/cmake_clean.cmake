file(REMOVE_RECURSE
  "CMakeFiles/architectural_justify.dir/architectural_justify.cpp.o"
  "CMakeFiles/architectural_justify.dir/architectural_justify.cpp.o.d"
  "architectural_justify"
  "architectural_justify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/architectural_justify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
