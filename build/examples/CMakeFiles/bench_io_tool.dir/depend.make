# Empty dependencies file for bench_io_tool.
# This may be replaced when dependencies are built.
