file(REMOVE_RECURSE
  "CMakeFiles/bench_io_tool.dir/bench_io_tool.cpp.o"
  "CMakeFiles/bench_io_tool.dir/bench_io_tool.cpp.o.d"
  "bench_io_tool"
  "bench_io_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_io_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
