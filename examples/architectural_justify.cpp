// Example: the paper's §VI extension — justifying *module output* values
// with a GA instead of backtracing through the module.
//
// Scenario: the 4-bit multiplier is an architectural block inside a larger
// design, and a system-level test needs its product bus to display a given
// value.  Classic architectural ATPG would backtrace the value through the
// multiplier (hard: arithmetic is a terrible backtrace subject); here the
// GA simply searches operand/control sequences forward.
#include <cstdio>

#include "gen/multiplier.h"
#include "hybrid/output_justify.h"
#include "sim/seqsim.h"

int main() {
  using namespace gatpg;
  using sim::V3;

  const auto circuit = gen::make_multiplier(4, "mult4");
  const auto pos = circuit.primary_outputs();

  // Goal: product displays 0b00010101 (= 21 = 3 x 7) with done = 1.
  const unsigned target_product = 21;
  std::vector<hybrid::OutputGoal> goals;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const std::string& name = circuit.name(pos[i]);
    if (name == "done") {
      goals.push_back({i, V3::k1});
      continue;
    }
    if (name.rfind("p", 0) == 0 && name.size() > 1) {
      const unsigned bit = static_cast<unsigned>(std::stoul(name.substr(1)));
      goals.push_back(
          {i, ((target_product >> bit) & 1) ? V3::k1 : V3::k0});
    }
  }
  std::printf("goal: product = %u with done = 1 (%zu output goals)\n",
              target_product, goals.size());

  hybrid::GaJustifyConfig config;
  config.population = 128;
  config.generations = 32;
  config.sequence_length = 10;  // load + 4 Booth steps + slack
  config.seed = 11;

  const hybrid::GaOutputJustifier justifier(circuit);
  const sim::State3 all_x(circuit.flip_flops().size(), V3::kX);
  const auto result = justifier.justify(goals, all_x, config,
                                        util::Deadline::after_seconds(30));
  if (!result.success) {
    std::printf("GA did not find a sequence (best fitness %.1f/%zu after "
                "%zu evaluations)\n",
                result.best_fitness, goals.size(), result.evaluations);
    return 1;
  }
  std::printf("found a %zu-vector sequence after %zu candidate evaluations\n",
              result.sequence.size(), result.evaluations);

  // Show the witness: decode the inputs the GA discovered.
  sim::SequenceSimulator s(circuit);
  for (const auto& v : result.sequence) {
    s.apply_vector(v);
    // Print operand values on the cycle start is asserted.
    const auto start = circuit.find("start");
    if (s.scalar_value(start) == V3::k1) {
      unsigned a = 0, b = 0;
      for (unsigned bit = 0; bit < 4; ++bit) {
        if (s.scalar_value(circuit.find("a" + std::to_string(bit))) ==
            V3::k1) {
          a |= 1u << bit;
        }
        if (s.scalar_value(circuit.find("b" + std::to_string(bit))) ==
            V3::k1) {
          b |= 1u << bit;
        }
      }
      std::printf("  GA chose operands: a=%u b=%u (signed 4-bit)\n", a, b);
    }
    s.clock();
  }
  // Verify the product on the final cycle.
  sim::SequenceSimulator check(circuit);
  for (std::size_t i = 0; i + 1 < result.sequence.size(); ++i) {
    check.apply_vector(result.sequence[i]);
    check.clock();
  }
  check.apply_vector(result.sequence.back());
  unsigned product = 0;
  for (unsigned bit = 0; bit < 8; ++bit) {
    if (check.scalar_value(circuit.find("p" + std::to_string(bit))) ==
        V3::k1) {
      product |= 1u << bit;
    }
  }
  std::printf("verified: product bus shows %u, done = %c\n", product,
              sim::v3_char(check.scalar_value(circuit.find("done"))));
  return 0;
}
