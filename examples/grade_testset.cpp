// Example: use the PROOFS-style fault simulator as a standalone test
// grader, comparing an ATPG-generated test set against random patterns of
// the same length — the classic motivation for targeted test generation.
//
//   ./grade_testset [circuit-name] [random-multiplier]
//
// Also demonstrates incremental grading: the fault simulator carries its
// state across run() calls, so coverage can be tracked vector-block by
// vector-block (useful for test-set truncation studies).
#include <cstdio>
#include <string>

#include "fault/faultlist.h"
#include "fault/faultsim.h"
#include "gen/registry.h"
#include "hybrid/hybrid_atpg.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace gatpg;
  const std::string name = argc > 1 ? argv[1] : "g298";
  const int multiplier = argc > 2 ? std::atoi(argv[2]) : 4;

  const auto circuit = gen::make_circuit(name);
  const auto faults = fault::collapse(circuit).faults;
  std::printf("%s: %zu collapsed faults\n", circuit.name().c_str(),
              faults.size());

  // Generate a test set.
  hybrid::HybridConfig config;
  config.schedule = hybrid::PassSchedule::ga_hitec(0.02);
  const auto result = hybrid::HybridAtpg(circuit, config).run();
  std::printf("ATPG test set: %zu vectors\n", result.test_set.size());

  // Grade it in blocks of 16 vectors to show the coverage curve.
  {
    fault::FaultSimulator fs(circuit, faults);
    std::printf("coverage curve (ATPG):");
    for (std::size_t offset = 0; offset < result.test_set.size();
         offset += 16) {
      const std::size_t end =
          std::min(offset + 16, result.test_set.size());
      fs.run(sim::Sequence(result.test_set.begin() + offset,
                           result.test_set.begin() + end));
      std::printf(" %zu:%0.1f%%", end,
                  100.0 * static_cast<double>(fs.detected_count()) /
                      static_cast<double>(faults.size()));
    }
    std::printf("\n");
  }

  // Random patterns, `multiplier` times as many vectors.
  util::Rng rng(99);
  sim::Sequence random_seq;
  for (std::size_t i = 0; i < result.test_set.size() * multiplier; ++i) {
    sim::Vector3 v(circuit.primary_inputs().size());
    for (auto& bit : v) bit = rng.bit() ? sim::V3::k1 : sim::V3::k0;
    random_seq.push_back(v);
  }
  fault::FaultSimulator random_fs(circuit, faults);
  random_fs.run(random_seq);
  std::printf("random x%d: %zu vectors -> %zu/%zu detected\n", multiplier,
              random_seq.size(), random_fs.detected_count(), faults.size());

  fault::FaultSimulator atpg_fs(circuit, faults);
  atpg_fs.run(result.test_set);
  std::printf("ATPG:       %zu vectors -> %zu/%zu detected (+%zu proven "
              "untestable)\n",
              result.test_set.size(), atpg_fs.detected_count(), faults.size(),
              result.untestable());
  return 0;
}
