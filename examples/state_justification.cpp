// Example: drive the two state-justification engines directly — the genetic
// justifier (the paper's contribution) and the deterministic reverse-time
// justifier — on the Am2910 microprogram sequencer.
//
// Target: a state in which the stack pointer is at 2 and the loop counter
// holds a specific value — the kind of deep, datapath-flavoured state that
// motivates GA justification (reaching it requires executing a coherent
// instruction sequence: JZ, pushes, counter loads).
#include <cstdio>

#include "atpg/justify.h"
#include "gen/am2910.h"
#include "hybrid/ga_justify.h"
#include "sim/seqsim.h"

int main() {
  using namespace gatpg;
  using sim::V3;

  const auto circuit = gen::make_am2910();
  const auto ffs = circuit.flip_flops();
  std::printf("am2910: %zu flip-flops\n", ffs.size());

  // Build the target: sp = 2 (bits named sp0..sp2), r = 0x005.
  sim::State3 target(ffs.size(), V3::kX);
  auto set_ff = [&](const std::string& name, bool value) {
    const auto node = circuit.find(name);
    const int index = circuit.ff_index(node);
    target[static_cast<std::size_t>(index)] = value ? V3::k1 : V3::k0;
  };
  set_ff("sp0", false);
  set_ff("sp1", true);
  set_ff("sp2", false);
  for (unsigned bit = 0; bit < 12; ++bit) {
    set_ff("r" + std::to_string(bit), (0x005u >> bit) & 1);
  }

  // 1. Genetic justification (pass-2 settings: pop 128, 8 generations).
  hybrid::GaJustifyConfig ga_config;
  ga_config.population = 128;
  ga_config.generations = 8;
  ga_config.sequence_length = 24;
  ga_config.seed = 7;
  const sim::State3 all_x(ffs.size(), V3::kX);
  const fault::Fault dummy{circuit.primary_outputs()[0], fault::kOutputPin,
                           false};
  const hybrid::GaStateJustifier ga(circuit);
  const auto ga_result =
      ga.justify(dummy, target, all_x, all_x, ga_config,
                 util::Deadline::after_seconds(10));
  if (ga_result.success) {
    std::printf("GA justified the state with a %zu-vector sequence "
                "(%zu candidate evaluations)\n",
                ga_result.sequence.size(), ga_result.evaluations);
  } else {
    std::printf("GA failed (best fitness %.2f of %zu) — this is exactly the "
                "case the hybrid hands to the deterministic engine\n",
                ga_result.best_fitness, ffs.size());
  }

  // 2. Deterministic reverse-time justification.
  atpg::SearchLimits limits;
  limits.time_limit_s = 10.0;
  limits.max_backtracks = 200000;
  limits.max_justify_depth = 24;
  atpg::DeterministicJustifier det(circuit, limits);
  const auto det_result =
      det.justify(target, util::Deadline::after_seconds(10));
  switch (det_result.status) {
    case atpg::DeterministicJustifier::Status::kJustified:
      std::printf("deterministic justification found a %zu-vector sequence "
                  "(%ld backtracks)\n",
                  det_result.sequence.size(), det.stats().backtracks);
      break;
    case atpg::DeterministicJustifier::Status::kUnjustifiable:
      std::printf("deterministic search proved the state unreachable\n");
      break;
    case atpg::DeterministicJustifier::Status::kAborted:
      std::printf("deterministic search hit its limits (%ld backtracks)\n",
                  det.stats().backtracks);
      break;
  }

  // Verify whichever sequence we got by simulation.
  const auto* seq = ga_result.success ? &ga_result.sequence
                    : det_result.status ==
                            atpg::DeterministicJustifier::Status::kJustified
                        ? &det_result.sequence
                        : nullptr;
  if (seq) {
    sim::SequenceSimulator s(circuit);
    for (auto vec : *seq) {
      for (auto& bit : vec) {
        if (bit == V3::kX) bit = V3::k0;
      }
      s.apply_vector(vec);
      s.clock();
    }
    unsigned matched = s.state_match_count(target, 0);
    std::printf("verification: %u/%zu required flip-flops match\n", matched,
                ffs.size());
  }
  return 0;
}
