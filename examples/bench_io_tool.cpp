// Example/utility: export any registry circuit as an ISCAS89 .bench file,
// or read a .bench file and print its profile — the interchange path for
// using this library alongside other ATPG tools.
//
//   ./bench_io_tool export <circuit-name> [out.bench]
//   ./bench_io_tool info <file.bench>
//   ./bench_io_tool list
#include <cstdio>
#include <fstream>
#include <string>

#include "fault/faultlist.h"
#include "gen/registry.h"
#include "netlist/bench_io.h"
#include "netlist/depth.h"

int main(int argc, char** argv) {
  using namespace gatpg;
  const std::string mode = argc > 1 ? argv[1] : "list";

  if (mode == "list") {
    std::printf("built-in circuits:\n");
    for (const auto& name : gen::registry_names()) {
      const auto c = gen::make_circuit(name);
      const auto st = netlist::stats_of(c);
      std::printf("  %-8s %4zu PIs %4zu POs %5zu FFs %6zu gates "
                  "%5zu faults depth %u\n",
                  name.c_str(), st.inputs, st.outputs, st.flip_flops,
                  st.gates, fault::collapse(c).size(),
                  netlist::sequential_depth(c));
    }
    return 0;
  }
  if (mode == "export" && argc > 2) {
    const std::string name = argv[2];
    const auto c = gen::make_circuit(name);
    const std::string out = argc > 3 ? argv[3] : name + ".bench";
    std::ofstream file(out);
    file << netlist::write_bench(c);
    std::printf("wrote %s\n", out.c_str());
    return 0;
  }
  if (mode == "info" && argc > 2) {
    const auto c = netlist::load_bench_file(argv[2]);
    const auto st = netlist::stats_of(c);
    std::printf("%s: %zu PIs, %zu POs, %zu FFs, %zu gates, %zu collapsed "
                "faults, depth %u, %u levels\n",
                c.name().c_str(), st.inputs, st.outputs, st.flip_flops,
                st.gates, fault::collapse(c).size(),
                netlist::sequential_depth(c), st.levels);
    return 0;
  }
  std::fprintf(stderr,
               "usage: bench_io_tool list | export <name> [file] | "
               "info <file>\n");
  return 1;
}
