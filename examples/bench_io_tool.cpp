// Example/utility: export any registry circuit as an ISCAS89 .bench file,
// read a .bench file and print its profile, or bulk-ingest a directory of
// .bench files — the interchange path for using this library alongside
// other ATPG tools.
//
//   ./bench_io_tool export <circuit-name> [out.bench]
//   ./bench_io_tool info <file.bench>
//   ./bench_io_tool ingest <dir>
//   ./bench_io_tool list
//
// `ingest` loads every .bench file in the directory, round-trips it through
// write_bench -> parse_bench (the canonical writer makes textual equality a
// structural identity check), and runs a short fault-simulation sanity pass
// over both fault universes, cross-checking the differential engine against
// the full-sweep reference.  Exit status is nonzero if any file fails —
// the CI ingestion smoke runs this over the exported registry circuits.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/faultlist.h"
#include "fault/faultsim.h"
#include "gen/registry.h"
#include "netlist/bench_io.h"
#include "netlist/depth.h"
#include "util/rng.h"

namespace {

/// One file's ingestion check; throws on any mismatch.
void ingest_one(const std::string& path) {
  using namespace gatpg;
  const netlist::Circuit c = netlist::load_bench_file(path);
  const std::string text = netlist::write_bench(c);
  const netlist::Circuit again = netlist::parse_bench_string(text, c.name());
  if (netlist::write_bench(again) != text) {
    throw std::runtime_error("write->parse->write round trip diverged");
  }

  util::Rng rng(1);
  sim::Sequence seq(16, sim::Vector3(c.primary_inputs().size()));
  for (auto& v : seq) {
    for (auto& bit : v) bit = rng.bit() ? sim::V3::k1 : sim::V3::k0;
  }
  for (const auto universe :
       {fault::FaultUniverse::kStuckAt, fault::FaultUniverse::kTransition}) {
    std::vector<fault::Fault> faults = fault::collapse(c, universe).faults;
    if (faults.size() > 256) faults.resize(256);  // keep big circuits quick
    fault::FaultSimulator differential(c, faults);
    differential.run(seq);
    fault::FaultSimConfig sweep_cfg;
    sweep_cfg.differential = false;
    fault::FaultSimulator sweep(c, faults, sweep_cfg);
    sweep.run(seq);
    if (differential.detected() != sweep.detected()) {
      throw std::runtime_error(std::string("fault-sim engines disagree (") +
                               fault::universe_name(universe) + ")");
    }
    std::printf("  %-10s %4zu faults, %4zu detected by %zu random vectors\n",
                fault::universe_name(universe), faults.size(),
                differential.detected_count(), seq.size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gatpg;
  const std::string mode = argc > 1 ? argv[1] : "list";

  if (mode == "list") {
    std::printf("built-in circuits:\n");
    for (const auto& name : gen::registry_names()) {
      const auto c = gen::make_circuit(name);
      const auto st = netlist::stats_of(c);
      std::printf("  %-8s %4zu PIs %4zu POs %5zu FFs %6zu gates "
                  "%5zu faults depth %u\n",
                  name.c_str(), st.inputs, st.outputs, st.flip_flops,
                  st.gates, fault::collapse(c).size(),
                  netlist::sequential_depth(c));
    }
    return 0;
  }
  if (mode == "export" && argc > 2) {
    const std::string name = argv[2];
    const auto c = gen::make_circuit(name);
    const std::string out = argc > 3 ? argv[3] : name + ".bench";
    std::ofstream file(out);
    file << netlist::write_bench(c);
    std::printf("wrote %s\n", out.c_str());
    return 0;
  }
  if (mode == "info" && argc > 2) {
    const auto c = netlist::load_bench_file(argv[2]);
    const auto st = netlist::stats_of(c);
    std::printf("%s: %zu PIs, %zu POs, %zu FFs, %zu gates, %zu collapsed "
                "faults, depth %u, %u levels\n",
                c.name().c_str(), st.inputs, st.outputs, st.flip_flops,
                st.gates, fault::collapse(c).size(),
                netlist::sequential_depth(c), st.levels);
    return 0;
  }
  if (mode == "ingest" && argc > 2) {
    std::vector<std::string> files;
    for (const auto& entry : std::filesystem::directory_iterator(argv[2])) {
      if (entry.path().extension() == ".bench") {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) {
      std::fprintf(stderr, "ingest: no .bench files in %s\n", argv[2]);
      return 1;
    }
    int failures = 0;
    for (const std::string& path : files) {
      std::printf("%s\n", path.c_str());
      try {
        ingest_one(path);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "  FAILED: %s\n", e.what());
        ++failures;
      }
    }
    std::printf("ingested %zu file(s), %d failure(s)\n", files.size(),
                failures);
    return failures == 0 ? 0 : 1;
  }
  std::fprintf(stderr,
               "usage: bench_io_tool list | export <name> [file] | "
               "info <file> | ingest <dir>\n");
  return 1;
}
