// Example: build a circuit programmatically, run both test generators on
// it, and compare — the workflow for applying the library to your own
// designs rather than the bundled benchmarks.
//
// The design here is a small bus arbiter with a 4-bit grant timer: a
// control/datapath mix small enough to read, sequential enough that state
// justification actually matters.
#include <cstdio>

#include "fault/grading.h"
#include "gen/datapath.h"
#include "hybrid/hybrid_atpg.h"
#include "netlist/bench_io.h"
#include "netlist/depth.h"

namespace {

gatpg::netlist::Circuit build_arbiter() {
  using namespace gatpg;
  using netlist::NodeId;
  netlist::CircuitBuilder b;
  gen::DatapathBuilder d(b);

  const NodeId reset = b.add_input("reset");
  const NodeId req_a = b.add_input("req_a");
  const NodeId req_b = b.add_input("req_b");
  const gen::Bus limit = d.input_bus("limit", 4);

  const NodeId grant_a = b.add_dff("grant_a");
  const NodeId grant_b = b.add_dff("grant_b");
  const gen::Bus timer = d.register_bus("timer", 4);

  const NodeId nreset = d.inv("nreset", reset);
  const NodeId timer_zero = d.is_zero("tz", timer);
  const NodeId busy = d.or2("busy", grant_a, grant_b);
  const NodeId idle = d.inv("idle", busy);
  const NodeId expire = d.and2("expire", busy, timer_zero);

  // Fixed priority: A over B; grants hold until the timer expires.
  const NodeId take_a = d.and2("take_a", req_a, idle);
  const NodeId take_b =
      d.and2("take_b", d.and2("tb0", req_b, idle), d.inv("tb1", req_a));
  const NodeId hold_a =
      d.and2("hold_a", grant_a, d.inv("ha0", expire));
  const NodeId hold_b =
      d.and2("hold_b", grant_b, d.inv("hb0", expire));
  b.set_dff_input(grant_a,
                  d.and2("ga_n", d.or2("ga_o", take_a, hold_a), nreset));
  b.set_dff_input(grant_b,
                  d.and2("gb_n", d.or2("gb_o", take_b, hold_b), nreset));

  // timer' = on new grant: limit; while busy: timer - 1; else hold.
  const NodeId load = d.or2("load", take_a, take_b);
  gen::Bus ones(4);
  for (int i = 0; i < 4; ++i) ones[i] = d.const1("one" + std::to_string(i));
  const auto dec = d.adder("dec", timer, ones, d.const0("cin"));
  const gen::Bus run = d.mux2("run", busy, dec.sum, timer);
  const gen::Bus next = d.mux2("tn", load, limit, run);
  d.connect_register(timer, next);

  b.mark_output(grant_a);
  b.mark_output(grant_b);
  b.mark_output(d.buf("busy_out", busy));
  return std::move(b).build("arbiter");
}

}  // namespace

int main() {
  using namespace gatpg;
  const auto circuit = build_arbiter();
  const auto stats = netlist::stats_of(circuit);
  std::printf("built %s: %zu PIs, %zu FFs, %zu gates, sequential depth %u\n",
              circuit.name().c_str(), stats.inputs, stats.flip_flops,
              stats.gates, netlist::sequential_depth(circuit));

  // The circuit can be exported to the ISCAS89 .bench format for other
  // tools:
  std::printf("\n--- .bench export (first lines) ---\n");
  const std::string bench = netlist::write_bench(circuit);
  std::fwrite(bench.data(), 1, std::min<std::size_t>(bench.size(), 300),
              stdout);
  std::printf("...\n\n");

  for (const bool use_ga : {true, false}) {
    hybrid::HybridConfig config;
    config.schedule = use_ga ? hybrid::PassSchedule::ga_hitec(0.05)
                             : hybrid::PassSchedule::hitec(0.05);
    config.seed = 2024;
    const auto result = hybrid::HybridAtpg(circuit, config).run();
    const auto report = fault::grade_sequence(circuit, result.test_set);
    std::printf("%-8s detected %zu/%zu (untestable %zu) with %zu vectors "
                "[independent grading: %zu]\n",
                use_ga ? "GA-HITEC" : "HITEC", result.detected(),
                result.total_faults, result.untestable(),
                result.test_set.size(), report.detected);
  }
  return 0;
}
