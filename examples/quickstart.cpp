// Quickstart: generate tests for a benchmark circuit with the hybrid
// GA-HITEC engine and grade the resulting test set independently.
//
//   ./quickstart [circuit-name]     (default: s27)
//
// Demonstrates the core public API: the circuit registry, HybridAtpg with
// the paper's pass schedule, and independent coverage grading.
#include <cstdio>
#include <string>

#include "fault/grading.h"
#include "gen/registry.h"
#include "hybrid/hybrid_atpg.h"
#include "netlist/depth.h"

int main(int argc, char** argv) {
  using namespace gatpg;

  const std::string name = argc > 1 ? argv[1] : "s27";
  const netlist::Circuit circuit = gen::make_circuit(name);
  const auto stats = netlist::stats_of(circuit);
  std::printf("circuit %s: %zu PIs, %zu POs, %zu FFs, %zu gates, depth %u\n",
              circuit.name().c_str(), stats.inputs, stats.outputs,
              stats.flip_flops, stats.gates,
              netlist::sequential_depth(circuit));

  // GA-HITEC with the Table I pass structure, wall-clock limits scaled for a
  // modern machine.
  hybrid::HybridConfig config;
  config.schedule = hybrid::PassSchedule::ga_hitec(/*time_scale=*/0.05);
  config.seed = 42;

  hybrid::HybridAtpg atpg(circuit, config);
  const hybrid::AtpgResult result = atpg.run();

  std::printf("total faults (collapsed): %zu\n", result.total_faults);
  for (std::size_t p = 0; p < result.passes.size(); ++p) {
    const auto& pass = result.passes[p];
    std::printf("pass %zu: detected %zu, vectors %zu, untestable %zu, %.2fs\n",
                p + 1, pass.detected, pass.vectors, pass.untestable,
                pass.time_s);
  }
  std::printf("GA invocations %ld, GA successes %ld, verify failures %ld\n",
              result.counters.ga_invocations, result.counters.ga_successes,
              result.counters.verify_failures);

  // Independent grading: re-simulate the produced test set from power-up
  // with a fresh fault simulator.
  const auto report = fault::grade_sequence(circuit, result.test_set);
  std::printf("independent grading: %zu/%zu detected (%.1f%%) with %zu vectors\n",
              report.detected, report.total_faults, 100.0 * report.coverage(),
              report.vectors);
  return 0;
}
