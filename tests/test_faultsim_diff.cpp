// Differential-vs-full-sweep equivalence for the PROOFS fault simulator.
//
// The differential engine (good-machine seeding + excitation screening +
// dynamic repacking) must be bit-identical to the retained full-sweep
// reference engine: same detections, same detection *order*, same persisted
// faulty flip-flop states, same good-machine state — across randomized
// circuits, random (including partially-X) sequences, multi-run sessions,
// any window size, and any thread count.
#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <vector>

#include "fault/faultlist.h"
#include "fault/faultsim.h"
#include "helpers/random_circuit.h"

namespace {

using namespace gatpg;
using fault::FaultSimConfig;
using fault::FaultSimulator;

FaultSimConfig make_config(bool differential, unsigned threads,
                           unsigned window = 32) {
  FaultSimConfig config;
  config.parallel.threads = threads;
  config.differential = differential;
  config.window = window;
  return config;
}

std::vector<test::RandomCircuitSpec> specs() {
  std::vector<test::RandomCircuitSpec> out;
  out.push_back({4, 3, 30, 3, 11});
  out.push_back({6, 5, 90, 4, 22});
  out.push_back({8, 8, 160, 6, 33});
  out.push_back({5, 0, 40, 3, 44});  // purely combinational (no flip-flops)
  return out;
}

/// A session of several run() extensions with varying X density, exercising
/// state persistence, fault dropping, and cross-window behaviour.
std::vector<sim::Sequence> session_chunks(const netlist::Circuit& c,
                                          std::uint64_t seed) {
  util::Rng rng(seed);
  return {test::random_sequence(c, rng, 17, 0.0),
          test::random_sequence(c, rng, 9, 0.25),
          test::random_sequence(c, rng, 41, 0.1)};
}

void expect_sessions_match(const netlist::Circuit& c,
                           const std::vector<fault::Fault>& faults,
                           const std::vector<sim::Sequence>& chunks,
                           FaultSimConfig config_a, FaultSimConfig config_b) {
  FaultSimulator a(c, faults, config_a);
  FaultSimulator b(c, faults, config_b);
  for (std::size_t k = 0; k < chunks.size(); ++k) {
    const auto newly_a = a.run(chunks[k]);
    const auto newly_b = b.run(chunks[k]);
    ASSERT_EQ(newly_a, newly_b) << "detection lists differ at chunk " << k;
  }
  ASSERT_EQ(a.detected(), b.detected());
  ASSERT_EQ(a.detected_count(), b.detected_count());
  ASSERT_EQ(a.good_state(), b.good_state());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    ASSERT_EQ(a.fault_state(i), b.fault_state(i))
        << "persisted faulty state differs for fault " << i;
  }
}

TEST(FaultSimDiff, MatchesFullSweepSerial) {
  for (const auto& spec : specs()) {
    const auto c = test::make_random_circuit(spec);
    const auto faults = fault::collapse(c).faults;
    expect_sessions_match(c, faults, session_chunks(c, spec.seed),
                          make_config(true, 1), make_config(false, 1));
  }
}

TEST(FaultSimDiff, MatchesFullSweepThreaded) {
  // Strongest cross-check: differential at 4 threads vs full sweep serial.
  for (const auto& spec : specs()) {
    const auto c = test::make_random_circuit(spec);
    const auto faults = fault::collapse(c).faults;
    expect_sessions_match(c, faults, session_chunks(c, spec.seed),
                          make_config(true, 4), make_config(false, 1));
  }
}

TEST(FaultSimDiff, ThreadCountIndependent) {
  for (const auto& spec : specs()) {
    const auto c = test::make_random_circuit(spec);
    const auto faults = fault::collapse(c).faults;
    expect_sessions_match(c, faults, session_chunks(c, spec.seed),
                          make_config(true, 1), make_config(true, 4));
  }
}

TEST(FaultSimDiff, WindowIndependent) {
  // Window boundaries decide when repacking happens and how much of the good
  // machine is recorded at once; none of it may show in the results.
  const test::RandomCircuitSpec spec{6, 5, 90, 4, 7};
  const auto c = test::make_random_circuit(spec);
  const auto faults = fault::collapse(c).faults;
  for (unsigned window : {1u, 2u, 7u, 64u}) {
    expect_sessions_match(c, faults, session_chunks(c, 99),
                          make_config(true, 2, window),
                          make_config(false, 1));
  }
}

TEST(FaultSimDiff, WhatIfMatchesFullSweepAndKeepsSessionIntact) {
  for (const auto& spec : specs()) {
    const auto c = test::make_random_circuit(spec);
    const auto faults = fault::collapse(c).faults;
    FaultSimulator diff(c, faults, make_config(true, 4));
    FaultSimulator full(c, faults, make_config(false, 1));

    // Advance both sessions so what_if starts from a nontrivial state.
    util::Rng rng(spec.seed + 5);
    const auto warmup = test::random_sequence(c, rng, 13, 0.1);
    ASSERT_EQ(diff.run(warmup), full.run(warmup));

    std::vector<std::size_t> all(faults.size());
    std::iota(all.begin(), all.end(), 0);
    const auto probe = test::random_sequence(c, rng, 21, 0.15);

    const auto wa = diff.what_if(all, probe);
    const auto wb = full.what_if(all, probe);
    EXPECT_EQ(wa.detected, wb.detected);
    EXPECT_EQ(wa.state_effects, wb.state_effects);

    // Subset query (the GA's sampled-fault fitness shape).
    const std::vector<std::size_t> subset(
        all.begin(), all.begin() + std::min<std::size_t>(all.size(), 7));
    const auto sa = diff.what_if(subset, probe);
    const auto sb = full.what_if(subset, probe);
    EXPECT_EQ(sa.detected, sb.detected);
    EXPECT_EQ(sa.state_effects, sb.state_effects);

    // what_if must not have touched the sessions: continuing them still
    // yields identical detections and states.
    const auto more = test::random_sequence(c, rng, 11, 0.0);
    EXPECT_EQ(diff.run(more), full.run(more));
    EXPECT_EQ(diff.good_state(), full.good_state());
    for (std::size_t i = 0; i < faults.size(); ++i) {
      EXPECT_EQ(diff.fault_state(i), full.fault_state(i));
    }
  }
}

TEST(FaultSimDiff, StatsAreDeterministicAndConsistent) {
  const test::RandomCircuitSpec spec{6, 5, 90, 4, 13};
  const auto c = test::make_random_circuit(spec);
  const auto faults = fault::collapse(c).faults;

  auto run_session = [&](unsigned threads) {
    FaultSimulator fs(c, faults, make_config(true, threads, 8));
    for (const auto& chunk : session_chunks(c, 42)) fs.run(chunk);
    return fs.stats();
  };
  const auto s1 = run_session(1);
  const auto s4 = run_session(4);

  // All counters are exactly thread-count-independent.
  EXPECT_EQ(s1.gate_evals, s4.gate_evals);
  EXPECT_EQ(s1.good_gate_evals, s4.good_gate_evals);
  EXPECT_EQ(s1.frames, s4.frames);
  EXPECT_EQ(s1.group_vectors, s4.group_vectors);
  EXPECT_EQ(s1.group_vectors_skipped, s4.group_vectors_skipped);
  EXPECT_EQ(s1.groups_repacked, s4.groups_repacked);

  EXPECT_GT(s1.gate_evals, 0u);
  EXPECT_GT(s1.good_gate_evals, 0u);
  EXPECT_EQ(s1.frames, 17u + 9u + 41u);
  EXPECT_LE(s1.group_vectors_skipped, s1.group_vectors);
  EXPECT_GE(s1.skip_rate(), 0.0);
  EXPECT_LE(s1.skip_rate(), 1.0);

  // reset_stats clears everything.
  FaultSimulator fs(c, faults);
  fs.run(session_chunks(c, 42)[0]);
  EXPECT_GT(fs.stats().gate_evals + fs.stats().good_gate_evals, 0u);
  fs.reset_stats();
  EXPECT_EQ(fs.stats().gate_evals, 0u);
  EXPECT_EQ(fs.stats().frames, 0u);
}

TEST(FaultSimDiff, DifferentialDoesLessWork) {
  // The whole point: on a session-style workload the differential engine
  // must evaluate far fewer gates than the full sweep.  (The acceptance
  // threshold of >= 2x is measured on the ISCAS-style bench circuits; random
  // circuits here just need to show a reduction.)
  const test::RandomCircuitSpec spec{8, 8, 160, 6, 21};
  const auto c = test::make_random_circuit(spec);
  const auto faults = fault::collapse(c).faults;
  util::Rng rng(3);
  const auto seq = test::random_sequence(c, rng, 64, 0.0);

  FaultSimulator diff(c, faults, make_config(true, 1));
  FaultSimulator full(c, faults, make_config(false, 1));
  ASSERT_EQ(diff.run(seq), full.run(seq));

  const auto total = [](const fault::SimStats& s) {
    return s.gate_evals + s.good_gate_evals;
  };
  EXPECT_LT(total(diff.stats()), total(full.stats()));
}

TEST(FaultSimDiff, ScreenSkipsUnexcitedFaults) {
  // g = AND(a, b) stuck-at-1: while a = b = 1 the good value equals the
  // stuck value, nothing is excited and no fault effect is parked, so the
  // screen must skip every vector without a single faulty-machine gate
  // evaluation.  Dropping b to 0 excites the fault and detects it.
  netlist::CircuitBuilder builder;
  const auto a = builder.add_input("a");
  const auto b = builder.add_input("b");
  const auto g = builder.add_gate(netlist::GateType::kAnd, "g", {a, b});
  builder.mark_output(g);
  const auto c = std::move(builder).build("screen");

  const std::vector<fault::Fault> faults{{g, fault::kOutputPin, true}};
  FaultSimulator fs(c, faults, make_config(true, 1));

  const sim::Sequence quiet(6, sim::Vector3{sim::V3::k1, sim::V3::k1});
  EXPECT_TRUE(fs.run(quiet).empty());
  EXPECT_EQ(fs.stats().group_vectors, 6u);
  EXPECT_EQ(fs.stats().group_vectors_skipped, 6u);
  EXPECT_EQ(fs.stats().gate_evals, 0u);

  const sim::Sequence excite(1, sim::Vector3{sim::V3::k1, sim::V3::k0});
  EXPECT_EQ(fs.run(excite).size(), 1u);
}

}  // namespace
