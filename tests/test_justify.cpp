#include <gtest/gtest.h>

#include "atpg/justify.h"
#include "gen/s27.h"
#include "helpers/random_circuit.h"
#include "helpers/reference_sim.h"
#include "sim/seqsim.h"

namespace gatpg::atpg {
namespace {

using sim::State3;
using sim::V3;

SearchLimits limits() {
  SearchLimits l;
  l.time_limit_s = 5.0;
  l.max_backtracks = 50000;
  l.max_justify_depth = 16;
  return l;
}

/// Verifies a justification sequence: from the all-X state, after applying
/// the (X-filled) sequence, every required flip-flop holds its target value.
void expect_justifies(const netlist::Circuit& c, const State3& target,
                      sim::Sequence seq) {
  for (auto& v : seq) {
    for (auto& bit : v) {
      if (bit == V3::kX) bit = V3::k0;
    }
  }
  test::ReferenceSimulator ref(c);
  for (const auto& v : seq) {
    ref.apply(v);
    ref.clock();
  }
  const State3 reached = ref.state();
  for (std::size_t i = 0; i < target.size(); ++i) {
    if (target[i] != V3::kX) {
      EXPECT_EQ(reached[i], target[i]) << "flip-flop " << i;
    }
  }
}

TEST(DeterministicJustifier, AllXTargetIsTrivial) {
  const auto c = gen::make_s27();
  DeterministicJustifier j(c, limits());
  const auto out = j.justify(State3(3, V3::kX), util::Deadline::unlimited());
  EXPECT_EQ(out.status, DeterministicJustifier::Status::kJustified);
  EXPECT_TRUE(out.sequence.empty());
}

TEST(DeterministicJustifier, JustifiesSingleBitTargets) {
  const auto c = gen::make_s27();
  DeterministicJustifier j(c, limits());
  for (std::size_t ff = 0; ff < 3; ++ff) {
    for (V3 v : {V3::k0, V3::k1}) {
      State3 target(3, V3::kX);
      target[ff] = v;
      const auto out = j.justify(target, util::Deadline::unlimited());
      if (out.status == DeterministicJustifier::Status::kJustified) {
        expect_justifies(c, target, out.sequence);
      } else {
        // s27 state bits are all individually reachable; only full search
        // exhaustion may say otherwise, and it must not on this circuit.
        ADD_FAILURE() << "ff " << ff << " value " << sim::v3_char(v)
                      << " not justified";
      }
    }
  }
}

TEST(DeterministicJustifier, ProvesUnreachableStateUnjustifiable) {
  // ff1 and ff2 both latch the same signal, so (0, 1) is unreachable.
  netlist::CircuitBuilder b;
  const auto a = b.add_input("a");
  const auto f1 = b.add_dff("f1");
  const auto f2 = b.add_dff("f2");
  const auto buf = b.add_gate(netlist::GateType::kBuf, "s", {a});
  b.set_dff_input(f1, buf);
  b.set_dff_input(f2, buf);
  b.mark_output(b.add_gate(netlist::GateType::kXor, "y", {f1, f2}));
  const auto c = std::move(b).build("twin");
  DeterministicJustifier j(c, limits());
  const auto out =
      j.justify({V3::k0, V3::k1}, util::Deadline::unlimited());
  EXPECT_EQ(out.status, DeterministicJustifier::Status::kUnjustifiable);
  // And the reachable combination is justified.
  const auto ok = j.justify({V3::k1, V3::k1}, util::Deadline::unlimited());
  ASSERT_EQ(ok.status, DeterministicJustifier::Status::kJustified);
  expect_justifies(c, {V3::k1, V3::k1}, ok.sequence);
}

TEST(DeterministicJustifier, MultiFrameChainNeedsDeepSequence) {
  // PI -> f0 -> f1 -> f2: justifying f2 = 1 needs three frames.
  netlist::CircuitBuilder b;
  const auto a = b.add_input("a");
  const auto f0 = b.add_dff("f0");
  const auto f1 = b.add_dff("f1");
  const auto f2 = b.add_dff("f2");
  b.set_dff_input(f0, b.add_gate(netlist::GateType::kBuf, "b0", {a}));
  b.set_dff_input(f1, b.add_gate(netlist::GateType::kBuf, "b1", {f0}));
  b.set_dff_input(f2, b.add_gate(netlist::GateType::kBuf, "b2", {f1}));
  b.mark_output(f2);
  const auto c = std::move(b).build("chain3");
  DeterministicJustifier j(c, limits());
  const auto out = j.justify({V3::kX, V3::kX, V3::k1},
                             util::Deadline::unlimited());
  ASSERT_EQ(out.status, DeterministicJustifier::Status::kJustified);
  EXPECT_EQ(out.sequence.size(), 3u);
  expect_justifies(c, {V3::kX, V3::kX, V3::k1}, out.sequence);
}

TEST(DeterministicJustifier, DepthLimitAbortsInsteadOfLying) {
  // Same chain, but a depth limit of 1 cannot reach f2.
  netlist::CircuitBuilder b;
  const auto a = b.add_input("a");
  const auto f0 = b.add_dff("f0");
  const auto f1 = b.add_dff("f1");
  b.set_dff_input(f0, b.add_gate(netlist::GateType::kBuf, "b0", {a}));
  b.set_dff_input(f1, b.add_gate(netlist::GateType::kBuf, "b1", {f0}));
  b.mark_output(f1);
  const auto c = std::move(b).build("chain2");
  SearchLimits shallow = limits();
  shallow.max_justify_depth = 1;
  DeterministicJustifier j(c, shallow);
  const auto out =
      j.justify({V3::kX, V3::k1}, util::Deadline::unlimited());
  EXPECT_EQ(out.status, DeterministicJustifier::Status::kAborted);
}

TEST(DeterministicJustifier, CyclePruningTerminates) {
  // A free-running inverter loop: ff <- NOT ff with no inputs driving it.
  // Any specific value is unjustifiable from the all-X state, and the
  // requirement cycle must terminate the search rather than hang.
  netlist::CircuitBuilder b;
  b.add_input("a");
  const auto ff = b.add_dff("ff");
  b.set_dff_input(ff, b.add_gate(netlist::GateType::kNot, "n", {ff}));
  b.mark_output(ff);
  const auto c = std::move(b).build("osc");
  DeterministicJustifier j(c, limits());
  const auto out = j.justify({V3::k1}, util::Deadline::unlimited());
  EXPECT_EQ(out.status, DeterministicJustifier::Status::kUnjustifiable);
}

// Property: every state actually reached by random simulation must be
// justifiable, and the produced sequence must work.
class JustifyReachable : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JustifyReachable, ReachedStatesAreJustified) {
  test::RandomCircuitSpec spec;
  spec.seed = GetParam() + 3000;
  spec.num_ffs = 3;
  spec.num_gates = 25;
  const auto c = test::make_random_circuit(spec);
  util::Rng rng(GetParam());
  test::ReferenceSimulator ref(c);
  for (const auto& v : test::random_sequence(c, rng, 5)) {
    ref.apply(v);
    ref.clock();
  }
  const State3 reached = ref.state();
  bool any_defined = false;
  for (V3 v : reached) any_defined |= v != V3::kX;
  if (!any_defined) GTEST_SKIP() << "simulation left all flip-flops X";

  DeterministicJustifier j(c, limits());
  const auto out = j.justify(reached, util::Deadline::unlimited());
  ASSERT_EQ(out.status, DeterministicJustifier::Status::kJustified)
      << "reached state must be justifiable (seed " << GetParam() << ")";
  expect_justifies(c, reached, out.sequence);
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, JustifyReachable,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace gatpg::atpg
