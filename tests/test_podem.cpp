#include <gtest/gtest.h>

#include "atpg/podem.h"
#include "gen/s27.h"
#include "netlist/builder.h"

namespace gatpg::atpg {
namespace {

using sim::V3;

TEST(Backtrace, ReachesPiThroughInverter) {
  // y = NOT(a): objective y=1 must land on a=0.
  netlist::CircuitBuilder b;
  const auto a = b.add_input("a");
  const auto y = b.add_gate(netlist::GateType::kNot, "y", {a});
  b.mark_output(y);
  const auto c = std::move(b).build("inv");
  FrameModel m(c, std::nullopt, 1);
  const auto r = backtrace(m, {0, y, V3::k1});
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->is_state);
  EXPECT_EQ(r->index, 0u);
  EXPECT_EQ(r->value, V3::k0);
}

TEST(Backtrace, ChoosesControllingPathForAnd) {
  // y = AND(a, b): y=0 needs only one input at 0.
  netlist::CircuitBuilder b;
  const auto a = b.add_input("a");
  const auto bb = b.add_input("b");
  const auto y = b.add_gate(netlist::GateType::kAnd, "y", {a, bb});
  b.mark_output(y);
  const auto c = std::move(b).build("and2");
  FrameModel m(c, std::nullopt, 1);
  const auto r = backtrace(m, {0, y, V3::k0});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, V3::k0);
}

TEST(Backtrace, FollowsXPathPastAssignedInputs) {
  // y = AND(a, b) with a already assigned 1: y=1 must target b.
  netlist::CircuitBuilder b;
  const auto a = b.add_input("a");
  const auto bb = b.add_input("b");
  const auto y = b.add_gate(netlist::GateType::kAnd, "y", {a, bb});
  b.mark_output(y);
  const auto c = std::move(b).build("and2b");
  FrameModel m(c, std::nullopt, 1);
  m.assign_pi(0, 0, V3::k1);
  m.simulate();
  const auto r = backtrace(m, {0, y, V3::k1});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->index, 1u);
  EXPECT_EQ(r->value, V3::k1);
}

TEST(Backtrace, CrossesDffIntoEarlierFrame) {
  // ff <- a; y = BUF(ff).  Objective on y in frame 1 must reach PI a in
  // frame 0.
  netlist::CircuitBuilder b;
  const auto a = b.add_input("a");
  const auto ff = b.add_dff("ff");
  b.set_dff_input(ff, b.add_gate(netlist::GateType::kBuf, "d", {a}));
  const auto y = b.add_gate(netlist::GateType::kBuf, "y", {ff});
  b.mark_output(y);
  const auto c = std::move(b).build("ffc");
  FrameModel m(c, std::nullopt, 2);
  m.extend();
  const auto r = backtrace(m, {1, y, V3::k1});
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->is_state);
  EXPECT_EQ(r->frame, 0u);
  EXPECT_EQ(r->value, V3::k1);
}

TEST(Backtrace, LandsOnPseudoStateAtFrameZero) {
  // y = BUF(ff) in frame 0: the only controlling input is the pseudo state.
  netlist::CircuitBuilder b;
  b.add_input("a");
  const auto ff = b.add_dff("ff");
  const auto y = b.add_gate(netlist::GateType::kBuf, "y", {ff});
  b.set_dff_input(ff, y);
  b.mark_output(y);
  const auto c = std::move(b).build("ffz");
  FrameModel m(c, std::nullopt, 1);
  const auto r = backtrace(m, {0, y, V3::k0});
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->is_state);
  EXPECT_EQ(r->index, 0u);
  EXPECT_EQ(r->value, V3::k0);
}

TEST(Backtrace, FailsOnConstants) {
  netlist::CircuitBuilder b;
  b.add_input("a");
  const auto k = b.add_const(false, "k");
  const auto y = b.add_gate(netlist::GateType::kBuf, "y", {k});
  b.mark_output(y);
  const auto c = std::move(b).build("konst");
  FrameModel m(c, std::nullopt, 1);
  EXPECT_FALSE(backtrace(m, {0, y, V3::k1}).has_value());
}

TEST(Backtrace, XorTargetsParityConsistentValue) {
  // y = XOR(a, b) with a = 1: y=1 wants b=0.
  netlist::CircuitBuilder b;
  const auto a = b.add_input("a");
  const auto bb = b.add_input("b");
  const auto y = b.add_gate(netlist::GateType::kXor, "y", {a, bb});
  b.mark_output(y);
  const auto c = std::move(b).build("xor2");
  FrameModel m(c, std::nullopt, 1);
  m.assign_pi(0, 0, V3::k1);
  m.simulate();
  const auto r = backtrace(m, {0, y, V3::k1});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->index, 1u);
  EXPECT_EQ(r->value, V3::k0);
}

TEST(DecisionStack, PushAssignsAndImplies) {
  const auto c = gen::make_s27();
  FrameModel m(c, std::nullopt, 1);
  DecisionStack stack(m);
  stack.push({false, 0, 0, V3::k0});  // G0 = 0
  EXPECT_EQ(m.good(0, c.find("G0")), V3::k0);
  EXPECT_EQ(m.good(0, c.find("G14")), V3::k1);  // implied through NOT
  EXPECT_EQ(stack.depth(), 1u);
}

TEST(DecisionStack, BacktrackFlipsThenPops) {
  const auto c = gen::make_s27();
  FrameModel m(c, std::nullopt, 1);
  DecisionStack stack(m);
  SearchStats stats;
  stack.push({false, 0, 0, V3::k0});
  stack.push({false, 0, 1, V3::k1});
  // First backtrack: flips the newest decision.
  EXPECT_TRUE(stack.backtrack(stats));
  EXPECT_EQ(m.pi_value(0, 1), V3::k0);
  EXPECT_EQ(stack.depth(), 2u);
  EXPECT_EQ(stats.backtracks, 1);
  // Second: newest is exhausted, pops it, flips the older one.
  EXPECT_TRUE(stack.backtrack(stats));
  EXPECT_EQ(m.pi_value(0, 1), V3::kX);
  EXPECT_EQ(m.pi_value(0, 0), V3::k1);
  EXPECT_EQ(stack.depth(), 1u);
  // Third: everything exhausted.
  EXPECT_FALSE(stack.backtrack(stats));
  EXPECT_TRUE(stack.empty());
  EXPECT_EQ(m.pi_value(0, 0), V3::kX);
}

TEST(DecisionStack, BacktrackRestoresFrameWindow) {
  const auto c = gen::make_s27();
  FrameModel m(c, std::nullopt, 4);
  DecisionStack stack(m);
  SearchStats stats;
  stack.push({false, 0, 0, V3::k0});
  m.extend();
  m.extend();
  EXPECT_EQ(m.frame_count(), 3u);
  stack.backtrack(stats);  // flip the decision -> frames roll back
  EXPECT_EQ(m.frame_count(), 1u);
}

TEST(DecisionStack, UnwindAllClearsEverything) {
  const auto c = gen::make_s27();
  FrameModel m(c, std::nullopt, 2);
  DecisionStack stack(m);
  stack.push({false, 0, 2, V3::k1});
  stack.push({true, 0, 1, V3::k0});
  stack.unwind_all();
  EXPECT_TRUE(stack.empty());
  EXPECT_EQ(m.pi_value(0, 2), V3::kX);
  EXPECT_EQ(m.state_value(1), V3::kX);
}

}  // namespace
}  // namespace gatpg::atpg
