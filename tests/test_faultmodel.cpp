// Fault-model layer suite: per-model naming, universe generation and
// collapsing, identity digests, and the differential check of the transition
// fault simulator against the naive two-frame reference.
//
// The stuck-at half of the suite pins down that the fault-model axis is
// invisible to existing callers: collapse(c) and collapse(c, kStuckAt) are
// byte-identical on every registry circuit, and the s27 identity digest is
// frozen as a golden constant (the digest the session snapshots of all
// pre-existing stuck-at runs embed).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/faultlist.h"
#include "fault/faultsim.h"
#include "gen/registry.h"
#include "gen/s27.h"
#include "helpers/random_circuit.h"
#include "helpers/reference_sim.h"
#include "netlist/builder.h"

namespace gatpg::fault {
namespace {

/// a, b -> AND g (marked output).  Every input has a single fanout.
netlist::Circuit make_and2() {
  netlist::CircuitBuilder b;
  const auto a = b.add_input("a");
  const auto bb = b.add_input("b");
  b.mark_output(b.add_gate(netlist::GateType::kAnd, "g", {a, bb}));
  return std::move(b).build("and2");
}

// ---------------------------------------------------------------------------
// Naming (satellite: fault reporting carries the model).

TEST(FaultModelNaming, StemSuffixesPerModel) {
  const auto c = make_and2();
  netlist::NodeId g = netlist::kNoNode;
  for (netlist::NodeId n = 0; n < c.node_count(); ++n) {
    if (c.name(n) == "g") g = n;
  }
  ASSERT_NE(g, netlist::kNoNode);
  EXPECT_EQ(to_string(c, Fault{g, kOutputPin, false}), "g s-a-0");
  EXPECT_EQ(to_string(c, Fault{g, kOutputPin, true}), "g s-a-1");
  EXPECT_EQ(to_string(c, make_transition(g, kOutputPin, false)), "g str");
  EXPECT_EQ(to_string(c, make_transition(g, kOutputPin, true)), "g stf");
}

TEST(FaultModelNaming, BranchNamingCarriesDriverAndModel) {
  const auto c = make_and2();
  netlist::NodeId g = netlist::kNoNode;
  for (netlist::NodeId n = 0; n < c.node_count(); ++n) {
    if (c.name(n) == "g") g = n;
  }
  ASSERT_NE(g, netlist::kNoNode);
  EXPECT_EQ(to_string(c, Fault{g, 0, true}), "g.in0(a) s-a-1");
  EXPECT_EQ(to_string(c, Fault{g, 1, false}), "g.in1(b) s-a-0");
  EXPECT_EQ(to_string(c, make_transition(g, 0, false)), "g.in0(a) str");
  EXPECT_EQ(to_string(c, make_transition(g, 1, true)), "g.in1(b) stf");
}

TEST(FaultModelNaming, TransitionRepresentationInvariant) {
  // stuck_at holds the launch (= forced) value: slow-to-rise launches from
  // 0, slow-to-fall from 1.
  const Fault str = make_transition(3, kOutputPin, false);
  EXPECT_EQ(str.model, FaultModel::kTransitionSlowToRise);
  EXPECT_FALSE(str.stuck_at);
  EXPECT_TRUE(str.is_transition());
  const Fault stf = make_transition(3, 1, true);
  EXPECT_EQ(stf.model, FaultModel::kTransitionSlowToFall);
  EXPECT_TRUE(stf.stuck_at);
  EXPECT_FALSE((Fault{3, kOutputPin, true}.is_transition()));
}

TEST(FaultModelNaming, UniverseNamesRoundTrip) {
  EXPECT_STREQ(universe_name(FaultUniverse::kStuckAt), "stuck_at");
  EXPECT_STREQ(universe_name(FaultUniverse::kTransition), "transition");
  FaultUniverse u = FaultUniverse::kStuckAt;
  EXPECT_TRUE(parse_universe("transition", &u));
  EXPECT_EQ(u, FaultUniverse::kTransition);
  EXPECT_TRUE(parse_universe("stuck_at", &u));
  EXPECT_EQ(u, FaultUniverse::kStuckAt);
  u = FaultUniverse::kTransition;
  EXPECT_FALSE(parse_universe("bogus", &u));
  EXPECT_EQ(u, FaultUniverse::kTransition) << "failed parse must not write";
}

// ---------------------------------------------------------------------------
// Universe generation: both models populate the same pin sites.

TEST(FaultModelUniverse, SameSitesBothModels) {
  const auto c = gen::make_s27();
  const auto sa = all_pin_faults(c, FaultUniverse::kStuckAt);
  const auto tr = all_pin_faults(c, FaultUniverse::kTransition);
  ASSERT_EQ(sa.size(), tr.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].node, tr[i].node);
    EXPECT_EQ(sa[i].pin, tr[i].pin);
    EXPECT_EQ(sa[i].model, FaultModel::kStuckAt);
    EXPECT_TRUE(tr[i].is_transition());
    // Representation invariant on every generated transition fault.
    EXPECT_EQ(tr[i].stuck_at,
              tr[i].model == FaultModel::kTransitionSlowToFall);
  }
}

// ---------------------------------------------------------------------------
// Collapsing (satellite: equivalence classes per model).

TEST(TransitionCollapse, BufChainMergesSamePolarity) {
  // a -> BUF g: branch merges with its single-fanout stem, BUF input merges
  // with the same-polarity output => one class per polarity (size 3 each).
  netlist::CircuitBuilder b;
  const auto a = b.add_input("a");
  b.mark_output(b.add_gate(netlist::GateType::kBuf, "g", {a}));
  const auto c = std::move(b).build("bufchain");
  const FaultList list = collapse(c, FaultUniverse::kTransition);
  EXPECT_EQ(list.size(), 2u);
  unsigned total = 0;
  for (unsigned s : list.class_sizes) total += s;
  EXPECT_EQ(total, 6u);
}

TEST(TransitionCollapse, NoPolarityFlipThroughInverter) {
  // a -> NOT n: stuck-at collapses all six faults into two classes; the
  // transition rules keep the inverter's own polarities separate (only the
  // branch/stem merge applies), so four classes remain.
  netlist::CircuitBuilder b;
  const auto a = b.add_input("a");
  b.mark_output(b.add_gate(netlist::GateType::kNot, "n", {a}));
  const auto c = std::move(b).build("invchain1");
  EXPECT_EQ(collapse(c, FaultUniverse::kStuckAt).size(), 2u);
  EXPECT_EQ(collapse(c, FaultUniverse::kTransition).size(), 4u);
}

TEST(TransitionCollapse, NoControllingValueMergeThroughAnd) {
  // The classic AND collapse (10 -> 4) relies on the controlling-value rule,
  // which is unsound for launch conditions; transition keeps the gate's own
  // str/stf apart from its inputs' and only merges branches into their
  // single-fanout stems (10 -> 6).
  const auto c = make_and2();
  EXPECT_EQ(collapse(c, FaultUniverse::kStuckAt).size(), 4u);
  const FaultList tr = collapse(c, FaultUniverse::kTransition);
  EXPECT_EQ(tr.size(), 6u);
  unsigned total = 0;
  for (unsigned s : tr.class_sizes) total += s;
  EXPECT_EQ(total, 10u);
}

TEST(Collapse, StuckAtByteIdenticalWithAndWithoutModelAxis) {
  // The refactor's prime directive: the default-universe collapse is the
  // same object, fault for fault, as the explicit stuck-at collapse on every
  // registry circuit — and so is its snapshot identity digest.
  for (const std::string& name : gen::registry_names()) {
    SCOPED_TRACE("circuit " + name);
    const netlist::Circuit c = gen::make_circuit(name);
    const FaultList legacy = collapse(c);
    const FaultList modeled = collapse(c, FaultUniverse::kStuckAt);
    EXPECT_EQ(legacy.faults, modeled.faults);
    EXPECT_EQ(legacy.class_sizes, modeled.class_sizes);
    EXPECT_EQ(identity_digest(legacy), identity_digest(modeled));
  }
}

TEST(Collapse, S27GoldenIdentityDigest) {
  // Frozen pre-refactor value: any change here invalidates every existing
  // stuck-at session snapshot (resume checks this digest) and must be a
  // deliberate format decision, not a side effect.
  const FaultList sa = collapse(gen::make_s27());
  EXPECT_EQ(sa.size(), 32u);
  EXPECT_EQ(identity_digest(sa), 0xf4849896e89ec8d6ULL);
  EXPECT_EQ(collapse(gen::make_s27(), FaultUniverse::kTransition).size(),
            52u);
}

TEST(Collapse, ModelsNeverShareADigest) {
  for (const std::string& name : gen::registry_names()) {
    SCOPED_TRACE("circuit " + name);
    const netlist::Circuit c = gen::make_circuit(name);
    const FaultList sa = collapse(c, FaultUniverse::kStuckAt);
    const FaultList tr = collapse(c, FaultUniverse::kTransition);
    EXPECT_NE(identity_digest(sa), identity_digest(tr));
    // Weaker transition collapsing never produces fewer representatives,
    // and both collapses account for their whole universe.
    EXPECT_GE(tr.size(), sa.size());
    unsigned sa_total = 0, tr_total = 0;
    for (unsigned s : sa.class_sizes) sa_total += s;
    for (unsigned s : tr.class_sizes) tr_total += s;
    EXPECT_EQ(sa_total, all_pin_faults(c, FaultUniverse::kStuckAt).size());
    EXPECT_EQ(tr_total, all_pin_faults(c, FaultUniverse::kTransition).size());
  }
}

// Soundness of the two transition merge rules, checked against the naive
// reference: class members must detect together on random stimuli.
class TransitionCollapseEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransitionCollapseEquivalence, ClassMembersDetectTogether) {
  test::RandomCircuitSpec spec;
  spec.seed = GetParam() + 90;
  spec.num_gates = 15;
  spec.num_ffs = 2;
  const auto c = test::make_random_circuit(spec);
  util::Rng rng(GetParam() * 31);
  const auto seq = test::random_sequence(c, rng, 6);

  // Fanout counts, to identify single-fanout drivers.
  std::vector<unsigned> fanouts(c.node_count(), 0);
  for (netlist::NodeId n = 0; n < c.node_count(); ++n) {
    for (netlist::NodeId f : c.fanins(n)) ++fanouts[f];
  }

  for (netlist::NodeId n = 0; n < c.node_count(); ++n) {
    // Rule 1: BUF input <=> same-polarity output.
    if (c.type(n) == netlist::GateType::kBuf) {
      for (const bool stf : {false, true}) {
        EXPECT_EQ(test::reference_detects(c, make_transition(n, 0, stf), seq),
                  test::reference_detects(
                      c, make_transition(n, kOutputPin, stf), seq))
            << to_string(c, make_transition(n, 0, stf));
      }
    }
    // Rule 2: branch <=> stem when the driver has a single fanout.
    for (std::size_t p = 0; p < c.fanin_count(n); ++p) {
      const netlist::NodeId d = c.fanins(n)[p];
      if (fanouts[d] != 1 || !netlist::is_combinational(c.type(d))) continue;
      for (const bool stf : {false, true}) {
        EXPECT_EQ(
            test::reference_detects(
                c, make_transition(n, static_cast<int>(p), stf), seq),
            test::reference_detects(c, make_transition(d, kOutputPin, stf),
                                    seq))
            << to_string(c, make_transition(n, static_cast<int>(p), stf));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, TransitionCollapseEquivalence,
                         ::testing::Range<std::uint64_t>(1, 7));

// ---------------------------------------------------------------------------
// The transition fault simulator vs the naive reference, across engines,
// widths, and thread counts, with persistent state over multiple run()s.

struct SimShape {
  bool differential;
  unsigned width;
  unsigned threads;
};

class TransitionSimEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransitionSimEquivalence, MatchesTwoFrameReference) {
  test::RandomCircuitSpec spec;
  spec.seed = GetParam() + 500;
  spec.num_gates = 30 + (GetParam() % 17);
  spec.num_ffs = 2 + (GetParam() % 4);
  const auto c = test::make_random_circuit(spec);
  const auto faults = collapse(c, FaultUniverse::kTransition).faults;
  util::Rng rng(GetParam() * 23);
  const auto seq1 = test::random_sequence(c, rng, 7, 0.1);
  const auto seq2 = test::random_sequence(c, rng, 7, 0.1);
  sim::Sequence all(seq1);
  all.insert(all.end(), seq2.begin(), seq2.end());

  std::vector<bool> expected(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    expected[i] = test::reference_detects(c, faults[i], all);
  }

  const SimShape shapes[] = {
      {true, 1, 1}, {true, 2, 1}, {true, 1, 4}, {false, 1, 1}, {false, 4, 1}};
  for (const SimShape& shape : shapes) {
    SCOPED_TRACE(std::string(shape.differential ? "diff" : "sweep") +
                 " width " + std::to_string(shape.width) + " threads " +
                 std::to_string(shape.threads));
    FaultSimConfig cfg;
    cfg.differential = shape.differential;
    cfg.width = shape.width;
    cfg.parallel.threads = shape.threads;
    FaultSimulator fs(c, faults, cfg);
    fs.run(seq1);
    fs.run(seq2);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      EXPECT_EQ(static_cast<bool>(fs.detected()[i]), expected[i])
          << to_string(c, faults[i]) << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, TransitionSimEquivalence,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(TransitionSim, LaunchPrevTracksGoodMachine) {
  // launch_prev(i) is exactly the good machine's settled value of fault i's
  // launch line in the last frame simulated — the anchor the next run()
  // frame's activation reads.
  const auto c = gen::make_s27();
  const auto faults = collapse(c, FaultUniverse::kTransition).faults;
  util::Rng rng(41);
  const auto seq = test::random_sequence(c, rng, 6, 0.2);
  FaultSimulator fs(c, faults);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(fs.launch_prev(i), sim::V3::kX) << "power-up anchor";
  }
  fs.run(seq);

  test::ReferenceSimulator good(c);
  sim::V3 last = sim::V3::kX;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const Fault& f = faults[i];
    const netlist::NodeId launch_line =
        f.pin == kOutputPin ? f.node
                            : c.fanins(f.node)[static_cast<std::size_t>(f.pin)];
    test::ReferenceSimulator ref(c);
    for (const auto& v : seq) {
      ref.apply(v);
      last = ref.value(launch_line);
      ref.clock();
    }
    EXPECT_EQ(fs.launch_prev(i), last) << to_string(c, f);
  }
}

TEST(TransitionSim, WhatIfPathsAgreeWithCommit) {
  // would_detect (live session), would_detect_from (the epoch-snapshot path
  // the speculative lanes call, fed launch_prev()), and an actual committing
  // run() must all agree mid-session.
  const auto c = gen::make_s27();
  const auto faults = collapse(c, FaultUniverse::kTransition).faults;
  for (const unsigned width : {1u, 2u}) {
    SCOPED_TRACE("width " + std::to_string(width));
    FaultSimConfig cfg;
    cfg.width = width;
    FaultSimulator fs(c, faults, cfg);
    util::Rng rng(43);
    fs.run(test::random_sequence(c, rng, 4));

    const auto probe = test::random_sequence(c, rng, 8);
    std::vector<bool> predicted(faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (fs.detected()[i]) {
        predicted[i] = true;
        continue;
      }
      predicted[i] = fs.would_detect(i, probe);
      EXPECT_EQ(predicted[i],
                FaultSimulator::would_detect_from(
                    c, fs.good_machine(), fs.fault_state(i), faults[i], probe,
                    fs.launch_prev(i)))
          << to_string(c, faults[i]);
    }
    fs.run(probe);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      EXPECT_EQ(static_cast<bool>(fs.detected()[i]), predicted[i])
          << to_string(c, faults[i]);
    }
  }
}

TEST(TransitionSim, PowerUpFrameCannotLaunch) {
  // A transition fault is inactive in frame 0: a single-vector sequence
  // never detects anything (the launch anchor is X), while the matching
  // stuck-at fault may well be detected.
  const auto c = gen::make_s27();
  const auto faults = collapse(c, FaultUniverse::kTransition).faults;
  util::Rng rng(47);
  for (int trial = 0; trial < 8; ++trial) {
    const sim::Sequence one = {test::random_vector(c, rng)};
    for (const Fault& f : faults) {
      EXPECT_FALSE(FaultSimulator::detects(c, f, one)) << to_string(c, f);
      EXPECT_FALSE(test::reference_detects(c, f, one)) << to_string(c, f);
    }
  }
}

}  // namespace
}  // namespace gatpg::fault
