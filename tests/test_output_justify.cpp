#include <gtest/gtest.h>

#include "gen/multiplier.h"
#include "gen/s27.h"
#include "helpers/reference_sim.h"
#include "hybrid/output_justify.h"
#include "netlist/builder.h"

namespace gatpg::hybrid {
namespace {

using sim::State3;
using sim::V3;

GaJustifyConfig config(unsigned len = 8, std::uint64_t seed = 1) {
  GaJustifyConfig c;
  c.population = 64;
  c.generations = 8;
  c.sequence_length = len;
  c.seed = seed;
  return c;
}

/// Applies `seq` from all-X and returns whether the last vector's outputs
/// satisfy the goals.
bool verify_goals(const netlist::Circuit& c,
                  const std::vector<OutputGoal>& goals,
                  const sim::Sequence& seq) {
  test::ReferenceSimulator ref(c);
  std::vector<V3> last_po;
  for (const auto& v : seq) {
    last_po = ref.apply(v);
    ref.clock();
  }
  for (const auto& goal : goals) {
    if (last_po.at(goal.po_index) != goal.value) return false;
  }
  return true;
}

TEST(GaOutputJustifier, DrivesS27Output) {
  const auto c = gen::make_s27();
  const GaOutputJustifier justifier(c);
  const State3 all_x(3, V3::kX);
  for (V3 target : {V3::k0, V3::k1}) {
    const std::vector<OutputGoal> goals{{0, target}};
    const auto r = justifier.justify(goals, all_x, config(8, 3),
                                     util::Deadline::unlimited());
    ASSERT_TRUE(r.success) << "target " << sim::v3_char(target);
    EXPECT_TRUE(verify_goals(c, goals, r.sequence));
  }
}

TEST(GaOutputJustifier, DrivesMultiplierProductValue) {
  // Architectural-level goal from §VI: make the 4-bit multiplier's product
  // output show a specific value (p0 = 1 and done = 1) with no backtracing
  // through the multiplier at all.
  const auto c = gen::make_multiplier(4);
  const auto pos = c.primary_outputs();
  std::size_t p0 = pos.size(), done = pos.size();
  for (std::size_t i = 0; i < pos.size(); ++i) {
    if (c.name(pos[i]) == "p0") p0 = i;
    if (c.name(pos[i]) == "done") done = i;
  }
  ASSERT_LT(p0, pos.size());
  ASSERT_LT(done, pos.size());

  const GaOutputJustifier justifier(c);
  const State3 all_x(c.flip_flops().size(), V3::kX);
  const std::vector<OutputGoal> goals{{p0, V3::k1}, {done, V3::k1}};
  const auto r = justifier.justify(goals, all_x, config(16, 5),
                                   util::Deadline::after_seconds(20));
  ASSERT_TRUE(r.success) << "best fitness " << r.best_fitness;
  EXPECT_TRUE(verify_goals(c, goals, r.sequence));
}

TEST(GaOutputJustifier, ImpossibleGoalFails) {
  // y = AND(a, NOT a) can never be 1.
  netlist::CircuitBuilder b;
  const auto a = b.add_input("a");
  const auto ff = b.add_dff("ff");  // justifier needs a sequential circuit
  b.set_dff_input(ff, a);
  const auto na = b.add_gate(netlist::GateType::kNot, "na", {a});
  b.mark_output(b.add_gate(netlist::GateType::kAnd, "y", {a, na}));
  b.mark_output(ff);
  const auto c = std::move(b).build("contra");
  const GaOutputJustifier justifier(c);
  const auto r = justifier.justify({{0, sim::V3::k1}},
                                   State3(1, V3::kX), config(6, 7),
                                   util::Deadline::after_seconds(2));
  EXPECT_FALSE(r.success);
  EXPECT_LT(r.best_fitness, 1.0);
}

TEST(GaOutputJustifier, RejectsBadGoals) {
  const auto c = gen::make_s27();
  const GaOutputJustifier justifier(c);
  const State3 all_x(3, V3::kX);
  EXPECT_THROW(justifier.justify({{99, V3::k1}}, all_x, config(),
                                 util::Deadline::unlimited()),
               std::invalid_argument);
  EXPECT_THROW(justifier.justify({{0, V3::kX}}, all_x, config(),
                                 util::Deadline::unlimited()),
               std::invalid_argument);
}

TEST(GaOutputJustifier, SequenceEndsAtMatchingCycle) {
  const auto c = gen::make_s27();
  const GaOutputJustifier justifier(c);
  const State3 all_x(3, V3::kX);
  const std::vector<OutputGoal> goals{{0, V3::k1}};
  const auto r = justifier.justify(goals, all_x, config(8, 9),
                                   util::Deadline::unlimited());
  ASSERT_TRUE(r.success);
  EXPECT_LE(r.sequence.size(), 8u);
  EXPECT_GE(r.sequence.size(), 1u);
  EXPECT_TRUE(verify_goals(c, goals, r.sequence));
}

}  // namespace
}  // namespace gatpg::hybrid
