#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "ga/genetic.h"

namespace gatpg::ga {
namespace {

std::size_t ones(const Chromosome& c) {
  return static_cast<std::size_t>(std::count(c.begin(), c.end(), 1));
}

TEST(GaEngine, RejectsBadConfig) {
  GaConfig cfg;
  cfg.population_size = 63;  // odd
  cfg.chromosome_bits = 8;
  EXPECT_THROW(GaEngine{cfg}, std::invalid_argument);
  cfg.population_size = 64;
  cfg.chromosome_bits = 0;
  EXPECT_THROW(GaEngine{cfg}, std::invalid_argument);
}

TEST(GaEngine, RunsExactlyConfiguredGenerations) {
  GaConfig cfg;
  cfg.population_size = 8;
  cfg.generations = 4;
  cfg.chromosome_bits = 16;
  GaEngine engine(cfg);
  int batches = 0;
  engine.run([&](std::span<const Chromosome> pop, std::span<double> fit) {
    ++batches;
    for (std::size_t i = 0; i < pop.size(); ++i) fit[i] = 0.0;
    return false;
  });
  EXPECT_EQ(batches, 4);
}

TEST(GaEngine, EarlyStopTerminatesImmediately) {
  GaConfig cfg;
  cfg.population_size = 8;
  cfg.generations = 50;
  cfg.chromosome_bits = 16;
  GaEngine engine(cfg);
  int batches = 0;
  const GaResult r =
      engine.run([&](std::span<const Chromosome> pop, std::span<double> fit) {
        ++batches;
        for (std::size_t i = 0; i < pop.size(); ++i) fit[i] = 1.0;
        return true;
      });
  EXPECT_EQ(batches, 1);
  EXPECT_TRUE(r.stopped_early);
  EXPECT_EQ(r.generations_run, 1u);
}

TEST(GaEngine, BestIndividualIsSaved) {
  GaConfig cfg;
  cfg.population_size = 16;
  cfg.generations = 6;
  cfg.chromosome_bits = 24;
  cfg.seed = 3;
  GaEngine engine(cfg);
  double best_seen = -1.0;
  const GaResult r =
      engine.run([&](std::span<const Chromosome> pop, std::span<double> fit) {
        for (std::size_t i = 0; i < pop.size(); ++i) {
          fit[i] = static_cast<double>(ones(pop[i]));
          best_seen = std::max(best_seen, fit[i]);
        }
        return false;
      });
  EXPECT_DOUBLE_EQ(r.best_fitness, best_seen);
  EXPECT_DOUBLE_EQ(static_cast<double>(ones(r.best)), best_seen);
}

TEST(GaEngine, DeterministicForSeed) {
  auto run_once = [](std::uint64_t seed) {
    GaConfig cfg;
    cfg.population_size = 16;
    cfg.generations = 5;
    cfg.chromosome_bits = 32;
    cfg.seed = seed;
    return GaEngine(cfg).run(
        [](std::span<const Chromosome> pop, std::span<double> fit) {
          for (std::size_t i = 0; i < pop.size(); ++i) {
            fit[i] = static_cast<double>(
                std::count(pop[i].begin(), pop[i].end(), 1));
          }
          return false;
        });
  };
  const GaResult a = run_once(5), b = run_once(5), c = run_once(6);
  EXPECT_EQ(a.best, b.best);
  EXPECT_DOUBLE_EQ(a.best_fitness, b.best_fitness);
  EXPECT_NE(a.best == c.best && a.best_fitness == c.best_fitness, true)
      << "different seeds should explore differently";
}

TEST(GaEngine, SolvesOneMax) {
  GaConfig cfg;
  cfg.population_size = 64;
  cfg.generations = 60;
  cfg.chromosome_bits = 48;
  cfg.seed = 7;
  GaEngine engine(cfg);
  const GaResult r =
      engine.run([](std::span<const Chromosome> pop, std::span<double> fit) {
        for (std::size_t i = 0; i < pop.size(); ++i) {
          fit[i] = static_cast<double>(
              std::count(pop[i].begin(), pop[i].end(), 1));
        }
        return false;
      });
  // Selection pressure must push well beyond a random draw (expected 24).
  EXPECT_GE(r.best_fitness, 44.0);
}

TEST(TournamentSelection, EveryIndividualPlaysTwice) {
  // In tournament *without replacement*, each pass pairs everyone exactly
  // once, so across the two passes each index appears in exactly two
  // tournaments and can be selected at most twice.
  util::Rng rng(5);
  std::vector<double> fitness(16);
  std::iota(fitness.begin(), fitness.end(), 0.0);
  const auto parents = GaEngine::tournament_parents(fitness, rng);
  EXPECT_EQ(parents.size(), 16u);
  std::map<std::size_t, int> times;
  for (auto p : parents) ++times[p];
  for (const auto& [idx, count] : times) {
    EXPECT_LE(count, 2) << "index " << idx;
  }
  // The best individual always wins its tournaments: selected exactly twice.
  EXPECT_EQ(times[15], 2);
  // The worst individual can never win.
  EXPECT_EQ(times.count(0), 0u);
}

TEST(TournamentSelection, InvariantUnderMonotoneTransform) {
  // Squaring fitness must not change tournament outcomes (§IV-A).
  std::vector<double> fitness{3, 9, 1, 7, 2, 8, 5, 4};
  std::vector<double> squared;
  for (double f : fitness) squared.push_back(f * f);
  util::Rng rng1(42), rng2(42);
  EXPECT_EQ(GaEngine::tournament_parents(fitness, rng1),
            GaEngine::tournament_parents(squared, rng2));
}

TEST(ProportionateSelection, BiasedTowardFitness) {
  GaConfig cfg;
  cfg.population_size = 64;
  cfg.generations = 40;
  cfg.chromosome_bits = 48;
  cfg.selection = SelectionScheme::kProportionate;
  cfg.seed = 11;
  const GaResult r = GaEngine(cfg).run(
      [](std::span<const Chromosome> pop, std::span<double> fit) {
        for (std::size_t i = 0; i < pop.size(); ++i) {
          fit[i] = static_cast<double>(
              std::count(pop[i].begin(), pop[i].end(), 1));
        }
        return false;
      });
  EXPECT_GE(r.best_fitness, 36.0);  // weaker pressure than tournament, but
                                    // clearly better than random (24)
}

TEST(Crossover, UniformPreservesPerPositionMultiset) {
  // With a population of two, pc = 1 and pm = 0, the two children of the two
  // parents must at every position carry exactly the parents' two bits
  // (uniform crossover only swaps, never invents).  And with 64 positions,
  // at least one swap should actually occur.
  GaConfig cfg;
  cfg.population_size = 2;
  cfg.generations = 2;
  cfg.chromosome_bits = 64;
  cfg.mutation_probability = 0.0;
  cfg.seed = 9;
  GaEngine engine(cfg);
  std::vector<Chromosome> parents, children;
  engine.run([&](std::span<const Chromosome> pop, std::span<double> fit) {
    if (parents.empty()) {
      parents.assign(pop.begin(), pop.end());
    } else {
      children.assign(pop.begin(), pop.end());
    }
    for (std::size_t i = 0; i < pop.size(); ++i) fit[i] = 1.0;
    return false;
  });
  ASSERT_EQ(children.size(), 2u);
  // Whatever pair selection picked, every child bit must come from one of
  // the two population members at the same position (crossover only swaps,
  // and pm = 0 means no invention).
  for (const auto& child : children) {
    for (std::size_t i = 0; i < 64; ++i) {
      EXPECT_TRUE(child[i] == parents[0][i] || child[i] == parents[1][i])
          << "position " << i;
    }
  }
}

TEST(Mutation, FlipsApproximatelyExpectedFraction) {
  GaConfig cfg;
  cfg.population_size = 64;
  cfg.generations = 2;
  cfg.chromosome_bits = 256;
  cfg.crossover_probability = 0.0;  // isolate mutation
  cfg.mutation_probability = 1.0 / 64.0;
  cfg.seed = 21;
  GaEngine engine(cfg);
  std::vector<Chromosome> gen1, gen2;
  engine.run([&](std::span<const Chromosome> pop, std::span<double> fit) {
    if (gen1.empty()) {
      gen1.assign(pop.begin(), pop.end());
    } else {
      gen2.assign(pop.begin(), pop.end());
    }
    for (std::size_t i = 0; i < pop.size(); ++i) fit[i] = 1.0;
    return false;
  });
  // All fitnesses equal -> selection is fitness-neutral; compare the bit
  // flip rate between generations in aggregate.
  std::size_t flips = 0, bits = 0;
  // Without tracking lineage we measure population-level bit frequency
  // stability instead: the per-position one-counts should stay close.
  for (std::size_t pos = 0; pos < 256; ++pos) {
    int a = 0, b = 0;
    for (const auto& c : gen1) a += c[pos];
    for (const auto& c : gen2) b += c[pos];
    flips += static_cast<std::size_t>(std::abs(a - b));
    bits += 64;
  }
  EXPECT_LT(static_cast<double>(flips) / static_cast<double>(bits), 0.2);
}

}  // namespace
}  // namespace gatpg::ga
