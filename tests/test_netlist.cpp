#include <gtest/gtest.h>

#include <sstream>

#include "gen/s27.h"
#include "helpers/random_circuit.h"
#include "netlist/bench_io.h"
#include "netlist/builder.h"
#include "netlist/depth.h"
#include "netlist/levelize.h"

namespace gatpg::netlist {
namespace {

Circuit tiny() {
  // in0 ---AND--- out     with a DFF loop:  ff <- NOT(ff)
  CircuitBuilder b;
  const NodeId a = b.add_input("a");
  const NodeId bb = b.add_input("b");
  const NodeId ff = b.add_dff("ff");
  const NodeId g1 = b.add_gate(GateType::kAnd, "g1", {a, bb});
  const NodeId g2 = b.add_gate(GateType::kOr, "g2", {g1, ff});
  const NodeId n1 = b.add_gate(GateType::kNot, "n1", {ff});
  b.set_dff_input(ff, n1);
  b.mark_output(g2);
  return std::move(b).build("tiny");
}

TEST(Builder, BuildsValidCircuit) {
  const Circuit c = tiny();
  EXPECT_EQ(c.node_count(), 6u);
  EXPECT_EQ(c.primary_inputs().size(), 2u);
  EXPECT_EQ(c.primary_outputs().size(), 1u);
  EXPECT_EQ(c.flip_flops().size(), 1u);
  EXPECT_EQ(c.gate_count(), 3u);
  EXPECT_EQ(c.name(), "tiny");
}

TEST(Builder, FanoutsAreInverseOfFanins) {
  const Circuit c = tiny();
  for (NodeId n = 0; n < c.node_count(); ++n) {
    for (NodeId f : c.fanins(n)) {
      const auto outs = c.fanouts(f);
      EXPECT_NE(std::find(outs.begin(), outs.end(), n), outs.end());
    }
  }
}

TEST(Builder, TopoOrderRespectsDependencies) {
  const Circuit c = tiny();
  std::vector<int> position(c.node_count(), -1);
  int pos = 0;
  for (NodeId g : c.topo_order()) position[g] = pos++;
  for (NodeId g : c.topo_order()) {
    for (NodeId f : c.fanins(g)) {
      if (is_combinational(c.type(f))) {
        EXPECT_LT(position[f], position[g]);
      }
    }
  }
}

TEST(Builder, LevelsAreMonotone) {
  const Circuit c = tiny();
  for (NodeId g : c.topo_order()) {
    for (NodeId f : c.fanins(g)) {
      EXPECT_LT(c.level(f), c.level(g));
    }
  }
}

TEST(Builder, RejectsUnboundDffInput) {
  CircuitBuilder b;
  b.add_input("a");
  b.add_dff("ff");
  EXPECT_THROW(std::move(b).build("bad"), std::runtime_error);
}

TEST(Builder, RejectsCombinationalCycle) {
  CircuitBuilder b;
  const NodeId a = b.add_input("a");
  const NodeId ff = b.add_dff("ff");
  b.set_dff_input(ff, a);
  // g1 and g2 feed each other: we must construct via placeholder trickery.
  // add_gate requires existing fanins, so build the cycle through a DFF-free
  // path is impossible through the public API; instead check that DFFs do
  // break cycles (the tiny() loop builds fine).
  EXPECT_NO_THROW(tiny());
}

TEST(Builder, RejectsDuplicateNames) {
  CircuitBuilder b;
  b.add_input("x");
  b.add_input("x");
  EXPECT_THROW(std::move(b).build("dup"), std::runtime_error);
}

TEST(Builder, FindLooksUpByName) {
  const Circuit c = tiny();
  EXPECT_NE(c.find("g1"), kNoNode);
  EXPECT_EQ(c.type(c.find("ff")), GateType::kDff);
  EXPECT_EQ(c.find("nope"), kNoNode);
}

TEST(BenchIo, ParsesS27Profile) {
  const Circuit c = gen::make_s27();
  EXPECT_EQ(c.primary_inputs().size(), 4u);
  EXPECT_EQ(c.primary_outputs().size(), 1u);
  EXPECT_EQ(c.flip_flops().size(), 3u);
  EXPECT_EQ(c.gate_count(), 10u);
}

TEST(BenchIo, RoundTripsStructurally) {
  const Circuit c1 = gen::make_s27();
  const std::string text = write_bench(c1);
  const Circuit c2 = parse_bench_string(text, "s27rt");
  EXPECT_EQ(c1.node_count(), c2.node_count());
  EXPECT_EQ(c1.primary_inputs().size(), c2.primary_inputs().size());
  EXPECT_EQ(c1.flip_flops().size(), c2.flip_flops().size());
  EXPECT_EQ(c1.gate_count(), c2.gate_count());
  // Same named node -> same type and fanin names.
  for (NodeId n = 0; n < c1.node_count(); ++n) {
    const NodeId m = c2.find(c1.name(n));
    ASSERT_NE(m, kNoNode) << c1.name(n);
    EXPECT_EQ(c1.type(n), c2.type(m));
    ASSERT_EQ(c1.fanin_count(n), c2.fanin_count(m));
    for (std::size_t i = 0; i < c1.fanin_count(n); ++i) {
      EXPECT_EQ(c1.name(c1.fanins(n)[i]), c2.name(c2.fanins(m)[i]));
    }
  }
}

TEST(BenchIo, AcceptsOutOfOrderDefinitions) {
  const char* text = R"(
INPUT(a)
OUTPUT(y)
y = AND(u, v)
u = NOT(a)
v = BUF(u)
)";
  const Circuit c = parse_bench_string(text, "ooo");
  EXPECT_EQ(c.gate_count(), 3u);
}

TEST(BenchIo, RejectsUndefinedFanin) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\ny = AND(a, ghost)\nOUTPUT(y)\n",
                                  "bad"),
               std::runtime_error);
}

TEST(BenchIo, RejectsCombinationalLoopInText) {
  const char* text = R"(
INPUT(a)
u = AND(a, v)
v = AND(a, u)
OUTPUT(u)
)";
  EXPECT_THROW(parse_bench_string(text, "loop"), std::runtime_error);
}

TEST(BenchIo, RejectsBadKeyword) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\ny = FROB(a)\n", "bad"),
               std::runtime_error);
}

TEST(BenchIo, ParsesCommentsAndBlanks) {
  const char* text = "# header\nINPUT(a)\n\n  # indented comment\ny = NOT(a) # eol\nOUTPUT(y)\n";
  EXPECT_NO_THROW(parse_bench_string(text, "c"));
}

TEST(BenchIo, ConstantExtensionRoundTrips) {
  CircuitBuilder b;
  const NodeId a = b.add_input("a");
  const NodeId k = b.add_const(true, "k1");
  b.mark_output(b.add_gate(GateType::kAnd, "y", {a, k}));
  const Circuit c1 = std::move(b).build("cst");
  const Circuit c2 = parse_bench_string(write_bench(c1), "cst2");
  EXPECT_EQ(c2.type(c2.find("k1")), GateType::kConst1);
}

TEST(Levelize, TransitiveFanoutContainsSelf) {
  const Circuit c = tiny();
  const auto mark = transitive_fanout(c, c.find("a"));
  EXPECT_TRUE(mark[c.find("a")]);
  EXPECT_TRUE(mark[c.find("g1")]);
  EXPECT_TRUE(mark[c.find("g2")]);
  EXPECT_FALSE(mark[c.find("b")]);
}

TEST(Levelize, TransitiveFaninStopsAtDffByDefault) {
  const Circuit c = tiny();
  const auto mark = transitive_fanin(c, c.find("g2"));
  EXPECT_TRUE(mark[c.find("ff")]);
  EXPECT_FALSE(mark[c.find("n1")]);  // behind the DFF
  const auto deep = transitive_fanin(c, c.find("g2"), /*cross_dffs=*/true);
  EXPECT_TRUE(deep[c.find("n1")]);
}

TEST(Levelize, ReachesObservationPoint) {
  const Circuit c = tiny();
  EXPECT_TRUE(reaches_observation_point(c, c.find("a")));
}

TEST(Depth, ZeroWithoutFlipFlops) {
  CircuitBuilder b;
  const NodeId a = b.add_input("a");
  b.mark_output(b.add_gate(GateType::kNot, "y", {a}));
  EXPECT_EQ(sequential_depth(std::move(b).build("comb")), 0u);
}

TEST(Depth, ChainOfFlipFlops) {
  // PI -> ff0 -> ff1 -> ff2: depth 3.
  CircuitBuilder b;
  const NodeId a = b.add_input("a");
  const NodeId f0 = b.add_dff("f0");
  const NodeId f1 = b.add_dff("f1");
  const NodeId f2 = b.add_dff("f2");
  b.set_dff_input(f0, b.add_gate(GateType::kBuf, "b0", {a}));
  b.set_dff_input(f1, b.add_gate(GateType::kBuf, "b1", {f0}));
  b.set_dff_input(f2, b.add_gate(GateType::kBuf, "b2", {f1}));
  b.mark_output(f2);
  EXPECT_EQ(sequential_depth(std::move(b).build("chain")), 3u);
}

TEST(Depth, SelfLoopWithPiPathIsShallow) {
  // ff <- ff XOR a : directly PI-fed despite the loop.
  CircuitBuilder b;
  const NodeId a = b.add_input("a");
  const NodeId ff = b.add_dff("ff");
  b.set_dff_input(ff, b.add_gate(GateType::kXor, "x", {ff, a}));
  b.mark_output(ff);
  EXPECT_EQ(sequential_depth(std::move(b).build("loop")), 1u);
}

TEST(Depth, S27MatchesKnownValue) {
  EXPECT_EQ(sequential_depth(gen::make_s27()), 1u);
}

TEST(Stats, ReportsProfile) {
  const auto s = stats_of(tiny());
  EXPECT_EQ(s.inputs, 2u);
  EXPECT_EQ(s.outputs, 1u);
  EXPECT_EQ(s.flip_flops, 1u);
  EXPECT_EQ(s.gates, 3u);
  EXPECT_GE(s.levels, 1u);
}

TEST(BenchIo, WriterIsIdempotentUpToLineOrder) {
  // write(parse(write(c))) contains exactly the same statements as
  // write(c); only gate emission order may differ (topological order is not
  // unique).
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    test::RandomCircuitSpec spec;
    spec.seed = seed + 70;
    const Circuit c = test::make_random_circuit(spec);
    auto sorted_lines = [](const std::string& text) {
      std::vector<std::string> lines;
      std::istringstream in(text);
      std::string line;
      while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '#') lines.push_back(line);
      }
      std::sort(lines.begin(), lines.end());
      return lines;
    };
    const std::string once = write_bench(c);
    const std::string twice =
        write_bench(parse_bench_string(once, c.name()));
    EXPECT_EQ(sorted_lines(once), sorted_lines(twice)) << "seed " << seed;
  }
}

TEST(RandomCircuits, AlwaysValid) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    test::RandomCircuitSpec spec;
    spec.seed = seed;
    spec.num_gates = 20 + seed;
    EXPECT_NO_THROW(test::make_random_circuit(spec));
  }
}

}  // namespace
}  // namespace gatpg::netlist
