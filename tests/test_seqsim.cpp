#include <gtest/gtest.h>

#include "fault/faultlist.h"
#include "gen/s27.h"
#include "helpers/random_circuit.h"
#include "helpers/reference_sim.h"
#include "sim/seqsim.h"

namespace gatpg::sim {
namespace {

using test::RandomCircuitSpec;
using test::ReferenceSimulator;

TEST(SequenceSimulator, ConstantsHoldTheirValue) {
  netlist::CircuitBuilder b;
  const auto a = b.add_input("a");
  const auto k0 = b.add_const(false, "k0");
  const auto k1 = b.add_const(true, "k1");
  b.mark_output(b.add_gate(netlist::GateType::kAnd, "y", {a, k1}));
  b.mark_output(b.add_gate(netlist::GateType::kOr, "z", {a, k0}));
  const auto c = std::move(b).build("consts");
  SequenceSimulator s(c);
  s.apply_vector({V3::k1});
  EXPECT_EQ(s.scalar_value(c.find("y")), V3::k1);
  EXPECT_EQ(s.scalar_value(c.find("z")), V3::k1);
  s.apply_vector({V3::k0});
  EXPECT_EQ(s.scalar_value(c.find("y")), V3::k0);
  EXPECT_EQ(s.scalar_value(c.find("z")), V3::k0);
}

TEST(SequenceSimulator, PowerUpStateIsUnknown) {
  const auto c = gen::make_s27();
  SequenceSimulator s(c);
  for (V3 v : s.state()) EXPECT_EQ(v, V3::kX);
}

TEST(SequenceSimulator, SetStateRoundTrips) {
  const auto c = gen::make_s27();
  SequenceSimulator s(c);
  const State3 st{V3::k1, V3::k0, V3::kX};
  s.set_state(st);
  EXPECT_EQ(s.state(), st);
  EXPECT_EQ(s.state(63), st);  // broadcast across slots
}

TEST(SequenceSimulator, SetStateRejectsWrongArity) {
  const auto c = gen::make_s27();
  SequenceSimulator s(c);
  EXPECT_THROW(s.set_state(State3{V3::k1}), std::invalid_argument);
}

TEST(SequenceSimulator, ApplyRejectsWrongArity) {
  const auto c = gen::make_s27();
  SequenceSimulator s(c);
  EXPECT_THROW(s.apply_vector({V3::k1}), std::invalid_argument);
}

// The central simulator property: event-driven bit-parallel simulation
// agrees with the naive scalar reference on random circuits and sequences,
// including X values.
class SimEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimEquivalence, MatchesReferenceOverSequences) {
  RandomCircuitSpec spec;
  spec.seed = GetParam();
  spec.num_gates = 40 + (GetParam() % 37);
  spec.num_ffs = 2 + (GetParam() % 5);
  const auto c = test::make_random_circuit(spec);

  util::Rng rng(GetParam() * 77 + 1);
  const auto seq = test::random_sequence(c, rng, 12, /*x_prob=*/0.2);

  SequenceSimulator dut(c);
  ReferenceSimulator ref(c);
  for (const auto& v : seq) {
    dut.apply_vector(v);
    ref.apply(v);
    for (netlist::NodeId n = 0; n < c.node_count(); ++n) {
      ASSERT_EQ(dut.scalar_value(n), ref.value(n))
          << "node " << c.name(n) << " seed " << GetParam();
    }
    dut.clock();
    ref.clock();
    ASSERT_EQ(dut.state(), ref.state());
  }
}

TEST_P(SimEquivalence, PackedSlotsAreIndependent) {
  RandomCircuitSpec spec;
  spec.seed = GetParam() + 1000;
  const auto c = test::make_random_circuit(spec);
  util::Rng rng(GetParam() * 13 + 5);

  // 64 different scalar sequences packed together must equal 64 scalar runs.
  const std::size_t len = 6;
  std::vector<sim::Sequence> scalar_seqs(64);
  for (auto& s : scalar_seqs) s = test::random_sequence(c, rng, len, 0.1);

  SequenceSimulator packed(c);
  std::vector<ReferenceSimulator> refs(64, ReferenceSimulator(c));
  const std::size_t npi = c.primary_inputs().size();
  for (std::size_t t = 0; t < len; ++t) {
    std::vector<PackedV3> words(npi, PackedV3::all_x());
    for (unsigned slot = 0; slot < 64; ++slot) {
      for (std::size_t i = 0; i < npi; ++i) {
        words[i].set(slot, scalar_seqs[slot][t][i]);
      }
    }
    packed.apply_packed(words);
    for (unsigned slot = 0; slot < 64; ++slot) {
      refs[slot].apply(scalar_seqs[slot][t]);
    }
    for (unsigned slot : {0u, 13u, 63u}) {
      for (netlist::NodeId po : c.primary_outputs()) {
        ASSERT_EQ(packed.scalar_value(po, slot), refs[slot].value(po));
      }
    }
    packed.clock();
    for (auto& r : refs) r.clock();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, SimEquivalence,
                         ::testing::Range<std::uint64_t>(1, 16));

// Fault-injection overrides agree with the reference simulator's fault
// model for stem and branch faults.
class InjectionEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InjectionEquivalence, OverridesModelStuckAtFaults) {
  RandomCircuitSpec spec;
  spec.seed = GetParam() + 500;
  const auto c = test::make_random_circuit(spec);
  util::Rng rng(GetParam() * 31 + 7);
  const auto seq = test::random_sequence(c, rng, 8);

  const auto faults = fault::all_pin_faults(c);
  // A deterministic sample of faults per circuit.
  for (std::size_t k = 0; k < faults.size(); k += 7) {
    const fault::Fault f = faults[k];
    SequenceSimulator dut(c);
    if (f.pin == fault::kOutputPin) {
      dut.add_output_override(f.node, f.stuck_at, ~0ULL);
    } else {
      dut.add_input_override(f.node, static_cast<unsigned>(f.pin),
                             f.stuck_at, ~0ULL);
    }
    ReferenceSimulator ref(c, f);
    for (const auto& v : seq) {
      dut.apply_vector(v);
      ref.apply(v);
      for (netlist::NodeId po : c.primary_outputs()) {
        ASSERT_EQ(dut.scalar_value(po), ref.value(po))
            << fault::to_string(c, f);
      }
      dut.clock();
      ref.clock();
      ASSERT_EQ(dut.state(), ref.state()) << fault::to_string(c, f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, InjectionEquivalence,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(SequenceSimulator, ClearOverridesRestoresGoodBehaviour) {
  const auto c = gen::make_s27();
  SequenceSimulator clean(c);
  SequenceSimulator dirty(c);
  dirty.add_output_override(c.find("G10"), true, ~0ULL);
  dirty.clear_overrides();
  dirty.reset();
  const Vector3 v{V3::k1, V3::k0, V3::k1, V3::k0};
  clean.apply_vector(v);
  dirty.apply_vector(v);
  for (netlist::NodeId n = 0; n < c.node_count(); ++n) {
    EXPECT_EQ(clean.scalar_value(n), dirty.scalar_value(n));
  }
}

TEST(SequenceSimulator, StateMatchSemantics) {
  const auto c = gen::make_s27();
  SequenceSimulator s(c);
  s.set_state({V3::k1, V3::k0, V3::k1});
  // X in desired always matches; mismatch drops the count.
  EXPECT_EQ(s.state_match_count({V3::kX, V3::kX, V3::kX}, 0), 3u);
  EXPECT_EQ(s.state_match_count({V3::k1, V3::k0, V3::k1}, 0), 3u);
  EXPECT_EQ(s.state_match_count({V3::k0, V3::k0, V3::k1}, 0), 2u);
  EXPECT_EQ(s.state_match_mask({V3::k1, V3::kX, V3::kX}), ~0ULL);
  EXPECT_EQ(s.state_match_mask({V3::k0, V3::kX, V3::kX}), 0ULL);
}

TEST(SequenceSimulator, DffOutputStemFaultForcesState) {
  const auto c = gen::make_s27();
  SequenceSimulator s(c);
  const auto ff = c.flip_flops()[0];
  s.add_output_override(ff, true, ~0ULL);
  s.reset();
  EXPECT_EQ(s.scalar_value(ff), V3::k1);  // forced even at power-up
  s.set_state({V3::k0, V3::k0, V3::k0});
  EXPECT_EQ(s.scalar_value(ff), V3::k1);
}

}  // namespace
}  // namespace gatpg::sim
