#include <gtest/gtest.h>

#include "sim/logic3.h"

namespace gatpg::sim {
namespace {

const V3 kAll[] = {V3::k0, V3::k1, V3::kX};

TEST(ScalarLogic3, NotTruthTable) {
  EXPECT_EQ(v3_not(V3::k0), V3::k1);
  EXPECT_EQ(v3_not(V3::k1), V3::k0);
  EXPECT_EQ(v3_not(V3::kX), V3::kX);
}

TEST(ScalarLogic3, AndTruthTable) {
  EXPECT_EQ(v3_and(V3::k0, V3::kX), V3::k0);  // controlling beats X
  EXPECT_EQ(v3_and(V3::kX, V3::k0), V3::k0);
  EXPECT_EQ(v3_and(V3::k1, V3::k1), V3::k1);
  EXPECT_EQ(v3_and(V3::k1, V3::kX), V3::kX);
  EXPECT_EQ(v3_and(V3::kX, V3::kX), V3::kX);
}

TEST(ScalarLogic3, OrTruthTable) {
  EXPECT_EQ(v3_or(V3::k1, V3::kX), V3::k1);
  EXPECT_EQ(v3_or(V3::kX, V3::k1), V3::k1);
  EXPECT_EQ(v3_or(V3::k0, V3::k0), V3::k0);
  EXPECT_EQ(v3_or(V3::k0, V3::kX), V3::kX);
}

TEST(ScalarLogic3, XorTruthTable) {
  EXPECT_EQ(v3_xor(V3::k1, V3::k0), V3::k1);
  EXPECT_EQ(v3_xor(V3::k1, V3::k1), V3::k0);
  EXPECT_EQ(v3_xor(V3::kX, V3::k0), V3::kX);
  EXPECT_EQ(v3_xor(V3::k1, V3::kX), V3::kX);
}

TEST(PackedV3, BroadcastAndGet) {
  for (V3 v : kAll) {
    const PackedV3 p = PackedV3::broadcast(v);
    for (unsigned slot : {0u, 1u, 31u, 63u}) EXPECT_EQ(p.get(slot), v);
  }
}

TEST(PackedV3, SetGetRoundTrip) {
  PackedV3 p = PackedV3::all_x();
  p.set(5, V3::k1);
  p.set(6, V3::k0);
  EXPECT_EQ(p.get(5), V3::k1);
  EXPECT_EQ(p.get(6), V3::k0);
  EXPECT_EQ(p.get(7), V3::kX);
  p.set(5, V3::kX);
  EXPECT_EQ(p.get(5), V3::kX);
  // Planes stay disjoint.
  EXPECT_EQ(p.v1 & p.v0, 0u);
}

TEST(PackedV3, DefinedMask) {
  PackedV3 p = PackedV3::all_x();
  EXPECT_EQ(p.defined(), 0u);
  p.set(0, V3::k0);
  p.set(63, V3::k1);
  EXPECT_EQ(p.defined(), (1ULL << 0) | (1ULL << 63));
}

// Property: every packed operator agrees with its scalar counterpart on all
// 9 value pairs, in every slot position.
class PackedVsScalar : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(PackedVsScalar, AllBinaryOpsAgree) {
  const V3 a = kAll[std::get<0>(GetParam())];
  const V3 b = kAll[std::get<1>(GetParam())];
  // Place the pair at several slots, with different noise elsewhere.
  for (unsigned slot : {0u, 17u, 63u}) {
    PackedV3 pa = PackedV3::broadcast(V3::k1);
    PackedV3 pb = PackedV3::broadcast(V3::k0);
    pa.set(slot, a);
    pb.set(slot, b);
    EXPECT_EQ(p_and(pa, pb).get(slot), v3_and(a, b));
    EXPECT_EQ(p_or(pa, pb).get(slot), v3_or(a, b));
    EXPECT_EQ(p_xor(pa, pb).get(slot), v3_xor(a, b));
    EXPECT_EQ(p_not(pa).get(slot), v3_not(a));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPairs, PackedVsScalar,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Range(0, 3)));

TEST(PackedOps, PlanesNeverOverlap) {
  // Closure: ops on valid encodings yield valid encodings.
  const PackedV3 vals[] = {
      PackedV3::broadcast(V3::k0), PackedV3::broadcast(V3::k1),
      PackedV3::all_x(), {0x5555555555555555ULL, 0xAAAAAAAAAAAAAAAAULL}};
  for (const auto& a : vals) {
    for (const auto& b : vals) {
      EXPECT_EQ(p_and(a, b).v1 & p_and(a, b).v0, 0u);
      EXPECT_EQ(p_or(a, b).v1 & p_or(a, b).v0, 0u);
      EXPECT_EQ(p_xor(a, b).v1 & p_xor(a, b).v0, 0u);
      EXPECT_EQ(p_not(a).v1 & p_not(a).v0, 0u);
    }
  }
}

TEST(GateEval, MultiInputGatesScalar) {
  using netlist::GateType;
  using netlist::NodeId;
  const V3 vals[] = {V3::k1, V3::k1, V3::k0};
  const NodeId ids[] = {0, 1, 2};
  auto fetch = [&](NodeId n) { return vals[n]; };
  const std::span<const NodeId> fan(ids, 3);
  EXPECT_EQ(eval_gate_scalar(GateType::kAnd, fan, fetch), V3::k0);
  EXPECT_EQ(eval_gate_scalar(GateType::kNand, fan, fetch), V3::k1);
  EXPECT_EQ(eval_gate_scalar(GateType::kOr, fan, fetch), V3::k1);
  EXPECT_EQ(eval_gate_scalar(GateType::kNor, fan, fetch), V3::k0);
  EXPECT_EQ(eval_gate_scalar(GateType::kXor, fan, fetch), V3::k0);
  EXPECT_EQ(eval_gate_scalar(GateType::kXnor, fan, fetch), V3::k1);
}

TEST(GateEval, PackedMatchesScalarOnRandomWords) {
  using netlist::GateType;
  using netlist::NodeId;
  // Three fanins with mixed values per slot; compare slotwise.
  PackedV3 w[3];
  w[0] = {0x123456789abcdef0ULL, 0x0a0a0a0a00000000ULL &
                                     ~0x123456789abcdef0ULL};
  w[1] = {0x00ff00ff00ff00ffULL, 0xff00ff00ff00ff00ULL &
                                     ~0x00ff00ff00ff00ffULL};
  w[2] = PackedV3::all_x();
  w[2].set(3, V3::k1);
  w[2].set(4, V3::k0);
  const NodeId ids[] = {0, 1, 2};
  const std::span<const NodeId> fan(ids, 3);
  auto pf = [&](NodeId n) { return w[n]; };
  for (GateType t : {GateType::kAnd, GateType::kNand, GateType::kOr,
                     GateType::kNor, GateType::kXor, GateType::kXnor}) {
    const PackedV3 packed = eval_gate_packed(t, fan, pf);
    for (unsigned slot = 0; slot < 64; ++slot) {
      auto sf = [&](NodeId n) { return w[n].get(slot); };
      EXPECT_EQ(packed.get(slot), eval_gate_scalar(t, fan, sf))
          << gate_type_name(t) << " slot " << slot;
    }
  }
}

}  // namespace
}  // namespace gatpg::sim
