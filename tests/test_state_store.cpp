// State-knowledge layer tests: the 3-valued cube algebra (subsumption
// X-edge cases), StateStore unit behavior (dedup, caps, subsumption
// maintenance, seed ranking, verified lookups, disabled inertness), and the
// engine-level guarantees — store-on runs are thread-count-independent and
// resolve every fault the same way a store-off run does (the store may only
// change how fast faults resolve, never whether they are detectable).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/faultlist.h"
#include "gen/registry.h"
#include "hybrid/hybrid_atpg.h"
#include "netlist/depth.h"
#include "session/session.h"
#include "sim/seqsim.h"
#include "state/state_store.h"
#include "util/rng.h"

namespace gatpg {
namespace {

using sim::Sequence;
using sim::State3;
using sim::V3;
using sim::Vector3;
using state::StateStore;
using state::StateStoreConfig;

State3 cube(const std::string& s) {
  State3 c;
  c.reserve(s.size());
  for (char ch : s) {
    c.push_back(ch == '0' ? V3::k0 : ch == '1' ? V3::k1 : V3::kX);
  }
  return c;
}

// ---------------------------------------------------------------------------
// Cube algebra

TEST(CubeAlgebra, AllXSubsumesEverything) {
  EXPECT_TRUE(sim::cube_subsumes(cube("XXX"), cube("010")));
  EXPECT_TRUE(sim::cube_subsumes(cube("XXX"), cube("XXX")));
  EXPECT_TRUE(sim::cube_subsumes(cube("XXX"), cube("X1X")));
}

TEST(CubeAlgebra, DefinedLiteralNeverSubsumesAllX) {
  // The all-X cube contains states violating any literal.
  EXPECT_FALSE(sim::cube_subsumes(cube("1XX"), cube("XXX")));
  EXPECT_FALSE(sim::cube_subsumes(cube("XX0"), cube("XXX")));
}

TEST(CubeAlgebra, EveryCubeSubsumesItself) {
  for (const char* s : {"010", "XXX", "1X0", "X1X"}) {
    EXPECT_TRUE(sim::cube_subsumes(cube(s), cube(s))) << s;
  }
}

TEST(CubeAlgebra, PartialOverlap) {
  // 0X subsumes 01 (adding literals shrinks the state set), not vice versa.
  EXPECT_TRUE(sim::cube_subsumes(cube("0X"), cube("01")));
  EXPECT_FALSE(sim::cube_subsumes(cube("01"), cube("0X")));
  // Conflicting literals: neither direction.
  EXPECT_FALSE(sim::cube_subsumes(cube("0X"), cube("1X")));
  EXPECT_FALSE(sim::cube_subsumes(cube("1X"), cube("0X")));
  // Disjoint defined positions: neither covers the other.
  EXPECT_FALSE(sim::cube_subsumes(cube("1X"), cube("X1")));
  EXPECT_FALSE(sim::cube_subsumes(cube("X1"), cube("1X")));
}

TEST(CubeAlgebra, AgreementCountsDefinedMatchesOnly) {
  EXPECT_EQ(sim::cube_agreement(cube("01X"), cube("010")), 2u);
  EXPECT_EQ(sim::cube_agreement(cube("01X"), cube("110")), 1u);
  // An X in the state does not satisfy a defined literal.
  EXPECT_EQ(sim::cube_agreement(cube("01X"), cube("0XX")), 1u);
  EXPECT_EQ(sim::cube_agreement(cube("XXX"), cube("010")), 0u);
}

TEST(CubeAlgebra, Trivial) {
  EXPECT_TRUE(sim::cube_is_trivial(cube("XXX")));
  EXPECT_TRUE(sim::cube_is_trivial(cube("")));
  EXPECT_FALSE(sim::cube_is_trivial(cube("XX1")));
}

// ---------------------------------------------------------------------------
// StateStore units

StateStoreConfig enabled_config() {
  StateStoreConfig cfg;
  cfg.enabled = true;
  return cfg;
}

TEST(StateStoreUnit, DisabledStoreIsInert) {
  const auto c = gen::make_circuit("s27");
  StateStore store(c);  // default config: disabled
  EXPECT_FALSE(store.enabled());
  store.record_justified(cube("010"), {Vector3{V3::k0}});
  store.record_unjustifiable(cube("010"));
  store.record_near_miss(cube("010"), {Vector3{V3::k0}});
  store.record_reachable_trace({Vector3{V3::k0}}, {cube("010")});
  store.cache_forward(0, {Vector3{V3::k0}}, cube("010"));
  EXPECT_EQ(store.justified_size(), 0u);
  EXPECT_EQ(store.unjustifiable_size(), 0u);
  EXPECT_EQ(store.reachable_size(), 0u);
  EXPECT_EQ(store.near_miss_size(), 0u);
  EXPECT_EQ(store.cached_forward(0), nullptr);
  EXPECT_FALSE(store.known_unjustifiable(cube("010")));
  const fault::Fault f{1, fault::kOutputPin, true};
  EXPECT_FALSE(
      store.lookup_justified(f, cube("010"), cube("XXX"), cube("XXX")));
  EXPECT_TRUE(store.seed_sequences(cube("010"), 8).empty());
  // A disabled store never even counts: zero everywhere.
  EXPECT_EQ(store.stats().seq_misses, 0);
  EXPECT_EQ(store.stats().unjust_misses, 0);
}

TEST(StateStoreUnit, JustifiedDedupAndFifoCap) {
  const auto c = gen::make_circuit("s27");
  StateStoreConfig cfg = enabled_config();
  cfg.max_justified = 2;
  StateStore store(c, cfg);
  store.record_justified(cube("XXX"), {});  // trivial: skipped
  EXPECT_EQ(store.justified_size(), 0u);
  store.record_justified(cube("0XX"), {Vector3{V3::k0}});
  store.record_justified(cube("0XX"), {Vector3{V3::k1}});  // duplicate cube
  EXPECT_EQ(store.justified_size(), 1u);
  EXPECT_EQ(store.stats().seq_inserts, 1);
  store.record_justified(cube("1XX"), {Vector3{V3::k0}});
  store.record_justified(cube("X1X"), {Vector3{V3::k0}});  // evicts 0XX
  EXPECT_EQ(store.justified_size(), 2u);
  EXPECT_EQ(store.stats().seq_inserts, 3);
}

TEST(StateStoreUnit, UnjustifiableSubsumptionMaintenance) {
  const auto c = gen::make_circuit("s27");
  StateStore store(c, enabled_config());
  store.record_unjustifiable(cube("01X"));
  EXPECT_EQ(store.unjustifiable_size(), 1u);
  // A more specific cube is already covered: skipped, counted subsumed.
  store.record_unjustifiable(cube("011"));
  EXPECT_EQ(store.unjustifiable_size(), 1u);
  EXPECT_EQ(store.stats().unjust_subsumed, 1);
  // Hits: any query at least as constrained as a stored proof.
  EXPECT_TRUE(store.known_unjustifiable(cube("011")));
  EXPECT_TRUE(store.known_unjustifiable(cube("010")));
  EXPECT_TRUE(store.known_unjustifiable(cube("01X")));
  // Misses: weaker or conflicting queries are not covered.
  EXPECT_FALSE(store.known_unjustifiable(cube("0XX")));
  EXPECT_FALSE(store.known_unjustifiable(cube("00X")));
  EXPECT_FALSE(store.known_unjustifiable(cube("XXX")));
  // A more general proof replaces the specific one it covers.
  store.record_unjustifiable(cube("0XX"));
  EXPECT_EQ(store.unjustifiable_size(), 1u);
  EXPECT_EQ(store.stats().unjust_subsumed, 2);
  EXPECT_TRUE(store.known_unjustifiable(cube("00X")));
}

TEST(StateStoreUnit, SeedRankingIsAgreementThenRecency) {
  const auto c = gen::make_circuit("s27");
  StateStore store(c, enabled_config());
  const Sequence seg{Vector3{V3::k0, V3::k0, V3::k1, V3::k1},
                     Vector3{V3::k1, V3::k0, V3::k1, V3::k1},
                     Vector3{V3::k0, V3::k1, V3::k1, V3::k1}};
  // states[t] is reached by the prefix of length t+1.
  store.record_reachable_trace(seg, {cube("00X"), cube("011"), cube("111")});
  EXPECT_EQ(store.reachable_size(), 3u);

  const auto seeds = store.seed_sequences(cube("01X"), 8);
  // Agreement with 01X: 011 -> 2; 00X -> 1; 111 -> 1 (newer than 00X).
  ASSERT_EQ(seeds.size(), 3u);
  EXPECT_EQ(seeds[0].size(), 2u);  // prefix reaching 011
  EXPECT_EQ(seeds[1].size(), 3u);  // 111: agreement 1, newest stamp
  EXPECT_EQ(seeds[2].size(), 1u);  // 00X: agreement 1, older
  // Zero-agreement cubes are filtered entirely.
  EXPECT_TRUE(store.seed_sequences(cube("XX0"), 8).empty());
  // max_seeds truncates the ranked list.
  EXPECT_EQ(store.seed_sequences(cube("01X"), 1).size(), 1u);
}

TEST(StateStoreUnit, NearMissReplacedByNewerForSameCube) {
  const auto c = gen::make_circuit("s27");
  StateStore store(c, enabled_config());
  const Sequence old_best{Vector3{V3::k0, V3::k0, V3::k0, V3::k0}};
  const Sequence new_best{Vector3{V3::k1, V3::k1, V3::k1, V3::k1},
                          Vector3{V3::k1, V3::k1, V3::k1, V3::k1}};
  store.record_near_miss(cube("01X"), old_best);
  store.record_near_miss(cube("01X"), new_best);
  EXPECT_EQ(store.near_miss_size(), 1u);
  const auto seeds = store.seed_sequences(cube("01X"), 4);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0], new_best);
}

TEST(StateStoreUnit, LookupReVerifiesOnTheQuerysMachine) {
  const auto c = gen::make_circuit("s27");
  StateStore store(c, enabled_config());

  // Drive the good machine from power-up X with a fixed sequence and log the
  // state it actually reaches.
  const std::size_t num_pi = c.primary_inputs().size();
  const Sequence seq{Vector3(num_pi, V3::k0), Vector3(num_pi, V3::k1),
                     Vector3(num_pi, V3::k0)};
  sim::SequenceSimulator good(c);
  good.run_sequence(seq);
  const State3 reached = good.state();
  ASSERT_FALSE(sim::cube_is_trivial(reached));

  store.record_justified(reached, seq);
  const fault::Fault f{c.primary_inputs()[0], fault::kOutputPin, true};
  const State3 all_x(reached.size(), V3::kX);

  // Covering query (the cube itself), faulty side unconstrained: the stored
  // sequence verifies and its matching prefix comes back.
  const auto hit = store.lookup_justified(f, reached, all_x, all_x);
  ASSERT_TRUE(hit.has_value());
  EXPECT_LE(hit->size(), seq.size());
  sim::SequenceSimulator replay(c);
  replay.run_sequence(*hit);
  EXPECT_TRUE(sim::cube_subsumes(reached, replay.state()));
  EXPECT_EQ(store.stats().seq_hits, 1);

  // An entry whose witness sequence does not actually reach the queried
  // cube is screened out by the verify, not returned.  The one-vector
  // prefix must not already satisfy the cube for this to be a real probe.
  const Sequence wrong_witness{seq[0]};
  sim::SequenceSimulator probe(c);
  probe.run_sequence(wrong_witness);
  ASSERT_FALSE(sim::cube_subsumes(reached, probe.state()));
  StateStore fresh(c, enabled_config());
  fresh.record_justified(reached, wrong_witness);
  EXPECT_FALSE(fresh.lookup_justified(f, reached, all_x, all_x));
  EXPECT_EQ(fresh.stats().seq_verify_failures, 1);
  EXPECT_EQ(fresh.stats().seq_misses, 1);
}

TEST(StateStoreUnit, ForwardCacheTakeCountsHits) {
  const auto c = gen::make_circuit("s27");
  StateStore store(c, enabled_config());
  EXPECT_EQ(store.take_cached_forward(5), nullptr);
  EXPECT_EQ(store.stats().forward_cache_hits, 0);
  store.cache_forward(5, {Vector3{V3::k1}}, cube("1XX"));
  ASSERT_NE(store.cached_forward(5), nullptr);
  EXPECT_EQ(store.stats().forward_cache_hits, 0);  // pure lookup: no count
  const auto* taken = store.take_cached_forward(5);
  ASSERT_NE(taken, nullptr);
  EXPECT_EQ(taken->required, cube("1XX"));
  EXPECT_EQ(store.stats().forward_cache_hits, 1);
  EXPECT_EQ(store.cached_forward(4), nullptr);  // neighbors untouched
}

// ---------------------------------------------------------------------------
// Engine-level guarantees

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 0x100000001b3ULL;
}

std::uint64_t hash_result(const session::SessionResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& vec : r.test_set) {
    h = fnv1a(h, 0x5eedULL);
    for (sim::V3 v : vec) h = fnv1a(h, static_cast<std::uint64_t>(v));
  }
  for (auto s : r.fault_state) h = fnv1a(h, static_cast<std::uint64_t>(s));
  h = fnv1a(h, r.segments.size());
  return h;
}

hybrid::HybridConfig small_hybrid_config() {
  // The HybridGaHitecG298 golden configuration: deterministic budgets
  // binding, wall-clock limits never binding, small GA.
  hybrid::HybridConfig cfg;
  cfg.schedule = hybrid::PassSchedule::ga_hitec(1.0);
  for (auto& p : cfg.schedule.passes) {
    p.time_limit_s = 1000.0;
    p.max_backtracks = 300;
    p.ga_population = 64;
    p.ga_generations = 2;
  }
  cfg.max_solutions_per_fault = 4;
  cfg.seed = 3;
  return cfg;
}

// Store-on golden (captured with tools/golden_capture): the store changes
// the search trajectory, so this is a distinct constant family from the
// store-off goldens in test_session.cpp — but it must be just as
// reproducible at any thread count.
TEST(StateStoreEngine, StoreOnGoldenS27) {
  const auto c = gen::make_circuit("s27");
  for (unsigned threads : {1u, 4u}) {
    hybrid::HybridConfig cfg;
    cfg.schedule = hybrid::PassSchedule::ga_hitec(1.0);
    cfg.seed = 7;
    cfg.state_store.enabled = true;
    cfg.parallel.threads = threads;
    const auto r = hybrid::HybridAtpg(c, cfg).run();
    std::uint64_t test_hash = 0xcbf29ce484222325ULL;
    for (const auto& vec : r.test_set) {
      test_hash = fnv1a(test_hash, 0x5eedULL);
      for (sim::V3 v : vec)
        test_hash = fnv1a(test_hash, static_cast<std::uint64_t>(v));
    }
    EXPECT_EQ(test_hash, 0x39f87b1bd51642adULL) << "threads " << threads;
    EXPECT_EQ(r.detected(), 32u);
    EXPECT_EQ(r.untestable(), 0u);
    EXPECT_EQ(r.test_set.size(), 22u);
    EXPECT_EQ(r.segments.size(), 8u);
    EXPECT_EQ(r.counters.store.seq_hits, 2);
    EXPECT_EQ(r.counters.store.seq_inserts, 4);
    EXPECT_EQ(r.counters.store.seq_verify_failures, 3);
    EXPECT_EQ(r.counters.store.reachable_inserts, 7);
  }
}

TEST(StateStoreEngine, StoreOnRunsAreThreadCountIndependent) {
  const auto c = gen::make_circuit("g298");
  std::uint64_t hashes[2];
  long hits[2];
  unsigned idx = 0;
  for (unsigned threads : {1u, 4u}) {
    hybrid::HybridConfig cfg = small_hybrid_config();
    cfg.parallel.threads = threads;
    cfg.state_store.enabled = true;
    const auto r = hybrid::HybridAtpg(c, cfg).run();
    hashes[idx] = hash_result(r);
    hits[idx] = r.counters.store.seq_hits + r.counters.store.unjust_hits +
                r.counters.store.forward_cache_hits;
    ++idx;
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hits[0], hits[1]);
  // Effectiveness: the escalating GA-HITEC schedule re-targets surviving
  // faults, so the knowledge base must pay off at least once.
  EXPECT_GT(hits[0], 0);
}

/// Runs the hybrid engine over an explicit fault subset with the store on or
/// off, mirroring HybridAtpg::run (which always collapses the full list).
session::SessionResult run_subset(const netlist::Circuit& c,
                                  const hybrid::HybridConfig& cfg,
                                  const fault::FaultList& subset,
                                  bool store_on) {
  session::SessionConfig scfg;
  scfg.faultsim = cfg.faultsim;
  scfg.faultsim.parallel = cfg.parallel;
  scfg.state_store = cfg.state_store;
  scfg.state_store.enabled = store_on;
  session::Session s(c, subset, scfg);
  util::Rng rng(cfg.seed);
  hybrid::HybridEngine engine(c, cfg, netlist::sequential_depth(c), rng);
  return s.run(engine, cfg.schedule);
}

// The store is pure acceleration: detected/untestable claims are sound in
// both modes, so the two runs may never disagree on a resolved fault's
// class, and with no aborted searches on either side the resolution is
// complete and must match exactly.
TEST(StateStoreEngine, StoreNeverChangesFaultResolution) {
  for (const std::string& name : gen::registry_names()) {
    SCOPED_TRACE(name);
    const auto c = gen::make_circuit(name);
    const fault::FaultList all = fault::collapse(c);

    // Deterministic per-circuit sample keeps the sweep affordable.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char ch : name) h = fnv1a(h, static_cast<std::uint64_t>(ch));
    util::Rng rng(h | 1);
    constexpr std::size_t kSample = 16;
    fault::FaultList subset;
    if (all.size() <= kSample) {
      subset = all;
    } else {
      std::vector<std::size_t> indices(all.size());
      for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
      for (std::size_t i = 0; i < kSample; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(rng() % (indices.size() - i));
        std::swap(indices[i], indices[j]);
        subset.faults.push_back(all.faults[indices[i]]);
        subset.class_sizes.push_back(all.class_sizes[indices[i]]);
      }
    }

    const hybrid::HybridConfig cfg = small_hybrid_config();
    const auto off = run_subset(c, cfg, subset, false);
    const auto on = run_subset(c, cfg, subset, true);

    ASSERT_EQ(off.fault_state.size(), on.fault_state.size());
    for (std::size_t i = 0; i < off.fault_state.size(); ++i) {
      const bool det_off = off.fault_state[i] == session::FaultStatus::kDetected;
      const bool det_on = on.fault_state[i] == session::FaultStatus::kDetected;
      const bool unt_off =
          off.fault_state[i] == session::FaultStatus::kUntestable;
      const bool unt_on = on.fault_state[i] == session::FaultStatus::kUntestable;
      // A detected fault is testable; an untestable claim is a proof.
      EXPECT_FALSE(det_off && unt_on) << "fault " << i;
      EXPECT_FALSE(det_on && unt_off) << "fault " << i;
    }
    if (off.counters.aborted_faults == 0 && on.counters.aborted_faults == 0) {
      EXPECT_EQ(off.fault_state, on.fault_state);
    }
  }
}

}  // namespace
}  // namespace gatpg
