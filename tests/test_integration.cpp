// Cross-module integration tests: whole-pipeline runs over the registry
// suite with tight budgets, internal bookkeeping vs independent grading,
// bench-format round trips through the ATPG, and GA-vs-deterministic
// engine-level consistency.
#include <gtest/gtest.h>

#include "atpg/detengine.h"
#include "atpg/justify.h"
#include "fault/grading.h"
#include "gen/registry.h"
#include "helpers/reference_sim.h"
#include "hybrid/hybrid_atpg.h"
#include "netlist/bench_io.h"
#include "netlist/depth.h"

namespace gatpg {
namespace {

using hybrid::FaultState;

hybrid::HybridConfig tiny_budget(std::uint64_t seed = 1) {
  hybrid::HybridConfig cfg;
  cfg.schedule = hybrid::PassSchedule::ga_hitec(0.005);
  for (auto& pass : cfg.schedule.passes) pass.pass_budget_s = 1.5;
  cfg.seed = seed;
  return cfg;
}

class RegistrySweep : public ::testing::TestWithParam<const char*> {};

TEST_P(RegistrySweep, AtpgClaimsAreConsistent) {
  const auto c = gen::make_circuit(GetParam());
  hybrid::HybridAtpg atpg(c, tiny_budget());
  const auto result = atpg.run();
  // Partition sanity.
  EXPECT_EQ(result.fault_state.size(), result.total_faults);
  EXPECT_LE(result.detected() + result.untestable(), result.total_faults);
  // Every claimed detection must be reproduced by independent grading of
  // the final test set from power-up.
  const auto report = fault::grade_sequence(
      c, atpg.fault_list().faults, result.test_set);
  EXPECT_GE(report.detected, result.detected()) << GetParam();
  // Detected-fault flags must match the grading simulator per fault.
  fault::FaultSimulator fs(c, atpg.fault_list().faults);
  fs.run(result.test_set);
  for (std::size_t i = 0; i < result.total_faults; ++i) {
    if (result.fault_state[i] == FaultState::kDetected) {
      EXPECT_TRUE(fs.detected()[i])
          << GetParam() << " " << fault::to_string(c, atpg.fault_list().faults[i]);
    }
    if (result.fault_state[i] == FaultState::kUntestable) {
      EXPECT_FALSE(fs.detected()[i])
          << GetParam() << " untestable fault detected by own test set: "
          << fault::to_string(c, atpg.fault_list().faults[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, RegistrySweep,
                         ::testing::Values("s27", "g298", "g386", "mult4",
                                           "div4", "g641"));

TEST(Integration, BenchRoundTripPreservesAtpgBehaviour) {
  // Write a generated circuit to .bench text, parse it back, and check the
  // collapsed fault count and a small ATPG run agree.
  const auto original = gen::make_circuit("g344");
  const auto text = netlist::write_bench(original);
  const auto reparsed = netlist::parse_bench_string(text, "g344rt");
  EXPECT_EQ(fault::collapse(original).size(), fault::collapse(reparsed).size());
  EXPECT_EQ(netlist::sequential_depth(original),
            netlist::sequential_depth(reparsed));

  // Node ids (and hence fault ordering) legitimately change through the
  // text round trip, so identical test sets are not expected; instead the
  // circuits must be *behaviourally* interchangeable: each circuit's test
  // set achieves the same coverage on the other circuit.
  const auto r1 = hybrid::HybridAtpg(original, tiny_budget(3)).run();
  const auto g_on_original = fault::grade_sequence(original, r1.test_set);
  // Map the sequence across: PIs are emitted in the same order by
  // write_bench, so the vectors apply verbatim.
  const auto g_on_reparsed = fault::grade_sequence(reparsed, r1.test_set);
  EXPECT_EQ(g_on_original.detected, g_on_reparsed.detected);
}

TEST(Integration, HybridBeatsOrMatchesPureDeterministicOnDatapath) {
  // The paper's headline: on data-dominant circuits the hybrid reaches at
  // least the deterministic baseline's coverage under equal budgets.
  const auto c = gen::make_circuit("div4");
  hybrid::HybridConfig ga_cfg = tiny_budget(7);
  hybrid::HybridConfig hitec_cfg = tiny_budget(7);
  hitec_cfg.schedule = hybrid::PassSchedule::hitec(0.005);
  for (auto& pass : hitec_cfg.schedule.passes) pass.pass_budget_s = 1.5;
  const auto ga = hybrid::HybridAtpg(c, ga_cfg).run();
  const auto hitec = hybrid::HybridAtpg(c, hitec_cfg).run();
  EXPECT_GE(ga.detected() + 2, hitec.detected())
      << "hybrid should be at least competitive";
}

TEST(Integration, ForwardSolutionsFeedDeterministicJustifier) {
  // Engine-level pipeline: take forward solutions on s27 and justify their
  // required states deterministically; every justified test must detect the
  // fault from power-up (full end-to-end without the orchestrator).
  const auto c = gen::make_circuit("s27");
  atpg::SearchLimits limits;
  limits.time_limit_s = 1.0;
  limits.max_backtracks = 10000;
  int full_chains = 0;
  for (const auto& f : fault::collapse(c).faults) {
    atpg::ForwardEngine fwd(c, f, limits);
    if (fwd.next_solution(util::Deadline::unlimited()) !=
        atpg::ForwardStatus::kSolved) {
      continue;
    }
    atpg::DeterministicJustifier justifier(c, limits);
    const auto just =
        justifier.justify(fwd.required_state(), util::Deadline::unlimited());
    if (just.status != atpg::DeterministicJustifier::Status::kJustified) {
      continue;
    }
    sim::Sequence test = just.sequence;
    const auto vectors = fwd.vectors();
    test.insert(test.end(), vectors.begin(), vectors.end());
    for (auto& v : test) {
      for (auto& bit : v) {
        if (bit == sim::V3::kX) bit = sim::V3::k0;
      }
    }
    ++full_chains;
    EXPECT_TRUE(fault::FaultSimulator::detects(c, f, test))
        << fault::to_string(c, f);
  }
  EXPECT_GT(full_chains, 10) << "expected many faults to complete the chain";
}

TEST(Integration, TestSetsAreCompactRelativeToRandom) {
  // ATPG test sets should beat random sequences of equal length on s27.
  const auto c = gen::make_circuit("s27");
  const auto result = hybrid::HybridAtpg(c, tiny_budget(11)).run();
  const auto atpg_report = fault::grade_sequence(c, result.test_set);
  util::Rng rng(1);
  sim::Sequence random_seq;
  for (std::size_t i = 0; i < result.test_set.size(); ++i) {
    sim::Vector3 v(c.primary_inputs().size());
    for (auto& bit : v) bit = rng.bit() ? sim::V3::k1 : sim::V3::k0;
    random_seq.push_back(v);
  }
  const auto random_report = fault::grade_sequence(c, random_seq);
  EXPECT_GE(atpg_report.detected, random_report.detected);
}

TEST(Integration, DepthDrivesGaSequenceLengths) {
  // Deeper circuits must produce longer GA justification sequences under
  // the multiplier rule; verify through the public config path.
  const auto shallow = gen::make_circuit("s27");
  const auto deep = gen::make_circuit("g1196");  // shift-register analogs
  EXPECT_LE(netlist::sequential_depth(shallow),
            netlist::sequential_depth(deep));
}

}  // namespace
}  // namespace gatpg
