#include <gtest/gtest.h>

#include "gen/s27.h"
#include "helpers/random_circuit.h"
#include "helpers/reference_sim.h"
#include "hybrid/ga_justify.h"

namespace gatpg::hybrid {
namespace {

using sim::State3;
using sim::V3;

GaJustifyConfig config(unsigned seq_len = 8, std::uint64_t seed = 1) {
  GaJustifyConfig c;
  c.population = 64;
  c.generations = 8;
  c.sequence_length = seq_len;
  c.seed = seed;
  return c;
}

fault::Fault benign_fault(const netlist::Circuit& c) {
  // A fault far from the state logic keeps the faulty machine behaving like
  // the good one for state purposes.
  return {c.primary_outputs()[0], fault::kOutputPin, false};
}

TEST(GaStateJustifier, FindsReachableState) {
  const auto c = gen::make_s27();
  // Find a genuinely reachable state first.
  util::Rng rng(5);
  test::ReferenceSimulator ref(c);
  for (const auto& v : test::random_sequence(c, rng, 6)) {
    ref.apply(v);
    ref.clock();
  }
  const State3 target = ref.state();
  const State3 all_x(3, V3::kX);

  GaStateJustifier justifier(c);
  const auto result = justifier.justify(benign_fault(c), target, all_x,
                                        all_x, config(),
                                        util::Deadline::unlimited());
  ASSERT_TRUE(result.success);

  // Verify the sequence independently on the good machine.
  test::ReferenceSimulator check(c);
  for (const auto& v : result.sequence) {
    check.apply(v);
    check.clock();
  }
  const State3 reached = check.state();
  for (std::size_t i = 0; i < target.size(); ++i) {
    if (target[i] != V3::kX) EXPECT_EQ(reached[i], target[i]);
  }
}

TEST(GaStateJustifier, SequencesAreBinary) {
  const auto c = gen::make_s27();
  GaStateJustifier justifier(c);
  const State3 all_x(3, V3::kX);
  const auto result = justifier.justify(
      benign_fault(c), {V3::k0, V3::kX, V3::kX}, all_x, all_x, config(),
      util::Deadline::unlimited());
  if (result.success) {
    for (const auto& v : result.sequence) {
      for (V3 bit : v) EXPECT_NE(bit, V3::kX);
    }
    EXPECT_LE(result.sequence.size(), config().sequence_length);
  }
}

TEST(GaStateJustifier, EarlyExitReturnsShortestObservedPrefix) {
  // Target the all-X-matching state: matched after the first vector.
  const auto c = gen::make_s27();
  GaStateJustifier justifier(c);
  const State3 all_x(3, V3::kX);
  const auto result =
      justifier.justify(benign_fault(c), all_x, all_x, all_x, config(),
                        util::Deadline::unlimited());
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.sequence.size(), 1u);
}

TEST(GaStateJustifier, HonorsFaultyMachineGoal) {
  // Faulty target on a flip-flop forced by the fault itself: a DFF output
  // stem s-a-1 fault pins the faulty machine's first flip-flop at 1, so a
  // faulty-target of 0 there can never match, while 1 always does.
  const auto c = gen::make_s27();
  const auto ff0 = c.flip_flops()[0];
  const fault::Fault f{ff0, fault::kOutputPin, true};
  GaStateJustifier justifier(c);
  const State3 all_x(3, V3::kX);

  State3 impossible(3, V3::kX);
  impossible[0] = V3::k0;
  const auto bad = justifier.justify(f, all_x, impossible, all_x, config(),
                                     util::Deadline::unlimited());
  EXPECT_FALSE(bad.success);

  State3 forced(3, V3::kX);
  forced[0] = V3::k1;
  const auto good = justifier.justify(f, all_x, forced, all_x, config(),
                                      util::Deadline::unlimited());
  EXPECT_TRUE(good.success);
}

TEST(GaStateJustifier, UsesCurrentGoodState) {
  // With the good machine already in the target state and an all-X faulty
  // target, the first vector trivially "matches" only if the state is
  // preserved; pick a target the current state satisfies after one step by
  // checking success is at least not worse than from all-X.
  const auto c = gen::make_s27();
  util::Rng rng(7);
  test::ReferenceSimulator ref(c);
  for (const auto& v : test::random_sequence(c, rng, 4)) {
    ref.apply(v);
    ref.clock();
  }
  const State3 current = ref.state();
  bool defined = false;
  for (V3 v : current) defined |= v != V3::kX;
  ASSERT_TRUE(defined);

  GaStateJustifier justifier(c);
  const State3 all_x(3, V3::kX);
  // Reaching `current` again from `current` should be easy (many FSM states
  // are revisitable); from all-X it may be harder.  We only require the
  // current-state run to succeed.
  const auto from_current =
      justifier.justify(benign_fault(c), current, all_x, current,
                        config(12, 9), util::Deadline::unlimited());
  EXPECT_TRUE(from_current.success);
}

TEST(GaStateJustifier, RespectsDeadline) {
  const auto c = gen::make_s27();
  GaStateJustifier justifier(c);
  const State3 all_x(3, V3::kX);
  State3 unreachable(3, V3::k1);  // may or may not be reachable; the point
                                  // is the expired deadline stops the GA
  const auto expired = util::Deadline::after_seconds(1e-9);
  while (!expired.expired()) {
  }
  const auto result = justifier.justify(benign_fault(c), unreachable,
                                        unreachable, all_x, config(), expired);
  EXPECT_LE(result.generations_run, 1u);
}

TEST(GaStateJustifier, RejectsBadPopulation) {
  const auto c = gen::make_s27();
  GaStateJustifier justifier(c);
  GaJustifyConfig cfg = config();
  cfg.population = 50;  // not a multiple of 64
  const State3 all_x(3, V3::kX);
  EXPECT_THROW(justifier.justify(benign_fault(c), all_x, all_x, all_x, cfg,
                                 util::Deadline::unlimited()),
               std::invalid_argument);
}

TEST(GaStateJustifier, DeterministicPerSeed) {
  const auto c = gen::make_s27();
  GaStateJustifier justifier(c);
  const State3 all_x(3, V3::kX);
  State3 target(3, V3::kX);
  target[1] = V3::k1;
  const auto a = justifier.justify(benign_fault(c), target, all_x, all_x,
                                   config(8, 33), util::Deadline::unlimited());
  const auto b = justifier.justify(benign_fault(c), target, all_x, all_x,
                                   config(8, 33), util::Deadline::unlimited());
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.sequence, b.sequence);
  EXPECT_DOUBLE_EQ(a.best_fitness, b.best_fitness);
}

TEST(GaStateJustifier, PopulationOf128RunsTwoBatches) {
  const auto c = gen::make_s27();
  GaStateJustifier justifier(c);
  GaJustifyConfig cfg = config();
  cfg.population = 128;
  cfg.generations = 2;
  const State3 all_x(3, V3::kX);
  State3 target(3, V3::k1);
  const auto result = justifier.justify(benign_fault(c), target, all_x, all_x,
                                        cfg, util::Deadline::unlimited());
  if (!result.success) {
    EXPECT_EQ(result.evaluations, 256u);  // 128 x 2 generations
  }
}

}  // namespace
}  // namespace gatpg::hybrid
