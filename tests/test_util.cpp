#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>

#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/tableprint.h"

namespace gatpg::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[i]);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, UniformInHalfOpenInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(sw.millis(), 15.0);
  sw.restart();
  EXPECT_LT(sw.millis(), 15.0);
}

TEST(Deadline, UnlimitedNeverExpires) {
  const auto d = Deadline::unlimited();
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 1e12);
}

TEST(Deadline, NonPositiveLimitMeansUnlimited) {
  EXPECT_FALSE(Deadline::after_seconds(0.0).expired());
  EXPECT_FALSE(Deadline::after_seconds(-1.0).expired());
}

TEST(Deadline, ExpiresAfterLimit) {
  const auto d = Deadline::after_seconds(0.01);
  EXPECT_FALSE(d.expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_TRUE(d.expired());
}

TEST(FormatDuration, MatchesPaperStyle) {
  EXPECT_EQ(format_duration(49.5), "49.5s");
  EXPECT_EQ(format_duration(5.96 * 60), "5.96m");
  EXPECT_EQ(format_duration(2.39 * 3600), "2.39h");
  EXPECT_EQ(format_duration(0.5), "0.5s");
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"a", "bbbb"});
  t.add_row({"xxx", "y"});
  t.add_rule();
  t.add_row({"1", "2"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("a    bbbb"), std::string::npos);
  EXPECT_NE(out.find("xxx  y"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinter, RejectsArityMismatch) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(FormatSig, SignificantDigits) {
  EXPECT_EQ(format_sig(123.456, 3), "123");
  EXPECT_EQ(format_sig(0.0123456, 3), "0.0123");
}

}  // namespace
}  // namespace gatpg::util
