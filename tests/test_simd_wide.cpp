// SIMD-wide path vs 64-bit golden reference.
//
// The width-1 SequenceSimulator path is the retained golden reference; every
// wide consumer must be bit-identical to it:
//
//  * the per-backend gate kernels (scalar / AVX2 / AVX-512) against the
//    PackedV3 reference operations, word for word, at every width,
//  * WideSimulator against SequenceSimulator, slot for slot, including
//    overrides, event-driven re-application, and clocking,
//  * FaultSimulator at widths {2, 4, 8} x threads {1, 4} against the
//    width-1 engines: detection sets *and order*, persisted faulty state,
//    good state, what_if results, and the grouping-invariant stats — over
//    randomized circuits, every registry circuit, and fault counts that are
//    not multiples of 64 (partial slot masks),
//  * the GA state justifier at every width: same success flag, same
//    returned sequence, same fitness and evaluation counts.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "fault/faultlist.h"
#include "fault/faultsim.h"
#include "gen/registry.h"
#include "helpers/random_circuit.h"
#include "hybrid/ga_justify.h"
#include "sim/seqsim.h"
#include "sim/wide.h"
#include "sim/widesim.h"
#include "util/rng.h"

namespace {

using namespace gatpg;
using fault::FaultSimConfig;
using fault::FaultSimulator;
using netlist::GateType;
using sim::PackedV3;
using sim::SimdBackend;
using sim::V3;
using sim::WideKernels;
using sim::WideMask;
using sim::WideSimulator;

// ---------------------------------------------------------------------------
// Kernel backends vs the PackedV3 reference ops.

/// A random well-formed plane word pair (v1 & v0 == 0, some X slots).
PackedV3 random_packed(util::Rng& rng) {
  const std::uint64_t a = rng();
  const std::uint64_t b = rng();
  return {a & b, a & ~b};
}

TEST(SimdWideKernels, BackendsMatchPackedReference) {
  const std::vector<GateType> comb = {
      GateType::kBuf, GateType::kNot,  GateType::kAnd, GateType::kNand,
      GateType::kOr,  GateType::kNor,  GateType::kXor, GateType::kXnor};
  const std::vector<SimdBackend> backends = {
      SimdBackend::kScalar, SimdBackend::kAvx2, SimdBackend::kAvx512};

  // Identity index array for the PackedV3 reference table.
  std::array<netlist::NodeId, 8> idx;
  for (unsigned i = 0; i < idx.size(); ++i) idx[i] = i;

  util::Rng rng(2024);
  bool tested_nondefault = false;
  for (const SimdBackend backend : backends) {
    const WideKernels* k = sim::wide_kernels_for(backend);
    if (k == nullptr) continue;  // not compiled in or CPU lacks it
    if (backend != SimdBackend::kScalar) tested_nondefault = true;

    for (const GateType type : comb) {
      const sim::WideGateFn fn = k->eval[static_cast<std::size_t>(type)];
      ASSERT_NE(fn, nullptr) << k->name;
      const sim::PackedGateFn ref = sim::packed_gate_fn(type);

      const std::size_t max_nf = (type == GateType::kBuf ||
                                  type == GateType::kNot)
                                     ? 1
                                     : 5;
      // Widths include non-multiples of the vector chunk so the scalar
      // tails of the SIMD kernels are exercised too.
      for (const unsigned nw : {1u, 2u, 3u, 4u, 5u, 7u, 8u}) {
        for (std::size_t nf = 1; nf <= max_nf; ++nf) {
          std::vector<std::vector<std::uint64_t>> rows1(nf), rows0(nf);
          std::vector<const std::uint64_t*> in1(nf), in0(nf);
          std::vector<std::vector<PackedV3>> packed(nw);
          for (unsigned w = 0; w < nw; ++w) packed[w].resize(nf);
          for (std::size_t i = 0; i < nf; ++i) {
            rows1[i].resize(nw);
            rows0[i].resize(nw);
            for (unsigned w = 0; w < nw; ++w) {
              const PackedV3 v = random_packed(rng);
              rows1[i][w] = v.v1;
              rows0[i][w] = v.v0;
              packed[w][i] = v;
            }
            in1[i] = rows1[i].data();
            in0[i] = rows0[i].data();
          }

          std::vector<std::uint64_t> out1(nw, ~0ULL), out0(nw, ~0ULL);
          fn(in1.data(), in0.data(), out1.data(), out0.data(), nf, nw);

          for (unsigned w = 0; w < nw; ++w) {
            const PackedV3 expect = ref(packed[w].data(), idx.data(), nf);
            ASSERT_EQ(out1[w], expect.v1)
                << k->name << " " << netlist::gate_type_name(type)
                << " nf=" << nf << " nw=" << nw << " word=" << w;
            ASSERT_EQ(out0[w], expect.v0)
                << k->name << " " << netlist::gate_type_name(type)
                << " nf=" << nf << " nw=" << nw << " word=" << w;
          }
        }
      }
    }
  }
  // This suite's machines all have AVX2, so the dispatch must have found at
  // least one vector backend unless the build forced scalar.
  if (sim::wide_kernels().backend != SimdBackend::kScalar) {
    EXPECT_TRUE(tested_nondefault);
  }
}

// ---------------------------------------------------------------------------
// WideSimulator vs SequenceSimulator, slot for slot.

void expect_all_rows_match(const WideSimulator& wide,
                           const sim::SequenceSimulator& ref,
                           const char* where) {
  const auto& c = wide.circuit();
  for (netlist::NodeId n = 0; n < c.node_count(); ++n) {
    const PackedV3 v = ref.value(n);
    for (unsigned w = 0; w < wide.words(); ++w) {
      ASSERT_EQ(wide.row1(n)[w], v.v1)
          << where << ": node " << c.name(n) << " plane1 word " << w;
      ASSERT_EQ(wide.row0(n)[w], v.v0)
          << where << ": node " << c.name(n) << " plane0 word " << w;
    }
  }
}

TEST(SimdWideSim, MatchesSequenceSimulatorSlotForSlot) {
  // Drives both machines with identical per-slot packed vectors (the wide
  // machine gets each 64-slot pattern replicated into every word) through a
  // session of applies, clocks, override changes, and mid-stream retirement.
  for (const auto& spec : {test::RandomCircuitSpec{4, 3, 30, 3, 101},
                           test::RandomCircuitSpec{6, 5, 90, 4, 102},
                           test::RandomCircuitSpec{5, 0, 40, 3, 103}}) {
    const auto c = test::make_random_circuit(spec);
    const auto num_pi = c.primary_inputs().size();
    const auto faults = fault::collapse(c).faults;

    for (const unsigned nw : {1u, 2u, 8u}) {
      util::Rng rng(spec.seed);
      sim::SequenceSimulator ref(c);
      WideSimulator wide(c, nw);

      // A couple of faults injected with a random (partial) slot mask.
      const std::uint64_t masks[2] = {rng() | 1, rng() | 1};
      for (std::size_t i = 0; i < 2 && i < faults.size(); ++i) {
        const auto& g = faults[std::min<std::size_t>(i * 3, faults.size() - 1)];
        WideMask wm;
        for (unsigned w = 0; w < nw; ++w) wm.w[w] = masks[i];
        if (g.pin == fault::kOutputPin) {
          ref.add_output_override(g.node, g.stuck_at, masks[i]);
          wide.add_output_override(g.node, g.stuck_at, wm);
        } else {
          ref.add_input_override(g.node, static_cast<unsigned>(g.pin),
                                 g.stuck_at, masks[i]);
          wide.add_input_override(g.node, static_cast<unsigned>(g.pin),
                                  g.stuck_at, wm);
        }
      }

      std::vector<PackedV3> pi_words(num_pi);
      std::vector<std::uint64_t> pi1(num_pi * nw), pi0(num_pi * nw);
      for (int t = 0; t < 24; ++t) {
        for (std::size_t i = 0; i < num_pi; ++i) {
          const PackedV3 v = random_packed(rng);
          pi_words[i] = v;
          for (unsigned w = 0; w < nw; ++w) {
            pi1[i * nw + w] = v.v1;
            pi0[i * nw + w] = v.v0;
          }
        }
        ref.apply_packed(pi_words);
        wide.apply_wide(pi1, pi0);
        expect_all_rows_match(wide, ref, "after apply");

        if (t == 9) {
          // Retire a random slot subset mid-session, exactly like the fault
          // simulator does after detections.
          const std::uint64_t keep = rng();
          WideMask wkeep;
          for (unsigned w = 0; w < nw; ++w) wkeep.w[w] = keep;
          ref.retain_override_slots(keep);
          wide.retain_override_slots(wkeep);
        }
        if (t == 15) {
          ref.clear_overrides();
          wide.clear_overrides();
        }

        ref.clock();
        wide.clock();
        expect_all_rows_match(wide, ref, "after clock");
      }

      // state()/state_match_count must agree per slot as well.
      const sim::State3 probe = ref.state(7);
      for (unsigned s = 0; s < 64; ++s) {
        ASSERT_EQ(wide.state(s), ref.state(s));
        ASSERT_EQ(wide.state_match_count(probe, s),
                  ref.state_match_count(probe, s));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// FaultSimulator: wide engines vs the width-1 golden reference.

FaultSimConfig make_config(bool differential, unsigned threads,
                           unsigned width, unsigned window = 32) {
  FaultSimConfig config;
  config.parallel.threads = threads;
  config.differential = differential;
  config.window = window;
  config.width = width;
  return config;
}

std::vector<test::RandomCircuitSpec> specs() {
  std::vector<test::RandomCircuitSpec> out;
  out.push_back({4, 3, 30, 3, 11});
  out.push_back({6, 5, 90, 4, 22});
  out.push_back({8, 8, 160, 6, 33});
  out.push_back({5, 0, 40, 3, 44});  // purely combinational
  return out;
}

std::vector<sim::Sequence> session_chunks(const netlist::Circuit& c,
                                          std::uint64_t seed) {
  util::Rng rng(seed);
  return {test::random_sequence(c, rng, 17, 0.0),
          test::random_sequence(c, rng, 9, 0.25),
          test::random_sequence(c, rng, 41, 0.1)};
}

void expect_sessions_match(const netlist::Circuit& c,
                           const std::vector<fault::Fault>& faults,
                           const std::vector<sim::Sequence>& chunks,
                           FaultSimConfig config_a, FaultSimConfig config_b) {
  FaultSimulator a(c, faults, config_a);
  FaultSimulator b(c, faults, config_b);
  for (std::size_t k = 0; k < chunks.size(); ++k) {
    const auto newly_a = a.run(chunks[k]);
    const auto newly_b = b.run(chunks[k]);
    ASSERT_EQ(newly_a, newly_b)
        << "detection lists differ at chunk " << k << " (width "
        << config_a.width << " vs " << config_b.width << ")";
  }
  ASSERT_EQ(a.detected(), b.detected());
  ASSERT_EQ(a.detected_count(), b.detected_count());
  ASSERT_EQ(a.good_state(), b.good_state());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    ASSERT_EQ(a.fault_state(i), b.fault_state(i))
        << "persisted faulty state differs for fault " << i;
  }
  // Stats that do not depend on fault grouping must be width-invariant.
  ASSERT_EQ(a.stats().frames, b.stats().frames);
  ASSERT_EQ(a.stats().good_gate_evals, b.stats().good_gate_evals);
}

TEST(SimdWideFaultSim, DifferentialMatchesWidth1) {
  for (const auto& spec : specs()) {
    const auto c = test::make_random_circuit(spec);
    const auto faults = fault::collapse(c).faults;
    for (const unsigned width : {2u, 4u, 8u}) {
      expect_sessions_match(c, faults, session_chunks(c, spec.seed),
                            make_config(true, 1, width),
                            make_config(true, 1, 1));
    }
  }
}

TEST(SimdWideFaultSim, DifferentialWideThreadedMatchesWidth1Serial) {
  // Strongest cross-check: wide at 4 threads vs the legacy serial engine.
  for (const auto& spec : specs()) {
    const auto c = test::make_random_circuit(spec);
    const auto faults = fault::collapse(c).faults;
    for (const unsigned width : {2u, 4u, 8u}) {
      expect_sessions_match(c, faults, session_chunks(c, spec.seed),
                            make_config(true, 4, width),
                            make_config(true, 1, 1));
    }
  }
}

TEST(SimdWideFaultSim, FullSweepWideMatchesWidth1) {
  for (const auto& spec : specs()) {
    const auto c = test::make_random_circuit(spec);
    const auto faults = fault::collapse(c).faults;
    for (const unsigned width : {2u, 8u}) {
      expect_sessions_match(c, faults, session_chunks(c, spec.seed),
                            make_config(false, 4, width),
                            make_config(false, 1, 1));
    }
  }
}

TEST(SimdWideFaultSim, CrossEngineWideDifferentialVsFullSweep) {
  // The two wide engines against each other, no width-1 machinery involved.
  const test::RandomCircuitSpec spec{6, 5, 90, 4, 55};
  const auto c = test::make_random_circuit(spec);
  const auto faults = fault::collapse(c).faults;
  expect_sessions_match(c, faults, session_chunks(c, spec.seed),
                        make_config(true, 2, 4),
                        make_config(false, 2, 4));
}

TEST(SimdWideFaultSim, PartialSlotMasks) {
  // Fault counts that are not multiples of 64 leave partial (and at width 8
  // entirely empty) words in every slot mask; detection results must be
  // unaffected.  3 < 64 exercises a single partial word, 70 crosses one
  // word boundary, 130 leaves a 2-bit third word.
  const test::RandomCircuitSpec spec{8, 8, 160, 6, 66};
  const auto c = test::make_random_circuit(spec);
  const auto all = fault::collapse(c).faults;
  for (const std::size_t count : {std::size_t{3}, std::size_t{70},
                                  std::size_t{130}}) {
    if (all.size() < count) continue;
    const std::vector<fault::Fault> subset(all.begin(), all.begin() + count);
    for (const unsigned width : {2u, 8u}) {
      expect_sessions_match(c, subset, session_chunks(c, spec.seed + count),
                            make_config(true, 2, width),
                            make_config(true, 1, 1));
      expect_sessions_match(c, subset, session_chunks(c, spec.seed + count),
                            make_config(false, 1, width),
                            make_config(false, 1, 1));
    }
  }
}

TEST(SimdWideFaultSim, WindowIndependentAtWidth) {
  const test::RandomCircuitSpec spec{6, 5, 90, 4, 7};
  const auto c = test::make_random_circuit(spec);
  const auto faults = fault::collapse(c).faults;
  for (const unsigned window : {1u, 2u, 7u, 64u}) {
    expect_sessions_match(c, faults, session_chunks(c, 99),
                          make_config(true, 2, 4, window),
                          make_config(true, 1, 1));
  }
}

TEST(SimdWideFaultSim, WhatIfMatchesWidth1AndKeepsSessionIntact) {
  for (const auto& spec : specs()) {
    const auto c = test::make_random_circuit(spec);
    const auto faults = fault::collapse(c).faults;
    FaultSimulator wide(c, faults, make_config(true, 4, 4));
    FaultSimulator narrow(c, faults, make_config(true, 1, 1));

    util::Rng rng(spec.seed + 5);
    const auto warmup = test::random_sequence(c, rng, 13, 0.1);
    ASSERT_EQ(wide.run(warmup), narrow.run(warmup));

    std::vector<std::size_t> all(faults.size());
    std::iota(all.begin(), all.end(), 0);
    const auto probe = test::random_sequence(c, rng, 21, 0.15);

    const auto wa = wide.what_if(all, probe);
    const auto wb = narrow.what_if(all, probe);
    EXPECT_EQ(wa.detected, wb.detected);
    EXPECT_EQ(wa.state_effects, wb.state_effects);

    // Subset query with a non-multiple-of-64 count.
    const std::vector<std::size_t> subset(
        all.begin(), all.begin() + std::min<std::size_t>(all.size(), 7));
    const auto sa = wide.what_if(subset, probe);
    const auto sb = narrow.what_if(subset, probe);
    EXPECT_EQ(sa.detected, sb.detected);
    EXPECT_EQ(sa.state_effects, sb.state_effects);

    // The wide full-sweep what_if path as well.
    FaultSimulator wide_fs(c, faults, make_config(false, 2, 8));
    FaultSimulator narrow_fs(c, faults, make_config(false, 1, 1));
    ASSERT_EQ(wide_fs.run(warmup), narrow_fs.run(warmup));
    const auto fa = wide_fs.what_if(subset, probe);
    const auto fb = narrow_fs.what_if(subset, probe);
    EXPECT_EQ(fa.detected, fb.detected);
    EXPECT_EQ(fa.state_effects, fb.state_effects);

    // what_if must not have touched the sessions.
    const auto more = test::random_sequence(c, rng, 11, 0.0);
    EXPECT_EQ(wide.run(more), narrow.run(more));
    EXPECT_EQ(wide.good_state(), narrow.good_state());
    for (std::size_t i = 0; i < faults.size(); ++i) {
      EXPECT_EQ(wide.fault_state(i), narrow.fault_state(i));
    }
  }
}

TEST(SimdWideFaultSim, StatsThreadInvariantAtFixedWidth) {
  // At a fixed width *all* counters are thread-count-independent; across
  // widths only the grouping-independent subset is comparable.
  const test::RandomCircuitSpec spec{6, 5, 90, 4, 13};
  const auto c = test::make_random_circuit(spec);
  const auto faults = fault::collapse(c).faults;

  auto run_session = [&](unsigned threads, unsigned width) {
    FaultSimulator fs(c, faults, make_config(true, threads, width, 8));
    for (const auto& chunk : session_chunks(c, 42)) fs.run(chunk);
    return fs.stats();
  };
  for (const unsigned width : {2u, 4u, 8u}) {
    const auto s1 = run_session(1, width);
    const auto s4 = run_session(4, width);
    EXPECT_EQ(s1.gate_evals, s4.gate_evals) << "width " << width;
    EXPECT_EQ(s1.good_gate_evals, s4.good_gate_evals) << "width " << width;
    EXPECT_EQ(s1.frames, s4.frames) << "width " << width;
    EXPECT_EQ(s1.group_vectors, s4.group_vectors) << "width " << width;
    EXPECT_EQ(s1.group_vectors_skipped, s4.group_vectors_skipped)
        << "width " << width;
    EXPECT_EQ(s1.groups_repacked, s4.groups_repacked) << "width " << width;
    EXPECT_GT(s1.gate_evals, 0u);
    EXPECT_EQ(s1.frames, 17u + 9u + 41u);
  }
}

TEST(SimdWideFaultSim, EveryRegistryCircuit) {
  // One bounded differential session per registry circuit: a sampled fault
  // subset (deliberately not a multiple of 64) over a short mixed-X
  // sequence, wide-threaded vs the width-1 serial reference.
  for (const std::string& name : gen::registry_names()) {
    const auto c = gen::make_circuit(name);
    const auto all = fault::collapse(c).faults;
    // Sample <= 97 faults, stride-spread across the circuit.
    const std::size_t target = std::min<std::size_t>(all.size(), 97);
    const std::size_t stride = all.size() / target ? all.size() / target : 1;
    std::vector<fault::Fault> faults;
    for (std::size_t i = 0; i < all.size() && faults.size() < target;
         i += stride) {
      faults.push_back(all[i]);
    }
    util::Rng rng(std::hash<std::string>{}(name));
    const std::vector<sim::Sequence> chunks = {
        test::random_sequence(c, rng, 8, 0.0),
        test::random_sequence(c, rng, 6, 0.2)};
    expect_sessions_match(c, faults, chunks, make_config(true, 4, 4),
                          make_config(true, 1, 1));
  }
}

// ---------------------------------------------------------------------------
// GA state justification: wide fitness path vs the 64-slot evaluator.

TEST(SimdWideGa, JustifyBitIdenticalAcrossWidthsAndThreads) {
  const auto c = gen::make_circuit("s27");
  util::Rng rng(5);
  sim::SequenceSimulator ref(c);
  for (const auto& v : test::random_sequence(c, rng, 6)) {
    ref.apply_vector(v);
    ref.clock();
  }
  const sim::State3 target = ref.state();
  const sim::State3 all_x(c.flip_flops().size(), V3::kX);
  const fault::Fault benign{c.primary_outputs()[0], fault::kOutputPin, false};

  auto run = [&](unsigned width, unsigned threads, const sim::State3& goal) {
    hybrid::GaJustifyConfig config;
    config.population = 256;  // several 64-blocks even at width 8
    config.generations = 6;
    config.sequence_length = 8;
    config.seed = 9;
    config.width = width;
    config.parallel.threads = threads;
    return hybrid::GaStateJustifier(c).justify(benign, goal, all_x, all_x,
                                               config,
                                               util::Deadline::unlimited());
  };

  const auto baseline = run(1, 1, target);
  ASSERT_TRUE(baseline.success);
  for (const unsigned width : {2u, 4u, 8u}) {
    for (const unsigned threads : {1u, 4u}) {
      const auto got = run(width, threads, target);
      ASSERT_EQ(got.success, baseline.success)
          << "width " << width << " threads " << threads;
      ASSERT_EQ(got.sequence, baseline.sequence)
          << "width " << width << " threads " << threads;
      ASSERT_EQ(got.best_fitness, baseline.best_fitness);
      ASSERT_EQ(got.evaluations, baseline.evaluations);
      ASSERT_EQ(got.generations_run, baseline.generations_run);
    }
  }

  // Failure path: an unreachable goal makes the GA run all generations, so
  // fitness arithmetic and evolution (selection, crossover, mutation feed
  // off the fitness values) must match across widths as well.
  const auto ff0 = c.flip_flops()[0];
  const fault::Fault pin_high{ff0, fault::kOutputPin, true};
  sim::State3 impossible(c.flip_flops().size(), V3::kX);
  impossible[0] = V3::k0;
  auto run_fail = [&](unsigned width, unsigned threads) {
    hybrid::GaJustifyConfig config;
    config.population = 128;
    config.generations = 5;
    config.sequence_length = 6;
    config.seed = 17;
    config.width = width;
    config.parallel.threads = threads;
    return hybrid::GaStateJustifier(c).justify(pin_high, all_x, impossible,
                                               all_x, config,
                                               util::Deadline::unlimited());
  };
  const auto fail_base = run_fail(1, 1);
  EXPECT_FALSE(fail_base.success);
  for (const unsigned width : {2u, 8u}) {
    for (const unsigned threads : {1u, 4u}) {
      const auto got = run_fail(width, threads);
      EXPECT_EQ(got.success, fail_base.success);
      EXPECT_EQ(got.sequence, fail_base.sequence);
      EXPECT_EQ(got.best_fitness, fail_base.best_fitness);
      EXPECT_EQ(got.evaluations, fail_base.evaluations);
      EXPECT_EQ(got.generations_run, fail_base.generations_run);
    }
  }
}

}  // namespace
