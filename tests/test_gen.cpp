#include <gtest/gtest.h>

#include "gen/am2910.h"
#include "gen/analogs.h"
#include "gen/divider.h"
#include "gen/fsmgen.h"
#include "gen/multiplier.h"
#include "gen/pcont.h"
#include "gen/registry.h"
#include "gen/s27.h"
#include "netlist/depth.h"
#include "sim/seqsim.h"
#include "util/rng.h"

namespace gatpg::gen {
namespace {

using sim::V3;
using sim::Vector3;

// ---------- driving helpers ----------

Vector3 bits_vector(const netlist::Circuit& c,
                    const std::vector<std::pair<std::string, unsigned>>& buses,
                    const std::vector<std::pair<std::string, bool>>& scalars) {
  Vector3 v(c.primary_inputs().size(), V3::k0);
  auto set = [&](const std::string& name, bool value) {
    const auto n = c.find(name);
    ASSERT_NE(n, netlist::kNoNode) << name;
    const int idx = c.pi_index(n);
    ASSERT_GE(idx, 0) << name;
    v[static_cast<std::size_t>(idx)] = value ? V3::k1 : V3::k0;
  };
  for (const auto& [prefix, value] : buses) {
    for (unsigned bit = 0; bit < 32; ++bit) {
      const auto n = c.find(prefix + std::to_string(bit));
      if (n == netlist::kNoNode) break;
      const int idx = c.pi_index(n);
      v[static_cast<std::size_t>(idx)] =
          ((value >> bit) & 1) ? V3::k1 : V3::k0;
    }
  }
  for (const auto& [name, value] : scalars) set(name, value);
  return v;
}

unsigned read_bus(const netlist::Circuit& c, const sim::SequenceSimulator& s,
                  const std::string& prefix, unsigned width) {
  unsigned value = 0;
  for (unsigned bit = 0; bit < width; ++bit) {
    const auto n = c.find(prefix + std::to_string(bit));
    EXPECT_NE(n, netlist::kNoNode) << prefix << bit;
    if (s.scalar_value(n) == V3::k1) value |= 1u << bit;
    EXPECT_NE(s.scalar_value(n), V3::kX) << prefix << bit << " is X";
  }
  return value;
}

// ---------- multiplier ----------

int run_multiply(const netlist::Circuit& c, unsigned width, int a, int b) {
  sim::SequenceSimulator s(c);
  const unsigned mask = width >= 32 ? ~0u : (1u << width) - 1;
  // Reset, then start with operands, then run until done.
  s.apply_vector(bits_vector(c, {}, {{"reset", true}, {"start", false}}));
  s.clock();
  s.apply_vector(bits_vector(
      c,
      {{"a", static_cast<unsigned>(a) & mask},
       {"b", static_cast<unsigned>(b) & mask}},
      {{"reset", false}, {"start", true}}));
  s.clock();
  for (unsigned cycle = 0; cycle < width + 2; ++cycle) {
    s.apply_vector(bits_vector(c, {}, {{"reset", false}, {"start", false}}));
    if (s.scalar_value(c.find("done")) == V3::k1) break;
    s.clock();
  }
  EXPECT_EQ(s.scalar_value(c.find("done")), V3::k1);
  const unsigned lo = read_bus(c, s, "p", width);
  const unsigned hi_start = width;
  unsigned hi = 0;
  for (unsigned bit = 0; bit < width; ++bit) {
    if (s.scalar_value(c.find("p" + std::to_string(hi_start + bit))) ==
        V3::k1) {
      hi |= 1u << bit;
    }
  }
  const unsigned raw = (hi << width) | lo;
  // Sign-extend the 2W-bit product.
  const unsigned pw = 2 * width;
  int product = static_cast<int>(raw);
  if (pw < 32 && (raw & (1u << (pw - 1)))) {
    product = static_cast<int>(raw | (~0u << pw));
  }
  return product;
}

TEST(Multiplier, ExhaustiveFourBitSigned) {
  const auto c = make_multiplier(4);
  for (int a = -8; a <= 7; ++a) {
    for (int b = -8; b <= 7; ++b) {
      ASSERT_EQ(run_multiply(c, 4, a, b), a * b) << a << " * " << b;
    }
  }
}

TEST(Multiplier, SixteenBitSpotChecks) {
  const auto c = make_multiplier(16);
  const std::pair<int, int> cases[] = {
      {0, 0},     {1, 1},      {-1, 1},   {-1, -1},     {1234, 567},
      {-321, 99}, {100, -250}, {32767, 1}, {-32768, 1}, {181, -181},
  };
  for (const auto& [a, b] : cases) {
    ASSERT_EQ(run_multiply(c, 16, a, b), a * b) << a << " * " << b;
  }
}

TEST(Multiplier, ProfileIsReasonable) {
  const auto c = make_multiplier(16);
  const auto st = netlist::stats_of(c);
  EXPECT_EQ(st.inputs, 2u + 32u);
  EXPECT_EQ(st.outputs, 33u);
  EXPECT_GT(st.flip_flops, 40u);
  EXPECT_GT(st.gates, 300u);
}

// ---------- divider ----------

std::pair<unsigned, unsigned> run_divide(const netlist::Circuit& c,
                                         unsigned width, unsigned a,
                                         unsigned b, unsigned max_cycles) {
  sim::SequenceSimulator s(c);
  s.apply_vector(bits_vector(c, {}, {{"reset", true}, {"start", false}}));
  s.clock();
  s.apply_vector(
      bits_vector(c, {{"a", a}, {"b", b}}, {{"reset", false}, {"start", true}}));
  s.clock();
  for (unsigned cycle = 0; cycle < max_cycles; ++cycle) {
    s.apply_vector(bits_vector(c, {}, {{"reset", false}, {"start", false}}));
    if (s.scalar_value(c.find("done")) == V3::k1) break;
    s.clock();
  }
  EXPECT_EQ(s.scalar_value(c.find("done")), V3::k1) << a << "/" << b;
  return {read_bus(c, s, "q_out", width), read_bus(c, s, "r_out", width)};
}

TEST(Divider, ExhaustiveFourBit) {
  const auto c = make_divider(4);
  for (unsigned a = 0; a < 16; ++a) {
    for (unsigned b = 1; b < 16; ++b) {
      const auto [q, r] = run_divide(c, 4, a, b, 20);
      ASSERT_EQ(q, a / b) << a << "/" << b;
      ASSERT_EQ(r, a % b) << a << "/" << b;
    }
  }
}

TEST(Divider, DivideByZeroTerminates) {
  const auto c = make_divider(4);
  const auto [q, r] = run_divide(c, 4, 9, 0, 5);
  EXPECT_EQ(q, 0u);
  EXPECT_EQ(r, 9u);
}

TEST(Divider, SixteenBitSpotChecks) {
  const auto c = make_divider(16);
  const std::tuple<unsigned, unsigned> cases[] = {
      {1000, 7}, {65535, 255}, {500, 500}, {3, 10}, {40000, 1999},
  };
  for (const auto& [a, b] : cases) {
    const auto [q, r] = run_divide(c, 16, a, b, a / b + 4);
    ASSERT_EQ(q, a / b) << a << "/" << b;
    ASSERT_EQ(r, a % b) << a << "/" << b;
  }
}

// ---------- Am2910 ----------

struct Am2910Driver {
  explicit Am2910Driver(const netlist::Circuit& circuit)
      : c(circuit), s(circuit) {}

  /// Applies one microinstruction; returns Y before the clock edge.
  unsigned step(Am2910Op op, unsigned d = 0, bool pass = true,
                bool load_r = false, bool ci = true) {
    Vector3 v(c.primary_inputs().size(), V3::k0);
    auto set_bit = [&](const std::string& name, bool value) {
      v[static_cast<std::size_t>(c.pi_index(c.find(name)))] =
          value ? V3::k1 : V3::k0;
    };
    for (unsigned bit = 0; bit < 4; ++bit) {
      set_bit("i" + std::to_string(bit),
              (static_cast<unsigned>(op) >> bit) & 1);
    }
    for (unsigned bit = 0; bit < 12; ++bit) {
      set_bit("d" + std::to_string(bit), (d >> bit) & 1);
    }
    // pass when ccen_n high or cc_n low.
    set_bit("ccen_n", false);
    set_bit("cc_n", !pass);
    set_bit("rld_n", !load_r);
    set_bit("ci", ci);
    s.apply_vector(v);
    unsigned y = 0;
    for (unsigned bit = 0; bit < 12; ++bit) {
      if (s.scalar_value(c.find("y" + std::to_string(bit))) == V3::k1) {
        y |= 1u << bit;
      }
    }
    s.clock();
    return y;
  }

  const netlist::Circuit& c;
  sim::SequenceSimulator s;
};

TEST(Am2910, JzResetsAndContAdvances) {
  const auto c = make_am2910();
  Am2910Driver drv(c);
  EXPECT_EQ(drv.step(Am2910Op::kJz), 0u);       // Y = 0, uPC <- 1
  EXPECT_EQ(drv.step(Am2910Op::kCont), 1u);     // Y = uPC = 1
  EXPECT_EQ(drv.step(Am2910Op::kCont), 2u);
  EXPECT_EQ(drv.step(Am2910Op::kCont, 0, true, false, /*ci=*/false), 3u);
  // ci = 0: uPC <- Y, so the address repeats.
  EXPECT_EQ(drv.step(Am2910Op::kCont), 3u);
}

TEST(Am2910, ConditionalJumpTakesDWhenPass) {
  const auto c = make_am2910();
  Am2910Driver drv(c);
  drv.step(Am2910Op::kJz);
  EXPECT_EQ(drv.step(Am2910Op::kCjp, 0x123, /*pass=*/true), 0x123u);
  EXPECT_EQ(drv.step(Am2910Op::kCont), 0x124u);
  EXPECT_EQ(drv.step(Am2910Op::kCjp, 0x200, /*pass=*/false), 0x125u);
}

TEST(Am2910, SubroutineCallAndReturn) {
  const auto c = make_am2910();
  Am2910Driver drv(c);
  drv.step(Am2910Op::kJz);             // uPC = 1
  drv.step(Am2910Op::kCont);           // Y=1, uPC=2
  // CJS pass: push uPC (=2+... careful: push pushes the *incremented* PC of
  // the call site, i.e. the current uPC register value).
  EXPECT_EQ(drv.step(Am2910Op::kCjs, 0x40, true), 0x40u);  // call
  EXPECT_EQ(drv.step(Am2910Op::kCont), 0x41u);
  // CRTN pass: return to pushed address.
  const unsigned ret = drv.step(Am2910Op::kCrtn, 0, true);
  EXPECT_EQ(ret, 2u);
}

TEST(Am2910, LoopWithCounter) {
  const auto c = make_am2910();
  Am2910Driver drv(c);
  drv.step(Am2910Op::kJz);                    // uPC = 1
  drv.step(Am2910Op::kLdct, 2, true);         // R <- 2, uPC = 2
  drv.step(Am2910Op::kPush, 0, false);        // push uPC(=2), fail: no R load
  // RFCT: while R != 0 jump to TOS (=2), decrementing.
  EXPECT_EQ(drv.step(Am2910Op::kRfct), 2u);   // R 2 -> 1
  EXPECT_EQ(drv.step(Am2910Op::kRfct), 2u);   // R 1 -> 0
  // R == 0: fall through to uPC and pop.
  const unsigned fall = drv.step(Am2910Op::kRfct);
  EXPECT_NE(fall, 2u);
}

TEST(Am2910, RldLoadsCounterAnyTime) {
  const auto c = make_am2910();
  Am2910Driver drv(c);
  drv.step(Am2910Op::kJz);
  drv.step(Am2910Op::kCont, 0x7, true, /*load_r=*/true);  // RLD_n low
  // RPCT with R != 0 jumps to D.
  EXPECT_EQ(drv.step(Am2910Op::kRpct, 0x99), 0x99u);
}

TEST(Am2910, EnableOutputsFollowInstruction) {
  const auto c = make_am2910();
  Am2910Driver drv(c);
  drv.step(Am2910Op::kJz);
  auto read = [&](const char* name) {
    return drv.s.scalar_value(drv.c.find(name));
  };
  // JMAP: map_n low (0), pl_n high; CJV: vect_n low; CONT: pl_n low.
  drv.step(Am2910Op::kJmap, 0x10);
  // Outputs are combinational on the *current* instruction, so apply and
  // inspect before clocking.
  sim::Vector3 v(drv.c.primary_inputs().size(), V3::k0);
  auto set_op = [&](Am2910Op op) {
    for (unsigned bit = 0; bit < 4; ++bit) {
      v[static_cast<std::size_t>(
          drv.c.pi_index(drv.c.find("i" + std::to_string(bit))))] =
          ((static_cast<unsigned>(op) >> bit) & 1) ? V3::k1 : V3::k0;
    }
  };
  set_op(Am2910Op::kJmap);
  drv.s.apply_vector(v);
  EXPECT_EQ(read("map_n"), V3::k0);
  EXPECT_EQ(read("vect_n"), V3::k1);
  EXPECT_EQ(read("pl_n"), V3::k1);
  set_op(Am2910Op::kCjv);
  drv.s.apply_vector(v);
  EXPECT_EQ(read("map_n"), V3::k1);
  EXPECT_EQ(read("vect_n"), V3::k0);
  EXPECT_EQ(read("pl_n"), V3::k1);
  set_op(Am2910Op::kCont);
  drv.s.apply_vector(v);
  EXPECT_EQ(read("map_n"), V3::k1);
  EXPECT_EQ(read("vect_n"), V3::k1);
  EXPECT_EQ(read("pl_n"), V3::k0);
}

TEST(Am2910, StackFillsAndReportsFull) {
  const auto c = make_am2910();
  Am2910Driver drv(c);
  drv.step(Am2910Op::kJz);
  auto full_n = [&] {
    return drv.s.scalar_value(drv.c.find("full_n"));
  };
  for (int push = 0; push < 5; ++push) {
    EXPECT_EQ(full_n(), V3::k1) << "push " << push;
    drv.step(Am2910Op::kPush, 0, false);
  }
  // After five pushes the stack is full.
  drv.step(Am2910Op::kCont);
  EXPECT_EQ(full_n(), V3::k0);
  // A sixth push must not corrupt the pointer: popping five times returns
  // to empty.
  drv.step(Am2910Op::kPush, 0, false);
  for (int pop = 0; pop < 5; ++pop) {
    drv.step(Am2910Op::kCrtn, 0, true);
  }
  drv.step(Am2910Op::kCont);
  EXPECT_EQ(full_n(), V3::k1);
}

TEST(Am2910, PopOnEmptyStackHolds) {
  const auto c = make_am2910();
  Am2910Driver drv(c);
  drv.step(Am2910Op::kJz);
  // CRTN pass with empty stack: SP must stay 0 (no underflow wraparound to
  // "full").
  drv.step(Am2910Op::kCrtn, 0, true);
  drv.step(Am2910Op::kCrtn, 0, true);
  EXPECT_EQ(drv.s.scalar_value(drv.c.find("full_n")), V3::k1);
}

TEST(Am2910, TwbThreeWayBranch) {
  const auto c = make_am2910();
  Am2910Driver drv(c);
  drv.step(Am2910Op::kJz);                   // uPC = 1
  drv.step(Am2910Op::kLdct, 1, true);        // R <- 1, uPC = 2
  drv.step(Am2910Op::kPush, 0, false);       // TOS = 2, uPC = 3
  // TWB fail, R = 1 != 0: loop to TOS, decrement.
  EXPECT_EQ(drv.step(Am2910Op::kTwb, 0x70, false), 2u);
  // TWB fail, R = 0: exit via D, pop.
  EXPECT_EQ(drv.step(Am2910Op::kTwb, 0x70, false), 0x70u);
  // TWB pass: continue via uPC.
  const unsigned y = drv.step(Am2910Op::kTwb, 0x70, true);
  EXPECT_NE(y, 0x70u);
}

TEST(Am2910, JsrpSelectsRegisterOnFail) {
  const auto c = make_am2910();
  Am2910Driver drv(c);
  drv.step(Am2910Op::kJz);
  drv.step(Am2910Op::kLdct, 0x2A, true);     // R <- 0x2A
  EXPECT_EQ(drv.step(Am2910Op::kJsrp, 0x99, false), 0x2Au);  // fail -> R
  drv.step(Am2910Op::kJz);
  drv.step(Am2910Op::kLdct, 0x2A, true);
  EXPECT_EQ(drv.step(Am2910Op::kJsrp, 0x99, true), 0x99u);   // pass -> D
}

TEST(Am2910, ProfileMatchesArchitecture) {
  const auto c = make_am2910();
  const auto st = netlist::stats_of(c);
  EXPECT_EQ(st.inputs, 4u + 12u + 4u);
  EXPECT_EQ(st.flip_flops, 12u + 12u + 3u + 5u * 12u);
  EXPECT_EQ(st.outputs, 12u + 4u);
  EXPECT_GT(st.gates, 500u);
}

// ---------- pcont ----------

TEST(Pcont, GrantsHighestPriorityRequest) {
  const auto c = make_pcont();
  sim::SequenceSimulator s(c);
  s.apply_vector(bits_vector(c, {}, {{"reset", true}}));
  s.clock();
  // Configure a duration and request channels 2 and 5; channel 2 must win.
  s.apply_vector(bits_vector(c, {{"dur", 1}},
                             {{"reset", false}, {"cfg", true},
                              {"req2", true}, {"req5", true}}));
  s.clock();  // requests latch into pend, dur_reg written
  s.apply_vector(bits_vector(c, {}, {{"reset", false}}));
  s.clock();  // grant -> active
  EXPECT_EQ(s.scalar_value(c.find("ack2")), V3::k1);
  EXPECT_EQ(s.scalar_value(c.find("ack5")), V3::k0);
  EXPECT_EQ(s.scalar_value(c.find("busy")), V3::k1);
}

TEST(Pcont, GrantEventuallyReleases) {
  // Grant duration is phase-dependent but bounded by 2^timer_bits; the
  // channel must activate and then release within that bound.
  const auto c = make_pcont();
  sim::SequenceSimulator s(c);
  s.apply_vector(bits_vector(c, {}, {{"reset", true}}));
  s.clock();
  s.apply_vector(bits_vector(c, {{"dur", 3}},
                             {{"reset", false}, {"cfg", true},
                              {"req0", true}}));
  s.clock();
  bool activated = false, released = false;
  int active_cycles = 0;
  for (int cycle = 0; cycle < 24 && !released; ++cycle) {
    s.apply_vector(bits_vector(c, {}, {{"reset", false}}));
    const bool on = s.scalar_value(c.find("ack0")) == V3::k1;
    if (on) {
      activated = true;
      ++active_cycles;
      EXPECT_EQ(s.scalar_value(c.find("busy")), V3::k1);
    } else if (activated) {
      released = true;
    }
    s.clock();
  }
  EXPECT_TRUE(activated);
  EXPECT_TRUE(released);
  EXPECT_GE(active_cycles, 1);
  EXPECT_LE(active_cycles, 17);
}

TEST(Pcont, SecondChannelRunsAfterFirstFinishes) {
  const auto c = make_pcont();
  sim::SequenceSimulator s(c);
  s.apply_vector(bits_vector(c, {}, {{"reset", true}}));
  s.clock();
  s.apply_vector(bits_vector(c, {{"dur", 1}},
                             {{"reset", false}, {"cfg", true},
                              {"req1", true}, {"req4", true}}));
  s.clock();
  bool saw4 = false;
  for (int cycle = 0; cycle < 40; ++cycle) {
    s.apply_vector(bits_vector(c, {}, {{"reset", false}}));
    if (s.scalar_value(c.find("ack4")) == V3::k1) {
      saw4 = true;
      EXPECT_EQ(s.scalar_value(c.find("ack1")), V3::k0)
          << "mutual exclusion violated";
    }
    s.clock();
  }
  EXPECT_TRUE(saw4);
}

TEST(Pcont, PrescalerFreeRunsAfterReset) {
  const auto c = make_pcont();
  sim::SequenceSimulator s(c);
  s.apply_vector(bits_vector(c, {}, {{"reset", true}}));
  s.clock();
  // phase = top prescaler bit: toggles with a known period (2^(bits+1)).
  int transitions = 0;
  V3 last = s.scalar_value(c.find("phase"));
  for (int cycle = 0; cycle < 140; ++cycle) {
    s.apply_vector(bits_vector(c, {}, {{"reset", false}}));
    const V3 now = s.scalar_value(c.find("phase"));
    if (now != last) ++transitions;
    last = now;
    s.clock();
  }
  EXPECT_GE(transitions, 2);  // 6-bit prescaler: period 64, toggles at 32
}

// ---------- FSM generator ----------

TEST(FsmGen, BehaviourMatchesTables) {
  FsmSpec spec;
  spec.num_states = 11;
  spec.num_inputs = 2;
  spec.num_outputs = 3;
  spec.seed = 77;
  spec.name = "fsm_check";
  const auto c = make_moore_fsm(spec);
  const FsmTables tables = fsm_tables(spec);

  sim::SequenceSimulator s(c);
  util::Rng rng(5);
  // Reset to state 0, then walk randomly and predict outputs/states.
  Vector3 v(c.primary_inputs().size(), V3::k0);
  v[0] = V3::k1;  // reset
  s.apply_vector(v);
  s.clock();
  unsigned state = 0;
  for (int step = 0; step < 40; ++step) {
    const unsigned iv = static_cast<unsigned>(rng.below(4));
    Vector3 in(c.primary_inputs().size(), V3::k0);
    in[1] = iv & 1 ? V3::k1 : V3::k0;
    in[2] = iv & 2 ? V3::k1 : V3::k0;
    s.apply_vector(in);
    for (unsigned k = 0; k < spec.num_outputs; ++k) {
      const auto out = c.find("out" + std::to_string(k));
      ASSERT_EQ(s.scalar_value(out),
                tables.outputs[state][k] ? V3::k1 : V3::k0)
          << "state " << state << " output " << k;
    }
    s.clock();
    state = tables.next_state[state][iv];
  }
}

TEST(FsmGen, RejectsBadSpecs) {
  FsmSpec spec;
  spec.num_states = 1;
  EXPECT_THROW(make_moore_fsm(spec), std::invalid_argument);
  spec.num_states = 8;
  spec.num_inputs = 6;
  EXPECT_THROW(make_moore_fsm(spec), std::invalid_argument);
}

// ---------- analogs & registry ----------

TEST(Analogs, SuiteBuildsWithSaneProfiles) {
  for (const AnalogSpec& spec : analog_suite()) {
    const auto c = make_analog(spec);
    const auto st = netlist::stats_of(c);
    EXPECT_GT(st.flip_flops, 0u) << spec.name;
    EXPECT_GT(st.gates, 20u) << spec.name;
    EXPECT_EQ(st.inputs, spec.data_inputs + 1) << spec.name;  // + reset
    EXPECT_EQ(st.outputs, spec.outputs) << spec.name;
    EXPECT_GE(netlist::sequential_depth(c), 1u) << spec.name;
  }
}

TEST(Analogs, DeterministicConstruction) {
  const auto& spec = analog_suite().front();
  const auto c1 = make_analog(spec);
  const auto c2 = make_analog(spec);
  EXPECT_EQ(c1.node_count(), c2.node_count());
  for (netlist::NodeId n = 0; n < c1.node_count(); ++n) {
    EXPECT_EQ(c1.name(n), c2.name(n));
    EXPECT_EQ(c1.type(n), c2.type(n));
  }
}

TEST(Registry, AllNamesBuild) {
  for (const std::string& name : registry_names()) {
    EXPECT_NO_THROW(make_circuit(name)) << name;
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_circuit("nonexistent"), std::out_of_range);
}

TEST(Registry, ContainsPaperSuites) {
  const auto names = registry_names();
  auto has = [&](const char* n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("s27"));
  EXPECT_TRUE(has("g298"));
  EXPECT_TRUE(has("g1494"));
  EXPECT_TRUE(has("am2910"));
  EXPECT_TRUE(has("div16"));
  EXPECT_TRUE(has("mult16"));
  EXPECT_TRUE(has("pcont2"));
}

}  // namespace
}  // namespace gatpg::gen
