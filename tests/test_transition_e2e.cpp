// Transition-fault ATPG end-to-end differential suite: on every registry
// circuit, a backtrack-bounded hybrid run over the transition universe must
// detect faults and be bit-identical — tests, segments, fault statuses,
// every counter, all three digests, and the per-target observer stream —
// across fault-sim thread count, targeting lane count, SIMD group width,
// and the differential/full-sweep engine choice.  Also covers mid-pass
// kill-and-resume, the snapshot fault-model identity check, worker-count
// invariance of sharded transition jobs, and the daemon's fault_model= key.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "fault/faultlist.h"
#include "gen/registry.h"
#include "hybrid/hybrid_atpg.h"
#include "netlist/depth.h"
#include "serialize/archive.h"
#include "service/daemon.h"
#include "service/shard.h"
#include "session/fault_manager.h"
#include "session/observer.h"
#include "session/session.h"
#include "util/rng.h"

namespace gatpg {
namespace {

/// Two-pass GA+deterministic schedule bounded by backtracks and generations
/// alone — every run is a pure function of (circuit, fault list, seed), so
/// execution-shape variants are comparable bit for bit.
hybrid::HybridConfig transition_config() {
  hybrid::HybridConfig cfg;
  cfg.fault_model = fault::FaultUniverse::kTransition;
  session::PassConfig ga;
  ga.mode = session::JustifyMode::kGenetic;
  ga.time_limit_s = 0.0;
  ga.max_backtracks = 200;
  ga.ga_population = 64;
  ga.ga_generations = 2;
  ga.seq_len_multiplier = 2.0;
  session::PassConfig det;
  det.mode = session::JustifyMode::kDeterministic;
  det.time_limit_s = 0.0;
  det.max_backtracks = 200;
  cfg.schedule.passes = {ga, det};
  cfg.max_solutions_per_fault = 4;
  cfg.seed = 7;
  cfg.parallel.threads = 1;
  cfg.state_store.enabled = true;
  cfg.target_parallel.lanes = 1;
  return cfg;
}

session::SessionConfig session_config(const hybrid::HybridConfig& cfg) {
  session::SessionConfig scfg;
  scfg.fault_model = cfg.fault_model;
  scfg.faultsim = cfg.faultsim;
  scfg.faultsim.parallel = cfg.parallel;
  scfg.state_store = cfg.state_store;
  scfg.target_parallel = cfg.target_parallel;
  return scfg;
}

fault::FaultList capped_transition_faults(const netlist::Circuit& c,
                                          std::size_t cap) {
  fault::FaultList full = fault::collapse(c, fault::FaultUniverse::kTransition);
  if (full.size() > cap) {
    full.faults.resize(cap);
    full.class_sizes.resize(cap);
  }
  return full;
}

class TargetTrace : public session::ProgressObserver {
 public:
  void on_target_end(const session::Session&,
                     const session::TargetEffort& effort) override {
    efforts.push_back(effort);
  }
  std::vector<session::TargetEffort> efforts;
};

struct RunOutput {
  session::SessionResult result;
  std::vector<session::TargetEffort> trace;
};

RunOutput run_once(const netlist::Circuit& c, const fault::FaultList& faults,
                   const hybrid::HybridConfig& cfg) {
  session::Session s(c, faults, session_config(cfg));
  TargetTrace trace;
  s.set_observer(&trace);
  util::Rng rng(cfg.seed);
  hybrid::HybridEngine engine(c, cfg, netlist::sequential_depth(c), rng);
  RunOutput out;
  out.result = s.run(engine, cfg.schedule);
  out.trace = std::move(trace.efforts);
  return out;
}

void expect_counters_equal(const session::EngineCounters& a,
                           const session::EngineCounters& b) {
  EXPECT_EQ(a.targeted, b.targeted);
  EXPECT_EQ(a.forward_solutions, b.forward_solutions);
  EXPECT_EQ(a.ga_invocations, b.ga_invocations);
  EXPECT_EQ(a.ga_successes, b.ga_successes);
  EXPECT_EQ(a.det_justify_calls, b.det_justify_calls);
  EXPECT_EQ(a.det_justify_successes, b.det_justify_successes);
  EXPECT_EQ(a.verify_failures, b.verify_failures);
  EXPECT_EQ(a.no_justification_needed, b.no_justification_needed);
  EXPECT_EQ(a.aborted_faults, b.aborted_faults);
  EXPECT_EQ(a.committed_tests, b.committed_tests);
  EXPECT_EQ(a.det_decisions, b.det_decisions);
  EXPECT_EQ(a.det_backtracks, b.det_backtracks);
  EXPECT_EQ(a.det_gate_evals, b.det_gate_evals);
  EXPECT_EQ(a.det_events, b.det_events);
  EXPECT_EQ(a.det_model_builds, b.det_model_builds);
  EXPECT_EQ(a.det_model_acquires, b.det_model_acquires);
  EXPECT_EQ(a.store.seq_hits, b.store.seq_hits);
  EXPECT_EQ(a.store.seq_misses, b.store.seq_misses);
  EXPECT_EQ(a.store.seq_inserts, b.store.seq_inserts);
  EXPECT_EQ(a.store.seq_verify_failures, b.store.seq_verify_failures);
  EXPECT_EQ(a.store.unjust_hits, b.store.unjust_hits);
  EXPECT_EQ(a.store.unjust_misses, b.store.unjust_misses);
  EXPECT_EQ(a.store.unjust_inserts, b.store.unjust_inserts);
  EXPECT_EQ(a.store.unjust_subsumed, b.store.unjust_subsumed);
  EXPECT_EQ(a.store.reachable_inserts, b.store.reachable_inserts);
  EXPECT_EQ(a.store.near_miss_inserts, b.store.near_miss_inserts);
  EXPECT_EQ(a.store.ga_seeds_served, b.store.ga_seeds_served);
  EXPECT_EQ(a.store.forward_cache_hits, b.store.forward_cache_hits);
  EXPECT_EQ(a.store.forward_cache_inserts, b.store.forward_cache_inserts);
}

void expect_identical(const session::SessionResult& a,
                      const session::SessionResult& b) {
  EXPECT_EQ(a.digests.faults, b.digests.faults);
  EXPECT_EQ(a.digests.tests, b.digests.tests);
  EXPECT_EQ(a.digests.store, b.digests.store);
  EXPECT_EQ(a.fault_state, b.fault_state);
  EXPECT_EQ(a.test_set, b.test_set);
  EXPECT_EQ(a.segments, b.segments);
  EXPECT_EQ(a.total_faults, b.total_faults);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.evaluations, b.evaluations);
  ASSERT_EQ(a.passes.size(), b.passes.size());
  for (std::size_t p = 0; p < a.passes.size(); ++p) {
    EXPECT_EQ(a.passes[p].detected, b.passes[p].detected);
    EXPECT_EQ(a.passes[p].vectors, b.passes[p].vectors);
    EXPECT_EQ(a.passes[p].untestable, b.passes[p].untestable);
  }
  expect_counters_equal(a.counters, b.counters);
}

void expect_trace_equal(const std::vector<session::TargetEffort>& a,
                        const std::vector<session::TargetEffort>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fault_index, b[i].fault_index) << "target " << i;
    EXPECT_EQ(a[i].model, b[i].model) << "target " << i;
    EXPECT_EQ(a[i].decisions, b[i].decisions) << "target " << i;
    EXPECT_EQ(a[i].backtracks, b[i].backtracks) << "target " << i;
    EXPECT_EQ(a[i].gate_evals, b[i].gate_evals) << "target " << i;
    EXPECT_EQ(a[i].events, b[i].events) << "target " << i;
  }
}

// ---------------------------------------------------------------------------
// The central differential: one reference run per registry circuit, compared
// against every execution-shape variant.

TEST(TransitionAtpg, DetectsAndInvariantAcrossExecutionShapes) {
  for (const std::string& name : gen::registry_names()) {
    SCOPED_TRACE("circuit " + name);
    const netlist::Circuit c = gen::make_circuit(name);
    const fault::FaultList faults = capped_transition_faults(c, 24);
    const RunOutput ref = run_once(c, faults, transition_config());

    // The generator must actually produce two-frame tests on every circuit,
    // and every targeted fault must report a transition model.
    EXPECT_GT(ref.result.detected(), 0u) << "no transition fault detected";
    ASSERT_FALSE(ref.trace.empty());
    for (const session::TargetEffort& e : ref.trace) {
      EXPECT_TRUE(fault::is_transition(e.model));
    }

    {
      SCOPED_TRACE("faultsim threads 4");
      hybrid::HybridConfig cfg = transition_config();
      cfg.parallel.threads = 4;
      const RunOutput got = run_once(c, faults, cfg);
      expect_identical(ref.result, got.result);
      expect_trace_equal(ref.trace, got.trace);
    }
    {
      SCOPED_TRACE("targeting lanes 4");
      hybrid::HybridConfig cfg = transition_config();
      cfg.target_parallel.lanes = 4;
      const RunOutput got = run_once(c, faults, cfg);
      expect_identical(ref.result, got.result);
      expect_trace_equal(ref.trace, got.trace);
    }
    {
      SCOPED_TRACE("simd width 4");
      hybrid::HybridConfig cfg = transition_config();
      cfg.faultsim.width = 4;
      const RunOutput got = run_once(c, faults, cfg);
      expect_identical(ref.result, got.result);
      expect_trace_equal(ref.trace, got.trace);
    }
    {
      SCOPED_TRACE("full-sweep engine");
      hybrid::HybridConfig cfg = transition_config();
      cfg.faultsim.differential = false;
      const RunOutput got = run_once(c, faults, cfg);
      expect_identical(ref.result, got.result);
      expect_trace_equal(ref.trace, got.trace);
    }
  }
}

// ---------------------------------------------------------------------------
// Kill-and-resume: a mid-run snapshot of a transition session must resume to
// the same bits as the uninterrupted run.

TEST(TransitionKillResume, MidPassSnapshotResumesBitIdentical) {
  util::Rng pick(0xFADE);
  for (const std::string& name : gen::registry_names()) {
    SCOPED_TRACE("circuit " + name);
    const netlist::Circuit c = gen::make_circuit(name);
    const fault::FaultList faults = capped_transition_faults(c, 24);
    const hybrid::HybridConfig cfg = transition_config();
    const RunOutput reference = run_once(c, faults, cfg);

    const auto kill_and_resume = [&](long stop) -> session::SessionResult {
      const std::string snap = testing::TempDir() + "tr_" + name + ".snap";
      std::remove(snap.c_str());
      session::SessionResult partial;
      {
        session::SessionConfig scfg = session_config(cfg);
        scfg.checkpoint.path = snap;
        scfg.checkpoint.stop_after_ticks = stop;
        session::Session s(c, faults, scfg);
        util::Rng rng(cfg.seed);
        hybrid::HybridEngine engine(c, cfg, netlist::sequential_depth(c),
                                    rng);
        partial = s.run(engine, cfg.schedule);
      }
      std::FILE* f = std::fopen(snap.c_str(), "rb");
      if (!f) return partial;  // stop never fired: completed uninterrupted
      std::fclose(f);

      session::Session resumed(c, faults, session_config(cfg));
      util::Rng rng(cfg.seed);
      hybrid::HybridEngine engine(c, cfg, netlist::sequential_depth(c), rng);
      resumed.resume(snap, engine);
      const session::SessionResult finished =
          resumed.run(engine, cfg.schedule);
      std::remove(snap.c_str());
      return finished;
    };

    {
      SCOPED_TRACE("stop tick 1");
      expect_identical(reference.result, kill_and_resume(1));
    }
    {
      const long stop = 2 + static_cast<long>(pick.below(6));
      SCOPED_TRACE("stop tick " + std::to_string(stop));
      expect_identical(reference.result, kill_and_resume(stop));
    }
  }
}

// ---------------------------------------------------------------------------
// Snapshot model identity: a transition snapshot never resumes a stuck-at
// session (and vice versa), with a targeted error naming both universes.

TEST(TransitionSnapshot, RejectsFaultModelMismatch) {
  const netlist::Circuit c = gen::make_circuit("s27");
  const fault::FaultList tr_faults =
      fault::collapse(c, fault::FaultUniverse::kTransition);
  const hybrid::HybridConfig cfg = transition_config();
  const std::string snap = testing::TempDir() + "tr_model_mismatch.snap";
  std::remove(snap.c_str());
  {
    session::SessionConfig scfg = session_config(cfg);
    scfg.checkpoint.path = snap;
    scfg.checkpoint.stop_after_ticks = 1;
    session::Session s(c, tr_faults, scfg);
    util::Rng rng(cfg.seed);
    hybrid::HybridEngine engine(c, cfg, netlist::sequential_depth(c), rng);
    s.run(engine, cfg.schedule);
  }
  std::FILE* f = std::fopen(snap.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "stop tick never fired; no snapshot to test";
  std::fclose(f);

  // A stuck-at session refuses the transition snapshot before it even
  // compares fault lists.
  hybrid::HybridConfig sa_cfg = transition_config();
  sa_cfg.fault_model = fault::FaultUniverse::kStuckAt;
  session::Session sa(c, fault::collapse(c), session_config(sa_cfg));
  util::Rng sa_rng(sa_cfg.seed);
  hybrid::HybridEngine sa_engine(c, sa_cfg, netlist::sequential_depth(c),
                                 sa_rng);
  try {
    sa.resume(snap, sa_engine);
    FAIL() << "mixed-model resume must throw";
  } catch (const serialize::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("fault model"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("transition"), std::string::npos)
        << e.what();
  }

  // Sanity: the same snapshot resumes fine under the matching model.
  session::Session ok(c, tr_faults, session_config(cfg));
  util::Rng ok_rng(cfg.seed);
  hybrid::HybridEngine ok_engine(c, cfg, netlist::sequential_depth(c),
                                 ok_rng);
  ok.resume(snap, ok_engine);
  std::remove(snap.c_str());
}

// ---------------------------------------------------------------------------
// Sharded transition jobs: the merged result is invariant in worker count.

TEST(TransitionSharded, WorkerCountNeverChangesTheMergedResult) {
  const netlist::Circuit c = gen::make_circuit("s27");
  const fault::FaultList full =
      fault::collapse(c, fault::FaultUniverse::kTransition);

  std::vector<service::ShardedResult> runs;
  for (const unsigned workers : {1u, 2u, 3u}) {
    service::ShardJobConfig job;
    job.shards = 3;
    job.workers = workers;
    job.hybrid = transition_config();
    for (auto& pass : job.hybrid.schedule.passes) pass.time_limit_s = 1000.0;
    runs.push_back(service::run_sharded(c, full, job));
  }
  const session::SessionResult& ref = runs[0].merged;
  EXPECT_GT(ref.detected(), 0u);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    SCOPED_TRACE("workers variant " + std::to_string(i));
    const session::SessionResult& got = runs[i].merged;
    EXPECT_EQ(got.digests.faults, ref.digests.faults);
    EXPECT_EQ(got.digests.tests, ref.digests.tests);
    EXPECT_EQ(got.digests.store, ref.digests.store);
    EXPECT_EQ(got.fault_state, ref.fault_state);
    EXPECT_EQ(got.test_set, ref.test_set);
    EXPECT_EQ(got.segments, ref.segments);
  }
}

// ---------------------------------------------------------------------------
// Daemon protocol: the fault_model= submit key.

std::string drain(std::FILE* f) {
  std::fflush(f);
  const long size = std::ftell(f);
  std::rewind(f);
  std::string out(static_cast<std::size_t>(size), '\0');
  const std::size_t got = std::fread(out.data(), 1, out.size(), f);
  out.resize(got);
  return out;
}

TEST(TransitionDaemon, SubmitAcceptsFaultModelKey) {
  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  service::Daemon daemon({}, in, out);
  EXPECT_TRUE(daemon.handle_request(
      "submit job=tf1 circuit=s27 fault_model=transition shards=2 workers=2 "
      "time_scale=0.005 pass_budget=0.5 seed=3"));
  EXPECT_TRUE(daemon.handle_request("submit circuit=s27 fault_model=warp"));

  const std::string log = drain(out);
  EXPECT_NE(log.find("\"event\":\"accepted\""), std::string::npos);
  EXPECT_NE(log.find("\"fault_model\":\"transition\""), std::string::npos);
  EXPECT_NE(log.find("\"event\":\"done\""), std::string::npos);
  EXPECT_NE(log.find("unknown fault_model: warp"), std::string::npos);
  std::fclose(in);
  std::fclose(out);
}

}  // namespace
}  // namespace gatpg
