// Service-layer tests: fault-list sharding, the worker-count-invariance
// contract of run_sharded (the merged result is a pure function of the job,
// never of how many workers executed it), shard-snapshot resume, the warm
// StateStore cache carried across submissions, and the daemon's framing and
// request handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "fault/faultlist.h"
#include "gen/registry.h"
#include "serialize/archive.h"
#include "service/daemon.h"
#include "service/shard.h"
#include "session/session.h"
#include "util/rng.h"

namespace gatpg {
namespace {

// ---------------------------------------------------------------------------
// Fault-list sharding

TEST(ShardPartition, RoundRobinCoversEveryFaultExactlyOnce) {
  const netlist::Circuit c = gen::make_circuit("s27");
  const fault::FaultList full = fault::collapse(c);
  const unsigned shards = 3;
  std::size_t total = 0;
  for (unsigned s = 0; s < shards; ++s) {
    const fault::FaultList part = service::shard_fault_list(full, shards, s);
    total += part.size();
    for (std::size_t p = 0; p < part.size(); ++p) {
      const std::size_t i = p * shards + s;
      EXPECT_EQ(part.faults[p], full.faults[i]);
      EXPECT_EQ(part.class_sizes[p], full.class_sizes[i]);
    }
  }
  EXPECT_EQ(total, full.size());
}

TEST(ShardPartition, SingleShardIsTheFullList) {
  const netlist::Circuit c = gen::make_circuit("s27");
  const fault::FaultList full = fault::collapse(c);
  const fault::FaultList part = service::shard_fault_list(full, 1, 0);
  EXPECT_EQ(fault::identity_digest(part), fault::identity_digest(full));
}

// ---------------------------------------------------------------------------
// run_sharded

/// Deterministic two-pass schedule (bounded by backtracks and generations,
/// never by wall clock) so sharded runs can be compared bit-for-bit.
hybrid::HybridConfig cheap_config() {
  hybrid::HybridConfig cfg;
  session::PassConfig ga;
  ga.mode = session::JustifyMode::kGenetic;
  ga.time_limit_s = 1000.0;
  ga.max_backtracks = 200;
  ga.ga_population = 64;
  ga.ga_generations = 2;
  ga.seq_len_multiplier = 2.0;
  session::PassConfig det;
  det.mode = session::JustifyMode::kDeterministic;
  det.time_limit_s = 1000.0;
  det.max_backtracks = 200;
  cfg.schedule.passes = {ga, det};
  cfg.max_solutions_per_fault = 4;
  cfg.seed = 11;
  cfg.state_store.enabled = true;
  return cfg;
}

TEST(RunSharded, WorkerCountNeverChangesTheMergedResult) {
  const netlist::Circuit c = gen::make_circuit("s27");
  const fault::FaultList full = fault::collapse(c);

  std::vector<service::ShardedResult> runs;
  for (const unsigned workers : {1u, 2u, 4u}) {
    service::ShardJobConfig job;
    job.shards = 4;
    job.workers = workers;
    job.hybrid = cheap_config();
    runs.push_back(service::run_sharded(c, full, job));
  }
  const session::SessionResult& ref = runs[0].merged;
  EXPECT_GT(ref.detected(), 0u);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    SCOPED_TRACE("workers variant " + std::to_string(i));
    const session::SessionResult& got = runs[i].merged;
    EXPECT_EQ(got.digests.faults, ref.digests.faults);
    EXPECT_EQ(got.digests.tests, ref.digests.tests);
    EXPECT_EQ(got.digests.store, ref.digests.store);
    EXPECT_EQ(got.fault_state, ref.fault_state);
    EXPECT_EQ(got.test_set, ref.test_set);
    EXPECT_EQ(got.segments, ref.segments);
    ASSERT_EQ(runs[i].per_shard.size(), runs[0].per_shard.size());
    for (std::size_t s = 0; s < runs[i].per_shard.size(); ++s) {
      EXPECT_EQ(runs[i].per_shard[s].digests.faults,
                runs[0].per_shard[s].digests.faults);
      EXPECT_EQ(runs[i].per_shard[s].digests.tests,
                runs[0].per_shard[s].digests.tests);
    }
  }
}

TEST(RunSharded, MergeInterleavesStatusesAndConcatenatesTests) {
  const netlist::Circuit c = gen::make_circuit("s27");
  const fault::FaultList full = fault::collapse(c);
  service::ShardJobConfig job;
  job.shards = 2;
  job.workers = 1;
  job.hybrid = cheap_config();

  std::vector<service::ShardEvent> events;
  const service::ShardedResult result = service::run_sharded(
      c, full, job, [&](const service::ShardEvent& e) { events.push_back(e); });

  EXPECT_EQ(result.merged.total_faults, full.size());
  ASSERT_EQ(result.per_shard.size(), 2u);
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(result.merged.fault_state[i],
              result.per_shard[i % 2].fault_state[i / 2]);
  }
  sim::Sequence concat = result.per_shard[0].test_set;
  concat.insert(concat.end(), result.per_shard[1].test_set.begin(),
                result.per_shard[1].test_set.end());
  EXPECT_EQ(result.merged.test_set, concat);
  EXPECT_EQ(result.merged.detected(), result.per_shard[0].detected() +
                                          result.per_shard[1].detected());
  // Every shard reported every pass (events arrive on worker threads; with
  // workers=1 they are strictly ordered).
  EXPECT_EQ(events.size(),
            job.hybrid.schedule.passes.size() * job.shards);
}

TEST(RunSharded, ResumesFromShardSnapshots) {
  const netlist::Circuit c = gen::make_circuit("s27");
  const fault::FaultList full = fault::collapse(c);
  const std::string base = testing::TempDir() + "sharded_resume.snap";
  for (unsigned s = 0; s < 2; ++s) {
    std::remove((base + ".shard" + std::to_string(s)).c_str());
  }

  service::ShardJobConfig job;
  job.shards = 2;
  job.workers = 2;
  job.hybrid = cheap_config();
  job.checkpoint_path = base;
  job.checkpoint_every_ticks = 1;
  const service::ShardedResult first = service::run_sharded(c, full, job);

  // Re-running with resume=true picks each shard up from its last snapshot
  // and must land on the same final state the first run reached.
  job.resume = true;
  const service::ShardedResult second = service::run_sharded(c, full, job);
  EXPECT_EQ(second.merged.digests.faults, first.merged.digests.faults);
  EXPECT_EQ(second.merged.digests.tests, first.merged.digests.tests);
  EXPECT_EQ(second.merged.digests.store, first.merged.digests.store);
  EXPECT_EQ(second.merged.fault_state, first.merged.fault_state);
  EXPECT_EQ(second.merged.test_set, first.merged.test_set);

  for (unsigned s = 0; s < 2; ++s) {
    std::remove((base + ".shard" + std::to_string(s)).c_str());
  }
}

TEST(RunSharded, UnwritableCheckpointPathThrowsInsteadOfTerminating) {
  // An auto-checkpoint into a nonexistent directory fails on a worker
  // thread; the exception must surface to the caller as a SnapshotError
  // (the daemon turns it into an error event), never std::terminate.
  const netlist::Circuit c = gen::make_circuit("s27");
  const fault::FaultList full = fault::collapse(c);
  service::ShardJobConfig job;
  job.shards = 2;
  job.workers = 2;
  job.hybrid = cheap_config();
  job.checkpoint_path = testing::TempDir() + "no_such_dir_xyz/job.snap";
  job.checkpoint_every_ticks = 1;
  EXPECT_THROW(service::run_sharded(c, full, job), serialize::SnapshotError);
}

// ---------------------------------------------------------------------------
// Warm StateStore cache

TEST(WarmStoreCache, CarriesStoreKnowledgeAcrossSessions) {
  using sim::V3;
  const netlist::Circuit c = gen::make_circuit("s27");
  const fault::FaultList full = fault::collapse(c);
  const std::uint64_t key = fault::identity_digest(full);

  session::SessionConfig scfg;
  scfg.state_store.enabled = true;
  service::WarmStoreCache cache;

  session::Session a(c, full, scfg);
  EXPECT_FALSE(cache.seed(a, 1, 0, key));  // nothing captured yet

  sim::State3 cube(c.flip_flops().size(), V3::kX);
  cube[0] = V3::k1;
  a.state_store().record_unjustifiable(cube);
  sim::State3 cube2(c.flip_flops().size(), V3::kX);
  cube2[0] = V3::k0;
  sim::Sequence seq(1, sim::Vector3(c.primary_inputs().size(), V3::k0));
  a.state_store().record_justified(cube2, seq);
  cache.capture(a, 1, 0, key);
  EXPECT_EQ(cache.size(), 1u);

  // Same circuit revision: the store is restored verbatim.
  session::Session b(c, full, scfg);
  EXPECT_TRUE(cache.seed(b, 1, 0, key));
  EXPECT_EQ(b.state_store().digest(), a.state_store().digest());

  // Different revision (same interface): netlist-specific proofs are
  // dropped, re-verifiable knowledge survives.
  session::Session d(c, full, scfg);
  EXPECT_TRUE(cache.seed(d, 1, 0, key ^ 1));
  EXPECT_EQ(d.state_store().unjustifiable_size(), 0u);
  EXPECT_EQ(d.state_store().justified_size(), 1u);
}

TEST(WarmStoreCache, DisabledStoreIsNeverCaptured) {
  const netlist::Circuit c = gen::make_circuit("s27");
  const fault::FaultList full = fault::collapse(c);
  session::Session s(c, full, {});
  service::WarmStoreCache cache;
  cache.capture(s, 1, 0, fault::identity_digest(full));
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// Daemon framing and request handling

std::string drain(std::FILE* f) {
  std::fflush(f);
  const long size = std::ftell(f);
  std::rewind(f);
  std::string out(static_cast<std::size_t>(size), '\0');
  const std::size_t got = std::fread(out.data(), 1, out.size(), f);
  out.resize(got);
  return out;
}

TEST(DaemonFrames, RoundTrip) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  service::write_frame(f, "hello world");
  service::write_frame(f, "");
  std::rewind(f);
  std::string payload;
  ASSERT_TRUE(service::read_frame(f, &payload));
  EXPECT_EQ(payload, "hello world");
  ASSERT_TRUE(service::read_frame(f, &payload));
  EXPECT_EQ(payload, "");
  EXPECT_FALSE(service::read_frame(f, &payload));  // clean EOF
  std::fclose(f);
}

TEST(DaemonFrames, TruncatedAndOversizedFramesThrow) {
  {
    std::FILE* f = std::tmpfile();
    ASSERT_NE(f, nullptr);
    const unsigned char header[4] = {10, 0, 0, 0};  // claims 10 bytes
    std::fwrite(header, 1, 4, f);
    std::fwrite("abc", 1, 3, f);  // delivers 3
    std::rewind(f);
    std::string payload;
    EXPECT_THROW(service::read_frame(f, &payload), std::runtime_error);
    std::fclose(f);
  }
  {
    std::FILE* f = std::tmpfile();
    ASSERT_NE(f, nullptr);
    const unsigned char header[4] = {0, 0, 0x20, 0};  // 2 MiB > limit
    std::fwrite(header, 1, 4, f);
    std::rewind(f);
    std::string payload;
    EXPECT_THROW(service::read_frame(f, &payload), std::runtime_error);
    std::fclose(f);
  }
}

TEST(Daemon, StatusQuitAndUnknownCommands) {
  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  service::Daemon daemon({}, in, out);
  EXPECT_TRUE(daemon.handle_request("status"));
  EXPECT_TRUE(daemon.handle_request("bogus x=1"));
  EXPECT_FALSE(daemon.handle_request("quit"));

  const std::string log = drain(out);
  EXPECT_NE(log.find("\"event\":\"status\""), std::string::npos);
  EXPECT_NE(log.find("\"jobs_done\":0"), std::string::npos);
  EXPECT_NE(log.find("unknown command: bogus"), std::string::npos);
  std::fclose(in);
  std::fclose(out);
}

TEST(Daemon, SubmitValidation) {
  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  service::Daemon daemon({}, in, out);
  EXPECT_TRUE(daemon.handle_request("submit"));  // missing circuit=
  EXPECT_TRUE(daemon.handle_request("submit circuit=no_such_circuit"));
  EXPECT_TRUE(daemon.handle_request("submit circuit=s27 engine=warp"));

  const std::string log = drain(out);
  EXPECT_NE(log.find("submit requires circuit=<name>"), std::string::npos);
  EXPECT_NE(log.find("no_such_circuit"), std::string::npos);
  EXPECT_NE(log.find("unknown engine: warp"), std::string::npos);
  std::fclose(in);
  std::fclose(out);
}

TEST(Daemon, SubmitRunsShardedJobAndStreamsEvents) {
  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  service::Daemon daemon({}, in, out);
  EXPECT_TRUE(daemon.handle_request(
      "submit job=t1 circuit=s27 shards=2 workers=2 time_scale=0.005 "
      "pass_budget=0.5 seed=3"));
  EXPECT_TRUE(daemon.handle_request("status"));

  const std::string log = drain(out);
  EXPECT_NE(log.find("\"event\":\"accepted\""), std::string::npos);
  EXPECT_NE(log.find("\"job\":\"t1\""), std::string::npos);
  EXPECT_NE(log.find("\"event\":\"pass\""), std::string::npos);
  EXPECT_NE(log.find("\"event\":\"done\""), std::string::npos);
  EXPECT_NE(log.find("\"digest_faults\":\""), std::string::npos);
  EXPECT_NE(log.find("\"jobs_done\":1"), std::string::npos);
  // The job's two shard stores stay warm for the next submission.
  EXPECT_EQ(daemon.warm_cache().size(), 2u);
  std::fclose(in);
  std::fclose(out);
}

TEST(Daemon, CheckpointFailureEmitsErrorEventAndKeepsServing) {
  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  service::Daemon daemon({}, in, out);
  EXPECT_TRUE(daemon.handle_request(
      "submit circuit=s27 every_ticks=1 checkpoint=" + testing::TempDir() +
      "missing_dir_for_atpgd/job.snap"));
  EXPECT_TRUE(daemon.handle_request("status"));

  const std::string log = drain(out);
  EXPECT_NE(log.find("\"event\":\"error\""), std::string::npos);
  EXPECT_NE(log.find("\"event\":\"status\""), std::string::npos);
  std::fclose(in);
  std::fclose(out);
}

TEST(Daemon, CreatesConfiguredCheckpointDir) {
  const std::string dir = testing::TempDir() + "atpgd_ckpt_dir";
  ::rmdir(dir.c_str());
  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  service::DaemonConfig config;
  config.checkpoint_dir = dir;
  service::Daemon daemon(config, in, out);
  struct stat st {};
  EXPECT_EQ(::stat(dir.c_str(), &st), 0);
  EXPECT_TRUE(S_ISDIR(st.st_mode));
  std::fclose(in);
  std::fclose(out);
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace gatpg
