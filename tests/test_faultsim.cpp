#include <gtest/gtest.h>

#include "fault/faultsim.h"
#include "fault/grading.h"
#include "gen/s27.h"
#include "helpers/random_circuit.h"
#include "helpers/reference_sim.h"

namespace gatpg::fault {
namespace {

TEST(FaultSimulator, EmptySequenceDetectsNothing) {
  const auto c = gen::make_s27();
  FaultSimulator fs(c, collapse(c).faults);
  EXPECT_TRUE(fs.run({}).empty());
  EXPECT_EQ(fs.detected_count(), 0u);
}

TEST(FaultSimulator, DetectionIsMonotone) {
  const auto c = gen::make_s27();
  util::Rng rng(3);
  FaultSimulator fs(c, collapse(c).faults);
  std::size_t last = 0;
  for (int i = 0; i < 5; ++i) {
    fs.run(test::random_sequence(c, rng, 10));
    EXPECT_GE(fs.detected_count(), last);
    last = fs.detected_count();
  }
}

TEST(FaultSimulator, NewlyDetectedReportedExactlyOnce) {
  const auto c = gen::make_s27();
  util::Rng rng(5);
  FaultSimulator fs(c, collapse(c).faults);
  std::vector<char> seen(fs.faults().size(), 0);
  for (int i = 0; i < 6; ++i) {
    for (std::size_t fi : fs.run(test::random_sequence(c, rng, 8))) {
      EXPECT_FALSE(seen[fi]) << "fault reported twice";
      seen[fi] = 1;
    }
  }
  std::size_t total = 0;
  for (char s : seen) total += s;
  EXPECT_EQ(total, fs.detected_count());
}

// Central property: the 64-way parallel-fault simulator agrees with a naive
// serial single-fault reference on every fault, including continuation
// across multiple run() calls (persistent faulty state).
class FaultSimEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultSimEquivalence, MatchesSerialReference) {
  test::RandomCircuitSpec spec;
  spec.seed = GetParam() + 200;
  spec.num_gates = 35 + (GetParam() % 23);
  spec.num_ffs = 3 + (GetParam() % 4);
  const auto c = test::make_random_circuit(spec);
  const auto faults = collapse(c).faults;
  util::Rng rng(GetParam() * 17);
  const auto seq1 = test::random_sequence(c, rng, 7, 0.1);
  const auto seq2 = test::random_sequence(c, rng, 7, 0.1);

  FaultSimulator fs(c, faults);
  fs.run(seq1);
  fs.run(seq2);

  sim::Sequence all(seq1);
  all.insert(all.end(), seq2.begin(), seq2.end());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const bool expected = test::reference_detects(c, faults[i], all);
    EXPECT_EQ(static_cast<bool>(fs.detected()[i]), expected)
        << to_string(c, faults[i]) << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, FaultSimEquivalence,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(FaultSimulator, MoreThan64FaultsAreGrouped) {
  test::RandomCircuitSpec spec;
  spec.seed = 777;
  spec.num_gates = 60;  // yields well over 64 collapsed faults
  const auto c = test::make_random_circuit(spec);
  const auto faults = collapse(c).faults;
  ASSERT_GT(faults.size(), 64u);
  util::Rng rng(9);
  const auto seq = test::random_sequence(c, rng, 10);
  FaultSimulator fs(c, faults);
  fs.run(seq);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(static_cast<bool>(fs.detected()[i]),
              test::reference_detects(c, faults[i], seq))
        << to_string(c, faults[i]);
  }
}

TEST(FaultSimulator, GoodStateTracksSession) {
  const auto c = gen::make_s27();
  util::Rng rng(11);
  const auto seq = test::random_sequence(c, rng, 5);
  FaultSimulator fs(c, collapse(c).faults);
  fs.run(seq);
  test::ReferenceSimulator ref(c);
  for (const auto& v : seq) {
    ref.apply(v);
    ref.clock();
  }
  EXPECT_EQ(fs.good_state(), ref.state());
}

TEST(FaultSimulator, WouldDetectAgreesWithCommit) {
  const auto c = gen::make_s27();
  util::Rng rng(13);
  const auto faults = collapse(c).faults;
  FaultSimulator fs(c, faults);
  fs.run(test::random_sequence(c, rng, 4));  // advance the session a little

  const auto probe = test::random_sequence(c, rng, 8);
  std::vector<bool> predicted(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    predicted[i] = fs.detected()[i] ? true : fs.would_detect(i, probe);
  }
  fs.run(probe);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(static_cast<bool>(fs.detected()[i]), predicted[i])
        << to_string(c, faults[i]);
  }
}

TEST(FaultSimulator, WouldDetectDoesNotMutate) {
  const auto c = gen::make_s27();
  util::Rng rng(15);
  FaultSimulator fs(c, collapse(c).faults);
  fs.run(test::random_sequence(c, rng, 4));
  const auto state_before = fs.good_state();
  const auto ndet_before = fs.detected_count();
  fs.would_detect(0, test::random_sequence(c, rng, 6));
  EXPECT_EQ(fs.good_state(), state_before);
  EXPECT_EQ(fs.detected_count(), ndet_before);
}

TEST(FaultSimulator, ResetAllClearsDetection) {
  const auto c = gen::make_s27();
  util::Rng rng(17);
  FaultSimulator fs(c, collapse(c).faults);
  fs.run(test::random_sequence(c, rng, 10));
  ASSERT_GT(fs.detected_count(), 0u);
  fs.reset_all();
  EXPECT_EQ(fs.detected_count(), 0u);
  for (sim::V3 v : fs.good_state()) EXPECT_EQ(v, sim::V3::kX);
}

TEST(Grading, MatchesFaultSimulator) {
  const auto c = gen::make_s27();
  util::Rng rng(19);
  const auto seq = test::random_sequence(c, rng, 20);
  const auto report = grade_sequence(c, seq);
  FaultSimulator fs(c, collapse(c).faults);
  fs.run(seq);
  EXPECT_EQ(report.detected, fs.detected_count());
  EXPECT_EQ(report.total_faults, fs.faults().size());
  EXPECT_EQ(report.vectors, seq.size());
  EXPECT_GT(report.coverage(), 0.0);
  EXPECT_LE(report.coverage(), 1.0);
}

TEST(Grading, XVectorsNeverOverclaim) {
  // An all-X sequence can detect nothing.
  const auto c = gen::make_s27();
  sim::Sequence seq(5, sim::Vector3(4, sim::V3::kX));
  EXPECT_EQ(grade_sequence(c, seq).detected, 0u);
}

}  // namespace
}  // namespace gatpg::fault
