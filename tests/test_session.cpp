// Session-layer tests: FaultManager lifecycle and drop credit,
// TestSetBuilder invariants, and golden equivalence — the session-based
// generators must reproduce the exact pre-refactor test sets, detection
// counts, fault states and counters (captured with tools/golden_capture.cpp
// before the refactor), independent of worker-thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "gen/registry.h"
#include "hybrid/hybrid_atpg.h"
#include "session/fault_manager.h"
#include "session/session.h"
#include "session/test_set_builder.h"
#include "tpg/alternating.h"
#include "tpg/randgen.h"
#include "tpg/simgen.h"

namespace gatpg {
namespace {

// ---------------------------------------------------------------------------
// FaultManager

fault::FaultList s27_faults() {
  static const netlist::Circuit c = gen::make_circuit("s27");
  return fault::collapse(c);
}

TEST(FaultManager, StartsAllUndetected) {
  session::FaultManager fm(s27_faults());
  EXPECT_EQ(fm.size(), 32u);
  EXPECT_EQ(fm.detected_count(), 0u);
  EXPECT_EQ(fm.untestable_count(), 0u);
  EXPECT_EQ(fm.undetected_count(), 32u);
  EXPECT_FALSE(fm.all_resolved());
  EXPECT_EQ(fm.undetected_indices().size(), 32u);
  EXPECT_EQ(fm.undropped_indices().size(), 32u);
}

TEST(FaultManager, LifecycleTransitions) {
  session::FaultManager fm(s27_faults());
  fm.mark_detected(3);
  EXPECT_EQ(fm.status(3), session::FaultStatus::kDetected);
  EXPECT_EQ(fm.detected_count(), 1u);
  // Re-marking is a no-op.
  fm.mark_detected(3);
  EXPECT_EQ(fm.detected_count(), 1u);

  fm.mark_untestable(5);
  EXPECT_EQ(fm.status(5), session::FaultStatus::kUntestable);
  EXPECT_EQ(fm.untestable_count(), 1u);
  // A detected fault cannot become untestable.
  fm.mark_untestable(3);
  EXPECT_EQ(fm.status(3), session::FaultStatus::kDetected);
  EXPECT_EQ(fm.untestable_count(), 1u);

  // Detection overrides an (unsound) untestable claim and fixes the counts.
  fm.mark_detected(5);
  EXPECT_EQ(fm.status(5), session::FaultStatus::kDetected);
  EXPECT_EQ(fm.untestable_count(), 0u);
  EXPECT_EQ(fm.detected_count(), 2u);
  EXPECT_EQ(fm.undetected_count(), 30u);
}

TEST(FaultManager, AbsorbDetectionsCreditsOnlyUndetected) {
  session::FaultManager fm(s27_faults());
  fm.mark_detected(0);
  fm.mark_untestable(1);
  std::vector<char> drop(fm.size(), 0);
  drop[0] = 1;  // already detected: no credit
  drop[1] = 1;  // claimed untestable: no credit (claim stands)
  drop[2] = 1;  // fresh detection: credited
  EXPECT_EQ(fm.absorb_detections(drop), 1u);
  EXPECT_EQ(fm.detected_count(), 2u);
  EXPECT_EQ(fm.status(1), session::FaultStatus::kUntestable);
  // Re-absorbing the same drop list credits nothing new.
  EXPECT_EQ(fm.absorb_detections(drop), 0u);
}

TEST(FaultManager, AbortedFlagsAreScopedToAPass) {
  session::FaultManager fm(s27_faults());
  fm.begin_pass();
  fm.mark_aborted(4);
  fm.mark_aborted(4);  // same pass: flag once, total twice
  EXPECT_TRUE(fm.aborted_this_pass(4));
  EXPECT_EQ(fm.aborted_total(), 2);
  fm.begin_pass();
  EXPECT_FALSE(fm.aborted_this_pass(4));
  EXPECT_EQ(fm.aborted_total(), 2);  // the all-run total survives
}

TEST(FaultManager, NextUndetectedWrapsRoundRobin) {
  session::FaultManager fm(s27_faults());
  for (std::size_t i = 0; i < fm.size(); ++i) {
    if (i != 2 && i != 30) fm.mark_detected(i);
  }
  EXPECT_EQ(fm.next_undetected(0), 2u);
  EXPECT_EQ(fm.next_undetected(3), 30u);
  EXPECT_EQ(fm.next_undetected(31), 2u);    // wraps
  EXPECT_EQ(fm.next_undetected(fm.size()), 2u);
  fm.mark_detected(2);
  fm.mark_untestable(30);  // untestable is not a target
  EXPECT_EQ(fm.next_undetected(0), fm.size());
}

TEST(FaultManager, SampleDrawsNoRngBelowMax) {
  session::FaultManager fm(s27_faults());
  util::Rng rng_a(7), rng_b(7);
  // Population <= max: returned verbatim, rng untouched.
  const auto all = fm.sample_undropped(rng_a, fm.size());
  EXPECT_EQ(all.size(), fm.size());
  EXPECT_EQ(rng_a(), rng_b());  // same stream position
}

TEST(FaultManager, SampleIncludesUntestableExcludesDetected) {
  session::FaultManager fm(s27_faults());
  fm.mark_detected(0);
  fm.mark_untestable(1);
  util::Rng rng(7);
  const auto sample = fm.sample_undropped(rng, fm.size());
  EXPECT_EQ(sample.size(), fm.size() - 1);  // only the detected one dropped
  for (std::size_t i : sample) EXPECT_NE(i, 0u);
  EXPECT_NE(std::find(sample.begin(), sample.end(), 1u), sample.end());
}

// ---------------------------------------------------------------------------
// TestSetBuilder

TEST(TestSetBuilder, FlatSetIsConcatenationOfSegments) {
  session::TestSetBuilder b;
  sim::Vector3 v1{sim::V3::k0, sim::V3::k1};
  sim::Vector3 v2{sim::V3::k1, sim::V3::k1};
  sim::Vector3 v3{sim::V3::kX, sim::V3::k0};
  EXPECT_EQ(b.commit({v1, v2}), 0u);
  EXPECT_EQ(b.commit({v3}), 1u);
  EXPECT_EQ(b.vectors(), 3u);
  EXPECT_EQ(b.segment_count(), 2u);
  sim::Sequence concat;
  for (const auto& seg : b.segments()) {
    concat.insert(concat.end(), seg.begin(), seg.end());
  }
  EXPECT_EQ(concat, b.test_set());
}

// ---------------------------------------------------------------------------
// Golden equivalence
//
// The constants below were produced by the pre-refactor generators (see
// tools/golden_capture.cpp).  Configurations bind only on deterministic
// budgets (backtracks, solution counts, stagnation) — wall-clock limits are
// set far beyond any plausible runtime — so the values are reproducible.

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 0x100000001b3ULL;
}

std::uint64_t hash_sequence(const sim::Sequence& seq) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& vec : seq) {
    h = fnv1a(h, 0x5eedULL);
    for (sim::V3 v : vec) h = fnv1a(h, static_cast<std::uint64_t>(v));
  }
  return h;
}

std::uint64_t hash_segments(const std::vector<sim::Sequence>& segs) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& s : segs) {
    h = fnv1a(h, s.size());
    h = fnv1a(h, hash_sequence(s));
  }
  return h;
}

std::uint64_t hash_state(const std::vector<session::FaultStatus>& state) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (auto s : state) h = fnv1a(h, static_cast<std::uint64_t>(s));
  return h;
}

class GoldenEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(GoldenEquivalence, HybridGaHitecS27) {
  const auto c = gen::make_circuit("s27");
  hybrid::HybridConfig cfg;
  cfg.schedule = hybrid::PassSchedule::ga_hitec(1.0);
  cfg.seed = 7;
  cfg.parallel.threads = GetParam();
  const auto r = hybrid::HybridAtpg(c, cfg).run();
  EXPECT_EQ(hash_sequence(r.test_set), 0x323e06016efe6373ULL);
  EXPECT_EQ(hash_segments(r.segments), 0x492c98a2e68d32e2ULL);
  EXPECT_EQ(hash_state(r.fault_state), 0x38df9853f4efb1c5ULL);
  EXPECT_EQ(r.detected(), 32u);
  EXPECT_EQ(r.untestable(), 0u);
  EXPECT_EQ(r.test_set.size(), 20u);
  EXPECT_EQ(r.segments.size(), 7u);
  EXPECT_EQ(r.counters.targeted, 8);
  EXPECT_EQ(r.counters.forward_solutions, 10);
  EXPECT_EQ(r.counters.ga_invocations, 9);
  EXPECT_EQ(r.counters.ga_successes, 6);
  EXPECT_EQ(r.counters.no_justification_needed, 1);
  EXPECT_EQ(r.counters.aborted_faults, 1);
  EXPECT_EQ(r.counters.committed_tests, 7);
  ASSERT_EQ(r.passes.size(), 3u);
  for (const auto& pass : r.passes) {
    EXPECT_EQ(pass.detected, 32u);
    EXPECT_EQ(pass.vectors, 20u);
    EXPECT_EQ(pass.untestable, 0u);
  }
}

TEST_P(GoldenEquivalence, HybridHitecS27) {
  const auto c = gen::make_circuit("s27");
  hybrid::HybridConfig cfg;
  cfg.schedule = hybrid::PassSchedule::hitec(1.0);
  cfg.seed = 7;
  cfg.parallel.threads = GetParam();
  const auto r = hybrid::HybridAtpg(c, cfg).run();
  EXPECT_EQ(hash_sequence(r.test_set), 0x8b3b113654070191ULL);
  EXPECT_EQ(hash_segments(r.segments), 0x4fee217ca767fae0ULL);
  EXPECT_EQ(hash_state(r.fault_state), 0x38df9853f4efb1c5ULL);
  EXPECT_EQ(r.detected(), 32u);
  EXPECT_EQ(r.test_set.size(), 25u);
  EXPECT_EQ(r.segments.size(), 8u);
  EXPECT_EQ(r.counters.targeted, 8);
  EXPECT_EQ(r.counters.forward_solutions, 8);
  EXPECT_EQ(r.counters.det_justify_calls, 8);
  EXPECT_EQ(r.counters.det_justify_successes, 8);
  EXPECT_EQ(r.counters.ga_invocations, 0);
}

TEST_P(GoldenEquivalence, HybridGaHitecG298) {
  // Mid-size circuit, deterministic budgets binding (300 backtracks, 4
  // forward solutions per fault), wall-clock limits never binding.
  const auto c = gen::make_circuit("g298");
  hybrid::HybridConfig cfg;
  cfg.schedule = hybrid::PassSchedule::ga_hitec(1.0);
  for (auto& p : cfg.schedule.passes) {
    p.time_limit_s = 1000.0;
    p.max_backtracks = 300;
  }
  cfg.schedule.passes[0].ga_population = 64;
  cfg.schedule.passes[0].ga_generations = 2;
  cfg.schedule.passes[1].ga_population = 64;
  cfg.schedule.passes[1].ga_generations = 2;
  cfg.max_solutions_per_fault = 4;
  cfg.seed = 3;
  cfg.parallel.threads = GetParam();
  const auto r = hybrid::HybridAtpg(c, cfg).run();
  EXPECT_EQ(hash_sequence(r.test_set), 0xb9a5941295a3f26aULL);
  EXPECT_EQ(hash_segments(r.segments), 0xfa926ee8bf40e530ULL);
  EXPECT_EQ(hash_state(r.fault_state), 0x70b1ab61ce78e845ULL);
  EXPECT_EQ(r.detected(), 338u);
  EXPECT_EQ(r.untestable(), 131u);
  EXPECT_EQ(r.test_set.size(), 134u);
  EXPECT_EQ(r.segments.size(), 24u);
  EXPECT_EQ(r.counters.targeted, 1188);
  EXPECT_EQ(r.counters.forward_solutions, 1009);
  EXPECT_EQ(r.counters.ga_invocations, 848);
  EXPECT_EQ(r.counters.ga_successes, 19);
  EXPECT_EQ(r.counters.det_justify_calls, 144);
  EXPECT_EQ(r.counters.det_justify_successes, 12);
  EXPECT_EQ(r.counters.verify_failures, 24);
  EXPECT_EQ(r.counters.no_justification_needed, 17);
  EXPECT_EQ(r.counters.aborted_faults, 1033);
  ASSERT_EQ(r.passes.size(), 3u);
  EXPECT_EQ(r.passes[0].detected, 327u);
  EXPECT_EQ(r.passes[0].vectors, 121u);
  EXPECT_EQ(r.passes[0].untestable, 131u);
  EXPECT_EQ(r.passes[1].detected, 338u);
  EXPECT_EQ(r.passes[1].vectors, 134u);
  EXPECT_EQ(r.passes[2].detected, 338u);
}

TEST_P(GoldenEquivalence, SimGenS27) {
  const auto c = gen::make_circuit("s27");
  tpg::SimGenConfig cfg;
  cfg.population = 16;
  cfg.generations = 3;
  cfg.sequence_length = 8;
  cfg.fault_sample = 8;
  cfg.stagnation_rounds = 2;
  cfg.time_limit_s = 1000.0;
  cfg.seed = 7;
  cfg.faultsim.parallel.threads = GetParam();
  const auto r = tpg::SimulationTestGenerator(c, cfg).run();
  EXPECT_EQ(hash_sequence(r.test_set), 0x178cb02bb4482e41ULL);
  EXPECT_EQ(r.detected(), 32u);
  EXPECT_EQ(r.test_set.size(), 24u);
  EXPECT_EQ(r.rounds, 3);
  EXPECT_EQ(r.evaluations, 144);
}

TEST_P(GoldenEquivalence, SimGenG386) {
  const auto c = gen::make_circuit("g386");
  tpg::SimGenConfig cfg;
  cfg.population = 16;
  cfg.generations = 2;
  cfg.sequence_length = 12;
  cfg.fault_sample = 32;
  cfg.stagnation_rounds = 2;
  cfg.time_limit_s = 1000.0;
  cfg.seed = 11;
  cfg.faultsim.parallel.threads = GetParam();
  const auto r = tpg::SimulationTestGenerator(c, cfg).run();
  EXPECT_EQ(hash_sequence(r.test_set), 0xe7bddc98edbe3ca1ULL);
  EXPECT_EQ(r.detected(), 433u);
  EXPECT_EQ(r.test_set.size(), 156u);
  EXPECT_EQ(r.rounds, 13);
  EXPECT_EQ(r.evaluations, 416);
}

TEST_P(GoldenEquivalence, AlternatingS27) {
  const auto c = gen::make_circuit("s27");
  tpg::AlternatingConfig cfg;
  cfg.population = 16;
  cfg.generations = 2;
  cfg.sequence_length = 8;
  cfg.fault_sample = 8;
  cfg.switch_after = 1;
  cfg.time_limit_s = 1000.0;
  cfg.det_limits.time_limit_s = 1000.0;
  cfg.det_limits.max_backtracks = 500;
  cfg.seed = 5;
  cfg.faultsim.parallel.threads = GetParam();
  const auto r = tpg::alternating_hybrid_generate(c, cfg);
  EXPECT_EQ(hash_sequence(r.test_set), 0x188d926f93090259ULL);
  EXPECT_EQ(r.detected(), 32u);
  EXPECT_EQ(r.untestable(), 0u);
  EXPECT_EQ(r.test_set.size(), 24u);
  EXPECT_EQ(r.rounds, 3);
  EXPECT_EQ(r.counters.targeted, 0);
  EXPECT_EQ(r.counters.committed_tests, 0);
}

TEST_P(GoldenEquivalence, AlternatingG386) {
  const auto c = gen::make_circuit("g386");
  tpg::AlternatingConfig cfg;
  cfg.population = 16;
  cfg.generations = 2;
  cfg.sequence_length = 12;
  cfg.fault_sample = 16;
  cfg.switch_after = 1;
  cfg.time_limit_s = 1000.0;
  cfg.det_limits.time_limit_s = 1000.0;
  cfg.det_limits.max_backtracks = 300;
  cfg.det_failures_to_stop = 4;
  cfg.seed = 9;
  cfg.faultsim.parallel.threads = GetParam();
  const auto r = tpg::alternating_hybrid_generate(c, cfg);
  EXPECT_EQ(hash_sequence(r.test_set), 0xd71eca62b64b9ecbULL);
  EXPECT_EQ(r.detected(), 442u);
  EXPECT_EQ(r.untestable(), 5u);
  EXPECT_EQ(r.test_set.size(), 274u);
  EXPECT_EQ(r.rounds, 22);
  EXPECT_EQ(r.counters.targeted, 12);
  EXPECT_EQ(r.counters.committed_tests, 1);
}

INSTANTIATE_TEST_SUITE_P(Threads, GoldenEquivalence,
                         ::testing::Values(1u, 4u),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(GoldenEquivalenceSerial, RandomS27) {
  const auto c = gen::make_circuit("s27");
  tpg::RandomGenConfig cfg;
  cfg.seed = 3;
  const auto r = tpg::random_pattern_generate(c, cfg);
  EXPECT_EQ(hash_sequence(r.test_set), 0xe0ffcb59a81ec7e8ULL);
  EXPECT_EQ(r.detected(), 32u);
  EXPECT_EQ(r.test_set.size(), 64u);
}

TEST(GoldenEquivalenceSerial, WeightedRandomG526) {
  // Exercises the hoisted audition probe (reset_all between trials).
  const auto c = gen::make_circuit("g526");
  tpg::RandomGenConfig cfg;
  cfg.seed = 5;
  cfg.weighted = true;
  cfg.max_vectors = 512;
  const auto r = tpg::random_pattern_generate(c, cfg);
  EXPECT_EQ(hash_sequence(r.test_set), 0xce616436ab95c719ULL);
  EXPECT_EQ(r.detected(), 590u);
  EXPECT_EQ(r.test_set.size(), 512u);
  std::uint64_t wh = 0xcbf29ce484222325ULL;
  for (double w : r.weights) {
    wh = fnv1a(wh, static_cast<std::uint64_t>(w * 100));
  }
  EXPECT_EQ(wh, 0x70c0093f3ae5e9aaULL);
}

// ---------------------------------------------------------------------------
// Session plumbing

TEST(Session, SegmentsConcatenateToTestSet) {
  const auto c = gen::make_circuit("s27");
  hybrid::HybridConfig cfg;
  cfg.schedule = hybrid::PassSchedule::ga_hitec(1.0);
  cfg.seed = 7;
  const auto r = hybrid::HybridAtpg(c, cfg).run();
  sim::Sequence concat;
  for (const auto& seg : r.segments) {
    concat.insert(concat.end(), seg.begin(), seg.end());
  }
  EXPECT_EQ(concat, r.test_set);
}

class CountingObserver : public session::ProgressObserver {
 public:
  int begins = 0, pass_begins = 0, pass_ends = 0, ends = 0;
  std::vector<session::PassOutcome> rows;

  void on_session_begin(const session::Session&) override { ++begins; }
  void on_pass_begin(const session::Session&, std::size_t,
                     const session::PassConfig&) override {
    ++pass_begins;
  }
  void on_pass_end(const session::Session&, std::size_t,
                   const session::PassOutcome& outcome) override {
    ++pass_ends;
    rows.push_back(outcome);
  }
  void on_session_end(const session::Session&,
                      const session::SessionResult&) override {
    ++ends;
  }
};

TEST(Session, ObserverSeesEveryPass) {
  const auto c = gen::make_circuit("s27");
  hybrid::HybridConfig cfg;
  cfg.schedule = hybrid::PassSchedule::ga_hitec(1.0);
  cfg.seed = 7;
  CountingObserver observer;
  const auto r = hybrid::HybridAtpg(c, cfg).run(&observer);
  EXPECT_EQ(observer.begins, 1);
  EXPECT_EQ(observer.pass_begins, 3);
  EXPECT_EQ(observer.pass_ends, 3);
  EXPECT_EQ(observer.ends, 1);
  ASSERT_EQ(observer.rows.size(), r.passes.size());
  for (std::size_t i = 0; i < r.passes.size(); ++i) {
    EXPECT_EQ(observer.rows[i].detected, r.passes[i].detected);
    EXPECT_EQ(observer.rows[i].vectors, r.passes[i].vectors);
  }
}

}  // namespace
}  // namespace gatpg
