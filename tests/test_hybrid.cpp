#include <gtest/gtest.h>

#include "fault/grading.h"
#include "gen/registry.h"
#include "netlist/builder.h"
#include "gen/s27.h"
#include "helpers/exhaustive.h"
#include "hybrid/hybrid_atpg.h"

namespace gatpg::hybrid {
namespace {

HybridConfig fast_config(std::uint64_t seed = 1) {
  HybridConfig cfg;
  cfg.schedule = PassSchedule::ga_hitec(/*time_scale=*/0.05);
  // Keep CI time bounded: large analog circuits would otherwise spend the
  // full per-fault budget on every aborted fault.
  for (auto& pass : cfg.schedule.passes) pass.pass_budget_s = 2.0;
  cfg.seed = seed;
  return cfg;
}

TEST(PassSchedule, MatchesTableOne) {
  const PassSchedule s = PassSchedule::ga_hitec(1.0);
  ASSERT_EQ(s.passes.size(), 3u);
  EXPECT_EQ(s.passes[0].mode, JustifyMode::kGenetic);
  EXPECT_DOUBLE_EQ(s.passes[0].time_limit_s, 1.0);
  EXPECT_EQ(s.passes[0].ga_population, 64u);
  EXPECT_EQ(s.passes[0].ga_generations, 4u);
  EXPECT_EQ(s.passes[1].mode, JustifyMode::kGenetic);
  EXPECT_DOUBLE_EQ(s.passes[1].time_limit_s, 10.0);
  EXPECT_EQ(s.passes[1].ga_population, 128u);
  EXPECT_EQ(s.passes[1].ga_generations, 8u);
  EXPECT_DOUBLE_EQ(s.passes[1].seq_len_multiplier,
                   2.0 * s.passes[0].seq_len_multiplier);
  EXPECT_EQ(s.passes[2].mode, JustifyMode::kDeterministic);
  EXPECT_DOUBLE_EQ(s.passes[2].time_limit_s, 100.0);
}

TEST(PassSchedule, HitecBaselineEscalatesTimesAndBacktracks) {
  const PassSchedule s = PassSchedule::hitec(1.0);
  ASSERT_EQ(s.passes.size(), 3u);
  for (const auto& p : s.passes) {
    EXPECT_EQ(p.mode, JustifyMode::kDeterministic);
  }
  EXPECT_DOUBLE_EQ(s.passes[1].time_limit_s, 10 * s.passes[0].time_limit_s);
  EXPECT_EQ(s.passes[1].max_backtracks, 10 * s.passes[0].max_backtracks);
}

TEST(HybridAtpg, FullCoverageOnS27) {
  const auto c = gen::make_s27();
  HybridAtpg atpg(c, fast_config());
  const AtpgResult result = atpg.run();
  EXPECT_EQ(result.total_faults, 32u);
  EXPECT_EQ(result.detected() + result.untestable(), 32u);
  EXPECT_EQ(result.untestable(), 0u);  // s27 is fully testable
  // Independent grading must confirm every claimed detection.
  const auto report = fault::grade_sequence(c, result.test_set);
  EXPECT_EQ(report.detected, result.detected());
}

TEST(HybridAtpg, GradingNeverBelowClaimedDetections) {
  for (const char* name : {"g386", "mult4", "div4"}) {
    const auto c = gen::make_circuit(name);
    HybridConfig cfg = fast_config();
    cfg.schedule = PassSchedule::ga_hitec(0.01);
    HybridAtpg atpg(c, cfg);
    const AtpgResult result = atpg.run();
    const auto report = fault::grade_sequence(c, result.test_set);
    // Claimed detections are all verified before commit, so independent
    // grading of the full test set must reach at least that count.
    EXPECT_GE(report.detected, result.detected()) << name;
  }
}

TEST(HybridAtpg, PassOutcomesAreCumulative) {
  const auto c = gen::make_circuit("g386");
  HybridConfig cfg = fast_config();
  cfg.schedule = PassSchedule::ga_hitec(0.01);
  const AtpgResult result = HybridAtpg(c, cfg).run();
  ASSERT_EQ(result.passes.size(), 3u);
  for (std::size_t p = 1; p < result.passes.size(); ++p) {
    EXPECT_GE(result.passes[p].detected, result.passes[p - 1].detected);
    EXPECT_GE(result.passes[p].vectors, result.passes[p - 1].vectors);
    EXPECT_GE(result.passes[p].untestable, result.passes[p - 1].untestable);
    EXPECT_GE(result.passes[p].time_s, result.passes[p - 1].time_s);
  }
}

TEST(HybridAtpg, FaultStatesPartitionTheList) {
  const auto c = gen::make_s27();
  const AtpgResult result = HybridAtpg(c, fast_config()).run();
  std::size_t det = 0, unt = 0, und = 0;
  for (FaultState s : result.fault_state) {
    det += s == FaultState::kDetected;
    unt += s == FaultState::kUntestable;
    und += s == FaultState::kUndetected;
  }
  EXPECT_EQ(det, result.detected());
  EXPECT_EQ(unt, result.untestable());
  EXPECT_EQ(det + unt + und, result.total_faults);
}

TEST(HybridAtpg, UntestableClaimsHoldOnSmallCircuits) {
  // Redundant logic: y = a OR (a AND b); plus a state bit to make it
  // sequential.
  netlist::CircuitBuilder b;
  const auto a = b.add_input("a");
  const auto bb = b.add_input("b");
  const auto g = b.add_gate(netlist::GateType::kAnd, "g", {a, bb});
  const auto y = b.add_gate(netlist::GateType::kOr, "y", {a, g});
  const auto ff = b.add_dff("ff");
  b.set_dff_input(ff, y);
  b.mark_output(b.add_gate(netlist::GateType::kAnd, "z", {ff, y}));
  const auto c = std::move(b).build("red_seq");

  const AtpgResult result = HybridAtpg(c, fast_config()).run();
  const auto& faults = HybridAtpg(c, fast_config()).fault_list().faults;
  for (std::size_t i = 0; i < result.fault_state.size(); ++i) {
    if (result.fault_state[i] == FaultState::kUntestable) {
      const auto truth = test::exhaustively_detectable(c, faults[i]);
      if (truth.has_value()) {
        EXPECT_FALSE(*truth) << fault::to_string(c, faults[i]);
      }
    }
  }
  EXPECT_GT(result.untestable(), 0u) << "redundancy should be identified";
}

TEST(HybridAtpg, DeterministicForSameSeed) {
  const auto c = gen::make_s27();
  const AtpgResult a = HybridAtpg(c, fast_config(7)).run();
  const AtpgResult b = HybridAtpg(c, fast_config(7)).run();
  EXPECT_EQ(a.detected(), b.detected());
  EXPECT_EQ(a.test_set, b.test_set);
}

TEST(HybridAtpg, HitecModeAlsoCoversS27) {
  const auto c = gen::make_s27();
  HybridConfig cfg = fast_config();
  cfg.schedule = PassSchedule::hitec(0.05);
  const AtpgResult result = HybridAtpg(c, cfg).run();
  EXPECT_EQ(result.detected(), 32u);
  EXPECT_EQ(fault::grade_sequence(c, result.test_set).detected, 32u);
  // Pure deterministic mode never calls the GA.
  EXPECT_EQ(result.counters.ga_invocations, 0);
}

TEST(HybridAtpg, GaModeActuallyUsesGa) {
  const auto c = gen::make_circuit("g298");
  HybridConfig cfg = fast_config();
  cfg.schedule = PassSchedule::ga_hitec(0.01);
  const AtpgResult result = HybridAtpg(c, cfg).run();
  EXPECT_GT(result.counters.ga_invocations, 0);
}

TEST(HybridAtpg, PrefilterOnlyRemovesUntestables) {
  const auto c = gen::make_circuit("g386");
  HybridConfig plain = fast_config(3);
  plain.schedule = PassSchedule::ga_hitec(0.01);
  HybridConfig filtered = plain;
  filtered.prefilter_untestable = true;
  const AtpgResult a = HybridAtpg(c, plain).run();
  const AtpgResult b = HybridAtpg(c, filtered).run();
  // The prefilter must not reduce detections below the plain run by more
  // than noise; in particular everything it marks untestable must also be
  // consistent with the plain run's detections.
  for (std::size_t i = 0; i < a.fault_state.size(); ++i) {
    if (b.fault_state[i] == FaultState::kUntestable) {
      EXPECT_NE(a.fault_state[i], FaultState::kDetected)
          << "prefilter discarded a detectable fault (index " << i << ")";
    }
  }
}

TEST(HybridAtpg, SequenceLengthFollowsSchedule) {
  // seq_len_override wins over the depth multiplier (Table III note).
  const auto c = gen::make_s27();
  HybridConfig cfg = fast_config();
  cfg.schedule.passes[0].seq_len_override = 24;
  cfg.schedule.passes[1].seq_len_override = 48;
  EXPECT_NO_THROW(HybridAtpg(c, cfg).run());
}

}  // namespace
}  // namespace gatpg::hybrid
