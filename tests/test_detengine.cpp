#include <gtest/gtest.h>

#include "atpg/detengine.h"
#include "fault/faultlist.h"
#include "fault/faultsim.h"
#include "gen/s27.h"
#include "helpers/exhaustive.h"
#include "helpers/random_circuit.h"

namespace gatpg::atpg {
namespace {

using fault::Fault;
using sim::V3;

SearchLimits quick_limits() {
  SearchLimits l;
  l.time_limit_s = 2.0;
  l.max_backtracks = 20000;
  l.max_forward_frames = 8;
  return l;
}

/// Completes a solved forward engine's test into a runnable sequence by
/// filling X PI bits with 0 and prepending nothing (state requirements are
/// handled by assigning the required state directly to the simulator).
sim::Sequence filled(const sim::Sequence& seq) {
  sim::Sequence out = seq;
  for (auto& v : out) {
    for (auto& bit : v) {
      if (bit == V3::kX) bit = V3::k0;
    }
  }
  return out;
}

/// Checks a forward solution against an independent dual simulation: set
/// both machines to the required state (faulty machine included — the
/// engine's pseudo inputs constrain both planes), run the vectors, expect a
/// PO difference.
bool solution_detects(const netlist::Circuit& c, const Fault& f,
                      const sim::State3& state, const sim::Sequence& vectors) {
  test::ReferenceSimulator good(c);
  test::ReferenceSimulator bad(c, f);
  good.set_state(state);
  bad.set_state(state);
  for (const auto& v : filled(vectors)) {
    const auto gp = good.apply(v);
    const auto bp = bad.apply(v);
    for (std::size_t p = 0; p < gp.size(); ++p) {
      if (gp[p] != V3::kX && bp[p] != V3::kX && gp[p] != bp[p]) return true;
    }
    good.clock();
    bad.clock();
  }
  return false;
}

TEST(ForwardEngine, SolvesEasyS27Fault) {
  const auto c = gen::make_s27();
  // G17 is the only PO; its stem s-a-0 is detectable within one frame.
  const Fault f{c.find("G17"), fault::kOutputPin, false};
  ForwardEngine engine(c, f, quick_limits());
  const auto status = engine.next_solution(util::Deadline::unlimited());
  ASSERT_EQ(status, ForwardStatus::kSolved);
  EXPECT_TRUE(solution_detects(c, f, engine.required_state(),
                               engine.vectors()));
}

TEST(ForwardEngine, EverySolutionDetectsUnderRequiredState) {
  const auto c = gen::make_s27();
  for (const Fault& f : fault::collapse(c).faults) {
    ForwardEngine engine(c, f, quick_limits());
    const auto status = engine.next_solution(util::Deadline::unlimited());
    if (status != ForwardStatus::kSolved) continue;
    EXPECT_TRUE(solution_detects(c, f, engine.required_state(),
                                 engine.vectors()))
        << fault::to_string(c, f);
  }
}

TEST(ForwardEngine, AlternativeSolutionsAreAllValid) {
  const auto c = gen::make_s27();
  const Fault f{c.find("G10"), fault::kOutputPin, true};
  ForwardEngine engine(c, f, quick_limits());
  int solutions = 0;
  for (int i = 0; i < 5; ++i) {
    const auto status = engine.next_solution(util::Deadline::unlimited());
    if (status != ForwardStatus::kSolved) break;
    ++solutions;
    EXPECT_TRUE(solution_detects(c, f, engine.required_state(),
                                 engine.vectors()))
        << "solution " << i;
  }
  EXPECT_GE(solutions, 2) << "expected alternative solutions to exist";
}

TEST(ForwardEngine, CombinationallyRedundantFaultIsUntestable) {
  // y = a OR (a AND b): the AND gate is redundant; s-a-0 on its output is
  // untestable.
  netlist::CircuitBuilder b;
  const auto a = b.add_input("a");
  const auto bb = b.add_input("b");
  const auto g = b.add_gate(netlist::GateType::kAnd, "g", {a, bb});
  const auto y = b.add_gate(netlist::GateType::kOr, "y", {a, g});
  b.mark_output(y);
  const auto c = std::move(b).build("redund");
  const Fault f{g, fault::kOutputPin, false};
  ForwardEngine engine(c, f, quick_limits());
  EXPECT_EQ(engine.next_solution(util::Deadline::unlimited()),
            ForwardStatus::kUntestable);
}

TEST(ForwardEngine, DetectableFaultIsNeverCalledUntestable) {
  // y = a AND b is fully testable.
  netlist::CircuitBuilder b;
  const auto a = b.add_input("a");
  const auto bb = b.add_input("b");
  b.mark_output(b.add_gate(netlist::GateType::kAnd, "y", {a, bb}));
  const auto c = std::move(b).build("and2");
  for (const Fault& f : fault::collapse(c).faults) {
    ForwardEngine engine(c, f, quick_limits());
    EXPECT_EQ(engine.next_solution(util::Deadline::unlimited()),
              ForwardStatus::kSolved)
        << fault::to_string(c, f);
  }
}

TEST(ForwardEngine, RespectsBacktrackLimit) {
  test::RandomCircuitSpec spec;
  spec.seed = 4242;
  spec.num_gates = 60;
  const auto c = test::make_random_circuit(spec);
  SearchLimits tight = quick_limits();
  tight.max_backtracks = 0;
  // With zero backtracks allowed, the engine must terminate immediately on
  // the first conflict rather than search.
  for (const Fault& f : fault::collapse(c).faults) {
    ForwardEngine engine(c, f, tight);
    const auto status = engine.next_solution(util::Deadline::unlimited());
    EXPECT_LE(engine.stats().backtracks, 1);
    (void)status;  // any status is fine; bounded effort is the point
  }
}

TEST(ForwardEngine, RespectsDeadline) {
  test::RandomCircuitSpec spec;
  spec.seed = 99;
  spec.num_gates = 80;
  const auto c = test::make_random_circuit(spec);
  const Fault f = fault::collapse(c).faults[3];
  ForwardEngine engine(c, f, quick_limits());
  const auto expired = util::Deadline::after_seconds(1e-9);
  // Give the deadline a moment to be in the past.
  while (!expired.expired()) {
  }
  EXPECT_EQ(engine.next_solution(expired), ForwardStatus::kAborted);
}

// The soundness pillar: on small random sequential circuits, every
// "untestable" verdict must agree with exhaustive product-machine
// reachability, and every solved fault's test must actually detect it when
// the required state can be reached... here we check the stronger half
// (untestable => truly undetectable) plus solution validity.
class UntestableSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UntestableSoundness, UntestableClaimsAreTrue) {
  test::RandomCircuitSpec spec;
  spec.seed = GetParam() + 900;
  spec.num_inputs = 3;
  spec.num_ffs = 2;
  spec.num_gates = 12;
  const auto c = test::make_random_circuit(spec);
  for (const Fault& f : fault::collapse(c).faults) {
    ForwardEngine engine(c, f, quick_limits());
    const auto status = engine.next_solution(util::Deadline::unlimited());
    if (status == ForwardStatus::kUntestable) {
      const auto truth = test::exhaustively_detectable(c, f);
      if (truth.has_value()) {
        EXPECT_FALSE(*truth)
            << fault::to_string(c, f) << " claimed untestable but a test "
            << "exists (seed " << GetParam() << ")";
      }
    } else if (status == ForwardStatus::kSolved) {
      EXPECT_TRUE(solution_detects(c, f, engine.required_state(),
                                   engine.vectors()))
          << fault::to_string(c, f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, UntestableSoundness,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(ObservationDistances, PoIsZeroAndMonotone) {
  const auto c = gen::make_s27();
  const auto dist = observation_distances(c);
  for (auto po : c.primary_outputs()) EXPECT_EQ(dist[po], 0u);
  // Every node in s27 eventually reaches the PO.
  for (netlist::NodeId n = 0; n < c.node_count(); ++n) {
    EXPECT_LT(dist[n], 100000u) << c.name(n);
  }
}

}  // namespace
}  // namespace gatpg::atpg
