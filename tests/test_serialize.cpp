// Serialization-layer tests: archive primitive round-trips and validation,
// per-component snapshot round-trips (Rng, FaultManager, TestSetBuilder,
// StateStore), resume identity checks, and the kill-and-resume differential
// suite — a run checkpointed mid-pass at randomized points and resumed must
// finish bit-identical to the uninterrupted run, at worker-thread counts
// 1 and 4.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "fault/faultlist.h"
#include "gen/registry.h"
#include "hybrid/hybrid_atpg.h"
#include "netlist/depth.h"
#include "serialize/archive.h"
#include "session/fault_manager.h"
#include "session/session.h"
#include "session/test_set_builder.h"
#include "state/state_store.h"
#include "util/rng.h"

namespace gatpg {
namespace {

// ---------------------------------------------------------------------------
// Archive primitives

TEST(Archive, PrimitiveRoundTrip) {
  serialize::Writer w;
  w.begin_section("PRIM");
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.141592653589793);
  w.boolean(true);
  w.boolean(false);
  const std::uint8_t blob[] = {1, 2, 3, 4, 5};
  w.bytes(blob, sizeof blob);
  w.str("justify me");
  w.str("");
  w.end_section();

  serialize::Reader r(w.finish());
  r.enter_section("PRIM");
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  const std::vector<std::uint8_t> got = r.bytes();
  EXPECT_EQ(got, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(r.str(), "justify me");
  EXPECT_EQ(r.str(), "");
  r.leave_section();
  EXPECT_TRUE(r.at_end());
}

TEST(Archive, SectionsAreSelfDelimiting) {
  serialize::Writer w;
  w.begin_section("AAAA");
  w.u64(1);
  w.end_section();
  w.begin_section("BBBB");
  w.str("second");
  w.end_section();

  serialize::Reader r(w.finish());
  r.enter_section("AAAA");
  EXPECT_EQ(r.u64(), 1u);
  r.leave_section();
  r.enter_section("BBBB");
  EXPECT_EQ(r.str(), "second");
  r.leave_section();
  EXPECT_TRUE(r.at_end());
}

TEST(Archive, WrongSectionTagThrows) {
  serialize::Writer w;
  w.begin_section("GOOD");
  w.u32(7);
  w.end_section();
  serialize::Reader r(w.finish());
  EXPECT_THROW(r.enter_section("EVIL"), serialize::SnapshotError);
}

TEST(Archive, NestedSectionThrows) {
  serialize::Writer w;
  w.begin_section("OUTR");
  EXPECT_THROW(w.begin_section("INNR"), serialize::SnapshotError);
}

TEST(Archive, HeaderAndDigestValidation) {
  serialize::Writer w;
  w.begin_section("DATA");
  w.u64(0x1122334455667788ULL);
  w.end_section();
  const std::vector<std::uint8_t> good = w.finish();
  EXPECT_NO_THROW(serialize::Reader{good});

  // Truncated buffer.
  std::vector<std::uint8_t> cut(good.begin(), good.end() - 1);
  EXPECT_THROW(serialize::Reader{cut}, serialize::SnapshotError);

  // Bad magic (byte 0), bad version (byte 8), bad sentinel (byte 12),
  // corrupted payload byte (header is 16 bytes; payload follows).
  for (const std::size_t at : {std::size_t{0}, std::size_t{8},
                               std::size_t{12}, std::size_t{16}}) {
    std::vector<std::uint8_t> bad = good;
    bad[at] ^= 0x40;
    EXPECT_THROW(serialize::Reader{bad}, serialize::SnapshotError)
        << "corruption at byte " << at << " was not rejected";
  }
}

TEST(Archive, HugeLengthIsRejectedNotWrapped) {
  // A length field near SIZE_MAX must fail the bounds check, not wrap
  // pos_ + n and slip past it into invalid iterator arithmetic.
  serialize::Writer w;
  w.begin_section("EVIL");
  w.u64(~0ULL);  // claims SIZE_MAX payload bytes
  w.end_section();
  serialize::Reader r(w.finish());
  r.enter_section("EVIL");
  EXPECT_THROW(r.bytes(), serialize::SnapshotError);
}

TEST(Archive, CountRejectsImplausibleElementCounts) {
  serialize::Writer w;
  w.begin_section("CNTS");
  w.u64(3);  // plausible: three 8-byte elements follow
  for (int i = 0; i < 3; ++i) w.u64(static_cast<std::uint64_t>(i));
  w.u64(1u << 20);  // implausible: nothing follows
  w.end_section();
  serialize::Reader r(w.finish());
  r.enter_section("CNTS");
  EXPECT_EQ(r.count(8), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(r.u64(), static_cast<std::uint64_t>(i));
  EXPECT_THROW(r.count(8), serialize::SnapshotError);
}

TEST(Archive, FileRoundTripAndMissingFile) {
  const std::string path = testing::TempDir() + "archive_roundtrip.snap";
  serialize::Writer w;
  w.begin_section("FILE");
  w.str("on disk");
  w.end_section();
  w.write_file(path);

  serialize::Reader r = serialize::Reader::from_file(path);
  r.enter_section("FILE");
  EXPECT_EQ(r.str(), "on disk");
  r.leave_section();
  std::remove(path.c_str());

  EXPECT_THROW(serialize::Reader::from_file(testing::TempDir() +
                                            "does_not_exist.snap"),
               serialize::SnapshotError);
}

// ---------------------------------------------------------------------------
// Rng state capture

TEST(RngSnapshot, StateWordsContinueTheStream) {
  util::Rng a(123);
  for (int i = 0; i < 5; ++i) a();
  const auto words = a.state_words();
  std::vector<std::uint64_t> expect;
  for (int i = 0; i < 16; ++i) expect.push_back(a());

  util::Rng b(999);  // seed is irrelevant once the state is restored
  b.set_state_words(words);
  for (std::uint64_t v : expect) EXPECT_EQ(b(), v);
}

// ---------------------------------------------------------------------------
// Component round trips

fault::FaultList s27_faults() {
  static const netlist::Circuit c = gen::make_circuit("s27");
  return fault::collapse(c);
}

TEST(FaultManagerSnapshot, RoundTripRestoresEverything) {
  session::FaultManager fm(s27_faults());
  fm.begin_pass();
  fm.mark_detected(0);
  fm.mark_detected(7);
  fm.mark_untestable(3);
  fm.mark_aborted(5);
  fm.set_pass_cursor(11);

  serialize::Writer w;
  fm.save(w);
  session::FaultManager loaded(s27_faults());
  serialize::Reader r(w.finish());
  loaded.load(r);
  EXPECT_TRUE(r.at_end());

  EXPECT_EQ(loaded.digest(), fm.digest());
  EXPECT_EQ(loaded.status(), fm.status());
  EXPECT_EQ(loaded.detected_count(), 2u);
  EXPECT_EQ(loaded.untestable_count(), 1u);
  EXPECT_TRUE(loaded.aborted_this_pass(5));
  EXPECT_FALSE(loaded.aborted_this_pass(4));
  EXPECT_EQ(loaded.aborted_total(), 1);
  EXPECT_EQ(loaded.pass_cursor(), 11u);
}

TEST(FaultManagerSnapshot, DigestTracksContent) {
  session::FaultManager a(s27_faults());
  session::FaultManager b(s27_faults());
  EXPECT_EQ(a.digest(), b.digest());
  b.mark_detected(9);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(TestSetBuilderSnapshot, RoundTripPreservesInvariant) {
  using sim::V3;
  session::TestSetBuilder tb;
  tb.commit({{V3::k0, V3::k1}, {V3::kX, V3::k1}});
  tb.commit({{V3::k1, V3::k1}});
  tb.commit({});  // empty segment keeps its boundary

  serialize::Writer w;
  tb.save(w);
  session::TestSetBuilder loaded;
  serialize::Reader r(w.finish());
  loaded.load(r);
  EXPECT_TRUE(r.at_end());

  EXPECT_EQ(loaded.digest(), tb.digest());
  EXPECT_EQ(loaded.test_set(), tb.test_set());
  EXPECT_EQ(loaded.segments(), tb.segments());
  // Flat set == in-order concatenation of the segments, by construction.
  sim::Sequence concat;
  for (const sim::Sequence& seg : loaded.segments()) {
    concat.insert(concat.end(), seg.begin(), seg.end());
  }
  EXPECT_EQ(loaded.test_set(), concat);
}

TEST(StateStoreSnapshot, RoundTripAndConfigGuard) {
  using sim::V3;
  const netlist::Circuit c = gen::make_circuit("s27");
  state::StateStoreConfig cfg;
  cfg.enabled = true;
  state::StateStore store(c, cfg);

  sim::State3 cube(c.flip_flops().size(), V3::kX);
  cube[0] = V3::k1;
  store.record_unjustifiable(cube);
  sim::State3 cube2(c.flip_flops().size(), V3::kX);
  cube2[0] = V3::k0;
  sim::Sequence seq(2, sim::Vector3(c.primary_inputs().size(), V3::k0));
  store.record_justified(cube2, seq);
  store.cache_forward(4, seq, cube2);

  serialize::Writer w;
  store.save(w);
  const std::vector<std::uint8_t> archive = w.finish();

  state::StateStore loaded(c, cfg);
  serialize::Reader r(archive);
  loaded.load(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(loaded.digest(), store.digest());
  EXPECT_EQ(loaded.unjustifiable_size(), 1u);
  EXPECT_EQ(loaded.justified_size(), 1u);
  ASSERT_NE(loaded.cached_forward(4), nullptr);
  EXPECT_EQ(loaded.cached_forward(4)->vectors, seq);

  // A store configured with different cache caps would evict differently;
  // load() must reject the archive rather than diverge.
  state::StateStoreConfig other = cfg;
  other.max_justified = cfg.max_justified / 2;
  state::StateStore mismatched(c, other);
  serialize::Reader r2(archive);
  EXPECT_THROW(mismatched.load(r2), serialize::SnapshotError);
}

TEST(StateStoreSnapshot, ClearAfterPartialLoadRestoresTheColdState) {
  using sim::V3;
  const netlist::Circuit c = gen::make_circuit("s27");
  state::StateStoreConfig cfg;
  cfg.enabled = true;

  // Forge a structurally valid archive (good header and digest) that passes
  // the config guard but carries an invalid ternary byte, so load() throws
  // only after it has started repopulating the caches.
  serialize::Writer w;
  w.begin_section("STOR");
  w.boolean(cfg.enabled);
  w.u64(cfg.max_justified);
  w.u64(cfg.max_unjustifiable);
  w.u64(cfg.max_reachable);
  w.u64(cfg.max_near_misses);
  w.u32(cfg.max_verifies_per_lookup);
  w.f64(cfg.ga_seed_fraction);
  w.u64(1);   // one justified entry
  w.u64(1);   // cube of one literal
  w.u8(0);    // a valid ternary value
  w.u64(1);   // sequence of one vector
  w.u64(1);   // vector of one bit
  w.u8(99);   // invalid ternary value -> throws mid-load
  w.end_section();

  state::StateStore store(c, cfg);
  sim::State3 cube(c.flip_flops().size(), V3::kX);
  cube[0] = V3::k1;
  store.record_unjustifiable(cube);
  ASSERT_NE(store.digest(), state::StateStore(c, cfg).digest());

  serialize::Reader r(w.finish());
  EXPECT_THROW(store.load(r), serialize::SnapshotError);
  // The failed load left the store in a half-populated state; clear() must
  // return it to exactly the freshly-constructed (cold) state.
  store.clear();
  EXPECT_EQ(store.digest(), state::StateStore(c, cfg).digest());
  EXPECT_EQ(store.justified_size(), 0u);
  EXPECT_EQ(store.unjustifiable_size(), 0u);
}

TEST(StateStoreSnapshot, DropUnverifiedKeepsReverifiableKnowledge) {
  using sim::V3;
  const netlist::Circuit c = gen::make_circuit("s27");
  state::StateStoreConfig cfg;
  cfg.enabled = true;
  state::StateStore store(c, cfg);

  sim::State3 cube(c.flip_flops().size(), V3::kX);
  cube[0] = V3::k1;
  store.record_unjustifiable(cube);
  sim::State3 cube2(c.flip_flops().size(), V3::kX);
  cube2[0] = V3::k0;
  sim::Sequence seq(1, sim::Vector3(c.primary_inputs().size(), V3::k1));
  store.record_justified(cube2, seq);
  store.cache_forward(0, seq, cube2);

  store.drop_unverified();
  // Netlist-specific proofs and forward solutions are gone; the justified
  // cache (re-verified on every hit) survives.
  EXPECT_EQ(store.unjustifiable_size(), 0u);
  EXPECT_EQ(store.cached_forward(0), nullptr);
  EXPECT_EQ(store.justified_size(), 1u);
}

// ---------------------------------------------------------------------------
// Session checkpoint / resume

/// A deterministic two-pass GA+deterministic schedule whose limits are
/// backtrack/generation-bounded, never wall-clock-bounded, so every run is a
/// pure function of (circuit, fault list, seed) — the property the
/// differential suite depends on.
hybrid::HybridConfig cheap_config(unsigned threads) {
  hybrid::HybridConfig cfg;
  session::PassConfig ga;
  ga.mode = session::JustifyMode::kGenetic;
  ga.time_limit_s = 1000.0;
  ga.max_backtracks = 200;
  ga.ga_population = 64;
  ga.ga_generations = 2;
  ga.seq_len_multiplier = 2.0;
  session::PassConfig det;
  det.mode = session::JustifyMode::kDeterministic;
  det.time_limit_s = 1000.0;
  det.max_backtracks = 200;
  cfg.schedule.passes = {ga, det};
  cfg.max_solutions_per_fault = 4;
  cfg.seed = 7;
  cfg.parallel.threads = threads;
  cfg.state_store.enabled = true;
  return cfg;
}

session::SessionConfig session_config(const hybrid::HybridConfig& cfg) {
  session::SessionConfig scfg;
  scfg.faultsim = cfg.faultsim;
  scfg.faultsim.parallel = cfg.parallel;
  scfg.state_store = cfg.state_store;
  return scfg;
}

fault::FaultList capped_faults(const netlist::Circuit& c, std::size_t cap) {
  fault::FaultList full = fault::collapse(c);
  if (full.size() > cap) {
    full.faults.resize(cap);
    full.class_sizes.resize(cap);
  }
  return full;
}

session::SessionResult run_uninterrupted(const netlist::Circuit& c,
                                         const fault::FaultList& faults,
                                         const hybrid::HybridConfig& cfg) {
  session::Session s(c, faults, session_config(cfg));
  util::Rng rng(cfg.seed);
  hybrid::HybridEngine engine(c, cfg, netlist::sequential_depth(c), rng);
  return s.run(engine, cfg.schedule);
}

void expect_counters_equal(const session::EngineCounters& a,
                           const session::EngineCounters& b) {
  EXPECT_EQ(a.targeted, b.targeted);
  EXPECT_EQ(a.forward_solutions, b.forward_solutions);
  EXPECT_EQ(a.ga_invocations, b.ga_invocations);
  EXPECT_EQ(a.ga_successes, b.ga_successes);
  EXPECT_EQ(a.det_justify_calls, b.det_justify_calls);
  EXPECT_EQ(a.det_justify_successes, b.det_justify_successes);
  EXPECT_EQ(a.verify_failures, b.verify_failures);
  EXPECT_EQ(a.no_justification_needed, b.no_justification_needed);
  EXPECT_EQ(a.aborted_faults, b.aborted_faults);
  EXPECT_EQ(a.committed_tests, b.committed_tests);
  EXPECT_EQ(a.det_decisions, b.det_decisions);
  EXPECT_EQ(a.det_backtracks, b.det_backtracks);
  EXPECT_EQ(a.det_gate_evals, b.det_gate_evals);
  EXPECT_EQ(a.det_events, b.det_events);
  EXPECT_EQ(a.det_model_builds, b.det_model_builds);
  EXPECT_EQ(a.det_model_acquires, b.det_model_acquires);
  EXPECT_EQ(a.store.seq_hits, b.store.seq_hits);
  EXPECT_EQ(a.store.seq_misses, b.store.seq_misses);
  EXPECT_EQ(a.store.seq_inserts, b.store.seq_inserts);
  EXPECT_EQ(a.store.seq_verify_failures, b.store.seq_verify_failures);
  EXPECT_EQ(a.store.unjust_hits, b.store.unjust_hits);
  EXPECT_EQ(a.store.unjust_misses, b.store.unjust_misses);
  EXPECT_EQ(a.store.unjust_inserts, b.store.unjust_inserts);
  EXPECT_EQ(a.store.unjust_subsumed, b.store.unjust_subsumed);
  EXPECT_EQ(a.store.reachable_inserts, b.store.reachable_inserts);
  EXPECT_EQ(a.store.near_miss_inserts, b.store.near_miss_inserts);
  EXPECT_EQ(a.store.ga_seeds_served, b.store.ga_seeds_served);
  EXPECT_EQ(a.store.forward_cache_hits, b.store.forward_cache_hits);
  EXPECT_EQ(a.store.forward_cache_inserts, b.store.forward_cache_inserts);
}

/// Bit-for-bit equality of everything a run produces except wall-clock
/// times (PassOutcome::time_s is the one legitimately nondeterministic
/// field).
void expect_identical(const session::SessionResult& a,
                      const session::SessionResult& b) {
  EXPECT_EQ(a.digests.faults, b.digests.faults);
  EXPECT_EQ(a.digests.tests, b.digests.tests);
  EXPECT_EQ(a.digests.store, b.digests.store);
  EXPECT_EQ(a.fault_state, b.fault_state);
  EXPECT_EQ(a.test_set, b.test_set);
  EXPECT_EQ(a.segments, b.segments);
  EXPECT_EQ(a.total_faults, b.total_faults);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.evaluations, b.evaluations);
  ASSERT_EQ(a.passes.size(), b.passes.size());
  for (std::size_t p = 0; p < a.passes.size(); ++p) {
    EXPECT_EQ(a.passes[p].detected, b.passes[p].detected);
    EXPECT_EQ(a.passes[p].vectors, b.passes[p].vectors);
    EXPECT_EQ(a.passes[p].untestable, b.passes[p].untestable);
  }
  expect_counters_equal(a.counters, b.counters);
}

TEST(SessionSnapshot, ResumeRejectsMismatches) {
  const netlist::Circuit s27 = gen::make_circuit("s27");
  const fault::FaultList faults = fault::collapse(s27);
  const hybrid::HybridConfig cfg = cheap_config(1);
  const std::string snap = testing::TempDir() + "mismatch.snap";
  std::remove(snap.c_str());

  {
    session::SessionConfig scfg = session_config(cfg);
    scfg.checkpoint.path = snap;
    scfg.checkpoint.stop_after_ticks = 3;
    session::Session s(s27, faults, scfg);
    util::Rng rng(cfg.seed);
    hybrid::HybridEngine engine(s27, cfg, netlist::sequential_depth(s27), rng);
    s.run(engine, cfg.schedule);
  }
  ASSERT_NE(std::fopen(snap.c_str(), "rb"), nullptr);

  // Wrong circuit.
  {
    const netlist::Circuit other = gen::make_circuit("g344");
    session::Session s(other, session_config(cfg));
    util::Rng rng(cfg.seed);
    hybrid::HybridEngine engine(other, cfg, netlist::sequential_depth(other),
                                rng);
    EXPECT_THROW(s.resume(snap, engine), serialize::SnapshotError);
  }
  // Wrong fault-sim engine shape.
  {
    hybrid::HybridConfig shape = cfg;
    shape.faultsim.differential = !shape.faultsim.differential;
    session::Session s(s27, faults, session_config(shape));
    util::Rng rng(cfg.seed);
    hybrid::HybridEngine engine(s27, shape, netlist::sequential_depth(s27),
                                rng);
    EXPECT_THROW(s.resume(snap, engine), serialize::SnapshotError);
  }
  // Not a freshly constructed session.
  {
    session::Session s(s27, faults, session_config(cfg));
    util::Rng rng(cfg.seed);
    hybrid::HybridEngine engine(s27, cfg, netlist::sequential_depth(s27), rng);
    s.run(engine, cfg.schedule);
    EXPECT_THROW(s.resume(snap, engine), serialize::SnapshotError);
  }
  std::remove(snap.c_str());
}

TEST(SessionSnapshot, CheckpointOutsideRunIsNotResumable) {
  // A snapshot taken with no engine running carries no engine state; resume
  // must refuse it instead of continuing with an unprimed engine.
  const netlist::Circuit s27 = gen::make_circuit("s27");
  const fault::FaultList faults = fault::collapse(s27);
  const hybrid::HybridConfig cfg = cheap_config(1);
  const std::string snap = testing::TempDir() + "postrun.snap";

  session::Session s(s27, faults, session_config(cfg));
  s.checkpoint(snap);

  session::Session fresh(s27, faults, session_config(cfg));
  util::Rng rng(cfg.seed);
  hybrid::HybridEngine engine(s27, cfg, netlist::sequential_depth(s27), rng);
  EXPECT_THROW(fresh.resume(snap, engine), serialize::SnapshotError);
  std::remove(snap.c_str());
}

// The kill-and-resume differential suite: on every registry circuit, stop a
// run at a randomized mid-pass tick (writing one snapshot), resume it in a
// fresh session, and require the finished result to be bit-identical to the
// uninterrupted run — the tentpole property of the snapshot layer.
class KillResume : public ::testing::TestWithParam<unsigned> {};

TEST_P(KillResume, MidPassCheckpointResumesBitIdentical) {
  const unsigned threads = GetParam();
  util::Rng pick(0xC0FFEE + threads);  // randomized but reproducible stops
  for (const std::string& name : gen::registry_names()) {
    SCOPED_TRACE("circuit " + name);
    const netlist::Circuit c = gen::make_circuit(name);
    // Cap the population on the big circuits to keep the sweep bounded; the
    // differential is valid for any fixed fault list.
    const fault::FaultList faults = capped_faults(c, 40);
    ASSERT_GE(faults.size(), 12u);
    const hybrid::HybridConfig cfg = cheap_config(threads);

    const session::SessionResult reference = run_uninterrupted(c, faults, cfg);

    // Runs with stop_after_ticks = stop, resuming from the snapshot if the
    // stop fired (fault dropping can finish a run in very few ticks, so a
    // deep stop may never trigger — the run then completed uninterrupted
    // and must equal the reference directly).
    const auto kill_and_resume =
        [&](long stop) -> session::SessionResult {
      const std::string snap = testing::TempDir() + "kr_" + name + "_t" +
                               std::to_string(threads) + ".snap";
      std::remove(snap.c_str());
      session::SessionResult partial;
      {
        session::SessionConfig scfg = session_config(cfg);
        scfg.checkpoint.path = snap;
        scfg.checkpoint.stop_after_ticks = stop;
        session::Session s(c, faults, scfg);
        util::Rng rng(cfg.seed);
        hybrid::HybridEngine engine(c, cfg, netlist::sequential_depth(c),
                                    rng);
        partial = s.run(engine, cfg.schedule);
      }
      std::FILE* f = std::fopen(snap.c_str(), "rb");
      if (!f) return partial;  // stop never fired: completed uninterrupted
      std::fclose(f);
      EXPECT_LT(partial.passes.size(), cfg.schedule.passes.size());

      session::Session resumed(c, faults, session_config(cfg));
      util::Rng rng(cfg.seed);  // overwritten by the restored engine state
      hybrid::HybridEngine engine(c, cfg, netlist::sequential_depth(c), rng);
      resumed.resume(snap, engine);
      const session::SessionResult finished =
          resumed.run(engine, cfg.schedule);
      std::remove(snap.c_str());
      return finished;
    };

    {
      // The first tick always fires, so every circuit exercises a real
      // mid-pass resume at least once.
      SCOPED_TRACE("stop tick 1");
      expect_identical(reference, kill_and_resume(1));
    }
    {
      const long stop = 2 + static_cast<long>(pick.below(6));
      SCOPED_TRACE("stop tick " + std::to_string(stop));
      expect_identical(reference, kill_and_resume(stop));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, KillResume, ::testing::Values(1u, 4u));

}  // namespace
}  // namespace gatpg
