// Worker-pool layer tests: ThreadPool mechanics (reuse, exception
// propagation), parallel_for_chunks coverage/lane guarantees, and the
// load-bearing determinism contract — fault simulation, what_if grading,
// GA state justification, and the full hybrid ATPG must produce
// bit-identical results at threads=1 (the serial legacy path) and
// threads=4 (forced parallel, regardless of core count).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "fault/faultlist.h"
#include "fault/faultsim.h"
#include "gen/registry.h"
#include "gen/s27.h"
#include "helpers/random_circuit.h"
#include "hybrid/ga_justify.h"
#include "hybrid/hybrid_atpg.h"
#include "util/parallel.h"

namespace gatpg::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReusableAcrossSubmissionRounds) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 20; ++i) {
      futures.push_back(pool.submit([&count] { ++count; }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  auto bad = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker survives the exception and keeps serving tasks.
  auto good = pool.submit([] {});
  EXPECT_NO_THROW(good.get());
}

TEST(ThreadPool, EnsureWorkersOnlyGrows) {
  ThreadPool pool;
  EXPECT_EQ(pool.workers(), 0u);
  pool.ensure_workers(2);
  EXPECT_EQ(pool.workers(), 2u);
  pool.ensure_workers(1);
  EXPECT_EQ(pool.workers(), 2u);
  pool.ensure_workers(4);
  EXPECT_EQ(pool.workers(), 4u);
}

TEST(ParallelForChunks, CoversEveryChunkExactlyOnce) {
  const std::size_t n_items = 1000;
  const std::size_t chunk = 64;
  std::mutex mu;
  std::set<std::size_t> seen_chunks;
  std::vector<char> item_covered(n_items, 0);
  parallel_for_chunks(
      ParallelConfig{4}, n_items, chunk,
      [&](std::size_t ci, std::size_t begin, std::size_t end, unsigned lane) {
        std::lock_guard<std::mutex> lock(mu);
        EXPECT_LT(lane, 4u);
        EXPECT_EQ(begin, ci * chunk);
        EXPECT_LE(end, n_items);
        EXPECT_TRUE(seen_chunks.insert(ci).second) << "chunk ran twice";
        for (std::size_t i = begin; i < end; ++i) item_covered[i] = 1;
      });
  EXPECT_EQ(seen_chunks.size(), (n_items + chunk - 1) / chunk);
  for (std::size_t i = 0; i < n_items; ++i) {
    EXPECT_TRUE(item_covered[i]) << "item " << i << " missed";
  }
}

TEST(ParallelForChunks, SerialConfigRunsInlineInOrder) {
  std::vector<std::size_t> order;
  parallel_for_chunks(
      ParallelConfig{1}, 300, 64,
      [&](std::size_t ci, std::size_t, std::size_t, unsigned lane) {
        EXPECT_EQ(lane, 0u);
        order.push_back(ci);
      });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForChunks, LanesRunChunksSequentially) {
  // Static assignment: each lane's chunks must never overlap in time.
  const unsigned threads = 4;
  std::vector<std::atomic<int>> lane_active(threads);
  std::atomic<bool> overlap{false};
  parallel_for_chunks(
      ParallelConfig{threads}, 64 * 32, 64,
      [&](std::size_t, std::size_t, std::size_t, unsigned lane) {
        if (lane_active[lane].fetch_add(1) != 0) overlap = true;
        lane_active[lane].fetch_sub(1);
      });
  EXPECT_FALSE(overlap.load());
}

TEST(ParallelForChunks, PropagatesChunkExceptions) {
  EXPECT_THROW(
      parallel_for_chunks(ParallelConfig{4}, 640, 64,
                          [&](std::size_t ci, std::size_t, std::size_t,
                              unsigned) {
                            if (ci == 3) throw std::runtime_error("chunk");
                          }),
      std::runtime_error);
}

TEST(ParallelConfigTest, ZeroResolvesToHardware) {
  EXPECT_GE(ParallelConfig{0}.resolved(), 1u);
  EXPECT_EQ(ParallelConfig{1}.resolved(), 1u);
  EXPECT_EQ(ParallelConfig{6}.resolved(), 6u);
}

}  // namespace
}  // namespace gatpg::util

namespace gatpg::fault {
namespace {

// A circuit large enough for several 64-fault groups, so threads=4 really
// fans out.
netlist::Circuit grouped_circuit(std::uint64_t seed) {
  test::RandomCircuitSpec spec;
  spec.seed = seed;
  spec.num_inputs = 6;
  spec.num_ffs = 5;
  spec.num_gates = 90;
  spec.num_outputs = 4;
  return test::make_random_circuit(spec);
}

TEST(ParallelFaultSim, RunBitIdenticalAcrossThreadCounts) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    const auto c = grouped_circuit(seed);
    const auto faults = collapse(c).faults;
    ASSERT_GT(faults.size(), 64u) << "want multiple fault groups";

    FaultSimulator serial(c, faults, {1});
    FaultSimulator parallel(c, faults, {4});
    util::Rng rng_a(seed * 3), rng_b(seed * 3);
    for (int step = 0; step < 4; ++step) {
      const auto seq = test::random_sequence(c, rng_a, 9, 0.1);
      const auto seq_b = test::random_sequence(c, rng_b, 9, 0.1);
      ASSERT_EQ(seq, seq_b);
      // Identical newly-detected lists, in identical order.
      EXPECT_EQ(serial.run(seq), parallel.run(seq));
      EXPECT_EQ(serial.detected(), parallel.detected());
      EXPECT_EQ(serial.detected_count(), parallel.detected_count());
      EXPECT_EQ(serial.good_state(), parallel.good_state());
    }
  }
}

TEST(ParallelFaultSim, WhatIfBitIdenticalAcrossThreadCounts) {
  const auto c = grouped_circuit(21);
  const auto faults = collapse(c).faults;
  std::vector<std::size_t> all(faults.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;

  FaultSimulator serial(c, faults, {1});
  FaultSimulator parallel(c, faults, {4});
  util::Rng rng(99);
  // Establish identical session state first, then grade probes.
  const auto warmup = test::random_sequence(c, rng, 6, 0.05);
  serial.run(warmup);
  parallel.run(warmup);
  for (int i = 0; i < 3; ++i) {
    const auto probe = test::random_sequence(c, rng, 7, 0.1);
    const auto a = serial.what_if(all, probe);
    const auto b = parallel.what_if(all, probe);
    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.state_effects, b.state_effects);
  }
}

TEST(ParallelFaultSim, OddThreadCountAlsoIdentical) {
  const auto c = grouped_circuit(31);
  const auto faults = collapse(c).faults;
  FaultSimulator serial(c, faults, {1});
  FaultSimulator parallel(c, faults, {3});
  util::Rng rng(7);
  const auto seq = test::random_sequence(c, rng, 12, 0.1);
  EXPECT_EQ(serial.run(seq), parallel.run(seq));
  EXPECT_EQ(serial.detected(), parallel.detected());
}

}  // namespace
}  // namespace gatpg::fault

namespace gatpg::hybrid {
namespace {

using sim::State3;
using sim::V3;

GaJustifyResult justify_with_threads(const netlist::Circuit& c,
                                     const fault::Fault& f,
                                     const State3& target,
                                     const State3& current,
                                     unsigned threads,
                                     std::uint64_t seed) {
  GaJustifyConfig config;
  config.population = 128;  // two sub-batches, so threads=4 actually splits
  config.generations = 6;
  config.sequence_length = 8;
  config.seed = seed;
  config.parallel.threads = threads;
  const State3 all_x(c.flip_flops().size(), V3::kX);
  return GaStateJustifier(c).justify(f, target, all_x, current, config,
                                     util::Deadline::unlimited());
}

TEST(ParallelGaJustify, ResultsBitIdenticalAcrossThreadCounts) {
  const auto c = gen::make_s27();
  const fault::Fault f{c.primary_outputs()[0], fault::kOutputPin, false};
  const State3 current(c.flip_flops().size(), V3::kX);
  // Both a reachable target (success path, early exit) and an impossible
  // one (failure path, full fitness evaluation) must match bit-for-bit.
  const std::vector<State3> targets = {
      State3{V3::k0, V3::k1, V3::k0},
      State3{V3::k1, V3::k1, V3::k1},
      State3{V3::kX, V3::k1, V3::kX},
  };
  for (std::uint64_t seed : {1u, 5u, 9u}) {
    for (const State3& target : targets) {
      const auto serial = justify_with_threads(c, f, target, current, 1, seed);
      for (unsigned threads : {2u, 4u}) {
        const auto parallel =
            justify_with_threads(c, f, target, current, threads, seed);
        EXPECT_EQ(serial.success, parallel.success);
        EXPECT_EQ(serial.sequence, parallel.sequence);
        EXPECT_DOUBLE_EQ(serial.best_fitness, parallel.best_fitness);
        EXPECT_EQ(serial.evaluations, parallel.evaluations);
        EXPECT_EQ(serial.generations_run, parallel.generations_run);
      }
    }
  }
}

TEST(ParallelHybridAtpg, TestSetBitIdenticalAcrossThreadCounts) {
  const auto c = gen::make_s27();
  auto run_with = [&](unsigned threads) {
    HybridConfig config;
    config.schedule = PassSchedule::ga_hitec();
    // Deterministic resource limits only: wall-clock deadlines could expire
    // differently between the two runs and mask a real divergence (s27 is
    // small enough to run uncapped).
    for (auto& pass : config.schedule.passes) {
      pass.time_limit_s = 0;
      pass.pass_budget_s = 0;
    }
    config.seed = 3;
    config.parallel.threads = threads;
    return HybridAtpg(c, config).run();
  };
  const auto serial = run_with(1);
  const auto parallel = run_with(4);
  EXPECT_EQ(serial.test_set, parallel.test_set);
  EXPECT_EQ(serial.fault_state, parallel.fault_state);
  EXPECT_EQ(serial.detected(), parallel.detected());
  EXPECT_EQ(serial.untestable(), parallel.untestable());
}

}  // namespace
}  // namespace gatpg::hybrid
