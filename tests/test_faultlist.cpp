#include <gtest/gtest.h>

#include <set>

#include "fault/faultlist.h"
#include "gen/s27.h"
#include "helpers/random_circuit.h"
#include "helpers/reference_sim.h"

namespace gatpg::fault {
namespace {

TEST(FaultUniverse, CountsStemsAndBranches) {
  // a, b -> AND g -> output.  Universe: stems on a, b, g (6) + branch pins
  // on g (4) = 10.
  netlist::CircuitBuilder b;
  const auto a = b.add_input("a");
  const auto bb = b.add_input("b");
  const auto g = b.add_gate(netlist::GateType::kAnd, "g", {a, bb});
  b.mark_output(g);
  const auto c = std::move(b).build("and2");
  EXPECT_EQ(all_pin_faults(c).size(), 10u);
}

TEST(FaultUniverse, SkipsConstants) {
  netlist::CircuitBuilder b;
  const auto a = b.add_input("a");
  const auto k = b.add_const(true, "k");
  b.mark_output(b.add_gate(netlist::GateType::kAnd, "g", {a, k}));
  const auto c = std::move(b).build("withconst");
  for (const Fault& f : all_pin_faults(c)) {
    EXPECT_NE(c.name(f.node), "k");
  }
}

TEST(Collapse, SingleAndGate) {
  // Classic result: a 2-input AND with fanout-free inputs collapses
  // 10 faults to 4 classes (in-a-sa1, in-b-sa1, out-sa1, {out-sa0 = a-sa0 =
  // b-sa0}... plus stem/branch merging of the PI stems).
  netlist::CircuitBuilder b;
  const auto a = b.add_input("a");
  const auto bb = b.add_input("b");
  b.mark_output(b.add_gate(netlist::GateType::kAnd, "g", {a, bb}));
  const auto c = std::move(b).build("and2");
  const FaultList list = collapse(c);
  EXPECT_EQ(list.size(), 4u);
  unsigned total = 0;
  for (unsigned s : list.class_sizes) total += s;
  EXPECT_EQ(total, 10u);
}

TEST(Collapse, InverterChainCollapsesToTwo) {
  netlist::CircuitBuilder b;
  const auto a = b.add_input("a");
  const auto n1 = b.add_gate(netlist::GateType::kNot, "n1", {a});
  const auto n2 = b.add_gate(netlist::GateType::kNot, "n2", {n1});
  b.mark_output(n2);
  const auto c = std::move(b).build("invchain");
  EXPECT_EQ(collapse(c).size(), 2u);
}

TEST(Collapse, FanoutBranchesStayDistinct) {
  // a feeds two gates: branch faults must not merge with the stem.
  netlist::CircuitBuilder b;
  const auto a = b.add_input("a");
  const auto x = b.add_input("x");
  b.mark_output(b.add_gate(netlist::GateType::kAnd, "g1", {a, x}));
  b.mark_output(b.add_gate(netlist::GateType::kOr, "g2", {a, x}));
  const auto c = std::move(b).build("fanout");
  const FaultList list = collapse(c);
  // The sa-1 on g1's a-branch and sa-0 on g2's a-branch stay separate from
  // the stem classes.
  std::set<std::string> reps;
  for (const Fault& f : list.faults) reps.insert(to_string(c, f));
  EXPECT_GT(list.size(), 6u);
}

TEST(Collapse, RepresentativesCoverWholeUniverse) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    test::RandomCircuitSpec spec;
    spec.seed = seed;
    const auto c = test::make_random_circuit(spec);
    const auto universe = all_pin_faults(c);
    const FaultList list = collapse(c);
    unsigned total = 0;
    for (unsigned s : list.class_sizes) total += s;
    EXPECT_EQ(total, universe.size());
    EXPECT_LE(list.size(), universe.size());
    EXPECT_GE(list.size(), 2u);
  }
}

TEST(Collapse, S27HasThirtyTwoCollapsedFaults) {
  // The standard collapsed fault count for s27 is 32.
  EXPECT_EQ(collapse(gen::make_s27()).size(), 32u);
}

// Soundness of the equivalence rules: for random circuits and random
// sequences, every fault in a class has the same detection status as its
// representative.
class CollapseEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CollapseEquivalence, ClassMembersDetectTogether) {
  test::RandomCircuitSpec spec;
  spec.seed = GetParam() + 40;
  spec.num_gates = 15;
  spec.num_ffs = 2;
  const auto c = test::make_random_circuit(spec);
  util::Rng rng(GetParam());
  const auto seq = test::random_sequence(c, rng, 6);

  // Recompute the classes the same way collapse() does, then check pairwise
  // agreement via the reference simulator.  We approximate by checking that
  // representative detection == detection of every universe fault mapped
  // into some class with identical to_string keys is infeasible; instead
  // verify the defining local rules directly on gates of the circuit.
  for (netlist::NodeId n = 0; n < c.node_count(); ++n) {
    const auto t = c.type(n);
    if (t == netlist::GateType::kAnd || t == netlist::GateType::kNand) {
      const bool out_v = netlist::inverts(t);
      for (std::size_t p = 0; p < c.fanin_count(n); ++p) {
        const Fault in_f{n, static_cast<int>(p), false};
        const Fault out_f{n, kOutputPin, out_v};
        EXPECT_EQ(test::reference_detects(c, in_f, seq),
                  test::reference_detects(c, out_f, seq))
            << to_string(c, in_f) << " vs " << to_string(c, out_f);
      }
    }
    if (t == netlist::GateType::kOr || t == netlist::GateType::kNor) {
      const bool out_v = !netlist::inverts(t);
      for (std::size_t p = 0; p < c.fanin_count(n); ++p) {
        const Fault in_f{n, static_cast<int>(p), true};
        const Fault out_f{n, kOutputPin, out_v};
        EXPECT_EQ(test::reference_detects(c, in_f, seq),
                  test::reference_detects(c, out_f, seq));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, CollapseEquivalence,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace gatpg::fault
