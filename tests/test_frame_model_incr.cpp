// Differential tests for the FrameModel implication engines and storage
// layouts: the event-driven incremental engine (default) must agree
// bit-for-bit with the oblivious full re-simulation reference, and the flat
// composite-byte layout (default) must agree bit-for-bit — values, trail
// marks, D-frontier contents and order, and effort stats — with the legacy
// nested-vector layout, on randomized operation sequences (assignments,
// clears, window extensions, trail-based backtracking) over every registry
// circuit; the deterministic search built on top must make identical
// decisions in every mode/layout combination.  FrameModelPool reuse
// (reset-and-reuse instead of per-fault construction) must also be
// bit-identical and must retain buffer capacity across shrink/grow cycles.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "atpg/detengine.h"
#include "atpg/frame_model.h"
#include "atpg/justify.h"
#include "fault/faultlist.h"
#include "gen/registry.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace gatpg::atpg {
namespace {

using fault::Fault;
using sim::V3;

constexpr unsigned kMaxFrames = 5;

/// Asserts that every observable of the two models matches: window size,
/// both value planes of every active frame, the fault-effect summaries, the
/// D-frontier (contents *and* order), and the extracted vectors/state.
void expect_agree(const netlist::Circuit& c, FrameModel& incr,
                  FrameModel& obl, const std::string& context) {
  ASSERT_EQ(incr.frame_count(), obl.frame_count()) << context;
  for (unsigned t = 0; t < incr.frame_count(); ++t) {
    for (netlist::NodeId n = 0; n < c.node_count(); ++n) {
      ASSERT_EQ(incr.good(t, n), obl.good(t, n))
          << context << " good frame " << t << " node " << c.name(n);
      if (incr.has_fault()) {
        ASSERT_EQ(incr.faulty(t, n), obl.faulty(t, n))
            << context << " faulty frame " << t << " node " << c.name(n);
      }
    }
    ASSERT_EQ(incr.d_reaches_ff_input(t), obl.d_reaches_ff_input(t))
        << context << " d_reaches_ff_input frame " << t;
  }
  ASSERT_EQ(incr.po_has_d(), obl.po_has_d()) << context;
  const auto fi = incr.d_frontier();
  const auto fo = obl.d_frontier();
  ASSERT_EQ(fi.size(), fo.size()) << context << " d_frontier size";
  for (std::size_t k = 0; k < fi.size(); ++k) {
    ASSERT_EQ(fi[k].frame, fo[k].frame) << context << " d_frontier[" << k
                                        << "]";
    ASSERT_EQ(fi[k].node, fo[k].node) << context << " d_frontier[" << k
                                      << "]";
  }
  ASSERT_EQ(incr.extract_vectors(), obl.extract_vectors()) << context;
  ASSERT_EQ(incr.extract_state(), obl.extract_state()) << context;
}

/// One randomized push/backtrack session against both engines.  Pushed ops
/// mirror DecisionStack usage: a trail mark + frame count are recorded
/// before each op so backtracking can restore the incremental model via
/// undo_to while the oblivious model reverse-applies the recorded
/// assignments and re-simulates.
void run_random_session(const netlist::Circuit& c,
                        const std::optional<Fault>& fault, unsigned ops,
                        std::uint64_t seed) {
  FrameModel incr(c, fault, kMaxFrames);  // incremental is the default
  FrameModel obl(c, fault, kMaxFrames, FrameModelConfig{false});
  ASSERT_TRUE(incr.incremental());
  ASSERT_FALSE(obl.incremental());

  struct Undo {
    bool is_pi = false;
    bool is_state = false;
    unsigned frame = 0;
    std::size_t index = 0;
    V3 old_value = V3::kX;
  };
  struct PushedOp {
    std::size_t mark = 0;
    unsigned frames_at_push = 1;
    std::vector<Undo> undos;
  };
  std::vector<PushedOp> stack;

  util::Rng rng(seed);
  const std::size_t npi = c.primary_inputs().size();
  const std::size_t nff = c.flip_flops().size();
  const V3 values[3] = {V3::k0, V3::k1, V3::kX};

  const std::string base =
      c.name() + (fault ? " fault@" + c.name(fault->node) : " no-fault");
  for (unsigned op = 0; op < ops; ++op) {
    const std::string context = base + " op " + std::to_string(op);
    const std::uint64_t kind = rng.below(10);
    if (kind < 3 && !stack.empty()) {
      // Backtrack: restore to the state before the most recent push.
      const PushedOp popped = stack.back();
      stack.pop_back();
      incr.undo_to(popped.mark);
      incr.set_frame_count(popped.frames_at_push);
      for (auto it = popped.undos.rbegin(); it != popped.undos.rend(); ++it) {
        if (it->is_pi) {
          obl.assign_pi(it->frame, it->index, it->old_value);
        } else if (it->is_state) {
          obl.assign_state(it->index, it->old_value);
        }
      }
      obl.set_frame_count(popped.frames_at_push);
      obl.simulate();
    } else {
      PushedOp pushed;
      pushed.mark = incr.trail_mark();
      pushed.frames_at_push = incr.frame_count();
      if (kind < 5 && incr.frame_count() < kMaxFrames) {
        ASSERT_TRUE(incr.extend()) << context;
        ASSERT_TRUE(obl.extend()) << context;
      } else if (nff > 0 && kind < 7) {
        Undo u;
        u.is_state = true;
        u.index = rng.below(nff);
        u.old_value = incr.state_value(u.index);
        const V3 v = values[rng.below(3)];
        incr.assign_state(u.index, v);
        obl.assign_state(u.index, v);
        pushed.undos.push_back(u);
      } else if (npi > 0) {
        Undo u;
        u.is_pi = true;
        u.frame = static_cast<unsigned>(rng.below(incr.frame_count()));
        u.index = rng.below(npi);
        u.old_value = incr.pi_value(u.frame, u.index);
        const V3 v = values[rng.below(3)];
        incr.assign_pi(u.frame, u.index, v);
        obl.assign_pi(u.frame, u.index, v);
        pushed.undos.push_back(u);
      }
      obl.simulate();
      stack.push_back(std::move(pushed));
    }
    incr.simulate();  // must be a safe no-op in incremental mode
    expect_agree(c, incr, obl, context);
  }

  // Full unwind: the trail must restore the exact post-construction state.
  if (!stack.empty()) incr.undo_to(stack.front().mark);
  incr.set_frame_count(1);
  FrameModel fresh(c, fault, kMaxFrames);
  for (std::size_t i = 0; i < npi; ++i) {
    ASSERT_EQ(incr.pi_value(0, i), V3::kX) << base;
  }
  for (std::size_t i = 0; i < nff; ++i) {
    ASSERT_EQ(incr.state_value(i), V3::kX) << base;
  }
  for (netlist::NodeId n = 0; n < c.node_count(); ++n) {
    ASSERT_EQ(incr.good(0, n), fresh.good(0, n)) << base << " " << c.name(n);
    if (fault) {
      ASSERT_EQ(incr.faulty(0, n), fresh.faulty(0, n))
          << base << " " << c.name(n);
    }
  }
}

/// A spread of faults across the collapsed list (first, last, evenly
/// spaced), bounded by `count`.
std::vector<Fault> sample_faults(const netlist::Circuit& c,
                                 std::size_t count) {
  const auto all = fault::collapse(c).faults;
  std::vector<Fault> picked;
  if (all.empty() || count == 0) return picked;
  const std::size_t stride = std::max<std::size_t>(1, all.size() / count);
  for (std::size_t i = 0; i < all.size() && picked.size() < count;
       i += stride) {
    picked.push_back(all[i]);
  }
  return picked;
}

TEST(FrameModelIncr, RandomizedOpsAgreeOnAllRegistryCircuits) {
  for (const std::string& name : gen::registry_names()) {
    const auto c = gen::make_circuit(name);
    const bool large = c.node_count() > 1500;
    const unsigned ops = large ? 12 : 48;
    run_random_session(c, std::nullopt, ops, 0xabc0 + c.node_count());
    const std::size_t fault_count = large ? 1 : 3;
    std::uint64_t seed = 17;
    for (const Fault& f : sample_faults(c, fault_count)) {
      run_random_session(c, f, ops, seed++);
    }
  }
}

TEST(FrameModelIncr, ObliviousTrailIsInertButDocumented) {
  const auto c = gen::make_circuit("s27");
  FrameModel m(c, std::nullopt, 3, FrameModelConfig{false});
  EXPECT_EQ(m.trail_mark(), 0u);
  m.assign_pi(0, 0, V3::k1);
  m.simulate();
  EXPECT_EQ(m.trail_mark(), 0u);
  m.undo_to(0);  // documented no-op
  EXPECT_EQ(m.pi_value(0, 0), V3::k1);
}

/// Runs one fault through ForwardEngine in the given mode and records every
/// observable of the search: per-solution status, vectors, minimized state,
/// and the final decision/backtrack counts.
struct SearchRecord {
  std::vector<ForwardStatus> statuses;
  std::vector<sim::Sequence> vectors;
  std::vector<sim::State3> states;
  long decisions = 0;
  long backtracks = 0;

  bool operator==(const SearchRecord&) const = default;
};

SearchRecord run_search(const netlist::Circuit& c, const Fault& f,
                        bool incremental, const ObsDistances& obs,
                        bool flat = true, FrameModelPool* pool = nullptr) {
  SearchLimits limits;
  limits.max_backtracks = 150;
  limits.max_forward_frames = 6;
  limits.incremental_model = incremental;
  limits.flat_model = flat;
  ForwardEngine engine(c, f, limits, obs, pool);
  // The unlimited deadline keeps the comparison deterministic: both modes
  // clip on the backtrack budget, never on wall clock.
  const auto deadline = util::Deadline::unlimited();
  SearchRecord r;
  for (unsigned s = 0; s < 3; ++s) {
    const ForwardStatus status = engine.next_solution(deadline);
    r.statuses.push_back(status);
    if (status != ForwardStatus::kSolved) break;
    r.vectors.push_back(engine.vectors());
    r.states.push_back(engine.required_state());
  }
  r.decisions = engine.stats().decisions;
  r.backtracks = engine.stats().backtracks;
  // Both modes must report implication effort through the same counters
  // (event pops exist only in incremental mode; a search that dies on an
  // immediate excitation conflict may legitimately pop none).
  EXPECT_GT(engine.stats().gate_evals, 0);
  if (!incremental) EXPECT_EQ(engine.stats().events, 0);
  return r;
}

TEST(FrameModelIncr, ForwardEngineIsModeDeterministic) {
  for (const std::string& name : gen::registry_names()) {
    const auto c = gen::make_circuit(name);
    const bool large = c.node_count() > 1500;
    const auto obs = share_observation_distances(c);
    for (const Fault& f : sample_faults(c, large ? 2 : 6)) {
      const SearchRecord oblivious = run_search(c, f, false, obs);
      const SearchRecord incremental = run_search(c, f, true, obs);
      EXPECT_EQ(oblivious, incremental)
          << name << " fault at " << c.name(f.node) << " pin " << f.pin
          << " sa" << int(f.stuck_at);
    }
  }
}

TEST(FrameModelIncr, JustifierIsModeDeterministic) {
  for (const std::string& name :
       {std::string("s27"), std::string("g298"), std::string("g526")}) {
    const auto c = gen::make_circuit(name);
    const auto obs = share_observation_distances(c);
    const std::size_t nff = c.flip_flops().size();
    util::Rng rng(7);
    for (int trial = 0; trial < 4; ++trial) {
      // Target states come from forward solutions so that a mix of
      // justifiable and unjustifiable goals is exercised.
      sim::State3 target(nff, V3::kX);
      for (std::size_t i = 0; i < nff; ++i) {
        const V3 values[3] = {V3::k0, V3::k1, V3::kX};
        target[i] = values[rng.below(3)];
      }
      SearchLimits limits;
      limits.max_backtracks = 100;
      limits.max_justify_depth = 6;
      limits.time_limit_s = 3600.0;  // determinism: clip on backtracks only

      limits.incremental_model = false;
      DeterministicJustifier obl(c, limits);
      const auto ro = obl.justify(target, util::Deadline::unlimited());

      limits.incremental_model = true;
      DeterministicJustifier incr(c, limits);
      const auto ri = incr.justify(target, util::Deadline::unlimited());

      EXPECT_EQ(static_cast<int>(ro.status), static_cast<int>(ri.status))
          << name << " trial " << trial;
      EXPECT_EQ(ro.sequence, ri.sequence) << name << " trial " << trial;
      EXPECT_EQ(obl.stats().decisions, incr.stats().decisions)
          << name << " trial " << trial;
      EXPECT_EQ(obl.stats().backtracks, incr.stats().backtracks)
          << name << " trial " << trial;
    }
  }
}

// -- Flat vs legacy layout ---------------------------------------------------

/// One randomized session driven identically against both storage layouts
/// under the same implication engine.  Beyond the value/frontier agreement
/// of expect_agree, the layouts must also agree on trail marks (entry for
/// entry — DecisionStack marks recorded on one layout must mean the same
/// thing on the other) and on the effort stats (gate_evals, events).
void run_layout_session(const netlist::Circuit& c,
                        const std::optional<Fault>& fault, bool incremental,
                        unsigned ops, std::uint64_t seed) {
  FrameModel flat(c, fault, kMaxFrames, FrameModelConfig{incremental, true});
  FrameModel legacy(c, fault, kMaxFrames,
                    FrameModelConfig{incremental, false});
  ASSERT_TRUE(flat.flat());
  ASSERT_FALSE(legacy.flat());

  struct Undo {
    bool is_pi = false;
    unsigned frame = 0;
    std::size_t index = 0;
    V3 old_value = V3::kX;
  };
  struct PushedOp {
    std::size_t mark = 0;
    unsigned frames_at_push = 1;
    std::vector<Undo> undos;
  };
  std::vector<PushedOp> stack;

  util::Rng rng(seed);
  const std::size_t npi = c.primary_inputs().size();
  const std::size_t nff = c.flip_flops().size();
  const V3 values[3] = {V3::k0, V3::k1, V3::kX};
  const std::string base = c.name() +
                           (fault ? " fault@" + c.name(fault->node)
                                  : " no-fault") +
                           (incremental ? " incr" : " obl");
  for (unsigned op = 0; op < ops; ++op) {
    const std::string context = base + " op " + std::to_string(op);
    const std::uint64_t kind = rng.below(10);
    if (kind < 3 && !stack.empty()) {
      const PushedOp popped = stack.back();
      stack.pop_back();
      if (incremental) {
        flat.undo_to(popped.mark);
        legacy.undo_to(popped.mark);
      } else {
        for (auto it = popped.undos.rbegin(); it != popped.undos.rend();
             ++it) {
          if (it->is_pi) {
            flat.assign_pi(it->frame, it->index, it->old_value);
            legacy.assign_pi(it->frame, it->index, it->old_value);
          } else {
            flat.assign_state(it->index, it->old_value);
            legacy.assign_state(it->index, it->old_value);
          }
        }
      }
      flat.set_frame_count(popped.frames_at_push);
      legacy.set_frame_count(popped.frames_at_push);
    } else {
      PushedOp pushed;
      pushed.mark = flat.trail_mark();
      pushed.frames_at_push = flat.frame_count();
      if (kind < 5 && flat.frame_count() < kMaxFrames) {
        ASSERT_TRUE(flat.extend()) << context;
        ASSERT_TRUE(legacy.extend()) << context;
      } else if (nff > 0 && kind < 7) {
        Undo u;
        u.index = rng.below(nff);
        u.old_value = flat.state_value(u.index);
        const V3 v = values[rng.below(3)];
        flat.assign_state(u.index, v);
        legacy.assign_state(u.index, v);
        pushed.undos.push_back(u);
      } else if (npi > 0) {
        Undo u;
        u.is_pi = true;
        u.frame = static_cast<unsigned>(rng.below(flat.frame_count()));
        u.index = rng.below(npi);
        u.old_value = flat.pi_value(u.frame, u.index);
        const V3 v = values[rng.below(3)];
        flat.assign_pi(u.frame, u.index, v);
        legacy.assign_pi(u.frame, u.index, v);
        pushed.undos.push_back(u);
      }
      stack.push_back(std::move(pushed));
    }
    flat.simulate();
    legacy.simulate();
    expect_agree(c, flat, legacy, context);
    ASSERT_EQ(flat.trail_mark(), legacy.trail_mark()) << context;
    ASSERT_EQ(flat.stats().gate_evals, legacy.stats().gate_evals) << context;
    ASSERT_EQ(flat.stats().events, legacy.stats().events) << context;
  }
}

TEST(FrameModelLayout, RandomizedOpsAgreeOnAllRegistryCircuits) {
  for (const std::string& name : gen::registry_names()) {
    const auto c = gen::make_circuit(name);
    const bool large = c.node_count() > 1500;
    const unsigned ops = large ? 10 : 36;
    for (const bool incremental : {true, false}) {
      run_layout_session(c, std::nullopt, incremental, ops,
                         0xf1a7 + c.node_count());
      std::uint64_t seed = 23;
      for (const Fault& f : sample_faults(c, large ? 1 : 2)) {
        run_layout_session(c, f, incremental, ops, seed++);
      }
    }
  }
}

TEST(FrameModelLayout, ForwardEngineIsLayoutDeterministic) {
  for (const std::string& name : gen::registry_names()) {
    const auto c = gen::make_circuit(name);
    const bool large = c.node_count() > 1500;
    const auto obs = share_observation_distances(c);
    for (const Fault& f : sample_faults(c, large ? 2 : 4)) {
      const SearchRecord flat = run_search(c, f, true, obs, true);
      const SearchRecord legacy = run_search(c, f, true, obs, false);
      EXPECT_EQ(flat, legacy)
          << name << " fault at " << c.name(f.node) << " pin " << f.pin
          << " sa" << int(f.stuck_at);
    }
  }
}

TEST(FrameModelLayout, ObliviousSearchIsLayoutDeterministic) {
  for (const std::string& name :
       {std::string("s27"), std::string("g298")}) {
    const auto c = gen::make_circuit(name);
    const auto obs = share_observation_distances(c);
    for (const Fault& f : sample_faults(c, 4)) {
      const SearchRecord flat = run_search(c, f, false, obs, true);
      const SearchRecord legacy = run_search(c, f, false, obs, false);
      EXPECT_EQ(flat, legacy)
          << name << " fault at " << c.name(f.node) << " pin " << f.pin;
    }
  }
}

TEST(FrameModelLayout, JustifierIsLayoutDeterministic) {
  for (const std::string& name :
       {std::string("s27"), std::string("g298"), std::string("g526")}) {
    const auto c = gen::make_circuit(name);
    const std::size_t nff = c.flip_flops().size();
    util::Rng rng(11);
    for (int trial = 0; trial < 4; ++trial) {
      sim::State3 target(nff, V3::kX);
      for (std::size_t i = 0; i < nff; ++i) {
        const V3 values[3] = {V3::k0, V3::k1, V3::kX};
        target[i] = values[rng.below(3)];
      }
      SearchLimits limits;
      limits.max_backtracks = 100;
      limits.max_justify_depth = 6;
      limits.time_limit_s = 3600.0;  // determinism: clip on backtracks only

      limits.flat_model = true;
      DeterministicJustifier flat(c, limits);
      const auto rf = flat.justify(target, util::Deadline::unlimited());

      limits.flat_model = false;
      DeterministicJustifier legacy(c, limits);
      const auto rl = legacy.justify(target, util::Deadline::unlimited());

      EXPECT_EQ(static_cast<int>(rf.status), static_cast<int>(rl.status))
          << name << " trial " << trial;
      EXPECT_EQ(rf.sequence, rl.sequence) << name << " trial " << trial;
      // Across layouts (same engine) the effort counters match exactly —
      // the flat path evaluates precisely the same gates and pops
      // precisely the same events as the legacy path.
      EXPECT_EQ(flat.stats().decisions, legacy.stats().decisions)
          << name << " trial " << trial;
      EXPECT_EQ(flat.stats().backtracks, legacy.stats().backtracks)
          << name << " trial " << trial;
      EXPECT_EQ(flat.stats().gate_evals, legacy.stats().gate_evals)
          << name << " trial " << trial;
      EXPECT_EQ(flat.stats().events, legacy.stats().events)
          << name << " trial " << trial;
    }
  }
}

// -- Model pooling -----------------------------------------------------------

TEST(FrameModelPool, AcquireReusesFreedModels) {
  const auto c = gen::make_circuit("g298");
  const auto faults = sample_faults(c, 3);
  ASSERT_GE(faults.size(), 2u);
  FrameModelPool pool(c);
  EXPECT_EQ(pool.constructions(), 0u);
  EXPECT_EQ(pool.acquires(), 0u);
  {
    const FrameModelHandle h = pool.acquire(faults[0], 3);
    EXPECT_EQ(pool.constructions(), 1u);
    // A second concurrent handle needs a second model.
    const FrameModelHandle h2 = pool.acquire(faults[1], 4);
    EXPECT_EQ(pool.constructions(), 2u);
  }
  // Both returned to the free list: further acquires construct nothing.
  for (unsigned i = 0; i < 8; ++i) {
    const FrameModelHandle h =
        pool.acquire(faults[i % faults.size()], 2 + i % 3);
    EXPECT_EQ(pool.constructions(), 2u) << i;
  }
  EXPECT_EQ(pool.acquires(), 10u);
}

TEST(FrameModelPool, ResetIsBitIdenticalToFreshConstruction) {
  const auto c = gen::make_circuit("g298");
  const auto faults = sample_faults(c, 4);
  ASSERT_GE(faults.size(), 2u);
  const std::size_t npi = c.primary_inputs().size();
  for (const bool flat : {true, false}) {
    for (const bool incremental : {true, false}) {
      const FrameModelConfig config{incremental, flat};
      // Dirty a model thoroughly: fault A, assignments, window growth.
      FrameModel reused(c, faults[0], 4, config);
      util::Rng rng(31);
      reused.extend();
      for (int i = 0; i < 6; ++i) {
        reused.assign_pi(static_cast<unsigned>(rng.below(2)), rng.below(npi),
                         rng.bit() ? V3::k1 : V3::k0);
      }
      reused.simulate();
      // Reset to fault B must equal a fresh fault-B model everywhere.
      reused.reset(faults[1], 3, config);
      FrameModel fresh(c, faults[1], 3, config);
      expect_agree(c, reused, fresh, "reset-vs-fresh");
      EXPECT_EQ(reused.trail_mark(), 0u);
      EXPECT_EQ(reused.stats().gate_evals, fresh.stats().gate_evals);
      EXPECT_EQ(reused.stats().events, fresh.stats().events);
      // And it must behave identically from here on.
      reused.assign_pi(0, 0, V3::k1);
      fresh.assign_pi(0, 0, V3::k1);
      reused.simulate();
      fresh.simulate();
      expect_agree(c, reused, fresh, "reset-vs-fresh after assign");
    }
  }
}

TEST(FrameModelPool, BufferCapacityRetainedAcrossShrinkGrowCycles) {
  const auto c = gen::make_circuit("g526");
  const auto faults = sample_faults(c, 2);
  ASSERT_GE(faults.size(), 2u);
  FrameModel m(c, faults[0], 6);
  const std::uint64_t grows = m.buffer_grows();
  // Window shrink/grow via reset and extend/set_frame_count must reuse the
  // high-water buffers, never reallocate.
  for (int cycle = 0; cycle < 4; ++cycle) {
    m.reset(faults[1], 2);
    while (m.extend()) {
    }
    m.set_frame_count(1);
    m.reset(faults[0], 6);
    while (m.extend()) {
    }
    EXPECT_EQ(m.buffer_grows(), grows) << "cycle " << cycle;
  }
}

TEST(FrameModelPool, SharedPoolSearchesAreBitIdentical) {
  const auto c = gen::make_circuit("g298");
  const auto obs = share_observation_distances(c);
  const auto faults = sample_faults(c, 6);
  FrameModelPool pool(c);
  for (const Fault& f : faults) {
    const SearchRecord pooled = run_search(c, f, true, obs, true, &pool);
    const SearchRecord solo = run_search(c, f, true, obs, true, nullptr);
    EXPECT_EQ(pooled, solo) << c.name(f.node) << " pin " << f.pin;
  }
  // One model + one required_state scratch serve the whole fault list.
  EXPECT_LE(pool.constructions(), 2u);
  EXPECT_GE(pool.acquires(), faults.size());
}

}  // namespace
}  // namespace gatpg::atpg
