// Differential tests for the two FrameModel implication engines: the
// event-driven incremental engine (default) must agree bit-for-bit with the
// oblivious full re-simulation reference on randomized operation sequences
// (assignments, clears, window extensions, trail-based backtracking) over
// every registry circuit, and the deterministic search built on top must
// make identical decisions in both modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "atpg/detengine.h"
#include "atpg/frame_model.h"
#include "atpg/justify.h"
#include "fault/faultlist.h"
#include "gen/registry.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace gatpg::atpg {
namespace {

using fault::Fault;
using sim::V3;

constexpr unsigned kMaxFrames = 5;

/// Asserts that every observable of the two models matches: window size,
/// both value planes of every active frame, the fault-effect summaries, the
/// D-frontier (contents *and* order), and the extracted vectors/state.
void expect_agree(const netlist::Circuit& c, FrameModel& incr,
                  FrameModel& obl, const std::string& context) {
  ASSERT_EQ(incr.frame_count(), obl.frame_count()) << context;
  for (unsigned t = 0; t < incr.frame_count(); ++t) {
    for (netlist::NodeId n = 0; n < c.node_count(); ++n) {
      ASSERT_EQ(incr.good(t, n), obl.good(t, n))
          << context << " good frame " << t << " node " << c.name(n);
      if (incr.has_fault()) {
        ASSERT_EQ(incr.faulty(t, n), obl.faulty(t, n))
            << context << " faulty frame " << t << " node " << c.name(n);
      }
    }
    ASSERT_EQ(incr.d_reaches_ff_input(t), obl.d_reaches_ff_input(t))
        << context << " d_reaches_ff_input frame " << t;
  }
  ASSERT_EQ(incr.po_has_d(), obl.po_has_d()) << context;
  const auto fi = incr.d_frontier();
  const auto fo = obl.d_frontier();
  ASSERT_EQ(fi.size(), fo.size()) << context << " d_frontier size";
  for (std::size_t k = 0; k < fi.size(); ++k) {
    ASSERT_EQ(fi[k].frame, fo[k].frame) << context << " d_frontier[" << k
                                        << "]";
    ASSERT_EQ(fi[k].node, fo[k].node) << context << " d_frontier[" << k
                                      << "]";
  }
  ASSERT_EQ(incr.extract_vectors(), obl.extract_vectors()) << context;
  ASSERT_EQ(incr.extract_state(), obl.extract_state()) << context;
}

/// One randomized push/backtrack session against both engines.  Pushed ops
/// mirror DecisionStack usage: a trail mark + frame count are recorded
/// before each op so backtracking can restore the incremental model via
/// undo_to while the oblivious model reverse-applies the recorded
/// assignments and re-simulates.
void run_random_session(const netlist::Circuit& c,
                        const std::optional<Fault>& fault, unsigned ops,
                        std::uint64_t seed) {
  FrameModel incr(c, fault, kMaxFrames);  // incremental is the default
  FrameModel obl(c, fault, kMaxFrames, FrameModelConfig{false});
  ASSERT_TRUE(incr.incremental());
  ASSERT_FALSE(obl.incremental());

  struct Undo {
    bool is_pi = false;
    bool is_state = false;
    unsigned frame = 0;
    std::size_t index = 0;
    V3 old_value = V3::kX;
  };
  struct PushedOp {
    std::size_t mark = 0;
    unsigned frames_at_push = 1;
    std::vector<Undo> undos;
  };
  std::vector<PushedOp> stack;

  util::Rng rng(seed);
  const std::size_t npi = c.primary_inputs().size();
  const std::size_t nff = c.flip_flops().size();
  const V3 values[3] = {V3::k0, V3::k1, V3::kX};

  const std::string base =
      c.name() + (fault ? " fault@" + c.name(fault->node) : " no-fault");
  for (unsigned op = 0; op < ops; ++op) {
    const std::string context = base + " op " + std::to_string(op);
    const std::uint64_t kind = rng.below(10);
    if (kind < 3 && !stack.empty()) {
      // Backtrack: restore to the state before the most recent push.
      const PushedOp popped = stack.back();
      stack.pop_back();
      incr.undo_to(popped.mark);
      incr.set_frame_count(popped.frames_at_push);
      for (auto it = popped.undos.rbegin(); it != popped.undos.rend(); ++it) {
        if (it->is_pi) {
          obl.assign_pi(it->frame, it->index, it->old_value);
        } else if (it->is_state) {
          obl.assign_state(it->index, it->old_value);
        }
      }
      obl.set_frame_count(popped.frames_at_push);
      obl.simulate();
    } else {
      PushedOp pushed;
      pushed.mark = incr.trail_mark();
      pushed.frames_at_push = incr.frame_count();
      if (kind < 5 && incr.frame_count() < kMaxFrames) {
        ASSERT_TRUE(incr.extend()) << context;
        ASSERT_TRUE(obl.extend()) << context;
      } else if (nff > 0 && kind < 7) {
        Undo u;
        u.is_state = true;
        u.index = rng.below(nff);
        u.old_value = incr.state_value(u.index);
        const V3 v = values[rng.below(3)];
        incr.assign_state(u.index, v);
        obl.assign_state(u.index, v);
        pushed.undos.push_back(u);
      } else if (npi > 0) {
        Undo u;
        u.is_pi = true;
        u.frame = static_cast<unsigned>(rng.below(incr.frame_count()));
        u.index = rng.below(npi);
        u.old_value = incr.pi_value(u.frame, u.index);
        const V3 v = values[rng.below(3)];
        incr.assign_pi(u.frame, u.index, v);
        obl.assign_pi(u.frame, u.index, v);
        pushed.undos.push_back(u);
      }
      obl.simulate();
      stack.push_back(std::move(pushed));
    }
    incr.simulate();  // must be a safe no-op in incremental mode
    expect_agree(c, incr, obl, context);
  }

  // Full unwind: the trail must restore the exact post-construction state.
  if (!stack.empty()) incr.undo_to(stack.front().mark);
  incr.set_frame_count(1);
  FrameModel fresh(c, fault, kMaxFrames);
  for (std::size_t i = 0; i < npi; ++i) {
    ASSERT_EQ(incr.pi_value(0, i), V3::kX) << base;
  }
  for (std::size_t i = 0; i < nff; ++i) {
    ASSERT_EQ(incr.state_value(i), V3::kX) << base;
  }
  for (netlist::NodeId n = 0; n < c.node_count(); ++n) {
    ASSERT_EQ(incr.good(0, n), fresh.good(0, n)) << base << " " << c.name(n);
    if (fault) {
      ASSERT_EQ(incr.faulty(0, n), fresh.faulty(0, n))
          << base << " " << c.name(n);
    }
  }
}

/// A spread of faults across the collapsed list (first, last, evenly
/// spaced), bounded by `count`.
std::vector<Fault> sample_faults(const netlist::Circuit& c,
                                 std::size_t count) {
  const auto all = fault::collapse(c).faults;
  std::vector<Fault> picked;
  if (all.empty() || count == 0) return picked;
  const std::size_t stride = std::max<std::size_t>(1, all.size() / count);
  for (std::size_t i = 0; i < all.size() && picked.size() < count;
       i += stride) {
    picked.push_back(all[i]);
  }
  return picked;
}

TEST(FrameModelIncr, RandomizedOpsAgreeOnAllRegistryCircuits) {
  for (const std::string& name : gen::registry_names()) {
    const auto c = gen::make_circuit(name);
    const bool large = c.node_count() > 1500;
    const unsigned ops = large ? 12 : 48;
    run_random_session(c, std::nullopt, ops, 0xabc0 + c.node_count());
    const std::size_t fault_count = large ? 1 : 3;
    std::uint64_t seed = 17;
    for (const Fault& f : sample_faults(c, fault_count)) {
      run_random_session(c, f, ops, seed++);
    }
  }
}

TEST(FrameModelIncr, ObliviousTrailIsInertButDocumented) {
  const auto c = gen::make_circuit("s27");
  FrameModel m(c, std::nullopt, 3, FrameModelConfig{false});
  EXPECT_EQ(m.trail_mark(), 0u);
  m.assign_pi(0, 0, V3::k1);
  m.simulate();
  EXPECT_EQ(m.trail_mark(), 0u);
  m.undo_to(0);  // documented no-op
  EXPECT_EQ(m.pi_value(0, 0), V3::k1);
}

/// Runs one fault through ForwardEngine in the given mode and records every
/// observable of the search: per-solution status, vectors, minimized state,
/// and the final decision/backtrack counts.
struct SearchRecord {
  std::vector<ForwardStatus> statuses;
  std::vector<sim::Sequence> vectors;
  std::vector<sim::State3> states;
  long decisions = 0;
  long backtracks = 0;

  bool operator==(const SearchRecord&) const = default;
};

SearchRecord run_search(const netlist::Circuit& c, const Fault& f,
                        bool incremental, const ObsDistances& obs) {
  SearchLimits limits;
  limits.max_backtracks = 150;
  limits.max_forward_frames = 6;
  limits.incremental_model = incremental;
  ForwardEngine engine(c, f, limits, obs);
  // The unlimited deadline keeps the comparison deterministic: both modes
  // clip on the backtrack budget, never on wall clock.
  const auto deadline = util::Deadline::unlimited();
  SearchRecord r;
  for (unsigned s = 0; s < 3; ++s) {
    const ForwardStatus status = engine.next_solution(deadline);
    r.statuses.push_back(status);
    if (status != ForwardStatus::kSolved) break;
    r.vectors.push_back(engine.vectors());
    r.states.push_back(engine.required_state());
  }
  r.decisions = engine.stats().decisions;
  r.backtracks = engine.stats().backtracks;
  // Both modes must report implication effort through the same counters
  // (event pops exist only in incremental mode; a search that dies on an
  // immediate excitation conflict may legitimately pop none).
  EXPECT_GT(engine.stats().gate_evals, 0);
  if (!incremental) EXPECT_EQ(engine.stats().events, 0);
  return r;
}

TEST(FrameModelIncr, ForwardEngineIsModeDeterministic) {
  for (const std::string& name : gen::registry_names()) {
    const auto c = gen::make_circuit(name);
    const bool large = c.node_count() > 1500;
    const auto obs = share_observation_distances(c);
    for (const Fault& f : sample_faults(c, large ? 2 : 6)) {
      const SearchRecord oblivious = run_search(c, f, false, obs);
      const SearchRecord incremental = run_search(c, f, true, obs);
      EXPECT_EQ(oblivious, incremental)
          << name << " fault at " << c.name(f.node) << " pin " << f.pin
          << " sa" << int(f.stuck_at);
    }
  }
}

TEST(FrameModelIncr, JustifierIsModeDeterministic) {
  for (const std::string& name :
       {std::string("s27"), std::string("g298"), std::string("g526")}) {
    const auto c = gen::make_circuit(name);
    const auto obs = share_observation_distances(c);
    const std::size_t nff = c.flip_flops().size();
    util::Rng rng(7);
    for (int trial = 0; trial < 4; ++trial) {
      // Target states come from forward solutions so that a mix of
      // justifiable and unjustifiable goals is exercised.
      sim::State3 target(nff, V3::kX);
      for (std::size_t i = 0; i < nff; ++i) {
        const V3 values[3] = {V3::k0, V3::k1, V3::kX};
        target[i] = values[rng.below(3)];
      }
      SearchLimits limits;
      limits.max_backtracks = 100;
      limits.max_justify_depth = 6;
      limits.time_limit_s = 3600.0;  // determinism: clip on backtracks only

      limits.incremental_model = false;
      DeterministicJustifier obl(c, limits);
      const auto ro = obl.justify(target, util::Deadline::unlimited());

      limits.incremental_model = true;
      DeterministicJustifier incr(c, limits);
      const auto ri = incr.justify(target, util::Deadline::unlimited());

      EXPECT_EQ(static_cast<int>(ro.status), static_cast<int>(ri.status))
          << name << " trial " << trial;
      EXPECT_EQ(ro.sequence, ri.sequence) << name << " trial " << trial;
      EXPECT_EQ(obl.stats().decisions, incr.stats().decisions)
          << name << " trial " << trial;
      EXPECT_EQ(obl.stats().backtracks, incr.stats().backtracks)
          << name << " trial " << trial;
    }
  }
}

}  // namespace
}  // namespace gatpg::atpg
