// Additional cross-cutting property tests: simulator override edge cases,
// fault-class categories through the forward engine, analog-suite ATPG
// sanity, and determinism guarantees that the reproducibility story rests
// on.
#include <gtest/gtest.h>

#include "atpg/detengine.h"
#include "fault/faultsim.h"
#include "fault/grading.h"
#include "gen/analogs.h"
#include "gen/registry.h"
#include "gen/s27.h"
#include "helpers/random_circuit.h"
#include "helpers/reference_sim.h"
#include "netlist/bench_io.h"

namespace gatpg {
namespace {

using sim::V3;

TEST(SeqSimOverrides, PerSlotMasksAreIndependent) {
  // Same node stuck at 1 in slot 3 and stuck at 0 in slot 7; other slots
  // untouched.
  const auto c = gen::make_s27();
  sim::SequenceSimulator s(c);
  const auto node = c.find("G14");  // NOT(G0)
  s.add_output_override(node, true, 1ULL << 3);
  s.add_output_override(node, false, 1ULL << 7);
  s.apply_vector({V3::k0, V3::k0, V3::k0, V3::k0});  // G14 would be 1
  EXPECT_EQ(s.scalar_value(node, 3), V3::k1);
  EXPECT_EQ(s.scalar_value(node, 7), V3::k0);
  EXPECT_EQ(s.scalar_value(node, 0), V3::k1);
  EXPECT_EQ(s.scalar_value(node, 63), V3::k1);
}

TEST(SeqSimOverrides, LaterOverrideWinsOnSameSlot) {
  const auto c = gen::make_s27();
  sim::SequenceSimulator s(c);
  const auto node = c.find("G14");
  s.add_output_override(node, true, 1ULL << 5);
  s.add_output_override(node, false, 1ULL << 5);  // re-inject opposite
  s.apply_vector({V3::k0, V3::k0, V3::k0, V3::k0});
  EXPECT_EQ(s.scalar_value(node, 5), V3::k0);
}

TEST(SeqSimOverrides, DffInputOverrideOnlyAffectsLatchedValue) {
  const auto c = gen::make_s27();
  sim::SequenceSimulator s(c);
  const auto ff = c.flip_flops()[0];          // G5, D = G10
  const auto d_node = c.fanins(ff)[0];
  s.add_input_override(ff, 0, true, ~0ULL);   // D pin s-a-1
  s.apply_vector({V3::k1, V3::k0, V3::k0, V3::k0});
  // The driver node itself is unaffected (branch fault).
  const V3 driver_value = s.scalar_value(d_node);
  s.clock();
  EXPECT_EQ(s.scalar_value(ff), V3::k1);      // latched the stuck value
  // Re-check driver unchanged by the override.
  sim::SequenceSimulator clean(c);
  clean.apply_vector({V3::k1, V3::k0, V3::k0, V3::k0});
  EXPECT_EQ(driver_value, clean.scalar_value(d_node));
}

TEST(ForwardEngineCategories, SolvesEveryFaultCategoryOnS27) {
  // Exercise each structural fault category: PI stem, gate stem, gate
  // branch, DFF output stem, DFF input pin.
  const auto c = gen::make_s27();
  atpg::SearchLimits limits;
  limits.time_limit_s = 2.0;
  limits.max_backtracks = 20000;
  limits.max_forward_frames = 8;

  std::vector<fault::Fault> cases = {
      {c.find("G0"), fault::kOutputPin, true},        // PI stem
      {c.find("G9"), fault::kOutputPin, false},       // gate stem
      {c.find("G15"), 1, true},                       // gate input branch
      {c.flip_flops()[1], fault::kOutputPin, false},  // DFF output stem
      {c.flip_flops()[2], 0, true},                   // DFF D-pin
  };
  for (const auto& f : cases) {
    atpg::ForwardEngine engine(c, f, limits);
    const auto status = engine.next_solution(util::Deadline::unlimited());
    EXPECT_EQ(status, atpg::ForwardStatus::kSolved) << fault::to_string(c, f);
  }
}

TEST(ForwardEngineCategories, RequiredStateIsMinimal) {
  // Dropping any single required bit from the minimized state must kill the
  // PO detection (otherwise the minimizer left slack).
  const auto c = gen::make_s27();
  atpg::SearchLimits limits;
  limits.time_limit_s = 2.0;
  limits.max_backtracks = 20000;
  for (const auto& f : fault::collapse(c).faults) {
    atpg::ForwardEngine engine(c, f, limits);
    if (engine.next_solution(util::Deadline::unlimited()) !=
        atpg::ForwardStatus::kSolved) {
      continue;
    }
    const auto state = engine.required_state();
    const auto vectors = engine.vectors();
    for (std::size_t drop = 0; drop < state.size(); ++drop) {
      if (state[drop] == V3::kX) continue;
      auto weaker = state;
      weaker[drop] = V3::kX;
      // Re-simulate with the weakened requirement on both machines.
      test::ReferenceSimulator good(c);
      test::ReferenceSimulator bad(c, f);
      good.set_state(weaker);
      bad.set_state(weaker);
      bool detected = false;
      for (const auto& v : vectors) {
        // X bits stay X: this is a 3-valued necessity check, mirroring the
        // minimizer's own semantics.
        const auto gp = good.apply(v);
        const auto bp = bad.apply(v);
        for (std::size_t p = 0; p < gp.size(); ++p) {
          if (gp[p] != V3::kX && bp[p] != V3::kX && gp[p] != bp[p]) {
            detected = true;
          }
        }
        good.clock();
        bad.clock();
      }
      EXPECT_FALSE(detected)
          << fault::to_string(c, f) << ": required bit " << drop
          << " was not actually required";
    }
  }
}

TEST(AnalogSuite, FaultSimSanityOnEveryAnalog) {
  util::Rng rng(2024);
  for (const auto& spec : gen::analog_suite()) {
    if (spec.name == "g5378") continue;  // keep CI fast
    const auto c = gen::make_analog(spec);
    const auto faults = fault::collapse(c).faults;
    // 64 random vectors never detect more than the universe and the count
    // matches an independent re-run (determinism).
    const auto seq = test::random_sequence(c, rng, 64);
    const auto a = fault::grade_sequence(c, faults, seq);
    const auto b = fault::grade_sequence(c, faults, seq);
    EXPECT_EQ(a.detected, b.detected) << spec.name;
    EXPECT_LE(a.detected, faults.size()) << spec.name;
    EXPECT_GT(a.detected, 0u) << spec.name << ": random should catch some";
  }
}

TEST(Registry, CircuitConstructionIsDeterministic) {
  for (const std::string& name : {"am2910", "pcont2", "g1488"}) {
    const auto a = gen::make_circuit(name);
    const auto b = gen::make_circuit(name);
    ASSERT_EQ(a.node_count(), b.node_count()) << name;
    EXPECT_EQ(netlist::write_bench(a), netlist::write_bench(b)) << name;
  }
}

TEST(Grading, SubsetMonotonicity) {
  // Grading a prefix of a sequence never detects more than the full
  // sequence.
  const auto c = gen::make_circuit("g298");
  util::Rng rng(7);
  const auto seq = test::random_sequence(c, rng, 60);
  const auto faults = fault::collapse(c).faults;
  std::size_t last = 0;
  for (std::size_t len : {10u, 20u, 40u, 60u}) {
    const sim::Sequence prefix(seq.begin(), seq.begin() + len);
    const auto report = fault::grade_sequence(c, faults, prefix);
    EXPECT_GE(report.detected, last);
    last = report.detected;
  }
}

TEST(WhatIf, AgreesWithWouldDetectPerFault) {
  const auto c = gen::make_s27();
  const auto faults = fault::collapse(c).faults;
  fault::FaultSimulator fs(c, faults);
  util::Rng rng(31);
  fs.run(test::random_sequence(c, rng, 3));  // advance session
  const auto probe = test::random_sequence(c, rng, 6);
  std::vector<std::size_t> undetected;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (!fs.detected()[i]) undetected.push_back(i);
  }
  unsigned individual = 0;
  for (std::size_t i : undetected) {
    individual += fs.would_detect(i, probe) ? 1 : 0;
  }
  EXPECT_EQ(fs.what_if(undetected, probe).detected, individual);
}

}  // namespace
}  // namespace gatpg
