#include <gtest/gtest.h>

#include "fault/compaction.h"
#include "fault/grading.h"
#include "gen/registry.h"
#include "helpers/random_circuit.h"
#include "hybrid/hybrid_atpg.h"

namespace gatpg::fault {
namespace {

TEST(Compaction, EmptyInputYieldsEmptyOutput) {
  const auto c = gen::make_circuit("s27");
  const auto faults = collapse(c).faults;
  const auto r = compact_segments(c, faults, {});
  EXPECT_TRUE(r.test_set.empty());
  EXPECT_EQ(r.segments_removed, 0u);
}

TEST(Compaction, NeverLosesCoverage) {
  const auto c = gen::make_circuit("s27");
  const auto faults = collapse(c).faults;
  util::Rng rng(3);
  std::vector<sim::Sequence> segments;
  for (int i = 0; i < 12; ++i) {
    segments.push_back(test::random_sequence(c, rng, 4));
  }
  sim::Sequence full;
  for (const auto& s : segments) full.insert(full.end(), s.begin(), s.end());
  const auto before = grade_sequence(c, faults, full).detected;

  const auto r = compact_segments(c, faults, segments);
  EXPECT_EQ(grade_sequence(c, faults, r.test_set).detected, before);
  EXPECT_EQ(r.detected, before);
  EXPECT_LE(r.vectors_after, r.vectors_before);
}

TEST(Compaction, RemovesRedundantDuplicates) {
  // Two identical segments: the second adds nothing and must go.
  const auto c = gen::make_circuit("s27");
  const auto faults = collapse(c).faults;
  util::Rng rng(9);
  const auto seg = test::random_sequence(c, rng, 10);
  const auto r = compact_segments(c, faults, {seg, seg, seg});
  EXPECT_GE(r.segments_removed, 2u);
  EXPECT_EQ(r.segments.size(), 1u);
}

TEST(Compaction, ShrinksAtpgTestSets) {
  const auto c = gen::make_circuit("g344");
  hybrid::HybridConfig cfg;
  cfg.schedule = hybrid::PassSchedule::ga_hitec(0.01);
  for (auto& pass : cfg.schedule.passes) pass.pass_budget_s = 1.5;
  cfg.seed = 5;
  const auto result = hybrid::HybridAtpg(c, cfg).run();
  ASSERT_FALSE(result.segments.empty());
  // Segment boundaries must reconstruct the concatenated test set.
  sim::Sequence rebuilt;
  for (const auto& s : result.segments) {
    rebuilt.insert(rebuilt.end(), s.begin(), s.end());
  }
  EXPECT_EQ(rebuilt, result.test_set);

  const auto faults = collapse(c).faults;
  const auto compact = compact_segments(c, faults, result.segments);
  EXPECT_LE(compact.vectors_after, result.test_set.size());
  EXPECT_EQ(grade_sequence(c, faults, compact.test_set).detected,
            grade_sequence(c, faults, result.test_set).detected);
}

TEST(Compaction, KeepsLoadBearingEarlySegments) {
  // A segment that another segment depends on (state continuity) must not
  // be dropped even if it detects nothing by itself.  Construct by taking
  // an ATPG set and checking the invariant holds post-compaction.
  const auto c = gen::make_circuit("g298");
  hybrid::HybridConfig cfg;
  cfg.schedule = hybrid::PassSchedule::ga_hitec(0.01);
  for (auto& pass : cfg.schedule.passes) pass.pass_budget_s = 1.5;
  const auto result = hybrid::HybridAtpg(c, cfg).run();
  if (result.segments.size() < 2) GTEST_SKIP();
  const auto faults = collapse(c).faults;
  const auto compact = compact_segments(c, faults, result.segments);
  // The defining property (coverage preservation) implies load-bearing
  // segments survived; re-verify explicitly.
  EXPECT_EQ(grade_sequence(c, faults, compact.test_set).detected,
            grade_sequence(c, faults, result.test_set).detected);
}

}  // namespace
}  // namespace gatpg::fault
