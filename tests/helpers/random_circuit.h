// Seeded random circuit generation for property-based tests.
//
// Circuits are built bottom-up over a signal pool, so they are valid by
// construction (acyclic combinational logic, bound DFF inputs).  The same
// seed always yields the same circuit.
#pragma once

#include <string>
#include <vector>

#include "netlist/builder.h"
#include "sim/seqsim.h"
#include "util/rng.h"

namespace gatpg::test {

struct RandomCircuitSpec {
  std::size_t num_inputs = 4;
  std::size_t num_ffs = 3;
  std::size_t num_gates = 30;
  std::size_t num_outputs = 3;
  std::uint64_t seed = 1;
};

inline netlist::Circuit make_random_circuit(const RandomCircuitSpec& spec) {
  using netlist::GateType;
  using netlist::NodeId;
  util::Rng rng(spec.seed);
  netlist::CircuitBuilder b;

  std::vector<NodeId> pool;
  for (std::size_t i = 0; i < spec.num_inputs; ++i) {
    pool.push_back(b.add_input("pi" + std::to_string(i)));
  }
  std::vector<NodeId> ffs;
  for (std::size_t i = 0; i < spec.num_ffs; ++i) {
    const NodeId q = b.add_dff("ff" + std::to_string(i));
    ffs.push_back(q);
    pool.push_back(q);
  }

  static constexpr GateType kTypes[] = {
      GateType::kAnd, GateType::kOr,   GateType::kNand, GateType::kNor,
      GateType::kXor, GateType::kXnor, GateType::kNot,  GateType::kBuf,
  };
  for (std::size_t g = 0; g < spec.num_gates; ++g) {
    const GateType t = kTypes[rng.below(std::size(kTypes))];
    const bool unary = t == GateType::kNot || t == GateType::kBuf;
    const std::size_t arity = unary ? 1 : 2 + rng.below(3);  // 2..4
    std::vector<NodeId> ins(arity);
    for (auto& in : ins) in = pool[rng.below(pool.size())];
    pool.push_back(b.add_gate(t, "g" + std::to_string(g), ins));
  }

  for (NodeId q : ffs) {
    b.set_dff_input(q, pool[rng.below(pool.size())]);
  }
  for (std::size_t o = 0; o < spec.num_outputs; ++o) {
    b.mark_output(pool[pool.size() - 1 - (o % pool.size())]);
  }
  return std::move(b).build("rand" + std::to_string(spec.seed));
}

/// Random ternary input vector (X with probability x_prob).
inline sim::Vector3 random_vector(const netlist::Circuit& c, util::Rng& rng,
                                  double x_prob = 0.0) {
  sim::Vector3 v(c.primary_inputs().size());
  for (auto& bit : v) {
    if (rng.chance(x_prob)) {
      bit = sim::V3::kX;
    } else {
      bit = rng.bit() ? sim::V3::k1 : sim::V3::k0;
    }
  }
  return v;
}

inline sim::Sequence random_sequence(const netlist::Circuit& c,
                                     util::Rng& rng, std::size_t length,
                                     double x_prob = 0.0) {
  sim::Sequence seq(length);
  for (auto& v : seq) v = random_vector(c, rng, x_prob);
  return seq;
}

}  // namespace gatpg::test
