// Independent reference implementations for differential testing.
//
// Deliberately written in the most naive possible style (scalar, oblivious,
// recomputing everything every cycle) and sharing no evaluation code with
// src/sim — the production simulators are tested against these.
#pragma once

#include <optional>
#include <vector>

#include "fault/fault.h"
#include "netlist/circuit.h"
#include "sim/seqsim.h"

namespace gatpg::test {

/// Scalar 3-valued oblivious sequence simulator with optional fault
/// injection.  Returns per-cycle PO values and leaves the final state in
/// `final_state`.
class ReferenceSimulator {
 public:
  explicit ReferenceSimulator(const netlist::Circuit& c,
                              std::optional<fault::Fault> f = std::nullopt)
      : c_(c), fault_(f), value_(c.node_count(), sim::V3::kX) {
    for (netlist::NodeId n = 0; n < c_.node_count(); ++n) {
      if (c_.type(n) == netlist::GateType::kConst0) value_[n] = sim::V3::k0;
      if (c_.type(n) == netlist::GateType::kConst1) value_[n] = sim::V3::k1;
    }
  }

  void set_state(const sim::State3& s) {
    const auto ffs = c_.flip_flops();
    for (std::size_t i = 0; i < ffs.size(); ++i) value_[ffs[i]] = s[i];
  }

  /// Transition-fault activity gating, mirroring the production two-frame
  /// launch/capture mapping: the combinational forcing sites (gate pins,
  /// frame-t D-pin capture) obey `set_fault_active`, while the value a
  /// flip-flop output presents *after* the clock edge obeys
  /// `set_latch_fault_active` (the activity of the next frame).  Both
  /// default true so stuck-at callers behave exactly as before.
  void set_fault_active(bool a) { active_ = a; }
  void set_latch_fault_active(bool a) { latch_active_ = a; }

  /// Applies one vector (combinational settle), returns PO values.
  std::vector<sim::V3> apply(const sim::Vector3& in) {
    const auto pis = c_.primary_inputs();
    for (std::size_t i = 0; i < pis.size(); ++i) value_[pis[i]] = in[i];
    force_stem_sources(active_);
    for (netlist::NodeId g : c_.topo_order()) value_[g] = eval(g);
    std::vector<sim::V3> po;
    for (netlist::NodeId p : c_.primary_outputs()) po.push_back(value_[p]);
    return po;
  }

  void clock() {
    const auto ffs = c_.flip_flops();
    std::vector<sim::V3> next(ffs.size());
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      sim::V3 v = value_[c_.fanins(ffs[i])[0]];
      if (fault_ && fault_->node == ffs[i] && fault_->pin == 0 && active_) {
        v = stuck_value();
      }
      if (fault_ && fault_->node == ffs[i] &&
          fault_->pin == fault::kOutputPin && latch_active_) {
        v = stuck_value();
      }
      next[i] = v;
    }
    for (std::size_t i = 0; i < ffs.size(); ++i) value_[ffs[i]] = next[i];
    force_stem_sources(latch_active_);
  }

  sim::V3 value(netlist::NodeId n) const { return value_[n]; }

  sim::State3 state() const {
    sim::State3 s;
    for (netlist::NodeId ff : c_.flip_flops()) s.push_back(value_[ff]);
    return s;
  }

 private:
  sim::V3 stuck_value() const {
    return fault_->stuck_at ? sim::V3::k1 : sim::V3::k0;
  }

  void force_stem_sources(bool gate) {
    if (!gate || !fault_ || fault_->pin != fault::kOutputPin) return;
    const auto t = c_.type(fault_->node);
    if (!netlist::is_combinational(t)) value_[fault_->node] = stuck_value();
  }

  sim::V3 eval(netlist::NodeId g) const {
    using netlist::GateType;
    using sim::V3;
    std::vector<V3> in;
    const auto fanins = c_.fanins(g);
    for (std::size_t p = 0; p < fanins.size(); ++p) {
      V3 v = value_[fanins[p]];
      if (fault_ && fault_->node == g && fault_->pin == static_cast<int>(p) &&
          active_) {
        v = stuck_value();
      }
      in.push_back(v);
    }
    V3 out = V3::kX;
    auto all = [&](V3 want) {
      for (V3 v : in) {
        if (v != want) return false;
      }
      return true;
    };
    auto any = [&](V3 want) {
      for (V3 v : in) {
        if (v == want) return true;
      }
      return false;
    };
    switch (c_.type(g)) {
      case GateType::kBuf:
        out = in[0];
        break;
      case GateType::kNot:
        out = sim::v3_not(in[0]);
        break;
      case GateType::kAnd:
      case GateType::kNand:
        out = any(V3::k0) ? V3::k0 : (all(V3::k1) ? V3::k1 : V3::kX);
        if (c_.type(g) == GateType::kNand) out = sim::v3_not(out);
        break;
      case GateType::kOr:
      case GateType::kNor:
        out = any(V3::k1) ? V3::k1 : (all(V3::k0) ? V3::k0 : V3::kX);
        if (c_.type(g) == GateType::kNor) out = sim::v3_not(out);
        break;
      case GateType::kXor:
      case GateType::kXnor: {
        bool parity = false, has_x = false;
        for (V3 v : in) {
          if (v == V3::kX) has_x = true;
          if (v == V3::k1) parity = !parity;
        }
        out = has_x ? V3::kX : (parity ? V3::k1 : V3::k0);
        if (c_.type(g) == GateType::kXnor) out = sim::v3_not(out);
        break;
      }
      default:
        out = V3::kX;
        break;
    }
    if (fault_ && fault_->node == g && fault_->pin == fault::kOutputPin &&
        active_) {
      out = stuck_value();
    }
    return out;
  }

  const netlist::Circuit& c_;
  std::optional<fault::Fault> fault_;
  std::vector<sim::V3> value_;
  bool active_ = true;
  bool latch_active_ = true;
};

/// Ground-truth single-fault detection by reference simulation.  Transition
/// faults run the same lockstep loop with per-frame activity: a frame is a
/// capture frame iff the good machine's settled value of the launch line in
/// the *preceding* frame was defined-equal to the launch value (power-up and
/// X launches are inactive — the production simulators' under-approximation).
inline bool reference_detects(const netlist::Circuit& c, const fault::Fault& f,
                              const sim::Sequence& seq) {
  ReferenceSimulator good(c);
  ReferenceSimulator bad(c, f);
  const netlist::NodeId launch_line =
      f.pin == fault::kOutputPin
          ? f.node
          : c.fanins(f.node)[static_cast<std::size_t>(f.pin)];
  const sim::V3 launch = f.stuck_at ? sim::V3::k1 : sim::V3::k0;
  bool act = !f.is_transition();  // transition: power-up frame cannot capture
  for (const auto& v : seq) {
    if (f.is_transition()) bad.set_fault_active(act);
    const auto gp = good.apply(v);
    const auto bp = bad.apply(v);
    for (std::size_t i = 0; i < gp.size(); ++i) {
      if (gp[i] != sim::V3::kX && bp[i] != sim::V3::kX && gp[i] != bp[i]) {
        return true;
      }
    }
    if (f.is_transition()) {
      act = good.value(launch_line) == launch;
      bad.set_latch_fault_active(act);
    }
    good.clock();
    bad.clock();
  }
  return false;
}

}  // namespace gatpg::test
