// Ground-truth sequential detectability by product-machine reachability.
//
// Explores the reachable (good-state, faulty-state) product space from the
// power-up all-X pair under all binary input vectors, using the reference
// simulator's 3-valued semantics (the same detection criterion as the
// production fault simulator: both PO values defined and different).
// Intended for tiny circuits only — the caller provides a state cap; if the
// exploration exceeds it the answer is "unknown" (nullopt).
#pragma once

#include <deque>
#include <optional>
#include <set>
#include <string>

#include "helpers/reference_sim.h"

namespace gatpg::test {

inline std::optional<bool> exhaustively_detectable(
    const netlist::Circuit& c, const fault::Fault& f,
    std::size_t max_states = 20000) {
  const std::size_t npi = c.primary_inputs().size();
  if (npi > 8) return std::nullopt;
  const std::size_t num_inputs = std::size_t{1} << npi;

  auto key_of = [&](const sim::State3& g, const sim::State3& b) {
    std::string k;
    for (sim::V3 v : g) k += sim::v3_char(v);
    k += '|';
    for (sim::V3 v : b) k += sim::v3_char(v);
    return k;
  };

  const sim::State3 all_x(c.flip_flops().size(), sim::V3::kX);
  std::set<std::string> seen{key_of(all_x, all_x)};
  std::deque<std::pair<sim::State3, sim::State3>> frontier{{all_x, all_x}};

  while (!frontier.empty()) {
    if (seen.size() > max_states) return std::nullopt;
    auto [gs, bs] = frontier.front();
    frontier.pop_front();
    for (std::size_t iv = 0; iv < num_inputs; ++iv) {
      sim::Vector3 vec(npi);
      for (std::size_t i = 0; i < npi; ++i) {
        vec[i] = (iv >> i) & 1 ? sim::V3::k1 : sim::V3::k0;
      }
      ReferenceSimulator good(c);
      ReferenceSimulator bad(c, f);
      good.set_state(gs);
      bad.set_state(bs);
      const auto gp = good.apply(vec);
      const auto bp = bad.apply(vec);
      for (std::size_t p = 0; p < gp.size(); ++p) {
        if (gp[p] != sim::V3::kX && bp[p] != sim::V3::kX && gp[p] != bp[p]) {
          return true;  // detected
        }
      }
      good.clock();
      bad.clock();
      const std::string k = key_of(good.state(), bad.state());
      if (seen.insert(k).second) {
        frontier.push_back({good.state(), bad.state()});
      }
    }
  }
  return false;  // full reachable product space explored, never detected
}

}  // namespace gatpg::test
