// Speculative parallel fault targeting differential suite (DESIGN.md §4j):
// on every registry circuit, a backtrack-bounded hybrid run at 2 and 4
// targeting lanes must be bit-identical to the serial run — tests, segments,
// fault statuses, every engine and store counter, all three digests, and the
// exact on_target_end observer sequence — with the state store on and off.
// Also covers mid-pass kill-and-resume at 4 lanes, speculation-ledger
// consistency, and the wall-clock-pass opt-out (deadline passes stay
// serial).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "fault/faultlist.h"
#include "gen/registry.h"
#include "hybrid/hybrid_atpg.h"
#include "netlist/depth.h"
#include "session/fault_manager.h"
#include "session/observer.h"
#include "session/session.h"
#include "util/rng.h"

namespace gatpg {
namespace {

/// A two-pass GA+deterministic schedule bounded by backtracks and
/// generations alone — no wall-clock limits anywhere, which is exactly the
/// shape the speculative path accepts.  Every run is a pure function of
/// (circuit, fault list, seed), so serial and parallel runs are comparable
/// bit for bit.
hybrid::HybridConfig lane_config(unsigned lanes, bool store) {
  hybrid::HybridConfig cfg;
  session::PassConfig ga;
  ga.mode = session::JustifyMode::kGenetic;
  ga.time_limit_s = 0.0;
  ga.max_backtracks = 200;
  ga.ga_population = 64;
  ga.ga_generations = 2;
  ga.seq_len_multiplier = 2.0;
  session::PassConfig det;
  det.mode = session::JustifyMode::kDeterministic;
  det.time_limit_s = 0.0;
  det.max_backtracks = 200;
  cfg.schedule.passes = {ga, det};
  cfg.max_solutions_per_fault = 4;
  cfg.seed = 7;
  cfg.parallel.threads = 1;
  cfg.state_store.enabled = store;
  cfg.target_parallel.lanes = lanes;
  return cfg;
}

session::SessionConfig session_config(const hybrid::HybridConfig& cfg) {
  session::SessionConfig scfg;
  scfg.faultsim = cfg.faultsim;
  scfg.faultsim.parallel = cfg.parallel;
  scfg.state_store = cfg.state_store;
  scfg.target_parallel = cfg.target_parallel;
  return scfg;
}

fault::FaultList capped_faults(const netlist::Circuit& c, std::size_t cap) {
  fault::FaultList full = fault::collapse(c);
  if (full.size() > cap) {
    full.faults.resize(cap);
    full.class_sizes.resize(cap);
  }
  return full;
}

/// Records the per-target observer stream — the strictest ordering witness:
/// a speculative run must fire on_target_end for the same faults, with the
/// same effort numbers, in the same order as the serial scan.
class TargetTrace : public session::ProgressObserver {
 public:
  void on_target_end(const session::Session&,
                     const session::TargetEffort& effort) override {
    efforts.push_back(effort);
  }
  std::vector<session::TargetEffort> efforts;
};

struct RunOutput {
  session::SessionResult result;
  std::vector<session::TargetEffort> trace;
  hybrid::SpecStats spec;
};

RunOutput run_once(const netlist::Circuit& c, const fault::FaultList& faults,
                   const hybrid::HybridConfig& cfg) {
  session::Session s(c, faults, session_config(cfg));
  TargetTrace trace;
  s.set_observer(&trace);
  util::Rng rng(cfg.seed);
  hybrid::HybridEngine engine(c, cfg, netlist::sequential_depth(c), rng);
  RunOutput out;
  out.result = s.run(engine, cfg.schedule);
  out.trace = std::move(trace.efforts);
  out.spec = engine.spec_stats();
  return out;
}

void expect_counters_equal(const session::EngineCounters& a,
                           const session::EngineCounters& b) {
  EXPECT_EQ(a.targeted, b.targeted);
  EXPECT_EQ(a.forward_solutions, b.forward_solutions);
  EXPECT_EQ(a.ga_invocations, b.ga_invocations);
  EXPECT_EQ(a.ga_successes, b.ga_successes);
  EXPECT_EQ(a.det_justify_calls, b.det_justify_calls);
  EXPECT_EQ(a.det_justify_successes, b.det_justify_successes);
  EXPECT_EQ(a.verify_failures, b.verify_failures);
  EXPECT_EQ(a.no_justification_needed, b.no_justification_needed);
  EXPECT_EQ(a.aborted_faults, b.aborted_faults);
  EXPECT_EQ(a.committed_tests, b.committed_tests);
  EXPECT_EQ(a.det_decisions, b.det_decisions);
  EXPECT_EQ(a.det_backtracks, b.det_backtracks);
  EXPECT_EQ(a.det_gate_evals, b.det_gate_evals);
  EXPECT_EQ(a.det_events, b.det_events);
  EXPECT_EQ(a.det_model_builds, b.det_model_builds);
  EXPECT_EQ(a.det_model_acquires, b.det_model_acquires);
  EXPECT_EQ(a.store.seq_hits, b.store.seq_hits);
  EXPECT_EQ(a.store.seq_misses, b.store.seq_misses);
  EXPECT_EQ(a.store.seq_inserts, b.store.seq_inserts);
  EXPECT_EQ(a.store.seq_verify_failures, b.store.seq_verify_failures);
  EXPECT_EQ(a.store.unjust_hits, b.store.unjust_hits);
  EXPECT_EQ(a.store.unjust_misses, b.store.unjust_misses);
  EXPECT_EQ(a.store.unjust_inserts, b.store.unjust_inserts);
  EXPECT_EQ(a.store.unjust_subsumed, b.store.unjust_subsumed);
  EXPECT_EQ(a.store.reachable_inserts, b.store.reachable_inserts);
  EXPECT_EQ(a.store.near_miss_inserts, b.store.near_miss_inserts);
  EXPECT_EQ(a.store.ga_seeds_served, b.store.ga_seeds_served);
  EXPECT_EQ(a.store.forward_cache_hits, b.store.forward_cache_hits);
  EXPECT_EQ(a.store.forward_cache_inserts, b.store.forward_cache_inserts);
}

void expect_identical(const session::SessionResult& a,
                      const session::SessionResult& b) {
  EXPECT_EQ(a.digests.faults, b.digests.faults);
  EXPECT_EQ(a.digests.tests, b.digests.tests);
  EXPECT_EQ(a.digests.store, b.digests.store);
  EXPECT_EQ(a.fault_state, b.fault_state);
  EXPECT_EQ(a.test_set, b.test_set);
  EXPECT_EQ(a.segments, b.segments);
  EXPECT_EQ(a.total_faults, b.total_faults);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.evaluations, b.evaluations);
  ASSERT_EQ(a.passes.size(), b.passes.size());
  for (std::size_t p = 0; p < a.passes.size(); ++p) {
    EXPECT_EQ(a.passes[p].detected, b.passes[p].detected);
    EXPECT_EQ(a.passes[p].vectors, b.passes[p].vectors);
    EXPECT_EQ(a.passes[p].untestable, b.passes[p].untestable);
  }
  expect_counters_equal(a.counters, b.counters);
}

void expect_trace_equal(const std::vector<session::TargetEffort>& a,
                        const std::vector<session::TargetEffort>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fault_index, b[i].fault_index) << "target " << i;
    EXPECT_EQ(a[i].decisions, b[i].decisions) << "target " << i;
    EXPECT_EQ(a[i].backtracks, b[i].backtracks) << "target " << i;
    EXPECT_EQ(a[i].gate_evals, b[i].gate_evals) << "target " << i;
    EXPECT_EQ(a[i].events, b[i].events) << "target " << i;
  }
}

// ---------------------------------------------------------------------------
// The differential: serial vs N lanes, every registry circuit, store on/off.

class TargetParallel : public ::testing::TestWithParam<unsigned> {};

TEST_P(TargetParallel, BitIdenticalToSerialWithStore) {
  const unsigned lanes = GetParam();
  for (const std::string& name : gen::registry_names()) {
    SCOPED_TRACE("circuit " + name);
    const netlist::Circuit c = gen::make_circuit(name);
    const fault::FaultList faults = capped_faults(c, 40);
    const RunOutput serial = run_once(c, faults, lane_config(1, true));
    const RunOutput parallel = run_once(c, faults, lane_config(lanes, true));
    expect_identical(serial.result, parallel.result);
    expect_trace_equal(serial.trace, parallel.trace);
    // The serial path never speculates; the lane path accounts for every
    // launched task exactly once.
    EXPECT_EQ(serial.spec.speculated, 0);
    EXPECT_EQ(parallel.spec.speculated,
              parallel.spec.committed + parallel.spec.discarded);
  }
}

TEST_P(TargetParallel, BitIdenticalToSerialWithoutStore) {
  const unsigned lanes = GetParam();
  for (const std::string& name : gen::registry_names()) {
    SCOPED_TRACE("circuit " + name);
    const netlist::Circuit c = gen::make_circuit(name);
    const fault::FaultList faults = capped_faults(c, 24);
    const RunOutput serial = run_once(c, faults, lane_config(1, false));
    const RunOutput parallel = run_once(c, faults, lane_config(lanes, false));
    expect_identical(serial.result, parallel.result);
    expect_trace_equal(serial.trace, parallel.trace);
  }
}

INSTANTIATE_TEST_SUITE_P(Lanes, TargetParallel, ::testing::Values(2u, 4u));

// ---------------------------------------------------------------------------
// Wall-clock passes opt out of speculation entirely (DESIGN.md §4j): the
// run must take the serial path, never launching a lane task.

TEST(TargetParallelGates, DeadlinePassesStaySerial) {
  const netlist::Circuit c = gen::make_circuit("s27");
  const fault::FaultList faults = fault::collapse(c);
  hybrid::HybridConfig cfg = lane_config(4, true);
  for (auto& pass : cfg.schedule.passes) pass.time_limit_s = 1000.0;
  const RunOutput out = run_once(c, faults, cfg);
  EXPECT_EQ(out.spec.speculated, 0);
  EXPECT_GT(out.result.detected(), 0u);
}

TEST(TargetParallelGates, LaneRunsActuallySpeculate) {
  // Sanity that the differential above is not vacuous: with lanes enabled
  // and deadline-free passes, at least one target is solved speculatively.
  const netlist::Circuit c = gen::make_circuit("g344");
  const fault::FaultList faults = capped_faults(c, 40);
  const RunOutput out = run_once(c, faults, lane_config(4, true));
  EXPECT_GT(out.spec.speculated, 0);
  EXPECT_GT(out.spec.committed, 0);
}

// ---------------------------------------------------------------------------
// Kill-and-resume at 4 lanes: a mid-pass snapshot records only committed
// state (the committed cursor, no in-flight speculation), so resuming must
// land on the same bits as the uninterrupted serial run.

TEST(TargetParallelKillResume, MidPassSnapshotResumesBitIdentical) {
  const unsigned lanes = 4;
  util::Rng pick(0xBEEF);
  for (const std::string& name : gen::registry_names()) {
    SCOPED_TRACE("circuit " + name);
    const netlist::Circuit c = gen::make_circuit(name);
    const fault::FaultList faults = capped_faults(c, 32);
    const hybrid::HybridConfig cfg = lane_config(lanes, true);
    const RunOutput reference = run_once(c, faults, lane_config(1, true));

    const auto kill_and_resume = [&](long stop) -> session::SessionResult {
      const std::string snap =
          testing::TempDir() + "tp_" + name + ".snap";
      std::remove(snap.c_str());
      session::SessionResult partial;
      {
        session::SessionConfig scfg = session_config(cfg);
        scfg.checkpoint.path = snap;
        scfg.checkpoint.stop_after_ticks = stop;
        session::Session s(c, faults, scfg);
        util::Rng rng(cfg.seed);
        hybrid::HybridEngine engine(c, cfg, netlist::sequential_depth(c),
                                    rng);
        partial = s.run(engine, cfg.schedule);
      }
      std::FILE* f = std::fopen(snap.c_str(), "rb");
      if (!f) return partial;  // stop never fired: completed uninterrupted
      std::fclose(f);

      session::Session resumed(c, faults, session_config(cfg));
      util::Rng rng(cfg.seed);
      hybrid::HybridEngine engine(c, cfg, netlist::sequential_depth(c), rng);
      resumed.resume(snap, engine);
      const session::SessionResult finished =
          resumed.run(engine, cfg.schedule);
      std::remove(snap.c_str());
      return finished;
    };

    {
      SCOPED_TRACE("stop tick 1");
      expect_identical(reference.result, kill_and_resume(1));
    }
    {
      const long stop = 2 + static_cast<long>(pick.below(6));
      SCOPED_TRACE("stop tick " + std::to_string(stop));
      expect_identical(reference.result, kill_and_resume(stop));
    }
  }
}

}  // namespace
}  // namespace gatpg
