#include <gtest/gtest.h>

#include "fault/grading.h"
#include "gen/registry.h"
#include "tpg/alternating.h"
#include "tpg/randgen.h"
#include "tpg/simgen.h"

namespace gatpg::tpg {
namespace {

TEST(RandomGen, AchievesCoverageOnS27) {
  const auto c = gen::make_circuit("s27");
  RandomGenConfig cfg;
  cfg.seed = 3;
  const auto r = random_pattern_generate(c, cfg);
  EXPECT_EQ(r.total_faults, 32u);
  EXPECT_GE(r.detected(), 28u);  // random does well on s27
  // Claimed coverage must match independent grading.
  EXPECT_EQ(fault::grade_sequence(c, r.test_set).detected, r.detected());
}

TEST(RandomGen, RespectsVectorCap) {
  const auto c = gen::make_circuit("g298");
  RandomGenConfig cfg;
  cfg.max_vectors = 64;
  cfg.stagnation_blocks = 100;  // only the cap can stop it
  const auto r = random_pattern_generate(c, cfg);
  EXPECT_LE(r.test_set.size(), 64u);
}

TEST(RandomGen, StopsOnStagnation) {
  const auto c = gen::make_circuit("g386");  // heavy redundancy: must stall
  RandomGenConfig cfg;
  cfg.max_vectors = 100000;
  cfg.stagnation_blocks = 3;
  const auto r = random_pattern_generate(c, cfg);
  EXPECT_LT(r.test_set.size(), 100000u);
  EXPECT_LT(r.detected(), r.total_faults);
}

TEST(RandomGen, DeterministicPerSeed) {
  const auto c = gen::make_circuit("s27");
  RandomGenConfig cfg;
  cfg.seed = 11;
  const auto a = random_pattern_generate(c, cfg);
  const auto b = random_pattern_generate(c, cfg);
  EXPECT_EQ(a.test_set, b.test_set);
  EXPECT_EQ(a.detected(), b.detected());
}

TEST(RandomGen, WeightedSelectsAProfile) {
  const auto c = gen::make_circuit("g526");
  RandomGenConfig cfg;
  cfg.weighted = true;
  cfg.seed = 5;
  cfg.max_vectors = 512;
  const auto r = random_pattern_generate(c, cfg);
  ASSERT_EQ(r.weights.size(), c.primary_inputs().size());
  // The chosen profile must be from the palette (or the uniform default).
  for (double w : r.weights) {
    EXPECT_TRUE(w == 0.1 || w == 0.25 || w == 0.5 || w == 0.75 || w == 0.9);
  }
  EXPECT_EQ(fault::grade_sequence(c, r.test_set).detected, r.detected());
}

TEST(SimGen, CoversS27) {
  const auto c = gen::make_circuit("s27");
  SimGenConfig cfg;
  cfg.sequence_length = 10;
  cfg.time_limit_s = 10.0;
  cfg.seed = 7;
  SimulationTestGenerator generator(c, cfg);
  const auto r = generator.run();
  EXPECT_GE(r.detected(), 30u);
  EXPECT_EQ(fault::grade_sequence(c, r.test_set).detected, r.detected());
  EXPECT_GT(r.rounds, 0);
  EXPECT_GT(r.evaluations, 0);
}

TEST(SimGen, StepwiseMatchesBatch) {
  const auto c = gen::make_circuit("s27");
  SimGenConfig cfg;
  cfg.sequence_length = 10;
  cfg.seed = 9;
  SimulationTestGenerator generator(c, cfg);
  const auto deadline = util::Deadline::after_seconds(10);
  std::size_t total = 0;
  for (int i = 0; i < 5; ++i) total += generator.step(deadline);
  EXPECT_EQ(generator.fault_simulator().detected_count(), total);
  EXPECT_EQ(fault::grade_sequence(c, generator.test_set()).detected, total);
}

TEST(SimGen, ApplyDropsDetectedFaults) {
  const auto c = gen::make_circuit("s27");
  SimGenConfig cfg;
  SimulationTestGenerator generator(c, cfg);
  util::Rng rng(3);
  sim::Sequence seq;
  for (int i = 0; i < 30; ++i) {
    sim::Vector3 v(c.primary_inputs().size());
    for (auto& bit : v) bit = rng.bit() ? sim::V3::k1 : sim::V3::k0;
    seq.push_back(v);
  }
  const std::size_t newly = generator.apply(seq);
  EXPECT_EQ(newly, generator.fault_simulator().detected_count());
  // Re-applying the same sequence detects nothing new.
  EXPECT_EQ(generator.apply(seq), 0u);
}

TEST(SimGen, FitnessShapingUsesStateEffects) {
  // what_if must report state effects for a fault whose effect reaches a
  // flip-flop but not (yet) an output: DFF D-pin fault on s27 after one
  // vector.
  const auto c = gen::make_circuit("s27");
  const auto faults = fault::collapse(c).faults;
  fault::FaultSimulator fs(c, faults);
  // One defined vector: effects load into flip-flops.
  sim::Sequence seq{{sim::V3::k0, sim::V3::k0, sim::V3::k0, sim::V3::k0}};
  std::vector<std::size_t> all_indices(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) all_indices[i] = i;
  const auto what = fs.what_if(all_indices, seq);
  EXPECT_GT(what.detected + what.state_effects, 0u);
}

TEST(Alternating, ResolvesS27Completely) {
  const auto c = gen::make_circuit("s27");
  AlternatingConfig cfg;
  cfg.sequence_length = 10;
  cfg.time_limit_s = 20.0;
  cfg.det_limits.time_limit_s = 1.0;
  cfg.seed = 5;
  const auto r = alternating_hybrid_generate(c, cfg);
  EXPECT_EQ(r.total_faults, 32u);
  EXPECT_EQ(r.detected() + r.untestable(), 32u);
  EXPECT_EQ(fault::grade_sequence(c, r.test_set).detected, r.detected());
}

TEST(Alternating, SwitchesToDeterministicPhase) {
  // g386's redundancy starves the GA quickly; the deterministic phase must
  // get invoked.
  const auto c = gen::make_circuit("g386");
  AlternatingConfig cfg;
  cfg.switch_after = 1;
  cfg.time_limit_s = 3.0;
  cfg.det_limits.time_limit_s = 0.05;
  const auto r = alternating_hybrid_generate(c, cfg);
  EXPECT_GT(r.counters.targeted, 0);
}

TEST(Alternating, UntestableClaimsConsistentWithGrading) {
  const auto c = gen::make_circuit("g386");
  AlternatingConfig cfg;
  cfg.switch_after = 1;
  cfg.time_limit_s = 3.0;
  cfg.det_limits.time_limit_s = 0.05;
  const auto r = alternating_hybrid_generate(c, cfg);
  // No fault can be both untestable and detected.
  EXPECT_LE(r.detected() + r.untestable(), r.total_faults);
}

}  // namespace
}  // namespace gatpg::tpg
