// Fast unit tests for the small leaf utilities: gate-type predicates,
// composite values, schedule scaling, and circuit-metadata helpers.
#include <gtest/gtest.h>

#include "atpg/val5.h"
#include "gen/s27.h"
#include "fault/fault.h"
#include "hybrid/pass.h"
#include "netlist/gate.h"

namespace gatpg {
namespace {

using netlist::GateType;
using sim::V3;

TEST(GateTraits, ControllingValues) {
  EXPECT_TRUE(netlist::has_controlling_value(GateType::kAnd));
  EXPECT_TRUE(netlist::has_controlling_value(GateType::kNor));
  EXPECT_FALSE(netlist::has_controlling_value(GateType::kXor));
  EXPECT_FALSE(netlist::has_controlling_value(GateType::kNot));
  EXPECT_FALSE(netlist::controlling_value(GateType::kAnd));   // 0 controls
  EXPECT_FALSE(netlist::controlling_value(GateType::kNand));
  EXPECT_TRUE(netlist::controlling_value(GateType::kOr));     // 1 controls
  EXPECT_TRUE(netlist::controlling_value(GateType::kNor));
}

TEST(GateTraits, InversionParity) {
  EXPECT_TRUE(netlist::inverts(GateType::kNand));
  EXPECT_TRUE(netlist::inverts(GateType::kNor));
  EXPECT_TRUE(netlist::inverts(GateType::kNot));
  EXPECT_TRUE(netlist::inverts(GateType::kXnor));
  EXPECT_FALSE(netlist::inverts(GateType::kAnd));
  EXPECT_FALSE(netlist::inverts(GateType::kBuf));
  EXPECT_FALSE(netlist::inverts(GateType::kXor));
}

TEST(GateTraits, Categories) {
  EXPECT_TRUE(netlist::is_source(GateType::kInput));
  EXPECT_TRUE(netlist::is_source(GateType::kConst0));
  EXPECT_FALSE(netlist::is_source(GateType::kDff));
  EXPECT_TRUE(netlist::is_combinational(GateType::kXnor));
  EXPECT_FALSE(netlist::is_combinational(GateType::kDff));
  EXPECT_FALSE(netlist::is_combinational(GateType::kInput));
}

TEST(GateTraits, NamesMatchBenchKeywords) {
  EXPECT_EQ(netlist::gate_type_name(GateType::kNand), "NAND");
  EXPECT_EQ(netlist::gate_type_name(GateType::kDff), "DFF");
  EXPECT_EQ(netlist::gate_type_name(GateType::kBuf), "BUF");
}

TEST(Composite, DDetection) {
  atpg::Composite d{V3::k1, V3::k0};
  atpg::Composite dbar{V3::k0, V3::k1};
  atpg::Composite one{V3::k1, V3::k1};
  atpg::Composite half{V3::k1, V3::kX};
  EXPECT_TRUE(d.is_d());
  EXPECT_TRUE(dbar.is_d());
  EXPECT_FALSE(one.is_d());
  EXPECT_FALSE(half.is_d());
  EXPECT_TRUE(half.any_x());
  EXPECT_FALSE(one.any_x());
  EXPECT_TRUE(d.both_binary());
  EXPECT_FALSE(half.both_binary());
}

TEST(Composite, Rendering) {
  EXPECT_EQ(atpg::composite_char({V3::k1, V3::k0}), 'D');
  EXPECT_EQ(atpg::composite_char({V3::k0, V3::k1}), 'd');
  EXPECT_EQ(atpg::composite_char({V3::k1, V3::k1}), '1');
  EXPECT_EQ(atpg::composite_char({V3::kX, V3::kX}), 'X');
}

TEST(PassSchedule, TimeScaleOnlyScalesWallClock) {
  const auto full = hybrid::PassSchedule::ga_hitec(1.0);
  const auto tiny = hybrid::PassSchedule::ga_hitec(0.01);
  ASSERT_EQ(full.passes.size(), tiny.passes.size());
  for (std::size_t p = 0; p < full.passes.size(); ++p) {
    EXPECT_NEAR(tiny.passes[p].time_limit_s,
                0.01 * full.passes[p].time_limit_s, 1e-12);
    EXPECT_EQ(tiny.passes[p].max_backtracks, full.passes[p].max_backtracks);
    EXPECT_EQ(tiny.passes[p].ga_population, full.passes[p].ga_population);
    EXPECT_EQ(tiny.passes[p].mode, full.passes[p].mode);
  }
}

TEST(FaultToString, ReadableForms) {
  const auto c = gen::make_s27();
  const fault::Fault stem{c.find("G10"), fault::kOutputPin, true};
  EXPECT_EQ(fault::to_string(c, stem), "G10 s-a-1");
  const fault::Fault branch{c.find("G15"), 1, false};
  const std::string s = fault::to_string(c, branch);
  EXPECT_NE(s.find("G15.in1"), std::string::npos);
  EXPECT_NE(s.find("s-a-0"), std::string::npos);
}

TEST(S27, KnownStructure) {
  const auto c = gen::make_s27();
  // The canonical s27 netlist facts.
  EXPECT_EQ(c.type(c.find("G9")), netlist::GateType::kNand);
  EXPECT_EQ(c.type(c.find("G11")), netlist::GateType::kNor);
  EXPECT_EQ(c.fanouts(c.find("G8")).size(), 2u);  // feeds G15 and G16
  EXPECT_TRUE(c.is_primary_output(c.find("G17")));
  EXPECT_FALSE(c.is_primary_output(c.find("G16")));
  EXPECT_EQ(c.pi_index(c.find("G2")), 2);
  EXPECT_EQ(c.ff_index(c.find("G6")), 1);
}

}  // namespace
}  // namespace gatpg
