#include <gtest/gtest.h>

#include "atpg/frame_model.h"
#include "gen/s27.h"
#include "helpers/random_circuit.h"
#include "helpers/reference_sim.h"

namespace gatpg::atpg {
namespace {

using fault::Fault;
using sim::V3;

TEST(FrameModel, StartsWithOneFrameAllX) {
  const auto c = gen::make_s27();
  FrameModel m(c, std::nullopt, 4);
  EXPECT_EQ(m.frame_count(), 1u);
  for (netlist::NodeId n = 0; n < c.node_count(); ++n) {
    if (c.type(n) == netlist::GateType::kConst0) {
      EXPECT_EQ(m.good(0, n), V3::k0);
    } else if (c.type(n) == netlist::GateType::kConst1) {
      EXPECT_EQ(m.good(0, n), V3::k1);
    } else {
      EXPECT_EQ(m.good(0, n), V3::kX) << c.name(n);
    }
  }
}

TEST(FrameModel, ExtendStopsAtCap) {
  const auto c = gen::make_s27();
  FrameModel m(c, std::nullopt, 3);
  EXPECT_TRUE(m.extend());
  EXPECT_TRUE(m.extend());
  EXPECT_EQ(m.frame_count(), 3u);
  EXPECT_FALSE(m.extend());
}

TEST(FrameModel, GoodPlaneMatchesReferenceSimulation) {
  const auto c = gen::make_s27();
  FrameModel m(c, std::nullopt, 3);
  m.extend();
  m.extend();
  util::Rng rng(3);
  // Assign all PIs in all frames, simulate, compare frame by frame with a
  // reference run starting from the all-X state.
  std::vector<sim::Vector3> vectors(3);
  for (unsigned t = 0; t < 3; ++t) {
    vectors[t] = test::random_vector(c, rng);
    for (std::size_t i = 0; i < vectors[t].size(); ++i) {
      m.assign_pi(t, i, vectors[t][i]);
    }
  }
  m.simulate();
  test::ReferenceSimulator ref(c);
  for (unsigned t = 0; t < 3; ++t) {
    ref.apply(vectors[t]);
    for (netlist::NodeId n = 0; n < c.node_count(); ++n) {
      EXPECT_EQ(m.good(t, n), ref.value(n)) << "frame " << t << " " << c.name(n);
    }
    ref.clock();
  }
}

TEST(FrameModel, StateAssignmentSeedsFrameZero) {
  const auto c = gen::make_s27();
  FrameModel m(c, std::nullopt, 2);
  m.assign_state(1, V3::k1);
  m.simulate();
  EXPECT_EQ(m.good(0, c.flip_flops()[1]), V3::k1);
  m.clear_state(1);
  m.simulate();
  EXPECT_EQ(m.good(0, c.flip_flops()[1]), V3::kX);
}

TEST(FrameModel, FaultInjectionCreatesD) {
  const auto c = gen::make_s27();
  // G17 = NOT(G11) is the PO; stem s-a-0 on G17.
  const Fault f{c.find("G17"), fault::kOutputPin, false};
  FrameModel m(c, f, 2);
  // Drive G11 to 0 so good(G17) = 1 while faulty is stuck 0.
  // G11 = NOR(G5, G9); set state G5=1 -> G11=0 -> G17 good = 1.
  m.assign_state(0, V3::k1);  // G5 is the first flip-flop
  m.simulate();
  EXPECT_EQ(m.good(0, c.find("G17")), V3::k1);
  EXPECT_EQ(m.faulty(0, c.find("G17")), V3::k0);
  EXPECT_TRUE(m.composite(0, c.find("G17")).is_d());
  EXPECT_TRUE(m.po_has_d());
}

TEST(FrameModel, BranchFaultOnlyAffectsOneBranch) {
  // a fans out to g1 = BUF(a) and g2 = BUF(a); branch fault on g1's input.
  netlist::CircuitBuilder b;
  const auto a = b.add_input("a");
  const auto g1 = b.add_gate(netlist::GateType::kBuf, "g1", {a});
  const auto g2 = b.add_gate(netlist::GateType::kBuf, "g2", {a});
  b.mark_output(g1);
  b.mark_output(g2);
  const auto c = std::move(b).build("branch");
  const Fault f{g1, 0, true};  // g1 input s-a-1
  FrameModel m(c, f, 1);
  m.assign_pi(0, 0, V3::k0);
  m.simulate();
  EXPECT_EQ(m.faulty(0, g1), V3::k1) << "faulted branch";
  EXPECT_EQ(m.faulty(0, g2), V3::k0) << "other branch must stay clean";
  EXPECT_EQ(m.good(0, g1), V3::k0);
}

TEST(FrameModel, DffPinFaultLatchesStuckValue) {
  const auto c = gen::make_s27();
  const auto ff = c.flip_flops()[0];
  const Fault f{ff, 0, true};  // D input s-a-1
  FrameModel m(c, f, 2);
  m.extend();
  m.simulate();
  // Whatever the D cone computes, the faulty machine latches 1 into frame 1.
  EXPECT_EQ(m.faulty(1, ff), V3::k1);
}

TEST(FrameModel, FrameLinkingCarriesState) {
  const auto c = gen::make_s27();
  FrameModel m(c, std::nullopt, 2);
  m.extend();
  util::Rng rng(9);
  const auto v = test::random_vector(c, rng);
  for (std::size_t i = 0; i < v.size(); ++i) m.assign_pi(0, i, v[i]);
  m.simulate();
  for (netlist::NodeId ff : c.flip_flops()) {
    EXPECT_EQ(m.good(1, ff), m.good(0, c.fanins(ff)[0])) << c.name(ff);
  }
}

TEST(FrameModel, DFrontierTracksFaultEffects) {
  const auto c = gen::make_s27();
  // An internal fault with everything X: no D anywhere -> empty frontier.
  const Fault f{c.find("G10"), fault::kOutputPin, true};
  FrameModel m(c, f, 2);
  m.simulate();
  EXPECT_FALSE(m.po_has_d());
  // Excite: G10 = NOR(G14, G11) must be 0 in the good machine; set
  // G0 = 0 -> G14 = 1 -> G10 good = 0, faulty = 1 (stuck).  The frontier
  // then contains G10's fanout consumers... G10 feeds only DFF G5, so the
  // D sits on a flip-flop input instead.
  m.assign_pi(0, 0, V3::k0);
  m.simulate();
  EXPECT_TRUE(m.composite(0, c.find("G10")).is_d());
  EXPECT_TRUE(m.d_reaches_ff_input(0));
}

TEST(FrameModel, ExtractVectorsPreservesAssignments) {
  const auto c = gen::make_s27();
  FrameModel m(c, std::nullopt, 2);
  m.extend();
  m.assign_pi(0, 2, V3::k1);
  m.assign_pi(1, 0, V3::k0);
  m.assign_state(2, V3::k0);
  const auto seq = m.extract_vectors();
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq[0][2], V3::k1);
  EXPECT_EQ(seq[0][0], V3::kX);
  EXPECT_EQ(seq[1][0], V3::k0);
  const auto state = m.extract_state();
  EXPECT_EQ(state[2], V3::k0);
  EXPECT_EQ(state[0], V3::kX);
}

}  // namespace
}  // namespace gatpg::atpg
