// Static test-set compaction.
//
// Sequential test sets are ordered — every generated subsequence was built
// against the machine state left by its predecessors — so vectors cannot be
// dropped freely.  Segment-level restoration is safe and effective: the test
// set is kept as the list of generated subsequences, and a segment is
// removed (greedily, last-to-first, the order classic restoration-based
// compactors use) whenever re-simulating the remaining concatenation from
// power-up still detects every fault the full set detected.  The paper
// reports raw Vec counts without compaction; this is the natural
// post-processing step a production flow would add.
#pragma once

#include <vector>

#include "fault/faultlist.h"
#include "sim/seqsim.h"

namespace gatpg::fault {

struct CompactionResult {
  sim::Sequence test_set;                 // compacted concatenation
  std::vector<sim::Sequence> segments;    // surviving segments, in order
  std::size_t vectors_before = 0;
  std::size_t vectors_after = 0;
  std::size_t segments_removed = 0;
  std::size_t detected = 0;               // unchanged by construction
};

CompactionResult compact_segments(const netlist::Circuit& c,
                                  const std::vector<Fault>& faults,
                                  const std::vector<sim::Sequence>& segments);

}  // namespace gatpg::fault
