// Single stuck-at fault model.
//
// Faults live on pins: the output stem of any node (pin == kOutputPin) or an
// individual fanin branch of a gate (pin == fanin index).  A branch fault on
// gate g's pin p affects only that connection; other fanouts of the driving
// node see the fault-free value — exactly how the simulators inject faults
// (seqsim input overrides).
#pragma once

#include <string>

#include "netlist/circuit.h"

namespace gatpg::fault {

inline constexpr int kOutputPin = -1;

struct Fault {
  netlist::NodeId node = netlist::kNoNode;
  int pin = kOutputPin;  // kOutputPin = stem, >= 0 = fanin branch index
  bool stuck_at = false;

  friend constexpr bool operator==(const Fault&, const Fault&) = default;
};

inline std::string to_string(const netlist::Circuit& c, const Fault& f) {
  std::string s = c.name(f.node);
  if (f.pin >= 0) {
    s += ".in" + std::to_string(f.pin) + "(" +
         c.name(c.fanins(f.node)[static_cast<std::size_t>(f.pin)]) + ")";
  }
  s += f.stuck_at ? " s-a-1" : " s-a-0";
  return s;
}

}  // namespace gatpg::fault
