// Model-aware fault descriptor.
//
// Faults live on pins: the output stem of any node (pin == kOutputPin) or an
// individual fanin branch of a gate (pin == fanin index).  A branch fault on
// gate g's pin p affects only that connection; other fanouts of the driving
// node see the fault-free value — exactly how the simulators inject faults
// (seqsim input overrides).
//
// The `model` axis selects what the forced value means:
//
// * kStuckAt — the line is permanently forced to `stuck_at`.
// * kTransitionSlowToRise / kTransitionSlowToFall — gross-delay transition
//   faults mapped onto the stuck-at override machinery via the two-frame
//   launch/capture trick: the line is forced to its *launch* value only in
//   frames whose preceding good-machine value equalled that launch value
//   (slow-to-rise: the line was 0 and fails to rise, so it behaves stuck-at-0
//   in the capture frame; slow-to-fall dually).  Representation invariant:
//   for transition faults `stuck_at` holds the launch (= forced) value, so
//   kTransitionSlowToRise implies stuck_at == false and
//   kTransitionSlowToFall implies stuck_at == true.  In the power-up frame
//   (no preceding value) a transition fault is inactive, and an X launch
//   value merges the forced and fault-free behaviors (X where they differ) —
//   both choices only ever under-claim detection, and every claimed
//   detection is re-verified by the fault simulator.
#pragma once

#include <string>

#include "netlist/circuit.h"

namespace gatpg::fault {

inline constexpr int kOutputPin = -1;

enum class FaultModel : std::uint8_t {
  kStuckAt = 0,
  kTransitionSlowToRise = 1,
  kTransitionSlowToFall = 2,
};

constexpr bool is_transition(FaultModel m) {
  return m != FaultModel::kStuckAt;
}

struct Fault {
  netlist::NodeId node = netlist::kNoNode;
  int pin = kOutputPin;  // kOutputPin = stem, >= 0 = fanin branch index
  /// Stuck-at: the forced value.  Transition: the launch value, which is
  /// also the value the line is forced to in active capture frames.
  bool stuck_at = false;
  FaultModel model = FaultModel::kStuckAt;

  bool is_transition() const { return fault::is_transition(model); }

  friend constexpr bool operator==(const Fault&, const Fault&) = default;
};

/// Transition fault on a site: slow-to-rise launches from 0, slow-to-fall
/// from 1 (the representation invariant above).
constexpr Fault make_transition(netlist::NodeId node, int pin,
                                bool slow_to_fall) {
  return {node, pin, slow_to_fall,
          slow_to_fall ? FaultModel::kTransitionSlowToFall
                       : FaultModel::kTransitionSlowToRise};
}

inline const char* model_suffix(const Fault& f) {
  switch (f.model) {
    case FaultModel::kTransitionSlowToRise:
      return " str";
    case FaultModel::kTransitionSlowToFall:
      return " stf";
    case FaultModel::kStuckAt:
      break;
  }
  return f.stuck_at ? " s-a-1" : " s-a-0";
}

inline std::string to_string(const netlist::Circuit& c, const Fault& f) {
  std::string s = c.name(f.node);
  if (f.pin >= 0) {
    s += ".in" + std::to_string(f.pin) + "(" +
         c.name(c.fanins(f.node)[static_cast<std::size_t>(f.pin)]) + ")";
  }
  s += model_suffix(f);
  return s;
}

}  // namespace gatpg::fault
