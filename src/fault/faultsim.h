// PROOFS-style sequential stuck-at fault simulator.
//
// Faults are packed 64 to a word (one slot each, cf. Niermann/Cheng/Patel,
// "PROOFS: a fast, memory-efficient sequential circuit fault simulator");
// each group shares one bit-parallel event-driven machine whose slots carry
// the per-fault circuit values.  Faulty flip-flop state persists across
// run() calls, so the simulator models one continuous test session exactly
// the way the test generators extend the test set.  Detection is recorded
// when a primary output has a defined good value and the opposite defined
// faulty value (X outputs never detect — the standard pessimistic rule).
//
// The 64-fault groups are independent, so run() and what_if() fan them out
// across the shared worker pool (util::parallel), one thread-local
// SequenceSimulator per lane.  Per-group detections are merged serially in
// group order, so the returned lists and all member state are bit-identical
// to the serial sweep for any thread count (threads = 1 is the exact legacy
// code path).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "fault/fault.h"
#include "sim/seqsim.h"
#include "util/parallel.h"

namespace gatpg::fault {

class FaultSimulator {
 public:
  FaultSimulator(const netlist::Circuit& c, std::vector<Fault> faults,
                 util::ParallelConfig parallel = {});

  /// Simulates `seq` as a continuation of everything simulated so far.
  /// Returns the indices (into faults()) of faults newly detected by it.
  std::vector<std::size_t> run(const sim::Sequence& seq);

  /// Returns machines to the power-up all-X state but keeps detection flags.
  void reset_machines();
  /// Full reset: machines and detection flags.
  void reset_all();

  const std::vector<Fault>& faults() const { return faults_; }
  const std::vector<char>& detected() const { return detected_; }
  std::size_t detected_count() const { return num_detected_; }

  /// Good-machine state after everything simulated so far.
  sim::State3 good_state() const { return good_.state(0); }

  /// Non-mutating what-if: would appending `seq` to the session detect
  /// fault `fault_index`?  Simulates copies of the good machine and of that
  /// fault's machine; the session state is untouched.  The test generators
  /// verify every candidate test this way before committing it.
  bool would_detect(std::size_t fault_index, const sim::Sequence& seq) const;

  /// Bulk non-mutating what-if over a fault subset, 64 faults per packed
  /// machine: how many of `fault_indices` would `seq` detect, and how many
  /// of the rest would it leave a fault effect on at some flip-flop
  /// (good/faulty both defined and different at sequence end)?  This is the
  /// fitness kernel of the simulation-based test generators (GATEST/CRIS
  /// style), where partial credit for driving fault effects into the state
  /// guides the search toward eventual detections.
  struct WhatIf {
    unsigned detected = 0;
    unsigned state_effects = 0;
  };
  WhatIf what_if(std::span<const std::size_t> fault_indices,
                 const sim::Sequence& seq) const;

  /// Convenience for single-fault queries (used heavily in tests): whether
  /// `seq` run from power-up detects `f`.
  static bool detects(const netlist::Circuit& c, const Fault& f,
                      const sim::Sequence& seq);

 private:
  /// The input sequence broadcast into packed form once per call (shared
  /// read-only by every fault group).
  std::vector<std::vector<sim::PackedV3>> pack_sequence(
      const sim::Sequence& seq) const;

  const netlist::Circuit& c_;
  std::vector<Fault> faults_;
  util::ParallelConfig parallel_;
  std::vector<char> detected_;
  std::size_t num_detected_ = 0;
  sim::SequenceSimulator good_;
  // One group machine per lane, created on first use and reused across
  // run() calls; lane 0 is the (only) machine of the serial path.
  std::vector<std::unique_ptr<sim::SequenceSimulator>> group_machines_;
  std::vector<sim::State3> faulty_state_;  // one per fault
};

}  // namespace gatpg::fault
