// PROOFS-style sequential stuck-at fault simulator.
//
// Faults are packed 64 to a word (one slot each, cf. Niermann/Cheng/Patel,
// "PROOFS: a fast, memory-efficient sequential circuit fault simulator");
// each group shares one bit-parallel event-driven machine whose slots carry
// the per-fault circuit values.  Faulty flip-flop state persists across
// run() calls, so the simulator models one continuous test session exactly
// the way the test generators extend the test set.  Detection is recorded
// when a primary output has a defined good value and the opposite defined
// faulty value (X outputs never detect — the standard pessimistic rule).
//
// Two engines produce bit-identical results (tested against each other):
//
//  * The *differential* engine (default) is the full PROOFS design.  The
//    good machine is simulated once per window of vectors, recording its
//    settled node values per frame; each fault group's machine is then
//    seeded from the good values every vector and only the fault-site and
//    state differences are propagated event-driven through their fanout
//    cones.  Before simulating a group for a vector, a screen checks which
//    slots are excited at their fault site by the good values or carry
//    parked fault effects in their persisted state — a group with no such
//    slot skips the vector entirely (this is where late-ATPG time goes,
//    when only a handful of hard faults remain).  At every window boundary
//    the still-undetected faults are repacked into dense 64-slot groups in
//    stable fault-index order, so grouping, results, and detection order
//    are deterministic and thread-count-independent.
//
//  * The *full-sweep* engine (FaultSimConfig::differential = false) is the
//    retained reference path: each group resets to all-X and re-evaluates
//    the whole circuit per sequence.  It exists to differentially test the
//    differential engine and as the fallback baseline in benches.
//
// The 64-fault groups are independent, so run() and what_if() fan them out
// across the shared worker pool (util::parallel), one thread-local
// SequenceSimulator per lane.  Per-group detections are merged serially in
// group order, so the returned lists and all member state are bit-identical
// to the serial sweep for any thread count (threads = 1 is the exact legacy
// code path).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "fault/fault.h"
#include "sim/seqsim.h"
#include "sim/widesim.h"
#include "util/parallel.h"

namespace gatpg::fault {

/// Engine options.  `parallel` is first so brace-initialization with a bare
/// thread count ({4}) keeps meaning "4 threads".
struct FaultSimConfig {
  util::ParallelConfig parallel;
  /// true = PROOFS differential engine (good-machine seeding, excitation
  /// screening, dynamic repacking); false = the retained full-sweep
  /// reference engine.  Results are bit-identical either way.
  bool differential = true;
  /// Vectors per differential window: the good machine is recorded and the
  /// group sweep advanced window by window, with detected faults repacked
  /// out of the dense 64-slot groups at every boundary.  Also bounds the
  /// good-frame recording memory (window × nodes × 16 bytes).
  unsigned window = 32;
  /// Group width in 64-bit machine words: each fault group packs 64·width
  /// faults into one simulation machine.  1 (the default) is the legacy
  /// SequenceSimulator path, retained verbatim as the golden reference;
  /// 2..sim::kMaxWideWords route the sweeps through the SIMD-wide
  /// WideSimulator with the structure-of-arrays layout.  Detections (sets
  /// *and* order), persisted flip-flop state, and what-if results are
  /// bit-identical at every width and thread count; only the cost counters
  /// that depend on grouping (gate_evals, group_vectors, skips) differ.
  unsigned width = 1;
};

/// Cost and effectiveness counters, accumulated across run()/what_if()
/// calls; reset with reset_stats().  All counts are deterministic and
/// thread-count-independent.
struct SimStats {
  std::uint64_t gate_evals = 0;       ///< faulty-machine gate evaluations
  std::uint64_t good_gate_evals = 0;  ///< good-machine gate evaluations
  std::uint64_t frames = 0;           ///< good-machine vectors simulated
  std::uint64_t group_vectors = 0;    ///< (group, vector) pairs examined
  std::uint64_t group_vectors_skipped = 0;  ///< screened out entirely
  std::uint64_t groups_repacked = 0;  ///< dense rebuilds after detections

  double skip_rate() const {
    return group_vectors == 0
               ? 0.0
               : static_cast<double>(group_vectors_skipped) /
                     static_cast<double>(group_vectors);
  }
  SimStats& operator+=(const SimStats& o) {
    gate_evals += o.gate_evals;
    good_gate_evals += o.good_gate_evals;
    frames += o.frames;
    group_vectors += o.group_vectors;
    group_vectors_skipped += o.group_vectors_skipped;
    groups_repacked += o.groups_repacked;
    return *this;
  }
};

class FaultSimulator {
 public:
  FaultSimulator(const netlist::Circuit& c, std::vector<Fault> faults,
                 FaultSimConfig config = {});

  /// Simulates `seq` as a continuation of everything simulated so far.
  /// Returns the indices (into faults()) of faults newly detected by it.
  std::vector<std::size_t> run(const sim::Sequence& seq);

  /// Returns machines to the power-up all-X state but keeps detection flags.
  void reset_machines();
  /// Full reset: machines and detection flags.
  void reset_all();

  const std::vector<Fault>& faults() const { return faults_; }
  const std::vector<char>& detected() const { return detected_; }
  std::size_t detected_count() const { return num_detected_; }

  /// Good-machine state after everything simulated so far.
  sim::State3 good_state() const { return good_.state(0); }

  /// Optional good-state harvest: when set, run() appends the good machine's
  /// flip-flop state after each vector it simulates (the post-clock state),
  /// one State3 per vector of the sequence.  The non-mutating what-if paths
  /// never touch the sink.  Not owned; clear with nullptr.  The session
  /// layer uses this to feed the StateStore's reachable-state log.
  void set_good_state_sink(std::vector<sim::State3>* sink) {
    good_sink_ = sink;
  }

  /// Persisted faulty flip-flop state of one fault (the parked fault
  /// effects the differential screen tests against the good state).
  const sim::State3& fault_state(std::size_t fault_index) const {
    return faulty_state_[fault_index];
  }

  /// Persisted good-machine value of the fault's launch line after the last
  /// frame simulated by run() — the two-frame transition-fault launch
  /// anchor carried across run() calls (kX after reset: a transition fault
  /// is inactive in the power-up frame).  Meaningful for any fault; only
  /// transition faults consume it.  Not serialized: snapshot resume replays
  /// the committed segments, which rebuilds it exactly.
  sim::V3 launch_prev(std::size_t fault_index) const {
    return launch_prev_[fault_index];
  }

  const FaultSimConfig& config() const { return config_; }
  const SimStats& stats() const { return stats_; }
  void reset_stats() { stats_ = SimStats{}; }
  /// Overwrites the accumulated counters.  Snapshot resume rebuilds the
  /// machines by replaying the committed segments — which reproduces the
  /// run() costs exactly — but what-if costs are not replayable, so the
  /// session restores the checkpointed totals wholesale afterwards.
  void restore_stats(const SimStats& s) { stats_ = s; }

  /// Non-mutating what-if: would appending `seq` to the session detect
  /// fault `fault_index`?  Simulates copies of the good machine and of that
  /// fault's machine; the session state is untouched.  The test generators
  /// verify every candidate test this way before committing it.
  bool would_detect(std::size_t fault_index, const sim::Sequence& seq) const;

  /// The same check against explicit machine state: would `seq`, applied to
  /// a copy of `good_start` and a fresh faulty machine for `f` seeded with
  /// `faulty_state`, produce a good/faulty PO difference?  Pure function of
  /// its arguments — the speculative targeting lanes call it against an
  /// immutable epoch snapshot instead of the live session simulator.
  /// For transition faults, `launch_prev` is the good value of the fault's
  /// launch line in the frame preceding `seq` (pass launch_prev() of the
  /// session snapshot; the kX default means "no launch pending", which is
  /// the power-up semantics).  Ignored for stuck-at faults.
  static bool would_detect_from(const netlist::Circuit& c,
                                const sim::SequenceSimulator& good_start,
                                const sim::State3& faulty_state, const Fault& f,
                                const sim::Sequence& seq,
                                sim::V3 launch_prev = sim::V3::kX);

  /// The live good machine (for snapshotting by the speculative targeting
  /// layer; treat as read-only).
  const sim::SequenceSimulator& good_machine() const { return good_; }

  /// Bulk non-mutating what-if over a fault subset, 64 faults per packed
  /// machine: how many of `fault_indices` would `seq` detect, and how many
  /// of the rest would it leave a fault effect on at some flip-flop
  /// (good/faulty both defined and different at sequence end)?  This is the
  /// fitness kernel of the simulation-based test generators (GATEST/CRIS
  /// style), where partial credit for driving fault effects into the state
  /// guides the search toward eventual detections.  Reuses the lane-local
  /// machines, so concurrent calls on one FaultSimulator are not allowed
  /// (no caller does that; the engines grade candidates serially).
  struct WhatIf {
    unsigned detected = 0;
    unsigned state_effects = 0;
  };
  WhatIf what_if(std::span<const std::size_t> fault_indices,
                 const sim::Sequence& seq) const;

  /// Convenience for single-fault queries (used heavily in tests): whether
  /// `seq` run from power-up detects `f`.
  static bool detects(const netlist::Circuit& c, const Fault& f,
                      const sim::Sequence& seq);

 private:
  /// One detection event inside a sweep: `pos` indexes the sweep's fault
  /// list, `t` is the global frame.  Sorting by (pos / 64, t, pos)
  /// reproduces the full-sweep engine's exact detection order regardless of
  /// windowing and repacking.
  struct Detection {
    std::uint32_t pos = 0;
    std::uint32_t t = 0;
  };

  /// Per-lane scratch: the group machine plus packed state and counters,
  /// owned exclusively by one lane of the worker pool during a sweep.  The
  /// wide machine and its flip-flop plane rows exist only at width > 1.
  struct Lane {
    std::unique_ptr<sim::SequenceSimulator> machine;
    std::vector<sim::PackedV3> ff;  ///< per-slot faulty present state
    std::unique_ptr<sim::WideSimulator> wide;
    std::vector<std::uint64_t> wff1;  ///< wide present state, plane 1 rows
    std::vector<std::uint64_t> wff0;  ///< wide present state, plane 0 rows
    SimStats stats;
  };

  /// The differential core shared by run() and what_if(): advances `good`
  /// over `seq` window by window and sweeps the faults of `fault_indices`
  /// differentially against it.  `states` (one per index) and `live` are
  /// read and updated in place; detections are appended unordered by group.
  /// `launch` (one V3 per index) carries the transition-fault launch anchor:
  /// on entry the good value of each fault's launch line in the frame
  /// preceding `seq`, on exit its value in the last frame of `seq` (run()
  /// seeds it from and persists it back to launch_prev_; what_if discards
  /// the local copy, matching its non-mutating contract).  `good_sink`, when
  /// non-null, receives the good machine's post-clock state for every vector
  /// (run() forwards good_sink_; what_if passes nullptr).
  void simulate_differential(sim::SequenceSimulator& good,
                             const std::vector<std::size_t>& fault_indices,
                             const sim::Sequence& seq,
                             std::vector<sim::State3>& states,
                             std::vector<sim::V3>& launch,
                             std::vector<char>& live,
                             std::vector<Detection>& detections,
                             std::vector<sim::State3>* good_sink) const;

  std::vector<std::size_t> run_full_sweep(const sim::Sequence& seq);
  WhatIf what_if_full_sweep(std::span<const std::size_t> fault_indices,
                            const sim::Sequence& seq) const;
  std::vector<std::size_t> run_full_sweep_wide(const sim::Sequence& seq);
  WhatIf what_if_full_sweep_wide(std::span<const std::size_t> fault_indices,
                                 const sim::Sequence& seq) const;

  /// The input sequence broadcast into packed form once per call (shared
  /// read-only by every fault group of the full-sweep engine).
  std::vector<std::vector<sim::PackedV3>> pack_sequence(
      const sim::Sequence& seq) const;

  sim::SequenceSimulator& lane_machine(unsigned lane) const;
  void ensure_lanes(unsigned lanes) const;
  /// Serially folds the per-lane counters and machine eval counts into
  /// stats_ after a parallel sweep (sums are schedule-independent).
  void drain_lane_stats(unsigned lanes) const;

  const netlist::Circuit& c_;
  std::vector<Fault> faults_;
  FaultSimConfig config_;
  /// True iff any fault in faults_ is a transition fault — every
  /// launch-tracking branch is gated on this so the pure stuck-at paths stay
  /// instruction-for-instruction identical to the pre-fault-model engine.
  bool any_transition_ = false;
  std::vector<char> detected_;
  std::size_t num_detected_ = 0;
  sim::SequenceSimulator good_;
  // One group machine (+ scratch) per lane, created on first use and reused
  // across run()/what_if() calls; lane 0 is the (only) machine of the
  // serial path.  Mutable: what_if is logically const but reuses them.
  mutable std::vector<Lane> lanes_;
  std::vector<sim::State3> faulty_state_;  // one per fault
  std::vector<sim::V3> launch_prev_;       // one per fault (see launch_prev())
  mutable SimStats stats_;
  std::vector<sim::State3>* good_sink_ = nullptr;
};

}  // namespace gatpg::fault
