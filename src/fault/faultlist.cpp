#include "fault/faultlist.h"

#include <numeric>
#include <unordered_map>

#include "serialize/archive.h"

namespace gatpg::fault {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

std::vector<Fault> all_pin_faults(const Circuit& c) {
  std::vector<Fault> faults;
  for (NodeId n = 0; n < c.node_count(); ++n) {
    const GateType t = c.type(n);
    if (t == GateType::kConst0 || t == GateType::kConst1) continue;
    for (bool v : {false, true}) {
      faults.push_back({n, kOutputPin, v});
    }
    if (t == GateType::kInput) continue;
    for (std::size_t p = 0; p < c.fanin_count(n); ++p) {
      for (bool v : {false, true}) {
        faults.push_back({n, static_cast<int>(p), v});
      }
    }
  }
  return faults;
}

namespace {

/// Union-find over fault indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void merge(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

std::uint64_t key_of(const Fault& f) {
  return (static_cast<std::uint64_t>(f.node) << 18) |
         (static_cast<std::uint64_t>(f.pin + 1) << 1) |
         (f.stuck_at ? 1 : 0);
}

}  // namespace

FaultList collapse(const Circuit& c) {
  const std::vector<Fault> all = all_pin_faults(c);
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) index[key_of(all[i])] = i;
  auto id_of = [&](NodeId node, int pin, bool v) {
    return index.at(key_of({node, pin, v}));
  };

  UnionFind uf(all.size());

  for (NodeId n = 0; n < c.node_count(); ++n) {
    const GateType t = c.type(n);
    switch (t) {
      case GateType::kAnd:
      case GateType::kNand: {
        // Input s-a-0 == output s-a-(0 ^ inv).
        const bool out_v = netlist::inverts(t);
        for (std::size_t p = 0; p < c.fanin_count(n); ++p) {
          uf.merge(id_of(n, static_cast<int>(p), false),
                   id_of(n, kOutputPin, out_v));
        }
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        // Input s-a-1 == output s-a-(1 ^ inv).
        const bool out_v = !netlist::inverts(t);
        for (std::size_t p = 0; p < c.fanin_count(n); ++p) {
          uf.merge(id_of(n, static_cast<int>(p), true),
                   id_of(n, kOutputPin, out_v));
        }
        break;
      }
      case GateType::kBuf:
      case GateType::kNot: {
        // NOTE: DFF input faults are deliberately NOT merged with DFF output
        // faults: with the power-up-unknown state model, Q differs from the
        // stuck value in time frame 0, so detection can differ.
        const bool inv = t == GateType::kNot;
        for (bool v : {false, true}) {
          uf.merge(id_of(n, 0, v), id_of(n, kOutputPin, v != inv));
        }
        break;
      }
      default:
        break;
    }
    // Branch == stem when the driver has exactly one fanout.
    if (t != GateType::kInput && t != GateType::kConst0 &&
        t != GateType::kConst1) {
      const auto fanins = c.fanins(n);
      for (std::size_t p = 0; p < fanins.size(); ++p) {
        const NodeId d = fanins[p];
        if (c.type(d) == GateType::kConst0 || c.type(d) == GateType::kConst1) {
          continue;  // no faults on constants
        }
        if (c.fanouts(d).size() == 1) {
          for (bool v : {false, true}) {
            uf.merge(id_of(n, static_cast<int>(p), v), id_of(d, kOutputPin, v));
          }
        }
      }
    }
  }

  // Pick one representative per class.  Prefer stem faults as
  // representatives (they are the cheapest to inject).
  std::unordered_map<std::size_t, std::size_t> rep_of_root;
  std::vector<std::size_t> rep_order;
  for (std::size_t i = 0; i < all.size(); ++i) {
    const std::size_t root = uf.find(i);
    auto it = rep_of_root.find(root);
    if (it == rep_of_root.end()) {
      rep_of_root.emplace(root, i);
      rep_order.push_back(root);
    } else if (all[it->second].pin != kOutputPin &&
               all[i].pin == kOutputPin) {
      it->second = i;
    }
  }

  FaultList list;
  list.faults.reserve(rep_order.size());
  list.class_sizes.reserve(rep_order.size());
  std::unordered_map<std::size_t, unsigned> sizes;
  for (std::size_t i = 0; i < all.size(); ++i) ++sizes[uf.find(i)];
  for (std::size_t root : rep_order) {
    list.faults.push_back(all[rep_of_root.at(root)]);
    list.class_sizes.push_back(sizes.at(root));
  }
  return list;
}

std::uint64_t identity_digest(const FaultList& list) {
  serialize::Digest d;
  d.add_u64(list.faults.size());
  for (std::size_t i = 0; i < list.faults.size(); ++i) {
    const Fault& f = list.faults[i];
    d.add_u64(static_cast<std::uint64_t>(f.node));
    d.add_u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(f.pin)));
    d.add_byte(f.stuck_at ? 1 : 0);
    d.add_u64(list.class_sizes[i]);
  }
  return d.value();
}

}  // namespace gatpg::fault
