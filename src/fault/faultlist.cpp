#include "fault/faultlist.h"

#include <numeric>
#include <unordered_map>

#include "serialize/archive.h"

namespace gatpg::fault {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

const char* universe_name(FaultUniverse u) {
  return u == FaultUniverse::kTransition ? "transition" : "stuck_at";
}

bool parse_universe(const std::string& name, FaultUniverse* out) {
  if (name == "stuck_at") {
    *out = FaultUniverse::kStuckAt;
    return true;
  }
  if (name == "transition") {
    *out = FaultUniverse::kTransition;
    return true;
  }
  return false;
}

std::vector<Fault> all_pin_faults(const Circuit& c, FaultUniverse universe) {
  // Both universes enumerate the same sites in the same order; only the
  // per-site fault pair differs (s-a-0/1 vs str/stf).
  const bool transition = universe == FaultUniverse::kTransition;
  auto site_faults = [&](std::vector<Fault>& faults, NodeId n, int pin) {
    for (bool v : {false, true}) {
      faults.push_back(transition ? make_transition(n, pin, v)
                                  : Fault{n, pin, v});
    }
  };
  std::vector<Fault> faults;
  for (NodeId n = 0; n < c.node_count(); ++n) {
    const GateType t = c.type(n);
    if (t == GateType::kConst0 || t == GateType::kConst1) continue;
    site_faults(faults, n, kOutputPin);
    if (t == GateType::kInput) continue;
    for (std::size_t p = 0; p < c.fanin_count(n); ++p) {
      site_faults(faults, n, static_cast<int>(p));
    }
  }
  return faults;
}

namespace {

/// Union-find over fault indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void merge(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

/// Site + polarity key.  Within one universe the model is implied by the
/// polarity (transition lists pair str with stuck_at=false, stf with true),
/// so the key needs no model bits.
std::uint64_t key_of(const Fault& f) {
  return (static_cast<std::uint64_t>(f.node) << 18) |
         (static_cast<std::uint64_t>(f.pin + 1) << 1) |
         (f.stuck_at ? 1 : 0);
}

}  // namespace

FaultList collapse(const Circuit& c, FaultUniverse universe) {
  const bool transition = universe == FaultUniverse::kTransition;
  const std::vector<Fault> all = all_pin_faults(c, universe);
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) index[key_of(all[i])] = i;
  auto id_of = [&](NodeId node, int pin, bool v) {
    return index.at(key_of({node, pin, v}));
  };

  UnionFind uf(all.size());

  for (NodeId n = 0; n < c.node_count(); ++n) {
    const GateType t = c.type(n);
    switch (t) {
      case GateType::kAnd:
      case GateType::kNand: {
        // Input s-a-0 == output s-a-(0 ^ inv).  Not sound for transition
        // faults: the launch condition of a branch fault watches the branch,
        // that of the output fault watches the gate output.
        if (transition) break;
        const bool out_v = netlist::inverts(t);
        for (std::size_t p = 0; p < c.fanin_count(n); ++p) {
          uf.merge(id_of(n, static_cast<int>(p), false),
                   id_of(n, kOutputPin, out_v));
        }
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        // Input s-a-1 == output s-a-(1 ^ inv).
        if (transition) break;
        const bool out_v = !netlist::inverts(t);
        for (std::size_t p = 0; p < c.fanin_count(n); ++p) {
          uf.merge(id_of(n, static_cast<int>(p), true),
                   id_of(n, kOutputPin, out_v));
        }
        break;
      }
      case GateType::kBuf:
      case GateType::kNot: {
        // NOTE: DFF input faults are deliberately NOT merged with DFF output
        // faults: with the power-up-unknown state model, Q differs from the
        // stuck value in time frame 0, so detection can differ.
        //
        // Transition faults keep only the same-polarity BUF merge: a BUF's
        // output tracks its input, so launch condition and forced value
        // coincide.  A NOT flips the polarity, which would also have to
        // flip the launch anchor — left unmerged for safety.
        const bool inv = t == GateType::kNot;
        if (transition && inv) break;
        for (bool v : {false, true}) {
          uf.merge(id_of(n, 0, v), id_of(n, kOutputPin, v != inv));
        }
        break;
      }
      default:
        break;
    }
    // Branch == stem when the driver has exactly one fanout.  Sound in both
    // universes: with a single fanout, the branch and the stem are the same
    // electrical line, so launch condition and forced behavior coincide.
    if (t != GateType::kInput && t != GateType::kConst0 &&
        t != GateType::kConst1) {
      const auto fanins = c.fanins(n);
      for (std::size_t p = 0; p < fanins.size(); ++p) {
        const NodeId d = fanins[p];
        if (c.type(d) == GateType::kConst0 || c.type(d) == GateType::kConst1) {
          continue;  // no faults on constants
        }
        if (c.fanouts(d).size() == 1) {
          for (bool v : {false, true}) {
            uf.merge(id_of(n, static_cast<int>(p), v), id_of(d, kOutputPin, v));
          }
        }
      }
    }
  }

  // Pick one representative per class.  Prefer stem faults as
  // representatives (they are the cheapest to inject).
  std::unordered_map<std::size_t, std::size_t> rep_of_root;
  std::vector<std::size_t> rep_order;
  for (std::size_t i = 0; i < all.size(); ++i) {
    const std::size_t root = uf.find(i);
    auto it = rep_of_root.find(root);
    if (it == rep_of_root.end()) {
      rep_of_root.emplace(root, i);
      rep_order.push_back(root);
    } else if (all[it->second].pin != kOutputPin &&
               all[i].pin == kOutputPin) {
      it->second = i;
    }
  }

  FaultList list;
  list.faults.reserve(rep_order.size());
  list.class_sizes.reserve(rep_order.size());
  std::unordered_map<std::size_t, unsigned> sizes;
  for (std::size_t i = 0; i < all.size(); ++i) ++sizes[uf.find(i)];
  for (std::size_t root : rep_order) {
    list.faults.push_back(all[rep_of_root.at(root)]);
    list.class_sizes.push_back(sizes.at(root));
  }
  return list;
}

std::uint64_t identity_digest(const FaultList& list) {
  serialize::Digest d;
  d.add_u64(list.faults.size());
  for (std::size_t i = 0; i < list.faults.size(); ++i) {
    const Fault& f = list.faults[i];
    d.add_u64(static_cast<std::uint64_t>(f.node));
    d.add_u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(f.pin)));
    // Stuck-at faults keep their historic 0/1 byte (pre-refactor snapshots
    // stay resumable); transition faults fold the model in so same-site
    // lists of different models never collide.
    const std::uint8_t b =
        f.model == FaultModel::kStuckAt
            ? static_cast<std::uint8_t>(f.stuck_at ? 1 : 0)
            : static_cast<std::uint8_t>(
                  f.model == FaultModel::kTransitionSlowToRise ? 2 : 3);
    d.add_byte(b);
    d.add_u64(list.class_sizes[i]);
  }
  return d.value();
}

}  // namespace gatpg::fault
