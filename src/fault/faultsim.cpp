#include "fault/faultsim.h"

#include <algorithm>
#include <stdexcept>

namespace gatpg::fault {

using netlist::NodeId;
using sim::PackedV3;
using sim::Sequence;
using sim::State3;
using sim::V3;
using sim::WideMask;

namespace {

/// Slots of `a` whose value differs from the scalar `good` (any difference,
/// including defined-vs-X in either direction — the exactness of the
/// differential screen depends on counting weak differences too, because
/// they can park into the state and matter later).
std::uint64_t differing_slots(PackedV3 a, V3 good) {
  switch (good) {
    case V3::k1:
      return ~a.v1;
    case V3::k0:
      return ~a.v0;
    default:
      return a.v1 | a.v0;
  }
}

/// Per-word variant of differing_slots over one word of a plane-row pair.
std::uint64_t differing_word(std::uint64_t r1, std::uint64_t r0, V3 good) {
  switch (good) {
    case V3::k1:
      return ~r1;
    case V3::k0:
      return ~r0;
    default:
      return r1 | r0;
  }
}

void set_row_slot(std::uint64_t* r1, std::uint64_t* r0, unsigned slot, V3 v) {
  const std::uint64_t m = 1ULL << (slot & 63);
  r1[slot >> 6] &= ~m;
  r0[slot >> 6] &= ~m;
  if (v == V3::k1) {
    r1[slot >> 6] |= m;
  } else if (v == V3::k0) {
    r0[slot >> 6] |= m;
  }
}

V3 get_row_slot(const std::uint64_t* r1, const std::uint64_t* r0,
                unsigned slot) {
  const std::uint64_t m = 1ULL << (slot & 63);
  if (r1[slot >> 6] & m) return V3::k1;
  if (r0[slot >> 6] & m) return V3::k0;
  return V3::kX;
}

void broadcast_rows(std::uint64_t* r1, std::uint64_t* r0, unsigned nw, V3 v) {
  const std::uint64_t b1 = v == V3::k1 ? ~0ULL : 0;
  const std::uint64_t b0 = v == V3::k0 ? ~0ULL : 0;
  for (unsigned w = 0; w < nw; ++w) {
    r1[w] = b1;
    r0[w] = b0;
  }
}

/// The good-machine line whose *previous-frame* value launches a transition
/// fault at this site: the faulted node's own output for output faults, the
/// driving line for input-pin (branch) faults.  The fault is active in a
/// frame iff that line settled to the transition's initial value in the
/// frame before (defined-equal; an X launch leaves the fault inactive — a
/// sound under-approximation, since every reported detection is
/// simulator-verified).
NodeId launch_line(const netlist::Circuit& c, const Fault& f) {
  return f.pin == kOutputPin
             ? f.node
             : c.fanins(f.node)[static_cast<std::size_t>(f.pin)];
}

}  // namespace

FaultSimulator::FaultSimulator(const netlist::Circuit& c,
                               std::vector<Fault> faults,
                               FaultSimConfig config)
    : c_(c),
      faults_(std::move(faults)),
      config_(config),
      detected_(faults_.size(), 0),
      good_(c),
      faulty_state_(faults_.size(),
                    State3(c.flip_flops().size(), V3::kX)),
      launch_prev_(faults_.size(), V3::kX) {
  if (config_.width < 1) config_.width = 1;
  if (config_.width > sim::kMaxWideWords) {
    throw std::invalid_argument("FaultSimConfig: width exceeds kMaxWideWords");
  }
  for (const Fault& f : faults_) {
    if (f.is_transition()) {
      any_transition_ = true;
      break;
    }
  }
}

void FaultSimulator::reset_machines() {
  good_.reset();
  for (auto& s : faulty_state_) {
    s.assign(c_.flip_flops().size(), V3::kX);
  }
  launch_prev_.assign(faults_.size(), V3::kX);
}

void FaultSimulator::reset_all() {
  reset_machines();
  std::fill(detected_.begin(), detected_.end(), 0);
  num_detected_ = 0;
}

void FaultSimulator::ensure_lanes(unsigned lanes) const {
  if (lanes_.size() < lanes) lanes_.resize(lanes);
}

void FaultSimulator::drain_lane_stats(unsigned lanes) const {
  for (unsigned l = 0; l < lanes && l < lanes_.size(); ++l) {
    Lane& lane = lanes_[l];
    stats_ += lane.stats;
    lane.stats = SimStats{};
    if (lane.machine) {
      stats_.gate_evals += lane.machine->gate_evals();
      lane.machine->reset_gate_evals();
    }
    if (lane.wide) {
      stats_.gate_evals += lane.wide->gate_evals();
      lane.wide->reset_gate_evals();
    }
  }
}

std::vector<std::vector<PackedV3>> FaultSimulator::pack_sequence(
    const Sequence& seq) const {
  const auto pis = c_.primary_inputs();
  std::vector<std::vector<PackedV3>> packed(
      seq.size(), std::vector<PackedV3>(pis.size()));
  for (std::size_t t = 0; t < seq.size(); ++t) {
    for (std::size_t p = 0; p < pis.size(); ++p) {
      packed[t][p] = PackedV3::broadcast(seq[t][p]);
    }
  }
  return packed;
}

// ---------------------------------------------------------------------------
// Differential engine
// ---------------------------------------------------------------------------

void FaultSimulator::simulate_differential(
    sim::SequenceSimulator& good, const std::vector<std::size_t>& fault_indices,
    const Sequence& seq, std::vector<State3>& states, std::vector<V3>& launch,
    std::vector<char>& live, std::vector<Detection>& detections,
    std::vector<State3>* good_sink) const {
  const auto pos = c_.primary_outputs();
  const auto ffs = c_.flip_flops();
  const std::size_t nff = ffs.size();
  const std::size_t total = seq.size();
  const std::size_t window = std::max<std::size_t>(1, config_.window);

  const std::uint64_t good_evals_before = good.gate_evals();

  // Excitation-screen site info, one entry per fault: the good-machine line
  // whose value feeds the fault site, the stuck value, and — for flip-flop
  // output faults, which also force the *next* state at latch time — the D
  // line as a second excitation source.  For transition faults `line` doubles
  // as the launch line (it is the same line by construction) and `stuck` as
  // the transition's initial value; the stuck-at excitation screen stays a
  // sound superset for them (activity only further restricts when the
  // forcing can diverge from the good machine).
  struct Site {
    NodeId line = netlist::kNoNode;
    NodeId extra = netlist::kNoNode;
    V3 stuck = V3::k0;
    bool transition = false;
  };
  std::vector<Site> sites(fault_indices.size());
  for (std::size_t i = 0; i < fault_indices.size(); ++i) {
    const Fault& f = faults_[fault_indices[i]];
    Site& s = sites[i];
    s.stuck = f.stuck_at ? V3::k1 : V3::k0;
    s.transition = f.is_transition();
    if (f.pin == kOutputPin) {
      s.line = f.node;
      if (c_.type(f.node) == netlist::GateType::kDff) {
        s.extra = c_.fanins(f.node)[0];
      }
    } else {
      s.line = c_.fanins(f.node)[static_cast<std::size_t>(f.pin)];
    }
  }

  // Window-reused good-machine recording buffers.
  std::vector<std::vector<PackedV3>> good_frames(window);
  std::vector<State3> good_present(window, State3(nff));
  std::vector<State3> good_next(window, State3(nff));
  std::vector<std::vector<std::pair<NodeId, V3>>> good_po(window);

  // Dense packing of the still-live sweep positions, in stable fault-index
  // order.  Built once up front; at every window boundary it is compacted in
  // place with the liveness the surviving-slot write-back just produced —
  // one pass over the survivors instead of a rescan of the full fault list.
  const unsigned nw = config_.width;
  const std::size_t group_slots = std::size_t{64} * nw;
  std::vector<std::size_t> order;
  order.reserve(fault_indices.size());
  for (std::size_t i = 0; i < fault_indices.size(); ++i) {
    if (live[i]) order.push_back(i);
  }
  std::size_t prev_live = fault_indices.size();

  for (std::size_t t0 = 0; t0 < total; t0 += window) {
    const std::size_t wlen = std::min(window, total - t0);

    // Pass 1: advance the good machine, recording each settled frame (node
    // values after apply, before clock), the present/next state scalars the
    // screen tests against, and the defined primary-output values.
    for (std::size_t k = 0; k < wlen; ++k) {
      good.apply_vector(seq[t0 + k]);
      good_frames[k] = good.node_values();
      for (std::size_t ff = 0; ff < nff; ++ff) {
        good_present[k][ff] = good_frames[k][ffs[ff]].get(0);
        good_next[k][ff] = good_frames[k][c_.fanins(ffs[ff])[0]].get(0);
      }
      good_po[k].clear();
      for (NodeId p : pos) {
        const V3 v = good_frames[k][p].get(0);
        if (v != V3::kX) good_po[k].emplace_back(p, v);
      }
      if (good_sink) good_sink->push_back(good_next[k]);
      good.clock();
    }

    // Dynamic repack: the maintained `order` packing is already dense and in
    // stable fault-index order (deterministic and thread-count-independent
    // by construction); groups are carved from it 64·width at a time.
    if (order.empty()) continue;  // keep advancing the good machine
    if (t0 > 0 && order.size() < prev_live) {
      stats_.groups_repacked += (order.size() + group_slots - 1) / group_slots;
    }
    prev_live = order.size();

    const std::size_t n_groups =
        (order.size() + group_slots - 1) / group_slots;
    std::vector<std::vector<Detection>> group_dets(n_groups);
    const unsigned lanes =
        util::max_lanes(config_.parallel, order.size(), group_slots);
    ensure_lanes(lanes);

    if (nw > 1) {
      // SIMD-wide sweep: 64·width faults per group on the SoA WideSimulator.
      util::parallel_for_chunks(
          config_.parallel, order.size(), group_slots,
          [&](std::size_t g, std::size_t begin, std::size_t end,
              unsigned lane) {
            Lane& scratch = lanes_[lane];
            if (!scratch.wide || scratch.wide->words() != nw) {
              scratch.wide = std::make_unique<sim::WideSimulator>(c_, nw);
            }
            sim::WideSimulator& machine = *scratch.wide;
            const std::size_t count = end - begin;

            machine.clear_overrides();
            for (std::size_t s = 0; s < count; ++s) {
              const Fault& f = faults_[fault_indices[order[begin + s]]];
              WideMask mask;
              mask.set(static_cast<unsigned>(s));
              if (f.pin == kOutputPin) {
                machine.add_output_override(f.node, f.stuck_at, mask);
              } else {
                machine.add_input_override(
                    f.node, static_cast<unsigned>(f.pin), f.stuck_at, mask);
              }
            }

            // Packed faulty present-state rows (flip-flop-major); unused
            // high slots track the good state so they never disturb the
            // event propagation.
            scratch.wff1.assign(nff * nw, 0);
            scratch.wff0.assign(nff * nw, 0);
            for (std::size_t ff = 0; ff < nff; ++ff) {
              std::uint64_t* r1 = scratch.wff1.data() + ff * nw;
              std::uint64_t* r0 = scratch.wff0.data() + ff * nw;
              broadcast_rows(r1, r0, nw, good_present[0][ff]);
              for (std::size_t s = 0; s < count; ++s) {
                set_row_slot(r1, r0, static_cast<unsigned>(s),
                             states[order[begin + s]][ff]);
              }
            }

            // Transition launch anchors, one per slot: the good value of the
            // slot's launch line in the frame before the current one (window
            // entry: the caller-carried value).
            bool group_trans = false;
            if (any_transition_) {
              for (std::size_t s = 0; s < count; ++s) {
                if (sites[order[begin + s]].transition) {
                  group_trans = true;
                  break;
                }
              }
            }
            std::vector<V3> lprev;
            WideMask full_act;
            if (group_trans) {
              lprev.resize(count);
              for (std::size_t s = 0; s < count; ++s) {
                lprev[s] = launch[order[begin + s]];
              }
              full_act =
                  WideMask::ones(nw, static_cast<std::size_t>(nw) * 64);
            }

            WideMask live_mask = WideMask::ones(nw, count);
            for (std::size_t k = 0; k < wlen && live_mask.any(); ++k) {
              ++scratch.stats.group_vectors;

              // Per-frame override activity: a transition slot forces only
              // when its launch line held the initial value in the previous
              // frame (act), and its flip-flop latch forcing only when it
              // holds it in this frame (act_next — the latch lands in the
              // next frame).  Stuck-at slots stay unconditionally active.
              WideMask act;
              WideMask act_next;
              if (group_trans) {
                act = full_act;
                act_next = full_act;
                for (std::size_t s = 0; s < count; ++s) {
                  const Site& site = sites[order[begin + s]];
                  if (!site.transition) continue;
                  if (lprev[s] != site.stuck) {
                    act.clear(static_cast<unsigned>(s));
                  }
                  const V3 nl = good_frames[k][site.line].get(0);
                  if (nl != site.stuck) {
                    act_next.clear(static_cast<unsigned>(s));
                  }
                  lprev[s] = nl;
                }
              }

              // Excitation/activity screen, word-parallel over the state.
              WideMask active;
              for (std::size_t s = 0; s < count; ++s) {
                const Site& site = sites[order[begin + s]];
                bool ex = good_frames[k][site.line].get(0) != site.stuck;
                if (!ex && site.extra != netlist::kNoNode) {
                  ex = good_frames[k][site.extra].get(0) != site.stuck;
                }
                if (ex) active.set(static_cast<unsigned>(s));
              }
              for (std::size_t ff = 0; ff < nff; ++ff) {
                const std::uint64_t* r1 = scratch.wff1.data() + ff * nw;
                const std::uint64_t* r0 = scratch.wff0.data() + ff * nw;
                const V3 gv = good_present[k][ff];
                for (unsigned w = 0; w < nw; ++w) {
                  active.w[w] |= differing_word(r1[w], r0[w], gv);
                }
              }
              active &= live_mask;
              if (!active.any()) {
                ++scratch.stats.group_vectors_skipped;
                for (std::size_t ff = 0; ff < nff; ++ff) {
                  broadcast_rows(scratch.wff1.data() + ff * nw,
                                 scratch.wff0.data() + ff * nw, nw,
                                 good_next[k][ff]);
                }
                continue;
              }

              if (group_trans) {
                machine.set_override_activity(act);
                machine.set_latch_override_activity(act_next);
              }
              machine.apply_differential(good_frames[k], scratch.wff1,
                                         scratch.wff0);

              WideMask hit;
              for (const auto& [p, gv] : good_po[k]) {
                const std::uint64_t* row =
                    gv == V3::k1 ? machine.row0(p) : machine.row1(p);
                for (unsigned w = 0; w < nw; ++w) hit.w[w] |= row[w];
              }
              hit &= live_mask;
              const bool retired = hit.any();
              for (unsigned w = 0; w < nw; ++w) {
                std::uint64_t h = hit.w[w];
                while (h) {
                  const unsigned s =
                      w * 64 + static_cast<unsigned>(__builtin_ctzll(h));
                  h &= h - 1;
                  live_mask.clear(s);
                  group_dets[g].push_back(
                      {static_cast<std::uint32_t>(order[begin + s]),
                       static_cast<std::uint32_t>(t0 + k)});
                }
              }
              if (retired) machine.retain_override_slots(live_mask);

              std::uint64_t nx1[sim::kMaxWideWords];
              std::uint64_t nx0[sim::kMaxWideWords];
              for (std::size_t ff = 0; ff < nff; ++ff) {
                machine.next_state_rows(ff, nx1, nx0);
                const V3 gn = good_next[k][ff];
                const std::uint64_t b1 = gn == V3::k1 ? ~0ULL : 0;
                const std::uint64_t b0 = gn == V3::k0 ? ~0ULL : 0;
                std::uint64_t* r1 = scratch.wff1.data() + ff * nw;
                std::uint64_t* r0 = scratch.wff0.data() + ff * nw;
                for (unsigned w = 0; w < nw; ++w) {
                  r1[w] = (nx1[w] & live_mask.w[w]) | (b1 & ~live_mask.w[w]);
                  r0[w] = (nx0[w] & live_mask.w[w]) | (b0 & ~live_mask.w[w]);
                }
              }
            }

            for (std::size_t s = 0; s < count; ++s) {
              const std::size_t p = order[begin + s];
              if (!live_mask.test(static_cast<unsigned>(s))) {
                live[p] = 0;
                continue;
              }
              for (std::size_t ff = 0; ff < nff; ++ff) {
                states[p][ff] = get_row_slot(scratch.wff1.data() + ff * nw,
                                             scratch.wff0.data() + ff * nw,
                                             static_cast<unsigned>(s));
              }
            }
          });
    } else {
    util::parallel_for_chunks(
        config_.parallel, order.size(), 64,
        [&](std::size_t g, std::size_t begin, std::size_t end, unsigned lane) {
          Lane& scratch = lanes_[lane];
          if (!scratch.machine) {
            scratch.machine = std::make_unique<sim::SequenceSimulator>(c_);
          }
          sim::SequenceSimulator& machine = *scratch.machine;
          const std::size_t count = end - begin;

          machine.clear_overrides();
          for (std::size_t s = 0; s < count; ++s) {
            const Fault& f = faults_[fault_indices[order[begin + s]]];
            const std::uint64_t mask = 1ULL << s;
            if (f.pin == kOutputPin) {
              machine.add_output_override(f.node, f.stuck_at, mask);
            } else {
              machine.add_input_override(
                  f.node, static_cast<unsigned>(f.pin), f.stuck_at, mask);
            }
          }

          // Packed faulty present state; unused high slots track the good
          // state so they never disturb the event propagation.
          scratch.ff.assign(nff, PackedV3::all_x());
          for (std::size_t ff = 0; ff < nff; ++ff) {
            PackedV3 w = PackedV3::broadcast(good_present[0][ff]);
            for (std::size_t s = 0; s < count; ++s) {
              w.set(static_cast<unsigned>(s), states[order[begin + s]][ff]);
            }
            scratch.ff[ff] = w;
          }

          // Transition launch anchors, one per slot: the good value of the
          // slot's launch line in the frame before the current one (window
          // entry: the caller-carried value).
          bool group_trans = false;
          if (any_transition_) {
            for (std::size_t s = 0; s < count; ++s) {
              if (sites[order[begin + s]].transition) {
                group_trans = true;
                break;
              }
            }
          }
          std::vector<V3> lprev;
          if (group_trans) {
            lprev.resize(count);
            for (std::size_t s = 0; s < count; ++s) {
              lprev[s] = launch[order[begin + s]];
            }
          }

          std::uint64_t live_mask =
              count == 64 ? ~0ULL : ((1ULL << count) - 1);
          for (std::size_t k = 0; k < wlen && live_mask; ++k) {
            ++scratch.stats.group_vectors;

            // Per-frame override activity: a transition slot forces only
            // when its launch line held the initial value in the previous
            // frame (act), and its flip-flop latch forcing only when it
            // holds it in this frame (act_next — the latch lands in the
            // next frame).  Stuck-at slots stay unconditionally active.
            std::uint64_t act = ~0ULL;
            std::uint64_t act_next = ~0ULL;
            if (group_trans) {
              for (std::size_t s = 0; s < count; ++s) {
                const Site& site = sites[order[begin + s]];
                if (!site.transition) continue;
                if (lprev[s] != site.stuck) act &= ~(1ULL << s);
                const V3 nl = good_frames[k][site.line].get(0);
                if (nl != site.stuck) act_next &= ~(1ULL << s);
                lprev[s] = nl;
              }
            }

            // Excitation/activity screen: a slot can differ from the good
            // machine this vector only if its fault site is excited by the
            // good values or its state carries parked fault effects.
            std::uint64_t active = 0;
            for (std::size_t s = 0; s < count; ++s) {
              const Site& site = sites[order[begin + s]];
              bool ex = good_frames[k][site.line].get(0) != site.stuck;
              if (!ex && site.extra != netlist::kNoNode) {
                ex = good_frames[k][site.extra].get(0) != site.stuck;
              }
              active |= static_cast<std::uint64_t>(ex) << s;
            }
            for (std::size_t ff = 0; ff < nff; ++ff) {
              active |= differing_slots(scratch.ff[ff], good_present[k][ff]);
            }
            active &= live_mask;
            if (!active) {
              // Provable no-op: every live slot equals the good machine
              // everywhere, so the frame cannot detect and the faulty state
              // just tracks the good next state.
              ++scratch.stats.group_vectors_skipped;
              for (std::size_t ff = 0; ff < nff; ++ff) {
                scratch.ff[ff] = PackedV3::broadcast(good_next[k][ff]);
              }
              continue;
            }

            if (group_trans) {
              machine.set_override_activity(act);
              machine.set_latch_override_activity(act_next);
            }
            machine.apply_differential(good_frames[k], scratch.ff);

            std::uint64_t hit = 0;
            for (const auto& [p, gv] : good_po[k]) {
              const PackedV3 w = machine.value(p);
              hit |= gv == V3::k1 ? w.v0 : w.v1;
            }
            hit &= live_mask;
            const bool retired = hit != 0;
            while (hit) {
              const unsigned s = static_cast<unsigned>(__builtin_ctzll(hit));
              hit &= hit - 1;
              live_mask &= ~(1ULL << s);
              group_dets[g].push_back(
                  {static_cast<std::uint32_t>(order[begin + s]),
                   static_cast<std::uint32_t>(t0 + k)});
            }
            // Retire freshly detected slots on the spot: drop their fault
            // injection and snap their state onto the good machine below, so
            // they stop generating differential events immediately instead
            // of at the next repack boundary.
            if (retired) machine.retain_override_slots(live_mask);

            for (std::size_t ff = 0; ff < nff; ++ff) {
              // Live slots latch their faulty next state; dead and unused
              // slots track the good machine (zero-event ghosts).
              const PackedV3 faulty = machine.next_state_packed(ff);
              const PackedV3 g_next = PackedV3::broadcast(good_next[k][ff]);
              scratch.ff[ff] = {(faulty.v1 & live_mask) |
                                    (g_next.v1 & ~live_mask),
                                (faulty.v0 & live_mask) |
                                    (g_next.v0 & ~live_mask)};
            }
          }

          // Write back survivors' states; mark detected slots dead.
          for (std::size_t s = 0; s < count; ++s) {
            const std::size_t p = order[begin + s];
            if (!(live_mask & (1ULL << s))) {
              live[p] = 0;
              continue;
            }
            for (std::size_t ff = 0; ff < nff; ++ff) {
              states[p][ff] = scratch.ff[ff].get(static_cast<unsigned>(s));
            }
          }
        });
    }

    drain_lane_stats(lanes);
    for (std::size_t g = 0; g < n_groups; ++g) {
      detections.insert(detections.end(), group_dets[g].begin(),
                        group_dets[g].end());
    }

    // One-pass repack: reuse the liveness the write-back just produced to
    // compact the packing in place — next window's dense groups come for
    // free instead of from a full-fault-list rescan.
    std::size_t kept = 0;
    for (const std::size_t i : order) {
      if (live[i]) order[kept++] = i;
    }
    order.resize(kept);

    // Advance the carried launch anchors to the last frame of this window
    // (the good value each launch line settled to): the next window's groups
    // — and, after the final window, the caller's persisted launch_prev_ —
    // read their entry launches from here.
    if (any_transition_) {
      for (std::size_t i = 0; i < fault_indices.size(); ++i) {
        launch[i] = good_frames[wlen - 1][sites[i].line].get(0);
      }
    }
  }

  stats_.frames += total;
  stats_.good_gate_evals += good.gate_evals() - good_evals_before;
}

std::vector<std::size_t> FaultSimulator::run(const Sequence& seq) {
  if (!config_.differential) {
    return config_.width > 1 ? run_full_sweep_wide(seq) : run_full_sweep(seq);
  }
  std::vector<std::size_t> newly;
  if (seq.empty()) return newly;

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (!detected_[i]) pending.push_back(i);
  }
  std::vector<State3> states;
  states.reserve(pending.size());
  for (std::size_t i : pending) states.push_back(faulty_state_[i]);
  std::vector<V3> launch;
  launch.reserve(pending.size());
  for (std::size_t i : pending) launch.push_back(launch_prev_[i]);
  std::vector<char> live(pending.size(), 1);
  std::vector<Detection> dets;

  simulate_differential(good_, pending, seq, states, launch, live, dets,
                        good_sink_);

  // Reproduce the full-sweep engine's exact detection order regardless of
  // windowing and repacking: group-of-origin (pending position / 64) first,
  // then detection time, then slot.
  std::sort(dets.begin(), dets.end(),
            [](const Detection& a, const Detection& b) {
              if ((a.pos >> 6) != (b.pos >> 6)) {
                return (a.pos >> 6) < (b.pos >> 6);
              }
              if (a.t != b.t) return a.t < b.t;
              return a.pos < b.pos;
            });
  for (const Detection& d : dets) {
    const std::size_t fi = pending[d.pos];
    detected_[fi] = 1;
    ++num_detected_;
    newly.push_back(fi);
  }
  // Persist faulty flip-flop states for still-undetected faults only, like
  // the full-sweep engine (faults detected during this run keep their
  // pre-run state).  Launch anchors are good-machine values, so they advance
  // for every fault uniformly.
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (live[i]) faulty_state_[pending[i]] = std::move(states[i]);
  }
  if (any_transition_) {
    for (std::size_t i = 0; i < pending.size(); ++i) {
      launch_prev_[pending[i]] = launch[i];
    }
  }
  return newly;
}

FaultSimulator::WhatIf FaultSimulator::what_if(
    std::span<const std::size_t> fault_indices, const Sequence& seq) const {
  WhatIf result;
  if (seq.empty() || fault_indices.empty()) return result;
  if (!config_.differential) {
    return config_.width > 1 ? what_if_full_sweep_wide(fault_indices, seq)
                             : what_if_full_sweep(fault_indices, seq);
  }

  sim::SequenceSimulator good = good_;  // copy: session state untouched
  good.reset_gate_evals();
  std::vector<std::size_t> idx(fault_indices.begin(), fault_indices.end());
  std::vector<State3> states;
  states.reserve(idx.size());
  for (std::size_t i : idx) states.push_back(faulty_state_[i]);
  // Local copy of the launch anchors: what-if continues the session (same
  // entry launches as run() would use) but must not mutate it.
  std::vector<V3> launch;
  launch.reserve(idx.size());
  for (std::size_t i : idx) launch.push_back(launch_prev_[i]);
  std::vector<char> live(idx.size(), 1);
  std::vector<Detection> dets;

  simulate_differential(good, idx, seq, states, launch, live, dets, nullptr);

  result.detected = static_cast<unsigned>(dets.size());
  // Fault effects parked in the state at sequence end (undetected slots
  // whose faulty flip-flop value is defined and differs from the good
  // machine's defined value).
  const State3 good_final = good.state();
  for (std::size_t i = 0; i < idx.size(); ++i) {
    if (!live[i]) continue;
    for (std::size_t ff = 0; ff < good_final.size(); ++ff) {
      const V3 g = good_final[ff];
      const V3 b = states[i][ff];
      if (g != V3::kX && b != V3::kX && g != b) {
        ++result.state_effects;
        break;
      }
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Full-sweep reference engine
// ---------------------------------------------------------------------------

std::vector<std::size_t> FaultSimulator::run_full_sweep(const Sequence& seq) {
  std::vector<std::size_t> newly;
  if (seq.empty()) return newly;

  const std::uint64_t good_evals_before = good_.gate_evals();

  // Pass 2's fault subset, computed up front so pass 1 can record the good
  // launch-line values transition faults anchor their activity to.
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (!detected_[i]) pending.push_back(i);
  }
  std::vector<NodeId> f_line;
  std::vector<char> f_trans;
  std::vector<V3> f_init;
  std::vector<std::vector<V3>> good_launch;
  if (any_transition_) {
    f_line.resize(pending.size());
    f_trans.resize(pending.size());
    f_init.resize(pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const Fault& f = faults_[pending[i]];
      f_trans[i] = f.is_transition() ? 1 : 0;
      f_init[i] = f.stuck_at ? V3::k1 : V3::k0;
      f_line[i] = launch_line(c_, f);
    }
    good_launch.assign(seq.size(), std::vector<V3>(pending.size()));
  }

  // Pass 1: good machine, recording per-vector PO values (slot 0) and, in
  // transition mode, each fault's settled launch-line value per frame.
  const auto pos = c_.primary_outputs();
  std::vector<std::vector<V3>> good_po(seq.size(), std::vector<V3>(pos.size()));
  for (std::size_t t = 0; t < seq.size(); ++t) {
    good_.apply_vector(seq[t]);
    for (std::size_t p = 0; p < pos.size(); ++p) {
      good_po[t][p] = good_.scalar_value(pos[p]);
    }
    if (any_transition_) {
      for (std::size_t i = 0; i < pending.size(); ++i) {
        good_launch[t][i] = good_.scalar_value(f_line[i]);
      }
    }
    good_.clock();
    if (good_sink_) good_sink_->push_back(good_.state());
  }
  stats_.frames += seq.size();
  stats_.good_gate_evals += good_.gate_evals() - good_evals_before;

  // Pass 2: undetected faults in groups of 64, groups fanned out across
  // lanes.  Each group only touches its own faults' faulty_state_ entries
  // and its own lane's machine; detections are collected per group and
  // merged in group order below, so the result is schedule-independent.
  const std::size_t nff = c_.flip_flops().size();
  const auto packed_seq = pack_sequence(seq);

  const std::size_t n_groups = (pending.size() + 63) / 64;
  std::vector<std::vector<std::size_t>> group_newly(n_groups);
  const unsigned lanes = util::max_lanes(config_.parallel, pending.size(), 64);
  ensure_lanes(lanes);

  util::parallel_for_chunks(
      config_.parallel, pending.size(), 64,
      [&](std::size_t g, std::size_t begin, std::size_t end, unsigned lane) {
        Lane& scratch = lanes_[lane];
        if (!scratch.machine) {
          scratch.machine = std::make_unique<sim::SequenceSimulator>(c_);
        }
        sim::SequenceSimulator& machine = *scratch.machine;
        const std::size_t count = end - begin;

        machine.clear_overrides();
        machine.reset();
        for (std::size_t s = 0; s < count; ++s) {
          const Fault& f = faults_[pending[begin + s]];
          const std::uint64_t mask = 1ULL << s;
          if (f.pin == kOutputPin) {
            machine.add_output_override(f.node, f.stuck_at, mask);
          } else {
            machine.add_input_override(
                f.node, static_cast<unsigned>(f.pin), f.stuck_at, mask);
          }
        }
        // Transition slots of this group, with their carried launch anchors.
        // While the persisted states load, transition slots are held
        // inactive so the flip-flop output forcing cannot clobber the loaded
        // values; the frame loop installs the real per-frame activity before
        // the first apply (which full-evaluates, re-forcing everything).
        std::uint64_t trans_bits = 0;
        std::vector<V3> lprev;
        if (any_transition_) {
          for (std::size_t s = 0; s < count; ++s) {
            if (f_trans[begin + s]) trans_bits |= 1ULL << s;
          }
          if (trans_bits) {
            lprev.resize(count);
            for (std::size_t s = 0; s < count; ++s) {
              lprev[s] = launch_prev_[pending[begin + s]];
            }
            machine.set_override_activity(~trans_bits);
            machine.set_latch_override_activity(~trans_bits);
          }
        }
        // Load persisted per-fault flip-flop states.
        for (std::size_t ff = 0; ff < nff; ++ff) {
          PackedV3 w = PackedV3::all_x();
          for (std::size_t s = 0; s < count; ++s) {
            w.set(static_cast<unsigned>(s),
                  faulty_state_[pending[begin + s]][ff]);
          }
          machine.set_ff_packed(ff, w);
        }

        scratch.stats.group_vectors += seq.size();
        std::uint64_t live = count == 64 ? ~0ULL : ((1ULL << count) - 1);
        for (std::size_t t = 0; t < seq.size(); ++t) {
          if (trans_bits) {
            std::uint64_t act = ~0ULL;
            std::uint64_t act_next = ~0ULL;
            for (std::size_t s = 0; s < count; ++s) {
              if (!f_trans[begin + s]) continue;
              if (lprev[s] != f_init[begin + s]) act &= ~(1ULL << s);
              const V3 nl = good_launch[t][begin + s];
              if (nl != f_init[begin + s]) act_next &= ~(1ULL << s);
              lprev[s] = nl;
            }
            machine.set_override_activity(act);
            machine.set_latch_override_activity(act_next);
          }
          machine.apply_packed(packed_seq[t]);
          std::uint64_t hit = 0;
          for (std::size_t p = 0; p < pos.size(); ++p) {
            const V3 good_value = good_po[t][p];
            if (good_value == V3::kX) continue;
            const PackedV3 w = machine.value(pos[p]);
            hit |= (good_value == V3::k1) ? w.v0 : w.v1;
          }
          hit &= live;
          while (hit) {
            const unsigned s = static_cast<unsigned>(__builtin_ctzll(hit));
            hit &= hit - 1;
            live &= ~(1ULL << s);
            group_newly[g].push_back(pending[begin + s]);
          }
          machine.clock();
        }

        // Persist faulty flip-flop states for still-undetected faults
        // (slots still live).
        for (std::size_t s = 0; s < count; ++s) {
          if (!(live & (1ULL << s))) continue;
          const std::size_t fi = pending[begin + s];
          for (std::size_t ff = 0; ff < nff; ++ff) {
            faulty_state_[fi][ff] =
                machine.value(c_.flip_flops()[ff]).get(
                    static_cast<unsigned>(s));
          }
        }
      });

  drain_lane_stats(lanes);

  // Launch anchors advance for every fault uniformly (they are good-machine
  // values) — bit-identical to the differential engine's bookkeeping.
  if (any_transition_) {
    for (std::size_t i = 0; i < pending.size(); ++i) {
      launch_prev_[pending[i]] = good_launch[seq.size() - 1][i];
    }
  }

  // Deterministic merge: detections land in (group, time, slot) order —
  // exactly the order the serial sweep produced them in.
  for (std::size_t g = 0; g < n_groups; ++g) {
    for (std::size_t fi : group_newly[g]) {
      detected_[fi] = 1;
      ++num_detected_;
      newly.push_back(fi);
    }
  }
  return newly;
}

bool FaultSimulator::would_detect(std::size_t fault_index,
                                  const Sequence& seq) const {
  return would_detect_from(c_, good_, faulty_state_[fault_index],
                           faults_[fault_index], seq,
                           launch_prev_[fault_index]);
}

bool FaultSimulator::would_detect_from(const netlist::Circuit& c,
                                       const sim::SequenceSimulator& good_start,
                                       const sim::State3& faulty_state,
                                       const Fault& f, const Sequence& seq,
                                       V3 launch_prev) {
  sim::SequenceSimulator good = good_start;  // copy: caller state untouched
  sim::SequenceSimulator faulty(c);
  const bool trans = f.is_transition();
  const NodeId line = launch_line(c, f);
  const V3 initial = f.stuck_at ? V3::k1 : V3::k0;
  if (trans) {
    // Frame-0 activity from the caller-supplied launch anchor, installed
    // before the override so even the initial source forcing is gated.
    const std::uint64_t act0 = launch_prev == initial ? ~0ULL : 0;
    faulty.set_override_activity(act0);
    faulty.set_latch_override_activity(act0);
  }
  if (f.pin == kOutputPin) {
    faulty.add_output_override(f.node, f.stuck_at, ~0ULL);
  } else {
    faulty.add_input_override(f.node, static_cast<unsigned>(f.pin),
                              f.stuck_at, ~0ULL);
  }
  faulty.set_state(faulty_state);

  const auto pos = c.primary_outputs();
  for (const auto& v : seq) {
    good.apply_vector(v);
    faulty.apply_vector(v);
    for (NodeId po : pos) {
      const V3 g = good.scalar_value(po);
      const V3 b = faulty.scalar_value(po);
      if (g != V3::kX && b != V3::kX && g != b) return true;
    }
    if (trans) {
      // Next frame's activity comes from this frame's settled good launch
      // value: the latch mask must be in place before clock() (the latched
      // forcing lands in the next frame); the current mask rolls over after
      // it (a change re-baselines the event queue on the next apply).
      const std::uint64_t next_act =
          good.scalar_value(line) == initial ? ~0ULL : 0;
      faulty.set_latch_override_activity(next_act);
      good.clock();
      faulty.clock();
      faulty.set_override_activity(next_act);
    } else {
      good.clock();
      faulty.clock();
    }
  }
  return false;
}

FaultSimulator::WhatIf FaultSimulator::what_if_full_sweep(
    std::span<const std::size_t> fault_indices, const Sequence& seq) const {
  WhatIf result;

  // Transition launch bookkeeping over the what-if fault subset (entry
  // anchors come from the session's launch_prev_; nothing is written back).
  std::vector<NodeId> f_line;
  std::vector<char> f_trans;
  std::vector<V3> f_init;
  std::vector<std::vector<V3>> good_launch;
  if (any_transition_) {
    f_line.resize(fault_indices.size());
    f_trans.resize(fault_indices.size());
    f_init.resize(fault_indices.size());
    for (std::size_t i = 0; i < fault_indices.size(); ++i) {
      const Fault& f = faults_[fault_indices[i]];
      f_trans[i] = f.is_transition() ? 1 : 0;
      f_init[i] = f.stuck_at ? V3::k1 : V3::k0;
      f_line[i] = launch_line(c_, f);
    }
    good_launch.assign(seq.size(), std::vector<V3>(fault_indices.size()));
  }

  // Good machine: a copy of the session machine, run once.
  sim::SequenceSimulator good = good_;
  good.reset_gate_evals();
  const auto pos = c_.primary_outputs();
  std::vector<std::vector<V3>> good_po(seq.size(), std::vector<V3>(pos.size()));
  for (std::size_t t = 0; t < seq.size(); ++t) {
    good.apply_vector(seq[t]);
    for (std::size_t p = 0; p < pos.size(); ++p) {
      good_po[t][p] = good.scalar_value(pos[p]);
    }
    if (any_transition_) {
      for (std::size_t i = 0; i < fault_indices.size(); ++i) {
        good_launch[t][i] = good.scalar_value(f_line[i]);
      }
    }
    good.clock();
  }
  const State3 good_final = good.state();
  stats_.frames += seq.size();
  stats_.good_gate_evals += good.gate_evals();

  const std::size_t nff = c_.flip_flops().size();
  const auto packed_seq = pack_sequence(seq);

  // Group counts are sums of per-group popcounts — order-independent, but
  // accumulated per group and reduced serially anyway so the arithmetic is
  // schedule-independent too.
  const std::size_t n_groups = (fault_indices.size() + 63) / 64;
  std::vector<WhatIf> per_group(n_groups);
  const unsigned lanes =
      util::max_lanes(config_.parallel, fault_indices.size(), 64);
  ensure_lanes(lanes);

  util::parallel_for_chunks(
      config_.parallel, fault_indices.size(), 64,
      [&](std::size_t g, std::size_t begin, std::size_t end, unsigned lane) {
        Lane& scratch = lanes_[lane];
        if (!scratch.machine) {
          scratch.machine = std::make_unique<sim::SequenceSimulator>(c_);
        }
        sim::SequenceSimulator& machine = *scratch.machine;
        const std::size_t count = end - begin;

        machine.clear_overrides();
        machine.reset();
        for (std::size_t s = 0; s < count; ++s) {
          const Fault& f = faults_[fault_indices[begin + s]];
          const std::uint64_t mask = 1ULL << s;
          if (f.pin == kOutputPin) {
            machine.add_output_override(f.node, f.stuck_at, mask);
          } else {
            machine.add_input_override(f.node, static_cast<unsigned>(f.pin),
                                       f.stuck_at, mask);
          }
        }
        // Transition slots held inactive during the state load; the frame
        // loop installs the real per-frame activity (cf. run_full_sweep).
        std::uint64_t trans_bits = 0;
        std::vector<V3> lprev;
        if (any_transition_) {
          for (std::size_t s = 0; s < count; ++s) {
            if (f_trans[begin + s]) trans_bits |= 1ULL << s;
          }
          if (trans_bits) {
            lprev.resize(count);
            for (std::size_t s = 0; s < count; ++s) {
              lprev[s] = launch_prev_[fault_indices[begin + s]];
            }
            machine.set_override_activity(~trans_bits);
            machine.set_latch_override_activity(~trans_bits);
          }
        }
        for (std::size_t ff = 0; ff < nff; ++ff) {
          PackedV3 w = PackedV3::all_x();
          for (std::size_t s = 0; s < count; ++s) {
            w.set(static_cast<unsigned>(s),
                  faulty_state_[fault_indices[begin + s]][ff]);
          }
          machine.set_ff_packed(ff, w);
        }

        scratch.stats.group_vectors += seq.size();
        const std::uint64_t live_all =
            count == 64 ? ~0ULL : ((1ULL << count) - 1);
        std::uint64_t detected_mask = 0;
        for (std::size_t t = 0; t < seq.size(); ++t) {
          if (trans_bits) {
            std::uint64_t act = ~0ULL;
            std::uint64_t act_next = ~0ULL;
            for (std::size_t s = 0; s < count; ++s) {
              if (!f_trans[begin + s]) continue;
              if (lprev[s] != f_init[begin + s]) act &= ~(1ULL << s);
              const V3 nl = good_launch[t][begin + s];
              if (nl != f_init[begin + s]) act_next &= ~(1ULL << s);
              lprev[s] = nl;
            }
            machine.set_override_activity(act);
            machine.set_latch_override_activity(act_next);
          }
          machine.apply_packed(packed_seq[t]);
          for (std::size_t p = 0; p < pos.size(); ++p) {
            const V3 good_value = good_po[t][p];
            if (good_value == V3::kX) continue;
            const PackedV3 w = machine.value(pos[p]);
            detected_mask |= (good_value == V3::k1) ? w.v0 : w.v1;
          }
          machine.clock();
        }
        detected_mask &= live_all;
        per_group[g].detected =
            static_cast<unsigned>(__builtin_popcountll(detected_mask));

        // Fault effects parked in the state at sequence end (undetected
        // slots whose faulty flip-flop value is defined and differs from
        // the good machine's).
        std::uint64_t effect_mask = 0;
        for (std::size_t ff = 0; ff < nff; ++ff) {
          const V3 g_v = good_final[ff];
          if (g_v == V3::kX) continue;
          const PackedV3 w = machine.value(c_.flip_flops()[ff]);
          effect_mask |= (g_v == V3::k1) ? w.v0 : w.v1;
        }
        effect_mask &= live_all & ~detected_mask;
        per_group[g].state_effects =
            static_cast<unsigned>(__builtin_popcountll(effect_mask));
      });

  drain_lane_stats(lanes);

  for (const WhatIf& g : per_group) {
    result.detected += g.detected;
    result.state_effects += g.state_effects;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Full-sweep engine, SIMD-wide groups
// ---------------------------------------------------------------------------

std::vector<std::size_t> FaultSimulator::run_full_sweep_wide(
    const Sequence& seq) {
  std::vector<std::size_t> newly;
  if (seq.empty()) return newly;
  const unsigned nw = config_.width;

  const std::uint64_t good_evals_before = good_.gate_evals();

  // Fault subset first so pass 1 can record launch-line values (cf. the
  // 64-slot engine).
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (!detected_[i]) pending.push_back(i);
  }
  std::vector<NodeId> f_line;
  std::vector<char> f_trans;
  std::vector<V3> f_init;
  std::vector<std::vector<V3>> good_launch;
  if (any_transition_) {
    f_line.resize(pending.size());
    f_trans.resize(pending.size());
    f_init.resize(pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const Fault& f = faults_[pending[i]];
      f_trans[i] = f.is_transition() ? 1 : 0;
      f_init[i] = f.stuck_at ? V3::k1 : V3::k0;
      f_line[i] = launch_line(c_, f);
    }
    good_launch.assign(seq.size(), std::vector<V3>(pending.size()));
  }

  // Pass 1: good machine, recording per-vector PO values (slot 0) — shared
  // with the 64-slot engine verbatim.
  const auto pos = c_.primary_outputs();
  std::vector<std::vector<V3>> good_po(seq.size(), std::vector<V3>(pos.size()));
  for (std::size_t t = 0; t < seq.size(); ++t) {
    good_.apply_vector(seq[t]);
    for (std::size_t p = 0; p < pos.size(); ++p) {
      good_po[t][p] = good_.scalar_value(pos[p]);
    }
    if (any_transition_) {
      for (std::size_t i = 0; i < pending.size(); ++i) {
        good_launch[t][i] = good_.scalar_value(f_line[i]);
      }
    }
    good_.clock();
    if (good_sink_) good_sink_->push_back(good_.state());
  }
  stats_.frames += seq.size();
  stats_.good_gate_evals += good_.gate_evals() - good_evals_before;

  const std::size_t nff = c_.flip_flops().size();
  const auto pis = c_.primary_inputs();

  // The input sequence broadcast into wide rows once (nw words per PI,
  // PI-major), shared read-only by every group.
  std::vector<std::vector<std::uint64_t>> seq1(seq.size());
  std::vector<std::vector<std::uint64_t>> seq0(seq.size());
  for (std::size_t t = 0; t < seq.size(); ++t) {
    seq1[t].resize(pis.size() * nw);
    seq0[t].resize(pis.size() * nw);
    for (std::size_t p = 0; p < pis.size(); ++p) {
      broadcast_rows(seq1[t].data() + p * nw, seq0[t].data() + p * nw, nw,
                     seq[t][p]);
    }
  }

  const std::size_t group_slots = std::size_t{64} * nw;
  const std::size_t n_groups =
      (pending.size() + group_slots - 1) / group_slots;
  std::vector<std::vector<Detection>> group_dets(n_groups);
  const unsigned lanes =
      util::max_lanes(config_.parallel, pending.size(), group_slots);
  ensure_lanes(lanes);

  util::parallel_for_chunks(
      config_.parallel, pending.size(), group_slots,
      [&](std::size_t g, std::size_t begin, std::size_t end, unsigned lane) {
        Lane& scratch = lanes_[lane];
        if (!scratch.wide || scratch.wide->words() != nw) {
          scratch.wide = std::make_unique<sim::WideSimulator>(c_, nw);
        }
        sim::WideSimulator& machine = *scratch.wide;
        const std::size_t count = end - begin;

        machine.clear_overrides();
        machine.reset();
        for (std::size_t s = 0; s < count; ++s) {
          const Fault& f = faults_[pending[begin + s]];
          WideMask mask;
          mask.set(static_cast<unsigned>(s));
          if (f.pin == kOutputPin) {
            machine.add_output_override(f.node, f.stuck_at, mask);
          } else {
            machine.add_input_override(
                f.node, static_cast<unsigned>(f.pin), f.stuck_at, mask);
          }
        }
        // Transition slots held inactive during the state load; the frame
        // loop installs the real per-frame activity (cf. run_full_sweep).
        WideMask trans_mask;
        WideMask full_act;
        std::vector<V3> lprev;
        bool group_trans = false;
        if (any_transition_) {
          for (std::size_t s = 0; s < count; ++s) {
            if (f_trans[begin + s]) {
              trans_mask.set(static_cast<unsigned>(s));
              group_trans = true;
            }
          }
          if (group_trans) {
            lprev.resize(count);
            for (std::size_t s = 0; s < count; ++s) {
              lprev[s] = launch_prev_[pending[begin + s]];
            }
            full_act = WideMask::ones(nw, static_cast<std::size_t>(nw) * 64);
            WideMask load_act = full_act;
            load_act.remove(trans_mask);
            machine.set_override_activity(load_act);
            machine.set_latch_override_activity(load_act);
          }
        }
        // Load persisted per-fault flip-flop states.
        std::uint64_t r1[sim::kMaxWideWords];
        std::uint64_t r0[sim::kMaxWideWords];
        for (std::size_t ff = 0; ff < nff; ++ff) {
          broadcast_rows(r1, r0, nw, V3::kX);
          for (std::size_t s = 0; s < count; ++s) {
            set_row_slot(r1, r0, static_cast<unsigned>(s),
                         faulty_state_[pending[begin + s]][ff]);
          }
          machine.set_ff_rows(ff, r1, r0);
        }

        scratch.stats.group_vectors += seq.size();
        WideMask live = WideMask::ones(nw, count);
        for (std::size_t t = 0; t < seq.size(); ++t) {
          if (group_trans) {
            WideMask act = full_act;
            WideMask act_next = full_act;
            for (std::size_t s = 0; s < count; ++s) {
              if (!f_trans[begin + s]) continue;
              if (lprev[s] != f_init[begin + s]) {
                act.clear(static_cast<unsigned>(s));
              }
              const V3 nl = good_launch[t][begin + s];
              if (nl != f_init[begin + s]) {
                act_next.clear(static_cast<unsigned>(s));
              }
              lprev[s] = nl;
            }
            machine.set_override_activity(act);
            machine.set_latch_override_activity(act_next);
          }
          machine.apply_wide(seq1[t], seq0[t]);
          WideMask hit;
          for (std::size_t p = 0; p < pos.size(); ++p) {
            const V3 good_value = good_po[t][p];
            if (good_value == V3::kX) continue;
            const std::uint64_t* row = good_value == V3::k1
                                           ? machine.row0(pos[p])
                                           : machine.row1(pos[p]);
            for (unsigned w = 0; w < nw; ++w) hit.w[w] |= row[w];
          }
          hit &= live;
          for (unsigned w = 0; w < nw; ++w) {
            std::uint64_t h = hit.w[w];
            while (h) {
              const unsigned s =
                  w * 64 + static_cast<unsigned>(__builtin_ctzll(h));
              h &= h - 1;
              live.clear(s);
              group_dets[g].push_back(
                  {static_cast<std::uint32_t>(begin + s),
                   static_cast<std::uint32_t>(t)});
            }
          }
          machine.clock();
        }

        // Persist faulty flip-flop states for still-undetected faults
        // (slots still live).
        for (std::size_t s = 0; s < count; ++s) {
          if (!live.test(static_cast<unsigned>(s))) continue;
          const std::size_t fi = pending[begin + s];
          for (std::size_t ff = 0; ff < nff; ++ff) {
            faulty_state_[fi][ff] =
                machine.get(c_.flip_flops()[ff], static_cast<unsigned>(s));
          }
        }
      });

  drain_lane_stats(lanes);

  // Launch anchors advance for every fault uniformly (good-machine values).
  if (any_transition_) {
    for (std::size_t i = 0; i < pending.size(); ++i) {
      launch_prev_[pending[i]] = good_launch[seq.size() - 1][i];
    }
  }

  // Reproduce the 64-slot engine's exact detection order: its serial merge
  // lands detections in (pending position / 64, time, position) order, so
  // sorting by that key makes the list grouping-independent.
  std::vector<Detection> dets;
  for (std::size_t g = 0; g < n_groups; ++g) {
    dets.insert(dets.end(), group_dets[g].begin(), group_dets[g].end());
  }
  std::sort(dets.begin(), dets.end(),
            [](const Detection& a, const Detection& b) {
              if ((a.pos >> 6) != (b.pos >> 6)) {
                return (a.pos >> 6) < (b.pos >> 6);
              }
              if (a.t != b.t) return a.t < b.t;
              return a.pos < b.pos;
            });
  for (const Detection& d : dets) {
    const std::size_t fi = pending[d.pos];
    detected_[fi] = 1;
    ++num_detected_;
    newly.push_back(fi);
  }
  return newly;
}

FaultSimulator::WhatIf FaultSimulator::what_if_full_sweep_wide(
    std::span<const std::size_t> fault_indices, const Sequence& seq) const {
  WhatIf result;
  const unsigned nw = config_.width;

  // Transition launch bookkeeping over the what-if fault subset (entry
  // anchors come from the session's launch_prev_; nothing is written back).
  std::vector<NodeId> f_line;
  std::vector<char> f_trans;
  std::vector<V3> f_init;
  std::vector<std::vector<V3>> good_launch;
  if (any_transition_) {
    f_line.resize(fault_indices.size());
    f_trans.resize(fault_indices.size());
    f_init.resize(fault_indices.size());
    for (std::size_t i = 0; i < fault_indices.size(); ++i) {
      const Fault& f = faults_[fault_indices[i]];
      f_trans[i] = f.is_transition() ? 1 : 0;
      f_init[i] = f.stuck_at ? V3::k1 : V3::k0;
      f_line[i] = launch_line(c_, f);
    }
    good_launch.assign(seq.size(), std::vector<V3>(fault_indices.size()));
  }

  // Good machine: a copy of the session machine, run once.
  sim::SequenceSimulator good = good_;
  good.reset_gate_evals();
  const auto pos = c_.primary_outputs();
  std::vector<std::vector<V3>> good_po(seq.size(), std::vector<V3>(pos.size()));
  for (std::size_t t = 0; t < seq.size(); ++t) {
    good.apply_vector(seq[t]);
    for (std::size_t p = 0; p < pos.size(); ++p) {
      good_po[t][p] = good.scalar_value(pos[p]);
    }
    if (any_transition_) {
      for (std::size_t i = 0; i < fault_indices.size(); ++i) {
        good_launch[t][i] = good.scalar_value(f_line[i]);
      }
    }
    good.clock();
  }
  const State3 good_final = good.state();
  stats_.frames += seq.size();
  stats_.good_gate_evals += good.gate_evals();

  const std::size_t nff = c_.flip_flops().size();
  const auto pis = c_.primary_inputs();
  std::vector<std::vector<std::uint64_t>> seq1(seq.size());
  std::vector<std::vector<std::uint64_t>> seq0(seq.size());
  for (std::size_t t = 0; t < seq.size(); ++t) {
    seq1[t].resize(pis.size() * nw);
    seq0[t].resize(pis.size() * nw);
    for (std::size_t p = 0; p < pis.size(); ++p) {
      broadcast_rows(seq1[t].data() + p * nw, seq0[t].data() + p * nw, nw,
                     seq[t][p]);
    }
  }

  const std::size_t group_slots = std::size_t{64} * nw;
  const std::size_t n_groups =
      (fault_indices.size() + group_slots - 1) / group_slots;
  std::vector<WhatIf> per_group(n_groups);
  const unsigned lanes =
      util::max_lanes(config_.parallel, fault_indices.size(), group_slots);
  ensure_lanes(lanes);

  util::parallel_for_chunks(
      config_.parallel, fault_indices.size(), group_slots,
      [&](std::size_t g, std::size_t begin, std::size_t end, unsigned lane) {
        Lane& scratch = lanes_[lane];
        if (!scratch.wide || scratch.wide->words() != nw) {
          scratch.wide = std::make_unique<sim::WideSimulator>(c_, nw);
        }
        sim::WideSimulator& machine = *scratch.wide;
        const std::size_t count = end - begin;

        machine.clear_overrides();
        machine.reset();
        for (std::size_t s = 0; s < count; ++s) {
          const Fault& f = faults_[fault_indices[begin + s]];
          WideMask mask;
          mask.set(static_cast<unsigned>(s));
          if (f.pin == kOutputPin) {
            machine.add_output_override(f.node, f.stuck_at, mask);
          } else {
            machine.add_input_override(f.node, static_cast<unsigned>(f.pin),
                                       f.stuck_at, mask);
          }
        }
        // Transition slots held inactive during the state load; the frame
        // loop installs the real per-frame activity (cf. run_full_sweep).
        WideMask trans_mask;
        WideMask full_act;
        std::vector<V3> lprev;
        bool group_trans = false;
        if (any_transition_) {
          for (std::size_t s = 0; s < count; ++s) {
            if (f_trans[begin + s]) {
              trans_mask.set(static_cast<unsigned>(s));
              group_trans = true;
            }
          }
          if (group_trans) {
            lprev.resize(count);
            for (std::size_t s = 0; s < count; ++s) {
              lprev[s] = launch_prev_[fault_indices[begin + s]];
            }
            full_act = WideMask::ones(nw, static_cast<std::size_t>(nw) * 64);
            WideMask load_act = full_act;
            load_act.remove(trans_mask);
            machine.set_override_activity(load_act);
            machine.set_latch_override_activity(load_act);
          }
        }
        std::uint64_t r1[sim::kMaxWideWords];
        std::uint64_t r0[sim::kMaxWideWords];
        for (std::size_t ff = 0; ff < nff; ++ff) {
          broadcast_rows(r1, r0, nw, V3::kX);
          for (std::size_t s = 0; s < count; ++s) {
            set_row_slot(r1, r0, static_cast<unsigned>(s),
                         faulty_state_[fault_indices[begin + s]][ff]);
          }
          machine.set_ff_rows(ff, r1, r0);
        }

        scratch.stats.group_vectors += seq.size();
        const WideMask live_all = WideMask::ones(nw, count);
        WideMask detected_mask;
        for (std::size_t t = 0; t < seq.size(); ++t) {
          if (group_trans) {
            WideMask act = full_act;
            WideMask act_next = full_act;
            for (std::size_t s = 0; s < count; ++s) {
              if (!f_trans[begin + s]) continue;
              if (lprev[s] != f_init[begin + s]) {
                act.clear(static_cast<unsigned>(s));
              }
              const V3 nl = good_launch[t][begin + s];
              if (nl != f_init[begin + s]) {
                act_next.clear(static_cast<unsigned>(s));
              }
              lprev[s] = nl;
            }
            machine.set_override_activity(act);
            machine.set_latch_override_activity(act_next);
          }
          machine.apply_wide(seq1[t], seq0[t]);
          for (std::size_t p = 0; p < pos.size(); ++p) {
            const V3 good_value = good_po[t][p];
            if (good_value == V3::kX) continue;
            const std::uint64_t* row = good_value == V3::k1
                                           ? machine.row0(pos[p])
                                           : machine.row1(pos[p]);
            for (unsigned w = 0; w < nw; ++w) detected_mask.w[w] |= row[w];
          }
          machine.clock();
        }
        detected_mask &= live_all;
        per_group[g].detected = detected_mask.popcount();

        // Fault effects parked in the state at sequence end (undetected
        // slots whose faulty flip-flop value is defined and differs from
        // the good machine's).
        WideMask effect_mask;
        for (std::size_t ff = 0; ff < nff; ++ff) {
          const V3 g_v = good_final[ff];
          if (g_v == V3::kX) continue;
          const std::uint64_t* row = g_v == V3::k1
                                         ? machine.row0(c_.flip_flops()[ff])
                                         : machine.row1(c_.flip_flops()[ff]);
          for (unsigned w = 0; w < nw; ++w) effect_mask.w[w] |= row[w];
        }
        effect_mask &= live_all;
        effect_mask.remove(detected_mask);
        per_group[g].state_effects = effect_mask.popcount();
      });

  drain_lane_stats(lanes);

  for (const WhatIf& g : per_group) {
    result.detected += g.detected;
    result.state_effects += g.state_effects;
  }
  return result;
}

bool FaultSimulator::detects(const netlist::Circuit& c, const Fault& f,
                             const Sequence& seq) {
  FaultSimulator fs(c, {f});
  return !fs.run(seq).empty();
}

}  // namespace gatpg::fault
