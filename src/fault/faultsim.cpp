#include "fault/faultsim.h"

namespace gatpg::fault {

using netlist::NodeId;
using sim::PackedV3;
using sim::Sequence;
using sim::State3;
using sim::V3;

FaultSimulator::FaultSimulator(const netlist::Circuit& c,
                               std::vector<Fault> faults,
                               util::ParallelConfig parallel)
    : c_(c),
      faults_(std::move(faults)),
      parallel_(parallel),
      detected_(faults_.size(), 0),
      good_(c),
      faulty_state_(faults_.size(),
                    State3(c.flip_flops().size(), V3::kX)) {}

void FaultSimulator::reset_machines() {
  good_.reset();
  for (auto& s : faulty_state_) {
    s.assign(c_.flip_flops().size(), V3::kX);
  }
}

void FaultSimulator::reset_all() {
  reset_machines();
  std::fill(detected_.begin(), detected_.end(), 0);
  num_detected_ = 0;
}

std::vector<std::vector<PackedV3>> FaultSimulator::pack_sequence(
    const Sequence& seq) const {
  const auto pis = c_.primary_inputs();
  std::vector<std::vector<PackedV3>> packed(
      seq.size(), std::vector<PackedV3>(pis.size()));
  for (std::size_t t = 0; t < seq.size(); ++t) {
    for (std::size_t p = 0; p < pis.size(); ++p) {
      packed[t][p] = PackedV3::broadcast(seq[t][p]);
    }
  }
  return packed;
}

std::vector<std::size_t> FaultSimulator::run(const Sequence& seq) {
  std::vector<std::size_t> newly;
  if (seq.empty()) return newly;

  // Pass 1: good machine, recording per-vector PO values (slot 0).
  const auto pos = c_.primary_outputs();
  std::vector<std::vector<V3>> good_po(seq.size(), std::vector<V3>(pos.size()));
  for (std::size_t t = 0; t < seq.size(); ++t) {
    good_.apply_vector(seq[t]);
    for (std::size_t p = 0; p < pos.size(); ++p) {
      good_po[t][p] = good_.scalar_value(pos[p]);
    }
    good_.clock();
  }

  // Pass 2: undetected faults in groups of 64, groups fanned out across
  // lanes.  Each group only touches its own faults' faulty_state_ entries
  // and its own lane's machine; detections are collected per group and
  // merged in group order below, so the result is schedule-independent.
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (!detected_[i]) pending.push_back(i);
  }

  const std::size_t nff = c_.flip_flops().size();
  const auto packed_seq = pack_sequence(seq);

  const std::size_t n_groups = (pending.size() + 63) / 64;
  std::vector<std::vector<std::size_t>> group_newly(n_groups);
  const unsigned lanes = util::max_lanes(parallel_, pending.size(), 64);
  if (group_machines_.size() < lanes) group_machines_.resize(lanes);

  util::parallel_for_chunks(
      parallel_, pending.size(), 64,
      [&](std::size_t g, std::size_t begin, std::size_t end, unsigned lane) {
        if (!group_machines_[lane]) {
          group_machines_[lane] =
              std::make_unique<sim::SequenceSimulator>(c_);
        }
        sim::SequenceSimulator& machine = *group_machines_[lane];
        const std::size_t count = end - begin;

        machine.clear_overrides();
        machine.reset();
        for (std::size_t s = 0; s < count; ++s) {
          const Fault& f = faults_[pending[begin + s]];
          const std::uint64_t mask = 1ULL << s;
          if (f.pin == kOutputPin) {
            machine.add_output_override(f.node, f.stuck_at, mask);
          } else {
            machine.add_input_override(
                f.node, static_cast<unsigned>(f.pin), f.stuck_at, mask);
          }
        }
        // Load persisted per-fault flip-flop states.
        for (std::size_t ff = 0; ff < nff; ++ff) {
          PackedV3 w = PackedV3::all_x();
          for (std::size_t s = 0; s < count; ++s) {
            w.set(static_cast<unsigned>(s),
                  faulty_state_[pending[begin + s]][ff]);
          }
          machine.set_ff_packed(ff, w);
        }

        std::uint64_t live = count == 64 ? ~0ULL : ((1ULL << count) - 1);
        for (std::size_t t = 0; t < seq.size(); ++t) {
          machine.apply_packed(packed_seq[t]);
          std::uint64_t hit = 0;
          for (std::size_t p = 0; p < pos.size(); ++p) {
            const V3 good_value = good_po[t][p];
            if (good_value == V3::kX) continue;
            const PackedV3 w = machine.value(pos[p]);
            hit |= (good_value == V3::k1) ? w.v0 : w.v1;
          }
          hit &= live;
          while (hit) {
            const unsigned s = static_cast<unsigned>(__builtin_ctzll(hit));
            hit &= hit - 1;
            live &= ~(1ULL << s);
            group_newly[g].push_back(pending[begin + s]);
          }
          machine.clock();
        }

        // Persist faulty flip-flop states for still-undetected faults
        // (slots still live).
        for (std::size_t s = 0; s < count; ++s) {
          if (!(live & (1ULL << s))) continue;
          const std::size_t fi = pending[begin + s];
          for (std::size_t ff = 0; ff < nff; ++ff) {
            faulty_state_[fi][ff] =
                machine.value(c_.flip_flops()[ff]).get(
                    static_cast<unsigned>(s));
          }
        }
      });

  // Deterministic merge: detections land in (group, time, slot) order —
  // exactly the order the serial sweep produced them in.
  for (std::size_t g = 0; g < n_groups; ++g) {
    for (std::size_t fi : group_newly[g]) {
      detected_[fi] = 1;
      ++num_detected_;
      newly.push_back(fi);
    }
  }
  return newly;
}

bool FaultSimulator::would_detect(std::size_t fault_index,
                                  const Sequence& seq) const {
  const Fault& f = faults_[fault_index];
  sim::SequenceSimulator good = good_;  // copy: session state untouched
  sim::SequenceSimulator faulty(c_);
  if (f.pin == kOutputPin) {
    faulty.add_output_override(f.node, f.stuck_at, ~0ULL);
  } else {
    faulty.add_input_override(f.node, static_cast<unsigned>(f.pin),
                              f.stuck_at, ~0ULL);
  }
  faulty.set_state(faulty_state_[fault_index]);

  const auto pos = c_.primary_outputs();
  for (const auto& v : seq) {
    good.apply_vector(v);
    faulty.apply_vector(v);
    for (NodeId po : pos) {
      const V3 g = good.scalar_value(po);
      const V3 b = faulty.scalar_value(po);
      if (g != V3::kX && b != V3::kX && g != b) return true;
    }
    good.clock();
    faulty.clock();
  }
  return false;
}

FaultSimulator::WhatIf FaultSimulator::what_if(
    std::span<const std::size_t> fault_indices, const Sequence& seq) const {
  WhatIf result;
  if (seq.empty() || fault_indices.empty()) return result;

  // Good machine: a copy of the session machine, run once.
  sim::SequenceSimulator good = good_;
  const auto pos = c_.primary_outputs();
  std::vector<std::vector<V3>> good_po(seq.size(), std::vector<V3>(pos.size()));
  for (std::size_t t = 0; t < seq.size(); ++t) {
    good.apply_vector(seq[t]);
    for (std::size_t p = 0; p < pos.size(); ++p) {
      good_po[t][p] = good.scalar_value(pos[p]);
    }
    good.clock();
  }
  const sim::State3 good_final = good.state();

  const std::size_t nff = c_.flip_flops().size();
  const auto packed_seq = pack_sequence(seq);

  // Group counts are sums of per-group popcounts — order-independent, but
  // accumulated per group and reduced serially anyway so the arithmetic is
  // schedule-independent too.
  const std::size_t n_groups = (fault_indices.size() + 63) / 64;
  std::vector<WhatIf> per_group(n_groups);

  util::parallel_for_chunks(
      parallel_, fault_indices.size(), 64,
      [&](std::size_t g, std::size_t begin, std::size_t end, unsigned) {
        const std::size_t count = end - begin;
        sim::SequenceSimulator machine(c_);
        for (std::size_t s = 0; s < count; ++s) {
          const Fault& f = faults_[fault_indices[begin + s]];
          const std::uint64_t mask = 1ULL << s;
          if (f.pin == kOutputPin) {
            machine.add_output_override(f.node, f.stuck_at, mask);
          } else {
            machine.add_input_override(f.node, static_cast<unsigned>(f.pin),
                                       f.stuck_at, mask);
          }
        }
        for (std::size_t ff = 0; ff < nff; ++ff) {
          PackedV3 w = PackedV3::all_x();
          for (std::size_t s = 0; s < count; ++s) {
            w.set(static_cast<unsigned>(s),
                  faulty_state_[fault_indices[begin + s]][ff]);
          }
          machine.set_ff_packed(ff, w);
        }

        const std::uint64_t live_all =
            count == 64 ? ~0ULL : ((1ULL << count) - 1);
        std::uint64_t detected_mask = 0;
        for (std::size_t t = 0; t < seq.size(); ++t) {
          machine.apply_packed(packed_seq[t]);
          for (std::size_t p = 0; p < pos.size(); ++p) {
            const V3 good_value = good_po[t][p];
            if (good_value == V3::kX) continue;
            const PackedV3 w = machine.value(pos[p]);
            detected_mask |= (good_value == V3::k1) ? w.v0 : w.v1;
          }
          machine.clock();
        }
        detected_mask &= live_all;
        per_group[g].detected =
            static_cast<unsigned>(__builtin_popcountll(detected_mask));

        // Fault effects parked in the state at sequence end (undetected
        // slots whose faulty flip-flop value is defined and differs from
        // the good machine's).
        std::uint64_t effect_mask = 0;
        for (std::size_t ff = 0; ff < nff; ++ff) {
          const V3 g_v = good_final[ff];
          if (g_v == V3::kX) continue;
          const PackedV3 w = machine.value(c_.flip_flops()[ff]);
          effect_mask |= (g_v == V3::k1) ? w.v0 : w.v1;
        }
        effect_mask &= live_all & ~detected_mask;
        per_group[g].state_effects =
            static_cast<unsigned>(__builtin_popcountll(effect_mask));
      });

  for (const WhatIf& g : per_group) {
    result.detected += g.detected;
    result.state_effects += g.state_effects;
  }
  return result;
}

bool FaultSimulator::detects(const netlist::Circuit& c, const Fault& f,
                             const Sequence& seq) {
  FaultSimulator fs(c, {f});
  return !fs.run(seq).empty();
}

}  // namespace gatpg::fault
