#include "fault/grading.h"

namespace gatpg::fault {

CoverageReport grade_sequence(const netlist::Circuit& c,
                              const sim::Sequence& seq) {
  return grade_sequence(c, collapse(c).faults, seq);
}

CoverageReport grade_sequence(const netlist::Circuit& c,
                              const std::vector<Fault>& faults,
                              const sim::Sequence& seq) {
  FaultSimulator fs(c, faults);
  fs.run(seq);
  CoverageReport report;
  report.total_faults = faults.size();
  report.detected = fs.detected_count();
  report.vectors = seq.size();
  return report;
}

}  // namespace gatpg::fault
