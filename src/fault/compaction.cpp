#include "fault/compaction.h"

#include "fault/faultsim.h"

namespace gatpg::fault {

namespace {

sim::Sequence concatenate(const std::vector<sim::Sequence>& segments,
                          const std::vector<char>& keep) {
  sim::Sequence all;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (keep[i]) {
      all.insert(all.end(), segments[i].begin(), segments[i].end());
    }
  }
  return all;
}

std::size_t coverage_of(const netlist::Circuit& c,
                        const std::vector<Fault>& faults,
                        const sim::Sequence& seq) {
  FaultSimulator fs(c, faults);
  fs.run(seq);
  return fs.detected_count();
}

}  // namespace

CompactionResult compact_segments(const netlist::Circuit& c,
                                  const std::vector<Fault>& faults,
                                  const std::vector<sim::Sequence>& segments) {
  CompactionResult result;
  std::vector<char> keep(segments.size(), 1);
  const sim::Sequence full = concatenate(segments, keep);
  result.vectors_before = full.size();
  const std::size_t target = coverage_of(c, faults, full);

  for (std::size_t i = segments.size(); i-- > 0;) {
    if (segments[i].empty()) continue;
    keep[i] = 0;
    if (coverage_of(c, faults, concatenate(segments, keep)) < target) {
      keep[i] = 1;  // segment is load-bearing
    } else {
      ++result.segments_removed;
    }
  }

  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (keep[i]) result.segments.push_back(segments[i]);
  }
  result.test_set = concatenate(segments, keep);
  result.vectors_after = result.test_set.size();
  result.detected = target;
  return result;
}

}  // namespace gatpg::fault
