// Fault-list generation and structural equivalence collapsing, per model.
//
// A FaultUniverse selects which faults populate the list:
//
// * kStuckAt — both stuck-at faults on every node's output stem and on
//   every gate fanin branch.  Structural equivalence collapsing merges:
//     - an input s-a-c with the output s-a-(c xor inv) for AND/NAND (c = 0)
//       and OR/NOR (c = 1) gates,
//     - both input faults of NOT/BUF with the corresponding output faults,
//     - a branch fault with its stem fault when the driver has a single
//       fanout (no fanout stem/branch distinction exists).
// * kTransition — slow-to-rise and slow-to-fall faults on the same sites.
//   Collapsing is deliberately weaker: the two-frame launch condition is
//   anchored to the faulted line's own previous value, so only merges that
//   preserve *both* the forced behavior and the launch condition are sound —
//   a branch with its single-fanout stem, and a BUF input with its
//   same-polarity output.  Controlling-value merges through AND/OR and
//   polarity-flipping merges through NOT are not applied.
//
// One representative per equivalence class is targeted by the test
// generators; the collapsed count is what the paper's "Total Faults" column
// reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.h"

namespace gatpg::fault {

/// Which fault universe a session targets (SessionConfig::fault_model).
enum class FaultUniverse : std::uint8_t {
  kStuckAt = 0,
  kTransition = 1,
};

/// Canonical config-string names ("stuck_at" / "transition").
const char* universe_name(FaultUniverse u);
/// Parses a universe name; returns false (leaving `out` untouched) on an
/// unknown name.
bool parse_universe(const std::string& name, FaultUniverse* out);

struct FaultList {
  /// Representative fault of every equivalence class.
  std::vector<Fault> faults;
  /// Size of each class (aligned with `faults`), for reporting.
  std::vector<unsigned> class_sizes;

  std::size_t size() const { return faults.size(); }
};

/// Full uncollapsed pin-fault universe.
std::vector<Fault> all_pin_faults(const netlist::Circuit& c,
                                  FaultUniverse universe =
                                      FaultUniverse::kStuckAt);

/// Collapsed fault list.
FaultList collapse(const netlist::Circuit& c,
                   FaultUniverse universe = FaultUniverse::kStuckAt);

/// FNV-1a-64 over the fault sites and class sizes.  Snapshot resume uses
/// this to prove the regenerated fault list matches the checkpointed one
/// (fault statuses are stored positionally, so any reordering or count
/// change would silently misattribute them otherwise).  Stuck-at lists
/// digest exactly as before the fault-model axis existed; transition faults
/// fold the model into the per-fault byte, so lists of different models
/// never collide.
std::uint64_t identity_digest(const FaultList& list);

}  // namespace gatpg::fault
