// Fault-list generation and structural equivalence collapsing.
//
// The uncollapsed universe contains both stuck-at faults on every node's
// output stem and on every gate fanin branch.  Structural equivalence
// collapsing then merges:
//   * an input s-a-c with the output s-a-(c xor inv) for AND/NAND (c = 0)
//     and OR/NOR (c = 1) gates,
//   * both input faults of NOT/BUF/DFF with the corresponding output faults,
//   * a branch fault with its stem fault when the driver has a single
//     fanout (no fanout stem/branch distinction exists).
// One representative per equivalence class is targeted by the test
// generators; the collapsed count is what the paper's "Total Faults" column
// reports.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.h"

namespace gatpg::fault {

struct FaultList {
  /// Representative fault of every equivalence class.
  std::vector<Fault> faults;
  /// Size of each class (aligned with `faults`), for reporting.
  std::vector<unsigned> class_sizes;

  std::size_t size() const { return faults.size(); }
};

/// Full uncollapsed pin-fault universe.
std::vector<Fault> all_pin_faults(const netlist::Circuit& c);

/// Collapsed fault list.
FaultList collapse(const netlist::Circuit& c);

/// FNV-1a-64 over the fault sites and class sizes.  Snapshot resume uses
/// this to prove the regenerated fault list matches the checkpointed one
/// (fault statuses are stored positionally, so any reordering or count
/// change would silently misattribute them otherwise).
std::uint64_t identity_digest(const FaultList& list);

}  // namespace gatpg::fault
