// Independent test-set grading.
//
// Given a circuit and a test sequence (the concatenation of every generated
// subsequence, applied from power-up), grading reports how many collapsed
// faults the sequence detects.  The test generators use their own embedded
// fault simulation for fault dropping; grading re-derives coverage from
// scratch with a fresh simulator and is the ground truth for the result
// tables and the ATPG soundness property tests.
#pragma once

#include <vector>

#include "fault/faultlist.h"
#include "fault/faultsim.h"

namespace gatpg::fault {

struct CoverageReport {
  std::size_t total_faults = 0;
  std::size_t detected = 0;
  std::size_t vectors = 0;

  double coverage() const {
    return total_faults == 0
               ? 0.0
               : static_cast<double>(detected) / static_cast<double>(total_faults);
  }
};

/// Grades `seq` against the circuit's collapsed fault list.
CoverageReport grade_sequence(const netlist::Circuit& c,
                              const sim::Sequence& seq);

/// Grades `seq` against an explicit fault list.
CoverageReport grade_sequence(const netlist::Circuit& c,
                              const std::vector<Fault>& faults,
                              const sim::Sequence& seq);

}  // namespace gatpg::fault
