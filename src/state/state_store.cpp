#include "state/state_store.h"

#include <algorithm>
#include <unordered_map>

#include "serialize/archive.h"

namespace gatpg::state {

using sim::Sequence;
using sim::State3;

namespace {

template <typename Op>
void for_each_stat(StateStoreStats& a, const StateStoreStats& b, Op op) {
  op(a.seq_hits, b.seq_hits);
  op(a.seq_misses, b.seq_misses);
  op(a.seq_inserts, b.seq_inserts);
  op(a.seq_verify_failures, b.seq_verify_failures);
  op(a.unjust_hits, b.unjust_hits);
  op(a.unjust_misses, b.unjust_misses);
  op(a.unjust_inserts, b.unjust_inserts);
  op(a.unjust_subsumed, b.unjust_subsumed);
  op(a.reachable_inserts, b.reachable_inserts);
  op(a.near_miss_inserts, b.near_miss_inserts);
  op(a.ga_seeds_served, b.ga_seeds_served);
  op(a.forward_cache_hits, b.forward_cache_hits);
  op(a.forward_cache_inserts, b.forward_cache_inserts);
}

}  // namespace

StateStoreStats& StateStoreStats::operator+=(const StateStoreStats& o) {
  for_each_stat(*this, o, [](long& a, long b) { a += b; });
  return *this;
}

StateStoreStats& StateStoreStats::operator-=(const StateStoreStats& o) {
  for_each_stat(*this, o, [](long& a, long b) { a -= b; });
  return *this;
}

StateStore::StateStore(const netlist::Circuit& c, StateStoreConfig config)
    : c_(c), config_(config) {}

std::unique_ptr<StateStore> StateStore::clone() const {
  auto copy = std::make_unique<StateStore>(c_, config_);
  copy->stats_ = stats_;
  copy->next_stamp_ = next_stamp_;
  copy->revision_ = revision_;
  copy->justified_ = justified_;
  copy->unjustifiable_ = unjustifiable_;
  // TraceEntry sequences are shared_ptr<const Sequence>: immutable, so
  // sharing them across the clone is safe and keeps the copy cheap.
  copy->reachable_ = reachable_;
  copy->near_misses_ = near_misses_;
  copy->forward_ = forward_;
  copy->forward_valid_ = forward_valid_;
  return copy;
}

void StateStore::adopt_content(const StateStore& other) {
  justified_ = other.justified_;
  unjustifiable_ = other.unjustifiable_;
  reachable_ = other.reachable_;
  near_misses_ = other.near_misses_;
  forward_ = other.forward_;
  forward_valid_ = other.forward_valid_;
  next_stamp_ = other.next_stamp_;
  ++revision_;
}

// ---------------------------------------------------------------------------
// Justified-sequence cache

void StateStore::record_justified(const State3& cube, Sequence sequence) {
  if (!config_.enabled || sim::cube_is_trivial(cube)) return;
  for (const JustifiedEntry& e : justified_) {
    if (e.cube == cube) return;  // first recorded witness wins
  }
  justified_.push_back({cube, std::move(sequence)});
  ++stats_.seq_inserts;
  ++revision_;
  if (justified_.size() > config_.max_justified) {
    justified_.erase(justified_.begin());
  }
}

bool StateStore::verify(const fault::Fault& fault, const Sequence& sequence,
                        const State3& desired_good, const State3& desired_faulty,
                        const State3& current_good, Sequence& prefix) {
  if (!good_sim_) {
    good_sim_ = std::make_unique<sim::SequenceSimulator>(c_);
    faulty_sim_ = std::make_unique<sim::SequenceSimulator>(c_);
  }
  sim::SequenceSimulator& good = *good_sim_;
  sim::SequenceSimulator& faulty = *faulty_sim_;
  good.reset();
  good.set_state(current_good);
  faulty.reset();
  faulty.clear_overrides();
  // Transition faults force conditionally: gate the override per frame by
  // the launch activity read off the lockstep good machine (same sequencing
  // as the GA justifier's evaluators).  The power-up frame cannot launch.
  const bool trans = fault.is_transition();
  const netlist::NodeId launch_line =
      fault.pin == fault::kOutputPin
          ? fault.node
          : c_.fanins(fault.node)[static_cast<std::size_t>(fault.pin)];
  if (trans) {
    faulty.set_override_activity(0);
    faulty.set_latch_override_activity(0);
  }
  if (fault.pin == fault::kOutputPin) {
    faulty.add_output_override(fault.node, fault.stuck_at, ~0ULL);
  } else {
    faulty.add_input_override(fault.node, static_cast<unsigned>(fault.pin),
                              fault.stuck_at, ~0ULL);
  }
  for (std::size_t t = 0; t < sequence.size(); ++t) {
    good.apply_vector(sequence[t]);
    faulty.apply_vector(sequence[t]);
    if (trans) {
      const sim::PackedV3 lv = good.value(launch_line);
      const std::uint64_t next_act = fault.stuck_at ? lv.v1 : lv.v0;
      faulty.set_latch_override_activity(next_act);
      good.clock();
      faulty.clock();
      faulty.set_override_activity(next_act);
    } else {
      good.clock();
      faulty.clock();
    }
    if ((good.state_match_mask(desired_good) &
         faulty.state_match_mask(desired_faulty) & 1ULL) != 0) {
      prefix.assign(sequence.begin(),
                    sequence.begin() + static_cast<std::ptrdiff_t>(t + 1));
      return true;
    }
  }
  return false;
}

std::optional<Sequence> StateStore::lookup_justified(
    const fault::Fault& fault, const State3& desired_good,
    const State3& desired_faulty, const State3& current_good) {
  if (!config_.enabled) return std::nullopt;
  unsigned verified = 0;
  for (const JustifiedEntry& e : justified_) {
    // Covering entry: any state satisfying the stored cube satisfies both
    // desired cubes (the query subsumes the entry).
    if (!sim::cube_subsumes(desired_good, e.cube) ||
        !sim::cube_subsumes(desired_faulty, e.cube)) {
      continue;
    }
    if (verified >= config_.max_verifies_per_lookup) break;
    ++verified;
    Sequence prefix;
    if (verify(fault, e.sequence, desired_good, desired_faulty, current_good,
               prefix)) {
      ++stats_.seq_hits;
      return prefix;
    }
    ++stats_.seq_verify_failures;
  }
  ++stats_.seq_misses;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Unjustifiable-cube store

void StateStore::record_unjustifiable(const State3& cube) {
  if (!config_.enabled || sim::cube_is_trivial(cube)) return;
  for (const State3& u : unjustifiable_) {
    if (sim::cube_subsumes(u, cube)) {
      ++stats_.unjust_subsumed;  // an existing weaker proof already covers it
      return;
    }
  }
  // Drop stored cubes the new, more general proof covers.
  const auto dropped = std::remove_if(
      unjustifiable_.begin(), unjustifiable_.end(), [&](const State3& u) {
        if (!sim::cube_subsumes(cube, u)) return false;
        ++stats_.unjust_subsumed;
        return true;
      });
  unjustifiable_.erase(dropped, unjustifiable_.end());
  unjustifiable_.push_back(cube);
  ++stats_.unjust_inserts;
  ++revision_;
  if (unjustifiable_.size() > config_.max_unjustifiable) {
    unjustifiable_.erase(unjustifiable_.begin());
  }
}

bool StateStore::known_unjustifiable(const State3& desired) {
  if (!config_.enabled) return false;
  for (const State3& u : unjustifiable_) {
    if (sim::cube_subsumes(u, desired)) {
      ++stats_.unjust_hits;
      return true;
    }
  }
  ++stats_.unjust_misses;
  return false;
}

// ---------------------------------------------------------------------------
// Reachable-state log + GA seeding

void StateStore::record_reachable_trace(const Sequence& segment,
                                        const std::vector<State3>& states) {
  if (!config_.enabled || states.empty() || segment.size() < states.size()) {
    return;
  }
  const auto shared = std::make_shared<const Sequence>(segment);
  for (std::size_t t = 0; t < states.size(); ++t) {
    const State3& st = states[t];
    if (sim::cube_is_trivial(st)) continue;  // all-X teaches nothing
    const bool seen =
        std::any_of(reachable_.begin(), reachable_.end(),
                    [&](const TraceEntry& e) { return e.state == st; });
    if (seen) continue;
    reachable_.push_back({st, shared, t + 1, next_stamp_++});
    ++stats_.reachable_inserts;
    ++revision_;
    if (reachable_.size() > config_.max_reachable) {
      reachable_.erase(reachable_.begin());
    }
  }
}

void StateStore::record_near_miss(const State3& desired, const Sequence& best) {
  if (!config_.enabled || best.empty() || sim::cube_is_trivial(desired)) return;
  const auto shared = std::make_shared<const Sequence>(best);
  for (TraceEntry& e : near_misses_) {
    if (e.state == desired) {
      // Same target cube: the newer best individual replaces the older one.
      e.sequence = shared;
      e.prefix_len = best.size();
      e.stamp = next_stamp_++;
      ++stats_.near_miss_inserts;
      ++revision_;
      return;
    }
  }
  near_misses_.push_back({desired, shared, best.size(), next_stamp_++});
  ++stats_.near_miss_inserts;
  ++revision_;
  if (near_misses_.size() > config_.max_near_misses) {
    near_misses_.erase(near_misses_.begin());
  }
}

std::vector<Sequence> StateStore::seed_sequences(const State3& desired,
                                                 std::size_t max_seeds) {
  std::vector<Sequence> out;
  if (!config_.enabled || max_seeds == 0) return out;
  struct Ranked {
    unsigned agreement = 0;
    std::uint64_t stamp = 0;
    const TraceEntry* entry = nullptr;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(near_misses_.size() + reachable_.size());
  for (const auto* pool : {&near_misses_, &reachable_}) {
    for (const TraceEntry& e : *pool) {
      const unsigned a = sim::cube_agreement(desired, e.state);
      if (a == 0) continue;
      ranked.push_back({a, e.stamp, &e});
    }
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.agreement != b.agreement) return a.agreement > b.agreement;
    return a.stamp > b.stamp;  // unique stamps: total, deterministic order
  });
  const std::size_t n = std::min(max_seeds, ranked.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEntry& e = *ranked[i].entry;
    out.emplace_back(e.sequence->begin(),
                     e.sequence->begin() +
                         static_cast<std::ptrdiff_t>(e.prefix_len));
  }
  stats_.ga_seeds_served += static_cast<long>(out.size());
  return out;
}

// ---------------------------------------------------------------------------
// Per-fault forward-solution cache

const StateStore::ForwardSolution* StateStore::cached_forward(
    std::size_t fault_index) const {
  if (fault_index < forward_valid_.size() && forward_valid_[fault_index]) {
    return &forward_[fault_index];
  }
  return nullptr;
}

const StateStore::ForwardSolution* StateStore::take_cached_forward(
    std::size_t fault_index) {
  const ForwardSolution* cached = cached_forward(fault_index);
  if (cached) ++stats_.forward_cache_hits;
  return cached;
}

void StateStore::cache_forward(std::size_t fault_index, Sequence vectors,
                               State3 required) {
  if (!config_.enabled) return;
  if (forward_.size() <= fault_index) {
    forward_.resize(fault_index + 1);
    forward_valid_.resize(fault_index + 1, 0);
  }
  forward_[fault_index] = {std::move(vectors), std::move(required)};
  forward_valid_[fault_index] = 1;
  ++stats_.forward_cache_inserts;
  ++revision_;
}

// ---------------------------------------------------------------------------
// Snapshot support

namespace {

void digest_state(serialize::Digest& d, const State3& s) {
  d.add_u64(s.size());
  for (const sim::V3 v : s) d.add_byte(static_cast<std::uint8_t>(v));
}

void digest_sequence(serialize::Digest& d, const Sequence& seq) {
  d.add_u64(seq.size());
  for (const sim::Vector3& vec : seq) digest_state(d, vec);
}

void write_state(serialize::Writer& w, const State3& s) {
  w.u64(s.size());
  for (const sim::V3 v : s) w.u8(static_cast<std::uint8_t>(v));
}

State3 read_state(serialize::Reader& r) {
  State3 s(r.count(1));  // one byte per ternary value
  for (sim::V3& v : s) {
    const std::uint8_t byte = r.u8();
    if (byte > static_cast<std::uint8_t>(sim::V3::kX))
      throw serialize::SnapshotError("snapshot: invalid ternary value in store");
    v = static_cast<sim::V3>(byte);
  }
  return s;
}

void write_sequence(serialize::Writer& w, const Sequence& seq) {
  w.u64(seq.size());
  for (const sim::Vector3& vec : seq) write_state(w, vec);
}

Sequence read_sequence(serialize::Reader& r) {
  Sequence seq(r.count(8));  // each vector carries at least its u64 length
  for (sim::Vector3& vec : seq) vec = read_state(r);
  return seq;
}

void write_stats(serialize::Writer& w, const StateStoreStats& st) {
  const long* fields[] = {
      &st.seq_hits,          &st.seq_misses,        &st.seq_inserts,
      &st.seq_verify_failures, &st.unjust_hits,     &st.unjust_misses,
      &st.unjust_inserts,    &st.unjust_subsumed,   &st.reachable_inserts,
      &st.near_miss_inserts, &st.ga_seeds_served,   &st.forward_cache_hits,
      &st.forward_cache_inserts};
  for (const long* f : fields) w.i64(*f);
}

void read_stats(serialize::Reader& r, StateStoreStats& st) {
  long* fields[] = {
      &st.seq_hits,          &st.seq_misses,        &st.seq_inserts,
      &st.seq_verify_failures, &st.unjust_hits,     &st.unjust_misses,
      &st.unjust_inserts,    &st.unjust_subsumed,   &st.reachable_inserts,
      &st.near_miss_inserts, &st.ga_seeds_served,   &st.forward_cache_hits,
      &st.forward_cache_inserts};
  for (long* f : fields) *f = static_cast<long>(r.i64());
}

void digest_stats(serialize::Digest& d, const StateStoreStats& st) {
  const long* fields[] = {
      &st.seq_hits,          &st.seq_misses,        &st.seq_inserts,
      &st.seq_verify_failures, &st.unjust_hits,     &st.unjust_misses,
      &st.unjust_inserts,    &st.unjust_subsumed,   &st.reachable_inserts,
      &st.near_miss_inserts, &st.ga_seeds_served,   &st.forward_cache_hits,
      &st.forward_cache_inserts};
  for (const long* f : fields) d.add_u64(static_cast<std::uint64_t>(*f));
}

}  // namespace

std::uint64_t StateStore::digest() const {
  serialize::Digest d;
  d.add_u64(justified_.size());
  for (const JustifiedEntry& e : justified_) {
    digest_state(d, e.cube);
    digest_sequence(d, e.sequence);
  }
  d.add_u64(unjustifiable_.size());
  for (const State3& u : unjustifiable_) digest_state(d, u);
  for (const auto* pool : {&reachable_, &near_misses_}) {
    d.add_u64(pool->size());
    for (const TraceEntry& e : *pool) {
      digest_state(d, e.state);
      digest_sequence(d, *e.sequence);
      d.add_u64(e.prefix_len);
      d.add_u64(e.stamp);
    }
  }
  d.add_u64(forward_valid_.size());
  for (std::size_t i = 0; i < forward_valid_.size(); ++i) {
    if (!forward_valid_[i]) continue;
    d.add_u64(i);
    digest_sequence(d, forward_[i].vectors);
    digest_state(d, forward_[i].required);
  }
  d.add_u64(next_stamp_);
  digest_stats(d, stats_);
  return d.value();
}

void StateStore::save(serialize::Writer& w) const {
  w.begin_section("STOR");
  w.boolean(config_.enabled);
  w.u64(config_.max_justified);
  w.u64(config_.max_unjustifiable);
  w.u64(config_.max_reachable);
  w.u64(config_.max_near_misses);
  w.u32(config_.max_verifies_per_lookup);
  w.f64(config_.ga_seed_fraction);

  w.u64(justified_.size());
  for (const JustifiedEntry& e : justified_) {
    write_state(w, e.cube);
    write_sequence(w, e.sequence);
  }
  w.u64(unjustifiable_.size());
  for (const State3& u : unjustifiable_) write_state(w, u);

  // Shared trace sequences, deduplicated by first appearance so sharing
  // survives the round trip.
  std::vector<const Sequence*> table;
  std::unordered_map<const Sequence*, std::uint64_t> index_of;
  for (const auto* pool : {&reachable_, &near_misses_}) {
    for (const TraceEntry& e : *pool) {
      const Sequence* p = e.sequence.get();
      if (index_of.emplace(p, table.size()).second) table.push_back(p);
    }
  }
  w.u64(table.size());
  for (const Sequence* p : table) write_sequence(w, *p);
  for (const auto* pool : {&reachable_, &near_misses_}) {
    w.u64(pool->size());
    for (const TraceEntry& e : *pool) {
      write_state(w, e.state);
      w.u64(index_of.at(e.sequence.get()));
      w.u64(e.prefix_len);
      w.u64(e.stamp);
    }
  }

  w.u64(forward_valid_.size());
  for (std::size_t i = 0; i < forward_valid_.size(); ++i) {
    w.u8(forward_valid_[i] ? 1 : 0);
    if (!forward_valid_[i]) continue;
    write_sequence(w, forward_[i].vectors);
    write_state(w, forward_[i].required);
  }

  w.u64(next_stamp_);
  write_stats(w, stats_);
  w.end_section();
}

void StateStore::load(serialize::Reader& r) {
  r.enter_section("STOR");
  const bool enabled = r.boolean();
  const std::uint64_t max_justified = r.u64();
  const std::uint64_t max_unjustifiable = r.u64();
  const std::uint64_t max_reachable = r.u64();
  const std::uint64_t max_near_misses = r.u64();
  const std::uint32_t max_verifies = r.u32();
  const double seed_fraction = r.f64();
  if (enabled != config_.enabled || max_justified != config_.max_justified ||
      max_unjustifiable != config_.max_unjustifiable ||
      max_reachable != config_.max_reachable ||
      max_near_misses != config_.max_near_misses ||
      max_verifies != config_.max_verifies_per_lookup ||
      seed_fraction != config_.ga_seed_fraction) {
    throw serialize::SnapshotError(
        "snapshot: StateStore config mismatch (eviction/seeding would "
        "diverge from the checkpointed run)");
  }

  justified_.clear();
  justified_.resize(r.count(16));  // cube + sequence lengths
  for (JustifiedEntry& e : justified_) {
    e.cube = read_state(r);
    e.sequence = read_sequence(r);
  }
  unjustifiable_.clear();
  unjustifiable_.resize(r.count(8));
  for (State3& u : unjustifiable_) u = read_state(r);

  std::vector<std::shared_ptr<const Sequence>> table(r.count(8));
  for (auto& p : table)
    p = std::make_shared<const Sequence>(read_sequence(r));
  for (auto* pool : {&reachable_, &near_misses_}) {
    pool->clear();
    pool->resize(r.count(32));  // state length + index + prefix_len + stamp
    for (TraceEntry& e : *pool) {
      e.state = read_state(r);
      const std::uint64_t idx = r.u64();
      if (idx >= table.size())
        throw serialize::SnapshotError("snapshot: trace sequence index out of range");
      e.sequence = table[idx];
      e.prefix_len = r.u64();
      e.stamp = r.u64();
    }
  }

  const std::uint64_t forward_count = r.count(1);  // one valid byte each
  forward_.clear();
  forward_valid_.clear();
  forward_.resize(forward_count);
  forward_valid_.resize(forward_count, 0);
  for (std::uint64_t i = 0; i < forward_count; ++i) {
    forward_valid_[i] = static_cast<char>(r.u8());
    if (!forward_valid_[i]) continue;
    forward_[i].vectors = read_sequence(r);
    forward_[i].required = read_state(r);
  }

  next_stamp_ = r.u64();
  read_stats(r, stats_);
  r.leave_section();
  ++revision_;
}

void StateStore::clear() {
  justified_.clear();
  unjustifiable_.clear();
  reachable_.clear();
  near_misses_.clear();
  forward_.clear();
  forward_valid_.clear();
  next_stamp_ = 0;
  stats_ = StateStoreStats{};
  ++revision_;
}

void StateStore::drop_unverified() {
  unjustifiable_.clear();
  forward_.clear();
  forward_valid_.clear();
  ++revision_;
}

}  // namespace gatpg::state
