#include "state/state_store.h"

#include <algorithm>

namespace gatpg::state {

using sim::Sequence;
using sim::State3;

StateStore::StateStore(const netlist::Circuit& c, StateStoreConfig config)
    : c_(c), config_(config) {}

// ---------------------------------------------------------------------------
// Justified-sequence cache

void StateStore::record_justified(const State3& cube, Sequence sequence) {
  if (!config_.enabled || sim::cube_is_trivial(cube)) return;
  for (const JustifiedEntry& e : justified_) {
    if (e.cube == cube) return;  // first recorded witness wins
  }
  justified_.push_back({cube, std::move(sequence)});
  ++stats_.seq_inserts;
  if (justified_.size() > config_.max_justified) {
    justified_.erase(justified_.begin());
  }
}

bool StateStore::verify(const fault::Fault& fault, const Sequence& sequence,
                        const State3& desired_good, const State3& desired_faulty,
                        const State3& current_good, Sequence& prefix) {
  if (!good_sim_) {
    good_sim_ = std::make_unique<sim::SequenceSimulator>(c_);
    faulty_sim_ = std::make_unique<sim::SequenceSimulator>(c_);
  }
  sim::SequenceSimulator& good = *good_sim_;
  sim::SequenceSimulator& faulty = *faulty_sim_;
  good.reset();
  good.set_state(current_good);
  faulty.reset();
  faulty.clear_overrides();
  if (fault.pin == fault::kOutputPin) {
    faulty.add_output_override(fault.node, fault.stuck_at, ~0ULL);
  } else {
    faulty.add_input_override(fault.node, static_cast<unsigned>(fault.pin),
                              fault.stuck_at, ~0ULL);
  }
  for (std::size_t t = 0; t < sequence.size(); ++t) {
    good.apply_vector(sequence[t]);
    faulty.apply_vector(sequence[t]);
    good.clock();
    faulty.clock();
    if ((good.state_match_mask(desired_good) &
         faulty.state_match_mask(desired_faulty) & 1ULL) != 0) {
      prefix.assign(sequence.begin(),
                    sequence.begin() + static_cast<std::ptrdiff_t>(t + 1));
      return true;
    }
  }
  return false;
}

std::optional<Sequence> StateStore::lookup_justified(
    const fault::Fault& fault, const State3& desired_good,
    const State3& desired_faulty, const State3& current_good) {
  if (!config_.enabled) return std::nullopt;
  unsigned verified = 0;
  for (const JustifiedEntry& e : justified_) {
    // Covering entry: any state satisfying the stored cube satisfies both
    // desired cubes (the query subsumes the entry).
    if (!sim::cube_subsumes(desired_good, e.cube) ||
        !sim::cube_subsumes(desired_faulty, e.cube)) {
      continue;
    }
    if (verified >= config_.max_verifies_per_lookup) break;
    ++verified;
    Sequence prefix;
    if (verify(fault, e.sequence, desired_good, desired_faulty, current_good,
               prefix)) {
      ++stats_.seq_hits;
      return prefix;
    }
    ++stats_.seq_verify_failures;
  }
  ++stats_.seq_misses;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Unjustifiable-cube store

void StateStore::record_unjustifiable(const State3& cube) {
  if (!config_.enabled || sim::cube_is_trivial(cube)) return;
  for (const State3& u : unjustifiable_) {
    if (sim::cube_subsumes(u, cube)) {
      ++stats_.unjust_subsumed;  // an existing weaker proof already covers it
      return;
    }
  }
  // Drop stored cubes the new, more general proof covers.
  const auto dropped = std::remove_if(
      unjustifiable_.begin(), unjustifiable_.end(), [&](const State3& u) {
        if (!sim::cube_subsumes(cube, u)) return false;
        ++stats_.unjust_subsumed;
        return true;
      });
  unjustifiable_.erase(dropped, unjustifiable_.end());
  unjustifiable_.push_back(cube);
  ++stats_.unjust_inserts;
  if (unjustifiable_.size() > config_.max_unjustifiable) {
    unjustifiable_.erase(unjustifiable_.begin());
  }
}

bool StateStore::known_unjustifiable(const State3& desired) {
  if (!config_.enabled) return false;
  for (const State3& u : unjustifiable_) {
    if (sim::cube_subsumes(u, desired)) {
      ++stats_.unjust_hits;
      return true;
    }
  }
  ++stats_.unjust_misses;
  return false;
}

// ---------------------------------------------------------------------------
// Reachable-state log + GA seeding

void StateStore::record_reachable_trace(const Sequence& segment,
                                        const std::vector<State3>& states) {
  if (!config_.enabled || states.empty() || segment.size() < states.size()) {
    return;
  }
  const auto shared = std::make_shared<const Sequence>(segment);
  for (std::size_t t = 0; t < states.size(); ++t) {
    const State3& st = states[t];
    if (sim::cube_is_trivial(st)) continue;  // all-X teaches nothing
    const bool seen =
        std::any_of(reachable_.begin(), reachable_.end(),
                    [&](const TraceEntry& e) { return e.state == st; });
    if (seen) continue;
    reachable_.push_back({st, shared, t + 1, next_stamp_++});
    ++stats_.reachable_inserts;
    if (reachable_.size() > config_.max_reachable) {
      reachable_.erase(reachable_.begin());
    }
  }
}

void StateStore::record_near_miss(const State3& desired, const Sequence& best) {
  if (!config_.enabled || best.empty() || sim::cube_is_trivial(desired)) return;
  const auto shared = std::make_shared<const Sequence>(best);
  for (TraceEntry& e : near_misses_) {
    if (e.state == desired) {
      // Same target cube: the newer best individual replaces the older one.
      e.sequence = shared;
      e.prefix_len = best.size();
      e.stamp = next_stamp_++;
      ++stats_.near_miss_inserts;
      return;
    }
  }
  near_misses_.push_back({desired, shared, best.size(), next_stamp_++});
  ++stats_.near_miss_inserts;
  if (near_misses_.size() > config_.max_near_misses) {
    near_misses_.erase(near_misses_.begin());
  }
}

std::vector<Sequence> StateStore::seed_sequences(const State3& desired,
                                                 std::size_t max_seeds) {
  std::vector<Sequence> out;
  if (!config_.enabled || max_seeds == 0) return out;
  struct Ranked {
    unsigned agreement = 0;
    std::uint64_t stamp = 0;
    const TraceEntry* entry = nullptr;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(near_misses_.size() + reachable_.size());
  for (const auto* pool : {&near_misses_, &reachable_}) {
    for (const TraceEntry& e : *pool) {
      const unsigned a = sim::cube_agreement(desired, e.state);
      if (a == 0) continue;
      ranked.push_back({a, e.stamp, &e});
    }
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.agreement != b.agreement) return a.agreement > b.agreement;
    return a.stamp > b.stamp;  // unique stamps: total, deterministic order
  });
  const std::size_t n = std::min(max_seeds, ranked.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEntry& e = *ranked[i].entry;
    out.emplace_back(e.sequence->begin(),
                     e.sequence->begin() +
                         static_cast<std::ptrdiff_t>(e.prefix_len));
  }
  stats_.ga_seeds_served += static_cast<long>(out.size());
  return out;
}

// ---------------------------------------------------------------------------
// Per-fault forward-solution cache

const StateStore::ForwardSolution* StateStore::cached_forward(
    std::size_t fault_index) const {
  if (fault_index < forward_valid_.size() && forward_valid_[fault_index]) {
    return &forward_[fault_index];
  }
  return nullptr;
}

const StateStore::ForwardSolution* StateStore::take_cached_forward(
    std::size_t fault_index) {
  const ForwardSolution* cached = cached_forward(fault_index);
  if (cached) ++stats_.forward_cache_hits;
  return cached;
}

void StateStore::cache_forward(std::size_t fault_index, Sequence vectors,
                               State3 required) {
  if (!config_.enabled) return;
  if (forward_.size() <= fault_index) {
    forward_.resize(fault_index + 1);
    forward_valid_.resize(fault_index + 1, 0);
  }
  forward_[fault_index] = {std::move(vectors), std::move(required)};
  forward_valid_[fault_index] = 1;
  ++stats_.forward_cache_inserts;
}

}  // namespace gatpg::state
