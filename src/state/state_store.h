// Cross-fault state-knowledge layer: a ternary state-cube knowledge base
// owned by session::Session and consulted/fed by every justification layer.
//
// GA-HITEC's passes repeatedly justify the same or overlapping flip-flop
// state cubes — many faults share excitation states, and later passes
// re-derive what earlier passes already established.  The StateStore keeps
// three kinds of knowledge alive across faults and passes:
//
//   1. Justified-sequence cache.  On a GA or deterministic justification
//      success, (cube -> sequence) is recorded.  A later query whose desired
//      cube is *covered* by a stored entry (the query subsumes the entry:
//      every literal of the query appears in the entry, so any state
//      satisfying the entry satisfies the query) returns the stored sequence
//      after a cheap re-simulation verify against the query's actual start
//      state and fault — hit = the whole search skipped.
//   2. Unjustifiable-cube store.  When the reverse-time justifier exhausts
//      at the top level without clipping (the existing untestability-proof
//      condition), the target cube is *provably* unreachable from any state.
//      Any later desired cube subsumed by a stored cube (i.e. at least as
//      constrained) fails instantly, and the rejection still counts as a
//      proof for the engine's untestability logic.  Sub-recursion
//      kUnjustifiable results are NOT recorded: they can stem from
//      requirement-cycle pruning relative to the outer path and are only
//      valid in that context.
//   3. Reachable-state log + GA seeding.  Good-machine states visited while
//      committing tests (harvested from the session fault simulator) and GA
//      near-miss sequences are logged with their incoming sequences; GA
//      populations are seeded with the sequences whose recorded states agree
//      best with the desired cube, replacing purely random initialization
//      for a configurable fraction of the population.
//
// Determinism rules: every index is a plain insertion-ordered vector scanned
// linearly (no pointer or hash iteration order can leak into results);
// eviction is FIFO; ranking ties break on a monotonic insertion stamp.  All
// store access happens on the serial engine thread — the worker pools never
// touch it — so results are thread-count-independent by construction.  With
// `StateStoreConfig{enabled = false}` (the default) every method is an inert
// no-op and the engines reproduce their store-free behavior bit-identically.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "fault/fault.h"
#include "netlist/circuit.h"
#include "sim/seqsim.h"

namespace gatpg::serialize {
class Writer;
class Reader;
}  // namespace gatpg::serialize

namespace gatpg::state {

struct StateStoreConfig {
  /// Master switch; false leaves every engine bit-identical to the
  /// store-free code path.
  bool enabled = false;
  /// Capacity caps (FIFO eviction beyond them).
  std::size_t max_justified = 512;
  std::size_t max_unjustifiable = 1024;
  std::size_t max_reachable = 1024;
  std::size_t max_near_misses = 256;
  /// Covering justified-cache entries re-verified per lookup before
  /// declaring a miss (bounds the verify cost of popular cubes).
  unsigned max_verifies_per_lookup = 4;
  /// Fraction of each GA population seeded from the reachable/near-miss
  /// log (the rest stays random).
  double ga_seed_fraction = 0.25;
};

/// Effectiveness counters, mirrored into session::EngineCounters so
/// observers and benches report cache behavior.  All values are
/// deterministic and thread-count-independent.
struct StateStoreStats {
  long seq_hits = 0;            ///< justified-cache hits (verified)
  long seq_misses = 0;          ///< lookups with no verified covering entry
  long seq_inserts = 0;
  long seq_verify_failures = 0; ///< covering entries rejected by re-simulation
  long unjust_hits = 0;         ///< queries proven unjustifiable by the store
  long unjust_misses = 0;
  long unjust_inserts = 0;
  long unjust_subsumed = 0;     ///< cubes skipped/dropped as redundant
  long reachable_inserts = 0;
  long near_miss_inserts = 0;
  long ga_seeds_served = 0;     ///< seed sequences handed to GA populations
  long forward_cache_hits = 0;  ///< forward solutions reused across passes
  long forward_cache_inserts = 0;

  StateStoreStats& operator+=(const StateStoreStats& o);
  StateStoreStats& operator-=(const StateStoreStats& o);
};

class StateStore {
 public:
  /// A cached excitation/propagation solution of one fault (the forward
  /// engine's first solution, reused across passes instead of recomputed).
  struct ForwardSolution {
    sim::Sequence vectors;
    sim::State3 required;
  };

  StateStore(const netlist::Circuit& c, StateStoreConfig config = {});

  bool enabled() const { return config_.enabled; }
  const StateStoreConfig& config() const { return config_; }
  const StateStoreStats& stats() const { return stats_; }

  /// Monotonic counter bumped on every *content* mutation (cache inserts,
  /// drops, replacements — anything future lookups could observe).  Pure
  /// stats changes (hit/miss tallies) do not bump it: they never feed back
  /// into engine behavior.  The speculative targeting layer compares
  /// revisions to decide whether a lane's store clone diverged from the
  /// committed master.  Not part of digest()/save(): two stores with equal
  /// content are equal regardless of how they got there.
  std::uint64_t revision() const { return revision_; }

  /// Deep copy of content, stats, stamp counter, revision, and config.
  /// Verify machines are not copied (they are lazy scratch); the clone is
  /// fully independent and safe to use from another thread.
  std::unique_ptr<StateStore> clone() const;

  /// Replaces this store's *content* (all caches, forward solutions, and the
  /// stamp counter) with `other`'s, leaving stats and config untouched, and
  /// bumps the revision.  The commit step of speculative targeting uses this
  /// to adopt a lane clone's content in fault order.
  void adopt_content(const StateStore& other);

  /// Adds `delta` onto the stats — the commit step folds each lane's stats
  /// delta (end minus snapshot) so same-epoch commits stack exactly like the
  /// serial run's sequential lookups.
  void apply_stats_delta(const StateStoreStats& delta) { stats_ += delta; }

  // -- 1. Justified-sequence cache ------------------------------------------

  /// Records a successful justification: `sequence` provably drives the
  /// machine into a state satisfying `cube` (from the all-X start by
  /// 3-valued monotonicity, hence from any start on the good machine).
  /// Trivial (all-X) cubes and exact-duplicate cubes are skipped.
  void record_justified(const sim::State3& cube, sim::Sequence sequence);

  /// Queries the cache for `(desired_good, desired_faulty)` from
  /// `current_good` with `fault` injected in the faulty machine.  Covering
  /// entries are re-verified by simulating the stored sequence on a
  /// good/faulty machine pair (same acceptance rule as the GA: both desired
  /// cubes satisfied after some prefix); the first verified entry's matching
  /// prefix is returned.
  std::optional<sim::Sequence> lookup_justified(const fault::Fault& fault,
                                                const sim::State3& desired_good,
                                                const sim::State3& desired_faulty,
                                                const sim::State3& current_good);

  // -- 2. Unjustifiable-cube store ------------------------------------------

  /// Records a *proven* unjustifiable cube (top-level reverse-time
  /// exhaustion without clipping).  Cubes subsumed by an existing entry are
  /// skipped; existing entries subsumed by the new, more general cube are
  /// dropped (both counted in stats().unjust_subsumed).
  void record_unjustifiable(const sim::State3& cube);

  /// True iff a stored cube subsumes `desired` — `desired` then provably
  /// has no justifying sequence, and the engine may treat the rejection as
  /// a completed proof.
  bool known_unjustifiable(const sim::State3& desired);

  // -- 3. Reachable-state log + GA seeding ----------------------------------

  /// Logs the good-machine states visited while simulating a committed test
  /// segment: states[t] is the state after vector t of `segment`, so the
  /// prefix segment[0..t] is a witness sequence reaching it.  All-X and
  /// already-logged states are skipped.
  void record_reachable_trace(const sim::Sequence& segment,
                              const std::vector<sim::State3>& states);

  /// Logs a GA failure's best individual against the cube it targeted, so a
  /// later pass hunting the same or a similar cube can resume from it.  A
  /// newer near miss for the same cube replaces the older one.
  void record_near_miss(const sim::State3& desired, const sim::Sequence& best);

  /// Up to `max_seeds` seed sequences for a GA population targeting
  /// `desired`, ranked by agreement of the logged state/cube with `desired`
  /// (ties: newest first).  Zero-agreement entries are never returned.
  std::vector<sim::Sequence> seed_sequences(const sim::State3& desired,
                                            std::size_t max_seeds);

  // -- Per-fault forward-solution cache -------------------------------------

  /// Pure lookup (no stats side effect).
  const ForwardSolution* cached_forward(std::size_t fault_index) const;
  /// Stats-counting lookup for when the cached solution is actually
  /// consumed instead of re-derived.
  const ForwardSolution* take_cached_forward(std::size_t fault_index);
  void cache_forward(std::size_t fault_index, sim::Sequence vectors,
                     sim::State3 required);

  std::size_t justified_size() const { return justified_.size(); }
  std::size_t unjustifiable_size() const { return unjustifiable_.size(); }
  std::size_t reachable_size() const { return reachable_.size(); }
  std::size_t near_miss_size() const { return near_misses_.size(); }

  // -- Snapshot support ------------------------------------------------------

  /// FNV-1a-64 over every cache's contents, the insertion stamps, and the
  /// effectiveness stats — any divergence between a resumed and an
  /// uninterrupted run shows up here.
  std::uint64_t digest() const;
  /// Serializes all four caches, the stamp counter, and the stats.  Shared
  /// trace sequences are deduplicated through a first-appearance table so
  /// the O(len)-not-O(len^2) sharing survives the round trip.  Config caps
  /// are recorded and verified by load() (a resumed store with different
  /// caps would evict differently and break determinism).
  void save(serialize::Writer& w) const;
  void load(serialize::Reader& r);

  /// Resets every cache, the stamp counter, and the stats to the
  /// freshly-constructed state (config and verify machines are kept), so a
  /// store a partial load() left half-populated can be returned to the
  /// genuine cold-start state.
  void clear();

  /// Drops the knowledge that is only sound for the exact netlist it was
  /// learned on: unjustifiable-cube proofs and per-fault forward solutions.
  /// Justified sequences, reachable states, and near misses survive — they
  /// are re-verified or merely rank GA seeds, so stale entries cost a
  /// verify, never correctness.  The daemon calls this when warming a
  /// store across netlist revisions.
  void drop_unverified();

 private:
  struct JustifiedEntry {
    sim::State3 cube;
    sim::Sequence sequence;
  };
  /// One logged state (or targeted cube, for near misses) with the sequence
  /// prefix that reaches (or approached) it.  The full segment is shared so
  /// logging every prefix of a long test costs O(len) instead of O(len^2).
  struct TraceEntry {
    sim::State3 state;
    std::shared_ptr<const sim::Sequence> sequence;
    std::size_t prefix_len = 0;
    std::uint64_t stamp = 0;
  };

  /// Re-simulates `sequence` from (`current_good`, all-X + fault) and, on
  /// the first vector after which both desired cubes hold, writes that
  /// prefix to `prefix` and returns true.
  bool verify(const fault::Fault& fault, const sim::Sequence& sequence,
              const sim::State3& desired_good, const sim::State3& desired_faulty,
              const sim::State3& current_good, sim::Sequence& prefix);

  const netlist::Circuit& c_;
  StateStoreConfig config_;
  StateStoreStats stats_;
  std::uint64_t next_stamp_ = 0;
  std::uint64_t revision_ = 0;

  std::vector<JustifiedEntry> justified_;
  std::vector<sim::State3> unjustifiable_;
  std::vector<TraceEntry> reachable_;
  std::vector<TraceEntry> near_misses_;
  std::vector<ForwardSolution> forward_;
  std::vector<char> forward_valid_;

  /// Verify machines, created lazily and reused across lookups.
  std::unique_ptr<sim::SequenceSimulator> good_sim_;
  std::unique_ptr<sim::SequenceSimulator> faulty_sim_;
};

}  // namespace gatpg::state
