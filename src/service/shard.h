// Sharded job execution for the ATPG service: one job's fault list is
// partitioned across N independent shard sessions, shard sessions run on a
// bounded worker pool, and the per-shard results merge deterministically in
// shard order — the parallel-layer lane-merge discipline lifted to whole
// sessions.
//
// Determinism contract: the shard count is a *job parameter* (it changes
// which faults share a session, hence the results); the worker count is
// pure execution parallelism and never affects any output bit.  Worker w
// runs shards w, w+W, w+2W, ... strictly sequentially on its own thread and
// writes only its own shards' slots; the merge walks shards 0..N-1 in
// index order.  run_sharded(workers=1) is the reference serial execution
// every other worker count must match (test_service.cpp asserts equality
// through the SessionResult digest hooks).
//
// Each shard runs the full GA-HITEC engine over its sub-population with a
// shard-mixed RNG seed, its own checkpoint file (`<base>.shardK`), and —
// when a WarmStoreCache is supplied — a StateStore pre-seeded from the
// previous submission of the same (shards, shard) slot, with
// netlist-specific knowledge dropped when the fault-list identity changed
// (the successive-netlist-revision flow).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "fault/faultlist.h"
#include "hybrid/hybrid_atpg.h"
#include "netlist/circuit.h"
#include "session/session.h"

namespace gatpg::service {

/// One job submission: the base engine configuration plus the shard/worker
/// split and the checkpoint policy applied to every shard session.
struct ShardJobConfig {
  /// Number of fault-list partitions (>= 1).  Part of the job identity:
  /// different shard counts legitimately produce different (all valid)
  /// results.
  unsigned shards = 1;
  /// Worker threads executing shard sessions (0 = one per hardware thread).
  /// Never affects results.
  unsigned workers = 1;
  /// Thread budget for workers × per-shard targeting lanes (0 = one per
  /// hardware thread).  When the requested combination would oversubscribe
  /// it, the per-shard lane count is clamped (with a logged warning)
  /// instead of silently spawning more threads than the budget; clamping is
  /// determinism-safe because the lane count never affects results.
  unsigned max_pool_threads = 0;
  /// Base engine configuration; each shard runs with seed mixed by its
  /// shard index so shard streams are independent.
  hybrid::HybridConfig hybrid;
  /// Checkpoint base path; shard K snapshots to "<path>.shardK".  Empty
  /// disables checkpointing.
  std::string checkpoint_path;
  double checkpoint_interval_s = 0.0;
  long checkpoint_every_ticks = 0;
  /// Resume each shard from its snapshot when the file exists (fresh start
  /// for shards without one, e.g. after a kill before their first
  /// checkpoint).
  bool resume = false;
};

/// Pass-end progress event forwarded from a shard session (delivered on the
/// worker thread running that shard; the sink must be thread-safe).
struct ShardEvent {
  unsigned shard = 0;
  std::size_t pass_index = 0;
  session::PassOutcome outcome;
};
using ShardEventFn = std::function<void(const ShardEvent&)>;

/// The deterministic merge of all shard results plus the per-shard detail.
struct ShardedResult {
  /// Full-fault-list-order result: statuses interleaved back to the
  /// original indices, test set and segments concatenated in shard order,
  /// counters summed, pass rows summed per pass index (time_s = max).
  session::SessionResult merged;
  std::vector<session::SessionResult> per_shard;
};

/// Round-robin partition: shard `shard` owns full-list faults shard,
/// shard + shards, shard + 2*shards, ... in ascending order (balances the
/// easy/hard mix across shards).
fault::FaultList shard_fault_list(const fault::FaultList& full,
                                  unsigned shards, unsigned shard);

/// Serialized StateStore snapshots carried across job submissions, keyed by
/// (shards, shard) so a resubmitted job finds the knowledge its shard
/// accumulated last time.  Single-threaded use only (the daemon seeds and
/// captures outside the worker phase).
class WarmStoreCache {
 public:
  /// Seeds `session`'s store from the cached slot, if any.  `circuit_key`
  /// identifies the netlist revision (fault::identity_digest of the full
  /// list): on mismatch the netlist-specific knowledge (unjustifiable
  /// proofs, forward solutions) is dropped after loading.  Entries whose
  /// PI/FF interface no longer matches, or whose store config differs, are
  /// discarded instead.  Returns true when the store was seeded.
  bool seed(session::Session& session, unsigned shards, unsigned shard,
            std::uint64_t circuit_key);
  /// Captures `session`'s store into the slot for the next submission.
  void capture(const session::Session& session, unsigned shards,
               unsigned shard, std::uint64_t circuit_key);

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::vector<std::uint8_t> archive;
    std::uint64_t circuit_key = 0;
    std::size_t pis = 0;
    std::size_t ffs = 0;
  };
  std::map<std::pair<unsigned, unsigned>, Entry> entries_;
};

/// Runs one sharded job to completion and merges.  `events` (optional)
/// receives per-pass progress from every shard; `warm` (optional) seeds
/// and re-captures each shard's StateStore.  Throws
/// serialize::SnapshotError when resume is requested and a snapshot exists
/// but fails its identity checks.
ShardedResult run_sharded(const netlist::Circuit& c,
                          const fault::FaultList& full,
                          const ShardJobConfig& job,
                          const ShardEventFn& events = {},
                          WarmStoreCache* warm = nullptr);

}  // namespace gatpg::service
