#include "service/daemon.h"

#include <sys/stat.h>

#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <vector>

#include "gen/registry.h"
#include "serialize/archive.h"

namespace gatpg::service {

namespace {

constexpr std::size_t kMaxFrame = 1 << 20;  // requests are tiny commands

std::string to_hex(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return s;
}

/// Splits "<command> key=value ..." on single spaces.
std::string parse_request(const std::string& request,
                          std::map<std::string, std::string>* args) {
  std::string command;
  std::size_t pos = 0;
  while (pos < request.size()) {
    std::size_t end = request.find(' ', pos);
    if (end == std::string::npos) end = request.size();
    const std::string token = request.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) continue;
    if (command.empty()) {
      command = token;
      continue;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      (*args)[token] = "1";  // bare flag
    } else {
      (*args)[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return command;
}

double arg_f(const std::map<std::string, std::string>& args,
             const std::string& key, double fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : std::atof(it->second.c_str());
}

long arg_l(const std::map<std::string, std::string>& args,
           const std::string& key, long fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : std::atol(it->second.c_str());
}

std::string arg_s(const std::map<std::string, std::string>& args,
                  const std::string& key, const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

}  // namespace

bool read_frame(std::FILE* in, std::string* payload) {
  unsigned char len_bytes[4];
  const std::size_t got = std::fread(len_bytes, 1, 4, in);
  if (got == 0) return false;  // clean EOF between frames
  if (got != 4) throw std::runtime_error("truncated frame length");
  std::size_t n = 0;
  for (int i = 3; i >= 0; --i) n = (n << 8) | len_bytes[i];
  if (n > kMaxFrame) throw std::runtime_error("oversized frame");
  payload->resize(n);
  if (n > 0 && std::fread(payload->data(), 1, n, in) != n) {
    throw std::runtime_error("truncated frame payload");
  }
  return true;
}

void write_frame(std::FILE* out, const std::string& payload) {
  unsigned char len_bytes[4];
  for (int i = 0; i < 4; ++i) {
    len_bytes[i] = static_cast<unsigned char>(payload.size() >> (8 * i));
  }
  std::fwrite(len_bytes, 1, 4, out);
  std::fwrite(payload.data(), 1, payload.size(), out);
  std::fflush(out);
}

Daemon::Daemon(DaemonConfig config, std::FILE* in, std::FILE* out)
    : config_(std::move(config)), in_(in), out_(out) {
  // Best-effort: make sure the default snapshot directory exists before the
  // first job tries to auto-checkpoint into it.  If it still can't be
  // written to, the submit fails with an error event, not a crash.
  if (!config_.checkpoint_dir.empty()) {
    ::mkdir(config_.checkpoint_dir.c_str(), 0777);
  }
}

void Daemon::emit(util::JsonWriter& line) {
  const std::lock_guard<std::mutex> lock(out_mu_);
  std::fwrite(line.str().data(), 1, line.str().size(), out_);
  std::fputc('\n', out_);
  std::fflush(out_);
}

void Daemon::emit_error(const std::string& message) {
  util::JsonWriter w;
  w.begin_object().field("event", "error").field("message", message)
      .end_object();
  emit(w);
}

int Daemon::serve() {
  {
    util::JsonWriter w;
    w.begin_object()
        .field("event", "ready")
        .field("protocol", 1)
        .end_object();
    emit(w);
  }
  std::string request;
  while (true) {
    try {
      if (!read_frame(in_, &request)) break;
    } catch (const std::exception& e) {
      emit_error(e.what());
      return 1;
    }
    if (!handle_request(request)) break;
  }
  util::JsonWriter w;
  w.begin_object().field("event", "bye").end_object();
  emit(w);
  return 0;
}

bool Daemon::handle_request(const std::string& request) {
  Args args;
  const std::string command = parse_request(request, &args);
  if (command == "quit") return false;
  if (command == "status") {
    handle_status();
    return true;
  }
  if (command == "submit") {
    try {
      handle_submit(args);
    } catch (const std::exception& e) {
      emit_error(e.what());
    }
    return true;
  }
  emit_error("unknown command: " + command);
  return true;
}

void Daemon::handle_status() {
  util::JsonWriter w;
  w.begin_object()
      .field("event", "status")
      .field("jobs_done", jobs_done_)
      .field("warm_entries", warm_.size())
      .end_object();
  emit(w);
}

void Daemon::handle_submit(const Args& args) {
  const std::string circuit_name = arg_s(args, "circuit", "");
  if (circuit_name.empty()) {
    emit_error("submit requires circuit=<name>");
    return;
  }
  const std::string job_id =
      arg_s(args, "job", "job" + std::to_string(next_job_id_));
  ++next_job_id_;

  ShardJobConfig job;
  job.shards = static_cast<unsigned>(std::max(1L, arg_l(args, "shards", 1)));
  job.workers = static_cast<unsigned>(std::max(0L, arg_l(args, "workers", 1)));

  const std::string engine = arg_s(args, "engine", "ga-hitec");
  const double time_scale = arg_f(args, "time_scale", 0.01);
  if (engine == "ga-hitec") {
    job.hybrid.schedule = hybrid::PassSchedule::ga_hitec(time_scale);
  } else if (engine == "hitec") {
    job.hybrid.schedule = hybrid::PassSchedule::hitec(time_scale);
  } else {
    emit_error("unknown engine: " + engine);
    return;
  }
  const double pass_budget = arg_f(args, "pass_budget", 2.0);
  const double time_limit = arg_f(args, "time_limit", 0.0);
  const long backtracks = arg_l(args, "backtracks", 0);
  for (auto& pass : job.hybrid.schedule.passes) {
    pass.pass_budget_s = pass_budget;
    // time_limit > 0 caps each pass; a negative value clears any wall limit
    // the schedule baked in (required for speculative targeting lanes, which
    // only engage on deadline-free passes).
    if (time_limit != 0.0) pass.time_limit_s = std::max(0.0, time_limit);
    if (backtracks > 0) pass.max_backtracks = backtracks;
  }
  job.hybrid.seed = static_cast<std::uint64_t>(arg_l(args, "seed", 1));
  job.hybrid.parallel.threads =
      static_cast<unsigned>(std::max(0L, arg_l(args, "threads", 1)));
  job.hybrid.target_parallel.lanes =
      static_cast<unsigned>(std::max(0L, arg_l(args, "lanes", 1)));
  job.max_pool_threads =
      static_cast<unsigned>(std::max(0L, arg_l(args, "pool_budget", 0)));
  job.hybrid.state_store.enabled = arg_l(args, "store", 1) != 0;

  const std::string model_name = arg_s(args, "fault_model", "stuck_at");
  if (!fault::parse_universe(model_name, &job.hybrid.fault_model)) {
    emit_error("unknown fault_model: " + model_name);
    return;
  }

  job.checkpoint_path = arg_s(args, "checkpoint", "");
  if (job.checkpoint_path.empty() && !config_.checkpoint_dir.empty()) {
    job.checkpoint_path = config_.checkpoint_dir + "/" + job_id + ".snap";
  }
  job.checkpoint_interval_s =
      arg_f(args, "interval", config_.default_interval_s);
  job.checkpoint_every_ticks = arg_l(args, "every_ticks", 0);
  job.resume = arg_l(args, "resume", 0) != 0;

  const netlist::Circuit c = gen::make_circuit(circuit_name);
  const fault::FaultList faults = fault::collapse(c, job.hybrid.fault_model);
  {
    util::JsonWriter w;
    w.begin_object()
        .field("event", "accepted")
        .field("job", job_id)
        .field("circuit", circuit_name)
        .field("engine", engine)
        .field("fault_model", fault::universe_name(job.hybrid.fault_model))
        .field("shards", job.shards)
        .field("workers", job.workers)
        .field("faults", faults.size())
        .field("resume", job.resume)
        .end_object();
    emit(w);
  }

  const ShardEventFn events = [&](const ShardEvent& e) {
    util::JsonWriter w;
    w.begin_object()
        .field("event", "pass")
        .field("job", job_id)
        .field("shard", e.shard)
        .field("pass", e.pass_index)
        .field("detected", e.outcome.detected)
        .field("vectors", e.outcome.vectors)
        .field("untestable", e.outcome.untestable)
        .field("time_s", e.outcome.time_s)
        .end_object();
    emit(w);
  };
  const ShardedResult result = run_sharded(c, faults, job, events, &warm_);
  ++jobs_done_;

  util::JsonWriter w;
  w.begin_object()
      .field("event", "done")
      .field("job", job_id)
      .field("faults", result.merged.total_faults)
      .field("detected", result.merged.detected())
      .field("untestable", result.merged.untestable())
      .field("vectors", result.merged.test_set.size())
      .field("rounds", result.merged.rounds)
      .field("digest_faults", to_hex(result.merged.digests.faults))
      .field("digest_tests", to_hex(result.merged.digests.tests))
      .field("digest_store", to_hex(result.merged.digests.store))
      .field("warm_entries", warm_.size())
      .end_object();
  emit(w);
}

}  // namespace gatpg::service
