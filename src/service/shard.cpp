#include "service/shard.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <memory>
#include <thread>

#include "netlist/depth.h"
#include "serialize/archive.h"
#include "util/logging.h"
#include "util/rng.h"

namespace gatpg::service {

namespace {

std::string shard_snapshot_path(const std::string& base, unsigned shard) {
  return base + ".shard" + std::to_string(shard);
}

bool file_exists(const std::string& path) {
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    std::fclose(f);
    return true;
  }
  return false;
}

/// Per-shard RNG stream: shard index folded into the job seed so shards are
/// independent but the whole job is a pure function of (config, shards).
std::uint64_t shard_seed(std::uint64_t base, unsigned shard) {
  return base ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(shard) + 1));
}

/// Forwards pass-end rows from one shard session to the job's event sink.
class ShardProgress : public session::ProgressObserver {
 public:
  ShardProgress(unsigned shard, const ShardEventFn& events)
      : shard_(shard), events_(events) {}

  void on_pass_end(const session::Session&, std::size_t pass_index,
                   const session::PassOutcome& outcome) override {
    if (events_) events_(ShardEvent{shard_, pass_index, outcome});
  }

 private:
  unsigned shard_;
  const ShardEventFn& events_;
};

session::SessionResult merge_shards(
    const fault::FaultList& full, unsigned shards,
    const std::vector<session::SessionResult>& per_shard) {
  session::SessionResult merged;
  merged.total_faults = full.size();

  // Statuses interleave back to full-list order (shard s, position p owns
  // full index p * shards + s).
  merged.fault_state.resize(full.size(), session::FaultStatus::kUndetected);
  for (std::size_t i = 0; i < full.size(); ++i) {
    const unsigned s = static_cast<unsigned>(i % shards);
    const std::size_t p = i / shards;
    if (p < per_shard[s].fault_state.size()) {
      merged.fault_state[i] = per_shard[s].fault_state[p];
    }
  }

  // Test set, segments, counters, rounds: shard order, which is fixed by
  // the partition and independent of which worker ran what.
  std::size_t max_passes = 0;
  for (const session::SessionResult& r : per_shard) {
    merged.test_set.insert(merged.test_set.end(), r.test_set.begin(),
                           r.test_set.end());
    merged.segments.insert(merged.segments.end(), r.segments.begin(),
                           r.segments.end());
    merged.counters += r.counters;
    merged.rounds += r.rounds;
    merged.evaluations += r.evaluations;
    max_passes = std::max(max_passes, r.passes.size());
  }

  // Pass rows are cumulative per shard; the merged row for pass p sums each
  // shard's row at min(p, last) so shards with shorter schedules carry
  // their final state forward.  time_s is the slowest shard (wall clock).
  for (std::size_t p = 0; p < max_passes; ++p) {
    session::PassOutcome row;
    for (const session::SessionResult& r : per_shard) {
      if (r.passes.empty()) continue;
      const session::PassOutcome& sr =
          r.passes[std::min(p, r.passes.size() - 1)];
      row.detected += sr.detected;
      row.vectors += sr.vectors;
      row.untestable += sr.untestable;
      row.time_s = std::max(row.time_s, sr.time_s);
    }
    merged.passes.push_back(row);
  }

  // Merged digests: shard-order fold of the per-shard component digests —
  // the cheap identity the worker-count-invariance test compares.
  serialize::Digest df, dt, ds;
  for (const session::SessionResult& r : per_shard) {
    df.add_u64(r.digests.faults);
    dt.add_u64(r.digests.tests);
    ds.add_u64(r.digests.store);
  }
  merged.digests.faults = df.value();
  merged.digests.tests = dt.value();
  merged.digests.store = ds.value();
  return merged;
}

}  // namespace

fault::FaultList shard_fault_list(const fault::FaultList& full,
                                  unsigned shards, unsigned shard) {
  fault::FaultList part;
  for (std::size_t i = shard; i < full.size(); i += shards) {
    part.faults.push_back(full.faults[i]);
    part.class_sizes.push_back(full.class_sizes[i]);
  }
  return part;
}

bool WarmStoreCache::seed(session::Session& session, unsigned shards,
                          unsigned shard, std::uint64_t circuit_key) {
  const auto it = entries_.find({shards, shard});
  if (it == entries_.end()) return false;
  const Entry& entry = it->second;
  const netlist::Circuit& c = session.circuit();
  if (entry.pis != c.primary_inputs().size() ||
      entry.ffs != c.flip_flops().size()) {
    // Interface changed: cached cubes/sequences have the wrong shape.
    entries_.erase(it);
    return false;
  }
  try {
    serialize::Reader r(entry.archive);
    session.state_store().load(r);
  } catch (const serialize::SnapshotError&) {
    // Config mismatch or corruption: discard whatever a partial load left
    // behind so the shard genuinely starts cold.
    session.state_store().clear();
    entries_.erase(it);
    return false;
  }
  if (entry.circuit_key != circuit_key) {
    // Same interface, different netlist revision: keep only the knowledge
    // that is re-verified on use.
    session.state_store().drop_unverified();
  }
  return true;
}

void WarmStoreCache::capture(const session::Session& session, unsigned shards,
                             unsigned shard, std::uint64_t circuit_key) {
  if (!session.state_store().enabled()) return;
  serialize::Writer w;
  session.state_store().save(w);
  Entry entry;
  entry.archive = w.finish();
  entry.circuit_key = circuit_key;
  entry.pis = session.circuit().primary_inputs().size();
  entry.ffs = session.circuit().flip_flops().size();
  entries_[{shards, shard}] = std::move(entry);
}

ShardedResult run_sharded(const netlist::Circuit& c,
                          const fault::FaultList& full,
                          const ShardJobConfig& job,
                          const ShardEventFn& events, WarmStoreCache* warm) {
  const unsigned shards = std::max(1u, job.shards);
  const unsigned depth = job.hybrid.sequential_depth_override
                             ? job.hybrid.sequential_depth_override
                             : netlist::sequential_depth(c);
  const std::uint64_t circuit_key = fault::identity_digest(full);

  // Worker count is fixed up front so the targeting-lane budget below can
  // see it; it is pure execution parallelism and never affects results.
  const unsigned requested =
      job.workers == 0 ? util::ParallelConfig{}.resolved() : job.workers;
  const unsigned workers = std::max(1u, std::min(requested, shards));

  // Per-shard speculative targeting lanes, clamped so workers × lanes never
  // oversubscribes the job's thread budget.  Clamping is determinism-safe:
  // the lane count never changes results, only wall clock.
  const unsigned budget = job.max_pool_threads
                              ? job.max_pool_threads
                              : util::ParallelConfig{}.resolved();
  unsigned lanes = job.hybrid.target_parallel.resolved_lanes();
  if (lanes > 1 && workers * lanes > budget) {
    const unsigned clamped = std::max(1u, budget / workers);
    util::log_warn() << "run_sharded: " << workers << " workers x " << lanes
                     << " targeting lanes exceeds thread budget " << budget
                     << "; clamping lanes to " << clamped;
    lanes = clamped;
  }

  // Phase 1 (serial): one session + engine per shard, resumed from its
  // snapshot or warm-seeded as requested.  HybridEngine keeps references to
  // its config and RNG, so both live in parallel arrays.
  std::vector<hybrid::HybridConfig> configs(shards, job.hybrid);
  std::vector<std::unique_ptr<util::Rng>> rngs(shards);
  std::vector<std::unique_ptr<session::Session>> sessions(shards);
  std::vector<std::unique_ptr<hybrid::HybridEngine>> engines(shards);
  std::vector<std::unique_ptr<ShardProgress>> observers(shards);
  for (unsigned s = 0; s < shards; ++s) {
    hybrid::HybridConfig& cfg = configs[s];
    cfg.seed = shard_seed(job.hybrid.seed, s);
    cfg.target_parallel.lanes = lanes;
    cfg.target_parallel.window = job.hybrid.target_parallel.window;

    session::SessionConfig scfg;
    scfg.fault_model = cfg.fault_model;
    scfg.faultsim = cfg.faultsim;
    scfg.faultsim.parallel = cfg.parallel;
    scfg.state_store = cfg.state_store;
    scfg.target_parallel = cfg.target_parallel;
    if (!job.checkpoint_path.empty()) {
      scfg.checkpoint.path = shard_snapshot_path(job.checkpoint_path, s);
      scfg.checkpoint.interval_s = job.checkpoint_interval_s;
      scfg.checkpoint.every_ticks = job.checkpoint_every_ticks;
    }

    rngs[s] = std::make_unique<util::Rng>(cfg.seed);
    sessions[s] = std::make_unique<session::Session>(
        c, shard_fault_list(full, shards, s), scfg);
    engines[s] =
        std::make_unique<hybrid::HybridEngine>(c, cfg, depth, *rngs[s]);
    observers[s] = std::make_unique<ShardProgress>(s, events);
    sessions[s]->set_observer(observers[s].get());

    bool resumed = false;
    if (job.resume && !job.checkpoint_path.empty()) {
      const std::string snap = shard_snapshot_path(job.checkpoint_path, s);
      if (file_exists(snap)) {
        sessions[s]->resume(snap, *engines[s]);
        resumed = true;
      }
    }
    if (!resumed && warm) {
      warm->seed(*sessions[s], shards, s, circuit_key);
    }
  }

  // Phase 2 (parallel): worker w runs shards w, w+W, ... sequentially on
  // its own thread; shard slots are disjoint, so no synchronization beyond
  // join is needed and results cannot depend on W.  A shard whose run
  // throws (e.g. its auto-checkpoint path is unwritable) must not let the
  // exception escape its thread — that would std::terminate the process —
  // so each lane captures the failure, every lane is joined, and the first
  // failing shard's exception is rethrown to the caller afterwards.
  std::vector<session::SessionResult> results(shards);
  std::vector<std::exception_ptr> errors(shards);
  auto run_lane = [&](unsigned w) {
    for (unsigned s = w; s < shards; s += workers) {
      try {
        results[s] = sessions[s]->run(*engines[s], configs[s].schedule);
      } catch (...) {
        errors[s] = std::current_exception();
        return;  // the job is failing; don't burn time on this lane's rest
      }
    }
  };
  std::vector<std::thread> pool;
  for (unsigned w = 1; w < workers; ++w) pool.emplace_back(run_lane, w);
  run_lane(0);
  for (std::thread& t : pool) t.join();
  for (unsigned s = 0; s < shards; ++s) {
    // Lowest shard index wins so the reported error is worker-count
    // independent.
    if (errors[s]) std::rethrow_exception(errors[s]);
  }

  // Phase 3 (serial): capture warm stores and merge in shard order.
  if (warm) {
    for (unsigned s = 0; s < shards; ++s) {
      warm->capture(*sessions[s], shards, s, circuit_key);
    }
  }
  ShardedResult out;
  out.merged = merge_shards(full, shards, results);
  out.per_shard = std::move(results);
  return out;
}

}  // namespace gatpg::service
