// atpgd core: a persistent ATPG service speaking a length-prefixed request
// protocol on stdin and streaming JSON-line events on stdout.
//
// Protocol (see DESIGN.md §4i):
//   request  = u32 little-endian payload length + payload bytes
//   payload  = "<command> key=value key=value ..." (UTF-8 text)
//   response = one JSON object per line on stdout, flushed per event
//
// Commands:
//   submit circuit=<name> [job=<id>] [shards=N] [workers=N] [engine=ga-hitec
//          |hitec] [fault_model=stuck_at|transition] [time_scale=X]
//          [pass_budget=X] [time_limit=X] [backtracks=N] [seed=N] [threads=N]
//          [store=0|1] [checkpoint=<path>] [interval=X] [every_ticks=N]
//          [resume=0|1]
//
// time_limit/backtracks override every pass's per-fault limits.  A job
// whose wall-clock limits never bind (pass_budget=0 plus a generous
// time_limit, with backtracks as the real budget) is a pure function of
// its parameters — the shape the kill/resume CI smoke relies on to assert
// bit-identical digests across a daemon restart.
//   status
//   quit
//
// Jobs execute in submission order, each sharded across `workers` threads
// via service::run_sharded; per-shard pass rows stream as {"event":"pass"}
// lines while the job runs and the merged result (with its component
// digests, printed as hex strings) arrives as {"event":"done"}.  Each job
// auto-checkpoints its shard sessions (`checkpoint`/`interval`/
// `every_ticks`; a killed daemon restarted with resume=1 continues from the
// snapshots bit-identically).  The WarmStoreCache persists across
// submissions, so a resubmitted circuit — or a revised netlist with the
// same PI/FF interface — starts with the StateStore knowledge the previous
// run accumulated.
#pragma once

#include <cstdio>
#include <map>
#include <mutex>
#include <string>

#include "service/shard.h"
#include "util/json_writer.h"

namespace gatpg::service {

struct DaemonConfig {
  /// Directory for job snapshots when a submit gives no checkpoint= path
  /// (empty = no default checkpointing).
  std::string checkpoint_dir;
  /// Default auto-checkpoint interval for jobs that don't set interval=.
  double default_interval_s = 0.0;
};

/// One daemon over explicit streams (tests drive it with pipes or string
/// buffers; tools/atpgd wires stdin/stdout).
class Daemon {
 public:
  Daemon(DaemonConfig config, std::FILE* in, std::FILE* out);

  /// Serves requests until EOF or `quit`.  Returns the process exit code.
  int serve();

  /// Handles one decoded request payload; returns false when the daemon
  /// should shut down (`quit`).  Exposed for unit tests.
  bool handle_request(const std::string& request);

  const WarmStoreCache& warm_cache() const { return warm_; }

 private:
  using Args = std::map<std::string, std::string>;

  void handle_submit(const Args& args);
  void handle_status();
  void emit(util::JsonWriter& line);
  void emit_error(const std::string& message);

  DaemonConfig config_;
  std::FILE* in_;
  std::FILE* out_;
  std::mutex out_mu_;  // pass events arrive on shard worker threads
  WarmStoreCache warm_;
  long jobs_done_ = 0;
  long next_job_id_ = 1;
};

// -- Framing helpers (shared with test clients) -----------------------------

/// Reads one length-prefixed frame; false on clean EOF.  Throws
/// std::runtime_error on a truncated frame or an oversized length.
bool read_frame(std::FILE* in, std::string* payload);
/// Writes one length-prefixed frame and flushes.
void write_frame(std::FILE* out, const std::string& payload);

}  // namespace gatpg::service
