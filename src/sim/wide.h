// SIMD-wide ternary gate-evaluation kernels and the runtime slot-mask type.
//
// The wide simulator (sim/widesim.h) stores node values as flat
// structure-of-arrays plane buffers — `nw` 64-bit words per node per plane —
// and evaluates gates through the kernel table returned by wide_kernels():
// one function per gate type, so the type dispatch happens once per gate and
// the per-word inner loops are branchless.  Three specializations exist:
//
//   * portable unrolled scalar (always compiled; the reference kernels),
//   * AVX2, 256-bit (compiled when the build enables it, see GATPG_SIMD),
//   * AVX-512, 512-bit (likewise).
//
// wide_kernels() is the single dispatch point: build-time availability
// (GATPG_HAVE_AVX2 / GATPG_HAVE_AVX512) is intersected with runtime CPU
// feature detection, and the GATPG_SIMD environment variable
// (scalar|avx2|avx512) can force a narrower backend for A/B runs.  Every
// backend computes bit-identical planes — the backends are tested against
// each other and against the PackedV3 reference ops.
#pragma once

#include <array>
#include <cstdint>

#include "netlist/gate.h"
#include "sim/logic3.h"

namespace gatpg::sim {

// -- Runtime-width slot masks -------------------------------------------------

/// A mask over up to 64·kMaxWideWords slots.  Words at or above the active
/// width are kept zero by construction, so operations can run over the full
/// fixed-size array without a width parameter.
struct WideMask {
  std::array<std::uint64_t, kMaxWideWords> w{};

  /// First `count` slots set (count <= 64 * nwords).
  static WideMask ones(unsigned nwords, std::size_t count) {
    WideMask m;
    for (unsigned i = 0; i < nwords; ++i) {
      if (count >= 64) {
        m.w[i] = ~0ULL;
        count -= 64;
      } else {
        m.w[i] = count ? ((1ULL << count) - 1) : 0;
        count = 0;
      }
    }
    return m;
  }

  bool any() const {
    std::uint64_t acc = 0;
    for (const std::uint64_t x : w) acc |= x;
    return acc != 0;
  }

  bool test(unsigned slot) const {
    return (w[slot >> 6] >> (slot & 63)) & 1;
  }
  void set(unsigned slot) { w[slot >> 6] |= 1ULL << (slot & 63); }
  void clear(unsigned slot) { w[slot >> 6] &= ~(1ULL << (slot & 63)); }

  unsigned popcount() const {
    unsigned n = 0;
    for (const std::uint64_t x : w) {
      n += static_cast<unsigned>(__builtin_popcountll(x));
    }
    return n;
  }

  /// Lowest set slot; only valid when any().
  unsigned lowest() const {
    for (unsigned i = 0; i < kMaxWideWords; ++i) {
      if (w[i]) return i * 64 + static_cast<unsigned>(__builtin_ctzll(w[i]));
    }
    return 64 * kMaxWideWords;
  }

  WideMask& operator&=(const WideMask& o) {
    for (unsigned i = 0; i < kMaxWideWords; ++i) w[i] &= o.w[i];
    return *this;
  }
  WideMask& operator|=(const WideMask& o) {
    for (unsigned i = 0; i < kMaxWideWords; ++i) w[i] |= o.w[i];
    return *this;
  }
  /// this &= ~o
  WideMask& remove(const WideMask& o) {
    for (unsigned i = 0; i < kMaxWideWords; ++i) w[i] &= ~o.w[i];
    return *this;
  }

  friend bool operator==(const WideMask&, const WideMask&) = default;
};

// -- Kernel table -------------------------------------------------------------

/// Evaluates one gate over `nf` fanin rows of `nw` words per plane.
/// `in1[i]` / `in0[i]` point at fanin i's plane rows; the result is written
/// to `out1` / `out0` (never aliased with an input row).  One function per
/// gate type — the table index is the dispatch, the word loop is branchless.
using WideGateFn = void (*)(const std::uint64_t* const* in1,
                            const std::uint64_t* const* in0,
                            std::uint64_t* out1, std::uint64_t* out0,
                            std::size_t nf, unsigned nw);

enum class SimdBackend { kScalar, kAvx2, kAvx512 };

struct WideKernels {
  SimdBackend backend = SimdBackend::kScalar;
  const char* name = "scalar";
  std::array<WideGateFn, 12> eval{};  // indexed by GateType; null = not comb.
};

/// The single dispatch point: the widest backend that is compiled in,
/// supported by this CPU, and not excluded by the GATPG_SIMD environment
/// variable.  Resolved once per process.
const WideKernels& wide_kernels();

/// A specific backend's table, or null when it is not compiled in or the
/// CPU lacks it (tests cross-check backends through this).
const WideKernels* wide_kernels_for(SimdBackend backend);

const char* simd_backend_name(SimdBackend backend);

// Per-backend tables (defined in wide_kernels*.cpp; the AVX TUs compile to
// a null-returning stub when their ISA is not enabled at build time).
const WideKernels* wide_kernels_scalar();
const WideKernels* wide_kernels_avx2();
const WideKernels* wide_kernels_avx512();

}  // namespace gatpg::sim
