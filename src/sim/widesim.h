// Width-generic (64·W slot) good/faulty-machine sequence simulator with a
// cache-conscious structure-of-arrays data layout.
//
// WideSimulator is the N-word generalization of SequenceSimulator (which is
// retained verbatim as the 64-slot golden reference): each of the 64·W
// packed slots is an independent simulation context, W being a runtime
// group width of 1..kMaxWideWords machine words per plane.  The semantic
// contract is bit-for-bit identical to SequenceSimulator — same ternary
// encoding, same event discipline, same override model — so any consumer
// can cross-check the two at width 1 slot for slot, and the fault simulator
// and GA fitness paths produce identical detections/fitness at every width.
//
// The hot-loop data layout differs deliberately:
//   * Node values live in two flat plane buffers (v1 then v0), `W` words
//     per node, rows laid out in *levelized topo order* (sources first,
//     then gates by ascending logic level) so a full-evaluation pass and
//     the level-ordered event drain walk memory forward.
//   * The event queue is a bump-allocated flat array partitioned by level
//     (CSR over the circuit's level histogram) instead of a
//     vector-of-vectors.
//   * Gate evaluation goes through the SIMD kernel table (sim/wide.h):
//     per-type branchless kernels, specialized scalar/AVX2/AVX-512 behind
//     one dispatch point.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "netlist/circuit.h"
#include "sim/logic3.h"
#include "sim/seqsim.h"
#include "sim/wide.h"

namespace gatpg::sim {

class WideSimulator {
 public:
  WideSimulator(const netlist::Circuit& c, unsigned words);

  const netlist::Circuit& circuit() const { return circuit_; }
  unsigned words() const { return nw_; }
  unsigned slots() const { return nw_ * 64; }

  /// Returns all flip-flops to X in every slot and clears node values.
  void reset();

  /// Overwrites the flip-flop state in every slot (broadcast).
  void set_state(const State3& state);
  /// Overwrites one flip-flop's plane rows directly (`r1`/`r0`: nw words).
  void set_ff_rows(std::size_t ff_index, const std::uint64_t* r1,
                   const std::uint64_t* r0);

  // -- Fault injection (cf. SequenceSimulator) -------------------------------

  void add_output_override(netlist::NodeId n, bool stuck,
                           const WideMask& slot_mask);
  void add_input_override(netlist::NodeId n, unsigned pin, bool stuck,
                          const WideMask& slot_mask);
  void clear_overrides();
  void retain_override_slots(const WideMask& slot_mask);

  /// Per-slot activity gates over the installed overrides (the two-frame
  /// transition-fault mechanism) — semantics identical to
  /// SequenceSimulator::set_override_activity / set_latch_override_activity,
  /// widened to 64·W slots.  Default all-ones = plain stuck-at behavior.
  void set_override_activity(const WideMask& act);
  void set_latch_override_activity(const WideMask& act);

  // -- Simulation ------------------------------------------------------------

  /// Applies one wide input vector (`pi1`/`pi0`: nw words per PI, PI-major)
  /// and propagates events through the combinational logic.  Does not clock.
  void apply_wide(std::span<const std::uint64_t> pi1,
                  std::span<const std::uint64_t> pi0);

  /// Broadcast convenience: the same scalar vector in every slot.
  void apply_vector(const Vector3& v);

  /// Latches flip-flop next-state values and settles the logic.
  void clock();

  // -- Differential stepping (PROOFS, cf. SequenceSimulator) -----------------

  /// One differential frame: seeds every node from `good_values` (the good
  /// machine's settled slot-uniform frame, broadcast across all 64·W
  /// slots), overlays the per-slot faulty flip-flop state (`ff1`/`ff0`: nw
  /// words per flip-flop, flip-flop-major), re-forces stuck sources, wakes
  /// the fault sites, and event-propagates only the disturbed cones.
  void apply_differential(const std::vector<PackedV3>& good_values,
                          std::span<const std::uint64_t> ff1,
                          std::span<const std::uint64_t> ff0);

  /// Faulty next-state rows of flip-flop `ff_index` after the current frame
  /// (what clock() would latch), written to `o1`/`o0` (nw words each).
  void next_state_rows(std::size_t ff_index, std::uint64_t* o1,
                       std::uint64_t* o0) const;

  // -- Value access ----------------------------------------------------------

  const std::uint64_t* row1(netlist::NodeId n) const {
    return plane1_.data() + row_[n];
  }
  const std::uint64_t* row0(netlist::NodeId n) const {
    return plane0_.data() + row_[n];
  }
  V3 get(netlist::NodeId n, unsigned slot) const {
    const std::uint64_t m = 1ULL << (slot & 63);
    if (row1(n)[slot >> 6] & m) return V3::k1;
    if (row0(n)[slot >> 6] & m) return V3::k0;
    return V3::kX;
  }

  State3 state(unsigned slot = 0) const;
  unsigned state_match_count(const State3& desired, unsigned slot) const;
  WideMask state_match_mask(const State3& desired) const;

  std::uint64_t gate_evals() const { return gate_evals_; }
  void reset_gate_evals() { gate_evals_ = 0; }
  const char* kernel_name() const { return kernels_->name; }

 private:
  struct WMasks {
    WideMask one;   // slots forced to 1
    WideMask zero;  // slots forced to 0
  };

  static std::uint64_t in_key(netlist::NodeId n, unsigned pin) {
    return (static_cast<std::uint64_t>(n) << 16) | pin;
  }

  void apply_masks_rows(std::uint64_t* r1, std::uint64_t* r0, const WMasks& m,
                        const WideMask& act) const;
  bool rows_equal_masked(const std::uint64_t* r1, const std::uint64_t* r0,
                         const WMasks& m, const WideMask& act) const;
  void broadcast_into(netlist::NodeId n, V3 v);
  bool evaluate(netlist::NodeId n);
  void full_evaluate();
  void force_source_overrides();
  void mark_dirty() { first_vector_ = true; }

  // Bump-allocated level queue over the flat CSR bucket array.
  void schedule(netlist::NodeId n);
  void schedule_fanouts(netlist::NodeId n);
  void drain();

  const netlist::Circuit& circuit_;
  const WideKernels* kernels_;
  unsigned nw_;

  // SoA planes: nw_ words per node, rows in levelized topo order (row_[n]
  // is the word offset of node n's row in either plane).
  std::vector<std::uint64_t> plane1_;
  std::vector<std::uint64_t> plane0_;
  std::vector<std::uint32_t> row_;

  // Level-bucketed event queue: qbuf_ holds the scheduled nodes, level l's
  // bucket is qbuf_[qoff_[l] .. qoff_[l] + qfill_[l]).  Bucket capacities
  // are the per-level combinational node counts, so a bump store never
  // overflows and draining never allocates.
  std::vector<netlist::NodeId> qbuf_;
  std::vector<std::uint32_t> qoff_;
  std::vector<std::uint32_t> qfill_;
  std::vector<char> queued_;

  bool first_vector_ = true;
  std::uint64_t gate_evals_ = 0;
  WideMask act_;        // current-frame override activity
  WideMask act_latch_;  // next-frame (clocked Q) activity

  // Evaluation scratch, sized once at construction: fanin row-pointer
  // gather arrays, the input-override gather matrix, and the kernel output
  // row — no evaluation ever allocates.
  std::vector<const std::uint64_t*> fin1_;
  std::vector<const std::uint64_t*> fin0_;
  std::vector<std::uint64_t> ovr1_;
  std::vector<std::uint64_t> ovr0_;
  std::vector<std::uint64_t> out1_;
  std::vector<std::uint64_t> out0_;
  std::vector<std::uint64_t> ff_next_;  // clock() latch scratch (2 planes)

  std::unordered_map<netlist::NodeId, WMasks> out_over_;
  std::unordered_map<std::uint64_t, WMasks> in_over_;
  std::vector<char> node_has_in_over_;
  std::vector<netlist::NodeId> overridden_sources_;
};

}  // namespace gatpg::sim
