// Portable unrolled scalar kernels (the reference backend) and the runtime
// backend dispatch.  See sim/wide.h for the contract.

#include <cstdlib>
#include <cstring>

#include "sim/wide.h"

namespace gatpg::sim {

namespace {

using u64 = std::uint64_t;

// Width-templated bodies: NW is a compile-time constant for the common
// widths, so the word loops fully unroll; the generic runtime-width body
// covers everything else.

template <unsigned NW>
void s_buf(const u64* const* in1, const u64* const* in0, u64* o1, u64* o0) {
  for (unsigned w = 0; w < NW; ++w) {
    o1[w] = in1[0][w];
    o0[w] = in0[0][w];
  }
}

template <unsigned NW>
void s_not(const u64* const* in1, const u64* const* in0, u64* o1, u64* o0) {
  for (unsigned w = 0; w < NW; ++w) {
    o1[w] = in0[0][w];
    o0[w] = in1[0][w];
  }
}

template <bool kInvert, unsigned NW>
void s_and(const u64* const* in1, const u64* const* in0, u64* o1, u64* o0,
           std::size_t nf) {
  for (unsigned w = 0; w < NW; ++w) {
    u64 a1 = in1[0][w];
    u64 a0 = in0[0][w];
    for (std::size_t i = 1; i < nf; ++i) {
      a1 &= in1[i][w];
      a0 |= in0[i][w];
    }
    o1[w] = kInvert ? a0 : a1;
    o0[w] = kInvert ? a1 : a0;
  }
}

template <bool kInvert, unsigned NW>
void s_or(const u64* const* in1, const u64* const* in0, u64* o1, u64* o0,
          std::size_t nf) {
  for (unsigned w = 0; w < NW; ++w) {
    u64 a1 = in1[0][w];
    u64 a0 = in0[0][w];
    for (std::size_t i = 1; i < nf; ++i) {
      a1 |= in1[i][w];
      a0 &= in0[i][w];
    }
    o1[w] = kInvert ? a0 : a1;
    o0[w] = kInvert ? a1 : a0;
  }
}

template <bool kInvert, unsigned NW>
void s_xor(const u64* const* in1, const u64* const* in0, u64* o1, u64* o0,
           std::size_t nf) {
  for (unsigned w = 0; w < NW; ++w) {
    u64 a1 = in1[0][w];
    u64 a0 = in0[0][w];
    for (std::size_t i = 1; i < nf; ++i) {
      const u64 b1 = in1[i][w];
      const u64 b0 = in0[i][w];
      const u64 r1 = (a1 & b0) | (a0 & b1);
      const u64 r0 = (a1 & b1) | (a0 & b0);
      a1 = r1;
      a0 = r0;
    }
    o1[w] = kInvert ? a0 : a1;
    o0[w] = kInvert ? a1 : a0;
  }
}

// Runtime-width wrappers: one switch per *gate*, hoisted out of the word
// loop — widths 1/2/4/8 hit the fully unrolled instantiations.

template <unsigned NW>
void g_buf(const u64* const* in1, const u64* const* in0, u64* o1, u64* o0,
           std::size_t, unsigned nw) {
  if constexpr (NW == 0) {
    for (unsigned w = 0; w < nw; ++w) {
      o1[w] = in1[0][w];
      o0[w] = in0[0][w];
    }
  } else {
    s_buf<NW>(in1, in0, o1, o0);
  }
}

void k_buf(const u64* const* in1, const u64* const* in0, u64* o1, u64* o0,
           std::size_t nf, unsigned nw) {
  switch (nw) {
    case 1: return g_buf<1>(in1, in0, o1, o0, nf, nw);
    case 2: return g_buf<2>(in1, in0, o1, o0, nf, nw);
    case 4: return g_buf<4>(in1, in0, o1, o0, nf, nw);
    case 8: return g_buf<8>(in1, in0, o1, o0, nf, nw);
    default: return g_buf<0>(in1, in0, o1, o0, nf, nw);
  }
}

void k_not(const u64* const* in1, const u64* const* in0, u64* o1, u64* o0,
           std::size_t nf, unsigned nw) {
  // NOT is BUF with the planes swapped.
  k_buf(in0, in1, o1, o0, nf, nw);
}

template <bool kInvert>
void k_and(const u64* const* in1, const u64* const* in0, u64* o1, u64* o0,
           std::size_t nf, unsigned nw) {
  switch (nw) {
    case 1: return s_and<kInvert, 1>(in1, in0, o1, o0, nf);
    case 2: return s_and<kInvert, 2>(in1, in0, o1, o0, nf);
    case 4: return s_and<kInvert, 4>(in1, in0, o1, o0, nf);
    case 8: return s_and<kInvert, 8>(in1, in0, o1, o0, nf);
    default:
      for (unsigned w = 0; w < nw; ++w) {
        u64 a1 = in1[0][w];
        u64 a0 = in0[0][w];
        for (std::size_t i = 1; i < nf; ++i) {
          a1 &= in1[i][w];
          a0 |= in0[i][w];
        }
        o1[w] = kInvert ? a0 : a1;
        o0[w] = kInvert ? a1 : a0;
      }
  }
}

template <bool kInvert>
void k_or(const u64* const* in1, const u64* const* in0, u64* o1, u64* o0,
          std::size_t nf, unsigned nw) {
  switch (nw) {
    case 1: return s_or<kInvert, 1>(in1, in0, o1, o0, nf);
    case 2: return s_or<kInvert, 2>(in1, in0, o1, o0, nf);
    case 4: return s_or<kInvert, 4>(in1, in0, o1, o0, nf);
    case 8: return s_or<kInvert, 8>(in1, in0, o1, o0, nf);
    default:
      for (unsigned w = 0; w < nw; ++w) {
        u64 a1 = in1[0][w];
        u64 a0 = in0[0][w];
        for (std::size_t i = 1; i < nf; ++i) {
          a1 |= in1[i][w];
          a0 &= in0[i][w];
        }
        o1[w] = kInvert ? a0 : a1;
        o0[w] = kInvert ? a1 : a0;
      }
  }
}

template <bool kInvert>
void k_xor(const u64* const* in1, const u64* const* in0, u64* o1, u64* o0,
           std::size_t nf, unsigned nw) {
  switch (nw) {
    case 1: return s_xor<kInvert, 1>(in1, in0, o1, o0, nf);
    case 2: return s_xor<kInvert, 2>(in1, in0, o1, o0, nf);
    case 4: return s_xor<kInvert, 4>(in1, in0, o1, o0, nf);
    case 8: return s_xor<kInvert, 8>(in1, in0, o1, o0, nf);
    default:
      for (unsigned w = 0; w < nw; ++w) {
        u64 a1 = in1[0][w];
        u64 a0 = in0[0][w];
        for (std::size_t i = 1; i < nf; ++i) {
          const u64 b1 = in1[i][w];
          const u64 b0 = in0[i][w];
          const u64 r1 = (a1 & b0) | (a0 & b1);
          const u64 r0 = (a1 & b1) | (a0 & b0);
          a1 = r1;
          a0 = r0;
        }
        o1[w] = kInvert ? a0 : a1;
        o0[w] = kInvert ? a1 : a0;
      }
  }
}

const WideKernels kScalarKernels = {
    SimdBackend::kScalar,
    "scalar",
    {
        nullptr,         // kInput
        &k_buf,          // kBuf
        &k_not,          // kNot
        &k_and<false>,   // kAnd
        &k_and<true>,    // kNand
        &k_or<false>,    // kOr
        &k_or<true>,     // kNor
        &k_xor<false>,   // kXor
        &k_xor<true>,    // kXnor
        nullptr,         // kDff
        nullptr,         // kConst0
        nullptr,         // kConst1
    },
};

const WideKernels& select_kernels() {
  // Environment override: GATPG_SIMD=scalar|avx2|avx512 caps the backend
  // (requesting an unavailable backend falls through to the next-widest).
  const char* env = std::getenv("GATPG_SIMD");
  const bool want_avx512 = !env || !std::strcmp(env, "avx512");
  const bool want_avx2 = want_avx512 || (env && !std::strcmp(env, "avx2"));
  if (want_avx512) {
    if (const WideKernels* k = wide_kernels_avx512()) return *k;
  }
  if (want_avx2) {
    if (const WideKernels* k = wide_kernels_avx2()) return *k;
  }
  return kScalarKernels;
}

}  // namespace

const WideKernels* wide_kernels_scalar() { return &kScalarKernels; }

const WideKernels& wide_kernels() {
  static const WideKernels& kernels = select_kernels();
  return kernels;
}

const WideKernels* wide_kernels_for(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kScalar:
      return wide_kernels_scalar();
    case SimdBackend::kAvx2:
      return wide_kernels_avx2();
    case SimdBackend::kAvx512:
      return wide_kernels_avx512();
  }
  return nullptr;
}

const char* simd_backend_name(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kScalar:
      return "scalar";
    case SimdBackend::kAvx2:
      return "avx2";
    case SimdBackend::kAvx512:
      return "avx512";
  }
  return "?";
}

}  // namespace gatpg::sim
