// Three-valued (0/1/X) logic, scalar and 64-way bit-parallel.
//
// Packed encoding follows the paper (two machine words per node): bit i of
// plane `v1` is set when slot i carries logic 1, bit i of plane `v0` when it
// carries logic 0, and neither for X.  (v1 & v0) != 0 is invalid by
// construction.  The paper used 32-bit words; we use 64-bit words, so 64
// candidate sequences (GA fitness) or 64 faults (fault simulation) are
// evaluated per pass.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>

#include "netlist/gate.h"

namespace gatpg::sim {

/// Scalar ternary value.
enum class V3 : std::uint8_t { k0 = 0, k1 = 1, kX = 2 };

constexpr V3 v3_not(V3 a) {
  if (a == V3::k0) return V3::k1;
  if (a == V3::k1) return V3::k0;
  return V3::kX;
}

constexpr V3 v3_and(V3 a, V3 b) {
  if (a == V3::k0 || b == V3::k0) return V3::k0;
  if (a == V3::k1 && b == V3::k1) return V3::k1;
  return V3::kX;
}

constexpr V3 v3_or(V3 a, V3 b) {
  if (a == V3::k1 || b == V3::k1) return V3::k1;
  if (a == V3::k0 && b == V3::k0) return V3::k0;
  return V3::kX;
}

constexpr V3 v3_xor(V3 a, V3 b) {
  if (a == V3::kX || b == V3::kX) return V3::kX;
  return a == b ? V3::k0 : V3::k1;
}

constexpr char v3_char(V3 a) {
  return a == V3::k0 ? '0' : (a == V3::k1 ? '1' : 'X');
}

/// 64 ternary values packed in two planes.
struct PackedV3 {
  std::uint64_t v1 = 0;
  std::uint64_t v0 = 0;

  static constexpr PackedV3 all_x() { return {0, 0}; }
  static constexpr PackedV3 broadcast(V3 v) {
    switch (v) {
      case V3::k0:
        return {0, ~0ULL};
      case V3::k1:
        return {~0ULL, 0};
      default:
        return {0, 0};
    }
  }

  V3 get(unsigned slot) const {
    const std::uint64_t m = 1ULL << slot;
    if (v1 & m) return V3::k1;
    if (v0 & m) return V3::k0;
    return V3::kX;
  }

  void set(unsigned slot, V3 v) {
    const std::uint64_t m = 1ULL << slot;
    v1 &= ~m;
    v0 &= ~m;
    if (v == V3::k1) {
      v1 |= m;
    } else if (v == V3::k0) {
      v0 |= m;
    }
  }

  /// Slots holding a defined (non-X) value.
  std::uint64_t defined() const { return v1 | v0; }

  friend constexpr bool operator==(const PackedV3&, const PackedV3&) = default;
};

inline constexpr PackedV3 p_not(PackedV3 a) { return {a.v0, a.v1}; }

inline constexpr PackedV3 p_and(PackedV3 a, PackedV3 b) {
  return {a.v1 & b.v1, a.v0 | b.v0};
}

inline constexpr PackedV3 p_or(PackedV3 a, PackedV3 b) {
  return {a.v1 | b.v1, a.v0 & b.v0};
}

inline constexpr PackedV3 p_xor(PackedV3 a, PackedV3 b) {
  return {(a.v1 & b.v0) | (a.v0 & b.v1), (a.v1 & b.v1) | (a.v0 & b.v0)};
}

/// Evaluates one combinational gate over packed fanin values fetched through
/// `value(NodeId)`.  `Fetch` is any callable NodeId -> PackedV3.
template <typename Fetch>
PackedV3 eval_gate_packed(netlist::GateType type,
                          std::span<const netlist::NodeId> fanins,
                          Fetch&& value) {
  using netlist::GateType;
  PackedV3 acc = value(fanins[0]);
  switch (type) {
    case GateType::kBuf:
      return acc;
    case GateType::kNot:
      return p_not(acc);
    case GateType::kAnd:
    case GateType::kNand:
      for (std::size_t i = 1; i < fanins.size(); ++i) {
        acc = p_and(acc, value(fanins[i]));
      }
      return type == GateType::kNand ? p_not(acc) : acc;
    case GateType::kOr:
    case GateType::kNor:
      for (std::size_t i = 1; i < fanins.size(); ++i) {
        acc = p_or(acc, value(fanins[i]));
      }
      return type == GateType::kNor ? p_not(acc) : acc;
    case GateType::kXor:
    case GateType::kXnor:
      for (std::size_t i = 1; i < fanins.size(); ++i) {
        acc = p_xor(acc, value(fanins[i]));
      }
      return type == GateType::kXnor ? p_not(acc) : acc;
    default:
      assert(false && "eval_gate_packed on non-combinational node");
      return PackedV3::all_x();
  }
}

/// Scalar gate evaluation (used by the reference/oblivious simulators and
/// property tests).
template <typename Fetch>
V3 eval_gate_scalar(netlist::GateType type,
                    std::span<const netlist::NodeId> fanins, Fetch&& value) {
  using netlist::GateType;
  V3 acc = value(fanins[0]);
  switch (type) {
    case GateType::kBuf:
      return acc;
    case GateType::kNot:
      return v3_not(acc);
    case GateType::kAnd:
    case GateType::kNand:
      for (std::size_t i = 1; i < fanins.size(); ++i) {
        acc = v3_and(acc, value(fanins[i]));
      }
      return type == GateType::kNand ? v3_not(acc) : acc;
    case GateType::kOr:
    case GateType::kNor:
      for (std::size_t i = 1; i < fanins.size(); ++i) {
        acc = v3_or(acc, value(fanins[i]));
      }
      return type == GateType::kNor ? v3_not(acc) : acc;
    case GateType::kXor:
    case GateType::kXnor:
      for (std::size_t i = 1; i < fanins.size(); ++i) {
        acc = v3_xor(acc, value(fanins[i]));
      }
      return type == GateType::kXnor ? v3_not(acc) : acc;
    default:
      assert(false && "eval_gate_scalar on non-combinational node");
      return V3::kX;
  }
}

}  // namespace gatpg::sim
