// Three-valued (0/1/X) logic: scalar, 64-way bit-parallel, and width-generic
// N-word groups.
//
// Packed encoding follows the paper (two machine words per node): bit i of
// plane `v1` is set when slot i carries logic 1, bit i of plane `v0` when it
// carries logic 0, and neither for X.  (v1 & v0) != 0 is invalid by
// construction.  The paper used 32-bit words; we use 64-bit words, so 64
// candidate sequences (GA fitness) or 64 faults (fault simulation) are
// evaluated per pass.  WideV3<W> generalizes the encoding to W words per
// plane (64·W slots per group; W = 1 is exactly PackedV3) — the value type
// of the SIMD-wide simulation kernels (sim/wide.h, sim/widesim.h).
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <span>

#include "netlist/gate.h"

namespace gatpg::sim {

/// Scalar ternary value.
enum class V3 : std::uint8_t { k0 = 0, k1 = 1, kX = 2 };

constexpr V3 v3_not(V3 a) {
  if (a == V3::k0) return V3::k1;
  if (a == V3::k1) return V3::k0;
  return V3::kX;
}

constexpr V3 v3_and(V3 a, V3 b) {
  if (a == V3::k0 || b == V3::k0) return V3::k0;
  if (a == V3::k1 && b == V3::k1) return V3::k1;
  return V3::kX;
}

constexpr V3 v3_or(V3 a, V3 b) {
  if (a == V3::k1 || b == V3::k1) return V3::k1;
  if (a == V3::k0 && b == V3::k0) return V3::k0;
  return V3::kX;
}

constexpr V3 v3_xor(V3 a, V3 b) {
  if (a == V3::kX || b == V3::kX) return V3::kX;
  return a == b ? V3::k0 : V3::k1;
}

constexpr char v3_char(V3 a) {
  return a == V3::k0 ? '0' : (a == V3::k1 ? '1' : 'X');
}

/// 64 ternary values packed in two planes.
struct PackedV3 {
  std::uint64_t v1 = 0;
  std::uint64_t v0 = 0;

  static constexpr PackedV3 all_x() { return {0, 0}; }
  static constexpr PackedV3 broadcast(V3 v) {
    switch (v) {
      case V3::k0:
        return {0, ~0ULL};
      case V3::k1:
        return {~0ULL, 0};
      default:
        return {0, 0};
    }
  }

  V3 get(unsigned slot) const {
    const std::uint64_t m = 1ULL << slot;
    if (v1 & m) return V3::k1;
    if (v0 & m) return V3::k0;
    return V3::kX;
  }

  void set(unsigned slot, V3 v) {
    const std::uint64_t m = 1ULL << slot;
    v1 &= ~m;
    v0 &= ~m;
    if (v == V3::k1) {
      v1 |= m;
    } else if (v == V3::k0) {
      v0 |= m;
    }
  }

  /// Slots holding a defined (non-X) value.
  std::uint64_t defined() const { return v1 | v0; }

  friend constexpr bool operator==(const PackedV3&, const PackedV3&) = default;
};

inline constexpr PackedV3 p_not(PackedV3 a) { return {a.v0, a.v1}; }

inline constexpr PackedV3 p_and(PackedV3 a, PackedV3 b) {
  return {a.v1 & b.v1, a.v0 | b.v0};
}

inline constexpr PackedV3 p_or(PackedV3 a, PackedV3 b) {
  return {a.v1 | b.v1, a.v0 & b.v0};
}

inline constexpr PackedV3 p_xor(PackedV3 a, PackedV3 b) {
  return {(a.v1 & b.v0) | (a.v0 & b.v1), (a.v1 & b.v1) | (a.v0 & b.v0)};
}

// -- Width-generic packed groups ---------------------------------------------

/// Largest supported group width in 64-bit words per plane (512 slots).
inline constexpr unsigned kMaxWideWords = 8;

/// 64·W ternary values packed in two planes of W machine words each.
/// WideV3<1> carries exactly the PackedV3 encoding; the wide simulators use
/// flat structure-of-arrays plane buffers instead of arrays of WideV3, but
/// this type is the value view for per-group get/set/broadcast and the unit
/// the scalar kernels are unrolled over.
template <unsigned W>
struct WideV3 {
  static_assert(W >= 1 && W <= kMaxWideWords);
  std::array<std::uint64_t, W> v1{};
  std::array<std::uint64_t, W> v0{};

  static constexpr unsigned slots() { return 64 * W; }
  static constexpr WideV3 all_x() { return {}; }
  static constexpr WideV3 broadcast(V3 v) {
    WideV3 r;
    for (unsigned w = 0; w < W; ++w) {
      r.v1[w] = v == V3::k1 ? ~0ULL : 0;
      r.v0[w] = v == V3::k0 ? ~0ULL : 0;
    }
    return r;
  }

  V3 get(unsigned slot) const {
    const std::uint64_t m = 1ULL << (slot & 63);
    if (v1[slot >> 6] & m) return V3::k1;
    if (v0[slot >> 6] & m) return V3::k0;
    return V3::kX;
  }

  void set(unsigned slot, V3 v) {
    const std::uint64_t m = 1ULL << (slot & 63);
    v1[slot >> 6] &= ~m;
    v0[slot >> 6] &= ~m;
    if (v == V3::k1) {
      v1[slot >> 6] |= m;
    } else if (v == V3::k0) {
      v0[slot >> 6] |= m;
    }
  }

  friend constexpr bool operator==(const WideV3&, const WideV3&) = default;
};

template <unsigned W>
constexpr WideV3<W> w_not(const WideV3<W>& a) {
  return {a.v0, a.v1};
}

template <unsigned W>
constexpr WideV3<W> w_and(const WideV3<W>& a, const WideV3<W>& b) {
  WideV3<W> r;
  for (unsigned w = 0; w < W; ++w) {
    r.v1[w] = a.v1[w] & b.v1[w];
    r.v0[w] = a.v0[w] | b.v0[w];
  }
  return r;
}

template <unsigned W>
constexpr WideV3<W> w_or(const WideV3<W>& a, const WideV3<W>& b) {
  WideV3<W> r;
  for (unsigned w = 0; w < W; ++w) {
    r.v1[w] = a.v1[w] | b.v1[w];
    r.v0[w] = a.v0[w] & b.v0[w];
  }
  return r;
}

template <unsigned W>
constexpr WideV3<W> w_xor(const WideV3<W>& a, const WideV3<W>& b) {
  WideV3<W> r;
  for (unsigned w = 0; w < W; ++w) {
    r.v1[w] = (a.v1[w] & b.v0[w]) | (a.v0[w] & b.v1[w]);
    r.v0[w] = (a.v1[w] & b.v1[w]) | (a.v0[w] & b.v0[w]);
  }
  return r;
}

// -- Branchless per-type gate kernels (64-bit path) --------------------------
//
// One accumulation function per gate type, indexed by GateType, so the type
// dispatch happens once per gate evaluation and the fanin loop carries no
// switch.  `vals[idx[i]]` is fanin i's packed value: the fast simulator path
// passes (values array, fanin-id span) directly, the fault-injection slow
// path passes (gathered scratch, identity indices) — one preallocated
// scratch span, never reallocated.
using PackedGateFn = PackedV3 (*)(const PackedV3* vals,
                                  const netlist::NodeId* idx, std::size_t nf);

namespace detail {

inline PackedV3 pg_buf(const PackedV3* v, const netlist::NodeId* x,
                       std::size_t) {
  return v[x[0]];
}
inline PackedV3 pg_not(const PackedV3* v, const netlist::NodeId* x,
                       std::size_t) {
  return p_not(v[x[0]]);
}
template <bool kInvert>
PackedV3 pg_and(const PackedV3* v, const netlist::NodeId* x, std::size_t nf) {
  PackedV3 acc = v[x[0]];
  for (std::size_t i = 1; i < nf; ++i) acc = p_and(acc, v[x[i]]);
  return kInvert ? p_not(acc) : acc;
}
template <bool kInvert>
PackedV3 pg_or(const PackedV3* v, const netlist::NodeId* x, std::size_t nf) {
  PackedV3 acc = v[x[0]];
  for (std::size_t i = 1; i < nf; ++i) acc = p_or(acc, v[x[i]]);
  return kInvert ? p_not(acc) : acc;
}
template <bool kInvert>
PackedV3 pg_xor(const PackedV3* v, const netlist::NodeId* x, std::size_t nf) {
  PackedV3 acc = v[x[0]];
  for (std::size_t i = 1; i < nf; ++i) acc = p_xor(acc, v[x[i]]);
  return kInvert ? p_not(acc) : acc;
}

}  // namespace detail

/// The per-type kernel table; entries for non-combinational types are null.
inline constexpr std::array<PackedGateFn, 12> kPackedGateTable = {
    nullptr,                    // kInput
    &detail::pg_buf,            // kBuf
    &detail::pg_not,            // kNot
    &detail::pg_and<false>,     // kAnd
    &detail::pg_and<true>,      // kNand
    &detail::pg_or<false>,      // kOr
    &detail::pg_or<true>,       // kNor
    &detail::pg_xor<false>,     // kXor
    &detail::pg_xor<true>,      // kXnor
    nullptr,                    // kDff
    nullptr,                    // kConst0
    nullptr,                    // kConst1
};

inline PackedGateFn packed_gate_fn(netlist::GateType type) {
  return kPackedGateTable[static_cast<std::size_t>(type)];
}

/// Evaluates one combinational gate over packed fanin values fetched through
/// `value(NodeId)`.  `Fetch` is any callable NodeId -> PackedV3.
template <typename Fetch>
PackedV3 eval_gate_packed(netlist::GateType type,
                          std::span<const netlist::NodeId> fanins,
                          Fetch&& value) {
  using netlist::GateType;
  PackedV3 acc = value(fanins[0]);
  switch (type) {
    case GateType::kBuf:
      return acc;
    case GateType::kNot:
      return p_not(acc);
    case GateType::kAnd:
    case GateType::kNand:
      for (std::size_t i = 1; i < fanins.size(); ++i) {
        acc = p_and(acc, value(fanins[i]));
      }
      return type == GateType::kNand ? p_not(acc) : acc;
    case GateType::kOr:
    case GateType::kNor:
      for (std::size_t i = 1; i < fanins.size(); ++i) {
        acc = p_or(acc, value(fanins[i]));
      }
      return type == GateType::kNor ? p_not(acc) : acc;
    case GateType::kXor:
    case GateType::kXnor:
      for (std::size_t i = 1; i < fanins.size(); ++i) {
        acc = p_xor(acc, value(fanins[i]));
      }
      return type == GateType::kXnor ? p_not(acc) : acc;
    default:
      assert(false && "eval_gate_packed on non-combinational node");
      return PackedV3::all_x();
  }
}

/// Position-indexed scalar gate evaluation: `value(i)` fetches fanin i by
/// its pin position.  Lets callers force a faulted pin by position without
/// materializing a gather buffer.
template <typename Fetch>
V3 eval_gate_scalar_pos(netlist::GateType type, std::size_t fanin_count,
                        Fetch&& value) {
  using netlist::GateType;
  V3 acc = value(std::size_t{0});
  switch (type) {
    case GateType::kBuf:
      return acc;
    case GateType::kNot:
      return v3_not(acc);
    case GateType::kAnd:
    case GateType::kNand:
      for (std::size_t i = 1; i < fanin_count; ++i) {
        acc = v3_and(acc, value(i));
      }
      return type == GateType::kNand ? v3_not(acc) : acc;
    case GateType::kOr:
    case GateType::kNor:
      for (std::size_t i = 1; i < fanin_count; ++i) {
        acc = v3_or(acc, value(i));
      }
      return type == GateType::kNor ? v3_not(acc) : acc;
    case GateType::kXor:
    case GateType::kXnor:
      for (std::size_t i = 1; i < fanin_count; ++i) {
        acc = v3_xor(acc, value(i));
      }
      return type == GateType::kXnor ? v3_not(acc) : acc;
    default:
      assert(false && "eval_gate_scalar on non-combinational node");
      return V3::kX;
  }
}

/// Scalar gate evaluation (used by the reference/oblivious simulators and
/// property tests).
template <typename Fetch>
V3 eval_gate_scalar(netlist::GateType type,
                    std::span<const netlist::NodeId> fanins, Fetch&& value) {
  return eval_gate_scalar_pos(type, fanins.size(),
                              [&](std::size_t i) { return value(fanins[i]); });
}

}  // namespace gatpg::sim
