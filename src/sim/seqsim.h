// Good/faulty-machine sequence simulator, 64-way bit-parallel, event-driven.
//
// Each of the 64 packed slots is an independent simulation context (the GA
// uses one slot per candidate sequence; the PROOFS-style fault simulator
// uses one slot per fault).  Flip-flop state persists across
// apply_packed()/clock() calls; reset() returns all flip-flops to X,
// matching the power-up-unknown model used throughout the paper.
//
// Fault injection follows PROOFS: a stuck-at fault is modeled by forcing a
// pin to a constant in selected slots.  Overrides are expressed as 64-bit
// slot masks, so one simulator instance can carry a different fault in every
// slot (parallel-fault simulation) or the same fault in all slots (GA
// fitness evaluation of 64 candidate sequences against one fault).
//
// Two stepping modes are offered.  apply_packed()/clock() is the
// self-contained mode: the machine carries its own state and traces its own
// events from vector to vector.  apply_differential() is the PROOFS
// differential mode driven by FaultSimulator: the caller supplies the good
// machine's settled node values for the frame, the machine overlays the
// per-slot faulty flip-flop state and its fault overrides, and only the
// disturbed fanout cones are re-evaluated — the cost scales with the size of
// the fault-effect cones instead of with circuit activity.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "netlist/circuit.h"
#include "sim/eventsim.h"
#include "sim/logic3.h"

namespace gatpg::sim {

/// One input vector: a V3 per primary input, in Circuit::primary_inputs()
/// order.
using Vector3 = std::vector<V3>;
/// A test sequence: vectors applied on successive clock cycles.
using Sequence = std::vector<Vector3>;

/// A state assignment: a V3 per flip-flop, in Circuit::flip_flops() order
/// (kX = don't care).
using State3 = std::vector<V3>;

// -- 3-valued cube algebra ----------------------------------------------------
//
// A State3 doubles as a *cube*: the set of fully defined states compatible
// with its defined literals (kX = unconstrained).  The state-knowledge layer
// (state::StateStore) and the engines reason about cubes with these helpers.

/// True iff every state satisfying `stronger` also satisfies `weaker`:
/// each defined literal of `weaker` appears with the same value in
/// `stronger`.  The all-X cube subsumes everything (itself included); every
/// cube subsumes itself.  Note the direction: the *weaker* cube (fewer
/// literals, larger state set) subsumes the *stronger* one.
bool cube_subsumes(const State3& weaker, const State3& stronger);

/// Number of defined positions of `cube` whose literal `state` matches
/// exactly (an X in `state` does not match a defined literal).
unsigned cube_agreement(const State3& cube, const State3& state);

/// True iff the cube carries no literal at all (all-X).
bool cube_is_trivial(const State3& cube);

class SequenceSimulator {
 public:
  explicit SequenceSimulator(const netlist::Circuit& c);

  const netlist::Circuit& circuit() const { return circuit_; }

  /// Returns all flip-flops to X in every slot and clears node values.
  void reset();

  /// Overwrites the flip-flop state in every slot (broadcast).
  void set_state(const State3& state);
  /// Overwrites one flip-flop's packed value directly.
  void set_ff_packed(std::size_t ff_index, PackedV3 value);

  // -- Fault injection ------------------------------------------------------

  /// Forces the *output* of node n to `stuck` in the slots of `slot_mask`.
  void add_output_override(netlist::NodeId n, bool stuck,
                           std::uint64_t slot_mask);
  /// Forces fanin `pin` of node n to `stuck` in the slots of `slot_mask`
  /// (a fanout-branch fault: other fanouts of the driver are unaffected).
  void add_input_override(netlist::NodeId n, unsigned pin, bool stuck,
                          std::uint64_t slot_mask);
  void clear_overrides();
  bool has_overrides() const { return !out_over_.empty() || !in_over_.empty(); }
  /// Restricts every override to the slots of `slot_mask`, dropping fault
  /// injection for the rest (the fault simulator retires detected slots this
  /// way mid-sweep so they stop generating differential events).
  void retain_override_slots(std::uint64_t slot_mask);

  /// Per-slot *activity* gates over the installed overrides — the two-frame
  /// transition-fault mechanism.  An override only forces slots whose
  /// activity bit is set; inactive slots see the fault-free value.  The
  /// current-frame mask gates every combinational/source forcing applied
  /// during the frame (evaluate/apply/apply_differential); the latch mask
  /// gates the flip-flop output forcing that clock()/next_state_packed()
  /// latch *into the next frame* (callers advance it one frame ahead).
  /// Both default to all-ones, which reproduces plain stuck-at behavior
  /// bit-for-bit; changing a mask invalidates the event baseline.
  void set_override_activity(std::uint64_t act) {
    if (act_ == act) return;
    act_ = act;
    mark_dirty();
  }
  void set_latch_override_activity(std::uint64_t act) {
    if (act_latch_ == act) return;
    act_latch_ = act;
    mark_dirty();
  }

  // -- Simulation -----------------------------------------------------------

  /// Applies one packed input vector (one PackedV3 per PI) and propagates
  /// events through the combinational logic.  Does not clock.
  void apply_packed(const std::vector<PackedV3>& pi_values);

  /// Broadcast convenience: applies the same scalar vector to all slots.
  void apply_vector(const Vector3& v);

  /// Latches flip-flop next-state values and schedules resulting activity
  /// for the next apply call.
  void clock();

  /// Applies every vector of a sequence (apply + clock each cycle).
  void run_sequence(const Sequence& seq);

  // -- Differential stepping (PROOFS) ---------------------------------------

  /// One differential frame: seeds every node value from `good_values` (the
  /// good machine's settled values for this frame, broadcast in all slots),
  /// overlays the packed per-slot faulty flip-flop state, re-forces stuck
  /// sources, wakes the fault sites, and event-propagates only the disturbed
  /// cones.  Afterwards value() reads are consistent faulty values for every
  /// node, and next_state_packed() yields the faulty next state; the caller
  /// owns state persistence (clock() is not used in this mode).
  void apply_differential(const std::vector<PackedV3>& good_values,
                          std::span<const PackedV3> ff_state);

  /// Faulty next-state value of flip-flop `ff_index` after the current
  /// frame: the settled D-input value with the flip-flop's own input/output
  /// fault masks applied — exactly what clock() would latch.
  PackedV3 next_state_packed(std::size_t ff_index) const;

  /// The full node-value array (the good machine's per-frame recording that
  /// seeds apply_differential on the faulty machines).
  const std::vector<PackedV3>& node_values() const { return values_; }

  /// Number of gate evaluations performed since construction or the last
  /// reset_gate_evals() — the fault simulator's primary cost metric.
  std::uint64_t gate_evals() const { return gate_evals_; }
  void reset_gate_evals() { gate_evals_ = 0; }

  PackedV3 value(netlist::NodeId n) const { return values_[n]; }
  V3 scalar_value(netlist::NodeId n, unsigned slot = 0) const {
    return values_[n].get(slot);
  }

  /// Current state (one slot).
  State3 state(unsigned slot = 0) const;

  /// Number of flip-flops whose slot-`slot` value matches `desired`
  /// (desired kX always matches — "requires no particular value").
  unsigned state_match_count(const State3& desired, unsigned slot) const;

  /// Per-slot mask of "all flip-flops match `desired`".
  std::uint64_t state_match_mask(const State3& desired) const;

 private:
  struct Masks {
    std::uint64_t one = 0;   // slots forced to 1
    std::uint64_t zero = 0;  // slots forced to 0
  };

  static PackedV3 apply_masks(PackedV3 v, const Masks& m, std::uint64_t act) {
    const std::uint64_t one = m.one & act;
    const std::uint64_t zero = m.zero & act;
    const std::uint64_t touched = one | zero;
    v.v1 = (v.v1 & ~touched) | one;
    v.v0 = (v.v0 & ~touched) | zero;
    return v;
  }

  static std::uint64_t in_key(netlist::NodeId n, unsigned pin) {
    return (static_cast<std::uint64_t>(n) << 16) | pin;
  }

  bool evaluate(netlist::NodeId n);
  void force_source_overrides();
  void mark_dirty();

  const netlist::Circuit& circuit_;
  std::vector<PackedV3> values_;
  LevelQueue queue_;
  bool first_vector_ = true;
  std::uint64_t act_ = ~0ULL;        // current-frame override activity
  std::uint64_t act_latch_ = ~0ULL;  // next-frame (clocked Q) activity
  std::uint64_t gate_evals_ = 0;
  // Scratch for the input-override slow path of evaluate(), sized to the
  // widest gate once so no evaluation allocates.
  std::vector<PackedV3> eval_ins_;
  std::vector<netlist::NodeId> eval_idx_;

  std::unordered_map<netlist::NodeId, Masks> out_over_;
  std::unordered_map<std::uint64_t, Masks> in_over_;
  std::vector<char> node_has_in_over_;
  // Overridden nodes that are not evaluated combinationally (PIs, DFF
  // outputs, constants) must be re-forced whenever their value is set.
  std::vector<netlist::NodeId> overridden_sources_;
};

}  // namespace gatpg::sim
