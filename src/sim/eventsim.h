// Level-ordered event scheduling for selective-trace (event-driven)
// simulation.
//
// All simulators in the library share this queue: nodes are bucketed by
// logic level and drained in level order, so every gate is evaluated at most
// once per vector even under heavy event activity.  The drain callback
// returns whether the node's value changed; fanout gates of changed nodes
// are scheduled automatically.
#pragma once

#include <vector>

#include "netlist/circuit.h"

namespace gatpg::sim {

class LevelQueue {
 public:
  explicit LevelQueue(const netlist::Circuit& c)
      : circuit_(c),
        buckets_(c.max_level() + 2),
        queued_(c.node_count(), 0) {}

  /// Schedules a combinational node for evaluation (no-op if queued already
  /// or if the node is not combinational).
  void schedule(netlist::NodeId n) {
    if (queued_[n] || !netlist::is_combinational(circuit_.type(n))) return;
    queued_[n] = 1;
    buckets_[circuit_.level(n)].push_back(n);
  }

  /// Schedules the combinational fanouts of `n` (used to seed activity from
  /// changed sources: PIs, flip-flop outputs, fault sites).
  void schedule_fanouts(netlist::NodeId n) {
    for (netlist::NodeId out : circuit_.fanouts(n)) schedule(out);
  }

  /// Drains in level order.  `eval(NodeId) -> bool` evaluates the node and
  /// reports whether its value changed; on change, fanouts are scheduled.
  template <typename Eval>
  void drain(Eval&& eval) {
    for (std::size_t lvl = 0; lvl < buckets_.size(); ++lvl) {
      // Same-level insertions are impossible (fanouts are strictly deeper),
      // but deeper buckets grow while draining this one.
      auto& bucket = buckets_[lvl];
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        const netlist::NodeId n = bucket[i];
        queued_[n] = 0;
        if (eval(n)) schedule_fanouts(n);
      }
      bucket.clear();
    }
  }

  bool empty() const {
    for (const auto& b : buckets_) {
      if (!b.empty()) return false;
    }
    return true;
  }

 private:
  const netlist::Circuit& circuit_;
  std::vector<std::vector<netlist::NodeId>> buckets_;
  std::vector<char> queued_;
};

}  // namespace gatpg::sim
