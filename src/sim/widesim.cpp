#include "sim/widesim.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace gatpg::sim {

using netlist::GateType;
using netlist::NodeId;

WideSimulator::WideSimulator(const netlist::Circuit& c, unsigned words)
    : circuit_(c),
      kernels_(&wide_kernels()),
      nw_(words),
      row_(c.node_count()),
      queued_(c.node_count(), 0),
      node_has_in_over_(c.node_count(), 0) {
  if (words < 1 || words > kMaxWideWords) {
    throw std::invalid_argument("WideSimulator: width must be 1..8 words");
  }
  act_ = WideMask::ones(nw_, static_cast<std::size_t>(nw_) * 64);
  act_latch_ = act_;

  // Levelized topo layout: rows ordered by (level, NodeId) — sources and
  // flip-flops (level 0) first, then gates by ascending logic level, so the
  // full-evaluation pass and the level-ordered drain walk the planes
  // forward.  Counting sort keeps the layout deterministic.
  const std::size_t n_nodes = c.node_count();
  const std::size_t n_levels = static_cast<std::size_t>(c.max_level()) + 1;
  std::vector<std::uint32_t> level_count(n_levels + 1, 0);
  for (NodeId n = 0; n < n_nodes; ++n) ++level_count[c.level(n)];
  std::vector<std::uint32_t> level_pos(n_levels + 1, 0);
  for (std::size_t l = 1; l <= n_levels; ++l) {
    level_pos[l] = level_pos[l - 1] + level_count[l - 1];
  }
  for (NodeId n = 0; n < n_nodes; ++n) {
    row_[n] = level_pos[c.level(n)]++ * nw_;
  }
  plane1_.assign(n_nodes * nw_, 0);
  plane0_.assign(n_nodes * nw_, 0);

  // Bump-allocated level queue: per-level capacity = combinational node
  // count at that level (each node is queued at most once per drain).
  std::vector<std::uint32_t> comb_count(n_levels + 1, 0);
  std::size_t n_comb = 0;
  std::size_t max_fanin = 1;
  for (NodeId n = 0; n < n_nodes; ++n) {
    max_fanin = std::max(max_fanin, c.fanin_count(n));
    if (netlist::is_combinational(c.type(n))) {
      ++comb_count[c.level(n)];
      ++n_comb;
    }
  }
  qoff_.assign(n_levels + 1, 0);
  for (std::size_t l = 1; l <= n_levels; ++l) {
    qoff_[l] = qoff_[l - 1] + comb_count[l - 1];
  }
  qfill_.assign(n_levels + 1, 0);
  qbuf_.resize(n_comb);

  fin1_.resize(max_fanin);
  fin0_.resize(max_fanin);
  ovr1_.resize(max_fanin * nw_);
  ovr0_.resize(max_fanin * nw_);
  out1_.resize(nw_);
  out0_.resize(nw_);
  ff_next_.resize(c.flip_flops().size() * nw_ * 2);

  reset();
}

void WideSimulator::broadcast_into(NodeId n, V3 v) {
  std::uint64_t* r1 = plane1_.data() + row_[n];
  std::uint64_t* r0 = plane0_.data() + row_[n];
  const std::uint64_t w1 = v == V3::k1 ? ~0ULL : 0;
  const std::uint64_t w0 = v == V3::k0 ? ~0ULL : 0;
  for (unsigned w = 0; w < nw_; ++w) {
    r1[w] = w1;
    r0[w] = w0;
  }
}

void WideSimulator::reset() {
  std::fill(plane1_.begin(), plane1_.end(), 0);
  std::fill(plane0_.begin(), plane0_.end(), 0);
  for (NodeId n = 0; n < circuit_.node_count(); ++n) {
    if (circuit_.type(n) == GateType::kConst0) {
      broadcast_into(n, V3::k0);
    } else if (circuit_.type(n) == GateType::kConst1) {
      broadcast_into(n, V3::k1);
    }
  }
  force_source_overrides();
  first_vector_ = true;
}

void WideSimulator::set_state(const State3& state) {
  const auto ffs = circuit_.flip_flops();
  if (state.size() != ffs.size()) {
    throw std::invalid_argument("set_state: state arity mismatch");
  }
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    broadcast_into(ffs[i], state[i]);
  }
  force_source_overrides();
  first_vector_ = true;
}

void WideSimulator::set_ff_rows(std::size_t ff_index, const std::uint64_t* r1,
                                const std::uint64_t* r0) {
  const NodeId ff = circuit_.flip_flops()[ff_index];
  std::copy(r1, r1 + nw_, plane1_.data() + row_[ff]);
  std::copy(r0, r0 + nw_, plane0_.data() + row_[ff]);
  force_source_overrides();
  first_vector_ = true;
}

void WideSimulator::add_output_override(NodeId n, bool stuck,
                                        const WideMask& slot_mask) {
  WMasks& m = out_over_[n];
  if (stuck) {
    m.one |= slot_mask;
    m.zero.remove(slot_mask);
  } else {
    m.zero |= slot_mask;
    m.one.remove(slot_mask);
  }
  if (!netlist::is_combinational(circuit_.type(n))) {
    overridden_sources_.push_back(n);
    force_source_overrides();
  }
  mark_dirty();
}

void WideSimulator::add_input_override(NodeId n, unsigned pin, bool stuck,
                                       const WideMask& slot_mask) {
  WMasks& m = in_over_[in_key(n, pin)];
  if (stuck) {
    m.one |= slot_mask;
    m.zero.remove(slot_mask);
  } else {
    m.zero |= slot_mask;
    m.one.remove(slot_mask);
  }
  node_has_in_over_[n] = 1;
  mark_dirty();
}

void WideSimulator::clear_overrides() {
  out_over_.clear();
  in_over_.clear();
  std::fill(node_has_in_over_.begin(), node_has_in_over_.end(), 0);
  overridden_sources_.clear();
  act_ = WideMask::ones(nw_, static_cast<std::size_t>(nw_) * 64);
  act_latch_ = act_;
  mark_dirty();
}

void WideSimulator::set_override_activity(const WideMask& act) {
  if (act.w == act_.w) return;
  act_ = act;
  mark_dirty();
}

void WideSimulator::set_latch_override_activity(const WideMask& act) {
  if (act.w == act_latch_.w) return;
  act_latch_ = act;
  mark_dirty();
}

void WideSimulator::retain_override_slots(const WideMask& slot_mask) {
  for (auto& [n, m] : out_over_) {
    m.one &= slot_mask;
    m.zero &= slot_mask;
  }
  for (auto& [key, m] : in_over_) {
    m.one &= slot_mask;
    m.zero &= slot_mask;
  }
}

void WideSimulator::apply_masks_rows(std::uint64_t* r1, std::uint64_t* r0,
                                     const WMasks& m,
                                     const WideMask& act) const {
  for (unsigned w = 0; w < nw_; ++w) {
    const std::uint64_t one = m.one.w[w] & act.w[w];
    const std::uint64_t zero = m.zero.w[w] & act.w[w];
    const std::uint64_t touched = one | zero;
    r1[w] = (r1[w] & ~touched) | one;
    r0[w] = (r0[w] & ~touched) | zero;
  }
}

bool WideSimulator::rows_equal_masked(const std::uint64_t* r1,
                                      const std::uint64_t* r0, const WMasks& m,
                                      const WideMask& act) const {
  // True when applying `m` to (r1, r0) would change nothing.
  std::uint64_t diff = 0;
  for (unsigned w = 0; w < nw_; ++w) {
    const std::uint64_t one = m.one.w[w] & act.w[w];
    const std::uint64_t zero = m.zero.w[w] & act.w[w];
    const std::uint64_t touched = one | zero;
    diff |= ((r1[w] & ~touched) | one) ^ r1[w];
    diff |= ((r0[w] & ~touched) | zero) ^ r0[w];
  }
  return diff == 0;
}

void WideSimulator::force_source_overrides() {
  for (NodeId n : overridden_sources_) {
    apply_masks_rows(plane1_.data() + row_[n], plane0_.data() + row_[n],
                     out_over_[n], act_);
  }
}

void WideSimulator::schedule(NodeId n) {
  if (queued_[n] || !netlist::is_combinational(circuit_.type(n))) return;
  queued_[n] = 1;
  const std::uint32_t lvl = circuit_.level(n);
  qbuf_[qoff_[lvl] + qfill_[lvl]++] = n;
}

void WideSimulator::schedule_fanouts(NodeId n) {
  for (NodeId out : circuit_.fanouts(n)) schedule(out);
}

void WideSimulator::drain() {
  // Same-level insertions are impossible (fanouts are strictly deeper), but
  // deeper buckets grow while draining this one.
  for (std::size_t lvl = 0; lvl < qfill_.size(); ++lvl) {
    const std::uint32_t base = qoff_[lvl];
    for (std::uint32_t i = 0; i < qfill_[lvl]; ++i) {
      const NodeId n = qbuf_[base + i];
      queued_[n] = 0;
      if (evaluate(n)) schedule_fanouts(n);
    }
    qfill_[lvl] = 0;
  }
}

bool WideSimulator::evaluate(NodeId n) {
  ++gate_evals_;
  const auto fanins = circuit_.fanins(n);
  const std::size_t nf = fanins.size();
  if (node_has_in_over_[n]) {
    // Slow path: this gate carries injected input-pin faults; gather fanin
    // rows with the per-pin masks applied into the preallocated scratch.
    for (std::size_t i = 0; i < nf; ++i) {
      std::uint64_t* s1 = ovr1_.data() + i * nw_;
      std::uint64_t* s0 = ovr0_.data() + i * nw_;
      std::copy_n(plane1_.data() + row_[fanins[i]], nw_, s1);
      std::copy_n(plane0_.data() + row_[fanins[i]], nw_, s0);
      auto it = in_over_.find(in_key(n, static_cast<unsigned>(i)));
      if (it != in_over_.end()) apply_masks_rows(s1, s0, it->second, act_);
      fin1_[i] = s1;
      fin0_[i] = s0;
    }
  } else {
    for (std::size_t i = 0; i < nf; ++i) {
      fin1_[i] = plane1_.data() + row_[fanins[i]];
      fin0_[i] = plane0_.data() + row_[fanins[i]];
    }
  }
  kernels_->eval[static_cast<std::size_t>(circuit_.type(n))](
      fin1_.data(), fin0_.data(), out1_.data(), out0_.data(), nf, nw_);
  if (!out_over_.empty()) {
    auto it = out_over_.find(n);
    if (it != out_over_.end()) {
      apply_masks_rows(out1_.data(), out0_.data(), it->second, act_);
    }
  }
  std::uint64_t* r1 = plane1_.data() + row_[n];
  std::uint64_t* r0 = plane0_.data() + row_[n];
  std::uint64_t diff = 0;
  for (unsigned w = 0; w < nw_; ++w) {
    diff |= (r1[w] ^ out1_[w]) | (r0[w] ^ out0_[w]);
  }
  if (diff == 0) return false;
  std::copy_n(out1_.data(), nw_, r1);
  std::copy_n(out0_.data(), nw_, r0);
  return true;
}

void WideSimulator::full_evaluate() {
  for (NodeId g : circuit_.topo_order()) evaluate(g);
}

void WideSimulator::apply_wide(std::span<const std::uint64_t> pi1,
                               std::span<const std::uint64_t> pi0) {
  const auto pis = circuit_.primary_inputs();
  if (pi1.size() != pis.size() * nw_ || pi0.size() != pis.size() * nw_) {
    throw std::invalid_argument("apply_wide: PI arity mismatch");
  }
  if (first_vector_) {
    for (std::size_t i = 0; i < pis.size(); ++i) {
      std::copy_n(pi1.data() + i * nw_, nw_, plane1_.data() + row_[pis[i]]);
      std::copy_n(pi0.data() + i * nw_, nw_, plane0_.data() + row_[pis[i]]);
    }
    force_source_overrides();
    full_evaluate();
    first_vector_ = false;
    return;
  }
  for (std::size_t i = 0; i < pis.size(); ++i) {
    std::copy_n(pi1.data() + i * nw_, nw_, out1_.data());
    std::copy_n(pi0.data() + i * nw_, nw_, out0_.data());
    auto it = out_over_.find(pis[i]);
    if (it != out_over_.end()) {
      apply_masks_rows(out1_.data(), out0_.data(), it->second, act_);
    }
    std::uint64_t* r1 = plane1_.data() + row_[pis[i]];
    std::uint64_t* r0 = plane0_.data() + row_[pis[i]];
    std::uint64_t diff = 0;
    for (unsigned w = 0; w < nw_; ++w) {
      diff |= (r1[w] ^ out1_[w]) | (r0[w] ^ out0_[w]);
    }
    if (diff == 0) continue;
    std::copy_n(out1_.data(), nw_, r1);
    std::copy_n(out0_.data(), nw_, r0);
    schedule_fanouts(pis[i]);
  }
  drain();
}

void WideSimulator::apply_vector(const Vector3& v) {
  std::vector<std::uint64_t> pi1(v.size() * nw_), pi0(v.size() * nw_);
  for (std::size_t i = 0; i < v.size(); ++i) {
    const std::uint64_t w1 = v[i] == V3::k1 ? ~0ULL : 0;
    const std::uint64_t w0 = v[i] == V3::k0 ? ~0ULL : 0;
    for (unsigned w = 0; w < nw_; ++w) {
      pi1[i * nw_ + w] = w1;
      pi0[i * nw_ + w] = w0;
    }
  }
  apply_wide(pi1, pi0);
}

void WideSimulator::clock() {
  const auto ffs = circuit_.flip_flops();
  std::uint64_t* next1 = ff_next_.data();
  std::uint64_t* next0 = ff_next_.data() + ffs.size() * nw_;
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    next_state_rows(i, next1 + i * nw_, next0 + i * nw_);
  }
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    std::uint64_t* r1 = plane1_.data() + row_[ffs[i]];
    std::uint64_t* r0 = plane0_.data() + row_[ffs[i]];
    std::uint64_t diff = 0;
    for (unsigned w = 0; w < nw_; ++w) {
      diff |= (r1[w] ^ next1[i * nw_ + w]) | (r0[w] ^ next0[i * nw_ + w]);
    }
    if (diff == 0) continue;
    std::copy_n(next1 + i * nw_, nw_, r1);
    std::copy_n(next0 + i * nw_, nw_, r0);
    schedule_fanouts(ffs[i]);
  }
  // Settle the combinational logic so post-clock reads are consistent with
  // the new state (costs nothing when the next apply would drain anyway).
  drain();
}

void WideSimulator::next_state_rows(std::size_t ff_index, std::uint64_t* o1,
                                    std::uint64_t* o0) const {
  const NodeId ff = circuit_.flip_flops()[ff_index];
  const NodeId d = circuit_.fanins(ff)[0];
  std::copy_n(plane1_.data() + row_[d], nw_, o1);
  std::copy_n(plane0_.data() + row_[d], nw_, o0);
  // D-pin forcing samples at the edge ending the current frame
  // (current-frame activity); Q forcing lives in the frame the latch feeds
  // (latch activity, advanced one frame ahead by the caller).
  if (node_has_in_over_[ff]) {
    auto it = in_over_.find(in_key(ff, 0));
    if (it != in_over_.end()) apply_masks_rows(o1, o0, it->second, act_);
  }
  auto out = out_over_.find(ff);
  if (out != out_over_.end()) apply_masks_rows(o1, o0, out->second, act_latch_);
}

void WideSimulator::apply_differential(
    const std::vector<PackedV3>& good_values,
    std::span<const std::uint64_t> ff1, std::span<const std::uint64_t> ff0) {
  if (good_values.size() != circuit_.node_count()) {
    throw std::invalid_argument("apply_differential: node arity mismatch");
  }
  // Seed every node from the good machine's slot-uniform frame.  Uniformity
  // (every slot of a PackedV3 carries the same value) holds because the
  // good machine only ever sees broadcast vectors and carries no overrides;
  // it makes each plane word 0 or ~0, so replication is an exact broadcast.
  for (NodeId n = 0; n < circuit_.node_count(); ++n) {
    const PackedV3 v = good_values[n];
    assert((v.v1 == 0 || v.v1 == ~0ULL) && (v.v0 == 0 || v.v0 == ~0ULL));
    std::uint64_t* r1 = plane1_.data() + row_[n];
    std::uint64_t* r0 = plane0_.data() + row_[n];
    for (unsigned w = 0; w < nw_; ++w) {
      r1[w] = v.v1;
      r0[w] = v.v0;
    }
  }

  // Overlay the faulty flip-flop state; differing flip-flops disturb their
  // fanout cones.
  const auto ffs = circuit_.flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    std::uint64_t* r1 = plane1_.data() + row_[ffs[i]];
    std::uint64_t* r0 = plane0_.data() + row_[ffs[i]];
    const std::uint64_t* s1 = ff1.data() + i * nw_;
    const std::uint64_t* s0 = ff0.data() + i * nw_;
    std::uint64_t diff = 0;
    for (unsigned w = 0; w < nw_; ++w) {
      diff |= (r1[w] ^ s1[w]) | (r0[w] ^ s0[w]);
    }
    if (diff == 0) continue;
    std::copy_n(s1, nw_, r1);
    std::copy_n(s0, nw_, r0);
    schedule_fanouts(ffs[i]);
  }

  // Re-force stuck sources (PI/flip-flop/constant output faults); a forced
  // value differing from the good baseline is a difference to propagate.
  for (NodeId n : overridden_sources_) {
    const WMasks& m = out_over_[n];
    std::uint64_t* r1 = plane1_.data() + row_[n];
    std::uint64_t* r0 = plane0_.data() + row_[n];
    if (rows_equal_masked(r1, r0, m, act_)) continue;
    apply_masks_rows(r1, r0, m, act_);
    schedule_fanouts(n);
  }

  // Wake the combinational fault sites whose forced value actually differs
  // from the good baseline this frame.
  for (const auto& [n, masks] : out_over_) {
    if (!netlist::is_combinational(circuit_.type(n))) continue;
    if (rows_equal_masked(plane1_.data() + row_[n], plane0_.data() + row_[n],
                          masks, act_)) {
      continue;
    }
    schedule(n);
  }
  for (const auto& [key, masks] : in_over_) {
    const NodeId n = static_cast<NodeId>(key >> 16);
    const NodeId src =
        circuit_.fanins(n)[static_cast<std::size_t>(key & 0xFFFF)];
    if (rows_equal_masked(plane1_.data() + row_[src],
                          plane0_.data() + row_[src], masks, act_)) {
      continue;
    }
    schedule(n);
  }

  drain();
  first_vector_ = false;
}

State3 WideSimulator::state(unsigned slot) const {
  const auto ffs = circuit_.flip_flops();
  State3 s(ffs.size());
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    s[i] = get(ffs[i], slot);
  }
  return s;
}

unsigned WideSimulator::state_match_count(const State3& desired,
                                          unsigned slot) const {
  const auto ffs = circuit_.flip_flops();
  unsigned count = 0;
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    if (desired[i] == V3::kX || desired[i] == get(ffs[i], slot)) ++count;
  }
  return count;
}

WideMask WideSimulator::state_match_mask(const State3& desired) const {
  const auto ffs = circuit_.flip_flops();
  WideMask mask = WideMask::ones(nw_, slots());
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    if (desired[i] == V3::kX) continue;
    const std::uint64_t* r =
        desired[i] == V3::k1 ? row1(ffs[i]) : row0(ffs[i]);
    std::uint64_t any = 0;
    for (unsigned w = 0; w < nw_; ++w) {
      mask.w[w] &= r[w];
      any |= mask.w[w];
    }
    if (any == 0) break;
  }
  return mask;
}

}  // namespace gatpg::sim
