// AVX-512 (512-bit) wide gate kernels.  Compiled with -mavx512f only when
// the build enables GATPG_HAVE_AVX512; otherwise a stub.  The XOR family
// uses vpternlogq to fuse the two-AND-one-OR plane combination into one
// instruction per plane.

#include "sim/wide.h"

#if defined(GATPG_HAVE_AVX512) && defined(__AVX512F__)

#include <immintrin.h>

namespace gatpg::sim {

namespace {

using u64 = std::uint64_t;

void k_buf(const u64* const* in1, const u64* const* in0, u64* o1, u64* o0,
           std::size_t, unsigned nw) {
  unsigned w = 0;
  for (; w + 8 <= nw; w += 8) {
    _mm512_storeu_si512(o1 + w, _mm512_loadu_si512(in1[0] + w));
    _mm512_storeu_si512(o0 + w, _mm512_loadu_si512(in0[0] + w));
  }
  for (; w < nw; ++w) {
    o1[w] = in1[0][w];
    o0[w] = in0[0][w];
  }
}

void k_not(const u64* const* in1, const u64* const* in0, u64* o1, u64* o0,
           std::size_t nf, unsigned nw) {
  k_buf(in0, in1, o1, o0, nf, nw);
}

template <bool kInvert>
void k_and(const u64* const* in1, const u64* const* in0, u64* o1, u64* o0,
           std::size_t nf, unsigned nw) {
  unsigned w = 0;
  for (; w + 8 <= nw; w += 8) {
    __m512i a1 = _mm512_loadu_si512(in1[0] + w);
    __m512i a0 = _mm512_loadu_si512(in0[0] + w);
    for (std::size_t i = 1; i < nf; ++i) {
      a1 = _mm512_and_si512(a1, _mm512_loadu_si512(in1[i] + w));
      a0 = _mm512_or_si512(a0, _mm512_loadu_si512(in0[i] + w));
    }
    _mm512_storeu_si512(o1 + w, kInvert ? a0 : a1);
    _mm512_storeu_si512(o0 + w, kInvert ? a1 : a0);
  }
  for (; w < nw; ++w) {
    u64 a1 = in1[0][w];
    u64 a0 = in0[0][w];
    for (std::size_t i = 1; i < nf; ++i) {
      a1 &= in1[i][w];
      a0 |= in0[i][w];
    }
    o1[w] = kInvert ? a0 : a1;
    o0[w] = kInvert ? a1 : a0;
  }
}

template <bool kInvert>
void k_or(const u64* const* in1, const u64* const* in0, u64* o1, u64* o0,
          std::size_t nf, unsigned nw) {
  k_and<kInvert>(in0, in1, o0, o1, nf, nw);
}

template <bool kInvert>
void k_xor(const u64* const* in1, const u64* const* in0, u64* o1, u64* o0,
           std::size_t nf, unsigned nw) {
  unsigned w = 0;
  for (; w + 8 <= nw; w += 8) {
    __m512i a1 = _mm512_loadu_si512(in1[0] + w);
    __m512i a0 = _mm512_loadu_si512(in0[0] + w);
    for (std::size_t i = 1; i < nf; ++i) {
      const __m512i b1 = _mm512_loadu_si512(in1[i] + w);
      const __m512i b0 = _mm512_loadu_si512(in0[i] + w);
      // r = (a1 & b0) | (a0 & b1): vpternlog with a1,b0 paired via two
      // ternary ops — (a & b) | c pattern, imm 0xEA = (a&b)|c.
      const __m512i r1 =
          _mm512_ternarylogic_epi64(a1, b0, _mm512_and_si512(a0, b1), 0xEA);
      const __m512i r0 =
          _mm512_ternarylogic_epi64(a1, b1, _mm512_and_si512(a0, b0), 0xEA);
      a1 = r1;
      a0 = r0;
    }
    _mm512_storeu_si512(o1 + w, kInvert ? a0 : a1);
    _mm512_storeu_si512(o0 + w, kInvert ? a1 : a0);
  }
  for (; w < nw; ++w) {
    u64 a1 = in1[0][w];
    u64 a0 = in0[0][w];
    for (std::size_t i = 1; i < nf; ++i) {
      const u64 b1 = in1[i][w];
      const u64 b0 = in0[i][w];
      const u64 r1 = (a1 & b0) | (a0 & b1);
      const u64 r0 = (a1 & b1) | (a0 & b0);
      a1 = r1;
      a0 = r0;
    }
    o1[w] = kInvert ? a0 : a1;
    o0[w] = kInvert ? a1 : a0;
  }
}

const WideKernels kAvx512Kernels = {
    SimdBackend::kAvx512,
    "avx512",
    {
        nullptr,         // kInput
        &k_buf,          // kBuf
        &k_not,          // kNot
        &k_and<false>,   // kAnd
        &k_and<true>,    // kNand
        &k_or<false>,    // kOr
        &k_or<true>,     // kNor
        &k_xor<false>,   // kXor
        &k_xor<true>,    // kXnor
        nullptr,         // kDff
        nullptr,         // kConst0
        nullptr,         // kConst1
    },
};

}  // namespace

const WideKernels* wide_kernels_avx512() {
  return __builtin_cpu_supports("avx512f") ? &kAvx512Kernels : nullptr;
}

}  // namespace gatpg::sim

#else  // !GATPG_HAVE_AVX512

namespace gatpg::sim {

const WideKernels* wide_kernels_avx512() { return nullptr; }

}  // namespace gatpg::sim

#endif
