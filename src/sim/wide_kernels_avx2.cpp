// AVX2 (256-bit) wide gate kernels.  This translation unit is compiled with
// -mavx2 only when the build enables GATPG_HAVE_AVX2 (see the GATPG_SIMD
// CMake option); otherwise it compiles to a stub so the dispatch in
// wide_kernels.cpp needs no build-time branching.  Runtime CPU support is
// checked here, behind the same single dispatch point.

#include "sim/wide.h"

#if defined(GATPG_HAVE_AVX2) && defined(__AVX2__)

#include <immintrin.h>

namespace gatpg::sim {

namespace {

using u64 = std::uint64_t;

// Widths are 1..kMaxWideWords words; full 4-word (256-bit) chunks run in
// vector registers, the sub-chunk tail falls back to scalar words.  Loads
// are unaligned (the SoA plane rows are 8-byte aligned only).

inline void tail_copy(const u64* a1, const u64* a0, u64* o1, u64* o0,
                      unsigned from, unsigned nw) {
  for (unsigned w = from; w < nw; ++w) {
    o1[w] = a1[w];
    o0[w] = a0[w];
  }
}

void k_buf(const u64* const* in1, const u64* const* in0, u64* o1, u64* o0,
           std::size_t, unsigned nw) {
  unsigned w = 0;
  for (; w + 4 <= nw; w += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(o1 + w),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in1[0] + w)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(o0 + w),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in0[0] + w)));
  }
  tail_copy(in1[0], in0[0], o1, o0, w, nw);
}

void k_not(const u64* const* in1, const u64* const* in0, u64* o1, u64* o0,
           std::size_t nf, unsigned nw) {
  k_buf(in0, in1, o1, o0, nf, nw);
}

template <bool kInvert>
void k_and(const u64* const* in1, const u64* const* in0, u64* o1, u64* o0,
           std::size_t nf, unsigned nw) {
  unsigned w = 0;
  for (; w + 4 <= nw; w += 4) {
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in1[0] + w));
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in0[0] + w));
    for (std::size_t i = 1; i < nf; ++i) {
      a1 = _mm256_and_si256(
          a1, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in1[i] + w)));
      a0 = _mm256_or_si256(
          a0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in0[i] + w)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(o1 + w), kInvert ? a0 : a1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(o0 + w), kInvert ? a1 : a0);
  }
  for (; w < nw; ++w) {
    u64 a1 = in1[0][w];
    u64 a0 = in0[0][w];
    for (std::size_t i = 1; i < nf; ++i) {
      a1 &= in1[i][w];
      a0 |= in0[i][w];
    }
    o1[w] = kInvert ? a0 : a1;
    o0[w] = kInvert ? a1 : a0;
  }
}

template <bool kInvert>
void k_or(const u64* const* in1, const u64* const* in0, u64* o1, u64* o0,
          std::size_t nf, unsigned nw) {
  // OR over (v1, v0) is AND over (v0, v1): swap input planes, swap outputs.
  k_and<kInvert>(in0, in1, o0, o1, nf, nw);
}

template <bool kInvert>
void k_xor(const u64* const* in1, const u64* const* in0, u64* o1, u64* o0,
           std::size_t nf, unsigned nw) {
  unsigned w = 0;
  for (; w + 4 <= nw; w += 4) {
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in1[0] + w));
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in0[0] + w));
    for (std::size_t i = 1; i < nf; ++i) {
      const __m256i b1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in1[i] + w));
      const __m256i b0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in0[i] + w));
      const __m256i r1 = _mm256_or_si256(_mm256_and_si256(a1, b0),
                                         _mm256_and_si256(a0, b1));
      const __m256i r0 = _mm256_or_si256(_mm256_and_si256(a1, b1),
                                         _mm256_and_si256(a0, b0));
      a1 = r1;
      a0 = r0;
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(o1 + w), kInvert ? a0 : a1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(o0 + w), kInvert ? a1 : a0);
  }
  for (; w < nw; ++w) {
    u64 a1 = in1[0][w];
    u64 a0 = in0[0][w];
    for (std::size_t i = 1; i < nf; ++i) {
      const u64 b1 = in1[i][w];
      const u64 b0 = in0[i][w];
      const u64 r1 = (a1 & b0) | (a0 & b1);
      const u64 r0 = (a1 & b1) | (a0 & b0);
      a1 = r1;
      a0 = r0;
    }
    o1[w] = kInvert ? a0 : a1;
    o0[w] = kInvert ? a1 : a0;
  }
}

const WideKernels kAvx2Kernels = {
    SimdBackend::kAvx2,
    "avx2",
    {
        nullptr,         // kInput
        &k_buf,          // kBuf
        &k_not,          // kNot
        &k_and<false>,   // kAnd
        &k_and<true>,    // kNand
        &k_or<false>,    // kOr
        &k_or<true>,     // kNor
        &k_xor<false>,   // kXor
        &k_xor<true>,    // kXnor
        nullptr,         // kDff
        nullptr,         // kConst0
        nullptr,         // kConst1
    },
};

}  // namespace

const WideKernels* wide_kernels_avx2() {
  return __builtin_cpu_supports("avx2") ? &kAvx2Kernels : nullptr;
}

}  // namespace gatpg::sim

#else  // !GATPG_HAVE_AVX2

namespace gatpg::sim {

const WideKernels* wide_kernels_avx2() { return nullptr; }

}  // namespace gatpg::sim

#endif
