#include "sim/seqsim.h"

#include <algorithm>
#include <stdexcept>

namespace gatpg::sim {

using netlist::GateType;
using netlist::NodeId;

SequenceSimulator::SequenceSimulator(const netlist::Circuit& c)
    : circuit_(c),
      values_(c.node_count()),
      queue_(c),
      node_has_in_over_(c.node_count(), 0) {
  std::size_t max_fanin = 1;
  for (NodeId n = 0; n < c.node_count(); ++n) {
    max_fanin = std::max(max_fanin, c.fanin_count(n));
  }
  eval_ins_.resize(max_fanin);
  eval_idx_.resize(max_fanin);
  for (std::size_t i = 0; i < max_fanin; ++i) {
    eval_idx_[i] = static_cast<NodeId>(i);
  }
  reset();
}

void SequenceSimulator::reset() {
  for (auto& v : values_) v = PackedV3::all_x();
  for (NodeId n = 0; n < circuit_.node_count(); ++n) {
    if (circuit_.type(n) == GateType::kConst0) {
      values_[n] = PackedV3::broadcast(V3::k0);
    } else if (circuit_.type(n) == GateType::kConst1) {
      values_[n] = PackedV3::broadcast(V3::k1);
    }
  }
  force_source_overrides();
  first_vector_ = true;
}

void SequenceSimulator::set_state(const State3& state) {
  const auto ffs = circuit_.flip_flops();
  if (state.size() != ffs.size()) {
    throw std::invalid_argument("set_state: state arity mismatch");
  }
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    values_[ffs[i]] = PackedV3::broadcast(state[i]);
  }
  force_source_overrides();
  first_vector_ = true;
}

void SequenceSimulator::set_ff_packed(std::size_t ff_index, PackedV3 value) {
  values_[circuit_.flip_flops()[ff_index]] = value;
  force_source_overrides();
  first_vector_ = true;
}

void SequenceSimulator::add_output_override(NodeId n, bool stuck,
                                            std::uint64_t slot_mask) {
  Masks& m = out_over_[n];
  if (stuck) {
    m.one |= slot_mask;
    m.zero &= ~slot_mask;
  } else {
    m.zero |= slot_mask;
    m.one &= ~slot_mask;
  }
  if (!netlist::is_combinational(circuit_.type(n))) {
    overridden_sources_.push_back(n);
    force_source_overrides();
  }
  mark_dirty();
}

void SequenceSimulator::add_input_override(NodeId n, unsigned pin, bool stuck,
                                           std::uint64_t slot_mask) {
  Masks& m = in_over_[in_key(n, pin)];
  if (stuck) {
    m.one |= slot_mask;
    m.zero &= ~slot_mask;
  } else {
    m.zero |= slot_mask;
    m.one &= ~slot_mask;
  }
  node_has_in_over_[n] = 1;
  mark_dirty();
}

void SequenceSimulator::clear_overrides() {
  out_over_.clear();
  in_over_.clear();
  std::fill(node_has_in_over_.begin(), node_has_in_over_.end(), 0);
  overridden_sources_.clear();
  act_ = ~0ULL;
  act_latch_ = ~0ULL;
  mark_dirty();
}

void SequenceSimulator::retain_override_slots(std::uint64_t slot_mask) {
  for (auto& [n, m] : out_over_) {
    m.one &= slot_mask;
    m.zero &= slot_mask;
  }
  for (auto& [key, m] : in_over_) {
    m.one &= slot_mask;
    m.zero &= slot_mask;
  }
}

void SequenceSimulator::mark_dirty() { first_vector_ = true; }

void SequenceSimulator::force_source_overrides() {
  for (NodeId n : overridden_sources_) {
    values_[n] = apply_masks(values_[n], out_over_[n], act_);
  }
}

bool SequenceSimulator::evaluate(NodeId n) {
  ++gate_evals_;
  // Branchless gate dispatch: one indexed call per evaluation instead of a
  // switch inside the slot loop (see kPackedGateTable in sim/logic3.h).
  const PackedGateFn fn = packed_gate_fn(circuit_.type(n));
  const auto fanins = circuit_.fanins(n);
  PackedV3 next;
  if (node_has_in_over_[n]) {
    // Slow path: this gate carries injected input-pin faults; fetch fanin
    // values with the per-pin masks applied into the preallocated scratch
    // (sized once at construction — never reallocates).
    for (std::size_t i = 0; i < fanins.size(); ++i) {
      PackedV3 v = values_[fanins[i]];
      auto it = in_over_.find(in_key(n, static_cast<unsigned>(i)));
      if (it != in_over_.end()) v = apply_masks(v, it->second, act_);
      eval_ins_[i] = v;
    }
    next = fn(eval_ins_.data(), eval_idx_.data(), fanins.size());
  } else {
    next = fn(values_.data(), fanins.data(), fanins.size());
  }
  if (!out_over_.empty()) {
    auto it = out_over_.find(n);
    if (it != out_over_.end()) next = apply_masks(next, it->second, act_);
  }
  if (next == values_[n]) return false;
  values_[n] = next;
  return true;
}

void SequenceSimulator::apply_packed(const std::vector<PackedV3>& pi_values) {
  const auto pis = circuit_.primary_inputs();
  if (pi_values.size() != pis.size()) {
    throw std::invalid_argument("apply_packed: PI arity mismatch");
  }
  if (first_vector_) {
    // Full evaluation establishes a consistent baseline; afterwards only
    // events are traced.
    for (std::size_t i = 0; i < pis.size(); ++i) values_[pis[i]] = pi_values[i];
    force_source_overrides();
    for (NodeId g : circuit_.topo_order()) evaluate(g);
    first_vector_ = false;
    return;
  }
  for (std::size_t i = 0; i < pis.size(); ++i) {
    PackedV3 v = pi_values[i];
    auto it = out_over_.find(pis[i]);
    if (it != out_over_.end()) v = apply_masks(v, it->second, act_);
    if (values_[pis[i]] == v) continue;
    values_[pis[i]] = v;
    queue_.schedule_fanouts(pis[i]);
  }
  queue_.drain([this](NodeId n) { return evaluate(n); });
}

void SequenceSimulator::apply_vector(const Vector3& v) {
  std::vector<PackedV3> packed(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    packed[i] = PackedV3::broadcast(v[i]);
  }
  apply_packed(packed);
}

void SequenceSimulator::clock() {
  const auto ffs = circuit_.flip_flops();
  std::vector<PackedV3> next(ffs.size());
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    const NodeId ff = ffs[i];
    PackedV3 d = values_[circuit_.fanins(ff)[0]];
    // The D-pin forcing is sampled at the edge ending the current frame
    // (current-frame activity); the Q forcing lives in the frame the latch
    // feeds (latch activity, advanced one frame ahead by the caller).
    if (node_has_in_over_[ff]) {
      auto it = in_over_.find(in_key(ff, 0));
      if (it != in_over_.end()) d = apply_masks(d, it->second, act_);
    }
    auto out = out_over_.find(ff);
    if (out != out_over_.end()) d = apply_masks(d, out->second, act_latch_);
    next[i] = d;
  }
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    if (values_[ffs[i]] == next[i]) continue;
    values_[ffs[i]] = next[i];
    queue_.schedule_fanouts(ffs[i]);
  }
  // Settle the combinational logic so post-clock reads are consistent with
  // the new state (costs nothing when the next apply would drain anyway).
  queue_.drain([this](NodeId n) { return evaluate(n); });
}

void SequenceSimulator::apply_differential(
    const std::vector<PackedV3>& good_values,
    std::span<const PackedV3> ff_state) {
  if (good_values.size() != values_.size()) {
    throw std::invalid_argument("apply_differential: node arity mismatch");
  }
  values_ = good_values;

  // Overlay the faulty flip-flop state; differing flip-flops disturb their
  // fanout cones.
  const auto ffs = circuit_.flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    if (values_[ffs[i]] == ff_state[i]) continue;
    values_[ffs[i]] = ff_state[i];
    queue_.schedule_fanouts(ffs[i]);
  }

  // Re-force stuck sources (PI/flip-flop/constant output faults); a forced
  // value differing from the good baseline is a difference to propagate.
  for (NodeId n : overridden_sources_) {
    const PackedV3 forced = apply_masks(values_[n], out_over_[n], act_);
    if (forced == values_[n]) continue;
    values_[n] = forced;
    queue_.schedule_fanouts(n);
  }

  // Wake the combinational fault sites whose forced value actually differs
  // from the good baseline this frame (a word compare per site — much
  // cheaper than unconditionally re-evaluating every site's gate).
  for (const auto& [n, masks] : out_over_) {
    if (!netlist::is_combinational(circuit_.type(n))) continue;
    if (apply_masks(values_[n], masks, act_) == values_[n]) continue;
    queue_.schedule(n);
  }
  for (const auto& [key, masks] : in_over_) {
    const NodeId n = static_cast<NodeId>(key >> 16);
    const PackedV3 v =
        values_[circuit_.fanins(n)[static_cast<std::size_t>(key & 0xFFFF)]];
    if (apply_masks(v, masks, act_) == v) continue;
    queue_.schedule(n);
  }

  queue_.drain([this](NodeId n) { return evaluate(n); });
  first_vector_ = false;
}

PackedV3 SequenceSimulator::next_state_packed(std::size_t ff_index) const {
  const NodeId ff = circuit_.flip_flops()[ff_index];
  PackedV3 d = values_[circuit_.fanins(ff)[0]];
  if (node_has_in_over_[ff]) {
    auto it = in_over_.find(in_key(ff, 0));
    if (it != in_over_.end()) d = apply_masks(d, it->second, act_);
  }
  auto out = out_over_.find(ff);
  if (out != out_over_.end()) d = apply_masks(d, out->second, act_latch_);
  return d;
}

void SequenceSimulator::run_sequence(const Sequence& seq) {
  for (const auto& v : seq) {
    apply_vector(v);
    clock();
  }
}

State3 SequenceSimulator::state(unsigned slot) const {
  const auto ffs = circuit_.flip_flops();
  State3 s(ffs.size());
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    s[i] = values_[ffs[i]].get(slot);
  }
  return s;
}

unsigned SequenceSimulator::state_match_count(const State3& desired,
                                              unsigned slot) const {
  const auto ffs = circuit_.flip_flops();
  unsigned count = 0;
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    if (desired[i] == V3::kX || desired[i] == values_[ffs[i]].get(slot)) {
      ++count;
    }
  }
  return count;
}

std::uint64_t SequenceSimulator::state_match_mask(const State3& desired) const {
  const auto ffs = circuit_.flip_flops();
  std::uint64_t mask = ~0ULL;
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    if (desired[i] == V3::kX) continue;
    const PackedV3 v = values_[ffs[i]];
    mask &= desired[i] == V3::k1 ? v.v1 : v.v0;
    if (mask == 0) break;
  }
  return mask;
}

bool cube_subsumes(const State3& weaker, const State3& stronger) {
  for (std::size_t i = 0; i < weaker.size(); ++i) {
    if (weaker[i] != V3::kX && (i >= stronger.size() || stronger[i] != weaker[i])) {
      return false;
    }
  }
  return true;
}

unsigned cube_agreement(const State3& cube, const State3& state) {
  unsigned count = 0;
  const std::size_t n = std::min(cube.size(), state.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (cube[i] != V3::kX && cube[i] == state[i]) ++count;
  }
  return count;
}

bool cube_is_trivial(const State3& cube) {
  for (const V3 v : cube) {
    if (v != V3::kX) return false;
  }
  return true;
}

}  // namespace gatpg::sim
