// Minimal streaming JSON writer shared by the bench emitters (BENCH_*.json
// machine-readable results) and the atpgd service (JSON-line event streams).
//
// The writer owns the comma/indent bookkeeping that hand-rolled fprintf
// emitters keep getting subtly wrong (trailing commas, unescaped strings):
// callers just open containers and emit keys/values in order.  Pretty style
// produces the conventional 2-space-indented layout for files meant to be
// read by humans; compact style produces a single line suitable for
// JSON-lines protocols.
//
// Numbers: integrals print exactly; doubles print the shortest
// round-trippable form (std::to_chars), with non-finite values mapped to
// null (JSON has no NaN/Inf).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace gatpg::util {

class JsonWriter {
 public:
  enum class Style { kCompact, kPretty };

  explicit JsonWriter(Style style = Style::kCompact) : style_(style) {}

  // -- Containers ----------------------------------------------------------
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // -- Values (inside an array, or after key() inside an object) -----------
  JsonWriter& key(std::string_view k);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& null();
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonWriter& value(T v) {
    if constexpr (std::is_signed_v<T>) {
      return value_int(static_cast<std::int64_t>(v));
    } else {
      return value_uint(static_cast<std::uint64_t>(v));
    }
  }

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  // -- Output --------------------------------------------------------------
  /// The document so far.  Valid JSON once every container is closed.
  const std::string& str() const { return out_; }
  /// Resets to an empty document (style preserved) for writer reuse.
  void clear();
  /// Writes str() plus a trailing newline; false on I/O failure.
  bool write_file(const std::string& path) const;

  /// Appends `v` JSON-escaped (quotes included) to `out` — the one piece of
  /// the writer useful standalone.
  static void append_escaped(std::string& out, std::string_view v);

 private:
  struct Frame {
    bool array = false;
    std::size_t count = 0;
  };

  JsonWriter& value_int(std::int64_t v);
  JsonWriter& value_uint(std::uint64_t v);
  /// Comma/newline/indent before the next element of the open container.
  void separate();
  void open(char bracket, bool array);
  void close(char bracket);

  Style style_;
  std::string out_;
  std::vector<Frame> stack_;
  bool after_key_ = false;
};

}  // namespace gatpg::util
