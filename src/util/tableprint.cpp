#include "util/tableprint.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/stopwatch.h"

namespace gatpg::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TablePrinter row arity mismatch");
  }
  rows_.push_back(std::move(row));
}

void TablePrinter::add_rule() { rows_.emplace_back(); }

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size(), ' ');
      }
    }
    out << '\n';
  };
  auto emit_rule = [&] {
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      total += widths[c] + (c == 0 ? 0 : 2);
    }
    out << std::string(total, '-') << '\n';
  };

  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule();
    } else {
      emit_row(row);
    }
  }
  return out.str();
}

void TablePrinter::print() const {
  std::fputs(to_string().c_str(), stdout);
  std::fflush(stdout);
}

std::string format_sig(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.3gs", seconds);
  } else if (seconds < 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.3gm", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3gh", seconds / 3600.0);
  }
  return buf;
}

}  // namespace gatpg::util
