// Minimal leveled logging to stderr.
//
// ATPG runs are long; the engines emit progress at Info level and detailed
// search traces at Debug level.  Logging is process-global and intentionally
// simple (no sinks/formatting frameworks) per the project's no-dependency
// rule.
#pragma once

#include <sstream>
#include <string>

namespace gatpg::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one formatted line ("[level] message\n") if level passes the
/// threshold.  Thread-compatible (single-threaded library; no locking).
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogStream log_debug() {
  return detail::LogStream(LogLevel::kDebug);
}
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() {
  return detail::LogStream(LogLevel::kError);
}

}  // namespace gatpg::util
