// Wall-clock timing and per-fault deadline handling.
//
// The paper's pass schedule is defined by per-fault time limits (1 s / 10 s /
// 100 s on a 1995 SPARCstation).  Deadline encapsulates "has this fault's
// budget expired", and Stopwatch accumulates pass/run times for the result
// tables.
#pragma once

#include <atomic>
#include <chrono>
#include <string>

namespace gatpg::util {

class Stopwatch {
 public:
  using clock = std::chrono::steady_clock;

  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  clock::time_point start_;
};

/// A deadline that can also be infinite (limit <= 0 means "no limit").
/// A deadline may additionally carry an external cancellation flag
/// (cancelled_by): expired() then also reports true once the flag is set,
/// which is how the speculative fault-targeting lanes wind down searches
/// whose inputs a committed test just invalidated.  A null flag (the
/// default) reproduces the pure wall-clock behavior exactly.
class Deadline {
 public:
  Deadline() = default;

  static Deadline after_seconds(double s) {
    Deadline d;
    if (s > 0) {
      d.limited_ = true;
      d.end_ = Stopwatch::clock::now() +
               std::chrono::duration_cast<Stopwatch::clock::duration>(
                   std::chrono::duration<double>(s));
    }
    return d;
  }

  static Deadline unlimited() { return Deadline{}; }

  /// An otherwise-unlimited deadline that expires when `*flag` becomes
  /// true.  The flag is not owned and must outlive the deadline.
  static Deadline cancelled_by(const std::atomic<bool>* flag) {
    Deadline d;
    d.cancel_ = flag;
    return d;
  }

  bool expired() const {
    if (cancel_ && cancel_->load(std::memory_order_relaxed)) return true;
    return limited_ && Stopwatch::clock::now() >= end_;
  }

  double remaining_seconds() const {
    if (!limited_) return 1e18;
    return std::chrono::duration<double>(end_ - Stopwatch::clock::now())
        .count();
  }

 private:
  bool limited_ = false;
  Stopwatch::clock::time_point end_{};
  const std::atomic<bool>* cancel_ = nullptr;
};

/// Formats a duration the way the paper's tables do: "49.5s", "5.96m",
/// "2.39h" (three significant digits).
std::string format_duration(double seconds);

}  // namespace gatpg::util
