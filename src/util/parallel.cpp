#include "util/parallel.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace gatpg::util {

unsigned ParallelConfig::resolved() const {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned TargetParallelConfig::resolved_lanes() const {
  if (lanes != 0) return lanes;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned TargetParallelConfig::resolved_window() const {
  if (window != 0) return window;
  return 2 * resolved_lanes();
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::ensure_workers(unsigned n) {
  std::lock_guard<std::mutex> lock(mu_);
  while (workers_.size() < n) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

unsigned ThreadPool::workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<unsigned>(workers_.size());
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

ThreadPool& shared_pool() {
  static ThreadPool pool;
  return pool;
}

namespace {

std::size_t num_chunks(std::size_t n_items, std::size_t chunk) {
  return chunk == 0 ? 0 : (n_items + chunk - 1) / chunk;
}

}  // namespace

unsigned max_lanes(const ParallelConfig& config, std::size_t n_items,
                   std::size_t chunk) {
  const std::size_t chunks = num_chunks(n_items, chunk);
  const unsigned threads = config.resolved();
  if (threads <= 1 || chunks <= 1) return 1;
  return static_cast<unsigned>(
      std::min<std::size_t>(threads, chunks));
}

void parallel_for_chunks(ThreadPool& pool, unsigned threads,
                         std::size_t n_items, std::size_t chunk,
                         const ChunkFn& fn) {
  const std::size_t chunks = num_chunks(n_items, chunk);
  const unsigned lanes =
      threads <= 1
          ? 1
          : static_cast<unsigned>(std::min<std::size_t>(threads, chunks));

  auto run_lane = [&](unsigned lane) {
    for (std::size_t ci = lane; ci < chunks; ci += lanes) {
      fn(ci, ci * chunk, std::min(n_items, (ci + 1) * chunk), lane);
    }
  };

  if (lanes <= 1) {
    run_lane(0);
    return;
  }

  pool.ensure_workers(lanes - 1);
  std::vector<std::future<void>> pending;
  pending.reserve(lanes - 1);
  for (unsigned lane = 1; lane < lanes; ++lane) {
    pending.push_back(pool.submit([&run_lane, lane] { run_lane(lane); }));
  }

  // All lanes must finish before any exception propagates: they reference
  // the caller's stack.
  std::exception_ptr err;
  try {
    run_lane(0);
  } catch (...) {
    err = std::current_exception();
  }
  for (auto& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!err) err = std::current_exception();
    }
  }
  if (err) std::rethrow_exception(err);
}

void parallel_for_chunks(const ParallelConfig& config, std::size_t n_items,
                         std::size_t chunk, const ChunkFn& fn) {
  parallel_for_chunks(shared_pool(), config.resolved(), n_items, chunk, fn);
}

}  // namespace gatpg::util
