#include "util/logging.h"

#include <cstdio>

namespace gatpg::util {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_line(LogLevel level, const std::string& message) {
  if (level < g_level || g_level == LogLevel::kOff) return;
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), message.c_str());
}

}  // namespace gatpg::util
