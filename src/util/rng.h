// Deterministic pseudo-random number generation for reproducible ATPG runs.
//
// All randomized components of the library (GA initialization, mutation,
// X-filling of deterministic vectors, synthetic circuit generation) draw from
// Rng so that a run is fully determined by its seeds.  xoshiro256** is used:
// it is fast, has a 256-bit state, and passes BigCrush.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace gatpg::util {

/// xoshiro256** generator.  Satisfies std::uniform_random_bit_generator so it
/// can also be plugged into <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a single seed using splitmix64, which
  /// guarantees a well-mixed nonzero state for any seed value.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform integer in [0, bound).  bound must be nonzero.  Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) {
    // For our use (bounds far below 2^64) one rejection iteration is rare.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// True with probability p (p clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    constexpr double kScale =
        1.0 / static_cast<double>(std::numeric_limits<std::uint64_t>::max());
    return static_cast<double>((*this)()) * kScale < p;
  }

  /// A random bit.
  bool bit() { return ((*this)() >> 63) != 0; }

  /// A full random 64-bit word (alias for operator() that reads better at
  /// call sites packing bit-parallel values).
  std::uint64_t word() { return (*this)(); }

  /// Uniform double in [0,1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // -- Snapshot support ------------------------------------------------------
  // The raw 256-bit state, so a checkpointed run resumes its random stream at
  // exactly the next draw.  set_state_words with an all-zero array would jam
  // the generator; callers only ever feed back state_words() output.

  std::array<std::uint64_t, 4> state_words() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state_words(const std::array<std::uint64_t, 4>& w) {
    for (int i = 0; i < 4; ++i) state_[i] = w[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace gatpg::util
