// Reusable parallel-execution layer: a persistent worker pool plus a
// statically-chunked parallel-for, shared by every data-parallel loop in the
// library (PROOFS fault-group sweeps, GA fitness batches, future sharded
// workloads).
//
// Design rules that every user of this header relies on:
//   * Parallelism is only ever over *disjoint* simulator instances / output
//     slots; workers never share mutable state.  Anything order-sensitive
//     (detection lists, early-exit winners) is produced per-chunk and merged
//     serially in chunk order by the caller, so results are bit-identical to
//     the serial sweep for any thread count.
//   * `ParallelConfig{.threads = 1}` never touches the pool at all: the loop
//     body runs inline on the calling thread, chunk 0..n-1 in order — the
//     exact legacy code path.
//   * Lanes, not threads, are the unit of scratch ownership: a loop over C
//     chunks with T threads uses L = min(T, C) lanes; lane `l` runs chunks
//     l, l+L, l+2L, ... strictly sequentially, so per-lane scratch (e.g. a
//     thread-local SequenceSimulator) is safe and reusable.  Lane 0 always
//     runs on the calling thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace gatpg::util {

/// Thread-count policy threaded through the engines and bench harnesses.
struct ParallelConfig {
  /// 0 = one lane per hardware thread; 1 = serial (exact legacy path);
  /// N > 1 = at most N lanes.  Values above hardware_concurrency are
  /// honored (useful for determinism tests on small machines).
  unsigned threads = 0;

  /// The effective thread count (0 resolved to hardware_concurrency).
  unsigned resolved() const;
};

/// Lane policy for speculative per-fault targeting in the deterministic
/// passes (hybrid::HybridEngine).  Orthogonal to ParallelConfig, which
/// governs data-parallel inner loops (fault sim, GA fitness): `lanes` is
/// the number of faults solved concurrently, each on its own lane-local
/// engine state, with results committed strictly in fault order so the run
/// stays bit-identical to serial.
struct TargetParallelConfig {
  /// 1 = serial targeting (exact legacy path, never spawns a lane pool);
  /// 0 = one lane per hardware thread; N > 1 = N lanes.
  unsigned lanes = 1;

  /// Speculation window: how many faults past the committed frontier may be
  /// in flight at once.  0 = 2 * resolved lanes.
  unsigned window = 0;

  /// The effective lane count (0 resolved to hardware_concurrency).
  unsigned resolved_lanes() const;

  /// The effective window (0 resolved to 2 * resolved_lanes()).
  unsigned resolved_window() const;
};

/// A persistent pool of worker threads.  Tasks are arbitrary callables;
/// exceptions thrown by a task are captured and rethrown from the returned
/// future's get().  The pool only ever grows (ensure_workers) and joins all
/// workers on destruction.
class ThreadPool {
 public:
  ThreadPool() = default;
  explicit ThreadPool(unsigned workers) { ensure_workers(workers); }
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Grows the pool to at least `n` workers (never shrinks).
  void ensure_workers(unsigned n);

  unsigned workers() const;

  /// Enqueues a task for execution on some worker.
  std::future<void> submit(std::function<void()> task);

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// The process-wide pool used by parallel_for_chunks.  Created empty on
/// first use; grows on demand to the largest lane count ever requested.
ThreadPool& shared_pool();

/// Chunk body: `fn(chunk_index, begin, end, lane)` processes items
/// [begin, end).  `lane` identifies which of the (at most `threads`)
/// sequential streams is running the chunk; chunks with the same lane never
/// run concurrently, so lane-indexed scratch needs no locking.
using ChunkFn = std::function<void(std::size_t chunk_index, std::size_t begin,
                                   std::size_t end, unsigned lane)>;

/// Number of lanes a loop over `n_items` in chunks of `chunk` will use —
/// callers size lane-indexed scratch with this before the loop.
unsigned max_lanes(const ParallelConfig& config, std::size_t n_items,
                   std::size_t chunk);

/// Runs `fn` over ceil(n_items / chunk) chunks with static lane assignment
/// (lane l gets chunks l, l+L, l+2L, ...).  With one lane the body runs
/// inline, chunks in ascending order — the serial code path.  The calling
/// thread always participates as lane 0; the shared pool supplies the rest.
/// Blocks until every chunk completed; the first exception thrown by any
/// chunk is rethrown here after all lanes have finished.
void parallel_for_chunks(const ParallelConfig& config, std::size_t n_items,
                         std::size_t chunk, const ChunkFn& fn);

/// Same, against an explicit pool with an explicit lane budget (exposed for
/// the ThreadPool unit tests; the engines use the config overload).
void parallel_for_chunks(ThreadPool& pool, unsigned threads,
                         std::size_t n_items, std::size_t chunk,
                         const ChunkFn& fn);

}  // namespace gatpg::util
