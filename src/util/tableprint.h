// Plain-text table rendering for the bench harnesses.
//
// Each bench binary reproduces one of the paper's tables; TablePrinter
// renders aligned columns with a header rule so the output reads like the
// published table.
#pragma once

#include <string>
#include <vector>

namespace gatpg::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Adds a horizontal rule between row groups (rendered as dashes).
  void add_rule();

  /// Renders the table to a string with columns padded to their widest cell.
  std::string to_string() const;

  /// Convenience: renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  // Empty vector encodes a rule row.
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (used for times and
/// coverage percentages in the tables).
std::string format_sig(double value, int digits);

}  // namespace gatpg::util
