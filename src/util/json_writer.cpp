#include "util/json_writer.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace gatpg::util {

void JsonWriter::append_escaped(std::string& out, std::string_view v) {
  out.push_back('"');
  for (const char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  if (stack_.back().count > 0) out_.push_back(',');
  if (style_ == Style::kPretty) {
    out_.push_back('\n');
    out_.append(2 * stack_.size(), ' ');
  }
  ++stack_.back().count;
}

void JsonWriter::open(char bracket, bool array) {
  separate();
  out_.push_back(bracket);
  stack_.push_back(Frame{array, 0});
}

void JsonWriter::close(char bracket) {
  const bool had_elements = !stack_.empty() && stack_.back().count > 0;
  if (!stack_.empty()) stack_.pop_back();
  if (style_ == Style::kPretty && had_elements) {
    out_.push_back('\n');
    out_.append(2 * stack_.size(), ' ');
  }
  out_.push_back(bracket);
}

JsonWriter& JsonWriter::begin_object() {
  open('{', /*array=*/false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  close('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  open('[', /*array=*/true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  close(']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  separate();
  append_escaped(out_, k);
  out_ += style_ == Style::kPretty ? ": " : ":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separate();
  append_escaped(out_, v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  separate();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  separate();
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out_.append(buf, ec == std::errc() ? ptr : buf);
  return *this;
}

JsonWriter& JsonWriter::value_int(std::int64_t v) {
  separate();
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out_.append(buf, ec == std::errc() ? ptr : buf);
  return *this;
}

JsonWriter& JsonWriter::value_uint(std::uint64_t v) {
  separate();
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out_.append(buf, ec == std::errc() ? ptr : buf);
  return *this;
}

void JsonWriter::clear() {
  out_.clear();
  stack_.clear();
  after_key_ = false;
}

bool JsonWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  bool ok = std::fwrite(out_.data(), 1, out_.size(), f) == out_.size();
  ok = std::fputc('\n', f) != EOF && ok;
  return std::fclose(f) == 0 && ok;
}

}  // namespace gatpg::util
