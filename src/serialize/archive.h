// Versioned binary snapshot archive for session state.
//
// Every piece of live ATPG session state (fault statuses, the accumulated
// test set, the StateStore's caches, RNG streams, counters) serializes
// through this one layer so a killed run resumes bit-identical to an
// uninterrupted one.  The format is deliberately boring:
//
//   header   "GATPGSS1" magic, format version u32, endianness sentinel u32
//   payload  tagged sections: fourcc tag + u64 byte length + body
//   trailer  FNV-1a-64 digest of the payload bytes
//
// All integers are encoded little-endian byte by byte (portable on any
// host); the sentinel 0x01020304 additionally rejects archives written by a
// build whose encoding ever diverges.  Readers validate magic, version,
// sentinel, the payload digest, section tags, and section lengths — any
// mismatch throws SnapshotError rather than yielding a half-loaded session.
//
// Components implement save(Writer&)/load(Reader&) hooks against the
// primitive API below; the section mechanism gives each component a
// self-delimiting, individually verifiable region, so a component may grow
// fields in later format versions without disturbing its neighbours.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace gatpg::serialize {

/// Archive format version written by this build.  Bump on any layout
/// change; readers reject other versions outright (snapshots are
/// short-lived checkpoint artifacts, not a long-term interchange format).
/// Version history: 1 = original session snapshot; 2 = fault-model axis
/// (IDNT carries the session's FaultUniverse).
inline constexpr std::uint32_t kFormatVersion = 2;

/// Any structural problem with an archive: bad magic/version/sentinel,
/// digest mismatch, truncation, section tag/length mismatch, or a
/// component-level identity check failure (wrong circuit, wrong fault
/// list, wrong engine).
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Incremental FNV-1a-64 — the digest primitive shared by the archive
/// trailer and the component content digests (FaultManager, TestSetBuilder,
/// StateStore) the resume identity check compares.
class Digest {
 public:
  Digest& add_byte(std::uint8_t b) {
    h_ ^= b;
    h_ *= 0x100000001b3ULL;
    return *this;
  }
  Digest& add_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) add_byte(static_cast<std::uint8_t>(v >> (8 * i)));
    return *this;
  }
  Digest& add_bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < n; ++i) add_byte(p[i]);
    return *this;
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/// Buffered archive writer.  Sections may not nest.
class Writer {
 public:
  Writer();

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Length-prefixed raw bytes.
  void bytes(const void* data, std::size_t n);
  /// Length-prefixed UTF-8/byte string.
  void str(const std::string& s);

  /// Opens a tagged section (`tag` is a fourcc like "FMGR").  Must be
  /// closed with end_section before the next begin_section.
  void begin_section(const char (&tag)[5]);
  void end_section();

  /// The payload built so far (header/trailer excluded) — used by the
  /// in-memory round trips of the service layer.
  const std::vector<std::uint8_t>& payload() const { return payload_; }
  /// FNV-1a-64 of the payload built so far.
  std::uint64_t payload_digest() const;

  /// Header + payload + digest trailer as one buffer.
  std::vector<std::uint8_t> finish() const;
  /// Writes finish() to `path` atomically (temp file + rename) so a kill
  /// mid-checkpoint never leaves a torn snapshot behind.  Throws
  /// SnapshotError on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::uint8_t> payload_;
  std::size_t open_section_len_at_ = 0;  // offset of the pending length slot
  bool section_open_ = false;
};

/// Validating archive reader.  The constructor checks magic, version,
/// endianness sentinel, and the payload digest before any field is read.
class Reader {
 public:
  /// Parses an in-memory archive (the full finish() buffer).
  explicit Reader(std::vector<std::uint8_t> buffer);
  /// Reads and parses an archive file.  Throws SnapshotError on I/O or
  /// validation failure.
  static Reader from_file(const std::string& path);

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  bool boolean() { return u8() != 0; }
  std::vector<std::uint8_t> bytes();
  std::string str();

  /// Reads a u64 element count and verifies it is plausible: each element
  /// occupies at least `min_elem_bytes` of payload, so the count may not
  /// exceed the bytes remaining in the current section.  Use in place of
  /// u64() before resize()/reserve() on container loads so a corrupt count
  /// cannot force a huge allocation.
  std::uint64_t count(std::size_t min_elem_bytes);

  /// Enters the next section, which must carry `tag`; records its extent.
  void enter_section(const char (&tag)[5]);
  /// Leaves the current section, verifying it was consumed exactly.
  void leave_section();

  /// True when the payload is fully consumed (top level only).
  bool at_end() const { return pos_ == end_; }

 private:
  void need(std::size_t n) const;

  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;   // next byte to read (within payload)
  std::size_t end_ = 0;   // payload end
  std::size_t section_end_ = 0;
  bool in_section_ = false;
};

}  // namespace gatpg::serialize
