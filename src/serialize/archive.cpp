#include "serialize/archive.h"

#include <bit>
#include <cstdio>
#include <cstring>

namespace gatpg::serialize {
namespace {

constexpr char kMagic[8] = {'G', 'A', 'T', 'P', 'G', 'S', 'S', '1'};
constexpr std::uint32_t kEndianSentinel = 0x01020304u;

// Header: magic(8) + version(4) + sentinel(4).  Trailer: digest(8).
constexpr std::size_t kHeaderSize = 16;
constexpr std::size_t kTrailerSize = 8;

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t read_u32_at(const std::vector<std::uint8_t>& b, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[at + i]) << (8 * i);
  return v;
}

std::uint64_t read_u64_at(const std::vector<std::uint8_t>& b, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[at + i]) << (8 * i);
  return v;
}

}  // namespace

Writer::Writer() { payload_.reserve(4096); }

void Writer::u8(std::uint8_t v) { payload_.push_back(v); }

void Writer::u32(std::uint32_t v) { append_u32(payload_, v); }

void Writer::u64(std::uint64_t v) { append_u64(payload_, v); }

void Writer::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::bytes(const void* data, std::size_t n) {
  u64(n);
  const auto* p = static_cast<const std::uint8_t*>(data);
  payload_.insert(payload_.end(), p, p + n);
}

void Writer::str(const std::string& s) { bytes(s.data(), s.size()); }

void Writer::begin_section(const char (&tag)[5]) {
  if (section_open_) throw SnapshotError("archive: nested section");
  for (int i = 0; i < 4; ++i) payload_.push_back(static_cast<std::uint8_t>(tag[i]));
  open_section_len_at_ = payload_.size();
  u64(0);  // length slot, patched by end_section
  section_open_ = true;
}

void Writer::end_section() {
  if (!section_open_) throw SnapshotError("archive: end_section without begin");
  const std::uint64_t len = payload_.size() - (open_section_len_at_ + 8);
  for (int i = 0; i < 8; ++i)
    payload_[open_section_len_at_ + i] = static_cast<std::uint8_t>(len >> (8 * i));
  section_open_ = false;
}

std::uint64_t Writer::payload_digest() const {
  Digest d;
  d.add_bytes(payload_.data(), payload_.size());
  return d.value();
}

std::vector<std::uint8_t> Writer::finish() const {
  if (section_open_) throw SnapshotError("archive: finish with open section");
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + payload_.size() + kTrailerSize);
  out.insert(out.end(), kMagic, kMagic + 8);
  append_u32(out, kFormatVersion);
  append_u32(out, kEndianSentinel);
  out.insert(out.end(), payload_.begin(), payload_.end());
  append_u64(out, payload_digest());
  return out;
}

void Writer::write_file(const std::string& path) const {
  const std::vector<std::uint8_t> buf = finish();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) throw SnapshotError("archive: cannot open " + tmp + " for writing");
  const std::size_t wrote = buf.empty() ? 0 : std::fwrite(buf.data(), 1, buf.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (wrote != buf.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    throw SnapshotError("archive: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError("archive: cannot rename " + tmp + " to " + path);
  }
}

Reader::Reader(std::vector<std::uint8_t> buffer) : buffer_(std::move(buffer)) {
  if (buffer_.size() < kHeaderSize + kTrailerSize)
    throw SnapshotError("archive: truncated (smaller than header + trailer)");
  if (std::memcmp(buffer_.data(), kMagic, 8) != 0)
    throw SnapshotError("archive: bad magic");
  const std::uint32_t version = read_u32_at(buffer_, 8);
  if (version != kFormatVersion)
    throw SnapshotError("archive: unsupported format version " + std::to_string(version));
  if (read_u32_at(buffer_, 12) != kEndianSentinel)
    throw SnapshotError("archive: endianness sentinel mismatch");
  pos_ = kHeaderSize;
  end_ = buffer_.size() - kTrailerSize;
  Digest d;
  d.add_bytes(buffer_.data() + pos_, end_ - pos_);
  if (d.value() != read_u64_at(buffer_, end_))
    throw SnapshotError("archive: payload digest mismatch (corrupt snapshot)");
}

Reader Reader::from_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw SnapshotError("archive: cannot open " + path);
  std::vector<std::uint8_t> buf;
  std::uint8_t chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
    buf.insert(buf.end(), chunk, chunk + n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) throw SnapshotError("archive: read error on " + path);
  return Reader(std::move(buf));
}

void Reader::need(std::size_t n) const {
  // pos_ never passes the limit, so limit - pos_ cannot underflow; comparing
  // this way keeps a corrupt length near SIZE_MAX from wrapping pos_ + n.
  const std::size_t limit = in_section_ ? section_end_ : end_;
  if (n > limit - pos_)
    throw SnapshotError("archive: truncated read (need " + std::to_string(n) + " bytes)");
}

std::uint64_t Reader::count(std::size_t min_elem_bytes) {
  const std::uint64_t n = u64();
  const std::size_t limit = in_section_ ? section_end_ : end_;
  const std::size_t per = min_elem_bytes == 0 ? 1 : min_elem_bytes;
  if (n > (limit - pos_) / per)
    throw SnapshotError("archive: element count " + std::to_string(n) +
                        " exceeds remaining payload");
  return n;
}

std::uint8_t Reader::u8() {
  need(1);
  return buffer_[pos_++];
}

std::uint32_t Reader::u32() {
  need(4);
  const std::uint32_t v = read_u32_at(buffer_, pos_);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  const std::uint64_t v = read_u64_at(buffer_, pos_);
  pos_ += 8;
  return v;
}

std::int64_t Reader::i64() { return static_cast<std::int64_t>(u64()); }

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::vector<std::uint8_t> Reader::bytes() {
  const std::uint64_t n = u64();
  need(n);
  std::vector<std::uint8_t> out(buffer_.begin() + pos_, buffer_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

std::string Reader::str() {
  const std::uint64_t n = u64();
  need(n);
  std::string out(reinterpret_cast<const char*>(buffer_.data() + pos_), n);
  pos_ += n;
  return out;
}

void Reader::enter_section(const char (&tag)[5]) {
  if (in_section_) throw SnapshotError("archive: nested section");
  need(4 + 8);
  char got[5] = {0, 0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) got[i] = static_cast<char>(buffer_[pos_ + i]);
  if (std::memcmp(got, tag, 4) != 0)
    throw SnapshotError(std::string("archive: expected section ") + tag + ", found " + got);
  pos_ += 4;
  const std::uint64_t len = u64();
  if (len > end_ - pos_) throw SnapshotError("archive: section length exceeds payload");
  section_end_ = pos_ + len;
  in_section_ = true;
}

void Reader::leave_section() {
  if (!in_section_) throw SnapshotError("archive: leave_section without enter");
  if (pos_ != section_end_)
    throw SnapshotError("archive: section not fully consumed (" +
                        std::to_string(section_end_ - pos_) + " bytes left)");
  in_section_ = false;
}

}  // namespace gatpg::serialize
