#include "netlist/levelize.h"

namespace gatpg::netlist {

std::vector<char> transitive_fanout(const Circuit& c, NodeId from) {
  std::vector<char> mark(c.node_count(), 0);
  std::vector<NodeId> stack{from};
  mark[from] = 1;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (NodeId out : c.fanouts(n)) {
      if (!mark[out]) {
        mark[out] = 1;
        // A DFF's fanout is its Q, which fans out in the next time frame;
        // structurally we keep walking, because observability "eventually"
        // is what the caller asks about.
        stack.push_back(out);
      }
    }
  }
  return mark;
}

std::vector<char> transitive_fanin(const Circuit& c, NodeId to,
                                   bool cross_dffs) {
  std::vector<char> mark(c.node_count(), 0);
  std::vector<NodeId> stack{to};
  mark[to] = 1;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (c.type(n) == GateType::kDff && n != to && !cross_dffs) continue;
    for (NodeId in : c.fanins(n)) {
      if (!mark[in]) {
        mark[in] = 1;
        stack.push_back(in);
      }
    }
  }
  return mark;
}

bool reaches_observation_point(const Circuit& c, NodeId from) {
  const auto mark = transitive_fanout(c, from);
  for (NodeId po : c.primary_outputs()) {
    if (mark[po]) return true;
  }
  return false;
}

}  // namespace gatpg::netlist
