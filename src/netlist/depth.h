// Sequential depth metric.
//
// The paper sizes GA test-sequence lengths as multiples of the circuit's
// sequential depth (Table II lists the depth it used per circuit).  We use
// the standard structural definition: build the flip-flop dependency graph
// (edge u -> v when FF u's output reaches FF v's D input through
// combinational logic only) and take the longest of the shortest distances
// from "input-controlled" flip-flops (those whose D cone contains no
// flip-flops) to every other reachable flip-flop, plus one frame to load the
// input-controlled rank itself.  Flip-flops unreachable from such a source
// (e.g. isolated cycles) are assigned the flip-flop count as a conservative
// bound.  Circuits with no flip-flops have depth 0.
#pragma once

#include "netlist/circuit.h"

namespace gatpg::netlist {

unsigned sequential_depth(const Circuit& c);

}  // namespace gatpg::netlist
