#include "netlist/builder.h"

#include <algorithm>
#include <stdexcept>

namespace gatpg::netlist {

NodeId CircuitBuilder::add_node(GateType type, std::string name) {
  const NodeId id = static_cast<NodeId>(type_.size());
  type_.push_back(type);
  names_.push_back(std::move(name));
  fanins_.emplace_back();
  return id;
}

NodeId CircuitBuilder::add_input(std::string name) {
  const NodeId id = add_node(GateType::kInput, std::move(name));
  pis_.push_back(id);
  return id;
}

NodeId CircuitBuilder::add_gate(GateType type, std::string name,
                                std::span<const NodeId> fanins) {
  if (!is_combinational(type)) {
    throw std::invalid_argument("add_gate requires a combinational type");
  }
  const bool unary = type == GateType::kBuf || type == GateType::kNot;
  if (unary ? fanins.size() != 1 : fanins.empty()) {
    throw std::invalid_argument("bad fanin count for gate " + name);
  }
  const NodeId id = add_node(type, std::move(name));
  fanins_[id].assign(fanins.begin(), fanins.end());
  return id;
}

NodeId CircuitBuilder::add_gate(GateType type, std::string name,
                                std::initializer_list<NodeId> fanins) {
  return add_gate(type, std::move(name),
                  std::span<const NodeId>(fanins.begin(), fanins.size()));
}

NodeId CircuitBuilder::add_const(bool value, std::string name) {
  return add_node(value ? GateType::kConst1 : GateType::kConst0,
                  std::move(name));
}

NodeId CircuitBuilder::add_dff(std::string name, NodeId d) {
  const NodeId id = add_node(GateType::kDff, std::move(name));
  dffs_.push_back(id);
  if (d != kNoNode) fanins_[id].push_back(d);
  return id;
}

void CircuitBuilder::set_dff_input(NodeId q, NodeId d) {
  if (q >= type_.size() || type_[q] != GateType::kDff) {
    throw std::invalid_argument("set_dff_input target is not a DFF");
  }
  fanins_[q].assign(1, d);
}

void CircuitBuilder::mark_output(NodeId n) {
  if (n >= type_.size()) throw std::invalid_argument("mark_output: bad node");
  pos_.push_back(n);
}

Circuit CircuitBuilder::build(std::string circuit_name) && {
  const std::size_t n = type_.size();
  for (NodeId i = 0; i < n; ++i) {
    if (type_[i] == GateType::kDff && fanins_[i].size() != 1) {
      throw std::runtime_error("DFF " + names_[i] + " has unbound D input");
    }
    for (NodeId f : fanins_[i]) {
      if (f >= n) throw std::runtime_error("dangling fanin on " + names_[i]);
    }
  }

  Circuit c;
  c.circuit_name_ = std::move(circuit_name);
  c.type_ = std::move(type_);
  c.names_ = std::move(names_);
  c.pis_ = std::move(pis_);
  c.pos_ = std::move(pos_);
  c.dffs_ = std::move(dffs_);

  // CSR fanins.
  c.fanin_offset_.assign(n + 1, 0);
  for (NodeId i = 0; i < n; ++i) {
    c.fanin_offset_[i + 1] =
        c.fanin_offset_[i] + static_cast<std::uint32_t>(fanins_[i].size());
  }
  c.fanin_.reserve(c.fanin_offset_[n]);
  for (NodeId i = 0; i < n; ++i) {
    c.fanin_.insert(c.fanin_.end(), fanins_[i].begin(), fanins_[i].end());
  }

  // CSR fanouts.
  c.fanout_offset_.assign(n + 1, 0);
  for (NodeId f : c.fanin_) ++c.fanout_offset_[f + 1];
  for (std::size_t i = 0; i < n; ++i) {
    c.fanout_offset_[i + 1] += c.fanout_offset_[i];
  }
  c.fanout_.resize(c.fanin_.size());
  {
    std::vector<std::uint32_t> cursor(c.fanout_offset_.begin(),
                                      c.fanout_offset_.end() - 1);
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId f : c.fanins(i)) c.fanout_[cursor[f]++] = i;
    }
  }

  // Name index (names must be unique).
  c.by_name_.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    if (!c.by_name_.emplace(c.names_[i], i).second) {
      throw std::runtime_error("duplicate node name " + c.names_[i]);
    }
  }

  // PO / PI / FF index maps.
  c.is_po_.assign(n, 0);
  for (NodeId p : c.pos_) c.is_po_[p] = 1;
  c.pi_index_.assign(n, -1);
  for (std::size_t i = 0; i < c.pis_.size(); ++i) {
    c.pi_index_[c.pis_[i]] = static_cast<int>(i);
  }
  c.ff_index_.assign(n, -1);
  for (std::size_t i = 0; i < c.dffs_.size(); ++i) {
    c.ff_index_[c.dffs_[i]] = static_cast<int>(i);
  }

  // Levelize combinational logic (Kahn).  Sources: PIs, constants, DFF
  // outputs.  DFF nodes consume their fanin but are never scheduled.
  c.level_.assign(n, 0);
  std::vector<std::uint32_t> pending(n, 0);
  std::vector<NodeId> ready;
  for (NodeId i = 0; i < n; ++i) {
    if (is_combinational(c.type_[i])) {
      pending[i] = static_cast<std::uint32_t>(c.fanin_count(i));
    }
  }
  for (NodeId i = 0; i < n; ++i) {
    if (is_source(c.type_[i]) || c.type_[i] == GateType::kDff) {
      ready.push_back(i);
    }
  }
  c.topo_.reserve(n);
  std::size_t head = 0;
  std::size_t comb_total = 0;
  for (NodeId i = 0; i < n; ++i) {
    comb_total += is_combinational(c.type_[i]) ? 1 : 0;
  }
  while (head < ready.size()) {
    const NodeId g = ready[head++];
    if (is_combinational(c.type_[g])) {
      std::uint32_t lvl = 0;
      for (NodeId f : c.fanins(g)) lvl = std::max(lvl, c.level_[f] + 1);
      c.level_[g] = lvl;
      c.max_level_ = std::max(c.max_level_, lvl);
      c.topo_.push_back(g);
    }
    for (NodeId out : c.fanouts(g)) {
      if (is_combinational(c.type_[out]) && --pending[out] == 0) {
        ready.push_back(out);
      }
    }
  }
  if (c.topo_.size() != comb_total) {
    throw std::runtime_error("combinational cycle in circuit " +
                             c.circuit_name_);
  }
  return c;
}

}  // namespace gatpg::netlist
