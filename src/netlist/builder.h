// Mutable circuit construction API.
//
// Two client styles are supported:
//  * the .bench reader, which declares nodes by name in file order and
//    resolves references in a second pass; and
//  * the programmatic generators (src/gen), which build structurally and
//    only need late binding for flip-flop D inputs (to close state loops).
//
// build() freezes the netlist into an immutable Circuit: it computes fanout
// adjacency, levelizes the combinational logic (rejecting combinational
// cycles), and indexes PIs/POs/FFs.
#pragma once

#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "netlist/circuit.h"

namespace gatpg::netlist {

class CircuitBuilder {
 public:
  /// Adds a primary input.
  NodeId add_input(std::string name);

  /// Adds a combinational gate with the given fanins.
  NodeId add_gate(GateType type, std::string name, std::span<const NodeId> fanins);
  NodeId add_gate(GateType type, std::string name,
                  std::initializer_list<NodeId> fanins);

  /// Adds a constant node.
  NodeId add_const(bool value, std::string name);

  /// Adds a flip-flop whose D input may be bound later (returns the Q node).
  NodeId add_dff(std::string name, NodeId d = kNoNode);

  /// Binds (or rebinds) the D input of a flip-flop created with add_dff.
  void set_dff_input(NodeId q, NodeId d);

  /// Marks an existing node as a primary output.
  void mark_output(NodeId n);

  /// Number of nodes added so far.
  std::size_t node_count() const { return type_.size(); }

  /// Validates and freezes the netlist.  Throws std::runtime_error on
  /// dangling DFF inputs, duplicate names, or combinational cycles.
  Circuit build(std::string circuit_name) &&;

 private:
  NodeId add_node(GateType type, std::string name);

  std::vector<GateType> type_;
  std::vector<std::string> names_;
  std::vector<std::vector<NodeId>> fanins_;
  std::vector<NodeId> pis_, pos_, dffs_;
};

}  // namespace gatpg::netlist
