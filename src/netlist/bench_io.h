// ISCAS89 .bench format reader/writer.
//
// Grammar (as used by the ISCAS89 distribution):
//   # comment
//   INPUT(name)
//   OUTPUT(name)
//   name = GATE(a, b, ...)        GATE in {AND OR NAND NOR XOR XNOR NOT
//                                          BUF BUFF DFF}
//
// OUTPUT lines may reference nodes defined later; the reader resolves names
// in a second pass.  A node that is OUTPUT-declared but never defined is an
// error.  The writer emits circuits in a canonical order so parse(write(c))
// round-trips structurally.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/circuit.h"

namespace gatpg::netlist {

/// Parses .bench text.  Throws std::runtime_error with a line-numbered
/// message on malformed input.
Circuit parse_bench(std::istream& in, std::string circuit_name);
Circuit parse_bench_string(const std::string& text, std::string circuit_name);

/// Loads a .bench file from disk; the circuit name is the file stem.
Circuit load_bench_file(const std::string& path);

/// Serializes to .bench text.
std::string write_bench(const Circuit& c);

}  // namespace gatpg::netlist
