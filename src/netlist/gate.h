// Gate-level primitives for the netlist.
//
// The library models circuits in the ISCAS89 style: primary inputs, simple
// gates (AND/NAND/OR/NOR/XOR/XNOR/NOT/BUF), constants, and D flip-flops.
// A DFF node's value is its present-state output Q; its single fanin is the
// next-state input D.  Primary outputs are a designated subset of nodes, not
// separate gates.
#pragma once

#include <cstdint>
#include <string_view>

namespace gatpg::netlist {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

enum class GateType : std::uint8_t {
  kInput,   // primary input (no fanin)
  kBuf,     // 1-input buffer
  kNot,     // 1-input inverter
  kAnd,     // n-input AND (n >= 1)
  kNand,    // n-input NAND
  kOr,      // n-input OR
  kNor,     // n-input NOR
  kXor,     // n-input XOR (parity)
  kXnor,    // n-input XNOR
  kDff,     // D flip-flop; value = Q, fanin[0] = D
  kConst0,  // constant 0 (no fanin)
  kConst1,  // constant 1 (no fanin)
};

/// Human-readable gate-type name matching the .bench keyword where one
/// exists ("AND", "DFF", ...).
constexpr std::string_view gate_type_name(GateType t) {
  switch (t) {
    case GateType::kInput:
      return "INPUT";
    case GateType::kBuf:
      return "BUF";
    case GateType::kNot:
      return "NOT";
    case GateType::kAnd:
      return "AND";
    case GateType::kNand:
      return "NAND";
    case GateType::kOr:
      return "OR";
    case GateType::kNor:
      return "NOR";
    case GateType::kXor:
      return "XOR";
    case GateType::kXnor:
      return "XNOR";
    case GateType::kDff:
      return "DFF";
    case GateType::kConst0:
      return "CONST0";
    case GateType::kConst1:
      return "CONST1";
  }
  return "?";
}

/// True for the AND/OR families that have a controlling input value.
constexpr bool has_controlling_value(GateType t) {
  return t == GateType::kAnd || t == GateType::kNand || t == GateType::kOr ||
         t == GateType::kNor;
}

/// The controlling input value (0 for AND/NAND, 1 for OR/NOR).  Only valid
/// when has_controlling_value(t).
constexpr bool controlling_value(GateType t) {
  return t == GateType::kOr || t == GateType::kNor;
}

/// True when the gate inverts: output = f(inputs) XOR 1 relative to the
/// non-inverting family member (NAND vs AND, NOR vs OR, NOT vs BUF, XNOR vs
/// XOR).
constexpr bool inverts(GateType t) {
  return t == GateType::kNand || t == GateType::kNor || t == GateType::kNot ||
         t == GateType::kXnor;
}

/// True for gate types evaluated during the combinational phase (everything
/// with fanins except DFFs).
constexpr bool is_combinational(GateType t) {
  switch (t) {
    case GateType::kBuf:
    case GateType::kNot:
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor:
    case GateType::kXor:
    case GateType::kXnor:
      return true;
    default:
      return false;
  }
}

/// True for source nodes that have no fanin.
constexpr bool is_source(GateType t) {
  return t == GateType::kInput || t == GateType::kConst0 ||
         t == GateType::kConst1;
}

}  // namespace gatpg::netlist
