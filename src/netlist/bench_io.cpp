#include "netlist/bench_io.h"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "netlist/builder.h"

namespace gatpg::netlist {

namespace {

struct PendingGate {
  std::string name;
  GateType type;
  std::vector<std::string> fanin_names;
  int line = 0;
};

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("bench parse error at line " +
                           std::to_string(line) + ": " + what);
}

std::string strip(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

GateType gate_type_from_keyword(const std::string& kw, int line) {
  std::string up;
  up.reserve(kw.size());
  for (char ch : kw) up.push_back(static_cast<char>(std::toupper(ch)));
  if (up == "AND") return GateType::kAnd;
  if (up == "NAND") return GateType::kNand;
  if (up == "OR") return GateType::kOr;
  if (up == "NOR") return GateType::kNor;
  if (up == "XOR") return GateType::kXor;
  if (up == "XNOR") return GateType::kXnor;
  if (up == "NOT" || up == "INV") return GateType::kNot;
  if (up == "BUF" || up == "BUFF") return GateType::kBuf;
  if (up == "DFF") return GateType::kDff;
  // Extension keywords used by write_bench for generator circuits; not part
  // of the original ISCAS89 grammar but accepted for round-tripping.
  if (up == "CONST0") return GateType::kConst0;
  if (up == "CONST1") return GateType::kConst1;
  fail(line, "unknown gate keyword '" + kw + "'");
}

}  // namespace

Circuit parse_bench(std::istream& in, std::string circuit_name) {
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<PendingGate> gates;

  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string line = strip(raw);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      // INPUT(x) or OUTPUT(x)
      const auto open = line.find('(');
      const auto close = line.rfind(')');
      if (open == std::string::npos || close == std::string::npos ||
          close < open) {
        fail(line_no, "expected INPUT(...)/OUTPUT(...)");
      }
      const std::string kw = strip(line.substr(0, open));
      const std::string arg = strip(line.substr(open + 1, close - open - 1));
      if (arg.empty()) fail(line_no, "empty port name");
      std::string up;
      for (char ch : kw) up.push_back(static_cast<char>(std::toupper(ch)));
      if (up == "INPUT") {
        input_names.push_back(arg);
      } else if (up == "OUTPUT") {
        output_names.push_back(arg);
      } else {
        fail(line_no, "unknown directive '" + kw + "'");
      }
      continue;
    }

    PendingGate g;
    g.line = line_no;
    g.name = strip(line.substr(0, eq));
    if (g.name.empty()) fail(line_no, "empty gate name");
    const std::string rhs = strip(line.substr(eq + 1));
    const auto open = rhs.find('(');
    const auto close = rhs.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      fail(line_no, "expected GATE(fanins)");
    }
    g.type = gate_type_from_keyword(strip(rhs.substr(0, open)), line_no);
    std::string args = rhs.substr(open + 1, close - open - 1);
    std::istringstream arg_stream(args);
    std::string item;
    while (std::getline(arg_stream, item, ',')) {
      const std::string name = strip(item);
      if (name.empty()) fail(line_no, "empty fanin name");
      g.fanin_names.push_back(name);
    }
    const bool is_const =
        g.type == GateType::kConst0 || g.type == GateType::kConst1;
    if (g.fanin_names.empty() && !is_const) {
      fail(line_no, "gate with no fanins");
    }
    if (is_const && !g.fanin_names.empty()) {
      fail(line_no, "constant with fanins");
    }
    if (g.type == GateType::kDff && g.fanin_names.size() != 1) {
      fail(line_no, "DFF must have exactly one fanin");
    }
    gates.push_back(std::move(g));
  }

  CircuitBuilder b;
  std::map<std::string, NodeId> ids;
  for (const auto& name : input_names) {
    if (ids.count(name)) fail(0, "duplicate INPUT " + name);
    ids[name] = b.add_input(name);
  }
  // Declare DFFs first so feedback references resolve, then declare
  // combinational gates in dependency order via iteration.
  for (const auto& g : gates) {
    if (ids.count(g.name)) fail(g.line, "node redefined: " + g.name);
    if (g.type == GateType::kDff) {
      ids[g.name] = b.add_dff(g.name);
    } else if (g.type == GateType::kConst0 || g.type == GateType::kConst1) {
      ids[g.name] = b.add_const(g.type == GateType::kConst1, g.name);
    } else {
      ids[g.name] = kNoNode;  // placeholder, resolved below
    }
  }
  // Combinational gates may reference each other in any textual order; emit
  // them repeatedly until all fanins are defined (a cycle would mean a
  // combinational loop, reported by build()).
  std::vector<const PendingGate*> remaining;
  for (const auto& g : gates) {
    if (is_combinational(g.type)) remaining.push_back(&g);
  }
  while (!remaining.empty()) {
    std::vector<const PendingGate*> next;
    bool progressed = false;
    for (const PendingGate* g : remaining) {
      bool ready = true;
      for (const auto& f : g->fanin_names) {
        auto it = ids.find(f);
        if (it == ids.end()) fail(g->line, "undefined fanin " + f);
        if (it->second == kNoNode) {
          ready = false;
          break;
        }
      }
      if (!ready) {
        next.push_back(g);
        continue;
      }
      std::vector<NodeId> fin;
      fin.reserve(g->fanin_names.size());
      for (const auto& f : g->fanin_names) fin.push_back(ids[f]);
      ids[g->name] = b.add_gate(g->type, g->name, fin);
      progressed = true;
    }
    if (!progressed) {
      fail(next.front()->line, "combinational cycle involving " +
                                   next.front()->name);
    }
    remaining = std::move(next);
  }
  // Bind DFF D inputs.
  for (const auto& g : gates) {
    if (g.type != GateType::kDff) continue;
    auto it = ids.find(g.fanin_names[0]);
    if (it == ids.end() || it->second == kNoNode) {
      fail(g.line, "undefined DFF input " + g.fanin_names[0]);
    }
    b.set_dff_input(ids[g.name], it->second);
  }
  for (const auto& name : output_names) {
    auto it = ids.find(name);
    if (it == ids.end() || it->second == kNoNode) {
      fail(0, "OUTPUT references undefined node " + name);
    }
    b.mark_output(it->second);
  }
  return std::move(b).build(std::move(circuit_name));
}

Circuit parse_bench_string(const std::string& text, std::string circuit_name) {
  std::istringstream in(text);
  return parse_bench(in, std::move(circuit_name));
}

Circuit load_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  auto slash = path.find_last_of('/');
  std::string stem =
      slash == std::string::npos ? path : path.substr(slash + 1);
  auto dot = stem.find_last_of('.');
  if (dot != std::string::npos) stem.erase(dot);
  return parse_bench(in, std::move(stem));
}

std::string write_bench(const Circuit& c) {
  std::ostringstream out;
  out << "# " << c.name() << "\n";
  for (NodeId pi : c.primary_inputs()) out << "INPUT(" << c.name(pi) << ")\n";
  for (NodeId po : c.primary_outputs()) {
    out << "OUTPUT(" << c.name(po) << ")\n";
  }
  out << "\n";
  for (NodeId n = 0; n < c.node_count(); ++n) {
    if (c.type(n) == GateType::kConst0 || c.type(n) == GateType::kConst1) {
      out << c.name(n) << " = " << gate_type_name(c.type(n)) << "()\n";
    }
  }
  for (NodeId ff : c.flip_flops()) {
    out << c.name(ff) << " = DFF(" << c.name(c.fanins(ff)[0]) << ")\n";
  }
  for (NodeId g : c.topo_order()) {
    out << c.name(g) << " = " << gate_type_name(c.type(g)) << "(";
    bool first = true;
    for (NodeId f : c.fanins(g)) {
      if (!first) out << ", ";
      first = false;
      out << c.name(f);
    }
    out << ")\n";
  }
  return out.str();
}

}  // namespace gatpg::netlist
