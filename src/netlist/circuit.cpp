#include "netlist/circuit.h"

namespace gatpg::netlist {

NodeId Circuit::find(const std::string& node_name) const {
  auto it = by_name_.find(node_name);
  return it == by_name_.end() ? kNoNode : it->second;
}

CircuitStats stats_of(const Circuit& c) {
  CircuitStats s;
  s.inputs = c.primary_inputs().size();
  s.outputs = c.primary_outputs().size();
  s.flip_flops = c.flip_flops().size();
  s.gates = c.gate_count();
  s.levels = c.max_level();
  return s;
}

}  // namespace gatpg::netlist
