// Immutable gate-level circuit graph.
//
// Storage is structure-of-arrays with CSR fanin/fanout adjacency, which keeps
// the hot simulation loops cache-friendly.  Circuits are constructed through
// CircuitBuilder (builder.h) or the .bench reader (bench_io.h) and are
// immutable afterwards; every engine in the library (simulators, fault
// simulator, PODEM, GA) shares one Circuit instance by const reference.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/gate.h"

namespace gatpg::netlist {

class CircuitBuilder;

class Circuit {
 public:
  /// Total number of nodes (inputs, gates, flip-flops, constants).
  std::size_t node_count() const { return type_.size(); }

  GateType type(NodeId n) const { return type_[n]; }
  const std::string& name(NodeId n) const { return names_[n]; }
  const std::string& name() const { return circuit_name_; }

  std::span<const NodeId> fanins(NodeId n) const {
    return {fanin_.data() + fanin_offset_[n],
            fanin_offset_[n + 1] - fanin_offset_[n]};
  }
  std::span<const NodeId> fanouts(NodeId n) const {
    return {fanout_.data() + fanout_offset_[n],
            fanout_offset_[n + 1] - fanout_offset_[n]};
  }
  std::size_t fanin_count(NodeId n) const {
    return fanin_offset_[n + 1] - fanin_offset_[n];
  }

  /// Primary inputs, in declaration order (this order defines test-vector
  /// bit positions everywhere in the library).
  std::span<const NodeId> primary_inputs() const { return pis_; }
  /// Primary outputs, in declaration order.
  std::span<const NodeId> primary_outputs() const { return pos_; }
  /// Flip-flops, in declaration order (this order defines state-vector bit
  /// positions).
  std::span<const NodeId> flip_flops() const { return dffs_; }

  bool is_primary_output(NodeId n) const { return is_po_[n]; }

  /// Index of a node within primary_inputs() / flip_flops(), or -1.
  int pi_index(NodeId n) const { return pi_index_[n]; }
  int ff_index(NodeId n) const { return ff_index_[n]; }

  /// Combinational evaluation order: every combinational gate appears after
  /// all of its fanins (PIs, DFF outputs and constants are sources and are
  /// not listed).
  std::span<const NodeId> topo_order() const { return topo_; }

  /// Logic level: 0 for sources and DFF outputs, 1 + max(fanin level)
  /// otherwise.
  std::uint32_t level(NodeId n) const { return level_[n]; }
  std::uint32_t max_level() const { return max_level_; }

  /// Node lookup by name; returns kNoNode if absent.
  NodeId find(const std::string& node_name) const;

  /// Number of combinational gates (excludes PIs, DFFs, constants).
  std::size_t gate_count() const { return topo_.size(); }

 private:
  friend class CircuitBuilder;
  Circuit() = default;

  std::string circuit_name_;
  std::vector<GateType> type_;
  std::vector<std::string> names_;
  std::vector<std::uint32_t> fanin_offset_;
  std::vector<NodeId> fanin_;
  std::vector<std::uint32_t> fanout_offset_;
  std::vector<NodeId> fanout_;
  std::vector<NodeId> pis_, pos_, dffs_;
  std::vector<char> is_po_;
  std::vector<int> pi_index_, ff_index_;
  std::vector<NodeId> topo_;
  std::vector<std::uint32_t> level_;
  std::uint32_t max_level_ = 0;
  std::unordered_map<std::string, NodeId> by_name_;
};

/// Summary statistics used by the result tables and DESIGN.md inventory.
struct CircuitStats {
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t flip_flops = 0;
  std::size_t gates = 0;
  std::uint32_t levels = 0;
};

CircuitStats stats_of(const Circuit& c);

}  // namespace gatpg::netlist
