#include "netlist/depth.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "netlist/levelize.h"

namespace gatpg::netlist {

unsigned sequential_depth(const Circuit& c) {
  const auto ffs = c.flip_flops();
  const std::size_t nff = ffs.size();
  if (nff == 0) return 0;

  // s-graph: for each flip-flop, which flip-flops/PIs feed its D cone.
  std::vector<std::vector<std::size_t>> ff_targets(nff);
  std::vector<char> pi_fed(nff, 0);
  for (std::size_t v = 0; v < nff; ++v) {
    const NodeId d = c.fanins(ffs[v])[0];
    const auto cone = transitive_fanin(c, d, /*cross_dffs=*/false);
    for (std::size_t u = 0; u < nff; ++u) {
      if (cone[ffs[u]]) ff_targets[u].push_back(v);
    }
    for (NodeId pi : c.primary_inputs()) {
      if (cone[pi]) {
        pi_fed[v] = 1;
        break;
      }
    }
  }

  // Shortest distance (in time frames) from the primary inputs to each
  // flip-flop; the sequential depth is the largest such distance.
  constexpr unsigned kInf = std::numeric_limits<unsigned>::max();
  std::vector<unsigned> dist(nff, kInf);
  std::deque<std::size_t> queue;
  for (std::size_t v = 0; v < nff; ++v) {
    if (pi_fed[v]) {
      dist[v] = 1;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    const std::size_t u = queue.front();
    queue.pop_front();
    for (std::size_t v : ff_targets[u]) {
      if (dist[v] == kInf) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }

  unsigned depth = 0;
  for (std::size_t v = 0; v < nff; ++v) {
    // A flip-flop no input can reach (degenerate) falls back to the
    // flip-flop count as a conservative bound.
    depth = std::max(depth, dist[v] == kInf ? static_cast<unsigned>(nff)
                                            : dist[v]);
  }
  return depth;
}

}  // namespace gatpg::netlist
