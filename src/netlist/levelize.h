// Structural cone analysis utilities.
//
// Levelization itself happens when a Circuit is frozen (builder.cpp); this
// header provides the cone/reachability queries the ATPG engines need:
// the transitive fanout of a fault site (which outputs/flip-flops can observe
// it) and the transitive fanin cone of a node (which inputs/flip-flops can
// control it).
#pragma once

#include <vector>

#include "netlist/circuit.h"

namespace gatpg::netlist {

/// Nodes in the transitive fanout of `from` (including `from` itself),
/// marked in a node-indexed flag vector.
std::vector<char> transitive_fanout(const Circuit& c, NodeId from);

/// Nodes in the transitive fanin of `to` (including `to` itself), stopping
/// at flip-flop outputs (a DFF's Q is included but the walk does not cross
/// into its D cone unless cross_dffs is true).
std::vector<char> transitive_fanin(const Circuit& c, NodeId to,
                                   bool cross_dffs = false);

/// True if any primary output, or the D input of any flip-flop, lies in the
/// transitive fanout of `from` — i.e. whether a fault at `from` is
/// potentially observable now or in a later time frame.
bool reaches_observation_point(const Circuit& c, NodeId from);

}  // namespace gatpg::netlist
