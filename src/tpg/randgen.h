// Random and weighted-random sequential test generation baselines.
//
// §I of the paper traces simulation-based test generation from random [9]
// and weighted-random [10-12] pattern generators; these are the floor any
// targeted generator must beat.  Vectors are generated in blocks, graded by
// the fault simulator (with fault dropping and state continuity), and
// generation stops when a run of blocks adds no detections.
//
// The weighted generator first scores a handful of per-input one-probability
// profiles by trial blocks and keeps the best (a pragmatic stand-in for the
// testability-driven weight computation of [11]).  The audition reuses the
// session's fault simulator, restored to power-up between trials via
// reset_all(), instead of constructing a throwaway simulator per trial.
#pragma once

#include <cstdint>

#include "fault/faultlist.h"
#include "netlist/circuit.h"
#include "session/session.h"
#include "sim/seqsim.h"
#include "util/rng.h"

namespace gatpg::tpg {

struct RandomGenConfig {
  std::size_t max_vectors = 4096;
  std::size_t block_size = 32;
  /// Stop after this many consecutive blocks without a new detection.
  unsigned stagnation_blocks = 8;
  bool weighted = false;
  /// Weight profiles auditioned when weighted == true.
  std::size_t weight_trials = 6;
  std::uint64_t seed = 1;
};

/// The unified session result plus the chosen weight profile.
struct RandomGenResult : session::SessionResult {
  /// The per-PI one-probabilities used (all 0.5 when unweighted).
  std::vector<double> weights;
};

/// Block-at-a-time (weighted-)random generation as a session engine.
class RandomEngine : public session::Engine {
 public:
  RandomEngine(const netlist::Circuit& c, const RandomGenConfig& config);

  const char* name() const override { return "random"; }
  void run(session::Session& session, const session::PassConfig& pass,
           const util::Deadline& deadline) override;

  /// Valid after run(): the weight profile the audition settled on.
  const std::vector<double>& weights() const { return weights_; }

  /// Snapshot hooks: the block RNG stream, the audition's chosen weight
  /// profile, and the stagnation counter.  A resumed run skips the audition
  /// (its probes were consumed by the checkpointed run) and continues
  /// block generation directly.
  void save_state(serialize::Writer& w) const override;
  void load_state(serialize::Reader& r) override;

 private:
  const netlist::Circuit& c_;
  const RandomGenConfig& config_;
  util::Rng rng_;
  std::vector<double> weights_;
  unsigned stagnant_ = 0;   // consecutive blocks without a detection
  bool resuming_ = false;   // set by load_state; run() skips the audition
};

RandomGenResult random_pattern_generate(
    const netlist::Circuit& c, const RandomGenConfig& config,
    session::ProgressObserver* observer = nullptr);

}  // namespace gatpg::tpg
