#include "tpg/alternating.h"

#include "atpg/detengine.h"
#include "atpg/justify.h"
#include "tpg/simgen.h"
#include "util/rng.h"

namespace gatpg::tpg {

using sim::Sequence;
using sim::V3;

AlternatingResult alternating_hybrid_generate(
    const netlist::Circuit& c, const AlternatingConfig& config) {
  AlternatingResult result;

  SimGenConfig sim_config;
  sim_config.population = config.population;
  sim_config.generations = config.generations;
  sim_config.sequence_length = config.sequence_length;
  sim_config.fault_sample = config.fault_sample;
  sim_config.seed = config.seed;
  SimulationTestGenerator simgen(c, sim_config);
  result.total_faults = simgen.fault_list().size();

  std::vector<char> untestable(result.total_faults, 0);
  util::Rng rng(config.seed ^ 0xfeedULL);
  const auto deadline = util::Deadline::after_seconds(config.time_limit_s);

  unsigned barren_rounds = 0;
  unsigned det_failures = 0;
  std::size_t next_target = 0;

  auto all_resolved = [&] {
    for (std::size_t i = 0; i < result.total_faults; ++i) {
      if (!simgen.fault_simulator().detected()[i] && !untestable[i]) {
        return false;
      }
    }
    return true;
  };

  while (!deadline.expired() && det_failures < config.det_failures_to_stop &&
         !all_resolved()) {
    // --- Simulation phase -------------------------------------------------
    while (barren_rounds < config.switch_after && !deadline.expired()) {
      const std::size_t newly = simgen.step(deadline);
      ++result.ga_rounds;
      barren_rounds = newly == 0 ? barren_rounds + 1 : 0;
      if (simgen.fault_simulator().detected_count() == result.total_faults) {
        break;
      }
    }
    barren_rounds = 0;
    if (deadline.expired()) break;

    // --- Deterministic phase: one targeted fault --------------------------
    // Round-robin over unresolved faults so repeated switches make progress.
    std::size_t target = result.total_faults;
    for (std::size_t probe = 0; probe < result.total_faults; ++probe) {
      const std::size_t i = (next_target + probe) % result.total_faults;
      if (!simgen.fault_simulator().detected()[i] && !untestable[i]) {
        target = i;
        break;
      }
    }
    if (target == result.total_faults) break;  // everything resolved
    next_target = target + 1;
    ++result.det_targets;

    const fault::Fault& f = simgen.fault_list().faults[target];
    const auto fault_deadline =
        util::Deadline::after_seconds(config.det_limits.time_limit_s);
    atpg::ForwardEngine forward(c, f, config.det_limits);
    atpg::DeterministicJustifier justifier(c, config.det_limits);
    bool produced = false;
    for (int attempt = 0; attempt < 8 && !produced; ++attempt) {
      const auto status = forward.next_solution(fault_deadline);
      if (status == atpg::ForwardStatus::kUntestable) {
        untestable[target] = 1;
        ++result.untestable;
        break;
      }
      if (status != atpg::ForwardStatus::kSolved) break;
      const auto required = forward.required_state();
      Sequence test;
      bool needs_state = false;
      for (V3 v : required) needs_state |= v != V3::kX;
      if (needs_state) {
        const auto just = justifier.justify(required, fault_deadline);
        if (just.status !=
            atpg::DeterministicJustifier::Status::kJustified) {
          continue;
        }
        test = just.sequence;
      }
      const auto vectors = forward.vectors();
      test.insert(test.end(), vectors.begin(), vectors.end());
      for (auto& v : test) {
        for (auto& bit : v) {
          if (bit == V3::kX) bit = rng.bit() ? V3::k1 : V3::k0;
        }
      }
      if (!simgen.fault_simulator().would_detect(target, test)) continue;
      simgen.apply(test);
      produced = true;
      ++result.det_successes;
    }
    det_failures = produced || untestable[target] ? 0 : det_failures + 1;
  }

  result.test_set = simgen.test_set();
  result.detected = simgen.fault_simulator().detected_count();
  return result;
}

}  // namespace gatpg::tpg
