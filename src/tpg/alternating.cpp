#include "tpg/alternating.h"

#include <array>

#include "atpg/detengine.h"
#include "atpg/justify.h"
#include "serialize/archive.h"

namespace gatpg::tpg {

using sim::Sequence;
using sim::V3;

DetTargetEngine::DetTargetEngine(const netlist::Circuit& c,
                                 const atpg::SearchLimits& limits,
                                 util::Rng& rng)
    : c_(c),
      limits_(limits),
      rng_(rng),
      obs_dist_(atpg::share_observation_distances(c)),
      model_pool_(c) {}

std::size_t DetTargetEngine::step(session::Session& s,
                                  const util::Deadline&) {
  last_ = {};
  session::FaultManager& fm = s.faults();
  // Round-robin over unresolved faults so repeated switches make progress.
  const std::size_t target = fm.next_undetected(next_target_);
  if (target == fm.size()) return 0;  // everything resolved
  last_.had_target = true;
  next_target_ = target + 1;
  ++s.counters().targeted;

  const fault::Fault& f = fm.fault(target);
  const auto fault_deadline =
      util::Deadline::after_seconds(limits_.time_limit_s);
  atpg::ForwardEngine forward(c_, f, limits_, obs_dist_, &model_pool_);
  atpg::DeterministicJustifier justifier(c_, limits_, nullptr, &model_pool_);
  atpg::SearchStats det_total;  // justifier stats, summed over attempts
  bool produced = false;
  std::size_t newly = 0;
  for (int attempt = 0; attempt < 8 && !produced; ++attempt) {
    const auto status = forward.next_solution(fault_deadline);
    if (status == atpg::ForwardStatus::kUntestable) {
      fm.mark_untestable(target);
      last_.resolved = true;
      break;
    }
    if (status != atpg::ForwardStatus::kSolved) break;
    const auto required = forward.required_state();
    Sequence test;
    bool needs_state = false;
    for (V3 v : required) needs_state |= v != V3::kX;
    if (needs_state) {
      const auto just = justifier.justify(required, fault_deadline);
      const atpg::SearchStats& js = justifier.stats();
      det_total.decisions += js.decisions;
      det_total.backtracks += js.backtracks;
      det_total.gate_evals += js.gate_evals;
      det_total.events += js.events;
      if (just.status != atpg::DeterministicJustifier::Status::kJustified) {
        continue;
      }
      test = just.sequence;
    }
    const auto vectors = forward.vectors();
    test.insert(test.end(), vectors.begin(), vectors.end());
    for (auto& v : test) {
      for (auto& bit : v) {
        if (bit == V3::kX) bit = rng_.bit() ? V3::k1 : V3::k0;
      }
    }
    if (!s.simulator().would_detect(target, test)) continue;
    newly = s.commit_test(std::move(test));
    fm.absorb_detections(s.simulator().detected());
    produced = true;
    last_.resolved = true;
    ++s.counters().committed_tests;
  }

  // Deterministic-engine effort accounting (per fault and cumulative).
  const atpg::SearchStats& fs = forward.stats();
  session::TargetEffort effort;
  effort.fault_index = target;
  effort.decisions = fs.decisions + det_total.decisions;
  effort.backtracks = fs.backtracks + det_total.backtracks;
  effort.gate_evals = fs.gate_evals + det_total.gate_evals;
  effort.events = fs.events + det_total.events;
  session::EngineCounters& counters = s.counters();
  counters.det_decisions += effort.decisions;
  counters.det_backtracks += effort.backtracks;
  counters.det_gate_evals += effort.gate_evals;
  counters.det_events += effort.events;
  // Absolute pool tallies (not deltas): pool reuse keeps constructions at
  // a handful per session instead of one per targeted fault.  The resume
  // baselines continue a checkpointed run's totals (zero otherwise).
  counters.det_model_builds =
      pool_builds_base_ + static_cast<long>(model_pool_.constructions());
  counters.det_model_acquires =
      pool_acquires_base_ + static_cast<long>(model_pool_.acquires());
  if (s.observer()) s.observer()->on_target_end(s, effort);
  return newly;
}

void DetTargetEngine::run(session::Session& s, const session::PassConfig&,
                          const util::Deadline& deadline) {
  while (!deadline.expired() && !s.stop_requested()) {
    step(s, deadline);
    if (!last_.had_target) break;
    s.checkpoint_tick();  // one targeted fault = one unit of work
  }
}

void DetTargetEngine::save_state(serialize::Writer& w) const {
  for (const std::uint64_t word : rng_.state_words()) w.u64(word);
  w.u64(next_target_);
  w.i64(pool_builds_base_ + static_cast<long>(model_pool_.constructions()));
  w.i64(pool_acquires_base_ + static_cast<long>(model_pool_.acquires()));
  w.u64(model_pool_.inventory());
}

void DetTargetEngine::load_state(serialize::Reader& r) {
  std::array<std::uint64_t, 4> words;
  for (std::uint64_t& word : words) word = r.u64();
  rng_.set_state_words(words);
  next_target_ = static_cast<std::size_t>(r.u64());
  pool_builds_base_ = static_cast<long>(r.i64());
  pool_acquires_base_ = static_cast<long>(r.i64());
  // Rebuild the checkpointed inventory without counting, so post-resume
  // construction only happens where the uninterrupted pool would also grow.
  model_pool_.prewarm(static_cast<std::size_t>(r.u64()));
  pool_builds_base_ -= static_cast<long>(model_pool_.constructions());
  pool_acquires_base_ -= static_cast<long>(model_pool_.acquires());
}

namespace {
SimGenConfig make_sim_config(const AlternatingConfig& config) {
  SimGenConfig sim_config;
  sim_config.population = config.population;
  sim_config.generations = config.generations;
  sim_config.sequence_length = config.sequence_length;
  sim_config.fault_sample = config.fault_sample;
  sim_config.seed = config.seed;
  return sim_config;
}
}  // namespace

AlternatingEngine::AlternatingEngine(const netlist::Circuit& c,
                                     const AlternatingConfig& config)
    : config_(config),
      sim_config_(make_sim_config(config)),
      rng_(config.seed ^ 0xfeedULL),
      simgen_(c, sim_config_),
      det_(c, config_.det_limits, rng_) {}

void AlternatingEngine::run(session::Session& s, const session::PassConfig&,
                            const util::Deadline& deadline) {
  session::FaultManager& fm = s.faults();
  // A resumed run keeps the checkpointed phase counters; a fresh entry
  // starts from a clean alternation.
  if (!resuming_) {
    barren_rounds_ = 0;
    det_failures_ = 0;
  }
  resuming_ = false;

  while (!deadline.expired() && !s.stop_requested() &&
         det_failures_ < config_.det_failures_to_stop && !fm.all_resolved()) {
    // --- Simulation phase -------------------------------------------------
    while (barren_rounds_ < config_.switch_after && !deadline.expired() &&
           !s.stop_requested() && fm.detected_count() < fm.size()) {
      const std::size_t newly = simgen_.step(s, deadline);
      s.note_round();
      barren_rounds_ = newly == 0 ? barren_rounds_ + 1 : 0;
      s.checkpoint_tick();  // one committed GA round = one unit of work
    }
    if (deadline.expired() || s.stop_requested()) break;
    barren_rounds_ = 0;

    // --- Deterministic phase: one targeted fault --------------------------
    det_.step(s, deadline);
    const DetTargetEngine::Outcome& outcome = det_.last_outcome();
    if (!outcome.had_target) break;  // everything resolved
    det_failures_ = outcome.resolved ? 0 : det_failures_ + 1;
    s.checkpoint_tick();  // one targeted fault = one unit of work
  }
}

void AlternatingEngine::save_state(serialize::Writer& w) const {
  w.u32(barren_rounds_);
  w.u32(det_failures_);
  simgen_.save_state(w);
  det_.save_state(w);  // covers the shared rng_ (held by reference)
}

void AlternatingEngine::load_state(serialize::Reader& r) {
  barren_rounds_ = r.u32();
  det_failures_ = r.u32();
  simgen_.load_state(r);
  det_.load_state(r);
  resuming_ = true;
}

AlternatingResult alternating_hybrid_generate(
    const netlist::Circuit& c, const AlternatingConfig& config,
    session::ProgressObserver* observer) {
  session::SessionConfig session_config;
  session_config.faultsim = config.faultsim;
  session::Session s(c, session_config);
  s.set_observer(observer);
  AlternatingEngine engine(c, config);
  return s.run(engine, session::PassSchedule::single(config.time_limit_s));
}

}  // namespace gatpg::tpg
