#include "tpg/simgen.h"

#include <algorithm>

namespace gatpg::tpg {

using sim::Sequence;
using sim::V3;
using sim::Vector3;

SimulationTestGenerator::SimulationTestGenerator(const netlist::Circuit& c,
                                                 SimGenConfig config)
    : c_(c),
      config_(config),
      faults_(fault::collapse(c)),
      fsim_(c, faults_.faults, config.faultsim),
      rng_(config.seed) {}

std::vector<std::size_t> SimulationTestGenerator::sample_undetected() {
  std::vector<std::size_t> undetected;
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (!fsim_.detected()[i]) undetected.push_back(i);
  }
  if (undetected.size() <= config_.fault_sample) return undetected;
  // Partial Fisher-Yates for an unbiased sample.
  for (std::size_t i = 0; i < config_.fault_sample; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng_.below(undetected.size() - i));
    std::swap(undetected[i], undetected[j]);
  }
  undetected.resize(config_.fault_sample);
  return undetected;
}

std::size_t SimulationTestGenerator::apply(const Sequence& seq) {
  const auto newly = fsim_.run(seq);
  test_set_.insert(test_set_.end(), seq.begin(), seq.end());
  return newly.size();
}

std::size_t SimulationTestGenerator::step(const util::Deadline& deadline) {
  const std::size_t npi = c_.primary_inputs().size();
  if (npi == 0) return 0;
  const auto sample = sample_undetected();
  if (sample.empty()) return 0;

  ga::GaConfig ga_config;
  ga_config.population_size = config_.population;
  ga_config.generations = config_.generations;
  ga_config.chromosome_bits = config_.sequence_length * npi;
  ga_config.seed = config_.seed ^ (0x51ed2701ULL * ++round_counter_);

  auto decode = [&](const ga::Chromosome& chromosome) {
    Sequence seq(config_.sequence_length, Vector3(npi));
    for (unsigned t = 0; t < config_.sequence_length; ++t) {
      for (std::size_t i = 0; i < npi; ++i) {
        seq[t][i] = chromosome[t * npi + i] ? V3::k1 : V3::k0;
      }
    }
    return seq;
  };

  const auto evaluate = [&](std::span<const ga::Chromosome> population,
                            std::span<double> fitness) {
    for (std::size_t i = 0; i < population.size(); ++i) {
      const auto what = fsim_.what_if(sample, decode(population[i]));
      fitness[i] = static_cast<double>(what.detected) +
                   config_.effect_weight * what.state_effects;
      ++evaluations_;
    }
    return deadline.expired();
  };

  const ga::GaResult best = ga::GaEngine(ga_config).run(evaluate);
  if (best.best.empty()) return 0;
  return apply(decode(best.best));
}

SimGenResult SimulationTestGenerator::run() {
  SimGenResult result;
  result.total_faults = faults_.size();
  const auto deadline = util::Deadline::after_seconds(config_.time_limit_s);
  unsigned stagnant = 0;
  while (stagnant < config_.stagnation_rounds && !deadline.expired() &&
         fsim_.detected_count() < faults_.size()) {
    const std::size_t newly = step(deadline);
    ++result.rounds;
    stagnant = newly == 0 ? stagnant + 1 : 0;
  }
  result.test_set = test_set_;
  result.detected = fsim_.detected_count();
  result.evaluations = evaluations_;
  return result;
}

}  // namespace gatpg::tpg
