#include "tpg/simgen.h"

#include <algorithm>
#include <array>

#include "serialize/archive.h"

namespace gatpg::tpg {

using sim::Sequence;
using sim::V3;
using sim::Vector3;

SimGenEngine::SimGenEngine(const netlist::Circuit& c,
                           const SimGenConfig& config)
    : c_(c), config_(config), rng_(config.seed) {}

std::size_t SimGenEngine::step(session::Session& s,
                               const util::Deadline& deadline) {
  const std::size_t npi = c_.primary_inputs().size();
  if (npi == 0) return 0;
  const auto sample = s.faults().sample_undropped(rng_, config_.fault_sample);
  if (sample.empty()) return 0;

  ga::GaConfig ga_config;
  ga_config.population_size = config_.population;
  ga_config.generations = config_.generations;
  ga_config.chromosome_bits = config_.sequence_length * npi;
  ga_config.seed = config_.seed ^ (0x51ed2701ULL * ++round_counter_);

  auto decode = [&](const ga::Chromosome& chromosome) {
    Sequence seq(config_.sequence_length, Vector3(npi));
    for (unsigned t = 0; t < config_.sequence_length; ++t) {
      for (std::size_t i = 0; i < npi; ++i) {
        seq[t][i] = chromosome[t * npi + i] ? V3::k1 : V3::k0;
      }
    }
    return seq;
  };

  const auto evaluate = [&](std::span<const ga::Chromosome> population,
                            std::span<double> fitness) {
    for (std::size_t i = 0; i < population.size(); ++i) {
      const auto what = s.simulator().what_if(sample, decode(population[i]));
      fitness[i] = static_cast<double>(what.detected) +
                   config_.effect_weight * what.state_effects;
      s.note_evaluations(1);
    }
    return deadline.expired();
  };

  const ga::GaResult best = ga::GaEngine(ga_config).run(evaluate);
  if (best.best.empty()) return 0;
  const std::size_t newly = s.commit_test(decode(best.best));
  s.faults().absorb_detections(s.simulator().detected());
  return newly;
}

void SimGenEngine::run(session::Session& s, const session::PassConfig&,
                       const util::Deadline& deadline) {
  // A resumed run keeps the checkpointed stagnation window; a fresh pass
  // entry starts a new one.
  if (!resuming_) stagnant_ = 0;
  resuming_ = false;
  while (stagnant_ < config_.stagnation_rounds && !deadline.expired() &&
         !s.stop_requested() &&
         s.faults().detected_count() < s.faults().size()) {
    const std::size_t newly = step(s, deadline);
    s.note_round();
    stagnant_ = newly == 0 ? stagnant_ + 1 : 0;
    s.checkpoint_tick();  // one committed GA round = one unit of work
  }
}

void SimGenEngine::save_state(serialize::Writer& w) const {
  for (const std::uint64_t word : rng_.state_words()) w.u64(word);
  w.u64(round_counter_);
  w.u32(stagnant_);
}

void SimGenEngine::load_state(serialize::Reader& r) {
  std::array<std::uint64_t, 4> words;
  for (std::uint64_t& word : words) word = r.u64();
  rng_.set_state_words(words);
  round_counter_ = r.u64();
  stagnant_ = r.u32();
  resuming_ = true;
}

namespace {
session::SessionConfig simgen_session_config(const SimGenConfig& config) {
  session::SessionConfig sc;
  sc.faultsim = config.faultsim;
  return sc;
}
}  // namespace

SimulationTestGenerator::SimulationTestGenerator(const netlist::Circuit& c,
                                                 SimGenConfig config)
    : config_(config),
      session_(c, simgen_session_config(config_)),
      engine_(c, config_) {}

std::size_t SimulationTestGenerator::apply(const Sequence& seq) {
  const std::size_t newly = session_.commit_test(seq);
  session_.faults().absorb_detections(session_.simulator().detected());
  return newly;
}

std::size_t SimulationTestGenerator::step(const util::Deadline& deadline) {
  return engine_.step(session_, deadline);
}

SimGenResult SimulationTestGenerator::run(
    session::ProgressObserver* observer) {
  session_.set_observer(observer);
  return session_.run(engine_,
                      session::PassSchedule::single(config_.time_limit_s));
}

}  // namespace gatpg::tpg
