// Alternating simulation/deterministic hybrid — Saab, Saab & Abraham's
// "iterative [simulation-based genetics + deterministic techniques] =
// complete ATPG" (the paper's reference [19] and the hybrid design GA-HITEC
// is explicitly contrasted against in §I).
//
// The generator runs the simulation-based GA (simgen.h) until a fixed
// number of evolved sequences add no detections, then *switches* to the
// deterministic engine for a single targeted fault (excitation, propagation
// and reverse-time justification), applies the resulting test, and resumes
// simulation-based generation.  Compare with GA-HITEC, which instead fuses
// the two approaches inside each targeted fault.
//
// On the session layer the alternation is literal composition: one shared
// Session (fault population, test set, fault simulator) is driven by a
// SimGenEngine and a DetTargetEngine; AlternatingEngine just schedules the
// switches between them.
#pragma once

#include <cstdint>

#include "atpg/detengine.h"
#include "atpg/limits.h"
#include "netlist/circuit.h"
#include "session/session.h"
#include "sim/seqsim.h"
#include "tpg/simgen.h"
#include "util/rng.h"

namespace gatpg::tpg {

struct AlternatingConfig {
  /// Simulation-phase GA settings (see SimGenConfig).
  std::size_t population = 64;
  unsigned generations = 8;
  unsigned sequence_length = 20;
  std::size_t fault_sample = 64;
  /// Switch to the deterministic phase after this many barren GA rounds.
  unsigned switch_after = 3;
  /// Per-fault limits for the deterministic phase.
  atpg::SearchLimits det_limits;
  /// Stop after this many consecutive deterministic targets fail.
  unsigned det_failures_to_stop = 8;
  double time_limit_s = 10.0;
  std::uint64_t seed = 1;
  /// Fault-simulator engine options (threads, differential vs full-sweep).
  fault::FaultSimConfig faultsim;
};

/// Unified session result.  The former field spellings map as: ga_rounds ->
/// rounds, det_targets -> counters.targeted, det_successes ->
/// counters.committed_tests.
using AlternatingResult = session::SessionResult;

/// One deterministically targeted fault per step(): round-robin target
/// selection, bounded forward search, reverse-time justification, random
/// X-fill, verification, commit.  Used as the deterministic phase of the
/// alternating hybrid and reusable standalone.
class DetTargetEngine : public session::Engine {
 public:
  struct Outcome {
    bool had_target = false;  // an undetected fault was available
    bool resolved = false;    // it was detected or proven untestable
  };

  /// `rng` supplies the X-fill stream and must outlive the engine.
  DetTargetEngine(const netlist::Circuit& c, const atpg::SearchLimits& limits,
                  util::Rng& rng);

  const char* name() const override { return "det-target"; }
  void run(session::Session& session, const session::PassConfig& pass,
           const util::Deadline& deadline) override;
  std::size_t step(session::Session& session,
                   const util::Deadline& deadline) override;

  const Outcome& last_outcome() const { return last_; }

  /// Snapshot hooks: the X-fill RNG stream (the caller-owned object this
  /// engine holds by reference), the round-robin cursor, and the model-pool
  /// tallies/inventory (baselines + prewarm, as in HybridEngine).
  void save_state(serialize::Writer& w) const override;
  void load_state(serialize::Reader& r) override;

 private:
  const netlist::Circuit& c_;
  const atpg::SearchLimits& limits_;
  util::Rng& rng_;
  /// Observation-distance table shared by every per-fault ForwardEngine.
  atpg::ObsDistances obs_dist_;
  /// FrameModel pool shared across targeted faults (reset-and-reuse
  /// instead of per-target construction; tallies go to EngineCounters).
  atpg::FrameModelPool model_pool_;
  std::size_t next_target_ = 0;  // round-robin cursor
  Outcome last_;
  /// Checkpointed pool tallies carried across a resume (zero for a
  /// never-resumed engine); mirrored counters report base + live tallies.
  long pool_builds_base_ = 0;
  long pool_acquires_base_ = 0;
};

/// The alternation scheduler: SimGenEngine rounds until `switch_after`
/// barren ones, then one DetTargetEngine step, repeated until the time
/// budget, `det_failures_to_stop`, or full resolution.
class AlternatingEngine : public session::Engine {
 public:
  AlternatingEngine(const netlist::Circuit& c,
                    const AlternatingConfig& config);

  const char* name() const override { return "alternating"; }
  void run(session::Session& session, const session::PassConfig& pass,
           const util::Deadline& deadline) override;

  /// Snapshot hooks: the phase counters plus both sub-engines' state (the
  /// shared X-fill RNG is covered by the DetTargetEngine hook, which
  /// serializes the referenced object).
  void save_state(serialize::Writer& w) const override;
  void load_state(serialize::Reader& r) override;

 private:
  const AlternatingConfig& config_;
  SimGenConfig sim_config_;
  util::Rng rng_;
  SimGenEngine simgen_;
  DetTargetEngine det_;
  unsigned barren_rounds_ = 0;  // barren GA rounds in the current sim phase
  unsigned det_failures_ = 0;   // consecutive unresolved det targets
  bool resuming_ = false;       // set by load_state; run() keeps the counters
};

AlternatingResult alternating_hybrid_generate(
    const netlist::Circuit& c, const AlternatingConfig& config,
    session::ProgressObserver* observer = nullptr);

}  // namespace gatpg::tpg
