// Alternating simulation/deterministic hybrid — Saab, Saab & Abraham's
// "iterative [simulation-based genetics + deterministic techniques] =
// complete ATPG" (the paper's reference [19] and the hybrid design GA-HITEC
// is explicitly contrasted against in §I).
//
// The generator runs the simulation-based GA (simgen.h) until a fixed
// number of evolved sequences add no detections, then *switches* to the
// deterministic engine for a single targeted fault (excitation, propagation
// and reverse-time justification), applies the resulting test, and resumes
// simulation-based generation.  Compare with GA-HITEC, which instead fuses
// the two approaches inside each targeted fault.
#pragma once

#include <cstdint>

#include "atpg/limits.h"
#include "sim/seqsim.h"
#include "netlist/circuit.h"

namespace gatpg::tpg {

struct AlternatingConfig {
  /// Simulation-phase GA settings (see SimGenConfig).
  std::size_t population = 64;
  unsigned generations = 8;
  unsigned sequence_length = 20;
  std::size_t fault_sample = 64;
  /// Switch to the deterministic phase after this many barren GA rounds.
  unsigned switch_after = 3;
  /// Per-fault limits for the deterministic phase.
  atpg::SearchLimits det_limits;
  /// Stop after this many consecutive deterministic targets fail.
  unsigned det_failures_to_stop = 8;
  double time_limit_s = 10.0;
  std::uint64_t seed = 1;
};

struct AlternatingResult {
  sim::Sequence test_set;
  std::size_t detected = 0;
  std::size_t untestable = 0;
  std::size_t total_faults = 0;
  long ga_rounds = 0;
  long det_targets = 0;
  long det_successes = 0;
};

AlternatingResult alternating_hybrid_generate(const netlist::Circuit& c,
                                              const AlternatingConfig& config);

}  // namespace gatpg::tpg
