// Simulation-based GA test generation (GATEST/CRIS style, the paper's
// references [15-18] and the other half of its motivation).
//
// Where GA-HITEC targets one fault and uses the GA only for state
// justification, this generator evolves whole candidate *test sequences*
// against the undetected-fault population: the fitness of a candidate is
// the number of sampled faults it would detect plus partial credit for
// fault effects it parks on flip-flops (the classic GATEST shaping term).
// The best sequence of each GA round is appended to the test set (with
// fault dropping), and generation stops when rounds stop paying.
//
// SimGenEngine is the session::Engine form (one GA round per step); it is
// both a baseline for the hybrid benches and the simulation-based phase of
// the alternating hybrid (alternating.h).  SimulationTestGenerator is the
// conventional facade over a self-owned session.
#pragma once

#include <cstdint>

#include "fault/faultlist.h"
#include "fault/faultsim.h"
#include "ga/genetic.h"
#include "netlist/circuit.h"
#include "session/session.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace gatpg::tpg {

struct SimGenConfig {
  std::size_t population = 64;   // multiple of 2 (GA requirement)
  unsigned generations = 8;
  unsigned sequence_length = 20;
  /// Undetected faults sampled per fitness evaluation round.
  std::size_t fault_sample = 64;
  /// Partial credit for a fault effect left on a flip-flop.
  double effect_weight = 0.2;
  /// Stop after this many consecutive rounds without a new detection.
  unsigned stagnation_rounds = 4;
  double time_limit_s = 10.0;
  std::uint64_t seed = 1;
  /// Fault-simulator engine options (threads, differential vs full-sweep).
  fault::FaultSimConfig faultsim;
};

/// The simulation-based generator now returns the unified session result
/// (detected()/rounds/evaluations keep their former meanings).
using SimGenResult = session::SessionResult;

/// One GA round per step(); run() loops rounds until coverage stalls.
/// Holds its own RNG/round-counter streams so seeded runs reproduce
/// bit-identically regardless of which session drives it.
class SimGenEngine : public session::Engine {
 public:
  SimGenEngine(const netlist::Circuit& c, const SimGenConfig& config);

  const char* name() const override { return "simgen"; }
  void run(session::Session& session, const session::PassConfig& pass,
           const util::Deadline& deadline) override;
  /// One GA round: evolves a sequence against a sample of the undropped
  /// faults and commits the best.  Returns the newly detected count.
  std::size_t step(session::Session& session,
                   const util::Deadline& deadline) override;

  /// Snapshot hooks: the sampling RNG stream, the per-round GA seed
  /// counter, and the stagnation counter (hoisted out of run()'s locals so
  /// a resumed run continues the stall window where it left off).
  void save_state(serialize::Writer& w) const override;
  void load_state(serialize::Reader& r) override;

 private:
  const netlist::Circuit& c_;
  const SimGenConfig& config_;
  util::Rng rng_;
  std::uint64_t round_counter_ = 0;
  unsigned stagnant_ = 0;      // consecutive rounds without a detection
  bool resuming_ = false;      // set by load_state; run() keeps stagnant_
};

class SimulationTestGenerator {
 public:
  SimulationTestGenerator(const netlist::Circuit& c, SimGenConfig config);

  /// Runs rounds until coverage stalls, time expires, or everything is
  /// detected.  An optional observer receives the single pass report.
  SimGenResult run(session::ProgressObserver* observer = nullptr);

  // -- Stepwise interface (used by tests and examples) ---------------------

  /// One GA round: evolves a sequence against the current undetected set
  /// and commits the best.  Returns the number of newly detected faults.
  std::size_t step(const util::Deadline& deadline);

  /// Applies an externally generated sequence (e.g. from the deterministic
  /// engine) with fault dropping.  Returns newly detected count.
  std::size_t apply(const sim::Sequence& seq);

  const fault::FaultSimulator& fault_simulator() const {
    return session_.simulator();
  }
  fault::FaultSimulator& fault_simulator() { return session_.simulator(); }
  const fault::FaultList& fault_list() const {
    return session_.faults().list();
  }
  const sim::Sequence& test_set() const { return session_.tests().test_set(); }
  long evaluations() const { return session_.evaluations(); }

 private:
  SimGenConfig config_;
  session::Session session_;
  SimGenEngine engine_;
};

}  // namespace gatpg::tpg
