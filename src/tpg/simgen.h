// Simulation-based GA test generation (GATEST/CRIS style, the paper's
// references [15-18] and the other half of its motivation).
//
// Where GA-HITEC targets one fault and uses the GA only for state
// justification, this generator evolves whole candidate *test sequences*
// against the undetected-fault population: the fitness of a candidate is
// the number of sampled faults it would detect plus partial credit for
// fault effects it parks on flip-flops (the classic GATEST shaping term).
// The best sequence of each GA round is appended to the test set (with
// fault dropping), and generation stops when rounds stop paying.
//
// It is both a baseline for the hybrid benches and the simulation-based
// phase of the alternating hybrid (alternating.h).
#pragma once

#include <cstdint>

#include "fault/faultlist.h"
#include "fault/faultsim.h"
#include "ga/genetic.h"
#include "netlist/circuit.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace gatpg::tpg {

struct SimGenConfig {
  std::size_t population = 64;   // multiple of 2 (GA requirement)
  unsigned generations = 8;
  unsigned sequence_length = 20;
  /// Undetected faults sampled per fitness evaluation round.
  std::size_t fault_sample = 64;
  /// Partial credit for a fault effect left on a flip-flop.
  double effect_weight = 0.2;
  /// Stop after this many consecutive rounds without a new detection.
  unsigned stagnation_rounds = 4;
  double time_limit_s = 10.0;
  std::uint64_t seed = 1;
  /// Fault-simulator engine options (threads, differential vs full-sweep).
  fault::FaultSimConfig faultsim;
};

struct SimGenResult {
  sim::Sequence test_set;
  std::size_t detected = 0;
  std::size_t total_faults = 0;
  long rounds = 0;
  long evaluations = 0;
};

class SimulationTestGenerator {
 public:
  SimulationTestGenerator(const netlist::Circuit& c, SimGenConfig config);

  /// Runs rounds until coverage stalls, time expires, or everything is
  /// detected.
  SimGenResult run();

  // -- Stepwise interface (used by the alternating hybrid) -----------------

  /// One GA round: evolves a sequence against the current undetected set
  /// and commits the best.  Returns the number of newly detected faults.
  std::size_t step(const util::Deadline& deadline);

  /// Applies an externally generated sequence (e.g. from the deterministic
  /// engine) with fault dropping.  Returns newly detected count.
  std::size_t apply(const sim::Sequence& seq);

  const fault::FaultSimulator& fault_simulator() const { return fsim_; }
  fault::FaultSimulator& fault_simulator() { return fsim_; }
  const fault::FaultList& fault_list() const { return faults_; }
  const sim::Sequence& test_set() const { return test_set_; }
  long evaluations() const { return evaluations_; }

 private:
  std::vector<std::size_t> sample_undetected();

  const netlist::Circuit& c_;
  SimGenConfig config_;
  fault::FaultList faults_;
  fault::FaultSimulator fsim_;
  sim::Sequence test_set_;
  util::Rng rng_;
  long evaluations_ = 0;
  std::uint64_t round_counter_ = 0;
};

}  // namespace gatpg::tpg
