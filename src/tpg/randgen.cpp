#include "tpg/randgen.h"

#include "fault/faultsim.h"
#include "util/rng.h"

namespace gatpg::tpg {

namespace {

sim::Sequence weighted_block(const netlist::Circuit& c, util::Rng& rng,
                             std::size_t length,
                             const std::vector<double>& weights) {
  sim::Sequence block(length, sim::Vector3(c.primary_inputs().size()));
  for (auto& v : block) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = rng.chance(weights[i]) ? sim::V3::k1 : sim::V3::k0;
    }
  }
  return block;
}

}  // namespace

RandomGenResult random_pattern_generate(const netlist::Circuit& c,
                                        const RandomGenConfig& config) {
  util::Rng rng(config.seed);
  const std::size_t npi = c.primary_inputs().size();
  const auto fault_list = fault::collapse(c);

  RandomGenResult result;
  result.total_faults = fault_list.size();
  result.weights.assign(npi, 0.5);

  if (config.weighted && npi > 0) {
    // Audition profiles: uniform 0.5 plus `weight_trials` random draws from
    // a small palette; keep whichever detects most in one trial block from
    // power-up.
    static constexpr double kPalette[] = {0.1, 0.25, 0.5, 0.75, 0.9};
    std::size_t best_score = 0;
    for (std::size_t trial = 0; trial <= config.weight_trials; ++trial) {
      std::vector<double> candidate(npi, 0.5);
      if (trial > 0) {
        for (auto& w : candidate) {
          w = kPalette[rng.below(std::size(kPalette))];
        }
      }
      util::Rng trial_rng(config.seed ^ (0xabcdULL + trial));
      fault::FaultSimulator probe(c, fault_list.faults);
      probe.run(weighted_block(c, trial_rng, 2 * config.block_size,
                               candidate));
      if (probe.detected_count() > best_score) {
        best_score = probe.detected_count();
        result.weights = candidate;
      }
    }
  }

  fault::FaultSimulator fsim(c, fault_list.faults);
  unsigned stagnant = 0;
  while (result.test_set.size() < config.max_vectors &&
         stagnant < config.stagnation_blocks &&
         fsim.detected_count() < fault_list.size()) {
    const std::size_t remaining = config.max_vectors - result.test_set.size();
    const auto block = weighted_block(
        c, rng, std::min(config.block_size, remaining), result.weights);
    const auto newly = fsim.run(block);
    result.test_set.insert(result.test_set.end(), block.begin(), block.end());
    stagnant = newly.empty() ? stagnant + 1 : 0;
  }
  result.detected = fsim.detected_count();
  return result;
}

}  // namespace gatpg::tpg
