#include "tpg/randgen.h"

#include <algorithm>
#include <array>
#include <utility>

#include "fault/faultsim.h"
#include "serialize/archive.h"

namespace gatpg::tpg {

namespace {

sim::Sequence weighted_block(const netlist::Circuit& c, util::Rng& rng,
                             std::size_t length,
                             const std::vector<double>& weights) {
  sim::Sequence block(length, sim::Vector3(c.primary_inputs().size()));
  for (auto& v : block) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = rng.chance(weights[i]) ? sim::V3::k1 : sim::V3::k0;
    }
  }
  return block;
}

}  // namespace

RandomEngine::RandomEngine(const netlist::Circuit& c,
                           const RandomGenConfig& config)
    : c_(c), config_(config), rng_(config.seed) {}

void RandomEngine::run(session::Session& s, const session::PassConfig&,
                       const util::Deadline&) {
  const std::size_t npi = c_.primary_inputs().size();
  const bool resuming = resuming_;
  resuming_ = false;
  if (!resuming) {
    weights_.assign(npi, 0.5);
    stagnant_ = 0;
  }

  if (!resuming && config_.weighted && npi > 0) {
    // Audition profiles: uniform 0.5 plus `weight_trials` random draws from
    // a small palette; keep whichever detects most in one trial block from
    // power-up.  The session simulator doubles as the probe — reset_all()
    // restores power-up state (all-X machines, no detections) so the real
    // generation below still starts fresh.
    static constexpr double kPalette[] = {0.1, 0.25, 0.5, 0.75, 0.9};
    fault::FaultSimulator& probe = s.simulator();
    std::size_t best_score = 0;
    for (std::size_t trial = 0; trial <= config_.weight_trials; ++trial) {
      std::vector<double> candidate(npi, 0.5);
      if (trial > 0) {
        for (auto& w : candidate) {
          w = kPalette[rng_.below(std::size(kPalette))];
        }
      }
      util::Rng trial_rng(config_.seed ^ (0xabcdULL + trial));
      probe.reset_all();
      probe.run(weighted_block(c_, trial_rng, 2 * config_.block_size,
                               candidate));
      if (probe.detected_count() > best_score) {
        best_score = probe.detected_count();
        weights_ = candidate;
      }
    }
    probe.reset_all();
  }

  while (s.tests().vectors() < config_.max_vectors &&
         stagnant_ < config_.stagnation_blocks && !s.stop_requested() &&
         s.faults().detected_count() < s.faults().size()) {
    const std::size_t remaining = config_.max_vectors - s.tests().vectors();
    const auto block = weighted_block(
        c_, rng_, std::min(config_.block_size, remaining), weights_);
    const std::size_t newly = s.commit_test(block);
    s.faults().absorb_detections(s.simulator().detected());
    stagnant_ = newly == 0 ? stagnant_ + 1 : 0;
    s.checkpoint_tick();  // one committed block = one unit of work
  }
}

void RandomEngine::save_state(serialize::Writer& w) const {
  for (const std::uint64_t word : rng_.state_words()) w.u64(word);
  w.u64(weights_.size());
  for (const double weight : weights_) w.f64(weight);
  w.u32(stagnant_);
}

void RandomEngine::load_state(serialize::Reader& r) {
  std::array<std::uint64_t, 4> words;
  for (std::uint64_t& word : words) word = r.u64();
  rng_.set_state_words(words);
  weights_.resize(r.count(8));  // one f64 per weight
  for (double& weight : weights_) weight = r.f64();
  stagnant_ = r.u32();
  resuming_ = true;
}

RandomGenResult random_pattern_generate(const netlist::Circuit& c,
                                        const RandomGenConfig& config,
                                        session::ProgressObserver* observer) {
  session::Session s(c);
  s.set_observer(observer);
  RandomEngine engine(c, config);
  session::SessionResult base =
      s.run(engine, session::PassSchedule::single(0.0));

  RandomGenResult result;
  static_cast<session::SessionResult&>(result) = std::move(base);
  result.weights = engine.weights();
  return result;
}

}  // namespace gatpg::tpg
