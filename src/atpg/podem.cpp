#include "atpg/podem.h"

namespace gatpg::atpg {

using netlist::GateType;
using netlist::NodeId;
using sim::V3;

namespace {

/// Chooses the fanin to descend into.  `want_all` is true when every input
/// must take the target value (non-controlling case): classic PODEM then
/// picks the hardest (deepest) X input, otherwise the easiest (shallowest).
NodeId pick_x_fanin(const FrameModel& m, unsigned frame, NodeId gate,
                    bool want_all) {
  const auto& c = m.circuit();
  NodeId best = netlist::kNoNode;
  std::uint32_t best_level = 0;
  for (NodeId in : c.fanins(gate)) {
    if (!m.composite(frame, in).any_x()) continue;
    const std::uint32_t lvl = c.level(in);
    if (best == netlist::kNoNode || (want_all ? lvl > best_level
                                              : lvl < best_level)) {
      best = in;
      best_level = lvl;
    }
  }
  return best;
}

}  // namespace

std::optional<InputAssignment> backtrace(const FrameModel& m,
                                         const Objective& obj) {
  const auto& c = m.circuit();
  unsigned frame = obj.frame;
  NodeId node = obj.node;
  V3 value = obj.value;

  // The walk strictly descends through levels/frames, so it terminates.
  for (;;) {
    const GateType t = c.type(node);
    switch (t) {
      case GateType::kInput: {
        const auto pi = static_cast<std::size_t>(c.pi_index(node));
        if (m.pi_value(frame, pi) != V3::kX) return std::nullopt;
        return InputAssignment{false, frame, pi, value};
      }
      case GateType::kDff: {
        const auto ff = static_cast<std::size_t>(c.ff_index(node));
        if (frame == 0) {
          if (m.state_value(ff) != V3::kX) return std::nullopt;
          return InputAssignment{true, 0, ff, value};
        }
        // Cross into the previous time frame through the D input.
        --frame;
        node = c.fanins(node)[0];
        continue;
      }
      case GateType::kConst0:
      case GateType::kConst1:
        return std::nullopt;
      case GateType::kBuf:
        node = c.fanins(node)[0];
        continue;
      case GateType::kNot:
        node = c.fanins(node)[0];
        value = sim::v3_not(value);
        continue;
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        const bool inv = netlist::inverts(t);
        const V3 need = inv ? sim::v3_not(value) : value;
        const bool ctrl = netlist::controlling_value(t);
        const V3 ctrl_v = ctrl ? V3::k1 : V3::k0;
        // need == controlling: one input suffices (easiest X input);
        // need == non-controlling: all inputs needed (hardest X input).
        const bool want_all = need != ctrl_v;
        const NodeId in = pick_x_fanin(m, frame, node, want_all);
        if (in == netlist::kNoNode) return std::nullopt;
        node = in;
        value = need;
        continue;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        // Choose any X input; aim it at the parity implied by the defined
        // inputs (X siblings counted as 0 — a heuristic; implication decides
        // the truth).
        const bool inv = netlist::inverts(t);
        V3 need = inv ? sim::v3_not(value) : value;
        const NodeId in = pick_x_fanin(m, frame, node, /*want_all=*/false);
        if (in == netlist::kNoNode) return std::nullopt;
        for (NodeId sib : c.fanins(node)) {
          if (sib == in) continue;
          const V3 sv = m.good(frame, sib);
          if (sv == V3::k1) need = sim::v3_not(need);
        }
        node = in;
        value = need;
        continue;
      }
    }
  }
}

void DecisionStack::apply(const InputAssignment& a) {
  if (a.is_state) {
    model_.assign_state(a.index, a.value);
  } else {
    model_.assign_pi(a.frame, a.index, a.value);
  }
}

void DecisionStack::undo(const InputAssignment& a) {
  if (a.is_state) {
    model_.clear_state(a.index);
  } else {
    model_.clear_pi(a.frame, a.index);
  }
}

void DecisionStack::push(const InputAssignment& a) {
  Entry e;
  e.assignment = a;
  e.frames_at_push = model_.frame_count();
  e.mark = model_.trail_mark();
  stack_.push_back(e);
  apply(a);
  model_.simulate();  // incremental models already implied during apply
}

bool DecisionStack::backtrack(SearchStats& stats) {
  const bool incremental = model_.incremental();
  while (!stack_.empty()) {
    Entry& top = stack_.back();
    if (incremental) {
      // Restore the exact pre-decision state (values, summaries, and the
      // decision's own assignment) from the trail, then shrink the window.
      model_.undo_to(top.mark);
    }
    model_.set_frame_count(top.frames_at_push);
    if (!top.flipped) {
      top.flipped = true;
      top.assignment.value = sim::v3_not(top.assignment.value);
      apply(top.assignment);
      ++stats.backtracks;
      model_.simulate();
      return true;
    }
    if (!incremental) undo(top.assignment);
    stack_.pop_back();
  }
  model_.simulate();
  return false;
}

void DecisionStack::unwind_all() {
  if (model_.incremental()) {
    if (!stack_.empty()) model_.undo_to(stack_.front().mark);
    stack_.clear();
    model_.set_frame_count(1);
    return;
  }
  while (!stack_.empty()) {
    undo(stack_.back().assignment);
    stack_.pop_back();
  }
  model_.set_frame_count(1);
  model_.simulate();
}

}  // namespace gatpg::atpg
