// PODEM-style decision machinery over a FrameModel.
//
// Decisions are made only on assignable variables (frame PIs and the frame-0
// pseudo state), values are derived by forward implication
// (FrameModel::simulate), and conflicts are resolved by chronological
// backtracking: flip the most recent unflipped decision, or pop it if both
// values failed.  The same machinery drives the forward
// excitation/propagation engine and the per-frame goal searches of the
// deterministic justifier; each supplies its own objective selection and
// conflict predicate.
#pragma once

#include <optional>
#include <vector>

#include "atpg/frame_model.h"
#include "atpg/limits.h"
#include "util/stopwatch.h"

namespace gatpg::atpg {

/// A value requirement at a node used to steer backtrace.
struct Objective {
  unsigned frame = 0;
  netlist::NodeId node = netlist::kNoNode;
  sim::V3 value = sim::V3::kX;
};

/// Where backtrace landed: an unassigned PI of some frame, or a frame-0
/// pseudo-state variable.
struct InputAssignment {
  bool is_state = false;
  unsigned frame = 0;
  std::size_t index = 0;  // PI index or FF index
  sim::V3 value = sim::V3::kX;
};

/// Walks an X-path from `obj` backwards to an unassigned PI or pseudo-state
/// input, crossing flip-flops into earlier frames.  Returns nullopt when no
/// assignable input can influence the objective (the caller backtracks).
std::optional<InputAssignment> backtrace(const FrameModel& m,
                                         const Objective& obj);

/// Search statistics, reported per fault by the engines.
struct SearchStats {
  long decisions = 0;
  long backtracks = 0;
  long gate_evals = 0;  // implication effort: gate evaluations (both planes)
  long events = 0;      // event-queue pops (incremental implication only)
  bool clipped = false;  // some limit clipped the search (no proofs possible)
};

/// Chronological decision stack bound to a FrameModel.
class DecisionStack {
 public:
  explicit DecisionStack(FrameModel& model) : model_(model) {}

  /// Applies a decision and re-implies.
  void push(const InputAssignment& a);

  /// Flips the newest unflipped decision (one backtrack); pops exhausted
  /// decisions.  Restores the frame window recorded with each decision.
  /// Returns false when the stack is exhausted (search space done).
  bool backtrack(SearchStats& stats);

  bool empty() const { return stack_.empty(); }
  std::size_t depth() const { return stack_.size(); }

  /// Clears every decision (leaves the model fully unassigned).
  void unwind_all();

 private:
  struct Entry {
    InputAssignment assignment;
    bool flipped = false;
    unsigned frames_at_push = 1;
    /// Trail mark taken just before the decision was applied (incremental
    /// models): undoing to it restores the exact pre-decision state.
    std::size_t mark = 0;
  };

  void apply(const InputAssignment& a);
  void undo(const InputAssignment& a);

  FrameModel& model_;
  std::vector<Entry> stack_;
};

}  // namespace gatpg::atpg
