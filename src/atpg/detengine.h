// Forward deterministic engine: fault excitation and fault-effect
// propagation over expanded time frames (the HITEC-style front end shared by
// both GA-HITEC and the HITEC baseline).
//
// The fault is excited in time frame 0 and its effects are propagated — in
// frame 0 or across successive frames through flip-flops — until some
// primary output carries D/D̄.  PI assignments in frames 0..k become the
// excitation/propagation vectors; assignments to the frame-0 pseudo state
// become the *required state* handed to state justification (genetic in the
// hybrid's early passes, deterministic later).
//
// next_solution() enumerates alternative excitation/propagation choices: a
// returned solution that later fails justification is treated as a conflict
// and the search resumes (the backtrack loop in the paper's Fig. 1).
// Exhausting the search space without ever clipping on a resource limit
// proves the fault untestable (state variables are free decision variables,
// so exhaustion covers every reachable *and* unreachable state).
//
// Transition faults launch over two frames: the engine normalizes the
// launch to frames (0, 1) — the driver must hold the initial value in frame
// 0 and the final value in frame 1 (WLOG for detection, since the frame-0
// pseudo state is free) — and propagates the conditionally injected effect
// exactly like a stuck-at fault.  The normalization prunes the search
// space, so exhaustion never claims an untestability proof for a transition
// fault: next_solution() reports kExhausted (clipped) instead of
// kUntestable.
#pragma once

#include <memory>

#include "atpg/limits.h"
#include "atpg/podem.h"
#include "util/stopwatch.h"

namespace gatpg::atpg {

/// Shared, immutable distance-to-observation table (see
/// observation_distances below).  The table depends only on the circuit, so
/// sessions compute it once and hand it to every ForwardEngine they build
/// instead of re-running the sweep per targeted fault.
using ObsDistances = std::shared_ptr<const std::vector<std::uint32_t>>;

enum class ForwardStatus {
  kSolved,      // vectors()/required_state() describe a candidate test
  kUntestable,  // search space exhausted with no limit clipped, no solution
  kExhausted,   // no more solutions (some were returned earlier, or clipped)
  kAborted,     // a resource limit stopped the search
};

class ForwardEngine {
 public:
  /// `obs_dist` optionally shares a precomputed observation-distance table
  /// (share_observation_distances); when null the engine computes its own.
  /// `pool` optionally recycles FrameModels across per-fault engines
  /// (sessions build one ForwardEngine per target; the pool makes that a
  /// reset instead of a reallocation); when null the engine owns a private
  /// pool so behavior is identical either way.
  ForwardEngine(const netlist::Circuit& c, const fault::Fault& f,
                const SearchLimits& limits, ObsDistances obs_dist = nullptr,
                FrameModelPool* pool = nullptr);

  /// Finds the next excitation/propagation solution; each call resumes the
  /// search after rejecting the previous solution.
  ForwardStatus next_solution(const util::Deadline& deadline);

  /// Valid after kSolved: vectors for frames 0..k (X where unassigned) and
  /// the frame-0 state requirement.  The requirement is *minimized*: every
  /// pseudo-input assignment whose removal still leaves D/D̄ on a primary
  /// output is dropped back to X (PODEM decisions binarize state variables
  /// even when the detection does not need them; a weaker requirement is
  /// strictly easier to justify and — by 3-valued monotonicity — still
  /// yields a valid test).
  sim::Sequence vectors() const { return model_.extract_vectors(); }
  sim::State3 required_state() const;

  /// Search statistics; gate_evals/events are synced from the model (and
  /// the required_state scratch model) on access.
  const SearchStats& stats() const;
  const FrameModel& model() const { return model_; }

 private:
  bool excitation_conflict() const;
  bool excited_somewhere() const;
  /// Transition faults: true when frames (t, t+1) of the driver hold the
  /// defined initial→final launch pair (X is conservatively "no pair").
  bool launch_pair_at(unsigned t) const;
  bool pick_objective(Objective& obj);
  bool d_pending_at_ff_input() const;
  /// Fills and returns a member buffer (no allocation per decision); the
  /// next call overwrites it.
  std::vector<FrameModel::FrontierGate>& full_frontier() const;

  const netlist::Circuit& c_;
  fault::Fault fault_;
  SearchLimits limits_;
  std::unique_ptr<FrameModelPool> own_pool_;  // pool-less fallback
  FrameModelPool* pool_;                      // never null after construction
  FrameModelHandle model_h_;
  FrameModel& model_;
  DecisionStack stack_;
  mutable SearchStats stats_;
  netlist::NodeId driver_;  // node whose good value excites the fault
  ObsDistances obs_dist_;   // static distance-to-observation (shared)
  /// Lazily acquired scratch model reused across required_state() calls:
  /// reset via the trail (incremental) or reset() (oblivious) instead of
  /// reconstruction.
  mutable FrameModelHandle scratch_;
  mutable std::vector<FrameModel::FrontierGate> frontier_scratch_;
  /// Effort of already-destroyed oblivious required_state scratch models,
  /// folded into stats() so both modes account minimization identically.
  mutable FrameModelStats retired_scratch_stats_;
  bool started_ = false;
  bool any_solution_ = false;
};

/// Static per-node distance to an observation point (levels to the nearest
/// PO, crossing flip-flops at a high penalty), used to order D-frontier
/// gates.  Exposed for tests.
std::vector<std::uint32_t> observation_distances(const netlist::Circuit& c);

/// observation_distances wrapped for sharing across many ForwardEngines.
ObsDistances share_observation_distances(const netlist::Circuit& c);

}  // namespace gatpg::atpg
