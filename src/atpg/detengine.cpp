#include "atpg/detengine.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace gatpg::atpg {

using netlist::GateType;
using netlist::NodeId;
using sim::V3;

std::vector<std::uint32_t> observation_distances(const netlist::Circuit& c) {
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  constexpr std::uint32_t kFrameCost = 1000;  // crossing a flip-flop
  std::vector<std::uint32_t> dist(c.node_count(), kInf);
  // Multi-source shortest path on the reverse graph; weights are 1 (into a
  // combinational gate) or kFrameCost (into a DFF), relaxed by plain
  // Bellman-Ford sweeps until a fixed point.
  auto relax_all = [&] {
    // Bellman-Ford style sweeps; the graph is small and the loop converges
    // in a handful of iterations (longest simple path bounds it).
    bool changed = true;
    while (changed) {
      changed = false;
      for (NodeId n = 0; n < c.node_count(); ++n) {
        for (NodeId out : c.fanouts(n)) {
          const std::uint32_t step =
              c.type(out) == GateType::kDff ? kFrameCost : 1;
          if (dist[out] == kInf) continue;
          const std::uint32_t cand = dist[out] >= kInf - step
                                         ? kInf
                                         : dist[out] + step;
          if (cand < dist[n]) {
            dist[n] = cand;
            changed = true;
          }
        }
      }
    }
  };
  for (NodeId po : c.primary_outputs()) dist[po] = 0;
  relax_all();
  return dist;
}

ObsDistances share_observation_distances(const netlist::Circuit& c) {
  return std::make_shared<const std::vector<std::uint32_t>>(
      observation_distances(c));
}

ForwardEngine::ForwardEngine(const netlist::Circuit& c, const fault::Fault& f,
                             const SearchLimits& limits, ObsDistances obs_dist,
                             FrameModelPool* pool)
    : c_(c),
      fault_(f),
      limits_(limits),
      own_pool_(pool ? nullptr : std::make_unique<FrameModelPool>(c)),
      pool_(pool ? pool : own_pool_.get()),
      model_h_(pool_->acquire(
          f, std::max(1u, limits.max_forward_frames),
          FrameModelConfig{limits.incremental_model, limits.flat_model})),
      model_(*model_h_),
      stack_(model_),
      obs_dist_(obs_dist ? std::move(obs_dist)
                         : share_observation_distances(c)) {
  driver_ = f.pin == fault::kOutputPin
                ? f.node
                : c.fanins(f.node)[static_cast<std::size_t>(f.pin)];
}

const SearchStats& ForwardEngine::stats() const {
  FrameModelStats total = model_.stats();
  total.gate_evals += retired_scratch_stats_.gate_evals;
  total.events += retired_scratch_stats_.events;
  if (scratch_) {
    total.gate_evals += scratch_->stats().gate_evals;
    total.events += scratch_->stats().events;
  }
  stats_.gate_evals = static_cast<long>(total.gate_evals);
  stats_.events = static_cast<long>(total.events);
  return stats_;
}

bool ForwardEngine::launch_pair_at(unsigned t) const {
  const V3 initial = fault_.stuck_at ? V3::k1 : V3::k0;
  const V3 final_v = fault_.stuck_at ? V3::k0 : V3::k1;
  return t + 1 < model_.frame_count() && model_.good(t, driver_) == initial &&
         model_.good(t + 1, driver_) == final_v;
}

bool ForwardEngine::excitation_conflict() const {
  if (fault_.is_transition()) {
    // Launch normalized to frames (0, 1): frame 0 must be able to hold the
    // initial value and frame 1 the final value.
    const V3 initial = fault_.stuck_at ? V3::k1 : V3::k0;
    const V3 v0 = model_.good(0, driver_);
    if (v0 != V3::kX && v0 != initial) return true;
    if (model_.frame_count() >= 2) {
      const V3 v1 = model_.good(1, driver_);
      if (v1 != V3::kX && v1 == initial) return true;
    }
    return false;
  }
  const V3 v = model_.good(0, driver_);
  return v != V3::kX && (v == V3::k1) == fault_.stuck_at;
}

bool ForwardEngine::excited_somewhere() const {
  if (fault_.is_transition()) {
    for (unsigned t = 0; t + 1 < model_.frame_count(); ++t) {
      if (launch_pair_at(t)) return true;
    }
    return false;
  }
  for (unsigned t = 0; t < model_.frame_count(); ++t) {
    const V3 v = model_.good(t, driver_);
    if (v != V3::kX && (v == V3::k1) != fault_.stuck_at) return true;
  }
  return false;
}

std::vector<FrameModel::FrontierGate>& ForwardEngine::full_frontier() const {
  const auto& frontier = model_.d_frontier();
  frontier_scratch_.assign(frontier.begin(), frontier.end());
  // Branch faults: the faulted gate itself propagates the fault effect when
  // its driver carries the non-stuck good value, but the standard frontier
  // rule cannot see it (the branch is not a node).  Same for a faulted DFF
  // D pin, handled in d_pending_at_ff_input().
  if (fault_.pin >= 0 && c_.type(fault_.node) != GateType::kDff) {
    for (unsigned t = 0; t < model_.frame_count(); ++t) {
      if (fault_.is_transition()) {
        // The pin forcing in frame t is a fault effect only when frames
        // (t-1, t) of the driver hold the launch pair.
        if (t == 0 || !launch_pair_at(t - 1)) continue;
      } else {
        const V3 v = model_.good(t, driver_);
        if (v == V3::kX || (v == V3::k1) == fault_.stuck_at) continue;
      }
      if (model_.composite(t, fault_.node).any_x()) {
        frontier_scratch_.push_back({t, fault_.node});
      }
    }
  }
  return frontier_scratch_;
}

bool ForwardEngine::d_pending_at_ff_input() const {
  const unsigned last = model_.frame_count() - 1;
  if (model_.d_reaches_ff_input(last)) return true;
  if (fault_.pin == 0 && c_.type(fault_.node) == GateType::kDff) {
    if (fault_.is_transition()) {
      // The D forcing pending at the last frame's edge surfaces as a D on
      // the flip-flop one frame later iff frames (last-1, last) of the D
      // line hold the launch pair.
      return last >= 1 && launch_pair_at(last - 1);
    }
    const V3 v = model_.good(last, driver_);
    if (v != V3::kX && (v == V3::k1) != fault_.stuck_at) return true;
  }
  return false;
}

bool ForwardEngine::pick_objective(Objective& obj) {
  // Goal 1: excite — stuck-at in frame 0, transitions as the (0, 1) launch
  // pair (initial value in frame 0, final value in frame 1).
  if (fault_.is_transition()) {
    const V3 initial = fault_.stuck_at ? V3::k1 : V3::k0;
    if (model_.good(0, driver_) == V3::kX) {
      obj = {0, driver_, initial};
      return true;
    }
    if (model_.frame_count() >= 2 && model_.good(1, driver_) == V3::kX) {
      obj = {1, driver_, initial == V3::k1 ? V3::k0 : V3::k1};
      return true;
    }
  } else if (model_.good(0, driver_) == V3::kX) {
    obj = {0, driver_, fault_.stuck_at ? V3::k0 : V3::k1};
    return true;
  }
  // Goal 2: drive a D-frontier gate.
  auto& frontier = full_frontier();
  std::sort(frontier.begin(), frontier.end(),
            [&](const FrameModel::FrontierGate& a,
                const FrameModel::FrontierGate& b) {
              const auto da = (*obs_dist_)[a.node];
              const auto db = (*obs_dist_)[b.node];
              if (da != db) return da < db;
              return a.frame > b.frame;
            });
  bool skipped_faulty_only_x = false;
  for (const auto& fg : frontier) {
    const GateType t = c_.type(fg.node);
    // Find an X side input to set to the non-controlling value.
    for (std::size_t p = 0; p < c_.fanin_count(fg.node); ++p) {
      const NodeId in = c_.fanins(fg.node)[p];
      if (!model_.composite(fg.frame, in).any_x()) continue;
      if (model_.good(fg.frame, in) != V3::kX) {
        // Good value already set; only the faulty plane is X (reconvergence
        // around the fault site).  Backtrace cannot steer it, so exhaustion
        // would no longer cover this option — record the clip so the search
        // never claims an untestability proof here.
        skipped_faulty_only_x = true;
        continue;
      }
      V3 want;
      if (netlist::has_controlling_value(t)) {
        want = netlist::controlling_value(t) ? V3::k0 : V3::k1;
      } else {
        want = V3::k0;  // XOR family: any binary side value passes D
      }
      obj = {fg.frame, in, want};
      return true;
    }
  }
  if (skipped_faulty_only_x) stats_.clipped = true;
  return false;
}

sim::State3 ForwardEngine::required_state() const {
  // Rebuild the solution on a scratch model and greedily clear state
  // assignments whose removal keeps a fault effect on some primary output.
  if (!model_.incremental()) {
    const FrameModelConfig sc_config{/*incremental=*/false, model_.flat()};
    if (scratch_) {
      // Reuse the pooled scratch: fold its effort into the retired tally
      // (it is about to be zeroed) and reset instead of reconstructing.
      retired_scratch_stats_.gate_evals += scratch_->stats().gate_evals;
      retired_scratch_stats_.events += scratch_->stats().events;
      scratch_->reset(fault_, model_.max_frames(), sc_config);
    } else {
      scratch_ = pool_->acquire(fault_, model_.max_frames(), sc_config);
    }
    FrameModel& scratch = *scratch_;
    scratch.set_frame_count(model_.frame_count());
    const auto pis = c_.primary_inputs();
    for (unsigned t = 0; t < model_.frame_count(); ++t) {
      for (std::size_t i = 0; i < pis.size(); ++i) {
        scratch.assign_pi(t, i, model_.pi_value(t, i));
      }
    }
    const std::size_t nff = c_.flip_flops().size();
    for (std::size_t i = 0; i < nff; ++i) {
      scratch.assign_state(i, model_.state_value(i));
    }
    scratch.simulate();
    const bool at_solution = scratch.po_has_d();
    if (at_solution) {
      for (std::size_t i = 0; i < nff; ++i) {
        const V3 saved = scratch.state_value(i);
        if (saved == V3::kX) continue;
        scratch.clear_state(i);
        scratch.simulate();
        if (!scratch.po_has_d()) {
          scratch.assign_state(i, saved);
          scratch.simulate();
        }
      }
    }
    // The live scratch's stats are folded in by stats(); the retired tally
    // only collects effort about to be wiped by reset().
    // Not currently at a solution: report the raw assignment.
    return at_solution ? scratch.extract_state() : model_.extract_state();
  }
  // Incremental: one scratch model reused across calls, reset through the
  // trail; each greedy probe is a trailed clear_state undone on failure
  // instead of a full window re-simulation per flip-flop.
  if (!scratch_) {
    scratch_ = pool_->acquire(fault_, model_.max_frames(),
                              FrameModelConfig{true, model_.flat()});
  }
  FrameModel& sc = *scratch_;
  sc.undo_to(0);  // back to the all-unassigned construction state
  // Frames beyond 0 reverted to their raw pre-activation contents; shrink
  // and regrow so the window is rebuilt before any assignment lands.
  sc.set_frame_count(1);
  sc.set_frame_count(model_.frame_count());
  const auto pis = c_.primary_inputs();
  for (unsigned t = 0; t < model_.frame_count(); ++t) {
    for (std::size_t i = 0; i < pis.size(); ++i) {
      const V3 v = model_.pi_value(t, i);
      if (v != V3::kX) sc.assign_pi(t, i, v);
    }
  }
  const std::size_t nff = c_.flip_flops().size();
  for (std::size_t i = 0; i < nff; ++i) {
    const V3 v = model_.state_value(i);
    if (v != V3::kX) sc.assign_state(i, v);
  }
  if (!sc.po_has_d()) {
    // Not currently at a solution; report the raw assignment.
    return model_.extract_state();
  }
  for (std::size_t i = 0; i < nff; ++i) {
    if (sc.state_value(i) == V3::kX) continue;
    const std::size_t mark = sc.trail_mark();
    sc.clear_state(i);
    if (!sc.po_has_d()) sc.undo_to(mark);
  }
  return sc.extract_state();
}

ForwardStatus ForwardEngine::next_solution(const util::Deadline& deadline) {
  auto final_status = [&] {
    if (fault_.is_transition() && !stats_.clipped && !any_solution_) {
      // The (0, 1) launch normalization prunes the search space, so
      // exhaustion never proves a transition fault untestable.
      stats_.clipped = true;
    }
    if (stats_.clipped || any_solution_) return ForwardStatus::kExhausted;
    return ForwardStatus::kUntestable;
  };

  if (started_) {
    // Reject the previous solution: continue the search past it.
    if (!stack_.backtrack(stats_)) return final_status();
  } else {
    started_ = true;
    model_.simulate();
    if (fault_.is_transition() && model_.frame_count() < 2) {
      // The launch needs a predecessor frame; a one-frame window cannot
      // hold the (0, 1) pair.
      if (!model_.extend()) {
        stats_.clipped = true;  // the frame cap blocked the launch
        return ForwardStatus::kExhausted;
      }
      model_.simulate();
    }
  }

  for (;;) {
    if (deadline.expired() || stats_.backtracks > limits_.max_backtracks) {
      stats_.clipped = true;
      return ForwardStatus::kAborted;
    }
    if (excitation_conflict()) {
      if (!stack_.backtrack(stats_)) return final_status();
      continue;
    }
    if (model_.po_has_d()) {
      any_solution_ = true;
      return ForwardStatus::kSolved;
    }
    Objective obj;
    if (pick_objective(obj)) {
      const auto assignment = backtrace(model_, obj);
      if (!assignment) {
        if (!stack_.backtrack(stats_)) return final_status();
        continue;
      }
      ++stats_.decisions;
      stack_.push(*assignment);
      continue;
    }
    // No objective: either the fault effect is parked at flip-flop inputs of
    // the last frame (extend the window) or it has died (backtrack).
    if (excited_somewhere() && d_pending_at_ff_input()) {
      if (model_.extend()) {
        model_.simulate();
        continue;
      }
      stats_.clipped = true;  // the frame cap blocked further propagation
    }
    if (!stack_.backtrack(stats_)) return final_status();
  }
}

}  // namespace gatpg::atpg
