// Per-fault search resource limits.
//
// The paper's pass schedule is expressed in these terms: a wall-clock limit
// per fault (1 s / 10 s / 100 s on the original hardware, scaled here), a
// backtrack cap (HITEC's 10,000, multiplied by ten per pass), a bound on
// forward propagation frames, and a bound on reverse-time justification
// depth.  A search that ends because a limit was hit is "aborted", never
// "untestable" — untestability requires a completed exhaustive search.
#pragma once

namespace gatpg::atpg {

struct SearchLimits {
  double time_limit_s = 1.0;        // per targeted fault
  long max_backtracks = 10000;      // per targeted fault
  unsigned max_forward_frames = 16; // propagation window
  unsigned max_justify_depth = 32;  // reverse-time frames
  /// Event-driven incremental implication (default) vs the oblivious
  /// re-simulation reference engine; results are bit-identical.
  bool incremental_model = true;
  /// Flat composite-byte FrameModel storage (default) vs the legacy
  /// nested-vector layout; results are bit-identical.
  bool flat_model = true;
};

}  // namespace gatpg::atpg
